// Command afftables regenerates every table and figure of the paper's
// evaluation and writes the combined report (the data behind
// EXPERIMENTS.md) to stdout or a file.
//
// Usage:
//
//	afftables [-scale tiny|default|paper] [-seed N] [-j N] [-shards K] [-timing]
//	          [-o report.txt] [-only fig12,fig13]
//	          [-faults dead-banks=2] [-faults-sweep] [-colocation]
//	          [-realloc epoch=2000,...] [-realloc-sweep]
//	          [-metrics-out m.json] [-trace-out t.json] [-pprof cpu.prof]
//
// Experiments run concurrently across -j worker goroutines and their
// figures are written in registry order, so the report — and the
// -metrics-out / -trace-out files — are byte-identical for every -j.
// Per-experiment timing goes to stderr, never into the report.
//
// For wall-clock performance measurement (ns/op, allocs/op,
// sim-cycles/sec) and the committed BENCH_*.json baselines, use
// cmd/affbench; this binary reports simulated results only.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"affinityalloc/internal/cliconf"
	"affinityalloc/internal/harness"
)

func main() {
	cc := cliconf.Register(flag.CommandLine, cliconf.HarnessFlags|cliconf.ArtifactFlags|cliconf.FlagRealloc)
	var (
		outPath = flag.String("o", "", "output file (default stdout)")
		only    = flag.String("only", "", "comma-separated experiment ids (default all)")
		sweep   = flag.Bool("faults-sweep", false, "render the degraded-substrate sweep (dead banks/links x allocation modes) instead of the report")
		coloc   = flag.Bool("colocation", false, "render the trace-composed multi-tenant colocation interference table instead of the report")
		reSweep = flag.Bool("realloc-sweep", false, "render the static-vs-dynamic placement sweep (clean and mid-run bank-kill scenarios) instead of the report")
	)
	flag.Parse()

	opt, err := cc.Options()
	if err != nil {
		fatal(err)
	}

	stopProf, err := cc.StartProfile()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	exp := "all"
	if *only != "" {
		exp = *only
	}
	arts, closeArts, err := cc.Artifacts(exp, opt.Scale)
	if err != nil {
		fatal(err)
	}
	defer closeArts()

	if *coloc {
		fig, err := harness.Colocation(opt)
		if err != nil {
			failSummary(err)
			os.Exit(1)
		}
		fig.Render(out)
		return
	}

	if *reSweep {
		// Like -faults-sweep, per-cell failures render as FAILED(<reason>)
		// cells and only flip the exit status.
		fig, err := harness.ReallocSweep(opt)
		if fig != nil {
			fig.Render(out)
		}
		if err != nil {
			failSummary(err)
			os.Exit(1)
		}
		return
	}

	if *sweep {
		// The sweep tolerates per-cell failures: the table renders with
		// FAILED(<reason>) cells and the exit status stays non-zero.
		fig, err := harness.FaultsSweep(opt)
		if fig != nil {
			fig.Render(out)
		}
		if err != nil {
			failSummary(err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(out, "# Affinity Alloc — regenerated evaluation (scale=%v, seed=%d)\n\n", opt.Scale, cc.Seed)
	if err := harness.RunAll(opt, out, want, os.Stderr, cc.Timing, arts); err != nil {
		failSummary(err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "afftables:", err)
	os.Exit(1)
}

// failSummary writes a one-line failure summary: for cell failures, which
// cells died (their reasons are already in the report's FAILED markings);
// for anything else, the error itself.
func failSummary(err error) {
	var fails *harness.CellFailures
	if errors.As(err, &fails) {
		fmt.Fprintf(os.Stderr, "afftables: %d cell(s) failed: %s\n",
			len(fails.Cells), strings.Join(fails.Failed(), ", "))
		return
	}
	fmt.Fprintln(os.Stderr, "afftables:", err)
}

// Command afftables regenerates every table and figure of the paper's
// evaluation and writes the combined report (the data behind
// EXPERIMENTS.md) to stdout or a file.
//
// Usage:
//
//	afftables [-scale tiny|default|paper] [-seed N] [-j N] [-timing]
//	          [-o report.txt] [-only fig12,fig13]
//
// Experiments run concurrently across -j worker goroutines and their
// figures are written in registry order, so the report is byte-identical
// for every -j. Per-experiment timing goes to stderr, never into the
// report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"affinityalloc/internal/harness"
)

func main() {
	var (
		scaleStr = flag.String("scale", "default", "experiment scale: tiny|default|paper")
		seed     = flag.Int64("seed", 1, "simulation seed")
		jobs     = flag.Int("j", 0, "concurrent simulation cells (default GOMAXPROCS)")
		timing   = flag.Bool("timing", false, "also report per-cell wall time and sim-cycles/s on stderr")
		outPath  = flag.String("o", "", "output file (default stdout)")
		only     = flag.String("only", "", "comma-separated experiment ids (default all)")
	)
	flag.Parse()

	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}
	opt := harness.Options{Scale: scale, Seed: *seed, Jobs: *jobs}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "afftables:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fmt.Fprintf(out, "# Affinity Alloc — regenerated evaluation (scale=%v, seed=%d)\n\n", scale, *seed)
	if err := harness.RunAll(opt, out, want, os.Stderr, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}
}

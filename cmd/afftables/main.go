// Command afftables regenerates every table and figure of the paper's
// evaluation and writes the combined report (the data behind
// EXPERIMENTS.md) to stdout or a file.
//
// Usage:
//
//	afftables [-scale tiny|default|paper] [-seed N] [-o report.txt] [-only fig12,fig13]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"affinityalloc/internal/harness"
)

func main() {
	var (
		scaleStr = flag.String("scale", "default", "experiment scale: tiny|default|paper")
		seed     = flag.Int64("seed", 1, "simulation seed")
		outPath  = flag.String("o", "", "output file (default stdout)")
		only     = flag.String("only", "", "comma-separated experiment ids (default all)")
	)
	flag.Parse()

	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}
	opt := harness.Options{Scale: scale, Seed: *seed}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "afftables:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fmt.Fprintf(out, "# Affinity Alloc — regenerated evaluation (scale=%v, seed=%d)\n\n", scale, *seed)
	for _, e := range harness.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		fig, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(out, "### %s — FAILED: %v\n\n", e.ID, err)
			continue
		}
		fig.Render(out)
		fmt.Fprintf(out, "(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}

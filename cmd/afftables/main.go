// Command afftables regenerates every table and figure of the paper's
// evaluation and writes the combined report (the data behind
// EXPERIMENTS.md) to stdout or a file.
//
// Usage:
//
//	afftables [-scale tiny|default|paper] [-seed N] [-j N] [-shards K] [-timing]
//	          [-o report.txt] [-only fig12,fig13]
//	          [-faults dead-banks=2] [-faults-sweep]
//	          [-metrics-out m.json] [-trace-out t.json] [-pprof cpu.prof]
//
// Experiments run concurrently across -j worker goroutines and their
// figures are written in registry order, so the report — and the
// -metrics-out / -trace-out files — are byte-identical for every -j.
// Per-experiment timing goes to stderr, never into the report.
//
// For wall-clock performance measurement (ns/op, allocs/op,
// sim-cycles/sec) and the committed BENCH_*.json baselines, use
// cmd/affbench; this binary reports simulated results only.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/harness"
)

func main() {
	var (
		scaleStr  = flag.String("scale", "default", "experiment scale: tiny|default|paper")
		seed      = flag.Int64("seed", 1, "simulation seed")
		jobs      = flag.Int("j", 0, "concurrent simulation cells (default GOMAXPROCS)")
		shards    = flag.Int("shards", 1, "event-kernel shards per cell (mesh rectangles; output is byte-identical for every value)")
		timing    = flag.Bool("timing", false, "also report per-cell wall time and sim-cycles/s on stderr")
		outPath   = flag.String("o", "", "output file (default stdout)")
		only      = flag.String("only", "", "comma-separated experiment ids (default all)")
		metrics   = flag.String("metrics-out", "", "write per-cell telemetry as a metrics JSON document")
		trace     = flag.String("trace-out", "", "write sim-time phases as a Chrome trace_event JSON timeline")
		pprofOut  = flag.String("pprof", "", "write a CPU profile of the simulator itself")
		faultsStr = flag.String("faults", "", "degrade the machine for every experiment, e.g. dead-banks=2,dead-link=3>4 (see faults.Parse)")
		sweep     = flag.Bool("faults-sweep", false, "render the degraded-substrate sweep (dead banks/links x allocation modes) instead of the report")
	)
	flag.Parse()

	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}
	spec, err := faults.Parse(*faultsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}
	opt := harness.Options{Scale: scale, Seed: *seed, Jobs: *jobs, Shards: *shards, Faults: spec}
	if err := opt.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "afftables:", err)
		os.Exit(1)
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "afftables:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "afftables:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "afftables:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var arts *harness.Artifacts
	var artFiles []*os.File
	if *metrics != "" || *trace != "" {
		exp := "all"
		if *only != "" {
			exp = *only
		}
		arts = &harness.Artifacts{Experiment: exp, Scale: scale, Seed: *seed}
		openArt := func(path string) *os.File {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "afftables:", err)
				os.Exit(1)
			}
			artFiles = append(artFiles, f)
			return f
		}
		if *metrics != "" {
			arts.MetricsOut = openArt(*metrics)
		}
		if *trace != "" {
			arts.TraceOut = openArt(*trace)
		}
	}
	defer func() {
		for _, f := range artFiles {
			f.Close()
		}
	}()

	if *sweep {
		// The sweep tolerates per-cell failures: the table renders with
		// FAILED(<reason>) cells and the exit status stays non-zero.
		fig, err := harness.FaultsSweep(opt)
		if fig != nil {
			fig.Render(out)
		}
		if err != nil {
			failSummary(err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(out, "# Affinity Alloc — regenerated evaluation (scale=%v, seed=%d)\n\n", scale, *seed)
	if err := harness.RunAll(opt, out, want, os.Stderr, *timing, arts); err != nil {
		failSummary(err)
		os.Exit(1)
	}
}

// failSummary writes a one-line failure summary: for cell failures, which
// cells died (their reasons are already in the report's FAILED markings);
// for anything else, the error itself.
func failSummary(err error) {
	var fails *harness.CellFailures
	if errors.As(err, &fails) {
		fmt.Fprintf(os.Stderr, "afftables: %d cell(s) failed: %s\n",
			len(fails.Cells), strings.Join(fails.Failed(), ", "))
		return
	}
	fmt.Fprintln(os.Stderr, "afftables:", err)
}

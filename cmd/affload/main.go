// Command affload hammers a running affinityd with concurrent tenant
// streams of mixed alloc/free placement traffic and reports a
// latency/throughput table.
//
// Usage:
//
//	affload -addr http://127.0.0.1:7077 [-streams 4] [-ops 512]
//	        [-batch 16] [-seed N] [-timeout 30s]
//
//	affload -chaos -daemon ./affinityd -journal DIR [-kills 3]
//	        [-stalls 2] [-streams 4] [-ops 512] [-batch 16] [-seed N]
//
//	affload -trace run.jsonl [-batch 16] [-keep] [-timeout 30s]
//
// Each stream registers its own machine (tenant isolation) and drives a
// seeded, deterministic request sequence — the same -seed always sends
// the same placements, so runs are reproducible and comparable. Every
// batch carries a deterministic idempotency key, so the client's retry
// loop (backoff + jitter, honoring Retry-After) never double-allocates:
// a batch the server already committed returns its original placements.
// The summary's p50/p99 placement latency is sourced from the server's
// internal/telemetry histogram via /metricsz, not measured client-side;
// the per-stream columns are client-observed wire latencies.
//
// In -trace mode affload replays a recorded afftrace/v1 trace (affsim
// -record) against the daemon: each single-tenant scenario registers a
// machine shaped like the recording's, its allocator events are lowered
// to wire batches, and every wire placement is verified against a local
// trace.Replay of the same scenario — the wire≡library differential
// extended to recorded streams. Any divergence makes the run fail.
//
// In -chaos mode affload owns the daemon: it spawns the -daemon binary
// with a write-ahead journal, drives the streams while repeatedly
// kill -9ing and restarting it (and injecting SIGSTOP stalls), then
// proves convergence — every placement the turbulent run produced must
// be byte-identical to an uninterrupted in-process run of the same
// seeded streams, with no placement lost or duplicated.
//
// affload exits non-zero if no placement succeeded (or, under -chaos,
// if the converged state diverges from the clean oracle), so it doubles
// as a service smoke/chaos gate in CI.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"affinityalloc/internal/affinityd"
	"affinityalloc/internal/cliconf"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/trace"
)

func main() {
	cc := cliconf.Register(flag.CommandLine, cliconf.FlagSeed)
	var (
		addr    = flag.String("addr", "http://127.0.0.1:7077", "affinityd base URL")
		streams = flag.Int("streams", 4, "concurrent tenant streams (one machine each)")
		ops     = flag.Int("ops", 512, "allocation requests per stream")
		batch   = flag.Int("batch", 16, "allocation requests per wire batch")
		keep    = flag.Bool("keep", false, "leave the tenant machines registered after the run")
		timeout = flag.Duration("timeout", affinityd.DefaultRequestTimeout, "per-request deadline")

		traceIn = flag.String("trace", "", "replay a recorded afftrace/v1 trace against the daemon, verifying wire placements against a local replay")

		chaos   = flag.Bool("chaos", false, "chaos mode: spawn -daemon, kill/stall it mid-stream, prove convergence")
		daemon  = flag.String("daemon", "", "path to the affinityd binary (chaos mode)")
		journal = flag.String("journal", "", "journal directory for the spawned daemon (chaos mode; default a temp dir)")
		kills   = flag.Int("kills", 3, "kill -9/restart cycles to inject (chaos mode)")
		stalls  = flag.Int("stalls", 2, "SIGSTOP/SIGCONT stalls to inject (chaos mode)")
	)
	flag.Parse()

	var err error
	switch {
	case *chaos:
		err = runChaos(chaosConfig{
			seed: cc.Seed, daemon: *daemon, journal: *journal,
			streams: *streams, ops: *ops, batch: *batch,
			kills: *kills, stalls: *stalls, timeout: *timeout,
		})
	case *traceIn != "":
		err = runTrace(*addr, *traceIn, *batch, *keep, *timeout)
	default:
		err = run(cc.Seed, *addr, *streams, *ops, *batch, *keep, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "affload:", err)
		os.Exit(1)
	}
}

// streamStats is one tenant stream's outcome.
type streamStats struct {
	machineID string
	batches   int
	allocs    int
	frees     int
	errors    int
	wall      time.Duration
	lat       telemetry.Hist // client-observed wire latency per batch, ns
	err       error
	// placements/freed are the per-ID outcomes the stream observed,
	// collected for the chaos differential. A replayed (deduped) batch
	// must return byte-identical placements, so conflicting duplicates
	// are recorded as an error.
	placements map[string]affinityd.Placement
	freed      map[string]string
}

func run(seed int64, addr string, streams, ops, batchSize int, keep bool, timeout time.Duration) error {
	if streams < 1 || ops < 1 || batchSize < 1 {
		return fmt.Errorf("want -streams/-ops/-batch >= 1, got %d/%d/%d", streams, ops, batchSize)
	}
	ctx := context.Background()
	client := affinityd.NewClient(addr)
	client.Timeout = timeout
	if !client.Healthy(ctx) {
		return fmt.Errorf("no affinityd answering at %s (is it running?)", addr)
	}

	all := make([]streamStats, streams)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			driveStream(ctx, client, &all[stream], seed, stream, ops, batchSize)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// The headline latency numbers come from the server's telemetry
	// histogram, scraped once after the run.
	doc, derr := client.Metrics(ctx)

	if !keep {
		for i := range all {
			if all[i].machineID != "" {
				if err := client.Deregister(ctx, all[i].machineID); err != nil {
					fmt.Fprintln(os.Stderr, "affload: deregister:", err)
				}
			}
		}
	}

	tbl := stats.NewTable(
		fmt.Sprintf("affload: %d streams x %d ops (batch %d, seed %d) against %s", streams, ops, batchSize, seed, addr),
		"stream", "machine", "batches", "allocs", "frees", "errors", "wall", "req/s", "wire.p50", "wire.p99")
	totalAllocs, totalFrees, totalErrors := 0, 0, 0
	for i := range all {
		st := &all[i]
		if st.err != nil {
			tbl.AddRow(i, "FAILED", "-", "-", "-", "-", "-", "-", "-", "-")
			fmt.Fprintf(os.Stderr, "affload: stream %d: %v\n", i, st.err)
			continue
		}
		totalAllocs += st.allocs
		totalFrees += st.frees
		totalErrors += st.errors
		reqs := float64(st.allocs + st.frees)
		tbl.AddRow(i, st.machineID, st.batches, st.allocs, st.frees, st.errors,
			fmt.Sprintf("%.2fs", st.wall.Seconds()),
			fmt.Sprintf("%.0f", reqs/st.wall.Seconds()),
			dur(st.lat.Quantile(0.50)), dur(st.lat.Quantile(0.99)))
	}
	tbl.Render(os.Stdout)

	fmt.Printf("\ntotal: %d successful placements, %d frees, %d request errors in %.2fs (%.0f placements/s)\n",
		totalAllocs, totalFrees, totalErrors, wall.Seconds(), float64(totalAllocs)/wall.Seconds())
	if retries := client.Retries(); retries > 0 {
		fmt.Printf("client retries: %d\n", retries)
	}
	if derr != nil {
		fmt.Fprintln(os.Stderr, "affload: metrics scrape failed:", derr)
	} else if line, ok := serverLatencyLine(doc); ok {
		fmt.Println(line)
	}

	if totalAllocs == 0 {
		return fmt.Errorf("no placement succeeded")
	}
	return nil
}

// driveStream runs one tenant: register a machine, push the seeded
// stream in batches with idempotency keys, count outcomes into st.
func driveStream(ctx context.Context, client *affinityd.Client, st *streamStats, seed int64, stream, ops, batchSize int) {
	reg, err := client.Register(ctx, affinityd.MachineSpec{Seed: seed + int64(stream)})
	if err != nil {
		st.err = err
		return
	}
	driveSteps(ctx, client, st, reg.MachineID, seed, stream, ops, batchSize, 0)
}

// driveSteps pushes one stream's seeded steps at an already-registered
// machine (chaos mode registers machines itself, before turbulence
// starts, because registration is the one call without an idempotency
// key). A non-zero pace sleeps between steps — chaos mode uses it to
// stretch the stream across the whole turbulence schedule.
func driveSteps(ctx context.Context, client *affinityd.Client, st *streamStats, machineID string, seed int64, stream, ops, batchSize int, pace time.Duration) {
	st.machineID = machineID
	st.placements = make(map[string]affinityd.Placement)
	st.freed = make(map[string]string)
	gen := affinityd.NewStreamGen(seed, stream)
	start := time.Now()
	for sent := 0; sent < ops; {
		n := min(batchSize, ops-sent)
		step := gen.NextStep(n)
		sent += n

		t0 := time.Now()
		resp, err := client.Alloc(ctx, machineID, step.AllocBatch, step.Allocs)
		st.lat.Observe(uint64(time.Since(t0)))
		if err != nil {
			st.err = err
			return
		}
		st.batches++
		for _, p := range resp.Placements {
			if prev, dup := st.placements[p.ID]; dup && !placementEqual(prev, p) {
				st.err = fmt.Errorf("duplicate placement for %q diverges: %+v vs %+v", p.ID, prev, p)
				return
			}
			st.placements[p.ID] = p
			if p.Error != "" {
				st.errors++
			} else {
				st.allocs++
			}
		}
		if len(step.Frees) > 0 {
			t0 := time.Now()
			fresp, err := client.Free(ctx, machineID, step.FreeBatch, step.Frees)
			st.lat.Observe(uint64(time.Since(t0)))
			if err != nil {
				st.err = err
				return
			}
			for _, r := range fresp.Results {
				st.freed[r.ID] = r.Error
				if r.Error != "" {
					st.errors++
				} else {
					st.frees++
				}
			}
		}
		if pace > 0 && sent < ops {
			select {
			case <-time.After(pace):
			case <-ctx.Done():
				st.err = ctx.Err()
				return
			}
		}
	}
	st.wall = time.Since(start)
}

// runTrace replays a recorded trace against a live daemon and verifies
// the wire≡library differential on every placement: each single-tenant
// scenario is lowered to wire batches (affinityd.StepsFromScenario),
// driven at a machine registered with the recording's spec, and the
// returned placements are diffed against a local trace.Replay of the
// same scenario. Multi-tenant scenarios (trace compositions) are
// skipped — the wire serves one tenant per machine.
func runTrace(addr, path string, batchSize int, keep bool, timeout time.Duration) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if len(tr.Scenarios) == 0 {
		return fmt.Errorf("%s: trace has no scenarios", path)
	}
	ctx := context.Background()
	client := affinityd.NewClient(addr)
	client.Timeout = timeout
	if !client.Healthy(ctx) {
		return fmt.Errorf("no affinityd answering at %s (is it running?)", addr)
	}

	tbl := stats.NewTable(
		fmt.Sprintf("affload: trace replay of %s (%d scenarios) against %s", path, len(tr.Scenarios), addr),
		"scenario", "machine", "batches", "allocs", "frees", "errors", "placements")
	driven, diverged, skipped := 0, 0, 0
	var firstErr error
	fail := func(label string, err error) {
		tbl.AddRow(label, "FAILED", "-", "-", "-", "-", err.Error())
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, sc := range tr.Scenarios {
		if sc.NumTenants() > 1 {
			skipped++
			tbl.AddRow(sc.Label, "-", "-", "-", "-", "-", fmt.Sprintf("SKIPPED (%d tenants)", sc.NumTenants()))
			continue
		}
		steps, err := affinityd.StepsFromScenario(sc, batchSize)
		if err != nil {
			if errors.Is(err, affinityd.ErrNotWireExpressible) {
				// Forced-bank scenarios (delta sweeps) have no wire form;
				// they are skipped, not counted against the differential.
				skipped++
				tbl.AddRow(sc.Label, "-", "-", "-", "-", "-", "SKIPPED (not wire-expressible)")
				continue
			}
			fail(sc.Label, err)
			continue
		}
		reg, err := client.Register(ctx, affinityd.MachineSpec{
			MeshW: sc.MeshW, MeshH: sc.MeshH, Seed: sc.Seed,
			Policy: sc.Policy, Faults: sc.Faults,
		})
		if err != nil {
			fail(sc.Label, err)
			continue
		}
		wire, batches, allocs, frees, errors, err := driveTraceSteps(ctx, client, reg.MachineID, steps)
		if !keep {
			if derr := client.Deregister(ctx, reg.MachineID); derr != nil {
				fmt.Fprintln(os.Stderr, "affload: deregister:", derr)
			}
		}
		if err != nil {
			fail(sc.Label, err)
			continue
		}
		res, err := trace.Replay(sc, trace.Options{})
		if err != nil {
			fail(sc.Label, fmt.Errorf("local replay: %w", err))
			continue
		}
		diffs, err := affinityd.DiffReplay(sc, res, wire)
		if err != nil {
			fail(sc.Label, err)
			continue
		}
		driven++
		status := "MATCH"
		if len(diffs) > 0 {
			diverged++
			status = fmt.Sprintf("DIVERGE (%d)", len(diffs))
			for _, d := range diffs {
				fmt.Fprintf(os.Stderr, "affload: %s: %s\n", sc.Label, d)
			}
		}
		tbl.AddRow(sc.Label, reg.MachineID, batches, allocs, frees, errors, status)
	}
	tbl.Render(os.Stdout)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "affload: skipped %d scenario(s) with no wire form (multi-tenant or forced-bank)\n", skipped)
	}
	if diverged > 0 {
		return fmt.Errorf("trace replay: %d of %d scenario(s) diverged from the local replay", diverged, driven)
	}
	if firstErr != nil {
		return firstErr
	}
	if driven == 0 {
		return fmt.Errorf("%s: no single-tenant scenario to replay", path)
	}
	return nil
}

// driveTraceSteps pushes one lowered scenario at a registered machine,
// collecting every returned placement by wire ID.
func driveTraceSteps(ctx context.Context, client *affinityd.Client, machineID string, steps []affinityd.TraceStep) (wire map[string]affinityd.Placement, batches, allocs, frees, errCount int, err error) {
	wire = make(map[string]affinityd.Placement)
	for _, stp := range steps {
		for _, il := range stp.Pools {
			if _, err = client.OpenPool(ctx, machineID, il); err != nil {
				return
			}
		}
		if len(stp.Allocs) > 0 {
			var resp affinityd.BatchAllocResponse
			if resp, err = client.Alloc(ctx, machineID, stp.AllocBatch, stp.Allocs); err != nil {
				return
			}
			batches++
			for _, p := range resp.Placements {
				if prev, dup := wire[p.ID]; dup && !placementEqual(prev, p) {
					err = fmt.Errorf("duplicate placement for %q diverges: %+v vs %+v", p.ID, prev, p)
					return
				}
				wire[p.ID] = p
				if p.Error != "" {
					errCount++
				} else {
					allocs++
				}
			}
		}
		if len(stp.Frees) > 0 {
			var fresp affinityd.FreeResponse
			if fresp, err = client.Free(ctx, machineID, stp.FreeBatch, stp.Frees); err != nil {
				return
			}
			for _, r := range fresp.Results {
				if r.Error != "" {
					errCount++
				} else {
					frees++
				}
			}
		}
	}
	return
}

// serverLatencyLine derives the p50/p99 placement latency from the
// server's published histogram series — the telemetry-sourced numbers
// the run is judged by.
func serverLatencyLine(doc *telemetry.Document) (string, bool) {
	for _, c := range doc.Cells {
		if c.Label != "affinityd" {
			continue
		}
		counts, ok := c.Series["placement_latency_ns"]
		if !ok {
			return "", false
		}
		n := c.Scalars["placement_latency_ns_total"]
		return fmt.Sprintf("placement latency (server, internal/telemetry): p50=%s p99=%s over %d placements",
			dur(telemetry.HistQuantile(counts, 0.50)), dur(telemetry.HistQuantile(counts, 0.99)), n), true
	}
	return "", false
}

// dur renders nanoseconds compactly.
func dur(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

package main

// Chaos mode: affload owns a journaled affinityd, drives the seeded
// streams at it, and keeps killing it mid-stream. The daemon is spawned
// as a real process and killed with SIGKILL — no cooperation, no
// graceful anything — then restarted on the same journal directory and
// the same address. SIGSTOP/SIGCONT stalls exercise the client's
// deadline/retry path without a restart. The run converges when every
// stream completes; convergence is then *proved* two ways:
//
//  1. Differential: the same seeded streams are driven, uninterrupted,
//     against an in-process clean server, and every per-ID placement
//     and free outcome must match the turbulent run byte for byte.
//     Determinism makes this exact — crash-recovery replay plus client
//     retries with idempotency keys must be invisible in the results.
//  2. Counters: each machine's final alloc/free counters (rebuilt from
//     the journal by the last recovery) must equal the unique
//     successful placements and frees the client observed — nothing
//     lost, nothing double-counted.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"time"

	"affinityalloc/internal/affinityd"
)

type chaosConfig struct {
	seed    int64
	daemon  string // path to the affinityd binary
	journal string // journal dir (empty = temp dir)
	streams int
	ops     int
	batch   int
	kills   int
	stalls  int
	timeout time.Duration
}

// daemonProc is one incarnation of the spawned daemon.
type daemonProc struct {
	bin     string
	journal string
	addr    string // fixed after the first start; restarts rebind it
	cmd     *exec.Cmd
}

// start spawns the daemon and waits for its listen line. The first
// start uses port 0 and captures the kernel-assigned address; restarts
// rebind the same address so the client's base URL survives the kill.
func (d *daemonProc) start() error {
	addr := d.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	cmd := exec.Command(d.bin, "-addr", addr, "-journal", d.journal)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	listen := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "affinityd: listening on "); ok {
				a, _, _ := strings.Cut(rest, " ")
				select {
				case listen <- a:
				default:
				}
			}
			fmt.Fprintln(os.Stderr, "daemon:", line)
		}
	}()
	select {
	case a := <-listen:
		d.addr = a
		d.cmd = cmd
		return nil
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("daemon did not report a listen address within 15s")
	}
}

// kill9 SIGKILLs the daemon — the crash under test — and reaps it.
func (d *daemonProc) kill9() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

// stall freezes the daemon with SIGSTOP for dur, then resumes it:
// in-flight requests hang, queued ones pile up, and the client's
// retry/deadline path absorbs it without a restart.
func (d *daemonProc) stall(dur time.Duration) {
	if syscall.Kill(d.cmd.Process.Pid, syscall.SIGSTOP) != nil {
		return
	}
	time.Sleep(dur)
	_ = syscall.Kill(d.cmd.Process.Pid, syscall.SIGCONT)
}

// waitReady polls /readyz until the daemon serves traffic (journal
// replay included) or the deadline passes.
func waitReady(client *affinityd.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ready := client.Ready(ctx)
		cancel()
		if ready {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("daemon not ready within %v", timeout)
}

func runChaos(cfg chaosConfig) error {
	if cfg.daemon == "" {
		return fmt.Errorf("-chaos needs -daemon (path to the affinityd binary)")
	}
	if cfg.streams < 1 || cfg.ops < 1 || cfg.batch < 1 {
		return fmt.Errorf("want -streams/-ops/-batch >= 1, got %d/%d/%d", cfg.streams, cfg.ops, cfg.batch)
	}
	if cfg.journal == "" {
		dir, err := os.MkdirTemp("", "affinityd-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.journal = dir
	}

	d := &daemonProc{bin: cfg.daemon, journal: cfg.journal}
	if err := d.start(); err != nil {
		return err
	}
	defer d.kill9()

	client := affinityd.NewClient("http://" + d.addr)
	client.Timeout = cfg.timeout
	// Chaos-length waits: a request that lands just before a kill waits
	// out the restart+replay window through the retry loop.
	client.MaxRetries = 64
	if err := waitReady(client, 15*time.Second); err != nil {
		return err
	}

	// Register every machine before the turbulence starts: registration
	// is the one call without an idempotency key, so it must not race a
	// kill. Everything after this line may be interrupted arbitrarily.
	machineIDs := make([]string, cfg.streams)
	for i := range machineIDs {
		reg, err := client.Register(context.Background(), affinityd.MachineSpec{Seed: cfg.seed + int64(i)})
		if err != nil {
			return fmt.Errorf("register stream %d: %w", i, err)
		}
		machineIDs[i] = reg.MachineID
	}

	// The chaos schedule: interleave kills and stalls at randomized
	// intervals while the streams run. The interval RNG is seeded for
	// repeatability of the schedule shape; actual interleaving with the
	// streams is wall-clock nondeterminism — that's the point.
	rng := rand.New(rand.NewSource(cfg.seed))
	events := make([]bool, 0, cfg.kills+cfg.stalls) // true = kill
	for i := 0; i < cfg.kills; i++ {
		events = append(events, true)
	}
	for i := 0; i < cfg.stalls; i++ {
		events = append(events, false)
	}
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	// Pace the streams to outlast the schedule: each event costs at most
	// its ~350ms gap plus (for a kill) the dark window, restart, and
	// replay — call it a second. An unpaced stream finishes in tens of
	// milliseconds and the turbulence would land on an idle daemon,
	// proving nothing.
	steps := (cfg.ops + cfg.batch - 1) / cfg.batch
	var pace time.Duration
	if len(events) > 0 && steps > 1 {
		pace = time.Duration(len(events)) * 1350 * time.Millisecond / time.Duration(steps-1)
	}

	all := make([]streamStats, cfg.streams)
	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.streams; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			driveSteps(context.Background(), client, &all[stream], machineIDs[stream],
				cfg.seed, stream, cfg.ops, cfg.batch, pace)
		}(i)
	}
	go func() { wg.Wait(); close(done) }()

	kills, stalls := 0, 0
chaosLoop:
	for _, isKill := range events {
		select {
		case <-done:
			break chaosLoop
		case <-time.After(time.Duration(100+rng.Intn(250)) * time.Millisecond):
		}
		if isKill {
			kills++
			fmt.Fprintf(os.Stderr, "chaos: kill -9 #%d\n", kills)
			d.kill9()
			// Brief dark window so in-flight requests really fail over.
			time.Sleep(time.Duration(20+rng.Intn(80)) * time.Millisecond)
			if err := d.start(); err != nil {
				return fmt.Errorf("restart after kill %d: %w", kills, err)
			}
			if err := waitReady(client, 30*time.Second); err != nil {
				return fmt.Errorf("after kill %d: %w", kills, err)
			}
		} else {
			stalls++
			fmt.Fprintf(os.Stderr, "chaos: stall #%d\n", stalls)
			d.stall(time.Duration(150+rng.Intn(200)) * time.Millisecond)
		}
	}
	<-done
	wall := time.Since(start)

	// A run that converged before the schedule finished didn't test what
	// it claims to — refuse to report success for it.
	if kills < cfg.kills || stalls < cfg.stalls {
		return fmt.Errorf("streams converged before the schedule fired (%d/%d kills, %d/%d stalls) — raise -ops or lower -kills/-stalls",
			kills, cfg.kills, stalls, cfg.stalls)
	}

	totalAllocs, totalFrees := 0, 0
	for i := range all {
		if all[i].err != nil {
			return fmt.Errorf("stream %d failed under chaos: %w", i, all[i].err)
		}
		totalAllocs += all[i].allocs
		totalFrees += all[i].frees
	}
	fmt.Printf("chaos: %d streams x %d ops converged through %d kills and %d stalls in %.2fs (%d placements, %d frees, %d client retries)\n",
		cfg.streams, cfg.ops, kills, stalls, wall.Seconds(), totalAllocs, totalFrees, client.Retries())

	// Counter check: the recovered daemon's per-machine counters must
	// equal the unique outcomes the client observed — nothing lost to a
	// kill, nothing double-counted by a retry.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, id := range machineIDs {
		st := &all[i]
		info, err := client.MachineInfo(ctx, id)
		if err != nil {
			return fmt.Errorf("machine %s info: %w", id, err)
		}
		wantLive := st.allocs - st.frees
		if int(info.Allocs) != st.allocs || int(info.Frees) != st.frees || info.LiveHandles != wantLive {
			return fmt.Errorf("machine %s diverged: server allocs/frees/live = %d/%d/%d, client observed %d/%d/%d",
				id, info.Allocs, info.Frees, info.LiveHandles, st.allocs, st.frees, wantLive)
		}
	}

	// Metrics document must still validate after all that.
	if _, err := client.Metrics(ctx); err != nil {
		return fmt.Errorf("final metrics document: %w", err)
	}

	// Differential: an uninterrupted in-process run of the same seeded
	// streams must produce byte-identical per-ID outcomes.
	oracle, err := cleanOracle(cfg)
	if err != nil {
		return fmt.Errorf("clean oracle: %w", err)
	}
	for i := range all {
		if err := diffOutcomes(i, &all[i], &oracle[i]); err != nil {
			return err
		}
	}
	fmt.Printf("chaos: converged — %d placements across %d streams byte-identical to the uninterrupted oracle\n",
		totalAllocs, cfg.streams)
	return nil
}

// cleanOracle drives the identical seeded streams against a fresh
// in-process server with no journal, no kills, no retries needed.
func cleanOracle(cfg chaosConfig) ([]streamStats, error) {
	srv := affinityd.NewServer(affinityd.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := affinityd.NewClient(ts.URL)

	out := make([]streamStats, cfg.streams)
	for i := 0; i < cfg.streams; i++ {
		reg, err := client.Register(context.Background(), affinityd.MachineSpec{Seed: cfg.seed + int64(i)})
		if err != nil {
			return nil, err
		}
		driveSteps(context.Background(), client, &out[i], reg.MachineID, cfg.seed, i, cfg.ops, cfg.batch, 0)
		if out[i].err != nil {
			return nil, fmt.Errorf("oracle stream %d: %w", i, out[i].err)
		}
	}
	return out, nil
}

// diffOutcomes compares a chaos stream's observed outcomes against the
// oracle's, per request ID.
func diffOutcomes(stream int, got, want *streamStats) error {
	if len(got.placements) != len(want.placements) {
		return fmt.Errorf("stream %d: %d placements under chaos, oracle has %d",
			stream, len(got.placements), len(want.placements))
	}
	for id, wp := range want.placements {
		gp, ok := got.placements[id]
		if !ok {
			return fmt.Errorf("stream %d: placement %q lost under chaos", stream, id)
		}
		if !placementEqual(gp, wp) {
			return fmt.Errorf("stream %d: placement %q diverged under chaos:\n  chaos:  %+v\n  oracle: %+v",
				stream, id, gp, wp)
		}
	}
	if len(got.freed) != len(want.freed) {
		return fmt.Errorf("stream %d: %d free results under chaos, oracle has %d",
			stream, len(got.freed), len(want.freed))
	}
	for id, werr := range want.freed {
		gerr, ok := got.freed[id]
		if !ok {
			return fmt.Errorf("stream %d: free result %q lost under chaos", stream, id)
		}
		if gerr != werr {
			return fmt.Errorf("stream %d: free %q diverged under chaos: %q vs oracle %q", stream, id, gerr, werr)
		}
	}
	return nil
}

// placementEqual compares two placements field by field (Banks slice
// included).
func placementEqual(a, b affinityd.Placement) bool {
	return reflect.DeepEqual(a, b)
}

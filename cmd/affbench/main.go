// Command affbench runs the repository's benchmark suite — the
// event-kernel microbenchmarks plus every paper experiment — and
// maintains the committed BENCH_*.json baselines: it emits a
// schema-validated result document, validates existing ones, and diffs
// two baselines to flag regressions.
//
// Usage:
//
//	affbench [-scale tiny|default|paper] [-seed N] [-benchtime 1x|100ms]
//	         [-kernel-only] [-filter regexp] [-o BENCH_5.json] [-q]
//	affbench -validate BENCH_5.json
//	affbench -compare old.json new.json [-threshold 0.25] [-strict]
//
// A benchmark regresses when its ns/op grows by more than -threshold
// (default 25%) or its allocs/op increases at all. -compare always prints
// the full table and exits 0 unless -strict is set (CI runs the diff
// report-only, so a noisy runner cannot block the pipeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"testing"

	"affinityalloc/internal/bench"
	"affinityalloc/internal/harness"
)

func main() {
	testing.Init() // registers -test.* flags so -benchtime can be wired through
	var (
		scaleStr   = flag.String("scale", "tiny", "experiment benchmark scale: tiny|default|paper")
		seed       = flag.Int64("seed", 1, "simulation seed for experiment benchmarks")
		benchtime  = flag.String("benchtime", "1x", "per-benchmark time or iteration budget (testing -benchtime syntax)")
		kernelOnly = flag.Bool("kernel-only", false, "run only the event-kernel microbenchmarks")
		filter     = flag.String("filter", "", "run only benchmarks whose name matches this regexp")
		outPath    = flag.String("o", "", "write the result document to this file (default stdout)")
		quiet      = flag.Bool("q", false, "suppress per-benchmark progress on stderr")
		validate   = flag.String("validate", "", "parse and schema-check a baseline document, then exit")
		compare    = flag.Bool("compare", false, "diff two baseline documents: affbench -compare old.json new.json")
		threshold  = flag.Float64("threshold", 0.25, "with -compare: flag ns/op growth beyond this fraction")
		strict     = flag.Bool("strict", false, "with -compare: exit non-zero when regressions are flagged")
	)
	flag.Parse()

	if err := run(*scaleStr, *seed, *benchtime, *kernelOnly, *filter, *outPath,
		*quiet, *validate, *compare, *threshold, *strict, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "affbench:", err)
		os.Exit(1)
	}
}

func run(scaleStr string, seed int64, benchtime string, kernelOnly bool, filter, outPath string,
	quiet bool, validatePath string, compare bool, threshold float64, strict bool, args []string) error {
	switch {
	case validatePath != "":
		return validateDoc(validatePath)
	case compare:
		return compareDocs(args, threshold, strict)
	}

	scale, err := harness.ParseScale(scaleStr)
	if err != nil {
		return err
	}
	var re *regexp.Regexp
	if filter != "" {
		if re, err = regexp.Compile(filter); err != nil {
			return err
		}
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %v", err)
	}

	entries := bench.Entries(scale, seed, kernelOnly, re)
	if len(entries) == 0 {
		return fmt.Errorf("no benchmarks match filter %q", filter)
	}
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if quiet {
		progress = nil
	}
	doc := &bench.Document{
		Schema:     bench.Schema,
		Scale:      scale.String(),
		Seed:       seed,
		Benchtime:  benchtime,
		Benchmarks: bench.Run(entries, progress),
	}
	if err := doc.Validate(); err != nil {
		return err
	}
	out, err := doc.Encode()
	if err != nil {
		return err
	}
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}

func validateDoc(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := bench.Parse(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid %s document, %d benchmarks (scale %s, seed %d)\n",
		path, d.Schema, len(d.Benchmarks), d.Scale, d.Seed)
	return nil
}

func compareDocs(args []string, threshold float64, strict bool) error {
	if len(args) != 2 {
		return fmt.Errorf("-compare needs exactly two files: affbench -compare old.json new.json")
	}
	load := func(path string) (*bench.Document, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return bench.Parse(data)
	}
	old, err := load(args[0])
	if err != nil {
		return err
	}
	cur, err := load(args[1])
	if err != nil {
		return err
	}
	deltas, err := bench.Compare(old, cur, threshold)
	if err != nil {
		return err
	}
	table, regressions := bench.RenderCompare(deltas, threshold)
	fmt.Print(table)
	if regressions > 0 {
		fmt.Printf("%d regression(s) flagged (threshold %g%%)\n", regressions, threshold*100)
		if strict {
			os.Exit(1)
		}
	} else {
		fmt.Println("no regressions")
	}
	return nil
}

// Command affinityd serves affinity allocation as a long-running
// placement service: tenants register simulated machine topologies over
// the affinityd/v1 HTTP/JSON API, open interleave pools, and submit
// batched allocation requests carrying affinity hint graphs, receiving
// simulated base addresses and bank placements back. cmd/affload is the
// matching load generator.
//
// Usage:
//
//	affinityd [-addr 127.0.0.1:7077] [-seed N] [-policy hybrid5]
//	          [-faults dead-banks=2] [-journal DIR] [-snap-every N]
//	          [-fsync] [-queue-depth N] [-metrics-out m.json]
//	          [-pprof cpu.prof]
//
// The -seed/-policy/-faults flags are fleet defaults: a registration
// whose MachineSpec leaves those fields zero inherits them, so a whole
// load run can be degraded (-faults) or re-seeded from the server side.
//
// With -journal DIR the daemon is crash-safe: every committed batch is
// appended to a per-machine write-ahead journal under DIR before it
// executes, and a restart with the same -journal replays the journals
// to reconstruct byte-identical placement state. Verification happens
// before the listener opens (a corrupt journal refuses startup; pass
// -journal-reset to discard history deliberately); replay happens after,
// so /healthz answers immediately while /readyz reports not-ready until
// every machine has finished replaying.
//
// Endpoints: GET /healthz (liveness), GET /readyz (readiness — 503
// during journal replay and shutdown drain), GET /metricsz
// (schema-validated metrics document with p50/p99 placement-latency
// histograms), POST /v1/machines, GET/DELETE /v1/machines/{id}, POST
// /v1/machines/{id}/pools, POST /v1/machines/{id}/alloc, POST
// /v1/machines/{id}/free.
//
// The server sheds overload: each machine has a bounded admission queue
// (-queue-depth) and a full queue answers 503 + Retry-After instead of
// queueing unboundedly. Shutdown on SIGINT/SIGTERM is graceful: /readyz
// flips not-ready first, in-flight requests drain, machine workers
// stop, journals close, and -metrics-out (when set) receives the final
// metrics document.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"affinityalloc/internal/affinityd"
	"affinityalloc/internal/cliconf"
)

func main() {
	cc := cliconf.Register(flag.CommandLine,
		cliconf.FlagSeed|cliconf.FlagPolicy|cliconf.FlagFaults|cliconf.FlagMetricsOut|cliconf.FlagPprof)
	var (
		addr         = flag.String("addr", "127.0.0.1:7077", "listen address (host:port; port 0 picks a free port)")
		journalDir   = flag.String("journal", "", "write-ahead journal directory (empty = in-memory only)")
		journalReset = flag.Bool("journal-reset", false, "discard existing journals in -journal instead of recovering them")
		snapEvery    = flag.Int("snap-every", 0, "journal records between snapshots (0 = default 256, negative disables)")
		fsync        = flag.Bool("fsync", false, "fsync every journal append (power-loss durability)")
		queueDepth   = flag.Int("queue-depth", 0, "per-machine admission queue depth (0 = default 256)")
	)
	flag.Parse()

	if err := run(cc, *addr, *journalDir, *journalReset, *snapEvery, *fsync, *queueDepth); err != nil {
		fmt.Fprintln(os.Stderr, "affinityd:", err)
		os.Exit(1)
	}
}

func run(cc *cliconf.Config, addr, journalDir string, journalReset bool, snapEvery int, fsync bool, queueDepth int) error {
	// Validate the fleet defaults up front so a bad -policy/-faults is
	// one named startup error, not a failure on every registration.
	if _, err := cc.Policy(); err != nil {
		return err
	}
	if _, err := cc.Faults(); err != nil {
		return err
	}
	stopProf, err := cc.StartProfile()
	if err != nil {
		return err
	}
	defer stopProf()

	if journalDir != "" {
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return err
		}
		if journalReset {
			if err := affinityd.RemoveJournalDir(journalDir); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "affinityd: journal directory reset, history discarded")
		}
	}

	srv := affinityd.NewServer(affinityd.Options{
		Defaults: affinityd.MachineSpec{
			Seed:   cc.Seed,
			Policy: cc.PolicyStr,
			Faults: cc.FaultsStr,
		},
		JournalDir:    journalDir,
		SnapshotEvery: snapEvery,
		SyncWrites:    fsync,
		QueueDepth:    queueDepth,
	})

	// Phase one of recovery runs before the listener opens: every
	// journal is verified end to end, and corruption refuses startup
	// loudly rather than serving a machine whose history is wrong.
	rec, err := srv.PrepareRecovery()
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts driving "-addr
	// host:0" can discover the port.
	fmt.Printf("affinityd: listening on %s (%s)\n", ln.Addr(), affinityd.APIVersion)

	// Phase two replays the verified journals while the listener is
	// already answering: /healthz says alive, /readyz says not-ready,
	// and requests against a still-replaying machine get a retryable
	// 503, never a 404.
	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	replayDone := make(chan error, 1)
	go func() {
		stats, err := rec.Replay()
		if err == nil && stats.Machines > 0 {
			fmt.Printf("affinityd: recovered %s\n", stats)
		}
		if err != nil {
			// A replay failure is fatal: the affected machine would 503
			// forever. Shut down and surface the error as the exit status.
			fmt.Fprintln(os.Stderr, "affinityd: recovery failed:", err)
			stop()
		}
		replayDone <- err
	}()

	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "affinityd: shutting down")
		// Flip /readyz before draining so load balancers and retrying
		// clients move on while in-flight requests finish.
		srv.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(sctx)
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := <-replayDone; err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	if err := <-shutdownDone; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Snapshot the document before Close: Close empties the machine
	// table, and the final export should still carry the per-machine
	// cells.
	doc := srv.MetricsDocument()
	srv.Close()

	if cc.MetricsOut != "" {
		f, err := os.Create(cc.MetricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := doc.WriteJSON(f); err != nil {
			return err
		}
	}
	fmt.Printf("affinityd: served %d requests, goodbye\n", srv.Requests())
	return nil
}

// Command affinityd serves affinity allocation as a long-running
// placement service: tenants register simulated machine topologies over
// the affinityd/v1 HTTP/JSON API, open interleave pools, and submit
// batched allocation requests carrying affinity hint graphs, receiving
// simulated base addresses and bank placements back. cmd/affload is the
// matching load generator.
//
// Usage:
//
//	affinityd [-addr 127.0.0.1:7077] [-seed N] [-policy hybrid5]
//	          [-faults dead-banks=2] [-metrics-out m.json] [-pprof cpu.prof]
//
// The -seed/-policy/-faults flags are fleet defaults: a registration
// whose MachineSpec leaves those fields zero inherits them, so a whole
// load run can be degraded (-faults) or re-seeded from the server side.
//
// Endpoints: GET /healthz, GET /metricsz (schema-validated metrics
// document with p50/p99 placement-latency histograms), POST
// /v1/machines, GET/DELETE /v1/machines/{id}, POST
// /v1/machines/{id}/pools, POST /v1/machines/{id}/alloc, POST
// /v1/machines/{id}/free.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain, machine workers stop, and -metrics-out (when set)
// receives the final metrics document.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"affinityalloc/internal/affinityd"
	"affinityalloc/internal/cliconf"
)

func main() {
	cc := cliconf.Register(flag.CommandLine,
		cliconf.FlagSeed|cliconf.FlagPolicy|cliconf.FlagFaults|cliconf.FlagMetricsOut|cliconf.FlagPprof)
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (host:port; port 0 picks a free port)")
	flag.Parse()

	if err := run(cc, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "affinityd:", err)
		os.Exit(1)
	}
}

func run(cc *cliconf.Config, addr string) error {
	// Validate the fleet defaults up front so a bad -policy/-faults is
	// one named startup error, not a failure on every registration.
	if _, err := cc.Policy(); err != nil {
		return err
	}
	if _, err := cc.Faults(); err != nil {
		return err
	}
	stopProf, err := cc.StartProfile()
	if err != nil {
		return err
	}
	defer stopProf()

	srv := affinityd.NewServer(affinityd.Options{Defaults: affinityd.MachineSpec{
		Seed:   cc.Seed,
		Policy: cc.PolicyStr,
		Faults: cc.FaultsStr,
	}})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts driving "-addr
	// host:0" can discover the port.
	fmt.Printf("affinityd: listening on %s (%s)\n", ln.Addr(), affinityd.APIVersion)

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "affinityd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(sctx)
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if err := <-shutdownDone; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()

	if cc.MetricsOut != "" {
		f, err := os.Create(cc.MetricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := srv.MetricsDocument().WriteJSON(f); err != nil {
			return err
		}
	}
	fmt.Printf("affinityd: served %d requests, goodbye\n", srv.Requests())
	return nil
}

// Command affsim runs one benchmark, one paper experiment, or the whole
// evaluation on the simulated system and prints paper-shaped output.
//
// Usage:
//
//	affsim -list
//	affsim -exp fig12 [-scale tiny|default|paper] [-seed N] [-j N]
//	affsim -all [-scale ...] [-seed N] [-j N] [-timing]
//	affsim -workload bfs [-scale ...] [-policy hybrid5|minhop|rnd|lnr]
//
// Independent simulation cells (workload × configuration runs) execute
// across -j worker goroutines; results are aggregated in a fixed order,
// so the rendered figures are byte-identical for every -j. Timing
// accounting goes to stderr, keeping stdout deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/harness"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and workloads")
		exp      = flag.String("exp", "", "experiment id to regenerate (fig4, fig6, fig12, ...)")
		all      = flag.Bool("all", false, "regenerate every experiment")
		workload = flag.String("workload", "", "workload to run under all three configurations")
		scaleStr = flag.String("scale", "default", "experiment scale: tiny|default|paper")
		seed     = flag.Int64("seed", 1, "simulation seed")
		jobs     = flag.Int("j", 0, "concurrent simulation cells (default GOMAXPROCS)")
		timing   = flag.Bool("timing", false, "report per-cell wall time and sim-cycles/s on stderr")
		policy   = flag.String("policy", "hybrid5", "bank policy: rnd|lnr|minhop|hybrid1|hybrid3|hybrid5|hybrid7")
	)
	flag.Parse()

	scale, err := harness.ParseScale(*scaleStr)
	if err != nil {
		fatal(err)
	}
	opt := harness.Options{Scale: scale, Seed: *seed, Jobs: *jobs}

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads:")
		for _, w := range workloadSet(opt) {
			fmt.Printf("  %s\n", w.Name())
		}
	case *all:
		if err := harness.RunAll(opt, os.Stdout, nil, os.Stderr, *timing); err != nil {
			fatal(err)
		}
	case *exp != "":
		e, ok := harness.Lookup(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *exp))
		}
		opt.Timing = &harness.Timing{}
		start := time.Now()
		fig, err := e.Run(opt)
		if err != nil {
			fatal(err)
		}
		fig.Render(os.Stdout)
		if *timing {
			opt.Timing.Report(os.Stderr)
			n, cellWall, sim := opt.Timing.Summary()
			fmt.Fprintf(os.Stderr, "%s: %d cells, wall %.2fs (cellsum %.2fs), sim %d cyc, %.1f Mcyc/s\n",
				e.ID, n, time.Since(start).Seconds(), cellWall.Seconds(), uint64(sim),
				float64(sim)/time.Since(start).Seconds()/1e6)
		}
	case *workload != "":
		runWorkload(opt, *workload, *policy)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "affsim:", err)
	os.Exit(1)
}

func workloadSet(opt harness.Options) []workloads.Workload {
	return harness.AllWorkloads(opt)
}

func parsePolicy(v string) (core.PolicyConfig, error) {
	switch strings.ToLower(v) {
	case "rnd":
		return core.PolicyConfig{Policy: core.Rnd}, nil
	case "lnr":
		return core.PolicyConfig{Policy: core.Lnr}, nil
	case "minhop":
		return core.PolicyConfig{Policy: core.MinHop}, nil
	case "hybrid1":
		return core.PolicyConfig{Policy: core.Hybrid, H: 1}, nil
	case "hybrid3":
		return core.PolicyConfig{Policy: core.Hybrid, H: 3}, nil
	case "hybrid5", "":
		return core.PolicyConfig{Policy: core.Hybrid, H: 5}, nil
	case "hybrid7":
		return core.PolicyConfig{Policy: core.Hybrid, H: 7}, nil
	}
	return core.PolicyConfig{}, fmt.Errorf("unknown policy %q", v)
}

func runWorkload(opt harness.Options, name, policyStr string) {
	pcfg, err := parsePolicy(policyStr)
	if err != nil {
		fatal(err)
	}
	var w workloads.Workload
	for _, cand := range workloadSet(opt) {
		if cand.Name() == name {
			w = cand
			break
		}
	}
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q (try -list)", name))
	}

	tbl := stats.NewTable(fmt.Sprintf("%s at scale=%v (policy %v)", name, opt.Scale, pcfg.Policy),
		"config", "cycles", "speedup.vs.InCore", "hops.data", "hops.control", "hops.offload", "l3miss", "noc.util", "energy")
	cfg := sys.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.Policy = pcfg
	var base workloads.Result
	for i, mode := range sys.Modes {
		res, err := workloads.Run(cfg, w, mode)
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			base = res
		}
		d, c, o := res.Metrics.DataHops()
		tbl.AddRow(mode.String(), uint64(res.Metrics.Cycles),
			float64(base.Metrics.Cycles)/float64(res.Metrics.Cycles),
			d, c, o, res.Metrics.L3MissRate, res.Metrics.NoCUtil, res.Metrics.EnergyTotal)
	}
	tbl.Render(os.Stdout)
}

// Command affsim runs one benchmark, one paper experiment, or the whole
// evaluation on the simulated system and prints paper-shaped output.
//
// Usage:
//
//	affsim -list
//	affsim -exp fig12 [-scale tiny|default|paper] [-seed N] [-j N]
//	affsim -all [-scale ...] [-seed N] [-j N] [-timing]
//	affsim -workload bfs [-scale ...] [-policy hybrid5|minhop|rnd|lnr] [-mode affalloc]
//	affsim ... [-faults dead-banks=2,dead-links=2] (degraded-substrate runs)
//	affsim ... [-realloc epoch=2000,threshold=0.25] (online re-allocation)
//	affsim ... [-metrics-out m.json] [-trace-out t.json] [-pprof cpu.prof]
//	affsim ... [-record run.jsonl] (record an afftrace/v1 scenario trace)
//	affsim -replay run.jsonl (re-drive a recorded trace; verifies placements)
//	affsim -validate-metrics m.json
//
// Independent simulation cells (workload × configuration runs) execute
// across -j worker goroutines; results are aggregated in a fixed order,
// so the rendered figures — and the -metrics-out / -trace-out files —
// are byte-identical for every -j. Timing accounting goes to stderr,
// keeping stdout deterministic.
//
// For wall-clock performance measurement (ns/op, allocs/op,
// sim-cycles/sec) and the committed BENCH_*.json baselines, use
// cmd/affbench; this binary reports simulated results only.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"affinityalloc/internal/cliconf"
	"affinityalloc/internal/harness"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

func main() {
	cc := cliconf.Register(flag.CommandLine,
		cliconf.HarnessFlags|cliconf.ArtifactFlags|cliconf.FlagPolicy|
			cliconf.FlagRecord|cliconf.FlagReplay|cliconf.FlagRealloc)
	var (
		list     = flag.Bool("list", false, "list experiments and workloads")
		exp      = flag.String("exp", "", "experiment id to regenerate (fig4, fig6, fig12, ...)")
		all      = flag.Bool("all", false, "regenerate every experiment")
		workload = flag.String("workload", "", "workload to run under all three configurations")
		modeStr  = flag.String("mode", "all", "with -workload: run one configuration (incore|nearl3|affalloc) or all")
		validate = flag.String("validate-metrics", "", "parse and schema-check a metrics JSON document, then exit")
	)
	flag.Parse()

	stopProf, err := cc.StartProfile()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if err := run(cc, *list, *exp, *all, *workload, *modeStr, *validate); err != nil {
		stopProf()
		fatal(err)
	}
}

func run(cc *cliconf.Config, list bool, exp string, all bool, workload, modeStr, validatePath string) error {
	opt, err := cc.Options()
	if err != nil {
		return err
	}

	// -record hooks an afftrace collector into the workload cells the
	// invocation runs; the trace is written once the run succeeds.
	// Experiments that probe the memory system directly instead of
	// running workload cells (fig14's migration timeline) record
	// nothing — that yields an empty trace, noted on stderr.
	var recCol *trace.Collector
	if cc.RecordOut != "" {
		recCol = trace.NewCollector()
		opt.Record = recCol
	}
	writeRecording := func(err error) error {
		if err != nil || recCol == nil {
			return err
		}
		if len(recCol.Trace().Scenarios) == 0 {
			fmt.Fprintf(os.Stderr, "affsim: note: no workload cells ran; %s records an empty trace\n", cc.RecordOut)
		}
		return trace.WriteFile(cc.RecordOut, recCol.Trace())
	}

	switch {
	case cc.ReplayIn != "":
		return runReplay(cc)
	case validatePath != "":
		return validateMetrics(validatePath)
	case list:
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		fmt.Println("workloads:")
		for _, w := range workloadSet(opt) {
			fmt.Printf("  %s\n", w.Name())
		}
		return nil
	case all:
		arts, closeArts, err := cc.Artifacts("all", opt.Scale)
		if err != nil {
			return err
		}
		defer closeArts()
		return writeRecording(harness.RunAll(opt, os.Stdout, nil, os.Stderr, cc.Timing, arts))
	case exp != "":
		return writeRecording(runExperiment(cc, opt, exp))
	case workload != "":
		return writeRecording(runWorkload(cc, opt, workload, modeStr, recCol))
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

func fatal(err error) {
	var fails *harness.CellFailures
	if errors.As(err, &fails) {
		// One-line failure summary: which cells died; their reasons are
		// already in the report/FAILED markings.
		fmt.Fprintf(os.Stderr, "affsim: %d cell(s) failed: %s\n",
			len(fails.Cells), strings.Join(fails.Failed(), ", "))
	} else {
		fmt.Fprintln(os.Stderr, "affsim:", err)
	}
	os.Exit(1)
}

// validateMetrics schema-checks a metrics document (the CI gate).
func validateMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := telemetry.ParseDocument(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid metrics document (schema %d, %d cells)\n", path, doc.SchemaVersion, len(doc.Cells))
	return nil
}

func runExperiment(cc *cliconf.Config, opt harness.Options, exp string) error {
	e, ok := harness.Lookup(exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try -list)", exp)
	}
	arts, closeArts, err := cc.Artifacts(e.ID, opt.Scale)
	if err != nil {
		return err
	}
	defer closeArts()
	opt.Timing = &harness.Timing{}
	if arts != nil {
		opt.Collect = &harness.Collector{}
	}
	start := time.Now()
	fig, err := e.Run(opt)
	if err != nil {
		return err
	}
	fig.Render(os.Stdout)
	if arts != nil {
		cells := opt.Collect.Cells()
		for i := range cells {
			cells[i].Label = e.ID + "/" + cells[i].Label
		}
		if err := arts.Write(cells); err != nil {
			return err
		}
	}
	if cc.Timing {
		opt.Timing.Report(os.Stderr)
		n, cellWall, sim := opt.Timing.Summary()
		fmt.Fprintf(os.Stderr, "%s: %d cells, wall %.2fs (cellsum %.2fs), sim %d cyc, %.1f Mcyc/s\n",
			e.ID, n, time.Since(start).Seconds(), cellWall.Seconds(), uint64(sim),
			float64(sim)/time.Since(start).Seconds()/1e6)
	}
	return nil
}

func workloadSet(opt harness.Options) []workloads.Workload {
	// skew (the two-phase hotspot behind the online-reallocation tests) is
	// runnable directly but is not part of the Fig-12 suite, so it is
	// appended here rather than to harness.AllWorkloads.
	return append(harness.AllWorkloads(opt), workloads.DefaultSkew())
}

// parseModes resolves the -mode flag: "all" (or empty) selects the three
// presentation-order configurations, anything else one sys.ParseMode name.
func parseModes(v string) ([]sys.Mode, error) {
	if v == "" || strings.EqualFold(v, "all") {
		return sys.Modes[:], nil
	}
	m, err := sys.ParseMode(v)
	if err != nil {
		return nil, err
	}
	return []sys.Mode{m}, nil
}

// runReplay re-drives a recorded trace through the allocator and memory
// system and verifies the record→replay placement identity, printing one
// row per scenario. Any DIVERGE row makes the invocation fail.
func runReplay(cc *cliconf.Config) error {
	tr, err := trace.ReadFile(cc.ReplayIn)
	if err != nil {
		return err
	}
	if len(tr.Scenarios) == 0 {
		return fmt.Errorf("%s: trace has no scenarios (the recording run had no workload cells?)", cc.ReplayIn)
	}
	tbl := stats.NewTable(fmt.Sprintf("replay of %s (%d scenarios)", cc.ReplayIn, len(tr.Scenarios)),
		"scenario", "mode", "tenants", "allocs", "cycles.rec", "cycles.replay", "digest", "placements")
	diverged := 0
	for _, sc := range tr.Scenarios {
		allocs := int64(0)
		for t := 0; t < sc.NumTenants(); t++ {
			allocs += sc.AllocCount(t)
		}
		res, err := trace.Replay(sc, trace.Options{Shards: cc.Shards})
		if err != nil {
			diverged++
			tbl.AddRow(sc.Label, sc.Mode, sc.NumTenants(), allocs, sc.Cycles, "FAILED", "-", err.Error())
			continue
		}
		got, want := res.PlacementDump(), trace.RecordedDump(sc)
		status := "MATCH"
		if !bytes.Equal(got, want) {
			status = "DIVERGE"
			diverged++
		}
		tbl.AddRow(sc.Label, sc.Mode, sc.NumTenants(), allocs,
			sc.Cycles, uint64(res.Cycles), trace.Digest(got), status)
	}
	tbl.Render(os.Stdout)
	if diverged > 0 {
		return fmt.Errorf("replay: %d of %d scenario(s) diverged from their recorded placements",
			diverged, len(tr.Scenarios))
	}
	return nil
}

func runWorkload(cc *cliconf.Config, opt harness.Options, name, modeStr string, recCol *trace.Collector) error {
	pcfg, err := cc.Policy()
	if err != nil {
		return err
	}
	modes, err := parseModes(modeStr)
	if err != nil {
		return err
	}
	var w workloads.Workload
	for _, cand := range workloadSet(opt) {
		if cand.Name() == name {
			w = cand
			break
		}
	}
	if w == nil {
		return fmt.Errorf("unknown workload %q (try -list)", name)
	}
	arts, closeArts, err := cc.Artifacts("workload/"+name, opt.Scale)
	if err != nil {
		return err
	}
	defer closeArts()

	speedupCol := "speedup.vs.InCore"
	if len(modes) == 1 {
		speedupCol = "speedup"
	}
	tbl := stats.NewTable(fmt.Sprintf("%s at scale=%v (policy %v)", name, opt.Scale, pcfg.Policy),
		"config", "cycles", speedupCol, "hops.data", "hops.control", "hops.offload", "l3miss", "noc.util", "energy")
	cfg := sys.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.Policy = pcfg
	cfg.Faults = opt.Faults
	cfg.Shards = opt.Shards
	cfg.Realloc = opt.Realloc
	var base workloads.Result
	var cells []harness.CollectedCell
	var failed []harness.CellFailure
	haveBase := false
	slot := recCol.Reserve(len(modes))
	for i, mode := range modes {
		label := fmt.Sprintf("%s/%v", name, mode)
		rec := recCol.NewRecorder(label)
		res, err := runGuarded(cfg, w, mode, rec)
		if err != nil {
			// A failed configuration doesn't abort the others: render its
			// row as FAILED and keep going (exit status stays non-zero).
			failed = append(failed, harness.CellFailure{Index: i, Label: label, Err: err})
			tbl.AddRow(mode.String(), "FAILED", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		if !haveBase {
			base, haveBase = res, true
		}
		recCol.Put(slot+i, rec.Scenario())
		cells = append(cells, harness.CollectedCell{Label: label, Snap: res.Metrics.Detail})
		d, c, o := res.Metrics.DataHops()
		tbl.AddRow(mode.String(), uint64(res.Metrics.Cycles),
			float64(base.Metrics.Cycles)/float64(res.Metrics.Cycles),
			d, c, o, res.Metrics.L3MissRate(), res.Metrics.NoCUtil(), res.Metrics.EnergyTotal())
	}
	tbl.Render(os.Stdout)
	if err := arts.Write(cells); err != nil {
		return err
	}
	if len(failed) > 0 {
		return &harness.CellFailures{Cells: failed}
	}
	return nil
}

// runGuarded runs one (workload, mode) cell converting panics inside the
// simulation — typed data-plane access failures included — into errors, so
// one crashing configuration cannot take down the whole invocation.
func runGuarded(cfg sys.Config, w workloads.Workload, mode sys.Mode, rec *trace.Recorder) (res workloads.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("panic: %w", e)
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	return workloads.RunTraced(cfg, w, mode, rec)
}

// Stencil example: the hotspot 2D heat kernel with intra-array row
// affinity (Fig 8c). The temperature grid asks the allocator to keep
// element i close to element i+cols — row neighbors — and the runtime
// picks the interleaving that maps vertically adjacent rows to mesh
// neighbors, so the stencil's operand forwarding is one hop at most.
package main

import (
	"fmt"
	"log"

	"affinityalloc"
)

func main() {
	const (
		rows  = 256
		cols  = 1024
		iters = 4
	)

	// Show the layout decision itself first.
	s, err := affinityalloc.New(affinityalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	grid, err := s.RT.AllocAffine(affinityalloc.AffineSpec{
		ElemSize: 4,
		NumElem:  rows * cols,
		AlignX:   cols, // intra-array affinity: keep i and i+cols close
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d with AlignX=%d: runtime chose %dB interleave\n", rows, cols, cols, grid.Interleave)
	hops := 0
	samples := 0
	for i := int64(0); i+cols < rows*cols; i += 997 {
		hops += s.Mesh.Hops(s.RT.BankOf(grid.ElemAddr(i)), s.RT.BankOf(grid.ElemAddr(i+cols)))
		samples++
	}
	fmt.Printf("average row-to-row distance: %.2f hops\n\n", float64(hops)/float64(samples))

	w := affinityalloc.HotspotWorkload(rows, cols, iters)
	fmt.Println("hotspot under the three configurations:")
	var base affinityalloc.Result
	for i, mode := range affinityalloc.Modes {
		res, err := affinityalloc.RunWorkload(affinityalloc.DefaultConfig(), w, mode)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		if res.Checksum != base.Checksum {
			log.Fatalf("%v computed a different grid!", mode)
		}
		d, c, o := res.Metrics.DataHops()
		fmt.Printf("  %-9v %8d cycles (%.2fx)  traffic d/c/o = %d/%d/%d\n",
			mode, res.Metrics.Cycles,
			float64(base.Metrics.Cycles)/float64(res.Metrics.Cycles), d, c, o)
	}
	fmt.Println("\nWithout affinity (Near-L3), every operand row is forwarded across a")
	fmt.Println("random-layout mesh; with it, the five-point stencil's operands are at")
	fmt.Println("most one hop from where the update is computed.")
}

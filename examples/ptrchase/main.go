// Pointer-chasing example: linked-list search under each bank-selection
// policy (§5.2). The irregular allocation API takes affinity addresses —
// here, each node's predecessor — and the policy decides how to trade
// affinity (colocate the list) against load balance (don't put every
// list on one bank).
package main

import (
	"fmt"
	"log"

	"affinityalloc"
)

func main() {
	w := affinityalloc.LinkListWorkload(256, 256)

	fmt.Println("link_list under the three configurations (Hybrid-5 policy):")
	var inCore affinityalloc.Result
	for i, mode := range affinityalloc.Modes {
		res, err := affinityalloc.RunWorkload(affinityalloc.DefaultConfig(), w, mode)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			inCore = res
		}
		fmt.Printf("  %-9v %9d cycles (%.2fx)\n", mode, res.Metrics.Cycles,
			float64(inCore.Metrics.Cycles)/float64(res.Metrics.Cycles))
	}

	fmt.Println("\nbank-selection policies under Aff-Alloc (Fig 13):")
	policies := []struct {
		name string
		cfg  affinityalloc.PolicyConfig
	}{
		{"Rnd", affinityalloc.PolicyConfig{Policy: affinityalloc.Rnd}},
		{"Lnr", affinityalloc.PolicyConfig{Policy: affinityalloc.Lnr}},
		{"Min-Hop", affinityalloc.PolicyConfig{Policy: affinityalloc.MinHop}},
		{"Hybrid-5", affinityalloc.PolicyConfig{Policy: affinityalloc.Hybrid, H: 5}},
	}
	var rnd affinityalloc.Result
	for i, p := range policies {
		cfg := affinityalloc.DefaultConfig()
		cfg.Policy = p.cfg
		res, err := affinityalloc.RunWorkload(cfg, w, affinityalloc.AffAlloc)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			rnd = res
		}
		d, c, o := res.Metrics.DataHops()
		fmt.Printf("  %-9s %9d cycles (%.2fx vs Rnd)  traffic %d flit-hops\n",
			p.name, res.Metrics.Cycles,
			float64(rnd.Metrics.Cycles)/float64(res.Metrics.Cycles), d+c+o)
	}
	fmt.Println("\nMin-Hop colocates each list on one bank (no migration at all);")
	fmt.Println("Hybrid-5 keeps nearly all of that win while spreading lists across")
	fmt.Println("banks, which is what saves it on tree-shaped structures (bin_tree).")
}

// Graph processing example: breadth-first search over a Kronecker graph
// with the paper's co-designed data structures — the Linked CSR format
// (§5.3, each cache-line-sized edge node allocated near the vertices its
// edges point to) and the spatially distributed work queue (Fig 9).
package main

import (
	"fmt"
	"log"

	"affinityalloc"
)

func main() {
	// Table-3 style input: an R-MAT graph with A/B/C = 0.57/0.19/0.19.
	g := affinityalloc.Kronecker(13, 12, 7)
	gt := g.Transpose()
	fmt.Printf("graph: |V|=%d |E|=%d avg degree %.1f\n\n", g.N, g.NumEdges(), g.AvgDegree())

	w := affinityalloc.BFSWorkload(g, gt)
	fmt.Println("bfs (direction-switching) under the three configurations:")
	var base affinityalloc.Result
	for i, mode := range affinityalloc.Modes {
		res, err := affinityalloc.RunWorkload(affinityalloc.DefaultConfig(), w, mode)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		if res.Checksum != base.Checksum {
			log.Fatalf("%v computed a different BFS tree!", mode)
		}
		d, c, o := res.Metrics.DataHops()
		fmt.Printf("  %-9v %8d cycles (%.2fx)  traffic d/c/o = %d/%d/%d  noc util %.2f\n",
			mode, res.Metrics.Cycles,
			float64(base.Metrics.Cycles)/float64(res.Metrics.Cycles),
			d, c, o, res.Metrics.NoCUtil())
	}

	fmt.Println("\nEvery configuration computes the identical BFS levels (checksums")
	fmt.Println("verified); only the data layout — and therefore the traffic — differs.")
	fmt.Println("Aff-Alloc places each Linked-CSR edge node near the parent entries its")
	fmt.Println("edges update, so the frontier's atomic updates stop crossing the mesh.")
}

// Quickstart: allocate three arrays with inter-array affinity and run
// the paper's motivating kernel, C[i] = A[i] + B[i], under the three
// configurations — conventional in-core execution, near-stream computing
// with an oblivious layout, and near-stream computing with affinity
// allocation (Figs 1 and 3).
package main

import (
	"fmt"
	"log"

	"affinityalloc"
)

func main() {
	// Build the Table-2 system: an 8x8 mesh of tiles, each with a core
	// and a 1MB L3 bank. New validates the configuration and returns an
	// actionable error for bad geometries.
	s, err := affinityalloc.New(affinityalloc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The affinity allocator speaks the paper's declarative API: B and C
	// state that element i should live with A[i]; the runtime picks the
	// interleaving (Eq. 3) and start bank that make it so.
	const n = 1 << 16
	a, err := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: n})
	if err != nil {
		log.Fatal(err)
	}
	b, err := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 4, NumElem: n, AlignTo: a.Base})
	if err != nil {
		log.Fatal(err)
	}
	c, err := s.RT.AllocAffine(affinityalloc.AffineSpec{ElemSize: 8, NumElem: n, AlignTo: a.Base})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("alignment chosen by the runtime:")
	fmt.Printf("  A: interleave %4dB  start bank %d\n", a.Interleave, a.StartBank)
	fmt.Printf("  B: interleave %4dB  start bank %d\n", b.Interleave, b.StartBank)
	fmt.Printf("  C: interleave %4dB  start bank %d (double-width elements, Eq. 3)\n", c.Interleave, c.StartBank)
	for _, i := range []int64{0, 1000, n - 1} {
		fmt.Printf("  element %6d lives on banks A=%2d B=%2d C=%2d\n",
			i, s.RT.BankOf(a.ElemAddr(i)), s.RT.BankOf(b.ElemAddr(i)), s.RT.BankOf(c.ElemAddr(i)))
	}

	// Now run the full vector-add workload under each configuration on
	// fresh systems and compare.
	fmt.Println("\nvecadd under the three configurations:")
	type row struct {
		mode    affinityalloc.Mode
		metrics affinityalloc.Metrics
	}
	var rows []row
	for _, mode := range affinityalloc.Modes {
		res, err := affinityalloc.RunWorkload(affinityalloc.DefaultConfig(), affinityalloc.VecAddWorkload(1<<18), mode)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{mode, res.Metrics})
	}
	base := float64(rows[0].metrics.Cycles)
	for _, r := range rows {
		d, ctl, off := r.metrics.DataHops()
		fmt.Printf("  %-9v  %8d cycles  (%.2fx)   traffic d/c/o = %d/%d/%d flit-hops\n",
			r.mode, r.metrics.Cycles, base/float64(r.metrics.Cycles), d, ctl, off)
	}
	fmt.Println("\nWith affinity allocation the operand-forwarding traffic disappears")
	fmt.Println("and near-data computing is finally near the data (Fig 3c).")
}

// Package topo models the on-chip tiled topology: a 2D mesh of tiles, each
// holding a core, private caches, and one shared L3 bank. It provides bank
// numbering, coordinate math, X-Y route enumeration, and Manhattan
// distances — the geometric substrate every placement decision in the
// affinity allocator is scored against.
package topo

import "fmt"

// Coord is a tile position on the mesh. X grows rightward (columns),
// Y grows downward (rows).
type Coord struct {
	X, Y int
}

// Numbering selects how banks are numbered onto mesh coordinates.
// The paper uses row-major 1D linear numbering (§4.1); quadrant
// numbering is implemented as the "other interleave patterns" extension.
type Numbering int

const (
	// RowMajor numbers banks left-to-right, top-to-bottom.
	RowMajor Numbering = iota
	// Quadrant recursively fills quadrants (Z-order), keeping nearby
	// bank numbers spatially clustered at all scales.
	Quadrant
)

func (n Numbering) String() string {
	switch n {
	case RowMajor:
		return "row-major"
	case Quadrant:
		return "quadrant"
	default:
		return fmt.Sprintf("Numbering(%d)", int(n))
	}
}

// Mesh is a W×H tile grid with a fixed bank numbering. It is immutable
// after construction and safe for concurrent use.
type Mesh struct {
	width, height int
	numbering     Numbering
	bankToCoord   []Coord
	coordToBank   []int // indexed by y*width+x
}

// NewMesh builds a mesh of the given dimensions. Width and height must be
// positive; Quadrant numbering additionally requires power-of-two square
// dimensions.
func NewMesh(width, height int, numbering Numbering) (*Mesh, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("topo: invalid mesh %dx%d", width, height)
	}
	if numbering == Quadrant {
		if width != height || !isPow2(width) {
			return nil, fmt.Errorf("topo: quadrant numbering needs a power-of-two square mesh, got %dx%d", width, height)
		}
	}
	m := &Mesh{
		width:       width,
		height:      height,
		numbering:   numbering,
		bankToCoord: make([]Coord, width*height),
		coordToBank: make([]int, width*height),
	}
	for bank := 0; bank < width*height; bank++ {
		var c Coord
		switch numbering {
		case RowMajor:
			c = Coord{X: bank % width, Y: bank / width}
		case Quadrant:
			c = zOrderCoord(bank)
		}
		m.bankToCoord[bank] = c
		m.coordToBank[c.Y*width+c.X] = bank
	}
	return m, nil
}

// MustMesh is NewMesh that panics on error, for static configurations.
func MustMesh(width, height int, numbering Numbering) *Mesh {
	m, err := NewMesh(width, height, numbering)
	if err != nil {
		panic(err)
	}
	return m
}

// zOrderCoord decodes a Z-order (Morton) index into a coordinate.
func zOrderCoord(idx int) Coord {
	var c Coord
	for bit := 0; idx>>(2*bit) != 0; bit++ {
		c.X |= (idx >> (2 * bit) & 1) << bit
		c.Y |= (idx >> (2*bit + 1) & 1) << bit
	}
	return c
}

// Width returns the number of columns.
func (m *Mesh) Width() int { return m.width }

// Height returns the number of rows.
func (m *Mesh) Height() int { return m.height }

// Banks returns the total number of banks (== tiles).
func (m *Mesh) Banks() int { return m.width * m.height }

// Numbering reports the bank numbering scheme.
func (m *Mesh) Numbering() Numbering { return m.numbering }

// CoordOf returns the mesh coordinate of a bank.
func (m *Mesh) CoordOf(bank int) Coord {
	return m.bankToCoord[bank]
}

// BankAt returns the bank number at a coordinate.
func (m *Mesh) BankAt(c Coord) int {
	return m.coordToBank[c.Y*m.width+c.X]
}

// Hops returns the Manhattan distance between two banks, which is the
// number of link traversals under X-Y dimension-ordered routing.
func (m *Mesh) Hops(from, to int) int {
	a, b := m.bankToCoord[from], m.bankToCoord[to]
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// HopsCoord returns the Manhattan distance between two coordinates.
func HopsCoord(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// LinkDir identifies the four mesh link directions.
type LinkDir int

const (
	East LinkDir = iota
	West
	South
	North
)

// Link identifies one directed mesh link leaving tile From.
type Link struct {
	From Coord
	Dir  LinkDir
}

// Route appends to dst the directed links traversed by an X-Y route from
// one bank to another and returns the extended slice. A zero-hop route
// appends nothing. Reusing dst across calls avoids allocation on hot paths.
func (m *Mesh) Route(dst []Link, from, to int) []Link {
	cur := m.bankToCoord[from]
	end := m.bankToCoord[to]
	for cur.X != end.X {
		if cur.X < end.X {
			dst = append(dst, Link{From: cur, Dir: East})
			cur.X++
		} else {
			dst = append(dst, Link{From: cur, Dir: West})
			cur.X--
		}
	}
	for cur.Y != end.Y {
		if cur.Y < end.Y {
			dst = append(dst, Link{From: cur, Dir: South})
			cur.Y++
		} else {
			dst = append(dst, Link{From: cur, Dir: North})
			cur.Y--
		}
	}
	return dst
}

// LinkIndex flattens a Link into a dense index in [0, 4*W*H), suitable for
// per-link counters.
func (m *Mesh) LinkIndex(l Link) int {
	return (l.From.Y*m.width+l.From.X)*4 + int(l.Dir)
}

// NumLinks returns the size of the dense link index space.
func (m *Mesh) NumLinks() int { return m.width * m.height * 4 }

// MemControllers returns the banks nearest the four mesh corners, where
// the DRAM channels attach (Table 2: "4 mem. ctrls ... at corners").
func (m *Mesh) MemControllers() []int {
	corners := []Coord{
		{0, 0},
		{m.width - 1, 0},
		{0, m.height - 1},
		{m.width - 1, m.height - 1},
	}
	banks := make([]int, 0, len(corners))
	seen := make(map[int]bool, len(corners))
	for _, c := range corners {
		b := m.BankAt(c)
		if !seen[b] {
			seen[b] = true
			banks = append(banks, b)
		}
	}
	return banks
}

// NearestMemController returns the memory-controller bank closest to the
// given bank and the hop distance to it.
func (m *Mesh) NearestMemController(bank int) (ctrl, hops int) {
	best, bestHops := -1, int(^uint(0)>>1)
	for _, c := range m.MemControllers() {
		if h := m.Hops(bank, c); h < bestHops {
			best, bestHops = c, h
		}
	}
	return best, bestHops
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

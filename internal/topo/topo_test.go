package topo

import (
	"testing"
	"testing/quick"
)

func TestRowMajorCoords(t *testing.T) {
	m := MustMesh(8, 8, RowMajor)
	if m.Banks() != 64 {
		t.Fatalf("Banks() = %d, want 64", m.Banks())
	}
	cases := []struct {
		bank int
		want Coord
	}{
		{0, Coord{0, 0}},
		{7, Coord{7, 0}},
		{8, Coord{0, 1}},
		{63, Coord{7, 7}},
	}
	for _, c := range cases {
		if got := m.CoordOf(c.bank); got != c.want {
			t.Errorf("CoordOf(%d) = %v, want %v", c.bank, got, c.want)
		}
		if got := m.BankAt(c.want); got != c.bank {
			t.Errorf("BankAt(%v) = %d, want %d", c.want, got, c.bank)
		}
	}
}

func TestQuadrantNumberingBijective(t *testing.T) {
	m := MustMesh(8, 8, Quadrant)
	seen := make(map[Coord]bool)
	for b := 0; b < m.Banks(); b++ {
		c := m.CoordOf(b)
		if seen[c] {
			t.Fatalf("coordinate %v assigned twice", c)
		}
		seen[c] = true
		if m.BankAt(c) != b {
			t.Fatalf("BankAt(CoordOf(%d)) = %d", b, m.BankAt(c))
		}
	}
	// Z-order keeps the first 4 banks in the top-left 2x2 quadrant.
	for b := 0; b < 4; b++ {
		c := m.CoordOf(b)
		if c.X >= 2 || c.Y >= 2 {
			t.Errorf("bank %d at %v, want inside 2x2 quadrant", b, c)
		}
	}
}

func TestQuadrantRequiresPow2Square(t *testing.T) {
	if _, err := NewMesh(8, 4, Quadrant); err == nil {
		t.Error("NewMesh(8,4,Quadrant) succeeded, want error")
	}
	if _, err := NewMesh(6, 6, Quadrant); err == nil {
		t.Error("NewMesh(6,6,Quadrant) succeeded, want error")
	}
}

func TestHopsMatchesRouteLength(t *testing.T) {
	m := MustMesh(8, 8, RowMajor)
	var buf []Link
	for from := 0; from < m.Banks(); from += 7 {
		for to := 0; to < m.Banks(); to += 5 {
			buf = m.Route(buf[:0], from, to)
			if len(buf) != m.Hops(from, to) {
				t.Fatalf("route %d->%d has %d links, Hops says %d", from, to, len(buf), m.Hops(from, to))
			}
		}
	}
}

func TestHopsProperties(t *testing.T) {
	m := MustMesh(8, 8, RowMajor)
	symmetric := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		return m.Hops(x, y) == m.Hops(y, x)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("hops not symmetric: %v", err)
	}
	triangle := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality violated: %v", err)
	}
	identity := func(a uint8) bool { return m.Hops(int(a)%64, int(a)%64) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("self distance nonzero: %v", err)
	}
}

func TestRouteIsXY(t *testing.T) {
	m := MustMesh(8, 8, RowMajor)
	var buf []Link
	buf = m.Route(buf, m.BankAt(Coord{1, 1}), m.BankAt(Coord{4, 3}))
	// X first: 3 east links, then 2 south links.
	for i := 0; i < 3; i++ {
		if buf[i].Dir != East {
			t.Fatalf("link %d dir = %v, want East", i, buf[i].Dir)
		}
	}
	for i := 3; i < 5; i++ {
		if buf[i].Dir != South {
			t.Fatalf("link %d dir = %v, want South", i, buf[i].Dir)
		}
	}
}

func TestLinkIndexDense(t *testing.T) {
	m := MustMesh(4, 4, RowMajor)
	seen := make(map[int]bool)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for d := East; d <= North; d++ {
				idx := m.LinkIndex(Link{From: Coord{x, y}, Dir: d})
				if idx < 0 || idx >= m.NumLinks() {
					t.Fatalf("LinkIndex out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("LinkIndex %d duplicated", idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestMemControllersAtCorners(t *testing.T) {
	m := MustMesh(8, 8, RowMajor)
	ctrls := m.MemControllers()
	if len(ctrls) != 4 {
		t.Fatalf("got %d controllers, want 4", len(ctrls))
	}
	want := map[int]bool{0: true, 7: true, 56: true, 63: true}
	for _, c := range ctrls {
		if !want[c] {
			t.Errorf("unexpected controller bank %d", c)
		}
	}
	ctrl, hops := m.NearestMemController(9) // (1,1)
	if ctrl != 0 || hops != 2 {
		t.Errorf("NearestMemController(9) = %d,%d; want 0,2", ctrl, hops)
	}
}

func TestSingleTileMesh(t *testing.T) {
	m := MustMesh(1, 1, RowMajor)
	if m.Hops(0, 0) != 0 {
		t.Error("1x1 mesh self-hops nonzero")
	}
	if got := len(m.MemControllers()); got != 1 {
		t.Errorf("1x1 mesh has %d controllers, want 1 (deduped corners)", got)
	}
}

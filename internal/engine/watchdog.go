package engine

import (
	"fmt"
	"sort"
	"strings"
)

// WatchdogConfig bounds a guarded event-loop run. The zero value applies
// only the stall detector at its default threshold.
type WatchdogConfig struct {
	// MaxCycles aborts the run before executing any event scheduled past
	// this cycle (0: no cycle budget). The clock never reaches
	// MaxCycles+1, so a stuck event graph that keeps rescheduling itself
	// into the future terminates instead of spinning forever.
	MaxCycles Time
	// StallEvents aborts after this many consecutive events execute
	// without the clock advancing — a same-cycle livelock, the
	// event-queue analogue of a deadlock (0: DefaultStallEvents).
	StallEvents int
}

// DefaultStallEvents is the same-cycle event budget when
// WatchdogConfig.StallEvents is zero. Real systems schedule at most a few
// events per component per cycle; a million without the clock moving is a
// wedged event graph, not load.
const DefaultStallEvents = 1 << 20

// PendingEvent is one queued event in a diagnostic dump: when it would
// fire and its scheduling sequence number (which identifies scheduling
// order — the closest thing an opaque func has to an identity).
type PendingEvent struct {
	At  Time
	Seq uint64
}

// StallError reports a watchdog trip: why the run was aborted, where the
// clock stood, and a bounded snapshot of the stuck event graph plus any
// registered component diagnostics (in-flight NoC horizons, bank queue
// depths — whatever the system wired in via AddDiagnostic).
type StallError struct {
	Reason      string
	Now         Time
	Executed    uint64         // events executed before the trip
	QueueLen    int            // total pending events at the trip
	Pending     []PendingEvent // earliest pending events (capped)
	Diagnostics []string       // "name: value" lines from AddDiagnostic
}

// pendingDumpCap bounds the pending-event snapshot in a StallError.
const pendingDumpCap = 16

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: watchdog: %s at cycle %d after %d events; %d pending", e.Reason, e.Now, e.Executed, e.QueueLen)
	if len(e.Pending) > 0 {
		b.WriteString(" [")
		for i, p := range e.Pending {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "@%d#%d", p.At, p.Seq)
		}
		if e.QueueLen > len(e.Pending) {
			fmt.Fprintf(&b, " +%d more", e.QueueLen-len(e.Pending))
		}
		b.WriteString("]")
	}
	for _, d := range e.Diagnostics {
		b.WriteString("; ")
		b.WriteString(d)
	}
	return b.String()
}

// diagnostic is one registered dump hook.
type diagnostic struct {
	name string
	fn   func() string
}

// AddDiagnostic registers a named dump hook included in any StallError
// this kernel produces. Components register cheap state reporters (queue
// horizons, in-flight counts); the hooks run only on a trip.
func (s *Sim) AddDiagnostic(name string, fn func() string) {
	s.diags = append(s.diags, diagnostic{name: name, fn: fn})
}

// PendingEvents returns a snapshot of up to max queued events in firing
// order (all of them when max <= 0).
func (s *Sim) PendingEvents(max int) []PendingEvent {
	out := make([]PendingEvent, 0, s.Pending())
	for i := range s.ring {
		b := &s.ring[i]
		for _, e := range b.ev[b.rd:] {
			out = append(out, PendingEvent{At: e.at, Seq: e.seq})
		}
	}
	for _, e := range s.spill {
		out = append(out, PendingEvent{At: e.at, Seq: e.seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// stallError builds the diagnostic dump for a trip.
func (s *Sim) stallError(reason string, executed uint64) *StallError {
	e := &StallError{
		Reason:   reason,
		Now:      s.now,
		Executed: executed,
		QueueLen: s.Pending(),
		Pending:  s.PendingEvents(pendingDumpCap),
	}
	for _, d := range s.diags {
		e.Diagnostics = append(e.Diagnostics, d.name+": "+d.fn())
	}
	return e
}

// RunGuarded executes events like Run but under a no-progress watchdog:
// it aborts with a *StallError — carrying a pending-event dump and the
// registered diagnostics — instead of hanging when the event graph stops
// making progress (same-cycle livelock) or runs past its cycle budget.
// On a clean drain it returns the final cycle and a nil error, exactly
// like Run.
func (s *Sim) RunGuarded(cfg WatchdogConfig) (Time, error) {
	stallBudget := cfg.StallEvents
	if stallBudget <= 0 {
		stallBudget = DefaultStallEvents
	}
	var executed uint64
	sameCycle := 0
	for {
		next, ok := s.peekAt()
		if !ok {
			return s.now, nil
		}
		if cfg.MaxCycles > 0 && next > cfg.MaxCycles {
			return s.now, s.stallError(fmt.Sprintf("cycle budget %d exceeded (next event at %d)", cfg.MaxCycles, next), executed)
		}
		if next == s.now {
			sameCycle++
			if sameCycle > stallBudget {
				return s.now, s.stallError(fmt.Sprintf("no progress: %d events executed without the clock advancing", sameCycle), executed)
			}
		} else {
			sameCycle = 0
		}
		e := s.pop()
		if e.at > s.now {
			s.now = e.at
		}
		e.run()
		executed++
	}
}

package engine

import (
	"math/rand"
	"testing"
)

// eventQueue is the surface shared by the ladder queue (Sim) and the
// container/heap reference (RefQueue); the differential tests drive both
// through it with identical schedules.
type eventQueue interface {
	At(Time, func())
	After(Time, func())
	ScheduleArg(Time, func(uint64), uint64)
	Advance(Time)
	RunUntil(Time) Time
	Run() Time
	Now() Time
	Pending() int
}

// firing records one observed event execution: which event fired and at
// what cycle the clock stood.
type firing struct {
	label uint64
	at    Time
}

// driveSchedule runs one randomized schedule script against q and returns
// the firing log. Every two bytes of ops produce one scheduling action
// drawn from the mix the kernel must order correctly: future closures,
// same-cycle events (FIFO), past events (clamped), the ScheduleArg fast
// path, and nested events that schedule children from their callbacks.
// Interleaved RunUntil/Advance phases exercise partial drains. The script
// is a pure function of ops, so two queue implementations given the same
// bytes must produce identical logs.
func driveSchedule(q eventQueue, ops []byte) []firing {
	var log []firing
	var nextLabel uint64
	argFn := func(arg uint64) {
		log = append(log, firing{arg, q.Now()})
	}
	var schedule func(depth int, sel, d byte)
	schedule = func(depth int, sel, d byte) {
		label := nextLabel
		nextLabel++
		// Deltas straddle the ring window so schedules land in both the
		// near-future buckets and the far-future spill.
		delta := Time(d) * Time(d%7+1)
		fire := func() { log = append(log, firing{label, q.Now()}) }
		switch sel % 6 {
		case 0:
			q.After(delta, fire)
		case 1: // same cycle: must fire in scheduling order
			q.At(q.Now(), fire)
		case 2: // past: clamps to the current cycle
			at := Time(0)
			if q.Now() > delta {
				at = q.Now() - delta
			}
			q.At(at, fire)
		case 3: // allocation-free fast path
			q.ScheduleArg(q.Now()+delta, argFn, label)
		case 4: // nested: schedules two children when it fires
			q.After(delta, func() {
				fire()
				if depth < 3 {
					schedule(depth+1, sel+13, d+31)
					schedule(depth+1, sel+29, d+57)
				}
			})
		case 5: // far future, explicitly beyond the ring window
			q.After(delta+2*ringWindow, fire)
		}
	}
	for i := 0; i+1 < len(ops); i += 2 {
		schedule(0, ops[i], ops[i+1])
		switch ops[i] % 11 {
		case 0:
			q.RunUntil(q.Now() + Time(ops[i+1]%128))
		case 1:
			q.Advance(q.Now() + Time(ops[i+1]%64))
		}
	}
	q.Run()
	return log
}

// diffQueues drives both implementations with the same script and
// reports the first divergence.
func diffQueues(t *testing.T, ops []byte) {
	t.Helper()
	got := driveSchedule(New(1), ops)
	want := driveSchedule(&RefQueue{}, ops)
	if len(got) != len(want) {
		t.Fatalf("ladder fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d: ladder {label %d @%d}, reference {label %d @%d}",
				i, got[i].label, got[i].at, want[i].label, want[i].at)
		}
	}
}

// TestDifferentialDeterminism drives the ladder queue and the reference
// heap with ~10k randomized schedules and asserts bit-identical firing
// order — the regression net under every kernel data-structure change.
func TestDifferentialDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ops := make([]byte, 2+rng.Intn(100)*2)
		rng.Read(ops)
		diffQueues(t, ops)
	}
}

// TestSameCycleFIFO is the explicit ordering regression: events scheduled
// for the same cycle — up front, from callbacks, and across the
// ring/spill boundary — fire in scheduling order.
func TestSameCycleFIFO(t *testing.T) {
	s := New(1)
	var order []int
	note := func(k int) func() { return func() { order = append(order, k) } }
	// Far-future cycle shared by spill-resident and (after the window
	// advances) bucket-resident events.
	const at = 5 * ringWindow
	s.At(at, note(0)) // lands in the spill
	s.At(1, func() {
		// By now the window still precedes `at`; these go to the spill
		// behind note(0) and must stay behind it.
		s.At(at, note(1))
		s.At(at, note(2))
	})
	s.At(at-ringWindow/2, func() {
		// The window has advanced; `at` is now bucket-resident, so this
		// appends directly after the migrated spill events.
		s.At(at, note(3))
		s.At(at, note(4))
	})
	s.At(at, note(5))
	s.Run()
	want := []int{0, 5, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v (same-cycle FIFO broken)", order, want)
		}
	}
}

// TestRunUntilSemantics pins the documented RunUntil contract after the
// doc/behavior mismatch fix: the deadline comes back (and the clock parks
// there) when the queue drains early or the next event lies beyond it;
// a clock already past the deadline is returned unchanged.
func TestRunUntilSemantics(t *testing.T) {
	cases := []struct {
		name  string
		setup func(*Sim)
		dead  Time
		want  Time
		after Time // expected Now() after the call
	}{
		{"drained-early", func(s *Sim) { s.At(10, func() {}) }, 25, 25, 25},
		{"empty-queue", func(s *Sim) {}, 40, 40, 40},
		{"exact-deadline", func(s *Sim) { s.At(25, func() {}) }, 25, 25, 25},
		{"next-event-later", func(s *Sim) { s.At(10, func() {}); s.At(30, func() {}) }, 25, 25, 25},
		{"past-deadline", func(s *Sim) { s.Advance(50); s.At(60, func() {}) }, 25, 50, 50},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(1)
			c.setup(s)
			if got := s.RunUntil(c.dead); got != c.want {
				t.Errorf("RunUntil(%d) = %d, want %d", c.dead, got, c.want)
			}
			if s.Now() != c.after {
				t.Errorf("Now() after RunUntil = %d, want %d", s.Now(), c.after)
			}
		})
	}
}

// TestRunUntilResume: events beyond the deadline stay queued and fire on
// the next drain, and schedules made while parked at the deadline are
// relative to it.
func TestRunUntilResume(t *testing.T) {
	s := New(1)
	var order []Time
	s.At(10, func() { order = append(order, s.Now()) })
	s.At(30, func() { order = append(order, s.Now()) })
	if got := s.RunUntil(20); got != 20 {
		t.Fatalf("RunUntil(20) = %d, want 20", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
	s.After(5, func() { order = append(order, s.Now()) }) // at 25, after the park point
	s.Run()
	want := []Time{10, 25, 30}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("firing cycles %v, want %v", order, want)
	}
}

// TestScheduleArgOrdering interleaves the arg fast path with closure
// events at one cycle: the (at, seq) order must not care which form an
// event took.
func TestScheduleArgOrdering(t *testing.T) {
	s := New(1)
	var order []uint64
	afn := func(arg uint64) { order = append(order, arg) }
	s.ScheduleArg(10, afn, 0)
	s.At(10, func() { order = append(order, 1) })
	s.ScheduleArg(10, afn, 2)
	s.ScheduleArg(5, afn, 99)
	s.Run()
	want := []uint64{99, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestPendingAcrossLevels: Pending counts bucketed and spilled events.
func TestPendingAcrossLevels(t *testing.T) {
	s := New(1)
	s.At(1, func() {})
	s.At(10*ringWindow, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending %d after drain, want 0", s.Pending())
	}
}

// TestZeroAllocSteadyState is the allocation gate the CI workflow runs:
// once bucket and spill storage has warmed, At, ScheduleArg and Run
// allocate nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	s := New(1)
	fn := func() {}
	afn := func(uint64) {}
	churn := func() {
		base := s.Now()
		for i := 0; i < 256; i++ {
			// Horizons straddle the ring window: both levels stay hot.
			s.At(base+Time(i%200), fn)
			s.ScheduleArg(base+Time(i)*7, afn, uint64(i))
		}
		s.Run()
		// Park the clock on a ring-window boundary so every drain maps
		// cycles onto the same bucket slots: bucket capacities then reach
		// their steady state after one warm drain instead of amortizing
		// occasional growth over many.
		s.Advance((s.Now() + ringWindow) &^ Time(ringMask))
	}
	churn() // warm bucket and spill storage
	churn()
	if avg := testing.AllocsPerRun(50, churn); avg != 0 {
		t.Errorf("steady-state At/ScheduleArg/Run allocated %.1f times per drain, want 0", avg)
	}
}

package engine

import "container/heap"

// RefQueue is the reference event queue: the original container/heap
// implementation the ladder queue replaced, retained as the executable
// specification of (at, seq) ordering. The differential determinism tests
// and the FuzzLadderQueue target drive Sim and RefQueue with identical
// schedules and assert identical firing orders, and the kernel
// microbenchmarks use it as the churn baseline (every Push boxes the
// event through interface{}, which is exactly the allocation the ladder
// queue removes).
type RefQueue struct {
	pq  refHeap
	now Time
	seq uint64
}

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
	afn func(uint64)
	arg uint64
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated cycle.
func (q *RefQueue) Now() Time { return q.now }

// Pending reports the number of queued events.
func (q *RefQueue) Pending() int { return len(q.pq) }

// At schedules fn at the given absolute cycle, clamping past times to now
// exactly like Sim.At.
func (q *RefQueue) At(at Time, fn func()) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	heap.Push(&q.pq, refEvent{at: at, seq: q.seq, fn: fn})
}

// After schedules fn delay cycles from now.
func (q *RefQueue) After(delay Time, fn func()) {
	q.At(q.now+delay, fn)
}

// ScheduleArg schedules fn(arg) at the given absolute cycle, mirroring
// Sim.ScheduleArg.
func (q *RefQueue) ScheduleArg(at Time, fn func(uint64), arg uint64) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	heap.Push(&q.pq, refEvent{at: at, seq: q.seq, afn: fn, arg: arg})
}

// Advance moves the clock forward without running events; never rewinds.
func (q *RefQueue) Advance(to Time) {
	if to > q.now {
		q.now = to
	}
}

// Run executes events until the queue drains and returns the final cycle.
// Like Sim.Run, the clock never rewinds.
func (q *RefQueue) Run() Time {
	for len(q.pq) > 0 {
		e := heap.Pop(&q.pq).(refEvent)
		if e.at > q.now {
			q.now = e.at
		}
		if e.afn != nil {
			e.afn(e.arg)
		} else {
			e.fn()
		}
	}
	return q.now
}

// RunUntil executes events with timestamps <= deadline, parking the clock
// at the deadline when the queue drained earlier — the same documented
// semantics as Sim.RunUntil.
func (q *RefQueue) RunUntil(deadline Time) Time {
	for len(q.pq) > 0 && q.pq[0].at <= deadline {
		e := heap.Pop(&q.pq).(refEvent)
		if e.at > q.now {
			q.now = e.at
		}
		if e.afn != nil {
			e.afn(e.arg)
		} else {
			e.fn()
		}
	}
	if q.now < deadline {
		q.now = deadline
	}
	return q.now
}

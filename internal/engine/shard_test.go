package engine

import (
	"math/rand"
	"testing"
)

// shardTraffic drives a Coordinator with a deterministic synthetic
// message storm: every event adds into its shard's counter and, while it
// has hops left, forwards itself to another shard at least lookahead
// cycles ahead. It returns the per-shard counters.
func shardTraffic(k int, lookahead Time, seeds, hops int) []uint64 {
	c := NewCoordinator(k, lookahead, 1)
	counts := make([]uint64, k)
	rng := rand.New(rand.NewSource(7))

	// arg packs (shard, hopsLeft, value): value adds into counts[shard];
	// hopsLeft > 0 forwards to (shard+value)%k.
	var hop func(arg uint64)
	forward := func(src int, at Time, arg uint64) {
		shard := int(arg>>48) % k
		c.Send(src, shard, at, hop, arg)
	}
	hop = func(arg uint64) {
		shard := int(arg>>48) % k
		left := (arg >> 40) & 0xff
		val := arg & 0xffffffffff
		counts[shard] += val
		if left == 0 {
			return
		}
		next := (shard + int(val)) % k
		at := c.Shard(shard).Now() + lookahead + Time(val%5)
		narg := uint64(next)<<48 | (left-1)<<40 | val
		forward(shard, at, narg)
	}

	for i := 0; i < seeds; i++ {
		shard := rng.Intn(k)
		val := uint64(rng.Intn(100) + 1)
		at := Time(rng.Intn(64))
		arg := uint64(shard)<<48 | uint64(hops)<<40 | val
		c.Shard(shard).ScheduleArg(at, hop, arg)
	}
	c.Run()
	return counts
}

// TestCoordinatorConservesWork checks the sharded kernel executes exactly
// the work a single global queue would: the total value accumulated is
// identical for every shard count, and matches a RefQueue oracle running
// the same logical program.
func TestCoordinatorConservesWork(t *testing.T) {
	const lookahead, seeds, hops = 4, 200, 6

	// Oracle: single RefQueue, same seeding and forwarding rules on a
	// virtual k-shard machine (counts indexed by virtual shard).
	oracle := func(k int) []uint64 {
		q := &RefQueue{}
		counts := make([]uint64, k)
		var hop func(arg uint64)
		hop = func(arg uint64) {
			shard := int(arg>>48) % k
			left := (arg >> 40) & 0xff
			val := arg & 0xffffffffff
			counts[shard] += val
			if left == 0 {
				return
			}
			next := (shard + int(val)) % k
			// The oracle's single clock reads the event's own timestamp,
			// which equals the shard clock at execution in the sharded run
			// (RunUntil only parks clocks between events, never before one).
			at := q.Now() + lookahead + Time(val%5)
			q.ScheduleArg(at, hop, uint64(next)<<48|(left-1)<<40|val)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < seeds; i++ {
			shard := rng.Intn(k)
			val := uint64(rng.Intn(100) + 1)
			at := Time(rng.Intn(64))
			q.ScheduleArg(at, hop, uint64(shard)<<48|uint64(hops)<<40|val)
		}
		q.Run()
		return counts
	}

	for _, k := range []int{1, 2, 4} {
		want := oracle(k)
		got := shardTraffic(k, lookahead, seeds, hops)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d shard %d: coordinator accumulated %d, oracle %d", k, i, got[i], want[i])
			}
		}
	}
}

// TestCoordinatorDeterministic runs the same sharded program repeatedly
// and across the race detector's goroutine shuffling: per-shard counters
// must be bit-identical every time.
func TestCoordinatorDeterministic(t *testing.T) {
	const lookahead, seeds, hops = 3, 150, 8
	for _, k := range []int{2, 4} {
		want := shardTraffic(k, lookahead, seeds, hops)
		for rep := 0; rep < 5; rep++ {
			got := shardTraffic(k, lookahead, seeds, hops)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d rep %d shard %d: %d != %d (nondeterministic)", k, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCoordinatorLookaheadViolationPanics checks Send rejects a
// cross-shard timestamp inside the conservative window — the guard that
// keeps a mispartitioned machine from silently corrupting the schedule.
func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	c := NewCoordinator(2, 10, 1)
	c.Shard(0).Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below source clock + lookahead did not panic")
		}
	}()
	c.Send(0, 1, 105, func(uint64) {}, 0) // needs at >= 110
}

// TestCoordinatorDrainAccounting checks the sharded drain flushes every
// shard and inbox without advancing any clock.
func TestCoordinatorDrainAccounting(t *testing.T) {
	c := NewCoordinator(4, 5, 1)
	var counts [4]uint64
	for i := 0; i < 4; i++ {
		c.Shard(i).Advance(Time(100 * (i + 1)))
	}
	for i := 0; i < 4; i++ {
		i := i
		add := func(v uint64) { counts[i] += v }
		for j := 0; j < 50; j++ {
			c.Shard(i).ScheduleArg(c.Shard(i).Now()+Time(j*11), add, 1)
		}
		// One cross-shard retirement per shard, still in an inbox.
		dst := (i + 1) % 4
		c.Send(i, dst, c.Shard(i).Now()+5, func(v uint64) { counts[dst] += v }, 100)
	}

	c.DrainAccounting()

	for i := 0; i < 4; i++ {
		if got, want := c.Shard(i).Now(), Time(100*(i+1)); got != want {
			t.Errorf("shard %d: Now() = %d after drain, want %d", i, got, want)
		}
		if counts[i] != 50+100 {
			t.Errorf("shard %d: count = %d, want 150", i, counts[i])
		}
	}
	if c.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", c.Pending())
	}
}

// TestCoordinatorSingleShardSelfSend checks the degenerate one-shard
// kernel still routes Send traffic (including self-sends issued while
// running) instead of stranding it in the inbox.
func TestCoordinatorSingleShardSelfSend(t *testing.T) {
	c := NewCoordinator(1, 2, 1)
	var total uint64
	var chain func(arg uint64)
	chain = func(arg uint64) {
		total++
		if arg > 0 {
			c.Send(0, 0, c.Shard(0).Now()+2, chain, arg-1)
		}
	}
	c.Shard(0).ScheduleArg(0, chain, 9)
	c.Run()
	if total != 10 {
		t.Fatalf("chain executed %d times, want 10", total)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

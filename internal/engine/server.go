package engine

// Server models a pipelined shared resource with fixed capacity per
// cycle — an L3 bank port, a NoC link, a DRAM channel, a compute thread
// pool. Capacity is tracked in coarse time buckets over a sliding window,
// and a reservation takes the earliest available capacity at or after its
// requested time.
//
// Unlike a scalar busy-until timestamp, this admits out-of-order
// reservations: the simulator processes actors round-robin, so a request
// with an early timestamp may be simulated after one with a late
// timestamp, and it must still be able to claim the idle capacity in
// between. A scalar would serialize them in simulation order and
// propagate phantom queueing delays across the whole machine.
type Server struct {
	width     Time // cycles per bucket
	perBucket int  // capacity units per bucket
	ring      []int
	base      Time // time of ring[0]
}

// NewServer builds a resource with unitsPerCycle capacity, bucketed at
// width cycles, remembering windowBuckets of schedule.
func NewServer(unitsPerCycle int, width Time, windowBuckets int) *Server {
	// Capacity below one unit/cycle would make perBucket zero and any
	// Reserve spin forever hunting for free capacity; clamp like width
	// and windowBuckets.
	if unitsPerCycle < 1 {
		unitsPerCycle = 1
	}
	if width < 1 {
		width = 1
	}
	if windowBuckets < 4 {
		windowBuckets = 4
	}
	return &Server{
		width:     width,
		perBucket: unitsPerCycle * int(width),
		ring:      make([]int, windowBuckets),
	}
}

// slide advances the window so bucket index b (relative to base) fits,
// dropping the oldest schedule.
func (s *Server) slide(b int) int {
	n := len(s.ring)
	// Keep the target at 3/4 of the window so there is room ahead.
	shift := b - (3*n)/4
	if shift <= 0 {
		return b
	}
	if shift >= n {
		for i := range s.ring {
			s.ring[i] = 0
		}
	} else {
		copy(s.ring, s.ring[shift:])
		for i := n - shift; i < n; i++ {
			s.ring[i] = 0
		}
	}
	s.base += Time(shift) * s.width
	return b - shift
}

// Reserve claims `units` of capacity at the earliest time >= at,
// returning when service begins. Units spill into later buckets when a
// bucket fills, modeling queueing under sustained overload.
func (s *Server) Reserve(at Time, units int) Time {
	if units <= 0 {
		return at
	}
	if at < s.base {
		at = s.base // older than the window: clamp (the past is full)
	}
	b := int((at - s.base) / s.width)
	if b >= len(s.ring) {
		b = s.slide(b)
	}
	start := Time(0)
	first := true
	for units > 0 {
		if b >= len(s.ring) {
			b = s.slide(b)
		}
		free := s.perBucket - s.ring[b]
		if free > 0 {
			take := free
			if take > units {
				take = units
			}
			s.ring[b] += take
			units -= take
			if first {
				first = false
				start = s.base + Time(b)*s.width
				if at > start {
					start = at
				}
			}
		}
		b++
	}
	return start
}

// Horizon returns the end of the currently remembered schedule — a
// debugging aid.
func (s *Server) Horizon() Time {
	return s.base + Time(len(s.ring))*s.width
}

package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Coordinator shards the event kernel: K independent ladder-queue Sims,
// one per partition of the simulated machine (mesh quadrants, bank
// groups), synchronized conservatively in the classic PDES style.
//
// Time advances in lookahead-wide windows. Every shard executes its local
// events up to the window deadline in parallel; a cross-shard message
// sent during a window is timestamped at least lookahead cycles past the
// sender's clock (the minimum cross-shard NoC link latency), so it can
// never be due inside the window that produced it. Messages land in the
// destination shard's inbox and are admitted at the next window boundary
// in (at, source shard, source sequence) order — an order every run
// reproduces, making sharded execution deterministic for a fixed script
// regardless of goroutine scheduling.
//
// The Coordinator also serves as the clock bundle for deferred-retirement
// accounting on a sharded machine: components schedule each retirement on
// the shard that owns the touched counter, and DrainAccounting flushes
// all shards in parallel without advancing any clock (see
// Sim.DrainAccounting). Counter updates are commutative adds over
// shard-owned state, so parallel drains are race-free and order-blind.
type Coordinator struct {
	sims      []*Sim
	lookahead Time

	inboxes []shardInbox
	sendSeq []uint64 // per-source message counters (touched only by the source)

	// scratch for admit: reused sorted batch.
	batch []shardMsg
}

// shardMsg is one cross-shard message awaiting admission.
type shardMsg struct {
	at  Time
	src int
	seq uint64
	fn  func(uint64)
	arg uint64
}

// shardInbox collects messages addressed to one shard. The mutex guards
// concurrent senders during a window; admission happens between windows,
// with all shard goroutines quiescent.
type shardInbox struct {
	mu   sync.Mutex
	msgs []shardMsg
}

// NewCoordinator builds a sharded kernel of n Sims with the given
// lookahead (clamped to >= 1: a zero lookahead admits no conservative
// window). Shard i's random source is seeded deterministically from seed
// and i.
func NewCoordinator(n int, lookahead Time, seed int64) *Coordinator {
	if n < 1 {
		n = 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	c := &Coordinator{
		sims:      make([]*Sim, n),
		lookahead: lookahead,
		inboxes:   make([]shardInbox, n),
		sendSeq:   make([]uint64, n),
	}
	for i := range c.sims {
		c.sims[i] = New(seed + int64(i)*0x9e37)
	}
	return c
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.sims) }

// Lookahead returns the conservative synchronization window width.
func (c *Coordinator) Lookahead() Time { return c.lookahead }

// Shard returns shard i's kernel. Callers may schedule local events on it
// directly; cross-shard work must go through Send.
func (c *Coordinator) Shard(i int) *Sim { return c.sims[i] }

// Pending reports the total queued events across shards and inboxes.
func (c *Coordinator) Pending() int {
	n := 0
	for i := range c.sims {
		n += c.sims[i].Pending()
		n += len(c.inboxes[i].msgs)
	}
	return n
}

// Send enqueues fn(arg) on shard dst at cycle at. It is the only legal
// way to schedule across shards: the timestamp must respect the
// conservative lookahead (at >= source clock + lookahead), which is what
// lets every shard run a full window ahead without waiting on its
// neighbors. A violation is a programming error in the partitioning (a
// cross-shard path faster than the declared minimum link latency) and
// panics rather than silently corrupting the schedule.
//
// Send may be called concurrently from different source shards (each
// executing its window on its own goroutine); one source must not send on
// behalf of another.
func (c *Coordinator) Send(src, dst int, at Time, fn func(uint64), arg uint64) {
	if min := c.sims[src].Now() + c.lookahead; at < min {
		panic(fmt.Sprintf("engine: cross-shard send from %d to %d at cycle %d violates lookahead %d (source clock %d)",
			src, dst, at, c.lookahead, c.sims[src].Now()))
	}
	c.sendSeq[src]++
	m := shardMsg{at: at, src: src, seq: c.sendSeq[src], fn: fn, arg: arg}
	in := &c.inboxes[dst]
	in.mu.Lock()
	in.msgs = append(in.msgs, m)
	in.mu.Unlock()
}

// admit moves every inbox message into its destination shard's queue, in
// (at, src, seq) order so admission — and therefore execution — is
// deterministic no matter how sender goroutines interleaved their
// appends. Called only between windows, when all shards are quiescent.
func (c *Coordinator) admit() {
	for i := range c.inboxes {
		in := &c.inboxes[i]
		if len(in.msgs) == 0 {
			continue
		}
		c.batch = append(c.batch[:0], in.msgs...)
		in.msgs = in.msgs[:0]
		sort.Slice(c.batch, func(a, b int) bool {
			x, y := &c.batch[a], &c.batch[b]
			if x.at != y.at {
				return x.at < y.at
			}
			if x.src != y.src {
				return x.src < y.src
			}
			return x.seq < y.seq
		})
		for _, m := range c.batch {
			c.sims[i].ScheduleArg(m.at, m.fn, m.arg)
		}
	}
}

// minPending returns the earliest event cycle across all shards; ok is
// false when every shard is empty.
func (c *Coordinator) minPending() (at Time, ok bool) {
	at = Forever
	for _, s := range c.sims {
		if t, o := s.peekAt(); o && t < at {
			at, ok = t, true
		}
	}
	return at, ok
}

// Run executes all shards to completion and returns the final cycle (the
// latest shard clock). Each iteration admits pending cross-shard
// messages, finds the globally earliest event, and lets every shard
// execute in parallel up to that cycle plus the lookahead window; clocks
// park at each window deadline, so shards stay within one window of each
// other — the conservative guarantee that no admitted message is ever in
// a receiver's past.
func (c *Coordinator) Run() Time {
	if len(c.sims) == 1 {
		// Degenerate kernel: no windows needed, but keep admitting —
		// events may Send to the (only) shard while running.
		s := c.sims[0]
		for {
			c.admit()
			if s.Pending() == 0 {
				return s.Now()
			}
			s.Run()
		}
	}
	k := len(c.sims)
	work := make([]chan Time, k)
	done := make(chan struct{}, k)
	for i := range work {
		work[i] = make(chan Time)
		go func(i int) {
			for dl := range work[i] {
				c.sims[i].RunUntil(dl)
				done <- struct{}{}
			}
		}(i)
	}
	for {
		c.admit()
		next, ok := c.minPending()
		if !ok {
			break
		}
		deadline := next + c.lookahead - 1
		for i := range work {
			work[i] <- deadline
		}
		for range work {
			<-done
		}
	}
	for i := range work {
		close(work[i])
	}
	var max Time
	for _, s := range c.sims {
		max = MaxTime(max, s.Now())
	}
	return max
}

// DrainAccounting flushes every shard's pending retirement events in
// parallel without advancing any clock — the sharded form of
// Sim.DrainAccounting, and the drain every counter reader goes through.
// Inbox messages are admitted first so a cross-shard retirement posted
// but not yet admitted cannot be missed. Safe only under the accounting
// contract: events are commutative adds over state owned by their shard.
func (c *Coordinator) DrainAccounting() {
	c.admit()
	if len(c.sims) == 1 {
		c.sims[0].DrainAccounting()
		return
	}
	var wg sync.WaitGroup
	for _, s := range c.sims {
		if s.Pending() == 0 {
			continue
		}
		wg.Add(1)
		go func(s *Sim) {
			defer wg.Done()
			s.DrainAccounting()
		}(s)
	}
	wg.Wait()
}

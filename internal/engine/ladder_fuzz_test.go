package engine

import "testing"

// FuzzLadderQueue feeds arbitrary op scripts through the differential
// driver: the ladder queue must fire the exact event sequence of the
// container/heap reference for every input. Seeds come from the
// randomized determinism test's generator shapes.
func FuzzLadderQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 255, 4, 31, 5, 200, 3, 7})
	f.Add([]byte{0, 10, 1, 10, 2, 10, 3, 10, 4, 10, 5, 10})
	f.Add([]byte{22, 99, 0, 1, 11, 128, 4, 250, 4, 249, 2, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048] // bound nested fan-out
		}
		diffQueues(t, ops)
	})
}

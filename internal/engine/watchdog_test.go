package engine

import (
	"errors"
	"strings"
	"testing"
)

// Two nodes passing a token at the same cycle forever: the event-queue
// shape of a deadlocked credit loop. Run would spin on it; RunGuarded
// must trip the stall detector.
func TestWatchdogTripsOnSameCycleLivelock(t *testing.T) {
	s := New(1)
	var nodeA, nodeB func()
	nodeA = func() { s.At(s.Now(), nodeB) }
	nodeB = func() { s.At(s.Now(), nodeA) }
	s.At(10, nodeA)
	s.AddDiagnostic("noc", func() string { return "horizon=42" })

	_, err := s.RunGuarded(WatchdogConfig{StallEvents: 100})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if stall.Reason == "" || !strings.Contains(stall.Reason, "no progress") {
		t.Fatalf("reason %q", stall.Reason)
	}
	if stall.Now != 10 {
		t.Fatalf("tripped at cycle %d, want 10 (the clock never advanced)", stall.Now)
	}
	if stall.QueueLen == 0 || len(stall.Pending) == 0 {
		t.Fatal("stall error carries no pending-event dump")
	}
	msg := err.Error()
	for _, want := range []string{"watchdog", "no progress", "pending", "@10#", "noc: horizon=42"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// An event graph that keeps rescheduling itself into the future never
// drains; the cycle budget bounds it.
func TestWatchdogTripsOnCycleBudget(t *testing.T) {
	s := New(1)
	var tick func()
	tick = func() { s.After(10, tick) }
	s.At(0, tick)

	now, err := s.RunGuarded(WatchdogConfig{MaxCycles: 1000})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !strings.Contains(stall.Reason, "cycle budget") {
		t.Fatalf("reason %q", stall.Reason)
	}
	if now > 1000 {
		t.Fatalf("clock ran to %d past the budget", now)
	}
	if stall.Executed == 0 {
		t.Fatal("no events executed before the budget trip")
	}
}

// Same-cycle bursts below the budget are load, not livelock.
func TestWatchdogToleratesBoundedSameCycleBursts(t *testing.T) {
	s := New(1)
	fired := 0
	for cycle := Time(1); cycle <= 3; cycle++ {
		for i := 0; i < 50; i++ {
			s.At(cycle, func() { fired++ })
		}
	}
	end, err := s.RunGuarded(WatchdogConfig{StallEvents: 60})
	if err != nil {
		t.Fatalf("bounded bursts tripped the watchdog: %v", err)
	}
	if end != 3 || fired != 150 {
		t.Fatalf("end=%d fired=%d", end, fired)
	}
}

// On a clean drain RunGuarded behaves exactly like Run.
func TestRunGuardedMatchesRunOnCleanDrain(t *testing.T) {
	build := func() (*Sim, *[]Time) {
		s := New(1)
		var trace []Time
		var hop func()
		hop = func() {
			trace = append(trace, s.Now())
			if s.Now() < 50 {
				s.After(7, hop)
			}
		}
		s.At(3, hop)
		return s, &trace
	}

	ref, refTrace := build()
	wantEnd := ref.Run()

	s, trace := build()
	end, err := s.RunGuarded(WatchdogConfig{MaxCycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if end != wantEnd {
		t.Fatalf("end %d, Run ended at %d", end, wantEnd)
	}
	if len(*trace) != len(*refTrace) {
		t.Fatalf("executed %d events, Run executed %d", len(*trace), len(*refTrace))
	}
	for i := range *trace {
		if (*trace)[i] != (*refTrace)[i] {
			t.Fatalf("event %d at cycle %d, Run at %d", i, (*trace)[i], (*refTrace)[i])
		}
	}
}

// The pending dump is bounded, sorted by firing order, and reports the
// overflow count.
func TestStallErrorPendingDumpCapped(t *testing.T) {
	s := New(1)
	var spin func()
	spin = func() { s.At(s.Now(), spin) }
	s.At(5, spin)
	for i := 0; i < 40; i++ {
		s.At(Time(100+i), func() {})
	}
	_, err := s.RunGuarded(WatchdogConfig{StallEvents: 10})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v", err)
	}
	if len(stall.Pending) != pendingDumpCap {
		t.Fatalf("dump holds %d events, want cap %d", len(stall.Pending), pendingDumpCap)
	}
	for i := 1; i < len(stall.Pending); i++ {
		a, b := stall.Pending[i-1], stall.Pending[i]
		if a.At > b.At || (a.At == b.At && a.Seq > b.Seq) {
			t.Fatalf("dump not in firing order at %d: %+v then %+v", i, a, b)
		}
	}
	if stall.QueueLen <= len(stall.Pending) {
		t.Fatalf("queue length %d should exceed the dump", stall.QueueLen)
	}
	if !strings.Contains(err.Error(), "more]") {
		t.Fatalf("error %q does not report the overflow", err)
	}
}

// Package engine provides the deterministic discrete-event kernel the
// system simulator runs on: a cycle clock, an ordered event queue, and a
// seeded random source. Events scheduled for the same cycle fire in
// scheduling order, making whole-system runs reproducible bit-for-bit for
// a fixed seed.
//
// The queue is a two-level ladder (calendar) queue engineered for zero
// steady-state allocations — see DESIGN.md "Event kernel" for the
// ordering invariants:
//
//   - Near-future events (within ringWindow cycles of the ring base) land
//     in per-cycle ring buckets. Buckets are FIFO, so the (at, seq) total
//     order falls out of append order for free.
//   - Far-future events overflow into an unboxed binary min-heap ordered
//     by (at, seq) (the "spill"). When the ring base advances into spill
//     territory, due events migrate into their ring buckets in heap order,
//     which preserves same-cycle FIFO against later direct appends.
//
// Events are stored unboxed ([]event slices reused as a freelist; the old
// container/heap kernel boxed every push through interface{}), so
// At/After/ScheduleArg/Run/RunUntil/RunGuarded allocate nothing once the
// bucket and spill storage has warmed up.
package engine

import (
	"math/bits"
	"math/rand"
)

// Time is a simulated cycle count.
type Time uint64

// Forever is a sentinel time later than any reachable cycle.
const Forever Time = ^Time(0)

const (
	// ringWindow is the span of cycles covered by the near-future ring
	// buckets. Power of two so slot mapping is a mask.
	ringWindow = 256
	ringMask   = ringWindow - 1
)

// DrainPending is the queue depth at which callers that use the kernel
// purely for deferred retirement (counter updates scheduled at completion
// cycles) should drain it with Run. Retirement events are commutative
// adds, so draining early never changes final counter values; the bound
// keeps the queue's memory footprint flat over arbitrarily long runs.
const DrainPending = 1 << 15

// event is one queued callback, stored unboxed in a bucket or the spill
// heap. Exactly one of fn/afn is set: fn is the closure form (At/After),
// afn+arg the allocation-free argument form (ScheduleArg).
type event struct {
	at  Time
	seq uint64
	fn  func()
	afn func(uint64)
	arg uint64
}

func (e *event) run() {
	if e.afn != nil {
		e.afn(e.arg)
		return
	}
	e.fn()
}

// bucket is one ring slot: a FIFO of events for a single cycle. rd is the
// read cursor; the backing array is reused across cycles (the freelist).
type bucket struct {
	ev []event
	rd int
}

// Sim is the event kernel. The zero value is not usable; call New.
type Sim struct {
	now Time
	seq uint64
	rng *rand.Rand

	// ring holds near-future events: ring[(at-base+head)&ringMask] is the
	// bucket for cycle at, valid for at in [base, base+ringWindow).
	ring  [ringWindow]bucket
	base  Time // cycle covered by ring[head]
	head  int
	nring int // events currently bucketed

	// occ is the ring occupancy bitmap: bit j is set iff ring[j] holds
	// unread events. peekAt and pop's window advance consult it instead of
	// probing slots one by one, so a sparse ring costs O(words) instead of
	// O(ringWindow) per peek.
	occ [ringWindow / 64]uint64

	// spill holds events at or beyond base+ringWindow, as an unboxed
	// binary min-heap ordered by (at, seq).
	spill []event

	// diags are the registered watchdog diagnostics (see AddDiagnostic);
	// they run only when RunGuarded trips.
	diags []diagnostic
}

// New builds a kernel whose random source is seeded deterministically.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated cycle.
func (s *Sim) Now() Time { return s.now }

// Rand returns the kernel's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.nring + len(s.spill) }

// schedule enqueues e at cycle at (already clamped to >= now).
//
// Invariant: base <= now at every schedule point (pop advances base only
// to the cycle of the event it extracts, which immediately becomes now),
// so at-base never underflows and the ring slot mapping is exact.
func (s *Sim) schedule(at Time, e event) {
	if at-s.base < ringWindow {
		j := (int(at-s.base) + s.head) & ringMask
		b := &s.ring[j]
		b.ev = append(b.ev, e)
		s.occ[j>>6] |= 1 << uint(j&63)
		s.nring++
		return
	}
	s.spillPush(e)
}

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past runs the event at the current cycle instead (events cannot rewind
// the clock).
func (s *Sim) At(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.schedule(at, event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn delay cycles from now.
func (s *Sim) After(delay Time, fn func()) {
	s.At(s.now+delay, fn)
}

// ScheduleArg schedules fn(arg) at the given absolute cycle, clamping
// past times like At. It is the allocation-free fast path for
// high-frequency completion events: the callback takes its state as a
// packed uint64 argument instead of capturing it, so call sites that keep
// fn in a field (one bound-method value built at construction) schedule
// with zero allocations per event.
func (s *Sim) ScheduleArg(at Time, fn func(uint64), arg uint64) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.schedule(at, event{at: at, seq: s.seq, afn: fn, arg: arg})
}

// peekAt returns the cycle of the next event without disturbing the
// queue. ok is false when the queue is empty.
//
// Ring events always precede spill events (everything in the spill is at
// or beyond base+ringWindow by construction), so the scan only falls
// through to the spill when the ring is empty.
func (s *Sim) peekAt() (at Time, ok bool) {
	if s.nring > 0 {
		return s.base + Time(s.nextOccupied()), true
	}
	if len(s.spill) > 0 {
		return s.spill[0].at, true
	}
	return 0, false
}

// nextOccupied returns the offset from head (in cycles) of the first
// occupied ring slot. The caller must hold nring > 0, which guarantees a
// set bit exists. The scan reads at most occWords+1 bitmap words: the
// head word masked from the head bit, the following words, and the head
// word again masked below the head bit for the wrap-around tail.
func (s *Sim) nextOccupied() int {
	const occWords = ringWindow / 64
	h := s.head
	w, bit := h>>6, uint(h&63)
	if m := s.occ[w] >> bit; m != 0 {
		return bits.TrailingZeros64(m)
	}
	off := 64 - int(bit)
	for k := 1; k < occWords; k++ {
		if m := s.occ[(w+k)&(occWords-1)]; m != 0 {
			return off + (k-1)*64 + bits.TrailingZeros64(m)
		}
	}
	m := s.occ[w] & (1<<bit - 1)
	return off + (occWords-1)*64 + bits.TrailingZeros64(m)
}

// pop extracts the next event in (at, seq) order. The queue must be
// non-empty. It advances base (and migrates newly due spill events into
// the ring) as a side effect; base only ever advances to the cycle of the
// event returned, which the caller makes the new now — preserving the
// schedule invariant base <= now.
func (s *Sim) pop() event {
	if s.nring == 0 {
		// Ring empty: jump the window straight to the earliest spill
		// cycle instead of stepping through the gap.
		s.base = s.spill[0].at
		s.head = 0
		s.migrate()
	}
	for {
		b := &s.ring[s.head]
		if b.rd < len(b.ev) {
			e := b.ev[b.rd]
			b.ev[b.rd] = event{} // drop closure refs promptly
			b.rd++
			s.nring--
			if b.rd == len(b.ev) {
				// Cycle may still be live (callbacks appending same-cycle
				// events); reset lazily only when truly drained.
				b.ev = b.ev[:0]
				b.rd = 0
				s.occ[s.head>>6] &^= 1 << uint(s.head&63)
			}
			return e
		}
		// Bucket drained: jump the window straight to the next occupied
		// cycle (via the occupancy bitmap — a sparse ring would otherwise
		// cost up to ringWindow slot probes), then pull in any spill
		// events that just became near-future. Skipping in one step is
		// safe: every spill event is at or beyond base+ringWindow, so none
		// can precede the next occupied ring slot, and migrated events
		// land at offsets >= ringWindow-step > 0 — never ahead of it.
		b.ev = b.ev[:0]
		b.rd = 0
		step := s.nextOccupied() // nring > 0 here, so a slot is occupied
		s.head = (s.head + step) & ringMask
		s.base += Time(step)
		s.migrate()
	}
}

// migrate moves spill events that now fall inside the ring window into
// their buckets. Heap order is (at, seq), so same-cycle events arrive in
// seq order, ahead of any later direct append (whose seq is necessarily
// larger: once a cycle enters the window it never leaves until executed).
func (s *Sim) migrate() {
	limit := s.base + ringWindow
	for len(s.spill) > 0 && s.spill[0].at < limit {
		e := s.spillPop()
		j := (int(e.at-s.base) + s.head) & ringMask
		b := &s.ring[j]
		b.ev = append(b.ev, e)
		s.occ[j>>6] |= 1 << uint(j&63)
		s.nring++
	}
}

// spillPush / spillPop implement an unboxed binary min-heap on (at, seq).
// Hand-rolled instead of container/heap to avoid the interface{} boxing
// allocation on every push.

func (s *Sim) spillPush(e event) {
	s.spill = append(s.spill, e)
	i := len(s.spill) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&s.spill[i], &s.spill[p]) {
			break
		}
		s.spill[i], s.spill[p] = s.spill[p], s.spill[i]
		i = p
	}
}

func (s *Sim) spillPop() event {
	h := s.spill
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop closure refs promptly
	s.spill = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && eventLess(&h[r], &h[l]) {
			least = r
		}
		if !eventLess(&h[least], &h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Run executes events until the queue drains and returns the final cycle.
// The clock never rewinds: events due before now (reachable only after
// Advance) execute at the current cycle.
func (s *Sim) Run() Time {
	for s.Pending() > 0 {
		e := s.pop()
		if e.at > s.now {
			s.now = e.at
		}
		e.run()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and leaves the
// rest queued. It returns — and parks the clock at — the deadline when
// the queue drained earlier (or the next event lies beyond it); if the
// clock was already past the deadline it returns the current cycle
// unchanged (the clock never rewinds), after executing any events that
// were due.
func (s *Sim) RunUntil(deadline Time) Time {
	for {
		at, ok := s.peekAt()
		if !ok || at > deadline {
			break
		}
		e := s.pop()
		if e.at > s.now {
			s.now = e.at
		}
		e.run()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// DrainAccounting executes every pending event and then restores the
// clock, so Now() is unchanged across the call. It exists for the
// deferred-retirement accounting pattern: counter updates scheduled at
// completion cycles are commutative, time-independent adds, so flushing
// them early must not fast-forward the clock the way Run would — with
// per-shard kernels a drained shard would otherwise leap ahead of its
// neighbors' horizons, and any mid-run Now() reader would observe the
// furthest retirement timestamp instead of simulated time.
//
// The contract is exactly that: pending events must not observe the
// clock (retirement adds do not — they are pure counter updates).
// Events DO execute with the clock advancing internally — same order,
// same callbacks as Run — and once the queue is empty the clock and
// ring window are rebased to the saved cycle, which is safe precisely
// because the queue is empty.
func (s *Sim) DrainAccounting() {
	if s.Pending() == 0 {
		return
	}
	saved := s.now
	s.Run()
	// Queue drained: rewind the clock and rebase the (empty) ring so the
	// schedule invariant base <= now still holds for the restored cycle.
	s.now = saved
	s.base = saved
	s.head = 0
}

// Advance moves the clock forward without running events; used by
// components that compute latencies analytically between event firings.
// It never rewinds. When the queue is empty it also re-anchors the ring
// window at the new cycle — there are no queued events an anchor move
// could reorder — so near-future schedules that follow stay on the ring
// path instead of spilling.
func (s *Sim) Advance(to Time) {
	if to > s.now {
		s.now = to
		if s.nring == 0 && len(s.spill) == 0 {
			s.base = to
			s.head = 0
		}
	}
}

// InRing reports whether an event scheduled at cycle at would land in
// the near-future ring rather than the spill heap, applying the same
// past-time clamp as At/ScheduleArg. Deferred-accounting callers check
// it to drain-and-re-anchor before a schedule that would otherwise
// start piling retirements into the heap: their events are commutative
// counter adds, so an early drain never changes totals, and keeping the
// window tracking the retirement stream keeps every insert on the O(1)
// ring path.
func (s *Sim) InRing(at Time) bool {
	if at < s.now {
		at = s.now
	}
	return at-s.base < ringWindow
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

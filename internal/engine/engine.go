// Package engine provides the deterministic discrete-event kernel the
// system simulator runs on: a cycle clock, an ordered event queue, and a
// seeded random source. Events scheduled for the same cycle fire in
// scheduling order, making whole-system runs reproducible bit-for-bit for
// a fixed seed.
package engine

import (
	"container/heap"
	"math/rand"
)

// Time is a simulated cycle count.
type Time uint64

// Forever is a sentinel time later than any reachable cycle.
const Forever Time = ^Time(0)

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event kernel. The zero value is not usable; call New.
type Sim struct {
	pq  eventHeap
	now Time
	seq uint64
	rng *rand.Rand
	// diags are the registered watchdog diagnostics (see AddDiagnostic);
	// they run only when RunGuarded trips.
	diags []diagnostic
}

// New builds a kernel whose random source is seeded deterministically.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated cycle.
func (s *Sim) Now() Time { return s.now }

// Rand returns the kernel's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past runs the event at the current cycle instead (events cannot rewind
// the clock).
func (s *Sim) At(at Time, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn delay cycles from now.
func (s *Sim) After(delay Time, fn func()) {
	s.At(s.now+delay, fn)
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }

// Run executes events until the queue drains and returns the final cycle.
func (s *Sim) Run() Time {
	for len(s.pq) > 0 {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and returns the
// cycle of the last executed event (or the deadline if the queue drained
// earlier). Remaining events stay queued.
func (s *Sim) RunUntil(deadline Time) Time {
	for len(s.pq) > 0 && s.pq[0].at <= deadline {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
	}
	if s.now > deadline {
		return s.now
	}
	return s.now
}

// Advance moves the clock forward without running events; used by
// components that compute latencies analytically between event firings.
// It never rewinds.
func (s *Sim) Advance(to Time) {
	if to > s.now {
		s.now = to
	}
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

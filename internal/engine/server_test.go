package engine

import "testing"

// TestNewServerClampsCapacity: unitsPerCycle <= 0 used to yield a
// zero-capacity server whose Reserve spun forever in its units>0 loop.
// It now clamps to one unit per cycle, like width and windowBuckets.
func TestNewServerClampsCapacity(t *testing.T) {
	for _, units := range []int{0, -3} {
		s := NewServer(units, 8, 16)
		// 24 units at 1 unit/cycle fill buckets 0..2; service starts at 0.
		if got := s.Reserve(0, 24); got != 0 {
			t.Errorf("NewServer(%d,8,16).Reserve(0,24) = %d, want 0", units, got)
		}
		// The next unit must queue into bucket 3 (cycle 24), proving the
		// clamped capacity is exactly 1 unit/cycle.
		if got := s.Reserve(0, 1); got != 24 {
			t.Errorf("NewServer(%d,8,16) follow-up Reserve = %d, want 24", units, got)
		}
	}
}

// TestServerClampsOtherParams documents the existing width/window
// clamps alongside the capacity clamp.
func TestServerClampsOtherParams(t *testing.T) {
	s := NewServer(1, 0, 0)
	if s.width != 1 {
		t.Errorf("width = %d, want clamp to 1", s.width)
	}
	if len(s.ring) != 4 {
		t.Errorf("window = %d buckets, want clamp to 4", len(s.ring))
	}
	if got := s.Reserve(5, 2); got != 5 {
		t.Errorf("Reserve(5,2) = %d, want 5", got)
	}
}

package engine

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same time: schedule order
	end := s.Run()
	if end != 30 {
		t.Errorf("final time %d, want 30", end)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		s.At(50, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %d, want clamped to 100", s.Now())
			}
		})
	})
	s.Run()
}

func TestAfterAndRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(10, func() { fired++ })
	s.After(20, func() { fired++ })
	s.RunUntil(15)
	if fired != 1 {
		t.Errorf("fired %d events by t=15, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired %d total, want 2", fired)
	}
}

func TestAdvanceNeverRewinds(t *testing.T) {
	s := New(1)
	s.Advance(100)
	s.Advance(50)
	if s.Now() != 100 {
		t.Errorf("Now = %d, want 100", s.Now())
	}
}

func TestServerBackfillsIdleCapacity(t *testing.T) {
	srv := NewServer(1, 1, 64)
	// Reserve far in the future first.
	late := srv.Reserve(50, 1)
	if late != 50 {
		t.Errorf("late reservation at %d, want 50", late)
	}
	// An earlier request must still get the idle capacity before it —
	// the whole point versus a scalar busy-until.
	early := srv.Reserve(10, 1)
	if early != 10 {
		t.Errorf("early reservation at %d, want 10 (no phantom queueing)", early)
	}
}

func TestServerQueuesUnderOverload(t *testing.T) {
	srv := NewServer(1, 1, 128)
	// Saturate cycle 10: capacity is 1/cycle, so the k-th request waits
	// about k cycles.
	var last Time
	for k := 0; k < 20; k++ {
		last = srv.Reserve(10, 1)
	}
	if last < 25 || last > 40 {
		t.Errorf("20th reservation at %d, want pushed to ~29", last)
	}
}

func TestServerMultiUnitSpills(t *testing.T) {
	srv := NewServer(1, 4, 64) // 4 units per bucket
	start := srv.Reserve(0, 10)
	if start != 0 {
		t.Errorf("start %d, want 0", start)
	}
	// The 10 units filled buckets 0..2; a new request at 0 lands where
	// capacity remains.
	next := srv.Reserve(0, 4)
	if next < 8 {
		t.Errorf("next start %d, want >= 8 (first two buckets full)", next)
	}
}

func TestServerWindowSlide(t *testing.T) {
	srv := NewServer(1, 8, 16) // window covers 128 cycles
	if got := srv.Reserve(0, 1); got != 0 {
		t.Fatalf("first reservation at %d", got)
	}
	// Reserve far beyond the window: it must slide, not panic.
	far := srv.Reserve(10_000, 1)
	if far < 10_000 {
		t.Errorf("far reservation at %d, want >= 10000", far)
	}
	// Requests older than the slid window clamp to its base.
	old := srv.Reserve(0, 1)
	if old == 0 {
		t.Error("ancient reservation granted at 0 after window slid")
	}
}

func TestServerCapacityProperty(t *testing.T) {
	// Property: with capacity c/cycle, n same-time requests of 1 unit
	// finish within about n/c cycles of the request time.
	prop := func(nReq uint8, capacity uint8) bool {
		n := int(nReq%50) + 1
		c := int(capacity%4) + 1
		srv := NewServer(c, 4, 256)
		var last Time
		for i := 0; i < n; i++ {
			last = srv.Reserve(100, 1)
		}
		bound := Time(100 + n/c + 8)
		return last <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 {
		t.Error("MaxTime wrong")
	}
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Error("MinTime wrong")
	}
}

package engine

import (
	"testing"
)

// TestDrainAccountingKeepsNow is the regression test for the deferred-drain
// clock fast-forward: MemSystem.retire/drain used to flush pending
// accounting with Run(), silently jumping Sim.now to the furthest
// retirement timestamp mid-run. DrainAccounting must execute everything
// and leave Now() exactly where it was.
func TestDrainAccountingKeepsNow(t *testing.T) {
	s := New(1)
	s.Advance(1000)

	var total uint64
	add := func(v uint64) { total += v }
	// A mix of near-future (ring) and far-future (spill) retirements.
	for i := 0; i < 100; i++ {
		s.ScheduleArg(1000+Time(i*3), add, 1)
	}
	for i := 0; i < 100; i++ {
		s.ScheduleArg(1000+ringWindow*2+Time(i*17), add, 10)
	}

	s.DrainAccounting()

	if got := s.Now(); got != 1000 {
		t.Fatalf("Now() = %d after DrainAccounting, want 1000 (clock must not advance)", got)
	}
	if total != 100*1+100*10 {
		t.Fatalf("total = %d, want %d (all pending events must execute)", total, 100*1+100*10)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", s.Pending())
	}
}

// TestDrainAccountingRepeatedMidRun interleaves drains with fresh
// scheduling, as the memory system does every DrainPending retirements:
// the queue must keep accepting and correctly ordering events after the
// post-drain rebase, for both ring and spill cycles.
func TestDrainAccountingRepeatedMidRun(t *testing.T) {
	s := New(1)
	var fired []Time
	rec := func(v uint64) { fired = append(fired, Time(v)) }

	clock := Time(0)
	for round := 0; round < 10; round++ {
		clock += 137
		s.Advance(clock)
		// Near, mid and spill-range events, scheduled out of order.
		for _, d := range []Time{ringWindow * 3, 1, 97, ringWindow + 5, 2} {
			at := clock + d
			s.ScheduleArg(at, rec, uint64(at))
		}
		s.DrainAccounting()
		if got := s.Now(); got != clock {
			t.Fatalf("round %d: Now() = %d, want %d", round, got, clock)
		}
	}

	if len(fired) != 50 {
		t.Fatalf("fired %d events, want 50", len(fired))
	}
	// Within each round, events must fire in timestamp order.
	for i := 0; i < len(fired); i += 5 {
		for j := i + 1; j < i+5; j++ {
			if fired[j] < fired[j-1] {
				t.Fatalf("round %d fired out of order: %v", i/5, fired[i:i+5])
			}
		}
	}
}

// TestDrainAccountingEmptyIsNoop checks the fast path leaves all state
// alone.
func TestDrainAccountingEmptyIsNoop(t *testing.T) {
	s := New(1)
	s.Advance(42)
	s.DrainAccounting()
	if s.Now() != 42 || s.Pending() != 0 {
		t.Fatalf("empty drain disturbed state: now=%d pending=%d", s.Now(), s.Pending())
	}
	// And the queue still works afterwards.
	ran := false
	s.At(50, func() { ran = true })
	if got := s.Run(); got != 50 || !ran {
		t.Fatalf("post-drain Run: now=%d ran=%v", got, ran)
	}
}

// TestSparseRingPeekOrder drives the occupancy-bitmap peek/pop fast path
// through sparse rings, window wrap-around, and ring/spill interleavings,
// checking every firing against the RefQueue specification.
func TestSparseRingPeekOrder(t *testing.T) {
	s := New(1)
	q := &RefQueue{}

	var got, want []Time
	rec := func(v uint64) { got = append(got, Time(v)) }
	ref := func(v uint64) { want = append(want, Time(v)) }

	schedule := func(at Time) {
		s.ScheduleArg(at, rec, uint64(at))
		q.ScheduleArg(at, ref, uint64(at))
	}

	// Sparse within the first window: single events far apart, including
	// the last slot.
	for _, at := range []Time{5, 63, 64, 190, 255} {
		schedule(at)
	}
	// Far future, so the window must jump and wrap.
	for _, at := range []Time{900, 901, 1400} {
		schedule(at)
	}

	// Drive both via RunUntil in lockstep so peekAt is exercised before
	// every pop (the RunGuarded pattern).
	for step := Time(100); step <= 1500; step += 100 {
		s.RunUntil(step)
		q.RunUntil(step)
		// Schedule more events mid-run, sparsely, relative to now.
		if step == 300 {
			schedule(s.Now() + 7)
			schedule(s.Now() + 250)
		}
	}
	s.Run()
	q.Run()

	if len(got) != len(want) {
		t.Fatalf("fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("firing %d: got cycle %d, reference %d\n got: %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
	if s.Now() != q.Now() {
		t.Fatalf("final clocks differ: ladder %d, reference %d", s.Now(), q.Now())
	}
}

package memsim

import (
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPoolIndexRoundTrip(t *testing.T) {
	for idx := 0; idx < NumPools; idx++ {
		il := InterleaveOf(idx)
		got, err := PoolIndex(il)
		if err != nil {
			t.Fatalf("PoolIndex(%d): %v", il, err)
		}
		if got != idx {
			t.Errorf("PoolIndex(%d) = %d, want %d", il, got, idx)
		}
	}
	for _, bad := range []int{0, 32, 96, 8192, -64} {
		if _, err := PoolIndex(bad); err == nil {
			t.Errorf("PoolIndex(%d) succeeded, want error", bad)
		}
	}
}

func TestEq1BankMapping(t *testing.T) {
	s := newSpace(t)
	base, err := s.ExpandPool(64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 1: consecutive 64B lines walk banks 0,1,2,...
	for i := 0; i < 130; i++ {
		va := base + Addr(i*64)
		bank, err := s.Bank(va)
		if err != nil {
			t.Fatal(err)
		}
		if want := i % 64; bank != want {
			t.Fatalf("line %d: bank %d, want %d", i, bank, want)
		}
	}
	// Addresses within one interleave unit share a bank.
	b0, _ := s.Bank(base)
	b1, _ := s.Bank(base + 63)
	if b0 != b1 {
		t.Errorf("intra-line addresses on different banks: %d vs %d", b0, b1)
	}
}

func TestEq1LargerInterleave(t *testing.T) {
	s := newSpace(t)
	base, err := s.ExpandPool(1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		va := base + Addr(i*1024)
		bank, _ := s.Bank(va)
		if want := i % 64; bank != want {
			t.Fatalf("chunk %d: bank %d, want %d", i, bank, want)
		}
	}
}

func TestPoolsArePhysicallyContiguous(t *testing.T) {
	s := newSpace(t)
	base, err := s.ExpandPool(64, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	pa0, err := s.Translate(base)
	if err != nil {
		t.Fatal(err)
	}
	pa1, err := s.Translate(base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if pa1-pa0 != 12345 {
		t.Errorf("pool not physically contiguous: Δpa=%d", pa1-pa0)
	}
}

func TestOneIOTEntryPerPool(t *testing.T) {
	s := newSpace(t)
	for _, il := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		if _, err := s.ExpandPool(il, 1<<16); err != nil {
			t.Fatal(err)
		}
		// Expanding twice must not add entries.
		if _, err := s.ExpandPool(il, 1<<16); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.IOT().Len(); got != NumPools {
		t.Errorf("IOT has %d entries after touching all pools, want %d", got, NumPools)
	}
}

func TestIOTCapacityAndOverlap(t *testing.T) {
	iot := NewIOT(2)
	if err := iot.Install(IOTEntry{Start: 0, End: 100, Interleave: 64}); err != nil {
		t.Fatal(err)
	}
	if err := iot.Install(IOTEntry{Start: 50, End: 150, Interleave: 64}); err == nil {
		t.Error("overlapping install succeeded")
	}
	if err := iot.Install(IOTEntry{Start: 200, End: 100, Interleave: 64}); err == nil {
		t.Error("empty range install succeeded")
	}
	if err := iot.Install(IOTEntry{Start: 200, End: 300, Interleave: 64}); err != nil {
		t.Fatal(err)
	}
	if err := iot.Install(IOTEntry{Start: 400, End: 500, Interleave: 64}); err == nil {
		t.Error("install beyond capacity succeeded")
	}
}

func TestHeapDefaultInterleave(t *testing.T) {
	s := newSpace(t)
	base, err := s.HeapBrk(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Linear heap backing: 1kB default interleave walks banks in order.
	b0, _ := s.Bank(base)
	b1, _ := s.Bank(base + 1024)
	if (b0+1)%64 != b1 {
		t.Errorf("default interleave: banks %d then %d, want successor", b0, b1)
	}
	// Same 1kB chunk, same bank.
	b2, _ := s.Bank(base + 1023)
	if b0 != b2 {
		t.Errorf("same chunk mapped to banks %d and %d", b0, b2)
	}
}

func TestHeapRandomLayoutDiffers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapLayout = HeapRandom
	s := MustSpace(cfg)
	base, err := s.HeapBrk(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Under random page mapping, the bank sequence across pages should
	// not be the linear successor sequence.
	linear := true
	prev, _ := s.Bank(base)
	for pg := 1; pg < 32; pg++ {
		b, _ := s.Bank(base + Addr(pg*PageSize))
		if b != (prev+4)%64 { // linear layout advances 4 banks per 4kB page
			linear = false
		}
		prev = b
	}
	if linear {
		t.Error("random heap layout produced the linear bank sequence")
	}
	// Deterministic for a fixed seed.
	s2 := MustSpace(cfg)
	base2, _ := s2.HeapBrk(1 << 20)
	for pg := 0; pg < 32; pg++ {
		b1, _ := s.Bank(base + Addr(pg*PageSize))
		b2, _ := s2.Bank(base2 + Addr(pg*PageSize))
		if b1 != b2 {
			t.Fatal("random layout not reproducible for fixed seed")
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newSpace(t)
	pool, err := s.ExpandPool(64, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := s.HeapBrk(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []Addr{pool, heap} {
		s.WriteU64(base, 0xdeadbeefcafef00d)
		if got := s.ReadU64(base); got != 0xdeadbeefcafef00d {
			t.Errorf("ReadU64 = %#x", got)
		}
		s.WriteU32(base+8, 42)
		if got := s.ReadU32(base + 8); got != 42 {
			t.Errorf("ReadU32 = %d", got)
		}
		s.WriteF32(base+16, 3.5)
		if got := s.ReadF32(base + 16); got != 3.5 {
			t.Errorf("ReadF32 = %v", got)
		}
		s.WriteF64(base+24, -2.25)
		if got := s.ReadF64(base + 24); got != -2.25 {
			t.Errorf("ReadF64 = %v", got)
		}
		s.WriteAddr(base+32, 0x123456)
		if got := s.ReadAddr(base + 32); got != 0x123456 {
			t.Errorf("ReadAddr = %#x", got)
		}
	}
}

func TestReadWriteProperty(t *testing.T) {
	s := newSpace(t)
	base, err := s.ExpandPool(256, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip := func(off uint16, v uint64) bool {
		va := base + Addr(off)
		s.WriteU64(va, v)
		return s.ReadU64(va) == v
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	s := newSpace(t)
	if _, err := s.Translate(0x10); err == nil {
		t.Error("Translate(0x10) succeeded, want error")
	}
	if _, err := s.Bank(PoolBase); err == nil {
		t.Error("Bank on unexpanded pool succeeded, want error")
	}
}

func TestPageMappedPlacement(t *testing.T) {
	s := newSpace(t)
	banks := []int{5, 5, 17, 63, 0}
	base, err := s.AllocPageMapped(banks)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range banks {
		for _, off := range []Addr{0, 64, PageSize - 1} {
			va := base + Addr(i*PageSize) + off
			got, err := s.Bank(va)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("page %d off %d: bank %d, want %d", i, off, got, want)
			}
		}
	}
	// Storage works and stays per-page isolated.
	s.WriteU64(base, 1)
	s.WriteU64(base+Addr(len(banks)-1)*PageSize, 2)
	if s.ReadU64(base) != 1 || s.ReadU64(base+Addr(len(banks)-1)*PageSize) != 2 {
		t.Error("page-mapped storage corrupted")
	}
	// A second allocation is contiguous after the first.
	base2, err := s.AllocPageMapped([]int{9})
	if err != nil {
		t.Fatal(err)
	}
	if base2 != base+Addr(len(banks))*PageSize {
		t.Errorf("second allocation at %#x, want %#x", uint64(base2), uint64(base+Addr(len(banks))*PageSize))
	}
	if b, _ := s.Bank(base2); b != 9 {
		t.Errorf("second allocation bank %d, want 9", b)
	}
}

func TestPageMappedUsesOneIOTEntry(t *testing.T) {
	s := newSpace(t)
	if _, err := s.AllocPageMapped([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocPageMapped([]int{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if got := s.IOT().Len(); got != 1 {
		t.Errorf("page-mapped segment used %d IOT entries, want 1", got)
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := newSpace(t)
	if _, err := s.ExpandPool(64, Addr(maxPoolReserve)+PageSize); err == nil {
		t.Error("over-reserving pool succeeded, want error")
	}
}

func TestLineHelpers(t *testing.T) {
	if Line(127) != 1 || Line(128) != 2 {
		t.Error("Line() wrong")
	}
	if LineAddr(127) != 64 || LineAddr(128) != 128 {
		t.Error("LineAddr() wrong")
	}
}

func TestNPOTValidation(t *testing.T) {
	plain := newSpace(t)
	if plain.ValidInterleave(192) {
		t.Error("NPOT interleave accepted without AllowNPOT")
	}
	if _, err := plain.ExpandPool(192, 1<<12); err == nil {
		t.Error("NPOT pool created without AllowNPOT")
	}

	cfg := DefaultConfig()
	cfg.AllowNPOT = true
	s := MustSpace(cfg)
	cases := []struct {
		il   int
		want bool
	}{
		{64, true}, {128, true}, {192, true}, {320, true}, {4096, true},
		{32, false}, {100, false}, {8192, false}, {0, false},
	}
	for _, c := range cases {
		if got := s.ValidInterleave(c.il); got != c.want {
			t.Errorf("ValidInterleave(%d) = %v, want %v", c.il, got, c.want)
		}
	}
	// An NPOT pool behaves per Eq. 1 and takes one IOT entry.
	base, err := s.ExpandPool(320, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got, want := s.MustBank(base+Addr(i*320)), i%64; got != want {
			t.Fatalf("chunk %d on bank %d, want %d", i, got, want)
		}
	}
	if s.IOT().Len() != 1 {
		t.Errorf("IOT entries %d, want 1", s.IOT().Len())
	}
}

func TestPoolSlotsIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowNPOT = true
	s := MustSpace(cfg)
	// Mixed pow2 and NPOT pools coexist with distinct address slots.
	b64, err := s.ExpandPool(64, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	b192, err := s.ExpandPool(192, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if b64 == b192 {
		t.Error("pools share a base")
	}
	if p := s.PoolOf(b64); p == nil || p.Interleave != 64 {
		t.Error("PoolOf(b64) wrong")
	}
	if p := s.PoolOf(b192); p == nil || p.Interleave != 192 {
		t.Error("PoolOf(b192) wrong")
	}
}

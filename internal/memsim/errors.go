package memsim

import "fmt"

// AccessError describes a data-plane access that violated the simulated
// address map — an unmapped address or a read/write past a region's
// extent. The word-granular accessors (ReadU64 and friends) have no error
// return, mirroring the load/store interface real workload code runs on,
// so they raise the failure as a typed panic carrying this value; the
// harness recovers it at the cell boundary and converts it into that
// cell's error, leaving sibling cells running.
type AccessError struct {
	Op    string // "read" or "write"
	VA    Addr
	Bytes int
	Err   error // the underlying mapping failure
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("memsim: %s of %d bytes at %#x failed: %v", e.Op, e.Bytes, uint64(e.VA), e.Err)
}

// Unwrap exposes the underlying mapping failure to errors.Is/As.
func (e *AccessError) Unwrap() error { return e.Err }

// accessPanic raises a typed data-plane access failure.
func accessPanic(op string, va Addr, n int, err error) {
	panic(&AccessError{Op: op, VA: va, Bytes: n, Err: err})
}

package memsim

import "fmt"

// PageMapBase is where the page-mapped segment lives: virtual pages whose
// bank placement is chosen individually. This implements §4.1's "large
// interleavings beyond a page size": each virtual page is backed by a
// physical page from a 4kB-interleaved reservation whose phase lands it
// on the desired bank, so a single 4kB-interleave IOT entry covers the
// whole segment.
const PageMapBase Addr = 1 << 42

// pageMapReserve bounds the page-mapped segment's physical reservation.
const pageMapReserve Addr = 1 << 33 // 8 GiB

type pageMapped struct {
	physStart PAddr
	// pagePhys[i] is the physical page index (relative to physStart)
	// backing virtual page i of the segment.
	pagePhys []PAddr
	// perBankNext counts pages handed out per bank, to pick phases.
	perBankNext []int
	data        []byte
}

// ensurePageMap lazily reserves the segment and installs its IOT entry.
func (s *Space) ensurePageMap() error {
	if s.pm != nil {
		return nil
	}
	pm := &pageMapped{
		physStart:   s.physNext,
		perBankNext: make([]int, s.cfg.Banks),
	}
	s.physNext += PAddr(pageMapReserve)
	if err := s.iot.Install(IOTEntry{
		Start:      pm.physStart,
		End:        pm.physStart + PAddr(pageMapReserve),
		Interleave: PageSize,
	}); err != nil {
		return fmt.Errorf("memsim: reserving page-mapped segment: %w", err)
	}
	s.pm = pm
	return nil
}

// AllocPageMapped allocates len(banks) contiguous virtual pages, placing
// page i on banks[i], and returns the base address. Placement uses the
// page-granularity physical remapping of §4.1, so Bank() resolves through
// the IOT like any other address.
func (s *Space) AllocPageMapped(banks []int) (Addr, error) {
	if len(banks) == 0 {
		return 0, fmt.Errorf("memsim: empty page-mapped allocation")
	}
	if err := s.ensurePageMap(); err != nil {
		return 0, err
	}
	pm := s.pm
	pagesPerBank := int(pageMapReserve / PageSize / Addr(s.cfg.Banks))
	base := PageMapBase + Addr(len(pm.pagePhys))*PageSize
	for _, bank := range banks {
		if bank < 0 || bank >= s.cfg.Banks {
			return 0, fmt.Errorf("memsim: page-mapped bank %d out of range", bank)
		}
		k := pm.perBankNext[bank]
		if k >= pagesPerBank {
			return 0, fmt.Errorf("memsim: page-mapped segment exhausted for bank %d", bank)
		}
		pm.perBankNext[bank]++
		// Physical page index with phase == bank under 4kB interleave.
		pm.pagePhys = append(pm.pagePhys, PAddr(k*s.cfg.Banks+bank))
	}
	need := len(pm.pagePhys) * PageSize
	if cap(pm.data) < need {
		grown := make([]byte, need, growCap(cap(pm.data), need))
		copy(grown, pm.data)
		pm.data = grown
	} else {
		pm.data = pm.data[:need]
	}
	return base, nil
}

// pageMapOf returns the segment if va falls inside its allocated extent.
func (s *Space) pageMapOf(va Addr) *pageMapped {
	if s.pm == nil || va < PageMapBase {
		return nil
	}
	idx := (va - PageMapBase) / PageSize
	if int(idx) >= len(s.pm.pagePhys) {
		return nil
	}
	return s.pm
}

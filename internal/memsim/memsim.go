// Package memsim models the simulated memory system the affinity allocator
// places data into: a 48-bit virtual address space with a conventional heap
// and a set of interleave pools (§4.1 of the paper), virtual-to-physical
// translation, and the Interleave Override Table (IOT, Table 1) that maps
// physical cache lines to shared-L3 banks.
//
// Go's garbage-collected runtime gives no control over where allocations
// land, so the entire address space is simulated: allocators hand out
// memsim addresses and workload data lives in flat byte regions indexed by
// those addresses. Bank placement is then the pure function the paper
// defines — Eq. 1 for pool addresses, the default static-NUCA interleave
// for everything else.
package memsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Addr is a simulated virtual address.
type Addr uint64

// PAddr is a simulated physical address.
type PAddr uint64

// Core geometry constants. LineSize and PageSize match Table 2.
const (
	LineSize = 64
	PageSize = 4096

	// HeapBase is where the conventional (non-pool) heap begins.
	HeapBase Addr = 1 << 32
	// HeapSpan bounds the heap's virtual extent.
	HeapSpan Addr = 1 << 38

	// PoolBase is where interleave pools begin; each pool owns PoolSpan
	// of virtual address space (the paper reserves 1TB per pool).
	PoolBase Addr = 1 << 44
	PoolSpan Addr = 1 << 40

	// MinInterleave..MaxInterleave are the supported power-of-two pool
	// interleavings: 64B (one line) through 4kB (one page), 7 pools.
	MinInterleave = 64
	MaxInterleave = 4096
	NumPools      = 7
)

// PoolIndex returns the pool index for a power-of-two interleaving, or an
// error if the interleaving is unsupported.
func PoolIndex(interleave int) (int, error) {
	if interleave < MinInterleave || interleave > MaxInterleave || interleave&(interleave-1) != 0 {
		return 0, fmt.Errorf("memsim: unsupported interleave %dB (want power of two in [%d,%d])", interleave, MinInterleave, MaxInterleave)
	}
	idx := 0
	for v := interleave; v > MinInterleave; v >>= 1 {
		idx++
	}
	return idx, nil
}

// InterleaveOf is the inverse of PoolIndex.
func InterleaveOf(poolIdx int) int { return MinInterleave << poolIdx }

// ValidInterleave reports whether an interleaving is supported by this
// space: the paper's power-of-two set always, plus (when the §4.1
// "future work" extension is enabled) any line-multiple up to a page —
// those cost a division rather than a shift in the Eq. 1 lookup.
func (s *Space) ValidInterleave(v int) bool {
	if v >= MinInterleave && v <= MaxInterleave && v&(v-1) == 0 {
		return true
	}
	return s.cfg.AllowNPOT && v >= MinInterleave && v <= MaxInterleave && v%LineSize == 0
}

// IOTEntry overrides the L3 interleaving for physical addresses in
// [Start, End). This is Table 1 of the paper: 48-bit start/end physical
// addresses plus a 16-bit interleaving.
type IOTEntry struct {
	Start, End PAddr
	Interleave uint32
}

// IOT is the Interleave Override Table replicated at every L2/L3 cache
// controller. Table 2 sizes it at 16 regions; entries beyond the capacity
// are rejected, forcing the OS to consolidate pools.
type IOT struct {
	capacity int
	entries  []IOTEntry
	// Lookups counts queries, mirroring the paper's observation that the
	// table is touched on every L2 miss and L3 access.
	Lookups uint64
}

// NewIOT builds a table with the given entry capacity.
func NewIOT(capacity int) *IOT {
	return &IOT{capacity: capacity}
}

// Install adds an override entry. It fails when the table is full or the
// range is malformed or overlaps an existing entry.
func (t *IOT) Install(e IOTEntry) error {
	if e.End <= e.Start {
		return fmt.Errorf("memsim: IOT range [%#x,%#x) is empty", e.Start, e.End)
	}
	if e.Interleave < MinInterleave {
		return fmt.Errorf("memsim: IOT interleave %dB below line size", e.Interleave)
	}
	if len(t.entries) >= t.capacity {
		return fmt.Errorf("memsim: IOT full (%d entries)", t.capacity)
	}
	for _, prev := range t.entries {
		if e.Start < prev.End && prev.Start < e.End {
			return fmt.Errorf("memsim: IOT range [%#x,%#x) overlaps [%#x,%#x)", e.Start, e.End, prev.Start, prev.End)
		}
	}
	t.entries = append(t.entries, e)
	return nil
}

// Lookup returns the override entry covering pa, if any.
func (t *IOT) Lookup(pa PAddr) (IOTEntry, bool) {
	t.Lookups++
	for _, e := range t.entries {
		if pa >= e.Start && pa < e.End {
			return e, true
		}
	}
	return IOTEntry{}, false
}

// peek is Lookup without the Lookups counter, for observers (telemetry,
// the online reconciler) whose queries must not perturb the counters a
// real machine would expose.
func (t *IOT) peek(pa PAddr) (IOTEntry, bool) {
	for _, e := range t.entries {
		if pa >= e.Start && pa < e.End {
			return e, true
		}
	}
	return IOTEntry{}, false
}

// Len returns the number of installed entries.
func (t *IOT) Len() int { return len(t.entries) }

// Capacity returns the table capacity.
func (t *IOT) Capacity() int { return t.capacity }

// HeapLayout selects how heap virtual pages are backed by physical pages.
type HeapLayout int

const (
	// HeapLinear backs heap pages with sequential physical pages, so the
	// default 1kB NUCA interleave walks banks in order.
	HeapLinear HeapLayout = iota
	// HeapRandom maps each virtual page to a random physical page — the
	// "Random" layout of Fig 4 that avoids pathological alignment but
	// forfeits affinity.
	HeapRandom
)

// Config parameterizes a simulated address space.
type Config struct {
	Banks             int        // number of L3 banks
	DefaultInterleave int        // static-NUCA interleave for non-pool data (Table 2: 1kB)
	IOTCapacity       int        // Table 2: 16 regions
	HeapLayout        HeapLayout // physical backing policy for heap pages
	Seed              int64      // RNG seed for HeapRandom
	// AllowNPOT enables the §4.1 future-work extension: interleave
	// pools at non-power-of-two, line-multiple granularities (e.g.
	// 192B), removing element-padding overheads at the cost of a
	// division in the bank lookup.
	AllowNPOT bool
	// DeadBanks lists disabled L3 banks (fault injection): lines whose
	// nominal home bank is dead are deterministically rehomed across the
	// survivors inside BankOfPhys, so the IOT/affinity layer — and every
	// placement decision built on it — observes the degraded bank map.
	DeadBanks []int
}

// DefaultConfig mirrors Table 2 for a 64-bank system.
func DefaultConfig() Config {
	return Config{
		Banks:             64,
		DefaultInterleave: 1024,
		IOTCapacity:       16,
		HeapLayout:        HeapLinear,
		Seed:              1,
	}
}

// Pool is one interleave pool: a virtual segment guaranteed to map to L3
// banks with a fixed interleaving, backed by contiguous physical pages so
// a single IOT entry covers it (§4.1).
type Pool struct {
	Index      int
	Interleave int
	Start      Addr  // virtual base
	PhysStart  PAddr // physical base (contiguous)
	Reserved   Addr  // bytes of VA/PA reserved (IOT entry extent)
	Used       Addr  // bytes handed to the runtime so far
	data       []byte
}

// Space is the simulated address space: heap plus interleave pools, the
// page table, the IOT, and the flat storage behind every address.
type Space struct {
	cfg Config
	// poolByIl maps interleave -> pool; poolSlots indexes pools by their
	// virtual-address slot for fast PoolOf decoding.
	poolByIl  map[int]*Pool
	poolSlots []*Pool
	pm        *pageMapped
	iot       *IOT
	heap      []byte
	heapUsed  Addr
	// heapPageMap maps heap virtual page number -> physical page number.
	heapPageMap map[Addr]PAddr
	// physTaken tracks physical pages claimed by random heap mappings.
	physTaken map[PAddr]bool
	physNext  PAddr
	rng       *rand.Rand

	// deadBank and survivors resolve Config.DeadBanks; both stay nil for
	// a fault-free space so the bank lookup fast path is untouched.
	deadBank  []bool
	survivors []int

	// overrides is the migration remap layered over the nominal IOT /
	// static-NUCA placement: granule physical base -> new home bank. It
	// stays nil until the online reconciler actually moves a chunk, so
	// runs without migrations keep the untouched fast path.
	overrides map[PAddr]int

	// PageFaults counts demand mappings of heap pages.
	PageFaults uint64
	// PoolExpansions counts runtime requests for more pool space.
	PoolExpansions uint64
	// RemappedAccesses counts bank lookups rehomed off dead banks.
	RemappedAccesses uint64
	// MigratedAccesses counts bank lookups answered by a migration
	// override instead of the nominal placement.
	MigratedAccesses uint64
}

// NewSpace builds an address space per cfg. Pools are reserved lazily: the
// first expansion of a pool claims its contiguous physical segment and
// installs its IOT entry.
func NewSpace(cfg Config) (*Space, error) {
	if cfg.Banks <= 0 {
		return nil, fmt.Errorf("memsim: invalid bank count %d", cfg.Banks)
	}
	if cfg.DefaultInterleave < LineSize || cfg.DefaultInterleave&(cfg.DefaultInterleave-1) != 0 {
		return nil, fmt.Errorf("memsim: invalid default interleave %d", cfg.DefaultInterleave)
	}
	if cfg.IOTCapacity < NumPools {
		return nil, fmt.Errorf("memsim: IOT capacity %d cannot hold %d pools", cfg.IOTCapacity, NumPools)
	}
	s := &Space{
		cfg:         cfg,
		poolByIl:    make(map[int]*Pool),
		iot:         NewIOT(cfg.IOTCapacity),
		heapPageMap: make(map[Addr]PAddr),
		physTaken:   make(map[PAddr]bool),
		physNext:    PageSize, // keep physical page 0 unused
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	if len(cfg.DeadBanks) > 0 {
		s.deadBank = make([]bool, cfg.Banks)
		for _, b := range cfg.DeadBanks {
			if b < 0 || b >= cfg.Banks {
				return nil, fmt.Errorf("memsim: dead bank %d out of range [0,%d)", b, cfg.Banks)
			}
			s.deadBank[b] = true
		}
		for b := 0; b < cfg.Banks; b++ {
			if !s.deadBank[b] {
				s.survivors = append(s.survivors, b)
			}
		}
		if len(s.survivors) == 0 {
			return nil, fmt.Errorf("memsim: all %d banks dead", cfg.Banks)
		}
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error, for static configurations.
// The panic names its invariant: callers reach for MustSpace only with
// configs they constructed themselves, so a failure is a programming
// error, not an input error.
func MustSpace(cfg Config) *Space {
	s, err := NewSpace(cfg)
	if err != nil {
		panic(fmt.Sprintf("memsim: MustSpace on an invalid static config (programmer error — use NewSpace for untrusted configs): %v", err))
	}
	return s
}

// Config returns the space configuration.
func (s *Space) Config() Config { return s.cfg }

// Banks returns the number of L3 banks.
func (s *Space) Banks() int { return s.cfg.Banks }

// IOT exposes the interleave override table (read-mostly; the OS installs
// entries through pool expansion).
func (s *Space) IOT() *IOT { return s.iot }

// maxPoolReserve bounds a pool's contiguous physical reservation in
// simulation. Generous enough for every experiment, small enough to keep
// the simulated physical space plausible.
const maxPoolReserve Addr = 1 << 33 // 8 GiB per pool

// poolReserveChunk is the granularity pools grow their physical
// reservation by; the reservation stays contiguous because it is claimed
// from the bump pointer once, up front.
const poolReserveChunk Addr = 1 << 24 // 16 MiB initial reservation

// Pool returns the pool for a supported interleaving, creating it (with
// its physical reservation and IOT entry) on first use. Each pool takes
// one IOT entry, so the table capacity bounds how many distinct
// interleavings a process may use.
func (s *Space) Pool(interleave int) (*Pool, error) {
	if !s.ValidInterleave(interleave) {
		return nil, fmt.Errorf("memsim: unsupported interleave %dB", interleave)
	}
	if p := s.poolByIl[interleave]; p != nil {
		return p, nil
	}
	slot := len(s.poolSlots)
	p := &Pool{
		Index:      slot,
		Interleave: interleave,
		Start:      PoolBase + Addr(slot)*PoolSpan,
		PhysStart:  s.physNext,
		Reserved:   maxPoolReserve,
	}
	s.physNext += PAddr(maxPoolReserve)
	if err := s.iot.Install(IOTEntry{
		Start:      p.PhysStart,
		End:        p.PhysStart + PAddr(p.Reserved),
		Interleave: uint32(interleave),
	}); err != nil {
		return nil, fmt.Errorf("memsim: reserving pool %dB: %w", interleave, err)
	}
	s.poolByIl[interleave] = p
	s.poolSlots = append(s.poolSlots, p)
	return p, nil
}

// ExpandPool grows a pool's usable extent by at least bytes (rounded up to
// whole pages) and returns the virtual base of the newly usable region.
// This is the brk-style syscall the runtime issues when a free list runs
// dry (§4.1).
func (s *Space) ExpandPool(interleave int, bytes Addr) (Addr, error) {
	p, err := s.Pool(interleave)
	if err != nil {
		return 0, err
	}
	bytes = (bytes + PageSize - 1) &^ Addr(PageSize-1)
	if p.Used+bytes > p.Reserved {
		return 0, fmt.Errorf("memsim: pool %dB exhausted (%d used + %d requested > %d reserved)", interleave, p.Used, bytes, p.Reserved)
	}
	base := p.Start + p.Used
	p.Used += bytes
	need := int(p.Used)
	if cap(p.data) < need {
		grown := make([]byte, need, growCap(cap(p.data), need))
		copy(grown, p.data)
		p.data = grown
	} else {
		p.data = p.data[:need]
	}
	s.PoolExpansions++
	return base, nil
}

// PoolOf returns the pool containing va, or nil when va is not a pool
// address.
func (s *Space) PoolOf(va Addr) *Pool {
	if va < PoolBase {
		return nil
	}
	idx := int((va - PoolBase) / PoolSpan)
	if idx < 0 || idx >= len(s.poolSlots) {
		return nil
	}
	p := s.poolSlots[idx]
	if p == nil || va < p.Start || va >= p.Start+p.Used {
		return nil
	}
	return p
}

// HeapBrk extends the heap by bytes (rounded up to whole pages) and
// returns the base of the new region — the conventional allocator's
// backing store.
func (s *Space) HeapBrk(bytes Addr) (Addr, error) {
	bytes = (bytes + PageSize - 1) &^ Addr(PageSize-1)
	if s.heapUsed+bytes > HeapSpan {
		return 0, fmt.Errorf("memsim: heap exhausted")
	}
	base := HeapBase + s.heapUsed
	s.heapUsed += bytes
	need := int(s.heapUsed)
	if cap(s.heap) < need {
		grown := make([]byte, need, growCap(cap(s.heap), need))
		copy(grown, s.heap)
		s.heap = grown
	} else {
		s.heap = s.heap[:need]
	}
	return base, nil
}

func growCap(have, need int) int {
	c := have
	if c == 0 {
		c = 1 << 16
	}
	for c < need {
		c *= 2
	}
	return c
}

// Translate maps a virtual address to its physical address, faulting heap
// pages in on demand.
func (s *Space) Translate(va Addr) (PAddr, error) {
	if p := s.PoolOf(va); p != nil {
		return p.PhysStart + PAddr(va-p.Start), nil
	}
	if pm := s.pageMapOf(va); pm != nil {
		idx := (va - PageMapBase) / PageSize
		return pm.physStart + pm.pagePhys[idx]*PageSize + PAddr(va%PageSize), nil
	}
	if va >= HeapBase && va < HeapBase+s.heapUsed {
		vpage := (va - HeapBase) / PageSize
		ppage, ok := s.heapPageMap[vpage]
		if !ok {
			ppage = s.mapHeapPage(vpage)
		}
		return ppage*PageSize + PAddr(va%PageSize), nil
	}
	return 0, fmt.Errorf("memsim: unmapped address %#x", uint64(va))
}

func (s *Space) mapHeapPage(vpage Addr) PAddr {
	var ppage PAddr
	switch s.cfg.HeapLayout {
	case HeapRandom:
		// Pick a fresh random physical page outside the pool
		// reservations; collisions with already-mapped pages are avoided
		// by drawing from a dedicated high region.
		ppage = PAddr(1<<36)/PageSize + PAddr(s.rng.Int63n(1<<24))
		for s.physTaken[ppage] {
			ppage++
		}
		s.physTaken[ppage] = true
	default:
		ppage = s.physNext / PageSize
		s.physNext += PageSize
	}
	s.heapPageMap[vpage] = ppage
	s.PageFaults++
	return ppage
}

// Bank returns the L3 bank holding the cache line at va: Eq. 1 through the
// IOT for pool addresses, the default static-NUCA interleave otherwise.
func (s *Space) Bank(va Addr) (int, error) {
	pa, err := s.Translate(va)
	if err != nil {
		return 0, err
	}
	return s.BankOfPhys(pa), nil
}

// BankOfPhys maps a physical address to its L3 bank, consulting the IOT
// exactly as an L2/L3 cache controller would. The lookup layers three
// mechanisms, in order: the nominal placement (IOT interleave for pool
// addresses, static-NUCA otherwise), then the migration override table
// (one entry per re-homed granule), then the dead-bank rehome. Lines
// nominally homed on a dead bank are rehomed deterministically across
// the survivors (spread by line number, so one dead bank's sets scatter
// rather than pile onto a single neighbor) — the remap every placement
// decision observes.
func (s *Space) BankOfPhys(pa PAddr) int {
	var b int
	var gstart PAddr
	if e, ok := s.iot.Lookup(pa); ok {
		i := PAddr(e.Interleave)
		gstart = e.Start + (pa-e.Start)/i*i
		b = int(((pa - e.Start) / i) % PAddr(s.cfg.Banks))
	} else {
		i := PAddr(s.cfg.DefaultInterleave)
		gstart = pa / i * i
		b = int((pa / i) % PAddr(s.cfg.Banks))
	}
	if s.overrides != nil {
		if nb, ok := s.overrides[gstart]; ok {
			b = nb
			s.MigratedAccesses++
		}
	}
	if s.deadBank != nil && s.deadBank[b] {
		b = s.survivors[int((pa/LineSize)%PAddr(len(s.survivors)))]
		s.RemappedAccesses++
	}
	return b
}

// Granule returns the placement granule containing va: the maximal
// aligned virtual window whose lines share one nominal home bank — the
// pool interleave for pool addresses, the default NUCA interleave for
// heap and page-mapped data. Granules are the unit the online
// reconciler counts, plans and migrates; because pools are physically
// contiguous and heap/page-mapped backing is page-granular with
// interleaves dividing the page size, a virtual granule always maps to
// one contiguous, identically-aligned physical granule.
func (s *Space) Granule(va Addr) (start Addr, size int) {
	if p := s.PoolOf(va); p != nil {
		i := Addr(p.Interleave)
		return p.Start + (va-p.Start)/i*i, p.Interleave
	}
	i := Addr(s.cfg.DefaultInterleave)
	return va / i * i, s.cfg.DefaultInterleave
}

// HomeBank returns the placement-intent home bank of the granule
// containing va: the migration override when one is installed, the
// nominal IOT/static-NUCA bank otherwise — possibly a dead bank, which
// is exactly what the reconciler needs to see to re-home the granule.
// Unlike Bank it never touches the Lookups/RemappedAccesses/
// MigratedAccesses counters: it is an observer's query, not a modeled
// hardware lookup.
func (s *Space) HomeBank(va Addr) (int, error) {
	gva, _ := s.Granule(va)
	pa, err := s.Translate(gva)
	if err != nil {
		return 0, err
	}
	var b int
	if e, ok := s.iot.peek(pa); ok {
		b = int(((pa - e.Start) / PAddr(e.Interleave)) % PAddr(s.cfg.Banks))
	} else {
		b = int((pa / PAddr(s.cfg.DefaultInterleave)) % PAddr(s.cfg.Banks))
	}
	if s.overrides != nil {
		if nb, ok := s.overrides[pa]; ok {
			b = nb
		}
	}
	return b, nil
}

// SetHomeOverride re-homes the granule containing va to bank `to`,
// layering a migration entry over the nominal placement. Installing an
// override never moves data or charges cycles — the caller
// (cache.MemSystem.MigrateLines) models the traffic.
func (s *Space) SetHomeOverride(va Addr, to int) error {
	if to < 0 || to >= s.cfg.Banks {
		return fmt.Errorf("memsim: override bank %d out of range [0,%d)", to, s.cfg.Banks)
	}
	gva, _ := s.Granule(va)
	pa, err := s.Translate(gva)
	if err != nil {
		return err
	}
	if s.overrides == nil {
		s.overrides = make(map[PAddr]int)
	}
	s.overrides[pa] = to
	return nil
}

// HomeOverrides returns the number of installed migration overrides.
func (s *Space) HomeOverrides() int { return len(s.overrides) }

// KillBank marks a bank dead mid-run (the kill-bank fault). Subsequent
// BankOfPhys lookups rehome its lines across the survivors exactly as a
// build-time dead bank would, and BankAlive/AliveBanks — hence every
// placement decision — observe the shrunken machine. Killing the last
// survivor or an already-dead bank is refused.
func (s *Space) KillBank(b int) error {
	if b < 0 || b >= s.cfg.Banks {
		return fmt.Errorf("memsim: kill-bank %d out of range [0,%d)", b, s.cfg.Banks)
	}
	if s.deadBank == nil {
		s.deadBank = make([]bool, s.cfg.Banks)
	}
	if s.deadBank[b] {
		return fmt.Errorf("memsim: kill-bank %d already dead", b)
	}
	alive := 0
	for i := range s.deadBank {
		if !s.deadBank[i] {
			alive++
		}
	}
	if alive <= 1 {
		return fmt.Errorf("memsim: kill-bank %d would leave no survivors", b)
	}
	s.deadBank[b] = true
	s.survivors = s.survivors[:0]
	for i := 0; i < s.cfg.Banks; i++ {
		if !s.deadBank[i] {
			s.survivors = append(s.survivors, i)
		}
	}
	return nil
}

// BankAlive reports whether a bank is alive (always true without fault
// injection).
func (s *Space) BankAlive(b int) bool {
	return s.deadBank == nil || !s.deadBank[b]
}

// AliveBanks returns the surviving banks in ascending order, or nil when
// every bank is alive.
func (s *Space) AliveBanks() []int {
	if s.deadBank == nil {
		return nil
	}
	return append([]int(nil), s.survivors...)
}

// MustBank is Bank that panics on unmapped addresses; placement code uses
// it only on addresses it has just allocated, so an unmapped address here
// is a broken allocator, and the panic names that invariant.
func (s *Space) MustBank(va Addr) int {
	b, err := s.Bank(va)
	if err != nil {
		panic(fmt.Sprintf("memsim: MustBank on an address the allocator never produced (programmer error — placement code only queries its own allocations): %v", err))
	}
	return b
}

// Line returns the cache-line number of va (va / 64).
func Line(va Addr) Addr { return va / LineSize }

// LineAddr returns the base address of the line containing va.
func LineAddr(va Addr) Addr { return va &^ (LineSize - 1) }

// backing returns the byte slice and offset behind va for n bytes, or an
// error when the range is unmapped or crosses a region boundary.
func (s *Space) backing(va Addr, n int) ([]byte, error) {
	if p := s.PoolOf(va); p != nil {
		off := int(va - p.Start)
		if off+n > len(p.data) {
			return nil, fmt.Errorf("memsim: pool access %#x+%d beyond extent", uint64(va), n)
		}
		return p.data[off : off+n], nil
	}
	if pm := s.pageMapOf(va); pm != nil {
		off := int(va - PageMapBase)
		if off+n > len(pm.data) {
			return nil, fmt.Errorf("memsim: page-mapped access %#x+%d beyond extent", uint64(va), n)
		}
		return pm.data[off : off+n], nil
	}
	if va >= HeapBase && va < HeapBase+s.heapUsed {
		off := int(va - HeapBase)
		if off+n > len(s.heap) {
			return nil, fmt.Errorf("memsim: heap access %#x+%d beyond extent", uint64(va), n)
		}
		return s.heap[off : off+n], nil
	}
	return nil, fmt.Errorf("memsim: access to unmapped address %#x", uint64(va))
}

// ReadU64 loads the 8-byte little-endian word at va. An unmapped access
// raises a typed *AccessError panic the harness converts into a per-cell
// error (see AccessError).
func (s *Space) ReadU64(va Addr) uint64 {
	b, err := s.backing(va, 8)
	if err != nil {
		accessPanic("read", va, 8, err)
	}
	return binary.LittleEndian.Uint64(b)
}

// WriteU64 stores an 8-byte little-endian word at va; unmapped accesses
// raise *AccessError (see ReadU64).
func (s *Space) WriteU64(va Addr, v uint64) {
	b, err := s.backing(va, 8)
	if err != nil {
		accessPanic("write", va, 8, err)
	}
	binary.LittleEndian.PutUint64(b, v)
}

// ReadU32 loads the 4-byte little-endian word at va; unmapped accesses
// raise *AccessError (see ReadU64).
func (s *Space) ReadU32(va Addr) uint32 {
	b, err := s.backing(va, 4)
	if err != nil {
		accessPanic("read", va, 4, err)
	}
	return binary.LittleEndian.Uint32(b)
}

// WriteU32 stores a 4-byte little-endian word at va; unmapped accesses
// raise *AccessError (see ReadU64).
func (s *Space) WriteU32(va Addr, v uint32) {
	b, err := s.backing(va, 4)
	if err != nil {
		accessPanic("write", va, 4, err)
	}
	binary.LittleEndian.PutUint32(b, v)
}

// ReadF32 loads the float32 at va.
func (s *Space) ReadF32(va Addr) float32 { return math.Float32frombits(s.ReadU32(va)) }

// WriteF32 stores a float32 at va.
func (s *Space) WriteF32(va Addr, v float32) { s.WriteU32(va, math.Float32bits(v)) }

// ReadF64 loads the float64 at va.
func (s *Space) ReadF64(va Addr) float64 { return math.Float64frombits(s.ReadU64(va)) }

// WriteF64 stores a float64 at va.
func (s *Space) WriteF64(va Addr, v float64) { s.WriteU64(va, math.Float64bits(v)) }

// ReadAddr loads a simulated pointer stored at va.
func (s *Space) ReadAddr(va Addr) Addr { return Addr(s.ReadU64(va)) }

// WriteAddr stores a simulated pointer at va.
func (s *Space) WriteAddr(va Addr, p Addr) { s.WriteU64(va, uint64(p)) }

package stream

import (
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
)

const noLine = ^memsim.Addr(0)

// DebugFetch, when non-nil, observes every line fetch (test aid).
var DebugFetch func(coreTile, bank int, t, notBefore, inflight, start, done uint64)

// AffineStream is a load or store stream over a strided element sequence
// (sa = A[0:N] in Fig 2). It executes at the L3 bank holding its current
// cache line, fetching (or writing) one line at a time, migrating between
// banks as the pattern crosses interleaving boundaries, and consuming
// coarse-grained credits from the issuing core.
//
// The stream is pipelined: its local time advances by issue occupancy per
// line, while each line's ready time reflects the full access latency.
type AffineStream struct {
	eng      *Engine
	coreTile int
	base     memsim.Addr
	elemSize int
	stride   int64 // in elements
	count    int64
	write    bool

	started   bool
	t         engine.Time // issue front
	bank      int
	curLine   memsim.Addr
	lineReady engine.Time
	consumed  int64 // elements consumed (for credits)
	finish    engine.Time
	// inflight implements the stream's line window (flow control): slot
	// i holds the completion of the i-th most recent line, and a new
	// line cannot issue until the oldest slot drains.
	inflight []engine.Time
	inIdx    int
}

// NewAffineStream describes a stream over count elements of elemSize
// bytes starting at base with the given element stride, issued by the
// core on coreTile. Set write for store streams.
func NewAffineStream(eng *Engine, coreTile int, base memsim.Addr, elemSize int, stride, count int64, write bool) *AffineStream {
	window := eng.cfg.StreamWindow
	if window < 1 {
		window = 1
	}
	return &AffineStream{
		eng:      eng,
		coreTile: coreTile,
		base:     base,
		elemSize: elemSize,
		stride:   stride,
		count:    count,
		write:    write,
		curLine:  noLine,
		inflight: make([]engine.Time, window),
	}
}

// ElemAddr returns the virtual address of element i.
func (s *AffineStream) ElemAddr(i int64) memsim.Addr {
	return s.base + memsim.Addr(i*s.stride*int64(s.elemSize))
}

// Count returns the stream's trip count.
func (s *AffineStream) Count() int64 { return s.count }

// Bank returns the stream's current bank; only meaningful once started.
func (s *AffineStream) Bank() int { return s.bank }

// Start offloads the stream: SEcore configures it at the bank of its
// first element. Calling Start more than once is a no-op.
func (s *AffineStream) Start(now engine.Time) {
	if s.started {
		return
	}
	s.started = true
	s.bank = s.eng.mem.BankOf(s.base)
	s.t = s.eng.Offload(now, s.coreTile, s.bank)
	s.finish = s.t
}

// AddrReady advances the stream to the element at addr and returns the
// bank where it materializes and its ready cycle. This is the
// address-driven variant of ElemReady for callers whose index-to-address
// mapping is richer than the stream's base/stride (e.g. rotated or
// clamped stencil walks); the stream still tracks lines, migration,
// credits and flow control identically.
func (s *AffineStream) AddrReady(addr memsim.Addr, notBefore engine.Time) (bank int, ready engine.Time) {
	if !s.started {
		s.Start(notBefore)
	}
	line := memsim.LineAddr(addr)
	if line != s.curLine {
		s.fetchLine(line, notBefore)
	}
	s.noteConsumed()
	ready = engine.MaxTime(s.lineReady, notBefore)
	if ready > s.finish {
		s.finish = ready
	}
	return s.bank, ready
}

// fetchLine moves the stream to a new line: migrating banks if the line
// is homed elsewhere, applying the in-flight window, and issuing the L3
// access.
func (s *AffineStream) fetchLine(line memsim.Addr, notBefore engine.Time) {
	s.curLine = line
	newBank := s.eng.mem.BankOf(line)
	if newBank != s.bank {
		s.eng.MigrateOverlapped(s.t, s.bank, newBank)
		s.bank = newBank
		s.t++
	}
	start := engine.MaxTime(s.t, notBefore)
	// Flow control: wait for the oldest in-flight line to drain.
	start = engine.MaxTime(start, s.inflight[s.inIdx])
	done, _ := s.eng.mem.AccessAt(start, s.bank, line, s.write)
	if DebugFetch != nil {
		DebugFetch(s.coreTile, s.bank, uint64(s.t), uint64(notBefore), uint64(s.inflight[s.inIdx]), uint64(start), uint64(done))
	}
	s.inflight[s.inIdx] = done
	s.inIdx = (s.inIdx + 1) % len(s.inflight)
	s.t = start + 1 // pipelined issue; bank occupancy is inside AccessAt
	s.lineReady = done
}

func (s *AffineStream) noteConsumed() {
	s.consumed++
	if s.eng.cfg.CreditElems > 0 && s.consumed%int64(s.eng.cfg.CreditElems) == 0 {
		s.eng.Credit(s.t, s.coreTile, s.bank)
	}
}

// ElemReady advances the stream to element i and returns the bank where
// the element materializes and the cycle its value (load) or slot (store)
// is ready. For stores, notBefore carries the dependency on forwarded
// operands and computation; the line write is issued no earlier.
// Elements must be visited in nondecreasing order.
func (s *AffineStream) ElemReady(i int64, notBefore engine.Time) (bank int, ready engine.Time) {
	if !s.started {
		s.Start(notBefore)
	}
	line := memsim.LineAddr(s.ElemAddr(i))
	if line != s.curLine {
		s.fetchLine(line, notBefore)
	}
	s.noteConsumed()
	ready = engine.MaxTime(s.lineReady, notBefore)
	if ready > s.finish {
		s.finish = ready
	}
	return s.bank, ready
}

// Finish returns the latest ready time the stream has produced — its
// completion when all elements have been visited.
func (s *AffineStream) Finish() engine.Time { return s.finish }

// Package stream implements the near-stream computing (NSC) substrate of
// §2: streams are long-term access patterns (affine, indirect,
// pointer-chasing) offloaded from the core's stream engine (SEcore) to
// L3-bank stream engines (SEL3), where they access the bank, forward
// elements to dependent streams, perform remote atomics, and migrate
// bank-to-bank following the data.
//
// The model is element/line-granular and throughput-oriented: each stream
// carries a local issue time that advances by occupancy (streams are
// pipelined), while dependencies couple through per-line ready times.
// Shared bank, link and DRAM schedules couple concurrent streams, so load
// imbalance and congestion emerge naturally.
package stream

import (
	"affinityalloc/internal/cache"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/telemetry"
)

// Config holds the NSC microarchitecture parameters (Table 2).
type Config struct {
	// ConfigBytes is the size of a stream configuration packet.
	ConfigBytes int
	// MigrateBytes is the size of a stream-migration packet.
	MigrateBytes int
	// RemoteOpBytes is the size of an indirect/atomic request.
	RemoteOpBytes int
	// AckBytes is the size of a response/acknowledgement.
	AckBytes int
	// ComputeInit is the latency to start a near-stream computation on a
	// spare SMT thread (Table 2: 4 cycles).
	ComputeInit engine.Time
	// SIMDLanes is the vector width of near-stream computation.
	SIMDLanes int
	// SMTThreads is the number of spare compute threads per bank.
	SMTThreads int
	// CreditElems is the coarse-grained flow-control granularity: one
	// credit message covers this many elements (§2.2).
	CreditElems int
	// StreamWindow is how many lines one stream may have in flight (its
	// share of the SEL3 element buffer, Table 2: 64kB / 768 streams).
	StreamWindow int
}

// DefaultConfig mirrors Table 2.
func DefaultConfig() Config {
	return Config{
		ConfigBytes:   64,
		MigrateBytes:  24,
		RemoteOpBytes: 16,
		AckBytes:      8,
		ComputeInit:   4,
		SIMDLanes:     16,
		SMTThreads:    2,
		CreditElems:   1024,
		StreamWindow:  8,
	}
}

// AtomicSampler observes each serviced remote atomic with its bank and
// cycle; the Fig-14 occupancy timelines hook in here.
type AtomicSampler func(bank int, at engine.Time)

// Engine is the shared SEL3 infrastructure: per-bank compute-thread
// schedules, stream accounting, and the remote-operation protocol.
type Engine struct {
	cfg Config
	mem *cache.MemSystem
	net *noc.Network

	// computeSrv schedules each bank's spare SMT compute threads.
	computeSrv []*engine.Server

	// Counters for reports and the energy model.
	StreamsConfigured uint64
	Migrations        uint64
	RemoteOps         uint64
	ElementsComputed  uint64

	// Per-bank breakdowns: where remote operations were served and where
	// near-stream elements were computed — the SEL3 load-balance view.
	bankRemoteOps []uint64
	bankElements  []uint64

	// redirect maps each bank to the one that actually hosts its SEL3
	// work — the identity unless fault injection disabled banks, in which
	// case dead banks point at their nearest survivor (see
	// SetBankRedirect). Nil on a clean machine.
	redirect []int
	// FaultRedirects counts operations whose target bank was dead and was
	// redirected to a survivor.
	FaultRedirects uint64

	atomicSampler AtomicSampler

	// obs, when set, observes stream-issue events (offloads and
	// migrations) for the trace recorder. Observation reads nothing back
	// and precedes the NoC send, so recording cannot perturb timing.
	obs IssueObserver

	// clocks, when attached, turn op-retirement accounting into events
	// scheduled at each operation's completion cycle (see AttachClock).
	// The handlers are bound once so scheduling allocates nothing.
	// bankSim routes each bank's retirements to its owning kernel shard;
	// the shared ElementsComputed/RemoteOps scalars accumulate into
	// per-shard delta slots folded in on drain (they must stay deltas:
	// pointer-chase work also bumps ElementsComputed inline, so the total
	// cannot be recomputed from the per-bank series).
	clocks      *engine.Coordinator
	bankSim     []*engine.Sim
	bankShard   []int
	elemDelta   []uint64
	remoteDelta []uint64
	computeFn   func(uint64)
	remoteFn    func(uint64)
}

// NewEngine builds the shared stream-engine state over a memory system.
func NewEngine(mem *cache.MemSystem, cfg Config) *Engine {
	if cfg.SIMDLanes == 0 {
		cfg = DefaultConfig()
	}
	e := &Engine{
		cfg:           cfg,
		mem:           mem,
		net:           mem.Net(),
		computeSrv:    make([]*engine.Server, mem.Banks()),
		bankRemoteOps: make([]uint64, mem.Banks()),
		bankElements:  make([]uint64, mem.Banks()),
	}
	for i := range e.computeSrv {
		e.computeSrv[i] = engine.NewServer(cfg.SMTThreads, 8, 4096)
	}
	return e
}

// Compute-retirement events pack (bank, elements) into the ScheduleArg
// argument; element groups are small, so 32 bits of count is generous.
const computeElemBits = 32

// AttachClock defers SE op-retirement accounting through the event
// kernel: each Compute charges its element counters at the computation's
// completion cycle, and each RemoteOp charges the remote-op counters at
// its retirement cycle, via allocation-free ScheduleArg events. The
// updates are commutative adds, so readers that drain first (telemetry
// does) observe exactly the inline totals.
//
// bankShard assigns each bank to a kernel shard; a bank's retirements
// run on its owning shard, so parallel shard drains touch disjoint
// per-bank counters, and the machine-wide ElementsComputed/RemoteOps
// scalars accumulate in per-shard delta slots folded in on drain. A nil
// bankShard puts everything on shard 0; a nil coordinator restores
// inline accounting.
func (e *Engine) AttachClock(clocks *engine.Coordinator, bankShard []int) {
	e.clocks = clocks
	if clocks == nil {
		e.bankSim, e.bankShard = nil, nil
		e.elemDelta, e.remoteDelta = nil, nil
		e.computeFn, e.remoteFn = nil, nil
		return
	}
	e.bankSim = make([]*engine.Sim, len(e.bankElements))
	e.bankShard = make([]int, len(e.bankElements))
	for b := range e.bankSim {
		if bankShard != nil {
			e.bankShard[b] = bankShard[b]
		}
		e.bankSim[b] = clocks.Shard(e.bankShard[b])
	}
	e.elemDelta = make([]uint64, clocks.NumShards())
	e.remoteDelta = make([]uint64, clocks.NumShards())
	e.computeFn = func(arg uint64) {
		bank := arg >> computeElemBits
		elems := arg & (1<<computeElemBits - 1)
		e.elemDelta[e.bankShard[bank]] += elems
		e.bankElements[bank] += elems
	}
	e.remoteFn = func(arg uint64) {
		e.remoteDelta[e.bankShard[arg]]++
		e.bankRemoteOps[arg]++
	}
}

// retire schedules one deferred accounting event on the owning shard,
// draining that shard first when its queue has grown to the retirement
// batch bound or when the event falls beyond the shard's ring window —
// flushing and re-anchoring the empty window keeps retirements on the
// O(1) ring path while completion cycles race ahead of the parked shard
// clock. DrainAccounting (not Run) keeps the shard clock parked — a
// mid-run flush must never fast-forward simulated time.
func (e *Engine) retire(sim *engine.Sim, at engine.Time, fn func(uint64), arg uint64) {
	if sim.Pending() >= engine.DrainPending || (sim.Pending() > 0 && !sim.InRing(at)) {
		sim.DrainAccounting()
	}
	if sim.Pending() == 0 {
		sim.Advance(at)
	}
	sim.ScheduleArg(at, fn, arg)
}

// drain retires pending accounting events before a counter read, leaving
// every shard clock where it was, and folds the per-shard scalar deltas
// into the machine-wide totals.
func (e *Engine) drain() {
	if e.clocks == nil {
		return
	}
	e.clocks.DrainAccounting()
	for sh := range e.elemDelta {
		e.ElementsComputed += e.elemDelta[sh]
		e.RemoteOps += e.remoteDelta[sh]
		e.elemDelta[sh], e.remoteDelta[sh] = 0, 0
	}
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Mem returns the memory system.
func (e *Engine) Mem() *cache.MemSystem { return e.mem }

// SetAtomicSampler installs the Fig-14 observation hook.
func (e *Engine) SetAtomicSampler(s AtomicSampler) { e.atomicSampler = s }

// SetBankRedirect installs a bank-redirect table (len == banks): entry b
// names the bank that serves SEL3 work targeted at b. The system installs
// one when fault injection disables banks, pointing each dead bank at its
// nearest survivor; workload code can then keep addressing the nominal
// placement while the engine lands the work on live hardware.
func (e *Engine) SetBankRedirect(redirect []int) { e.redirect = redirect }

// bankFor resolves a nominal target bank through the redirect table,
// counting redirections.
func (e *Engine) bankFor(b int) int {
	if e.redirect == nil {
		return b
	}
	if r := e.redirect[b]; r != b {
		e.FaultRedirects++
		return r
	}
	return b
}

// IssueObserver receives stream-issue events — offload configuration
// packets and stream-state migrations — the second recording feed of
// internal/trace (accesses themselves are observed at the memory
// system). Banks reported are pre-redirect: a replay under different
// faults re-applies its own redirects.
type IssueObserver interface {
	ObserveOffload(coreTile, firstBank int)
	ObserveMigrate(from, to int)
}

// SetIssueObserver installs (or, with nil, removes) the issue observer.
func (e *Engine) SetIssueObserver(o IssueObserver) { e.obs = o }

// Offload models SEcore sending a stream configuration packet from the
// core's tile to the stream's first bank, returning when the stream may
// begin.
func (e *Engine) Offload(now engine.Time, coreTile, firstBank int) engine.Time {
	if e.obs != nil {
		e.obs.ObserveOffload(coreTile, firstBank)
	}
	e.StreamsConfigured++
	return e.net.Send(now, coreTile, e.bankFor(firstBank), noc.Offload, e.cfg.ConfigBytes)
}

// Migrate models a stream moving its architectural state between banks,
// returning when the stream can proceed at the destination. Used by
// data-dependent streams (pointer chasing), whose next bank is unknown
// until the previous element returns.
func (e *Engine) Migrate(now engine.Time, from, to int) engine.Time {
	if e.obs != nil {
		e.obs.ObserveMigrate(from, to)
	}
	from, to = e.bankFor(from), e.bankFor(to)
	if from == to {
		return now
	}
	e.Migrations++
	return e.net.Send(now, from, to, noc.Offload, e.cfg.MigrateBytes)
}

// MigrateOverlapped models migration of an affine stream, whose next bank
// is statically known: SEL3 configures the destination ahead of time, so
// the move costs traffic but stays off the critical path.
func (e *Engine) MigrateOverlapped(now engine.Time, from, to int) {
	if e.obs != nil {
		e.obs.ObserveMigrate(from, to)
	}
	from, to = e.bankFor(from), e.bankFor(to)
	if from == to {
		return
	}
	e.Migrations++
	e.net.Send(now, from, to, noc.Offload, e.cfg.MigrateBytes)
}

// Credit models the coarse-grained core->stream flow control message.
func (e *Engine) Credit(now engine.Time, coreTile, bank int) engine.Time {
	return e.net.Send(now, coreTile, e.bankFor(bank), noc.Control, e.cfg.AckBytes)
}

// Compute schedules `elems` elements of outlined computation on a spare
// SMT thread at bank, returning completion. The thread is occupied for
// the pipelined duration; the fixed ComputeInit latency (Table 2: 4
// cycles) is added to the result's availability but does not block the
// thread, so back-to-back groups stream through. Threads still serialize
// under load — a hot bank's computations queue, which is how load
// imbalance hurts.
func (e *Engine) Compute(now engine.Time, bank, elems int) engine.Time {
	bank = e.bankFor(bank)
	if elems <= 0 {
		return now
	}
	dur := (elems + e.cfg.SIMDLanes - 1) / e.cfg.SIMDLanes
	start := e.computeSrv[bank].Reserve(now, dur)
	done := start + e.cfg.ComputeInit + engine.Time(dur)
	if e.clocks != nil {
		e.retire(e.bankSim[bank], done, e.computeFn, uint64(bank)<<computeElemBits|uint64(elems))
	} else {
		e.ElementsComputed += uint64(elems)
		e.bankElements[bank] += uint64(elems)
	}
	return done
}

// RemoteOp models an indirect request sent from a stream at fromBank to
// the home bank of va: the request message, the L3 access there, and a
// small ALU operation. When withResponse is set (atomics whose result
// predicates other streams, e.g. CAS), the reply is also modeled and the
// returned time is the response's arrival back at fromBank; otherwise it
// is the remote completion.
func (e *Engine) RemoteOp(now engine.Time, fromBank int, va memsim.Addr, write, withResponse bool) (done engine.Time, homeBank int) {
	homeBank = e.mem.BankOf(va)
	t := now
	if homeBank != fromBank {
		t = e.net.Send(t, fromBank, homeBank, noc.Control, e.cfg.RemoteOpBytes)
	}
	t, _ = e.mem.AccessAt(t, homeBank, va, write)
	t++ // the SEL3 ALU op itself
	if e.atomicSampler != nil {
		e.atomicSampler(homeBank, t)
	}
	if withResponse && homeBank != fromBank {
		t = e.net.Send(t, homeBank, fromBank, noc.Control, e.cfg.AckBytes)
	}
	if e.clocks != nil {
		e.retire(e.bankSim[homeBank], t, e.remoteFn, uint64(homeBank))
	} else {
		e.RemoteOps++
		e.bankRemoteOps[homeBank]++
	}
	return t, homeBank
}

// Forward models element data forwarded between dependent streams
// (e.g. a load stream feeding a compute/store stream at another bank).
func (e *Engine) Forward(now engine.Time, from, to int, bytes int) engine.Time {
	from, to = e.bankFor(from), e.bankFor(to)
	if from == to {
		return now
	}
	return e.net.Send(now, from, to, noc.Data, bytes)
}

// PublishTelemetry publishes the stream-engine op breakdown (scalars)
// and the per-bank remote-op / computed-element series into the registry.
func (e *Engine) PublishTelemetry(r *telemetry.Registry) {
	e.drain()
	r.Set("se_streams_configured", e.StreamsConfigured)
	r.Set("se_migrations", e.Migrations)
	r.Set("se_remote_ops", e.RemoteOps)
	r.Set("se_elements_computed", e.ElementsComputed)
	r.SetSeries("se_bank_remote_ops", e.bankRemoteOps)
	r.SetSeries("se_bank_elements", e.bankElements)
	if e.redirect != nil {
		// Published only on degraded machines, so clean runs' metrics
		// documents carry no fault-related keys.
		r.Set("se_fault_redirects", e.FaultRedirects)
	}
}

// MaxComputeFree reports the latest compute schedule horizon — a
// debugging aid.
func (e *Engine) MaxComputeFree() engine.Time {
	var t engine.Time
	for _, s := range e.computeSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

// OpWindow bounds a stream's outstanding indirect operations — the
// SEL3's per-stream request buffer. Remote operations throttle to
// window/RTT, which is exactly how distance converts to throughput loss
// for indirect-heavy streams (and why placing targets locally pays).
type OpWindow struct {
	slots []engine.Time
	idx   int
}

// NewOpWindow builds a window of k outstanding operations.
func NewOpWindow(k int) *OpWindow {
	if k < 1 {
		k = 1
	}
	return &OpWindow{slots: make([]engine.Time, k)}
}

// Issue returns the earliest cycle a new operation may start at or after
// `at`, once the oldest outstanding operation has drained.
func (w *OpWindow) Issue(at engine.Time) engine.Time {
	return engine.MaxTime(at, w.slots[w.idx])
}

// Complete records the operation's completion, consuming the slot.
func (w *OpWindow) Complete(done engine.Time) {
	w.slots[w.idx] = done
	w.idx = (w.idx + 1) % len(w.slots)
}

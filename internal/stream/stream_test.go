package stream

import (
	"testing"

	"affinityalloc/internal/cache"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/topo"
)

func newEngine(t *testing.T) (*Engine, *memsim.Space) {
	t.Helper()
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	net := noc.New(mesh, noc.DefaultConfig())
	mem, err := cache.NewMemSystem(space, net, cache.DefaultMemSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(mem, DefaultConfig()), space
}

func poolArray(t *testing.T, space *memsim.Space, interleave int, bytes int64) memsim.Addr {
	t.Helper()
	base, err := space.ExpandPool(interleave, memsim.Addr(bytes))
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestAffineStreamPipelines(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<16)
	eng.Mem().Preload(base, 1<<16)
	s := NewAffineStream(eng, 0, base, 4, 1, 1<<14, false)
	s.Start(0)
	var first, last engine.Time
	for i := int64(0); i < 1<<14; i += 16 {
		_, ready := s.ElemReady(i, 0)
		if i == 0 {
			first = ready
		}
		last = ready
	}
	lines := int64(1 << 14 / 16)
	perLine := float64(last-first) / float64(lines)
	// Pipelined: amortized cost well below the 20-cycle hit latency.
	if perLine > 5 {
		t.Errorf("%.2f cycles/line, want pipelined (<5)", perLine)
	}
	if s.Finish() != last {
		t.Errorf("Finish %d != last ready %d", s.Finish(), last)
	}
}

func TestAffineStreamMigrationTraffic(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<12)
	eng.Mem().Preload(base, 1<<12)
	s := NewAffineStream(eng, 0, base, 4, 1, 1<<10, false)
	s.Start(0)
	for i := int64(0); i < 1<<10; i += 16 {
		s.ElemReady(i, 0)
	}
	// 64 lines at 64B interleave: a migration per line after the first.
	if eng.Migrations != 63 {
		t.Errorf("migrations %d, want 63", eng.Migrations)
	}
	// Same array at 4kB interleave: one bank, no migrations.
	eng2, space2 := newEngine(t)
	base2 := poolArray(t, space2, 4096, 1<<12)
	eng2.Mem().Preload(base2, 1<<12)
	s2 := NewAffineStream(eng2, 0, base2, 4, 1, 1<<10, false)
	s2.Start(0)
	for i := int64(0); i < 1<<10; i += 16 {
		s2.ElemReady(i, 0)
	}
	if eng2.Migrations != 0 {
		t.Errorf("single-bank stream migrated %d times", eng2.Migrations)
	}
}

func TestAffineStreamWindowThrottles(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<12)
	// NOT preloaded: every line misses to DRAM, so throughput must be
	// bounded by window/latency, not issue rate.
	s := NewAffineStream(eng, 0, base, 4, 1, 1<<10, false)
	s.Start(0)
	var last engine.Time
	for i := int64(0); i < 1<<10; i += 16 {
		_, last = s.ElemReady(i, 0)
	}
	// 64 missing lines with ~150-cycle misses and an 8-line window:
	// must take >64*150/8 = 1200 cycles.
	if last < 1000 {
		t.Errorf("missing-line stream finished at %d — window not throttling", last)
	}
}

func TestChaseStreamSerializes(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<12)
	eng.Mem().Preload(base, 1<<12)
	ch := NewChaseStream(eng, 0)
	ch.Start(0, base)
	var prev engine.Time
	for i := 0; i < 16; i++ {
		done := ch.Visit(base+memsim.Addr(i*64), 16)
		if done <= prev {
			t.Fatalf("visit %d completed at %d, not after %d", i, done, prev)
		}
		if done-prev < 20 && i > 0 {
			t.Fatalf("visit %d took %d cycles — dependent chain must pay full latency", i, done-prev)
		}
		prev = done
	}
	if ch.Visits() != 16 {
		t.Errorf("visits %d", ch.Visits())
	}
	if term := ch.Terminate(); term < prev {
		t.Error("terminate before last visit")
	}
}

func TestChainStreamOverlapsChains(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<14)
	eng.Mem().Preload(base, 1<<14)

	// Serial baseline: one chase stream visiting 64 nodes.
	chase := NewChaseStream(eng, 0)
	chase.Start(0, base)
	var serialEnd engine.Time
	for i := 0; i < 64; i++ {
		serialEnd = chase.Visit(base+memsim.Addr(i*64), 64)
	}

	// Chain stream: the same 64 nodes as 64 independent chains.
	eng2, space2 := newEngine(t)
	base2 := poolArray(t, space2, 64, 1<<14)
	eng2.Mem().Preload(base2, 1<<14)
	cs := NewChainStream(eng2, 0, 8)
	for i := 0; i < 64; i++ {
		cs.BeginChain(0)
		cs.VisitNode(base2+memsim.Addr(i*64), 64)
		cs.EndChain()
	}
	if cs.Finish() >= serialEnd {
		t.Errorf("chain stream (%d) no faster than serial chase (%d)", cs.Finish(), serialEnd)
	}
}

func TestRemoteOpLocalVsRemote(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<12)
	eng.Mem().Preload(base, 1<<12)
	target := base // bank 0
	localDone, bank := eng.RemoteOp(0, 0, target, true, false)
	if bank != 0 {
		t.Fatalf("home bank %d, want 0", bank)
	}
	eng2, space2 := newEngine(t)
	base2 := poolArray(t, space2, 64, 1<<12)
	eng2.Mem().Preload(base2, 1<<12)
	remoteDone, _ := eng2.RemoteOp(0, 63, base2, true, false)
	if remoteDone <= localDone {
		t.Errorf("remote op (%d) not slower than local (%d)", remoteDone, localDone)
	}
	// Responses add the return trip.
	eng3, space3 := newEngine(t)
	base3 := poolArray(t, space3, 64, 1<<12)
	eng3.Mem().Preload(base3, 1<<12)
	respDone, _ := eng3.RemoteOp(0, 63, base3, true, true)
	if respDone <= remoteDone {
		t.Errorf("with-response op (%d) not slower than fire-and-forget (%d)", respDone, remoteDone)
	}
}

func TestAtomicSamplerObservesOps(t *testing.T) {
	eng, space := newEngine(t)
	base := poolArray(t, space, 64, 1<<12)
	eng.Mem().Preload(base, 1<<12)
	var seen []int
	eng.SetAtomicSampler(func(bank int, _ engine.Time) { seen = append(seen, bank) })
	eng.RemoteOp(0, 5, base, true, false)    // bank 0
	eng.RemoteOp(0, 5, base+64, true, false) // bank 1
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("sampler saw %v", seen)
	}
}

func TestComputeQueuesOnHotBank(t *testing.T) {
	eng, _ := newEngine(t)
	// Saturate bank 0's two SMT threads.
	var last engine.Time
	for i := 0; i < 64; i++ {
		last = eng.Compute(0, 0, 16)
	}
	// 64 single-cycle groups over 2 threads ≈ 32 cycles + init.
	if last < 25 {
		t.Errorf("hot-bank compute finished at %d, want queued to >=25", last)
	}
	if eng.ElementsComputed != 64*16 {
		t.Errorf("elements computed %d", eng.ElementsComputed)
	}
	// An idle bank is unaffected.
	if done := eng.Compute(0, 5, 16); done > 10 {
		t.Errorf("idle bank compute at %d", done)
	}
}

func TestOpWindowBoundsOutstanding(t *testing.T) {
	w := NewOpWindow(4)
	// Fill 4 slots completing at 100.
	for i := 0; i < 4; i++ {
		if at := w.Issue(0); at != 0 {
			t.Fatalf("slot %d issued at %d", i, at)
		}
		w.Complete(100)
	}
	// Fifth must wait for the oldest completion.
	if at := w.Issue(0); at != 100 {
		t.Errorf("fifth op issued at %d, want 100", at)
	}
}

func TestOffloadAndCreditTraffic(t *testing.T) {
	eng, _ := newEngine(t)
	net := eng.Mem().Net()
	eng.Offload(0, 0, 63)
	if eng.StreamsConfigured != 1 {
		t.Error("offload not counted")
	}
	if net.Stats()[noc.Offload].FlitHops == 0 {
		t.Error("offload produced no traffic")
	}
	eng.Credit(0, 0, 63)
	if net.Stats()[noc.Control].FlitHops == 0 {
		t.Error("credit produced no control traffic")
	}
}

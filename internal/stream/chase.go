package stream

import (
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
)

// ChaseStream is a pointer-chasing stream (sp = sp.nxt in Fig 2b): it
// lives at the bank of the node it is visiting, migrates to the next
// node's bank, and serializes on each node's load because the next
// address is data-dependent. Affinity placement shrinks exactly this
// migration distance.
type ChaseStream struct {
	eng      *Engine
	coreTile int

	started bool
	bank    int
	t       engine.Time
	visits  uint64
}

// NewChaseStream builds a pointer-chasing stream issued by coreTile.
func NewChaseStream(eng *Engine, coreTile int) *ChaseStream {
	return &ChaseStream{eng: eng, coreTile: coreTile}
}

// Start offloads the stream to the bank of the first node.
func (s *ChaseStream) Start(now engine.Time, first memsim.Addr) {
	if s.started {
		return
	}
	s.started = true
	s.bank = s.eng.mem.BankOf(first)
	s.t = s.eng.Offload(now, s.coreTile, s.bank)
}

// Visit models loading one node of nodeBytes at addr: migrate to the
// node's bank if needed, read its line(s), and charge one comparison. It
// returns the cycle the node's fields are available, which is also the
// stream's new local time (the chain is dependent).
func (s *ChaseStream) Visit(addr memsim.Addr, nodeBytes int) engine.Time {
	if !s.started {
		s.Start(s.t, addr)
	}
	s.visits++
	newBank := s.eng.mem.BankOf(addr)
	if newBank != s.bank {
		s.t = s.eng.Migrate(s.t, s.bank, newBank)
		s.bank = newBank
	}
	// Touch every line the node spans (nodes are small; usually one).
	first := memsim.LineAddr(addr)
	last := memsim.LineAddr(addr + memsim.Addr(nodeBytes) - 1)
	done := s.t
	for line := first; line <= last; line += memsim.LineSize {
		d, _ := s.eng.mem.AccessAt(s.t, s.bank, line, false)
		done = engine.MaxTime(done, d)
	}
	s.t = done + 1 // the SEL3 comparison / field extraction
	return s.t
}

// VisitAt is Visit with a floor on the stream's local time — used when a
// new dependent chain (the next vertex's edge list) begins no earlier
// than its inputs are available.
func (s *ChaseStream) VisitAt(addr memsim.Addr, nodeBytes int, notBefore engine.Time) engine.Time {
	if notBefore > s.t {
		s.t = notBefore
	}
	return s.Visit(addr, nodeBytes)
}

// Bank returns the stream's current bank.
func (s *ChaseStream) Bank() int { return s.bank }

// Now returns the stream's local time.
func (s *ChaseStream) Now() engine.Time { return s.t }

// Visits returns how many nodes the stream has visited.
func (s *ChaseStream) Visits() uint64 { return s.visits }

// Terminate returns the final value to the issuing core and reports the
// arrival cycle.
func (s *ChaseStream) Terminate() engine.Time {
	if !s.started {
		return s.t
	}
	return s.eng.net.Send(s.t, s.bank, s.coreTile, noc.Control, s.eng.cfg.AckBytes)
}

package stream

import (
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
)

// ChainStream executes a sequence of short, independent pointer chains —
// the linked-CSR edge lists of consecutive vertices (§5.3). Within one
// chain the node visits are data-dependent (the next pointer comes from
// the previous node), but separate chains are independent: the stream
// engine runs ahead, overlapping up to a window of chains, which is the
// "decoupled pointer-chasing task" advantage the paper describes over
// in-core chasing.
type ChainStream struct {
	eng      *Engine
	coreTile int

	started bool
	bank    int // current bank (last visited node)
	// chainT is the in-flight chain's dependent time.
	chainT  engine.Time
	inChain bool
	depth   int // nodes visited in the current chain
	// window bounds concurrently outstanding chains.
	window []engine.Time
	wIdx   int
	finish engine.Time
}

// NewChainStream builds a chain stream issued by coreTile with the given
// overlap window.
func NewChainStream(eng *Engine, coreTile, window int) *ChainStream {
	if window < 1 {
		window = 1
	}
	return &ChainStream{eng: eng, coreTile: coreTile, window: make([]engine.Time, window)}
}

// BeginChain starts a new independent chain whose inputs (the head
// pointer) are available at notBefore. It returns the chain's start time
// after flow control.
func (s *ChainStream) BeginChain(notBefore engine.Time) engine.Time {
	if s.inChain {
		s.EndChain()
	}
	s.inChain = true
	s.chainT = engine.MaxTime(notBefore, s.window[s.wIdx])
	return s.chainT
}

// VisitNode reads one chain node. The first node of a chain starts a new
// dependent sequence (its address was known in advance from the head
// array, so reaching its bank is overlapped); subsequent nodes serialize
// on the previous node's load and pay the dependent migration.
func (s *ChainStream) VisitNode(addr memsim.Addr, nodeBytes int) engine.Time {
	nodeBank := s.eng.mem.BankOf(addr)
	if !s.started {
		s.started = true
		s.bank = nodeBank
		s.chainT = engine.MaxTime(s.chainT, s.eng.Offload(s.chainT, s.coreTile, nodeBank))
	} else if nodeBank != s.bank {
		if s.depth == 0 {
			// First node of a chain: its address came from the head
			// array, so the move to its bank is overlapped.
			s.eng.MigrateOverlapped(s.chainT, s.bank, nodeBank)
			s.chainT++
		} else {
			// Mid-chain: the address came from the previous node.
			s.chainT = s.eng.Migrate(s.chainT, s.bank, nodeBank)
		}
		s.bank = nodeBank
	}
	s.depth++
	s.eng.ElementsComputed++

	first := memsim.LineAddr(addr)
	last := memsim.LineAddr(addr + memsim.Addr(nodeBytes) - 1)
	done := s.chainT
	for line := first; line <= last; line += memsim.LineSize {
		d, _ := s.eng.mem.AccessAt(s.chainT, s.bank, line, false)
		done = engine.MaxTime(done, d)
	}
	s.chainT = done + 1
	if s.chainT > s.finish {
		s.finish = s.chainT
	}
	return s.chainT
}

// EndChain completes the in-flight chain, releasing its window slot.
func (s *ChainStream) EndChain() engine.Time {
	if !s.inChain {
		return s.chainT
	}
	s.inChain = false
	s.window[s.wIdx] = s.chainT
	s.wIdx = (s.wIdx + 1) % len(s.window)
	s.depth = 0
	return s.chainT
}

// Bank returns the current bank.
func (s *ChainStream) Bank() int { return s.bank }

// Now returns the in-flight chain's dependent time.
func (s *ChainStream) Now() engine.Time { return s.chainT }

// Finish returns the latest completion observed.
func (s *ChainStream) Finish() engine.Time { return s.finish }

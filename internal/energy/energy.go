// Package energy estimates energy from event counts, standing in for the
// paper's McPAT/CACTI flow. Per-event energies are relative magnitudes
// taken from the architecture literature for a 22nm-class process; the
// evaluation only ever uses energy *ratios* (energy efficiency normalized
// to a baseline), which depend on the event-count differences the
// simulator produces, not on absolute joules.
package energy

// Params holds per-event energy costs in picojoules (relative scale).
type Params struct {
	CoreCyclePJ   float64 // static + clock power per active core cycle
	ALUOpPJ       float64
	SIMDOpPJ      float64
	L1AccessPJ    float64
	L2AccessPJ    float64
	L3AccessPJ    float64
	DRAMAccessPJ  float64
	NoCFlitHopPJ  float64
	SEL3OpPJ      float64 // per stream-engine element operation
	RouterIdlePJ  float64 // per router per cycle
	UncoreCyclePJ float64 // shared-cache leakage per bank per cycle
}

// DefaultParams returns the relative per-event costs.
func DefaultParams() Params {
	return Params{
		CoreCyclePJ:   12, // a wide OOO core burns far more per cycle than uncore
		ALUOpPJ:       1.5,
		SIMDOpPJ:      6,
		L1AccessPJ:    2,
		L2AccessPJ:    8,
		L3AccessPJ:    20,
		DRAMAccessPJ:  150,
		NoCFlitHopPJ:  4,
		SEL3OpPJ:      0.8, // lightweight engines skip fetch/rename/LSQ
		RouterIdlePJ:  0.4,
		UncoreCyclePJ: 0.5,
	}
}

// Counts aggregates the event counts a run produced. The JSON tags are
// the stable snake_case metrics schema.
type Counts struct {
	CoreActiveCycles uint64 `json:"core_active_cycles"` // summed over cores
	ALUOps           uint64 `json:"alu_ops"`
	SIMDOps          uint64 `json:"simd_ops"`
	L1Accesses       uint64 `json:"l1_accesses"`
	L2Accesses       uint64 `json:"l2_accesses"`
	L3Accesses       uint64 `json:"l3_accesses"`
	DRAMAccesses     uint64 `json:"dram_accesses"`
	NoCFlitHops      uint64 `json:"noc_flit_hops"`
	SEL3Ops          uint64 `json:"se_l3_ops"`
	ElapsedCycles    uint64 `json:"elapsed_cycles"`
	Routers          int    `json:"routers"`
	Banks            int    `json:"banks"`
}

// Breakdown is energy per component, in the Params scale. Only the raw
// per-component values are stored; the total is always derived (Total).
type Breakdown struct {
	Core    float64 `json:"core"`
	Compute float64 `json:"compute"`
	L1      float64 `json:"l1"`
	L2      float64 `json:"l2"`
	L3      float64 `json:"l3"`
	DRAM    float64 `json:"dram"`
	NoC     float64 `json:"noc"`
	SEL3    float64 `json:"se_l3"`
	Static  float64 `json:"static"`
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	return b.Core + b.Compute + b.L1 + b.L2 + b.L3 + b.DRAM + b.NoC + b.SEL3 + b.Static
}

// Estimate converts counts to an energy breakdown.
func Estimate(c Counts, p Params) Breakdown {
	return Breakdown{
		Core:    float64(c.CoreActiveCycles) * p.CoreCyclePJ,
		Compute: float64(c.ALUOps)*p.ALUOpPJ + float64(c.SIMDOps)*p.SIMDOpPJ,
		L1:      float64(c.L1Accesses) * p.L1AccessPJ,
		L2:      float64(c.L2Accesses) * p.L2AccessPJ,
		L3:      float64(c.L3Accesses) * p.L3AccessPJ,
		DRAM:    float64(c.DRAMAccesses) * p.DRAMAccessPJ,
		NoC:     float64(c.NoCFlitHops) * p.NoCFlitHopPJ,
		SEL3:    float64(c.SEL3Ops) * p.SEL3OpPJ,
		Static: float64(c.ElapsedCycles) *
			(float64(c.Routers)*p.RouterIdlePJ + float64(c.Banks)*p.UncoreCyclePJ),
	}
}

// Efficiency returns work/energy relative speed: given two runs of the
// same work, eff = (cyclesB * energyB) / (cyclesA * energyA) — i.e. the
// energy-efficiency ratio of A over B when both complete identical work.
// The paper reports energy efficiency as performance/watt normalized to a
// baseline, which for equal work reduces to energyBase/energyNew.
func Efficiency(energyNew, energyBase float64) float64 {
	if energyNew == 0 {
		return 0
	}
	return energyBase / energyNew
}

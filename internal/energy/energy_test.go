package energy

import "testing"

func TestEstimateLinear(t *testing.T) {
	p := DefaultParams()
	c := Counts{
		L3Accesses:   100,
		DRAMAccesses: 10,
		NoCFlitHops:  1000,
	}
	b := Estimate(c, p)
	if b.L3 != 100*p.L3AccessPJ {
		t.Errorf("L3 energy %f", b.L3)
	}
	if b.DRAM != 10*p.DRAMAccessPJ {
		t.Errorf("DRAM energy %f", b.DRAM)
	}
	if b.NoC != 1000*p.NoCFlitHopPJ {
		t.Errorf("NoC energy %f", b.NoC)
	}
	want := b.L3 + b.DRAM + b.NoC
	if b.Total() != want {
		t.Errorf("Total %f, want %f", b.Total(), want)
	}
	// Doubling counts doubles energy.
	c2 := c
	c2.L3Accesses *= 2
	c2.DRAMAccesses *= 2
	c2.NoCFlitHops *= 2
	if got := Estimate(c2, p).Total(); got != 2*b.Total() {
		t.Errorf("nonlinear estimate: %f vs %f", got, 2*b.Total())
	}
}

func TestStaticEnergyScalesWithTime(t *testing.T) {
	p := DefaultParams()
	c := Counts{ElapsedCycles: 1000, Routers: 64, Banks: 64}
	b := Estimate(c, p)
	if b.Static <= 0 {
		t.Error("no static energy")
	}
	c.ElapsedCycles = 2000
	if got := Estimate(c, p).Static; got != 2*b.Static {
		t.Errorf("static energy not linear in time: %f vs %f", got, 2*b.Static)
	}
}

func TestRelativeMagnitudes(t *testing.T) {
	// Sanity ordering of per-event energies: DRAM >> L3 > L2 > L1 > SEL3 op.
	p := DefaultParams()
	if !(p.DRAMAccessPJ > p.L3AccessPJ && p.L3AccessPJ > p.L2AccessPJ &&
		p.L2AccessPJ > p.L1AccessPJ && p.L1AccessPJ > p.SEL3OpPJ) {
		t.Errorf("per-event energy ordering violated: %+v", p)
	}
	// A wide OOO core cycle costs far more than a stream-engine op.
	if p.CoreCyclePJ < 10*p.SEL3OpPJ {
		t.Error("core cycle should dwarf SEL3 op energy")
	}
}

func TestEfficiency(t *testing.T) {
	if Efficiency(50, 100) != 2 {
		t.Error("Efficiency(50,100) != 2")
	}
	if Efficiency(0, 100) != 0 {
		t.Error("Efficiency with zero energy should be 0")
	}
}

// Package core implements the paper's contribution: the affinity
// allocation runtime (§3–§5). Applications describe *affinity* — which
// data should live near which — through a declarative allocator API, and
// the runtime lowers those constraints onto interleave pools, picking
// interleavings (Eq. 3), start banks, and, for irregular allocations,
// banks scored by the hybrid affinity/load-balance policy (Eq. 4).
//
// The runtime is deliberately ignorant of data structures (it sees only
// sizes, alignment parameters, and affinity addresses) and of workload
// semantics (it sees only the topology the OS reports) — the layering of
// Fig 7.
package core

import (
	"fmt"
	"math/rand"

	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

// Policy selects the irregular bank-selection policy of §5.2 / Fig 13.
type Policy int

const (
	// Rnd picks a uniformly random bank.
	Rnd Policy = iota
	// Lnr picks banks round-robin.
	Lnr
	// MinHop picks the bank with the fewest average hops to the affinity
	// addresses (Eq. 4 with H = 0).
	MinHop
	// Hybrid trades affinity against load balance per Eq. 4.
	Hybrid
)

func (p Policy) String() string {
	switch p {
	case Rnd:
		return "Rnd"
	case Lnr:
		return "Lnr"
	case MinHop:
		return "Min-Hop"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyConfig is a policy plus its load-balance weight H (only used by
// Hybrid; the paper's default is Hybrid-5).
type PolicyConfig struct {
	Policy Policy
	H      float64
}

// DefaultPolicy returns the paper's default, Hybrid-5.
func DefaultPolicy() PolicyConfig { return PolicyConfig{Policy: Hybrid, H: 5} }

// MaxAffinityAddrs caps the affinity-address list per allocation (§5.1).
const MaxAffinityAddrs = 32

// AffineSpec mirrors the AffineArray struct of Fig 8(a): what to allocate
// and how it aligns to an existing array.
type AffineSpec struct {
	ElemSize int   // element size in bytes
	NumElem  int64 // number of elements
	// AlignTo is the base address of a previously allocated affine array
	// this one aligns with (zero: no inter-array affinity).
	AlignTo memsim.Addr
	// AlignP/AlignQ/AlignX define B[i] ↔ A[(AlignP/AlignQ)·i + AlignX]
	// (Eq. 2). Zero values are treated as 1/1/0. With AlignTo zero and
	// AlignX > 0, AlignX requests intra-array affinity between elements
	// i and i+AlignX (Fig 8c).
	AlignP, AlignQ int
	AlignX         int64
	// Partition forces an interleaving that spreads the array evenly
	// across all banks (Fig 9).
	Partition bool
}

func (s AffineSpec) norm() AffineSpec {
	if s.AlignP == 0 {
		s.AlignP = 1
	}
	if s.AlignQ == 0 {
		s.AlignQ = 1
	}
	return s
}

// ArrayInfo records the layout the runtime chose for an affine array.
// Workloads compute element addresses through ElemAddr so padding
// (ElemStride > ElemSize) stays transparent.
type ArrayInfo struct {
	Base       memsim.Addr
	ElemSize   int
	ElemStride int // bytes between consecutive elements (>= ElemSize)
	NumElem    int64
	// Interleave is the pool interleaving in bytes; 0 means the array
	// fell back to the baseline allocator (no placement control).
	Interleave int
	// PageMapped marks partition-style arrays using page-granularity
	// placement; Interleave then holds the per-bank chunk size.
	PageMapped bool
	StartBank  int

	pageBanks []int // for PageMapped arrays, per-page banks
}

// ElemAddr returns the address of element i.
func (a *ArrayInfo) ElemAddr(i int64) memsim.Addr {
	return a.Base + memsim.Addr(i)*memsim.Addr(a.ElemStride)
}

// Bytes returns the array's total footprint including padding.
func (a *ArrayInfo) Bytes() int64 { return a.NumElem * int64(a.ElemStride) }

// Stats counts runtime activity for reports and tests.
type Stats struct {
	AffineAllocs    uint64
	IrregularAllocs uint64
	Fallbacks       uint64 // affine requests served by the baseline allocator
	PaddedArrays    uint64
	PadBytes        uint64
	Frees           uint64
	PoolRefills     uint64
}

type addrRange struct {
	start memsim.Addr
	size  int64
}

// Runtime is the affinity allocator. It is not safe for concurrent use;
// the simulator's event loop serializes allocation.
type Runtime struct {
	space *memsim.Space
	mesh  *topo.Mesh
	pcfg  PolicyConfig
	rng   *rand.Rand

	lnrNext int

	arrays map[memsim.Addr]*ArrayInfo
	// chunks maps irregular allocations to their chunk interleave.
	chunks map[memsim.Addr]int
	// freeChunks[interleave][bank] is a stack of free chunks of that
	// pool's interleaving homed at that bank.
	freeChunks map[int][][]memsim.Addr
	// freeRanges[interleave] holds freed affine extents for reuse.
	freeRanges map[int][]addrRange

	// load tracks irregular allocations per bank (Eq. 4's load term).
	load      []int
	totalLoad int

	// Baseline (affinity-oblivious) allocator state.
	heapCur, heapEnd memsim.Addr
	baseFree         map[int64][]memsim.Addr

	// obs, when set, observes outermost public allocator calls (see
	// observer.go); obsDepth suppresses internal reentry.
	obs      Observer
	obsDepth int

	Stats Stats
}

// New builds a runtime over the simulated space and the topology the OS
// reports.
func New(space *memsim.Space, mesh *topo.Mesh, pcfg PolicyConfig, seed int64) (*Runtime, error) {
	if space.Banks() != mesh.Banks() {
		return nil, fmt.Errorf("core: space has %d banks, mesh %d", space.Banks(), mesh.Banks())
	}
	r := &Runtime{
		space:      space,
		mesh:       mesh,
		pcfg:       pcfg,
		rng:        rand.New(rand.NewSource(seed)),
		arrays:     make(map[memsim.Addr]*ArrayInfo),
		chunks:     make(map[memsim.Addr]int),
		freeChunks: make(map[int][][]memsim.Addr),
		freeRanges: make(map[int][]addrRange),
		load:       make([]int, mesh.Banks()),
		baseFree:   make(map[int64][]memsim.Addr),
	}
	return r, nil
}

// MustNew is New that panics on error. Callers use it only with a space
// and mesh built from the same validated config, so a mismatch here is a
// wiring bug, and the panic names that invariant.
func MustNew(space *memsim.Space, mesh *topo.Mesh, pcfg PolicyConfig, seed int64) *Runtime {
	r, err := New(space, mesh, pcfg, seed)
	if err != nil {
		panic(fmt.Sprintf("core: MustNew with a space/mesh pair from mismatched configs (programmer error — use New for untrusted pairings): %v", err))
	}
	return r
}

// Space returns the simulated address space.
func (r *Runtime) Space() *memsim.Space { return r.space }

// Mesh returns the topology.
func (r *Runtime) Mesh() *topo.Mesh { return r.mesh }

// PolicyConfig returns the irregular bank-selection policy in force.
func (r *Runtime) PolicyConfig() PolicyConfig { return r.pcfg }

// BankOf returns the L3 bank of an allocated address.
func (r *Runtime) BankOf(addr memsim.Addr) int { return r.space.MustBank(addr) }

// LoadVector copies the per-bank irregular-allocation load.
func (r *Runtime) LoadVector() []int {
	out := make([]int, len(r.load))
	copy(out, r.load)
	return out
}

// NoteMigration keeps the Eq. 4 load vector consistent when the online
// reconciler re-homes a granule: the load the original allocation
// charged to the source bank follows the data, so subsequent
// Rnd/Lnr/MinHop/hybrid decisions score the post-migration machine
// rather than the placement history. The source's load can already be
// zero when the migrated granule was affine (never load-charged); the
// vector only moves load it actually holds.
func (r *Runtime) NoteMigration(from, to int) {
	if from == to || from < 0 || to < 0 || from >= len(r.load) || to >= len(r.load) {
		return
	}
	if r.load[from] > 0 {
		r.load[from]--
		r.load[to]++
	}
}

// ArrayOf returns the layout record for an affine array's base address.
func (r *Runtime) ArrayOf(base memsim.Addr) (*ArrayInfo, bool) {
	a, ok := r.arrays[base]
	return a, ok
}

// ChunkOf returns the placement-unit (chunk) size of a live irregular
// allocation, and whether addr is one.
func (r *Runtime) ChunkOf(addr memsim.Addr) (int, bool) {
	c, ok := r.chunks[addr]
	return c, ok
}

// OpenPool ensures the interleave pool exists — reserving its physical
// extent and installing its IOT entry — and returns it. Allocation paths
// create pools on demand either way; this is the explicit entry point a
// placement service exposes so tenants can pre-open the interleavings
// they will allocate from.
func (r *Runtime) OpenPool(interleave int) (*memsim.Pool, error) {
	if r.obs != nil && r.obsDepth == 0 {
		r.obs.ObserveOpenPool(interleave)
	}
	return r.space.Pool(interleave)
}

// AllocBase is the baseline affinity-oblivious allocator (the `malloc`
// the Near-L3 and In-Core configurations use): a bump allocator over the
// conventional heap with size-class free lists.
func (r *Runtime) AllocBase(size int64) (memsim.Addr, error) {
	top := r.obsEnter()
	addr, err := r.allocBase(size)
	if top {
		r.obs.ObserveBase(size, addr, err)
	}
	r.obsExit()
	return addr, err
}

func (r *Runtime) allocBase(size int64) (memsim.Addr, error) {
	size = roundUp(size, memsim.LineSize)
	if lst := r.baseFree[size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		r.baseFree[size] = lst[:len(lst)-1]
		return addr, nil
	}
	if r.heapCur+memsim.Addr(size) > r.heapEnd {
		grow := memsim.Addr(size)
		if grow < 1<<20 {
			grow = 1 << 20
		}
		base, err := r.space.HeapBrk(grow)
		if err != nil {
			return 0, err
		}
		if r.heapCur != base && r.heapCur != 0 {
			// Heap extents are contiguous by construction; keep the
			// invariant explicit.
			r.heapCur = base
		} else if r.heapCur == 0 {
			r.heapCur = base
		}
		r.heapEnd = base + grow
	}
	addr := r.heapCur
	r.heapCur += memsim.Addr(size)
	return addr, nil
}

func roundUp(v, to int64) int64 { return (v + to - 1) / to * to }

// roundUpPow2 returns the smallest power of two >= v (v > 0).
func roundUpPow2(v int64) int64 {
	p := int64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// hops returns the Manhattan distance between banks.
func (r *Runtime) hops(a, b int) int { return r.mesh.Hops(a, b) }

// avgLoad returns the Eq. 4 denominator.
func (r *Runtime) avgLoad() float64 {
	return float64(r.totalLoad) / float64(len(r.load))
}

// scoreBank evaluates Eq. 4 for a candidate bank given the distinct
// affinity banks and their multiplicities.
func (r *Runtime) scoreBank(bank int, affBanks []int, affCounts []int, nAff int, h float64) float64 {
	score := 0.0
	if nAff > 0 {
		sum := 0
		for i, ab := range affBanks {
			sum += affCounts[i] * r.hops(bank, ab)
		}
		score = float64(sum) / float64(nAff)
	}
	if h != 0 {
		if avg := r.avgLoad(); avg > 0 {
			score += h * (float64(r.load[bank])/avg - 1)
		}
	}
	return score
}

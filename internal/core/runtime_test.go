package core

import (
	"testing"
	"testing/quick"

	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

func newRuntime(t *testing.T, pcfg PolicyConfig) *Runtime {
	t.Helper()
	space, err := memsim.NewSpace(memsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	r, err := New(space, mesh, pcfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultAffineUsesLineInterleave(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interleave != memsim.LineSize {
		t.Errorf("interleave %d, want %d", a.Interleave, memsim.LineSize)
	}
	if a.StartBank != 0 {
		t.Errorf("start bank %d, want 0", a.StartBank)
	}
	// 16 floats per line: elements 0..15 on bank 0, 16..31 on bank 1.
	if b := r.BankOf(a.ElemAddr(15)); b != 0 {
		t.Errorf("elem 15 on bank %d, want 0", b)
	}
	if b := r.BankOf(a.ElemAddr(16)); b != 1 {
		t.Errorf("elem 16 on bank %d, want 1", b)
	}
}

func TestInterArrayAlignmentSameSize(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	if b.Interleave != a.Interleave {
		t.Fatalf("interleave %d, want %d", b.Interleave, a.Interleave)
	}
	// The paper's goal: A[i] and B[i] colocated for every i.
	for _, i := range []int64{0, 1, 15, 16, 1000, 1 << 15, 1<<16 - 1} {
		if r.BankOf(a.ElemAddr(i)) != r.BankOf(b.ElemAddr(i)) {
			t.Fatalf("A[%d] on bank %d but B[%d] on bank %d", i, r.BankOf(a.ElemAddr(i)), i, r.BankOf(b.ElemAddr(i)))
		}
	}
}

func TestInterArrayAlignmentEq3ElementRatio(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	// Fig 8(b): float A, double C => C gets 2x interleaving.
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.AllocAffine(AffineSpec{ElemSize: 8, NumElem: 1 << 16, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	if c.Interleave != 2*a.Interleave {
		t.Fatalf("C interleave %d, want %d", c.Interleave, 2*a.Interleave)
	}
	for _, i := range []int64{0, 7, 16, 999, 1 << 15} {
		if r.BankOf(a.ElemAddr(i)) != r.BankOf(c.ElemAddr(i)) {
			t.Fatalf("A[%d] and C[%d] on banks %d vs %d", i, i, r.BankOf(a.ElemAddr(i)), r.BankOf(c.ElemAddr(i)))
		}
	}
}

func TestInterArrayAlignmentOffsetX(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// B[i] aligns with A[i + 64]: start bank shifts by 64*4/64 = 4 banks.
	b, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 10, AlignTo: a.Base, AlignX: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{0, 5, 100, 1023} {
		if r.BankOf(b.ElemAddr(i)) != r.BankOf(a.ElemAddr(i+64)) {
			t.Fatalf("B[%d] bank %d != A[%d] bank %d", i, r.BankOf(b.ElemAddr(i)), i+64, r.BankOf(a.ElemAddr(i+64)))
		}
	}
}

func TestInterArrayAlignmentRatioPQ(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// B[i] aligns to A[4i]: B needs 1/4 the span per element ratio —
	// Eq. 3 gives intrlvB = (4/4)*(1/4)*64 = 16 < 64, so the runtime
	// pads B's stride to 16B so that 64B interleave aligns exactly.
	b, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 12, AlignTo: a.Base, AlignP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Interleave == 0 {
		t.Skip("runtime chose fallback for p=4 alignment")
	}
	for _, i := range []int64{0, 3, 64, 1000} {
		if r.BankOf(b.ElemAddr(i)) != r.BankOf(a.ElemAddr(4*i)) {
			t.Fatalf("B[%d] bank %d != A[%d] bank %d (stride=%d il=%d)",
				i, r.BankOf(b.ElemAddr(i)), 4*i, r.BankOf(a.ElemAddr(4*i)), b.ElemStride, b.Interleave)
		}
	}
}

func TestAlignmentFallback(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	// elem 12B against 4B target: intrlv = 3*64 = 192, not a power of
	// two and padding to 256 would need stride 16 with elem 12 — allowed
	// (16 <= 4*12). Use a ratio that cannot pad: p=7.
	b, err := r.AllocAffine(AffineSpec{ElemSize: 12, NumElem: 100, AlignTo: a.Base, AlignP: 7})
	if err != nil {
		t.Fatal(err)
	}
	if b.Interleave != 0 && r.Stats.Fallbacks == 0 && r.Stats.PaddedArrays == 0 {
		t.Errorf("expected fallback or padding for irrational alignment, got interleave %d", b.Interleave)
	}
}

func TestPartitionDistributesEvenly(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	// 64 banks, 1<<18 elements of 4B = 1MB → 16kB per bank → page-mapped.
	v, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 18, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int64)
	for i := int64(0); i < v.NumElem; i += 64 {
		counts[r.BankOf(v.ElemAddr(i))]++
	}
	if len(counts) != 64 {
		t.Fatalf("partition touched %d banks, want 64", len(counts))
	}
	var min, max int64 = 1 << 62, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > max/8 {
		t.Errorf("partition imbalance: min %d max %d", min, max)
	}
	// Partition k should hold contiguous elements: element 0 and element
	// N/64-1 on bank 0.
	if b := r.BankOf(v.ElemAddr(0)); b != 0 {
		t.Errorf("first element on bank %d, want 0", b)
	}
	if b := r.BankOf(v.ElemAddr(v.NumElem - 1)); b != 63 {
		t.Errorf("last element on bank %d, want 63", b)
	}
}

func TestSmallPartitionUsesPool(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	// 64k elements of 4B = 256kB → 4kB per bank → pool path.
	v, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 16, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.PageMapped {
		t.Error("small partition used page mapping")
	}
	if v.Interleave != 4096 {
		t.Errorf("interleave %d, want 4096", v.Interleave)
	}
}

func TestAlignToPartitionedArray(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	v, err := r.AllocAffine(AffineSpec{ElemSize: 8, NumElem: 1 << 17, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := r.AllocAffine(AffineSpec{ElemSize: 8, NumElem: 1 << 17, AlignTo: v.Base})
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for i := int64(0); i < v.NumElem; i += 97 {
		if r.BankOf(v.ElemAddr(i)) != r.BankOf(q.ElemAddr(i)) {
			mismatches++
		}
	}
	// Page-granularity mirroring may misalign at partition boundaries;
	// the overwhelming majority must colocate.
	if mismatches > int(v.NumElem/97/50) {
		t.Errorf("%d mismatched banks out of %d sampled", mismatches, v.NumElem/97)
	}
}

func TestIntraArrayAffinity(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	// Rows of N=1024 floats: want row i and row i+1 close (Fig 8c).
	n := int64(1024)
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 256 * n, AlignX: n})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interleave == 0 {
		t.Fatal("intra-array affinity fell back")
	}
	mesh := r.Mesh()
	total := 0
	samples := 0
	for i := int64(0); i+n < a.NumElem; i += 511 {
		total += mesh.Hops(r.BankOf(a.ElemAddr(i)), r.BankOf(a.ElemAddr(i+n)))
		samples++
	}
	avg := float64(total) / float64(samples)
	if avg > 1.5 {
		t.Errorf("avg row-to-row distance %.2f hops, want <= 1.5 (interleave %d)", avg, a.Interleave)
	}
}

func TestAllocAffineAtBank(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	for _, bank := range []int{0, 5, 63} {
		a, err := r.AllocAffineAtBank(AffineSpec{ElemSize: 4, NumElem: 1024}, bank)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.BankOf(a.Base); got != bank {
			t.Errorf("forced bank %d, got %d", bank, got)
		}
	}
}

func TestIrregularAllocationRoundsToChunk(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	addr, err := r.AllocNear(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr%64 != 0 {
		t.Errorf("chunk %#x not 64B aligned", uint64(addr))
	}
	if _, err := r.AllocNear(0, nil); err == nil {
		t.Error("zero-size AllocNear succeeded")
	}
	if _, err := r.AllocNear(8192, nil); err == nil {
		t.Error("oversized AllocNear succeeded")
	}
	aff := make([]memsim.Addr, MaxAffinityAddrs+1)
	for i := range aff {
		aff[i] = addr
	}
	if _, err := r.AllocNear(64, aff); err == nil {
		t.Error("AllocNear with too many affinity addresses succeeded")
	}
}

func TestMinHopColocates(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: MinHop})
	first, err := r.AllocNear(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := first
	for i := 0; i < 100; i++ {
		n, err := r.AllocNear(64, []memsim.Addr{prev})
		if err != nil {
			t.Fatal(err)
		}
		if r.BankOf(n) != r.BankOf(prev) {
			t.Fatalf("MinHop placed node %d on bank %d, want %d", i, r.BankOf(n), r.BankOf(prev))
		}
		prev = n
	}
}

func TestHybridSpillsUnderLoad(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: Hybrid, H: 5})
	anchor, err := r.AllocNear(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	banks := make(map[int]int)
	for i := 0; i < 1000; i++ {
		n, err := r.AllocNear(64, []memsim.Addr{anchor})
		if err != nil {
			t.Fatal(err)
		}
		banks[r.BankOf(n)]++
	}
	if len(banks) < 4 {
		t.Errorf("Hybrid used only %d banks under heavy skew, want spill", len(banks))
	}
	// But affinity should still matter: the anchor's bank must be the
	// most popular one.
	anchorBank := r.BankOf(anchor)
	for b, c := range banks {
		if c > banks[anchorBank] && b != anchorBank {
			t.Errorf("bank %d (%d allocs) beat anchor bank %d (%d)", b, c, anchorBank, banks[anchorBank])
		}
	}
}

func TestLnrRoundRobin(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: Lnr})
	for i := 0; i < 130; i++ {
		n, err := r.AllocNear(64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.BankOf(n); got != i%64 {
			t.Fatalf("alloc %d on bank %d, want %d", i, got, i%64)
		}
	}
}

func TestRndIsDeterministicPerSeed(t *testing.T) {
	r1 := newRuntime(t, PolicyConfig{Policy: Rnd})
	r2 := newRuntime(t, PolicyConfig{Policy: Rnd})
	for i := 0; i < 50; i++ {
		a1, _ := r1.AllocNear(64, nil)
		a2, _ := r2.AllocNear(64, nil)
		if r1.BankOf(a1) != r2.BankOf(a2) {
			t.Fatal("Rnd policy not reproducible for fixed seed")
		}
	}
}

func TestFreeReusesIrregularChunk(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: MinHop})
	a, err := r.AllocNear(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	bank := r.BankOf(a)
	if err := r.Free(a); err != nil {
		t.Fatal(err)
	}
	// Allocate with affinity to the freed address (it still maps to a
	// bank): MinHop targets that bank and the freed chunk is reused.
	c, err := r.AllocNear(64, []memsim.Addr{a})
	if err != nil {
		t.Fatal(err)
	}
	if c != a || r.BankOf(c) != bank {
		t.Errorf("freed chunk not reused: got %#x bank %d, want %#x bank %d", uint64(c), r.BankOf(c), uint64(a), bank)
	}
}

func TestFreeAffineArrayReuse(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	base := a.Base
	if err := r.Free(base); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(base); err == nil {
		t.Error("double free succeeded")
	}
	b, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if b.Base != base {
		t.Errorf("freed affine extent not reused: got %#x, want %#x", uint64(b.Base), uint64(base))
	}
}

func TestFreeUnknownAddressFails(t *testing.T) {
	r := newRuntime(t, DefaultPolicy())
	if err := r.Free(0x42); err == nil {
		t.Error("Free of unknown address succeeded")
	}
}

func TestLoadTrackingInvariant(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: Hybrid, H: 3})
	addrs := make([]memsim.Addr, 0, 200)
	for i := 0; i < 200; i++ {
		a, err := r.AllocNear(64, nil)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	sum := 0
	for _, l := range r.LoadVector() {
		sum += l
	}
	if sum != 200 || r.totalLoad != 200 {
		t.Fatalf("load sum %d / total %d, want 200", sum, r.totalLoad)
	}
	for _, a := range addrs[:100] {
		if err := r.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	sum = 0
	for _, l := range r.LoadVector() {
		sum += l
	}
	if sum != 100 || r.totalLoad != 100 {
		t.Fatalf("after frees: load sum %d / total %d, want 100", sum, r.totalLoad)
	}
}

func TestIrregularChunkPhaseProperty(t *testing.T) {
	r := newRuntime(t, PolicyConfig{Policy: Rnd})
	// Property: every irregular allocation's bank (per Eq. 1) equals the
	// bank recorded by the load tracker's selection.
	prop := func(sizeSeed uint8) bool {
		size := int64(sizeSeed%200) + 1
		a, err := r.AllocNear(size, nil)
		if err != nil {
			return false
		}
		// All bytes of the chunk live on one bank.
		chunk := int64(r.chunks[a])
		return r.BankOf(a) == r.BankOf(a+memsim.Addr(chunk-1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePolicy converts the canonical flag/wire spelling of an irregular
// bank-selection policy (rnd|lnr|minhop|hybrid<H>) into a PolicyConfig.
// The empty string selects the paper's default, Hybrid-5. It round-trips
// with PolicyConfig.String for every parseable value.
func ParsePolicy(v string) (PolicyConfig, error) {
	switch strings.ToLower(v) {
	case "":
		return DefaultPolicy(), nil
	case "rnd":
		return PolicyConfig{Policy: Rnd}, nil
	case "lnr":
		return PolicyConfig{Policy: Lnr}, nil
	case "minhop":
		return PolicyConfig{Policy: MinHop}, nil
	}
	if h, ok := strings.CutPrefix(strings.ToLower(v), "hybrid"); ok {
		w, err := strconv.Atoi(h)
		if err != nil || w <= 0 {
			return PolicyConfig{}, fmt.Errorf("core: bad hybrid weight in policy %q (want hybrid<positive int>)", v)
		}
		return PolicyConfig{Policy: Hybrid, H: float64(w)}, nil
	}
	return PolicyConfig{}, fmt.Errorf("core: unknown policy %q (rnd|lnr|minhop|hybrid<H>)", v)
}

// String returns the canonical flag/wire spelling (see ParsePolicy).
func (p PolicyConfig) String() string {
	switch p.Policy {
	case Rnd:
		return "rnd"
	case Lnr:
		return "lnr"
	case MinHop:
		return "minhop"
	case Hybrid:
		return fmt.Sprintf("hybrid%g", p.H)
	default:
		return fmt.Sprintf("policy(%d)", int(p.Policy))
	}
}

package core

import (
	"fmt"

	"affinityalloc/internal/memsim"
)

// AllocAffine allocates an array per the Fig 8 API, choosing its
// interleaving from the affinity parameters:
//
//   - no affinity: the default line-size interleaving, maximizing
//     bank-level parallelism;
//   - inter-array affinity (AlignTo set): Eq. 3 scales the target array's
//     interleaving by the element-size and index ratios, and the start
//     bank is offset so B[0] lands with A[AlignX];
//   - intra-array affinity (AlignX set, AlignTo zero): the interleaving
//     minimizing the mean Manhattan distance between elements i and
//     i+AlignX;
//   - Partition: an interleaving spreading the array evenly across banks,
//     using page-granularity placement when the per-bank share exceeds a
//     page.
//
// When no supported interleaving satisfies the constraint exactly, the
// runtime first tries padding elements (recorded in Stats); if that also
// fails it falls back to the baseline allocator, exactly as §4.2
// prescribes, returning an ArrayInfo with Interleave == 0.
func (r *Runtime) AllocAffine(spec AffineSpec) (*ArrayInfo, error) {
	top := r.obsEnter()
	info, err := r.allocAffine(spec)
	if top {
		r.obs.ObserveAffine(spec.norm(), -1, info, err)
	}
	r.obsExit()
	return info, err
}

func (r *Runtime) allocAffine(spec AffineSpec) (*ArrayInfo, error) {
	spec = spec.norm()
	if spec.ElemSize <= 0 || spec.NumElem <= 0 {
		return nil, fmt.Errorf("core: invalid affine spec elem=%d n=%d", spec.ElemSize, spec.NumElem)
	}
	if spec.AlignTo != 0 && spec.Partition {
		return nil, fmt.Errorf("core: AlignTo and Partition are mutually exclusive")
	}
	r.Stats.AffineAllocs++

	switch {
	case spec.AlignTo != 0:
		return r.allocAligned(spec)
	case spec.Partition:
		return r.allocPartitioned(spec)
	case spec.AlignX > 0:
		return r.allocIntraAffine(spec)
	default:
		return r.allocDefault(spec, 0)
	}
}

// AllocAffineAtBank allocates like AllocAffine with no affinity
// parameters but forces the array's start bank — the hook the Fig-4
// Δ-bank layout sweep uses to construct deliberate misalignment.
func (r *Runtime) AllocAffineAtBank(spec AffineSpec, startBank int) (*ArrayInfo, error) {
	top := r.obsEnter()
	info, err := r.allocAffineAtBank(spec, startBank)
	if top {
		r.obs.ObserveAffine(spec.norm(), startBank, info, err)
	}
	r.obsExit()
	return info, err
}

func (r *Runtime) allocAffineAtBank(spec AffineSpec, startBank int) (*ArrayInfo, error) {
	spec = spec.norm()
	if startBank < 0 || startBank >= r.mesh.Banks() {
		return nil, fmt.Errorf("core: start bank %d out of range", startBank)
	}
	r.Stats.AffineAllocs++
	return r.allocDefault(spec, startBank)
}

// allocDefault places an array with line-size interleaving at the given
// start bank.
func (r *Runtime) allocDefault(spec AffineSpec, startBank int) (*ArrayInfo, error) {
	return r.finishPoolAlloc(spec, memsim.LineSize, spec.ElemSize, startBank)
}

// allocAligned implements inter-array affine affinity (Eq. 3).
func (r *Runtime) allocAligned(spec AffineSpec) (*ArrayInfo, error) {
	target, ok := r.arrays[spec.AlignTo]
	if !ok {
		return nil, fmt.Errorf("core: AlignTo %#x is not an allocated affine array", uint64(spec.AlignTo))
	}
	if target.Interleave == 0 {
		// The target itself fell back; no placement to align with.
		return r.fallback(spec)
	}
	if target.PageMapped {
		return r.allocAlignedPageMapped(spec, target)
	}

	// Eq. 3 with the target's effective (possibly padded) element
	// stride: intrlvB = (elemB/strideA) * (q/p) * intrlvA.
	num := int64(spec.ElemSize) * int64(spec.AlignQ) * int64(target.Interleave)
	den := int64(target.ElemStride) * int64(spec.AlignP)
	stride := int64(spec.ElemSize)
	var intrlv int64
	if num%den == 0 {
		intrlv = num / den
	}
	if intrlv < memsim.MinInterleave || (intrlv <= memsim.MaxInterleave && !r.space.ValidInterleave(int(intrlv))) {
		// Imperfect: try padding the element stride so a valid
		// interleaving aligns exactly. Solve for stride s with
		// (s/strideA)(q/p)·intrlvA = L over supported L.
		stride, intrlv = r.padForAlignment(spec, target)
		if stride == 0 {
			return r.fallback(spec)
		}
		r.Stats.PaddedArrays++
		r.Stats.PadBytes += uint64((stride - int64(spec.ElemSize)) * spec.NumElem)
	}
	if intrlv > memsim.MaxInterleave {
		// Beyond a page: place pages individually to mirror the target.
		return r.allocAlignedLarge(spec, target, stride, intrlv)
	}

	// B[0] aligns with A[AlignX].
	wantBank := r.bankOfTargetElem(target, spec.AlignX)
	info, err := r.finishPoolAllocStride(spec, int(intrlv), int(stride), wantBank)
	if err != nil {
		return nil, err
	}
	return info, nil
}

// bankOfTargetElem returns the bank of the target array's element x.
func (r *Runtime) bankOfTargetElem(target *ArrayInfo, x int64) int {
	if x < 0 {
		x = 0
	}
	if x >= target.NumElem {
		x = target.NumElem - 1
	}
	return r.space.MustBank(target.ElemAddr(x))
}

// padForAlignment searches supported interleavings for one reachable by
// padding the element stride, preferring the smallest padding. With the
// NPOT extension every line multiple is a candidate, which usually finds
// a zero- or near-zero-padding solution.
func (r *Runtime) padForAlignment(spec AffineSpec, target *ArrayInfo) (stride, intrlv int64) {
	p, q := int64(spec.AlignP), int64(spec.AlignQ)
	step := func(l int64) int64 {
		if r.space.ValidInterleave(int(l + memsim.LineSize)) {
			return l + memsim.LineSize
		}
		return l << 1
	}
	for l := int64(memsim.MinInterleave); l <= memsim.MaxInterleave; l = step(l) {
		// stride = L * strideA * p / (q * intrlvA)
		num := l * int64(target.ElemStride) * p
		den := q * int64(target.Interleave)
		if num%den != 0 {
			continue
		}
		s := num / den
		if s < int64(spec.ElemSize) {
			continue
		}
		if s > 4*int64(spec.ElemSize) && s > memsim.LineSize {
			// Padding beyond 4x (and beyond a line) wastes too much
			// space; prefer the fallback path.
			continue
		}
		return s, l
	}
	return 0, 0
}

// allocAlignedLarge handles Eq. 3 results beyond a page by mirroring the
// target's page-to-bank assignment at the scaled ratio.
func (r *Runtime) allocAlignedLarge(spec AffineSpec, target *ArrayInfo, stride, intrlv int64) (*ArrayInfo, error) {
	totalBytes := stride * spec.NumElem
	npages := (totalBytes + memsim.PageSize - 1) / memsim.PageSize
	banks := make([]int, npages)
	for pg := int64(0); pg < npages; pg++ {
		// Element at the start of page pg aligns to target element
		// (p/q)*i + x.
		i := pg * memsim.PageSize / stride
		tIdx := int64(spec.AlignP)*i/int64(spec.AlignQ) + spec.AlignX
		banks[pg] = r.bankOfTargetElem(target, tIdx)
	}
	base, err := r.space.AllocPageMapped(banks)
	if err != nil {
		return nil, err
	}
	info := &ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: int(stride),
		NumElem:    spec.NumElem,
		Interleave: int(intrlv),
		PageMapped: true,
		StartBank:  banks[0],
		pageBanks:  banks,
	}
	r.arrays[base] = info
	return info, nil
}

// allocAlignedPageMapped aligns a new array to a page-mapped (typically
// partitioned) target: each page of the new array adopts the bank of the
// corresponding region of the target.
func (r *Runtime) allocAlignedPageMapped(spec AffineSpec, target *ArrayInfo) (*ArrayInfo, error) {
	stride := int64(spec.ElemSize)
	totalBytes := stride * spec.NumElem
	if totalBytes >= memsim.PageSize {
		return r.allocAlignedLarge(spec, target, stride, roundUpPow2(totalBytes/int64(r.mesh.Banks())))
	}
	// Small aligned array (e.g. the per-partition tail pointers of the
	// spatially distributed queue): pad each element to a line and place
	// its page(s)... a sub-page array cannot span banks, so pad elements
	// to one line each and page-map line groups. We allocate one page
	// per group of lines that share a bank under the target's mapping.
	stride = memsim.LineSize
	if int64(spec.ElemSize) > stride {
		stride = roundUpPow2(int64(spec.ElemSize))
	}
	perPage := memsim.PageSize / stride
	npages := (spec.NumElem + perPage - 1) / perPage
	banks := make([]int, npages)
	for pg := int64(0); pg < npages; pg++ {
		i := pg * perPage
		tIdx := int64(spec.AlignP)*i/int64(spec.AlignQ) + spec.AlignX
		banks[pg] = r.bankOfTargetElem(target, tIdx)
	}
	base, err := r.space.AllocPageMapped(banks)
	if err != nil {
		return nil, err
	}
	r.Stats.PaddedArrays++
	r.Stats.PadBytes += uint64((stride - int64(spec.ElemSize)) * spec.NumElem)
	info := &ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: int(stride),
		NumElem:    spec.NumElem,
		Interleave: int(stride),
		PageMapped: true,
		StartBank:  banks[0],
		pageBanks:  banks,
	}
	r.arrays[base] = info
	return info, nil
}

// allocPartitioned spreads the array evenly across all banks (Fig 9).
func (r *Runtime) allocPartitioned(spec AffineSpec) (*ArrayInfo, error) {
	nb := int64(r.mesh.Banks())
	totalBytes := int64(spec.ElemSize) * spec.NumElem
	perBank := (totalBytes + nb - 1) / nb
	if perBank <= memsim.MaxInterleave {
		intrlv := roundUpPow2(perBank)
		if intrlv < memsim.MinInterleave {
			intrlv = memsim.MinInterleave
		}
		return r.finishPoolAlloc(spec, int(intrlv), spec.ElemSize, 0)
	}
	// Per-bank share exceeds a page: page-granularity placement, bank k
	// getting the k-th contiguous run of pages.
	pagesPerBank := (perBank + memsim.PageSize - 1) / memsim.PageSize
	banks := make([]int, 0, pagesPerBank*nb)
	npages := (totalBytes + memsim.PageSize - 1) / memsim.PageSize
	for pg := int64(0); pg < npages; pg++ {
		b := int(pg / pagesPerBank)
		if b >= int(nb) {
			b = int(nb) - 1
		}
		banks = append(banks, b)
	}
	base, err := r.space.AllocPageMapped(banks)
	if err != nil {
		return nil, err
	}
	info := &ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: spec.ElemSize,
		NumElem:    spec.NumElem,
		Interleave: int(pagesPerBank * memsim.PageSize),
		PageMapped: true,
		StartBank:  0,
		pageBanks:  banks,
	}
	r.arrays[base] = info
	return info, nil
}

// allocIntraAffine picks the supported interleaving minimizing the mean
// Manhattan distance between elements i and i+AlignX (Fig 8c), then
// allocates with it.
func (r *Runtime) allocIntraAffine(spec AffineSpec) (*ArrayInfo, error) {
	gap := spec.AlignX * int64(spec.ElemSize)
	nb := r.mesh.Banks()
	bestL, bestDist := int64(memsim.LineSize), float64(1<<30)
	for l := int64(memsim.MinInterleave); l <= memsim.MaxInterleave; l <<= 1 {
		const samples = 128
		sum := 0
		for s := 0; s < samples; s++ {
			off := int64(s) * gap / samples
			b0 := int(off/l) % nb
			b1 := int((off+gap)/l) % nb
			sum += r.hops(b0, b1)
		}
		d := float64(sum) / samples
		// Prefer larger interleavings on ties: fewer migrations.
		if d < bestDist || (d == bestDist && l > bestL) {
			bestDist, bestL = d, l
		}
	}
	return r.finishPoolAlloc(spec, int(bestL), spec.ElemSize, 0)
}

// fallback serves an affine request from the baseline allocator.
func (r *Runtime) fallback(spec AffineSpec) (*ArrayInfo, error) {
	r.Stats.Fallbacks++
	base, err := r.AllocBase(int64(spec.ElemSize) * spec.NumElem)
	if err != nil {
		return nil, err
	}
	info := &ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: spec.ElemSize,
		NumElem:    spec.NumElem,
		Interleave: 0,
		StartBank:  r.space.MustBank(base),
	}
	r.arrays[base] = info
	return info, nil
}

// finishPoolAlloc allocates from the pool with the given interleaving and
// start bank, with an unpadded stride.
func (r *Runtime) finishPoolAlloc(spec AffineSpec, intrlv, stride, wantBank int) (*ArrayInfo, error) {
	return r.finishPoolAllocStride(spec, intrlv, stride, wantBank)
}

func (r *Runtime) finishPoolAllocStride(spec AffineSpec, intrlv, stride, wantBank int) (*ArrayInfo, error) {
	bytes := int64(stride) * spec.NumElem
	base, err := r.poolRange(intrlv, bytes, wantBank)
	if err != nil {
		return nil, err
	}
	info := &ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: stride,
		NumElem:    spec.NumElem,
		Interleave: intrlv,
		StartBank:  wantBank,
	}
	r.arrays[base] = info
	return info, nil
}

// poolRange finds (or creates) a pool extent of `bytes` whose base is
// interleave-aligned and phase-mapped to wantBank. Freed affine extents
// are reused first-fit.
func (r *Runtime) poolRange(intrlv int, bytes int64, wantBank int) (memsim.Addr, error) {
	pool, err := r.space.Pool(intrlv)
	if err != nil {
		return 0, err
	}
	nb := memsim.Addr(r.mesh.Banks())
	il := memsim.Addr(intrlv)

	align := func(base memsim.Addr) memsim.Addr {
		// Round up to an interleave boundary (relative to the pool start
		// — NPOT interleavings do not divide the pool base) whose phase
		// is wantBank.
		rel := base - pool.Start
		rel = (rel + il - 1) / il * il
		phase := rel / il % nb
		want := memsim.Addr(wantBank)
		if phase != want {
			rel += ((want + nb - phase) % nb) * il
		}
		return pool.Start + rel
	}

	// Reuse a freed extent when one fits after phase alignment.
	ranges := r.freeRanges[intrlv]
	for i, fr := range ranges {
		base := align(fr.start)
		pad := int64(base - fr.start)
		if pad+bytes <= fr.size {
			// Consume from the front; return the tail (and any leading
			// pad) to the free list.
			rest := addrRange{start: base + memsim.Addr(bytes), size: fr.size - pad - bytes}
			ranges[i] = ranges[len(ranges)-1]
			ranges = ranges[:len(ranges)-1]
			if pad > 0 {
				ranges = append(ranges, addrRange{start: fr.start, size: pad})
			}
			if rest.size > 0 {
				ranges = append(ranges, rest)
			}
			r.freeRanges[intrlv] = ranges
			return base, nil
		}
	}

	// Expand the pool with enough slack to phase-align.
	slack := int64(nb) * int64(intrlv)
	extBase, err := r.space.ExpandPool(intrlv, memsim.Addr(bytes+slack))
	if err != nil {
		return 0, err
	}
	base := align(extBase)
	if pad := int64(base - extBase); pad > 0 {
		r.freeRanges[intrlv] = append(r.freeRanges[intrlv], addrRange{start: extBase, size: pad})
	}
	extEnd := extBase + memsim.Addr(roundUp(bytes+slack, memsim.PageSize))
	if rest := int64(extEnd - (base + memsim.Addr(bytes))); rest > 0 {
		r.freeRanges[intrlv] = append(r.freeRanges[intrlv], addrRange{start: base + memsim.Addr(bytes), size: rest})
	}
	return base, nil
}

package core

import (
	"testing"

	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

func npotRuntime(t *testing.T) *Runtime {
	t.Helper()
	cfg := memsim.DefaultConfig()
	cfg.AllowNPOT = true
	space := memsim.MustSpace(cfg)
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	return MustNew(space, mesh, DefaultPolicy(), 7)
}

// TestNPOTInterleaveEq1: a non-power-of-two pool still maps chunks to
// banks by Eq. 1 (division instead of shift).
func TestNPOTInterleaveEq1(t *testing.T) {
	r := npotRuntime(t)
	base, err := r.Space().ExpandPool(192, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 130; i++ {
		va := base + memsim.Addr(i*192)
		if got, want := r.BankOf(va), i%64; got != want {
			t.Fatalf("chunk %d on bank %d, want %d", i, got, want)
		}
	}
	// Intra-chunk addresses share the bank.
	if r.BankOf(base+191) != r.BankOf(base) {
		t.Error("192B chunk split across banks")
	}
}

// TestNPOTAlignmentAvoidsPadding: aligning a 12B-element array to a
// 4B-element array needs a 192B interleave; with the extension the
// runtime uses it exactly, with no padding.
func TestNPOTAlignmentAvoidsPadding(t *testing.T) {
	r := npotRuntime(t)
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AllocAffine(AffineSpec{ElemSize: 12, NumElem: 1 << 12, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	if b.Interleave != 192 {
		t.Fatalf("interleave %d, want 192", b.Interleave)
	}
	if b.ElemStride != 12 {
		t.Errorf("stride %d, want unpadded 12", b.ElemStride)
	}
	if r.Stats.PadBytes != 0 {
		t.Errorf("padded %d bytes despite NPOT support", r.Stats.PadBytes)
	}
	for _, i := range []int64{0, 15, 16, 100, 4095} {
		if r.BankOf(b.ElemAddr(i)) != r.BankOf(a.ElemAddr(i)) {
			t.Fatalf("B[%d] on bank %d, A[%d] on bank %d",
				i, r.BankOf(b.ElemAddr(i)), i, r.BankOf(a.ElemAddr(i)))
		}
	}
}

// TestNPOTDisabledFallsBackToPadding: without the extension the same
// request pads (the paper's behavior).
func TestNPOTDisabledFallsBackToPadding(t *testing.T) {
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	r := MustNew(space, mesh, DefaultPolicy(), 7)
	a, err := r.AllocAffine(AffineSpec{ElemSize: 4, NumElem: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AllocAffine(AffineSpec{ElemSize: 12, NumElem: 1 << 12, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	if b.Interleave == 0 {
		t.Skip("runtime chose baseline fallback")
	}
	if b.ElemStride <= 12 {
		t.Errorf("expected padded stride without NPOT, got %d", b.ElemStride)
	}
	// Alignment must still hold through the padding.
	for _, i := range []int64{0, 100, 4095} {
		if r.BankOf(b.ElemAddr(i)) != r.BankOf(a.ElemAddr(i)) {
			t.Fatalf("padded alignment broken at %d", i)
		}
	}
	if r.Stats.PadBytes == 0 {
		t.Error("padding not recorded")
	}
}

// TestNPOTIrregularChunks: irregular allocations can use NPOT chunk
// sizes, eliminating internal fragmentation for e.g. 24B nodes packed
// at 192B (8 nodes) granularity... the API still rounds per-object to a
// whole placement unit; what NPOT buys is more size choices.
func TestNPOTIrregularChunks(t *testing.T) {
	r := npotRuntime(t)
	addr, err := r.AllocAtBank(192, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Rounded to the next supported chunk: with NPOT that is 192 + pad to
	// pow2? AllocAtBank rounds pow2; direct pool use works regardless.
	_ = addr
	if got := r.BankOf(addr); got != 9 {
		t.Errorf("chunk on bank %d, want 9", got)
	}
}

package core

import (
	"fmt"

	"affinityalloc/internal/memsim"
)

// AllocNear allocates `size` bytes close to the given affinity addresses —
// the irregular-layout API of Fig 10 (`malloc_aff(size, n, aff_addrs)`).
// The size is rounded up to a supported interleaving so the object owns a
// whole placement unit; the bank is chosen by the configured policy
// (§5.2); and the chunk comes from that bank's free list, expanding the
// pool when the list runs dry. The runtime keeps no per-object metadata —
// an object's size is implied by the pool it lives in.
func (r *Runtime) AllocNear(size int64, affinity []memsim.Addr) (memsim.Addr, error) {
	top := r.obsEnter()
	addr, err := r.allocNear(size, affinity)
	if top {
		r.obs.ObserveNear(size, affinity, -1, addr, r.chunks[addr], err)
	}
	r.obsExit()
	return addr, err
}

func (r *Runtime) allocNear(size int64, affinity []memsim.Addr) (memsim.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("core: invalid irregular size %d", size)
	}
	if len(affinity) > MaxAffinityAddrs {
		// The API contract (§5.1): callers sample; the runtime refuses
		// rather than silently truncating.
		return 0, fmt.Errorf("core: %d affinity addresses exceeds the %d cap", len(affinity), MaxAffinityAddrs)
	}
	chunk := roundUpPow2(size)
	if chunk < memsim.MinInterleave {
		chunk = memsim.MinInterleave
	}
	if chunk > memsim.MaxInterleave {
		return 0, fmt.Errorf("core: irregular size %d exceeds max chunk %d", size, memsim.MaxInterleave)
	}
	bank := r.selectBank(affinity)
	addr, err := r.takeChunk(int(chunk), bank)
	if err != nil {
		return 0, err
	}
	r.Stats.IrregularAllocs++
	r.chunks[addr] = int(chunk)
	r.load[bank]++
	r.totalLoad++
	return addr, nil
}

// AllocAtBank allocates a chunk of `size` bytes at an explicitly chosen
// bank, bypassing the bank-selection policy. This is the oracle hook the
// Fig-6 idealized chunk-placement study uses; real applications go
// through AllocNear.
func (r *Runtime) AllocAtBank(size int64, bank int) (memsim.Addr, error) {
	top := r.obsEnter()
	addr, err := r.allocAtBank(size, bank)
	if top {
		r.obs.ObserveNear(size, nil, bank, addr, r.chunks[addr], err)
	}
	r.obsExit()
	return addr, err
}

func (r *Runtime) allocAtBank(size int64, bank int) (memsim.Addr, error) {
	if bank < 0 || bank >= r.mesh.Banks() {
		return 0, fmt.Errorf("core: bank %d out of range", bank)
	}
	chunk := roundUpPow2(size)
	if chunk < memsim.MinInterleave {
		chunk = memsim.MinInterleave
	}
	if chunk > memsim.MaxInterleave {
		return 0, fmt.Errorf("core: size %d exceeds max chunk %d", size, memsim.MaxInterleave)
	}
	addr, err := r.takeChunk(int(chunk), bank)
	if err != nil {
		return 0, err
	}
	r.Stats.IrregularAllocs++
	r.chunks[addr] = int(chunk)
	r.load[bank]++
	r.totalLoad++
	return addr, nil
}

// selectBank applies the configured bank-selection policy. When fault
// injection has disabled banks, every policy restricts itself to the
// survivors — the degraded bank map the space reports — so placement
// re-evaluates against the machine that actually exists. On a clean
// machine the RNG draw sequence is exactly the historical one (no extra
// draws), keeping un-faulted runs byte-identical.
func (r *Runtime) selectBank(affinity []memsim.Addr) int {
	nb := r.mesh.Banks()
	alive := r.space.AliveBanks() // nil when every bank is alive
	switch r.pcfg.Policy {
	case Rnd:
		if alive == nil {
			return r.rng.Intn(nb)
		}
		return alive[r.rng.Intn(len(alive))]
	case Lnr:
		b := r.lnrNext
		for alive != nil && !r.space.BankAlive(b) {
			b = (b + 1) % nb
		}
		r.lnrNext = (b + 1) % nb
		return b
	}

	// With no affinity information, MinHop has no preference: fall back
	// to a random bank rather than a degenerate constant choice (Hybrid
	// still uses its load term, which spreads allocations on its own).
	if len(affinity) == 0 && r.pcfg.Policy == MinHop {
		if alive == nil {
			return r.rng.Intn(nb)
		}
		return alive[r.rng.Intn(len(alive))]
	}

	// MinHop and Hybrid score every bank with Eq. 4. Collapse affinity
	// addresses to distinct banks with multiplicities first.
	var affBanks, affCounts []int
	for _, a := range affinity {
		b := r.space.MustBank(a)
		found := false
		for i, e := range affBanks {
			if e == b {
				affCounts[i]++
				found = true
				break
			}
		}
		if !found {
			affBanks = append(affBanks, b)
			affCounts = append(affCounts, 1)
		}
	}
	h := 0.0
	if r.pcfg.Policy == Hybrid {
		h = r.pcfg.H
	}
	best, bestScore, first := 0, 0.0, true
	for b := 0; b < nb; b++ {
		if alive != nil && !r.space.BankAlive(b) {
			continue
		}
		s := r.scoreBank(b, affBanks, affCounts, len(affinity), h)
		if first || s < bestScore {
			best, bestScore, first = b, s, false
		}
	}
	return best
}

// chunkLists returns (creating if needed) the per-bank free lists for an
// interleaving.
func (r *Runtime) chunkLists(chunk int) [][]memsim.Addr {
	lists := r.freeChunks[chunk]
	if lists == nil {
		lists = make([][]memsim.Addr, r.mesh.Banks())
		r.freeChunks[chunk] = lists
	}
	return lists
}

// takeChunk pops a free chunk of the given interleaving homed at bank,
// refilling from the OS when empty.
func (r *Runtime) takeChunk(chunk, bank int) (memsim.Addr, error) {
	lists := r.chunkLists(chunk)
	if len(lists[bank]) == 0 {
		if err := r.refillChunks(chunk); err != nil {
			return 0, err
		}
		lists = r.chunkLists(chunk)
		if len(lists[bank]) == 0 {
			return 0, fmt.Errorf("core: refill produced no chunks for bank %d", bank)
		}
	}
	lst := lists[bank]
	addr := lst[len(lst)-1]
	lists[bank] = lst[:len(lst)-1]
	return addr, nil
}

// refillSlabsPerBank controls how many chunks per bank each pool
// expansion yields; larger slabs amortize syscalls.
const refillSlabsPerBank = 8

// refillChunks expands the pool by a slab and distributes its chunks to
// per-bank free lists by phase. First, any freed affine extents in the
// same pool are carved into chunks — the fragmentation-mitigation path of
// §8 (freed space is reusable by allocations with the same interleaving).
func (r *Runtime) refillChunks(chunk int) error {
	pool, err := r.space.Pool(chunk)
	if err != nil {
		return err
	}
	nb := r.mesh.Banks()
	lists := r.chunkLists(chunk)
	pushRange := func(start memsim.Addr, size int64) {
		base := (start + memsim.Addr(chunk) - 1) / memsim.Addr(chunk) * memsim.Addr(chunk)
		for int64(base-start)+int64(chunk) <= size {
			bank := int((base - pool.Start) / memsim.Addr(chunk) % memsim.Addr(nb))
			lists[bank] = append(lists[bank], base)
			base += memsim.Addr(chunk)
		}
	}

	// Reclaim freed affine extents first.
	if ranges := r.freeRanges[chunk]; len(ranges) > 0 {
		for _, fr := range ranges {
			pushRange(fr.start, fr.size)
		}
		delete(r.freeRanges, chunk)
		// Only count as a refill if something materialized.
		total := 0
		for b := 0; b < nb; b++ {
			total += len(lists[b])
		}
		if total > 0 {
			r.Stats.PoolRefills++
			return nil
		}
	}

	slab := int64(nb) * int64(chunk) * refillSlabsPerBank
	base, err := r.space.ExpandPool(chunk, memsim.Addr(slab))
	if err != nil {
		return err
	}
	// ExpandPool page-rounds; use the full extent granted.
	granted := roundUp(slab, memsim.PageSize)
	pushRange(base, granted)
	r.Stats.PoolRefills++
	return nil
}

// Free releases memory allocated by AllocAffine, AllocAffineAtBank or
// AllocNear — the single free_aff(void*) entry point of §5.1. Affine
// arrays are distinguished from irregular chunks by the runtime's array
// metadata; irregular chunks carry no metadata and their size is inferred
// from the pool they live in.
func (r *Runtime) Free(addr memsim.Addr) error {
	top := r.obsEnter()
	err := r.free(addr)
	if top {
		r.obs.ObserveFree(addr, err)
	}
	r.obsExit()
	return err
}

func (r *Runtime) free(addr memsim.Addr) error {
	if info, ok := r.arrays[addr]; ok {
		delete(r.arrays, addr)
		r.Stats.Frees++
		switch {
		case info.Interleave == 0:
			// Baseline allocation: back on the size-class list.
			size := roundUp(info.Bytes(), memsim.LineSize)
			r.baseFree[size] = append(r.baseFree[size], addr)
		case info.PageMapped:
			// Page-mapped extents are not currently recycled (the
			// paper's static workloads never free them); dropping the
			// metadata is sufficient for correctness.
		default:
			r.freeRanges[info.Interleave] = append(r.freeRanges[info.Interleave], addrRange{start: addr, size: info.Bytes()})
		}
		return nil
	}
	if chunk, ok := r.chunks[addr]; ok {
		delete(r.chunks, addr)
		r.Stats.Frees++
		bank := r.space.MustBank(addr)
		lists := r.chunkLists(chunk)
		lists[bank] = append(lists[bank], addr)
		r.load[bank]--
		r.totalLoad--
		return nil
	}
	return fmt.Errorf("core: Free(%#x): not an affinity allocation", uint64(addr))
}

package core

import "affinityalloc/internal/memsim"

// Observer receives one callback per *outermost* public allocator call —
// the attachment point of the trace recorder (internal/trace). Internal
// reentry (an affine fallback served by AllocBase, a refill) is not
// observed, so a replay that re-drives exactly the observed calls puts
// the runtime — including its RNG draw sequence — through the identical
// state trajectory. Calls are observed after they complete, with their
// outcome, so observation can never perturb placement.
type Observer interface {
	// ObserveOpenPool reports an explicit pool open (Runtime.OpenPool).
	ObserveOpenPool(interleave int)
	// ObserveAffine reports an AllocAffine/AllocAffineAtBank call.
	// forcedBank is the AtBank argument, or -1 for policy placement.
	// info is nil when err != nil.
	ObserveAffine(spec AffineSpec, forcedBank int, info *ArrayInfo, err error)
	// ObserveNear reports an AllocNear/AllocAtBank call. forcedBank is
	// the AtBank argument, or -1 for policy placement. chunk is the
	// placement-unit size actually used (0 on error).
	ObserveNear(size int64, affinity []memsim.Addr, forcedBank int, addr memsim.Addr, chunk int, err error)
	// ObserveBase reports a baseline (affinity-oblivious) allocation.
	ObserveBase(size int64, addr memsim.Addr, err error)
	// ObserveFree reports a Free call.
	ObserveFree(addr memsim.Addr, err error)
}

// SetObserver installs (or, with nil, removes) the allocation observer.
// The runtime is single-goroutine by contract, and so is observation.
func (r *Runtime) SetObserver(o Observer) { r.obs = o }

// obsEnter/obsExit bracket public entry points; obsEnter reports whether
// this is the outermost observed call (internal reentry stays silent).
func (r *Runtime) obsEnter() bool {
	r.obsDepth++
	return r.obs != nil && r.obsDepth == 1
}

func (r *Runtime) obsExit() { r.obsDepth-- }

package cache

import (
	"fmt"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/telemetry"
)

// MemSysConfig parameterizes the shared L3 + DRAM system (Table 2).
type MemSysConfig struct {
	BankSizeBytes int         // 1 MB per bank
	BankWays      int         // 16
	L3HitLatency  engine.Time // 20 cycles
	BankOccupancy engine.Time // per-access bank busy time (pipelined)
	DRAMLatency   engine.Time // access latency at 2GHz (~50ns)
	DRAMServe     engine.Time // per-line channel serialization (bandwidth)
	// Faults, when set, throttles DRAM channels: latency multipliers
	// stretch accesses, duty-cycle blackouts delay service start.
	Faults *faults.Injector
}

// DefaultMemSysConfig mirrors Table 2: 64MB total L3 across 64 banks,
// DDR4-3200 with 25.6 GB/s across 4 channels at a 2GHz core clock.
func DefaultMemSysConfig() MemSysConfig {
	return MemSysConfig{
		BankSizeBytes: 1 << 20,
		BankWays:      16,
		L3HitLatency:  20,
		BankOccupancy: 1,
		DRAMLatency:   100,
		DRAMServe:     20, // 64B at ~3.2 B/cycle per channel
	}
}

// MemSystem composes the banked L3 with the DRAM channels behind it and
// routes miss traffic over the NoC. All timing flows through it so bank
// queueing and DRAM bandwidth are shared by every requester.
type MemSystem struct {
	cfg   MemSysConfig
	space *memsim.Space
	net   *noc.Network
	banks []*SetAssoc
	// bankSrv schedules each bank's pipelined access port.
	bankSrv []*engine.Server
	// ctrls and dramSrv model the memory controllers at the corners.
	ctrls   []int
	dramSrv []*engine.Server
	// nearestCtrl caches the closest controller per bank.
	nearestCtrl []int

	// bankBusy accumulates each bank port's occupied cycles — the
	// per-bank load-balance series behind the paper's hot-bank analysis.
	bankBusy []uint64
	// Per-channel DRAM accounting: demand reads, writebacks, and the
	// cycles requests spent queued behind the channel (arrival to
	// service start) — the channel queue-depth signal.
	chanReads, chanWrites, chanQueueCycles []uint64

	DRAMReads  uint64
	DRAMWrites uint64

	// clock, when attached, turns bank-occupancy and DRAM-completion
	// accounting into retirement events scheduled at the completion cycle
	// (see AttachClock). The handlers are bound once so scheduling
	// allocates nothing.
	clock      *engine.Sim
	bankBusyFn func(uint64)
	dramRdFn   func(uint64)
	dramWrFn   func(uint64)
}

// NewMemSystem wires banks, controllers and DRAM channels over the mesh.
func NewMemSystem(space *memsim.Space, net *noc.Network, cfg MemSysConfig) (*MemSystem, error) {
	nbanks := space.Banks()
	if nbanks != net.Mesh().Banks() {
		return nil, fmt.Errorf("cache: space has %d banks but mesh has %d", nbanks, net.Mesh().Banks())
	}
	m := &MemSystem{
		cfg:         cfg,
		space:       space,
		net:         net,
		banks:       make([]*SetAssoc, nbanks),
		bankSrv:     make([]*engine.Server, nbanks),
		ctrls:       net.Mesh().MemControllers(),
		nearestCtrl: make([]int, nbanks),
		bankBusy:    make([]uint64, nbanks),
	}
	m.dramSrv = make([]*engine.Server, len(m.ctrls))
	m.chanReads = make([]uint64, len(m.ctrls))
	m.chanWrites = make([]uint64, len(m.ctrls))
	m.chanQueueCycles = make([]uint64, len(m.ctrls))
	for i := range m.dramSrv {
		m.dramSrv[i] = engine.NewServer(1, 16, 4096)
	}
	for i := range m.banks {
		m.bankSrv[i] = engine.NewServer(1, 8, 4096)
		bank, err := NewSetAssoc(cfg.BankSizeBytes, cfg.BankWays, BRRIP)
		if err != nil {
			return nil, err
		}
		m.banks[i] = bank
		ctrl, _ := net.Mesh().NearestMemController(i)
		for ci, c := range m.ctrls {
			if c == ctrl {
				m.nearestCtrl[i] = ci
			}
		}
	}
	return m, nil
}

// Retirement events pack (index, amount) into the ScheduleArg argument:
// bank-occupancy events use a 24-bit amount (per-access occupancy is a
// few cycles), DRAM events a 48-bit one (channel queueing waits can grow
// long under blackout faults). Indexes are bank/channel numbers.
const (
	bankBusyBits = 24
	dramWaitBits = 48
)

// AttachClock defers bank-occupancy and DRAM channel accounting through
// the event kernel: each L3 access schedules its bank-busy charge at the
// access start cycle, and each DRAM read/writeback schedules its channel
// counters (access count + queue-cycles) at the channel service start.
// The updates are commutative adds, so readers that drain first (all
// accessors here do) observe exactly the inline totals; passing nil
// restores inline accounting.
func (m *MemSystem) AttachClock(clock *engine.Sim) {
	m.clock = clock
	if clock == nil {
		m.bankBusyFn, m.dramRdFn, m.dramWrFn = nil, nil, nil
		return
	}
	m.bankBusyFn = func(arg uint64) {
		m.bankBusy[arg>>bankBusyBits] += arg & (1<<bankBusyBits - 1)
	}
	m.dramRdFn = func(arg uint64) {
		ci := arg >> dramWaitBits
		m.DRAMReads++
		m.chanReads[ci]++
		m.chanQueueCycles[ci] += arg & (1<<dramWaitBits - 1)
	}
	m.dramWrFn = func(arg uint64) {
		ci := arg >> dramWaitBits
		m.DRAMWrites++
		m.chanWrites[ci]++
		m.chanQueueCycles[ci] += arg & (1<<dramWaitBits - 1)
	}
}

// retire schedules one deferred accounting event, draining first when the
// queue has grown to its retirement batch bound.
func (m *MemSystem) retire(at engine.Time, fn func(uint64), arg uint64) {
	if m.clock.Pending() >= engine.DrainPending {
		m.clock.Run()
	}
	m.clock.ScheduleArg(at, fn, arg)
}

// drain retires pending accounting events before a counter read.
func (m *MemSystem) drain() {
	if m.clock != nil {
		m.clock.Run()
	}
}

// Space returns the simulated address space.
func (m *MemSystem) Space() *memsim.Space { return m.space }

// Net returns the interconnect.
func (m *MemSystem) Net() *noc.Network { return m.net }

// Banks returns the number of L3 banks.
func (m *MemSystem) Banks() int { return len(m.banks) }

// Bank exposes one bank's tag array (for stats).
func (m *MemSystem) Bank(i int) *SetAssoc { return m.banks[i] }

// BankOf returns the home L3 bank of the line containing va.
func (m *MemSystem) BankOf(va memsim.Addr) int {
	return m.space.MustBank(memsim.LineAddr(va))
}

// Access performs an L3 access to the line containing va at its home
// bank, starting no earlier than cycle now. It models bank queueing and,
// on a miss, the round trip to the nearest DRAM channel (with its traffic
// charged to the NoC). It returns the completion cycle and whether the
// access hit in the bank.
func (m *MemSystem) Access(now engine.Time, va memsim.Addr, write bool) (done engine.Time, hit bool) {
	bank := m.BankOf(va)
	return m.AccessAt(now, bank, va, write)
}

// AccessAt is Access for callers that already resolved the home bank.
func (m *MemSystem) AccessAt(now engine.Time, bank int, va memsim.Addr, write bool) (done engine.Time, hit bool) {
	line := uint64(memsim.Line(va))
	start := m.bankSrv[bank].Reserve(now, int(m.cfg.BankOccupancy))
	if m.clock != nil {
		m.retire(start, m.bankBusyFn, uint64(bank)<<bankBusyBits|uint64(m.cfg.BankOccupancy))
	} else {
		m.bankBusy[bank] += uint64(m.cfg.BankOccupancy)
	}

	hit, victim, dirtyVictim := m.banks[bank].Access(line, write)
	done = start + m.cfg.L3HitLatency
	if hit {
		return done, true
	}

	// Miss: request line from the nearest DRAM channel. A channel throttle
	// (fault injection) can push the service start past a blackout window
	// and stretch the access latency; the wait shows up as channel queue
	// cycles like any other backpressure.
	ci := m.nearestCtrl[bank]
	ctrl := m.ctrls[ci]
	reqArrive := m.net.Send(done, bank, ctrl, noc.Control, 8)
	ready, latency := reqArrive, m.cfg.DRAMLatency
	if m.cfg.Faults != nil {
		ready, latency = m.cfg.Faults.DRAMAdjust(ci, reqArrive, latency)
	}
	dramStart := m.dramSrv[ci].Reserve(ready, int(m.cfg.DRAMServe))
	if m.clock != nil {
		m.retire(dramStart, m.dramRdFn, uint64(ci)<<dramWaitBits|uint64(dramStart-reqArrive))
	} else {
		m.DRAMReads++
		m.chanReads[ci]++
		m.chanQueueCycles[ci] += uint64(dramStart - reqArrive)
	}
	dataReady := dramStart + latency
	respArrive := m.net.Send(dataReady, ctrl, bank, noc.Data, memsim.LineSize)

	if dirtyVictim {
		// Write the victim back lazily; it occupies the channel but does
		// not delay the demand fill's critical path.
		wbArrive := m.net.Send(done, bank, ctrl, noc.Data, memsim.LineSize)
		wbReady := wbArrive
		if m.cfg.Faults != nil {
			wbReady, _ = m.cfg.Faults.DRAMAdjust(ci, wbArrive, 0)
		}
		wbStart := m.dramSrv[ci].Reserve(wbReady, int(m.cfg.DRAMServe))
		if m.clock != nil {
			m.retire(wbStart, m.dramWrFn, uint64(ci)<<dramWaitBits|uint64(wbStart-wbArrive))
		} else {
			m.DRAMWrites++
			m.chanWrites[ci]++
			m.chanQueueCycles[ci] += uint64(wbStart - wbArrive)
		}
		_ = victim
	}
	return respArrive, false
}

// Preload installs every line of [va, va+bytes) into its home bank
// without charging time, traffic, or statistics — modeling data resident
// in the LLC after initialization, which is the paper's measurement
// regime (Fig 15 studies what happens when it no longer fits).
func (m *MemSystem) Preload(va memsim.Addr, bytes int64) {
	end := va + memsim.Addr(bytes)
	for line := memsim.LineAddr(va); line < end; line += memsim.LineSize {
		bank := m.BankOf(line)
		m.banks[bank].Install(uint64(memsim.Line(line)))
	}
}

// TotalL3Stats sums access/hit/miss counters across banks.
func (m *MemSystem) TotalL3Stats() (accesses, hits, misses uint64) {
	for _, b := range m.banks {
		accesses += b.Accesses
		hits += b.Hits
		misses += b.Misses
	}
	return accesses, hits, misses
}

// L3MissRate returns the aggregate L3 miss rate.
func (m *MemSystem) L3MissRate() float64 {
	a, _, miss := m.TotalL3Stats()
	if a == 0 {
		return 0
	}
	return float64(miss) / float64(a)
}

// BankBusyCycles returns a copy of each bank port's accumulated busy
// cycles.
func (m *MemSystem) BankBusyCycles() []uint64 {
	m.drain()
	out := make([]uint64, len(m.bankBusy))
	copy(out, m.bankBusy)
	return out
}

// Channels returns the number of DRAM channels (memory controllers).
func (m *MemSystem) Channels() int { return len(m.ctrls) }

// PublishTelemetry publishes the per-bank L3 access/hit/miss/occupancy
// series and the per-channel DRAM read/write/queue series into the
// registry — the access-balance view behind Figs 5, 6 and 12.
func (m *MemSystem) PublishTelemetry(r *telemetry.Registry) {
	m.drain()
	n := len(m.banks)
	acc := make([]uint64, n)
	hits := make([]uint64, n)
	miss := make([]uint64, n)
	for i, b := range m.banks {
		acc[i], hits[i], miss[i] = b.Accesses, b.Hits, b.Misses
	}
	r.SetSeries("l3_bank_accesses", acc)
	r.SetSeries("l3_bank_hits", hits)
	r.SetSeries("l3_bank_misses", miss)
	r.SetSeries("l3_bank_busy_cycles", m.bankBusy)
	r.SetSeries("dram_chan_reads", m.chanReads)
	r.SetSeries("dram_chan_writes", m.chanWrites)
	r.SetSeries("dram_chan_queue_cycles", m.chanQueueCycles)
}

// ResetStats clears bank and DRAM counters but keeps cache contents.
func (m *MemSystem) ResetStats() {
	m.drain() // retire in-flight accounting so it cannot leak past the reset
	for _, b := range m.banks {
		b.ResetStats()
	}
	for i := range m.bankBusy {
		m.bankBusy[i] = 0
	}
	for i := range m.chanReads {
		m.chanReads[i], m.chanWrites[i], m.chanQueueCycles[i] = 0, 0, 0
	}
	m.DRAMReads, m.DRAMWrites = 0, 0
}

// MaxBankFree reports the latest bank schedule horizon — a debugging aid
// for locating the binding resource.
func (m *MemSystem) MaxBankFree() engine.Time {
	var t engine.Time
	for _, s := range m.bankSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

// MaxDRAMFree reports the latest DRAM schedule horizon.
func (m *MemSystem) MaxDRAMFree() engine.Time {
	var t engine.Time
	for _, s := range m.dramSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

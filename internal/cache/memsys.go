package cache

import (
	"fmt"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/telemetry"
)

// MemSysConfig parameterizes the shared L3 + DRAM system (Table 2).
type MemSysConfig struct {
	BankSizeBytes int         // 1 MB per bank
	BankWays      int         // 16
	L3HitLatency  engine.Time // 20 cycles
	BankOccupancy engine.Time // per-access bank busy time (pipelined)
	DRAMLatency   engine.Time // access latency at 2GHz (~50ns)
	DRAMServe     engine.Time // per-line channel serialization (bandwidth)
	// Faults, when set, throttles DRAM channels: latency multipliers
	// stretch accesses, duty-cycle blackouts delay service start.
	Faults *faults.Injector
}

// DefaultMemSysConfig mirrors Table 2: 64MB total L3 across 64 banks,
// DDR4-3200 with 25.6 GB/s across 4 channels at a 2GHz core clock.
func DefaultMemSysConfig() MemSysConfig {
	return MemSysConfig{
		BankSizeBytes: 1 << 20,
		BankWays:      16,
		L3HitLatency:  20,
		BankOccupancy: 1,
		DRAMLatency:   100,
		DRAMServe:     20, // 64B at ~3.2 B/cycle per channel
	}
}

// MemSystem composes the banked L3 with the DRAM channels behind it and
// routes miss traffic over the NoC. All timing flows through it so bank
// queueing and DRAM bandwidth are shared by every requester.
type MemSystem struct {
	cfg   MemSysConfig
	space *memsim.Space
	net   *noc.Network
	banks []*SetAssoc
	// bankSrv schedules each bank's pipelined access port.
	bankSrv []*engine.Server
	// ctrls and dramSrv model the memory controllers at the corners.
	ctrls   []int
	dramSrv []*engine.Server
	// nearestCtrl caches the closest controller per bank.
	nearestCtrl []int

	// bankBusy accumulates each bank port's occupied cycles — the
	// per-bank load-balance series behind the paper's hot-bank analysis.
	bankBusy []uint64
	// Per-channel DRAM accounting: demand reads, writebacks, and the
	// cycles requests spent queued behind the channel (arrival to
	// service start) — the channel queue-depth signal.
	chanReads, chanWrites, chanQueueCycles []uint64

	DRAMReads  uint64
	DRAMWrites uint64

	// obs, when set, observes every timed access and preload (the trace
	// recorder's access-summary feed). Observation happens before timing
	// and cache state are touched and reads nothing back, so a recording
	// run stays byte-identical to a direct run.
	obs AccessObserver

	// kills holds the pending mid-run bank kills sorted by cycle; the
	// first access whose cycle reaches the head entry applies it. onKill
	// notifies the system (injector bookkeeping, stream-engine redirect
	// rebuild) after the space has marked the bank dead.
	kills  []faults.BankKill
	onKill func(at engine.Time, bank int)

	// onAccess, when set, feeds every timed access to the online
	// reconciler. It is a dedicated hook — not an AccessObserver — so it
	// composes with trace recording, and it runs after the kill check so
	// an epoch closing at cycle T observes any bank killed at T.
	onAccess func(now engine.Time, va memsim.Addr)

	// clocks, when attached, turn bank-occupancy and DRAM-completion
	// accounting into retirement events scheduled at the completion cycle
	// (see AttachClock). The handlers are bound once so scheduling
	// allocates nothing. bankSim/chanSim route each retirement to the
	// kernel shard owning the bank or channel, so the coordinator's
	// parallel drain updates every per-entity counter from exactly one
	// goroutine; the shared DRAMReads/DRAMWrites scalars accumulate into
	// per-shard delta slots folded in on drain.
	clocks                   *engine.Coordinator
	bankSim                  []*engine.Sim
	chanSim                  []*engine.Sim
	chanShard                []int
	dramRdDelta, dramWrDelta []uint64
	bankBusyFn               func(uint64)
	dramRdFn                 func(uint64)
	dramWrFn                 func(uint64)
}

// NewMemSystem wires banks, controllers and DRAM channels over the mesh.
func NewMemSystem(space *memsim.Space, net *noc.Network, cfg MemSysConfig) (*MemSystem, error) {
	nbanks := space.Banks()
	if nbanks != net.Mesh().Banks() {
		return nil, fmt.Errorf("cache: space has %d banks but mesh has %d", nbanks, net.Mesh().Banks())
	}
	m := &MemSystem{
		cfg:         cfg,
		space:       space,
		net:         net,
		banks:       make([]*SetAssoc, nbanks),
		bankSrv:     make([]*engine.Server, nbanks),
		ctrls:       net.Mesh().MemControllers(),
		nearestCtrl: make([]int, nbanks),
		bankBusy:    make([]uint64, nbanks),
	}
	m.dramSrv = make([]*engine.Server, len(m.ctrls))
	m.chanReads = make([]uint64, len(m.ctrls))
	m.chanWrites = make([]uint64, len(m.ctrls))
	m.chanQueueCycles = make([]uint64, len(m.ctrls))
	for i := range m.dramSrv {
		m.dramSrv[i] = engine.NewServer(1, 16, 4096)
	}
	for i := range m.banks {
		m.bankSrv[i] = engine.NewServer(1, 8, 4096)
		bank, err := NewSetAssoc(cfg.BankSizeBytes, cfg.BankWays, BRRIP)
		if err != nil {
			return nil, err
		}
		m.banks[i] = bank
		ctrl, _ := net.Mesh().NearestMemController(i)
		for ci, c := range m.ctrls {
			if c == ctrl {
				m.nearestCtrl[i] = ci
			}
		}
	}
	return m, nil
}

// Retirement events pack (index, amount) into the ScheduleArg argument:
// bank-occupancy events use a 24-bit amount (per-access occupancy is a
// few cycles), DRAM events a 48-bit one (channel queueing waits can grow
// long under blackout faults). Indexes are bank/channel numbers.
const (
	bankBusyBits = 24
	dramWaitBits = 48
)

// AttachClock defers bank-occupancy and DRAM channel accounting through
// the event kernel: each L3 access schedules its bank-busy charge at the
// access start cycle, and each DRAM read/writeback schedules its channel
// counters (access count + queue-cycles) at the channel service start.
// The updates are commutative adds, so readers that drain first (all
// accessors here do) observe exactly the inline totals.
//
// bankShard assigns each bank to a kernel shard; a bank's retirements run
// on its owning shard and a channel's on the shard of its controller
// bank, so parallel shard drains touch disjoint per-entity counters. The
// machine-wide DRAMReads/DRAMWrites scalars are accumulated in per-shard
// delta slots and folded in on drain. A nil bankShard puts everything on
// shard 0; a nil coordinator restores inline accounting.
func (m *MemSystem) AttachClock(clocks *engine.Coordinator, bankShard []int) {
	m.clocks = clocks
	if clocks == nil {
		m.bankSim, m.chanSim, m.chanShard = nil, nil, nil
		m.dramRdDelta, m.dramWrDelta = nil, nil
		m.bankBusyFn, m.dramRdFn, m.dramWrFn = nil, nil, nil
		return
	}
	shardOf := func(bank int) int {
		if bankShard == nil {
			return 0
		}
		return bankShard[bank]
	}
	m.bankSim = make([]*engine.Sim, len(m.banks))
	for b := range m.bankSim {
		m.bankSim[b] = clocks.Shard(shardOf(b))
	}
	m.chanSim = make([]*engine.Sim, len(m.ctrls))
	m.chanShard = make([]int, len(m.ctrls))
	for ci, ctrl := range m.ctrls {
		m.chanShard[ci] = shardOf(ctrl)
		m.chanSim[ci] = clocks.Shard(m.chanShard[ci])
	}
	m.dramRdDelta = make([]uint64, clocks.NumShards())
	m.dramWrDelta = make([]uint64, clocks.NumShards())
	m.bankBusyFn = func(arg uint64) {
		m.bankBusy[arg>>bankBusyBits] += arg & (1<<bankBusyBits - 1)
	}
	m.dramRdFn = func(arg uint64) {
		ci := arg >> dramWaitBits
		m.dramRdDelta[m.chanShard[ci]]++
		m.chanReads[ci]++
		m.chanQueueCycles[ci] += arg & (1<<dramWaitBits - 1)
	}
	m.dramWrFn = func(arg uint64) {
		ci := arg >> dramWaitBits
		m.dramWrDelta[m.chanShard[ci]]++
		m.chanWrites[ci]++
		m.chanQueueCycles[ci] += arg & (1<<dramWaitBits - 1)
	}
}

// retire schedules one deferred accounting event on the owning shard,
// draining that shard first when its queue has grown to the retirement
// batch bound or when the event falls beyond the shard's ring window
// (retirement cycles track analytic time, which races ahead of the
// parked shard clock; flushing and re-anchoring the empty window at the
// new cycle keeps every insert on the O(1) ring path instead of the
// spill heap). Both are safe because retirement adds commute. The drain
// uses DrainAccounting, never Run: a mid-run flush must leave the shard
// clock exactly where it was (the clock fast-forward Run would cause was
// harmless only while nothing read Now() between drains — with
// per-shard clocks it would wreck the conservative horizon).
func (m *MemSystem) retire(sim *engine.Sim, at engine.Time, fn func(uint64), arg uint64) {
	if sim.Pending() >= engine.DrainPending || (sim.Pending() > 0 && !sim.InRing(at)) {
		sim.DrainAccounting()
	}
	if sim.Pending() == 0 {
		sim.Advance(at)
	}
	sim.ScheduleArg(at, fn, arg)
}

// drain retires pending accounting events before a counter read, leaving
// every shard clock where it was, and folds the per-shard DRAM scalar
// deltas into the machine-wide totals.
func (m *MemSystem) drain() {
	if m.clocks == nil {
		return
	}
	m.clocks.DrainAccounting()
	for sh := range m.dramRdDelta {
		m.DRAMReads += m.dramRdDelta[sh]
		m.DRAMWrites += m.dramWrDelta[sh]
		m.dramRdDelta[sh], m.dramWrDelta[sh] = 0, 0
	}
}

// Space returns the simulated address space.
func (m *MemSystem) Space() *memsim.Space { return m.space }

// Net returns the interconnect.
func (m *MemSystem) Net() *noc.Network { return m.net }

// Banks returns the number of L3 banks.
func (m *MemSystem) Banks() int { return len(m.banks) }

// Bank exposes one bank's tag array (for stats).
func (m *MemSystem) Bank(i int) *SetAssoc { return m.banks[i] }

// BankOf returns the home L3 bank of the line containing va.
func (m *MemSystem) BankOf(va memsim.Addr) int {
	return m.space.MustBank(memsim.LineAddr(va))
}

// Access performs an L3 access to the line containing va at its home
// bank, starting no earlier than cycle now. It models bank queueing and,
// on a miss, the round trip to the nearest DRAM channel (with its traffic
// charged to the NoC). It returns the completion cycle and whether the
// access hit in the bank.
func (m *MemSystem) Access(now engine.Time, va memsim.Addr, write bool) (done engine.Time, hit bool) {
	bank := m.BankOf(va)
	return m.AccessAt(now, bank, va, write)
}

// AccessObserver receives every timed L3 access and every preload —
// the hook internal/trace records access summaries through. Observers
// must not issue accesses themselves.
type AccessObserver interface {
	ObserveAccess(va memsim.Addr, write bool)
	ObservePreload(va memsim.Addr, bytes int64)
}

// SetObserver installs (or, with nil, removes) the access observer.
func (m *MemSystem) SetObserver(o AccessObserver) { m.obs = o }

// SetAccessHook installs the reconciler's per-access feed (nil removes
// it). The hook must not issue accesses itself; MigrateLines is the one
// re-entry it is allowed.
func (m *MemSystem) SetAccessHook(h func(now engine.Time, va memsim.Addr)) { m.onAccess = h }

// SetBankKills arms the mid-run bank kills (sorted by cycle; the
// injector's BankKills order). onKill runs after each kill has been
// applied to the address space.
func (m *MemSystem) SetBankKills(kills []faults.BankKill, onKill func(at engine.Time, bank int)) {
	m.kills = append([]faults.BankKill(nil), kills...)
	m.onKill = onKill
}

// applyKills fires every armed kill whose cycle has been reached. The
// access that carried the clock past the kill cycle still lands on the
// bank it resolved before the kill — one in-flight access, deterministic
// in every configuration — and every later lookup sees the dead bank.
func (m *MemSystem) applyKills(now engine.Time) {
	for len(m.kills) > 0 && now >= engine.Time(m.kills[0].At) {
		k := m.kills[0]
		m.kills = m.kills[1:]
		if err := m.space.KillBank(k.Bank); err != nil {
			panic(fmt.Sprintf("cache: armed kill-bank %d invalid despite injector validation (programmer error): %v", k.Bank, err))
		}
		if m.onKill != nil {
			m.onKill(engine.Time(k.At), k.Bank)
		}
	}
	if len(m.kills) == 0 {
		m.kills = nil
	}
}

// AccessAt is Access for callers that already resolved the home bank.
func (m *MemSystem) AccessAt(now engine.Time, bank int, va memsim.Addr, write bool) (done engine.Time, hit bool) {
	if m.kills != nil {
		m.applyKills(now)
	}
	if m.onAccess != nil {
		m.onAccess(now, va)
	}
	if m.obs != nil {
		m.obs.ObserveAccess(va, write)
	}
	line := uint64(memsim.Line(va))
	start := m.bankSrv[bank].Reserve(now, int(m.cfg.BankOccupancy))
	if m.clocks != nil {
		m.retire(m.bankSim[bank], start, m.bankBusyFn, uint64(bank)<<bankBusyBits|uint64(m.cfg.BankOccupancy))
	} else {
		m.bankBusy[bank] += uint64(m.cfg.BankOccupancy)
	}

	hit, victim, dirtyVictim := m.banks[bank].Access(line, write)
	done = start + m.cfg.L3HitLatency
	if hit {
		return done, true
	}

	// Miss: request line from the nearest DRAM channel. A channel throttle
	// (fault injection) can push the service start past a blackout window
	// and stretch the access latency; the wait shows up as channel queue
	// cycles like any other backpressure.
	ci := m.nearestCtrl[bank]
	ctrl := m.ctrls[ci]
	reqArrive := m.net.Send(done, bank, ctrl, noc.Control, 8)
	ready, latency := reqArrive, m.cfg.DRAMLatency
	if m.cfg.Faults != nil {
		ready, latency = m.cfg.Faults.DRAMAdjust(ci, reqArrive, latency)
	}
	dramStart := m.dramSrv[ci].Reserve(ready, int(m.cfg.DRAMServe))
	if m.clocks != nil {
		m.retire(m.chanSim[ci], dramStart, m.dramRdFn, uint64(ci)<<dramWaitBits|uint64(dramStart-reqArrive))
	} else {
		m.DRAMReads++
		m.chanReads[ci]++
		m.chanQueueCycles[ci] += uint64(dramStart - reqArrive)
	}
	dataReady := dramStart + latency
	respArrive := m.net.Send(dataReady, ctrl, bank, noc.Data, memsim.LineSize)

	if dirtyVictim {
		// Write the victim back lazily; it occupies the channel but does
		// not delay the demand fill's critical path.
		wbArrive := m.net.Send(done, bank, ctrl, noc.Data, memsim.LineSize)
		wbReady := wbArrive
		if m.cfg.Faults != nil {
			wbReady, _ = m.cfg.Faults.DRAMAdjust(ci, wbArrive, 0)
		}
		wbStart := m.dramSrv[ci].Reserve(wbReady, int(m.cfg.DRAMServe))
		if m.clocks != nil {
			m.retire(m.chanSim[ci], wbStart, m.dramWrFn, uint64(ci)<<dramWaitBits|uint64(wbStart-wbArrive))
		} else {
			m.DRAMWrites++
			m.chanWrites[ci]++
			m.chanQueueCycles[ci] += uint64(wbStart - wbArrive)
		}
		_ = victim
	}
	return respArrive, false
}

// Preload installs every line of [va, va+bytes) into its home bank
// without charging time, traffic, or statistics — modeling data resident
// in the LLC after initialization, which is the paper's measurement
// regime (Fig 15 studies what happens when it no longer fits).
func (m *MemSystem) Preload(va memsim.Addr, bytes int64) {
	if m.obs != nil {
		m.obs.ObservePreload(va, bytes)
	}
	end := va + memsim.Addr(bytes)
	for line := memsim.LineAddr(va); line < end; line += memsim.LineSize {
		bank := m.BankOf(line)
		m.banks[bank].Install(uint64(memsim.Line(line)))
	}
}

// TotalL3Stats sums access/hit/miss counters across banks.
func (m *MemSystem) TotalL3Stats() (accesses, hits, misses uint64) {
	for _, b := range m.banks {
		accesses += b.Accesses
		hits += b.Hits
		misses += b.Misses
	}
	return accesses, hits, misses
}

// L3MissRate returns the aggregate L3 miss rate.
func (m *MemSystem) L3MissRate() float64 {
	a, _, miss := m.TotalL3Stats()
	if a == 0 {
		return 0
	}
	return float64(miss) / float64(a)
}

// BankBusyCycles returns a copy of each bank port's accumulated busy
// cycles.
func (m *MemSystem) BankBusyCycles() []uint64 {
	m.drain()
	out := make([]uint64, len(m.bankBusy))
	copy(out, m.bankBusy)
	return out
}

// Channels returns the number of DRAM channels (memory controllers).
func (m *MemSystem) Channels() int { return len(m.ctrls) }

// PublishTelemetry publishes the per-bank L3 access/hit/miss/occupancy
// series and the per-channel DRAM read/write/queue series into the
// registry — the access-balance view behind Figs 5, 6 and 12.
func (m *MemSystem) PublishTelemetry(r *telemetry.Registry) {
	m.drain()
	n := len(m.banks)
	acc := make([]uint64, n)
	hits := make([]uint64, n)
	miss := make([]uint64, n)
	for i, b := range m.banks {
		acc[i], hits[i], miss[i] = b.Accesses, b.Hits, b.Misses
	}
	r.SetSeries("l3_bank_accesses", acc)
	r.SetSeries("l3_bank_hits", hits)
	r.SetSeries("l3_bank_misses", miss)
	r.SetSeries("l3_bank_busy_cycles", m.bankBusy)
	r.SetSeries("dram_chan_reads", m.chanReads)
	r.SetSeries("dram_chan_writes", m.chanWrites)
	r.SetSeries("dram_chan_queue_cycles", m.chanQueueCycles)
}

// ResetStats clears bank and DRAM counters but keeps cache contents.
func (m *MemSystem) ResetStats() {
	m.drain() // retire in-flight accounting so it cannot leak past the reset
	for _, b := range m.banks {
		b.ResetStats()
	}
	for i := range m.bankBusy {
		m.bankBusy[i] = 0
	}
	for i := range m.chanReads {
		m.chanReads[i], m.chanWrites[i], m.chanQueueCycles[i] = 0, 0, 0
	}
	m.DRAMReads, m.DRAMWrites = 0, 0
}

// MigrateLines models re-homing the lines of [va, va+bytes) from bank
// `from` to bank `to`, starting no earlier than cycle now: per line, a
// read occupying the source bank port, a data-class NoC transfer from
// source to destination, and a write occupying the destination port that
// installs the line there. Everything flows through the shared servers
// and the mesh — migration is honest traffic, not teleportation — and
// the caller flips the address-space override separately. Returns the
// completion cycle of the last line.
func (m *MemSystem) MigrateLines(now engine.Time, from, to int, va memsim.Addr, bytes int64) engine.Time {
	done := now
	end := va + memsim.Addr(bytes)
	for line := memsim.LineAddr(va); line < end; line += memsim.LineSize {
		rd := m.bankSrv[from].Reserve(now, int(m.cfg.BankOccupancy))
		m.chargeBankBusy(from, rd)
		arrive := m.net.Send(rd+m.cfg.L3HitLatency, from, to, noc.Data, memsim.LineSize)
		wr := m.bankSrv[to].Reserve(arrive, int(m.cfg.BankOccupancy))
		m.chargeBankBusy(to, wr)
		m.banks[to].Install(uint64(memsim.Line(line)))
		if fin := wr + m.cfg.L3HitLatency; fin > done {
			done = fin
		}
	}
	return done
}

// chargeBankBusy accounts one access worth of port occupancy at cycle
// start, deferred through the event kernel when a coordinator is
// attached (the same path AccessAt uses).
func (m *MemSystem) chargeBankBusy(bank int, start engine.Time) {
	if m.clocks != nil {
		m.retire(m.bankSim[bank], start, m.bankBusyFn, uint64(bank)<<bankBusyBits|uint64(m.cfg.BankOccupancy))
	} else {
		m.bankBusy[bank] += uint64(m.cfg.BankOccupancy)
	}
}

// MigrationCostModel returns the planner's per-line and per-hop cycle
// costs, matching what MigrateLines actually charges: two port
// reservations plus two bank latencies per line, and the NoC's per-hop
// traversal for the transfer distance.
func (m *MemSystem) MigrationCostModel() (lineCycles, hopCycles float64) {
	return float64(2*m.cfg.BankOccupancy + 2*m.cfg.L3HitLatency), float64(m.net.PerHopCycles())
}

// MaxBankFree reports the latest bank schedule horizon — a debugging aid
// for locating the binding resource.
func (m *MemSystem) MaxBankFree() engine.Time {
	var t engine.Time
	for _, s := range m.bankSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

// MaxDRAMFree reports the latest DRAM schedule horizon.
func (m *MemSystem) MaxDRAMFree() engine.Time {
	var t engine.Time
	for _, s := range m.dramSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

package cache

import (
	"testing"
	"testing/quick"

	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/topo"
)

func TestSetAssocGeometry(t *testing.T) {
	c := MustSetAssoc(32<<10, 8, LRU)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Errorf("geometry %dx%d, want 64x8", c.Sets(), c.Ways())
	}
	if _, err := NewSetAssoc(1000, 8, LRU); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := NewSetAssoc(3*64*8, 8, LRU); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	c := MustSetAssoc(32<<10, 8, LRU)
	if hit, _, _ := c.Access(42, false); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(42, false); !hit {
		t.Error("second access missed")
	}
	if c.Accesses != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %f", c.MissRate())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// Tiny cache: 1 set x 4 ways (256B, 4-way).
	c := MustSetAssoc(256, 4, LRU)
	// Lines mapping to set 0 under the hashed index: use line numbers
	// whose hash collides. With 1 set everything collides.
	for line := uint64(0); line < 4; line++ {
		c.Access(line, false)
	}
	c.Access(0, false) // make 0 most recent; LRU is 1
	c.Access(99, false)
	if c.Probe(1) {
		t.Error("line 1 survived, want evicted as LRU")
	}
	if !c.Probe(0) || !c.Probe(99) {
		t.Error("expected lines missing")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := MustSetAssoc(256, 4, LRU)
	c.Access(7, true) // dirty
	for line := uint64(100); ; line++ {
		_, victim, dirty := c.Access(line, false)
		if dirty {
			if victim != 7 {
				t.Errorf("dirty victim %d, want 7", victim)
			}
			return
		}
		if line > 200 {
			t.Fatal("dirty line never evicted")
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := MustSetAssoc(256, 4, LRU)
	c.Access(5, true)
	present, dirty := c.Invalidate(5)
	if !present || !dirty {
		t.Errorf("invalidate = %v,%v", present, dirty)
	}
	if c.Probe(5) {
		t.Error("line present after invalidate")
	}
	if present, _ := c.Invalidate(5); present {
		t.Error("double invalidate found the line")
	}
}

func TestInstallBypassesStats(t *testing.T) {
	c := MustSetAssoc(32<<10, 8, BRRIP)
	c.Install(11)
	if c.Accesses != 0 {
		t.Error("Install counted as access")
	}
	if hit, _, _ := c.Access(11, false); !hit {
		t.Error("installed line missed")
	}
	// Install of a present line is a no-op.
	c.Install(11)
	if !c.Probe(11) {
		t.Error("re-install dropped the line")
	}
}

func TestBRRIPWorkingSetRetention(t *testing.T) {
	// BRRIP should retain a reused working set against a scan.
	c := MustSetAssoc(64<<10, 16, BRRIP)
	for round := 0; round < 8; round++ {
		for line := uint64(0); line < 256; line++ {
			c.Access(line, false)
		}
	}
	// Scan 4x the cache once.
	for line := uint64(10_000); line < 10_000+4096; line++ {
		c.Access(line, false)
	}
	kept := 0
	for line := uint64(0); line < 256; line++ {
		if c.Probe(line) {
			kept++
		}
	}
	if kept < 128 {
		t.Errorf("only %d/256 hot lines survived the scan", kept)
	}
}

func TestCacheNeverExceedsCapacity(t *testing.T) {
	prop := func(seed int64) bool {
		c := MustSetAssoc(4096, 4, BRRIP) // 64 lines capacity
		lines := 0
		for i := uint64(0); i < 500; i++ {
			c.Access((i*2654435761 + uint64(seed)), false)
		}
		for l := uint64(0); l < 1<<20; l++ {
			if c.Probe(l * 2654435761) {
				lines++
			}
		}
		_ = lines
		return c.Accesses == 500
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func newMemSys(t *testing.T) *MemSystem {
	t.Helper()
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	net := noc.New(mesh, noc.DefaultConfig())
	m, err := NewMemSystem(space, net, DefaultMemSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemSystemMissGoesToDRAM(t *testing.T) {
	m := newMemSys(t)
	base, err := m.Space().HeapBrk(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	done, hit := m.Access(0, base, false)
	if hit {
		t.Error("cold access hit")
	}
	if m.DRAMReads != 1 {
		t.Errorf("DRAM reads %d, want 1", m.DRAMReads)
	}
	// Miss latency: bank 20 + request + 100 DRAM + response.
	if done < 120 {
		t.Errorf("miss completed at %d, implausibly fast", done)
	}
	done2, hit2 := m.Access(done, base, false)
	if !hit2 {
		t.Error("second access missed")
	}
	if done2 != done+20 {
		t.Errorf("hit latency %d, want 20", done2-done)
	}
}

func TestMemSystemPreload(t *testing.T) {
	m := newMemSys(t)
	base, _ := m.Space().HeapBrk(1 << 16)
	m.Preload(base, 1<<14)
	acc0, _, _ := m.TotalL3Stats()
	if acc0 != 0 {
		t.Error("preload counted accesses")
	}
	for off := int64(0); off < 1<<14; off += 64 {
		if _, hit := m.Access(0, base+memsim.Addr(off), false); !hit {
			t.Fatalf("preloaded line at +%d missed", off)
		}
	}
	if m.DRAMReads != 0 {
		t.Error("preloaded region went to DRAM")
	}
}

func TestMemSystemBankResolution(t *testing.T) {
	m := newMemSys(t)
	base, err := m.Space().ExpandPool(64, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		va := base + memsim.Addr(i*64)
		if got, want := m.BankOf(va), i%64; got != want {
			t.Fatalf("BankOf line %d = %d, want %d", i, got, want)
		}
	}
}

func TestMemSystemResetStatsKeepsContents(t *testing.T) {
	m := newMemSys(t)
	base, _ := m.Space().HeapBrk(1 << 12)
	m.Access(0, base, false)
	m.ResetStats()
	a, _, _ := m.TotalL3Stats()
	if a != 0 || m.DRAMReads != 0 {
		t.Error("ResetStats left counters")
	}
	if _, hit := m.Access(1000, base, false); !hit {
		t.Error("contents lost by ResetStats")
	}
}

// Package cache models the simulated cache hierarchy of Table 2: private
// L1/L2 caches with LRU replacement, a 64-bank shared static-NUCA L3 with
// bimodal RRIP replacement, and DRAM channels attached at the mesh
// corners. It tracks the hit/miss and occupancy statistics the paper's
// evaluation reports (e.g. the L3 miss rates of Figs 15 and 16).
package cache

import (
	"fmt"

	"affinityalloc/internal/memsim"
)

// Replacement selects a replacement policy for a set-associative array.
type Replacement int

const (
	// LRU is least-recently-used, used by the private caches.
	LRU Replacement = iota
	// BRRIP is bimodal re-reference interval prediction, used by the L3
	// banks (Table 2: "Bimodal RRIP, p = 0.03").
	BRRIP
)

const invalidTag = ^uint64(0)

// maxRRPV is the saturating re-reference prediction value for 2-bit RRIP.
const maxRRPV = 3

// brripPeriod approximates p=0.03: one in every 32 fills is inserted with
// a long (rather than distant) re-reference prediction. A deterministic
// counter replaces the random draw to keep runs reproducible.
const brripPeriod = 32

// SetAssoc is a set-associative tag array. It stores no data — the
// simulated memory holds all values — only presence, dirtiness, and
// replacement state.
type SetAssoc struct {
	sets, ways int
	repl       Replacement
	tags       []uint64 // sets*ways, line numbers
	dirty      []bool
	meta       []uint8 // LRU stack position or RRPV
	fills      uint64  // drives the bimodal insertion counter

	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// NewSetAssoc builds a tag array with the given geometry. SizeBytes must
// be divisible by ways*LineSize and the resulting set count must be a
// power of two.
func NewSetAssoc(sizeBytes, ways int, repl Replacement) (*SetAssoc, error) {
	if ways <= 0 || sizeBytes <= 0 || sizeBytes%(ways*memsim.LineSize) != 0 {
		return nil, fmt.Errorf("cache: bad geometry size=%d ways=%d", sizeBytes, ways)
	}
	sets := sizeBytes / (ways * memsim.LineSize)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &SetAssoc{
		sets: sets, ways: ways, repl: repl,
		tags:  make([]uint64, sets*ways),
		dirty: make([]bool, sets*ways),
		meta:  make([]uint8, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if repl == LRU {
		// Give each way a distinct initial LRU stack position.
		for s := 0; s < sets; s++ {
			for w := 0; w < ways; w++ {
				c.meta[s*ways+w] = uint8(w)
			}
		}
	}
	return c, nil
}

// MustSetAssoc is NewSetAssoc that panics on error.
func MustSetAssoc(sizeBytes, ways int, repl Replacement) *SetAssoc {
	c, err := NewSetAssoc(sizeBytes, ways, repl)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// setOf hashes the line number into a set index. The XOR fold mixes the
// bits above the bank-interleave field into the index; without it, the
// lines homed at one bank (which share their low line bits modulo the
// interleave) would alias into a handful of sets. Real LLCs use similar
// index hashes for the same reason.
func (c *SetAssoc) setOf(line uint64) int {
	h := line ^ line>>10 ^ line>>20 ^ line>>32
	return int(h) & (c.sets - 1)
}

// Access looks up a line (identified by line number, i.e. addr/64) and
// fills it on a miss. It returns whether the lookup hit and, when a dirty
// victim was evicted, the victim's line number.
func (c *SetAssoc) Access(line uint64, write bool) (hit bool, victim uint64, dirtyVictim bool) {
	c.Accesses++
	set := c.setOf(line)
	base := set * c.ways

	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.Hits++
			c.touch(base, w)
			if write {
				c.dirty[base+w] = true
			}
			return true, 0, false
		}
	}
	c.Misses++
	w := c.victim(base)
	if c.tags[base+w] != invalidTag && c.dirty[base+w] {
		victim, dirtyVictim = c.tags[base+w], true
	}
	c.tags[base+w] = line
	c.dirty[base+w] = write
	c.insert(base, w)
	return false, victim, dirtyVictim
}

// Install fills a line without touching statistics — used to model data
// already resident after initialization (warm-cache measurement windows).
// A dirty victim's state is dropped; simulated memory always holds the
// authoritative values.
func (c *SetAssoc) Install(line uint64) {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return
		}
	}
	w := c.victim(base)
	c.tags[base+w] = line
	c.dirty[base+w] = false
	c.insert(base, w)
}

// Probe reports whether a line is present without updating any state.
func (c *SetAssoc) Probe(line uint64) bool {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Invalidate removes a line if present, returning whether it was dirty.
func (c *SetAssoc) Invalidate(line uint64) (present, dirty bool) {
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			present, dirty = true, c.dirty[base+w]
			c.tags[base+w] = invalidTag
			c.dirty[base+w] = false
			return present, dirty
		}
	}
	return false, false
}

// touch updates replacement state on a hit.
func (c *SetAssoc) touch(base, way int) {
	switch c.repl {
	case LRU:
		old := c.meta[base+way]
		for w := 0; w < c.ways; w++ {
			if c.meta[base+w] < old {
				c.meta[base+w]++
			}
		}
		c.meta[base+way] = 0
	case BRRIP:
		c.meta[base+way] = 0
	}
}

// insert sets replacement state for a newly filled way.
func (c *SetAssoc) insert(base, way int) {
	switch c.repl {
	case LRU:
		old := c.meta[base+way]
		for w := 0; w < c.ways; w++ {
			if c.meta[base+w] < old {
				c.meta[base+w]++
			}
		}
		c.meta[base+way] = 0
	case BRRIP:
		c.fills++
		if c.fills%brripPeriod == 0 {
			c.meta[base+way] = maxRRPV - 1
		} else {
			c.meta[base+way] = maxRRPV
		}
	}
}

// victim picks the way to replace in the set at base.
func (c *SetAssoc) victim(base int) int {
	// Prefer an invalid way.
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == invalidTag {
			return w
		}
	}
	switch c.repl {
	case LRU:
		for w := 0; w < c.ways; w++ {
			if c.meta[base+w] == uint8(c.ways-1) {
				return w
			}
		}
		return 0
	case BRRIP:
		for {
			for w := 0; w < c.ways; w++ {
				if c.meta[base+w] >= maxRRPV {
					return w
				}
			}
			for w := 0; w < c.ways; w++ {
				c.meta[base+w]++
			}
		}
	}
	return 0
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *SetAssoc) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears counters but keeps cache contents (warm measurement
// windows).
func (c *SetAssoc) ResetStats() {
	c.Accesses, c.Hits, c.Misses = 0, 0, 0
}

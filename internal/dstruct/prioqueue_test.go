package dstruct

import (
	"math/rand"
	"testing"

	"affinityalloc/internal/core"
)

func newPQ(t *testing.T, n, parts, slack int64) (*SpatialPriorityQueue, Alloc, *core.ArrayInfo) {
	t.Helper()
	a := newAlloc(t, true, core.DefaultPolicy())
	v, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: n, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewSpatialPriorityQueue(a.RT, v, parts, slack)
	if err != nil {
		t.Fatal(err)
	}
	return q, a, v
}

func TestPrioQueueHeapOrderPerPartition(t *testing.T) {
	q, _, _ := newPQ(t, 1<<12, 64, 2)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		if _, err := q.Push(int32(rng.Intn(1<<12)), int32(rng.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	// Each partition pops in nondecreasing priority order.
	for p := int64(0); p < q.Parts(); p++ {
		prev := int32(-1 << 30)
		for {
			_, prio, _, ok := q.PopMinPart(p)
			if !ok {
				break
			}
			if prio < prev {
				t.Fatalf("partition %d popped %d after %d", p, prio, prev)
			}
			prev = prio
		}
	}
	if q.Len() != 0 {
		t.Errorf("len %d after draining", q.Len())
	}
}

func TestPrioQueueRelaxedPopBounded(t *testing.T) {
	q, _, _ := newPQ(t, 1<<12, 64, 2)
	rng := rand.New(rand.NewSource(9))
	n := 4000
	for i := 0; i < n; i++ {
		if _, err := q.Push(int32(rng.Intn(1<<12)), int32(rng.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	// The MultiQueues relaxation pops everything exactly once.
	popped := 0
	for probe := int64(0); ; probe++ {
		_, _, _, ok := q.PopMin(probe)
		if !ok {
			break
		}
		popped++
	}
	if popped != n {
		t.Errorf("popped %d, want %d", popped, n)
	}
}

func TestPrioQueuePushLocality(t *testing.T) {
	q, a, v := newPQ(t, 1<<14, 64, 1)
	rng := rand.New(rand.NewSource(5))
	local, total := 0, 1000
	for i := 0; i < total; i++ {
		val := int32(rng.Intn(1 << 14))
		if _, err := q.Push(val, int32(i)); err != nil {
			t.Fatal(err)
		}
		vb := a.RT.BankOf(v.ElemAddr(int64(val)))
		if a.RT.BankOf(q.HeadAddr(q.PartOf(val))) == vb {
			local++
		}
	}
	if local < total*9/10 {
		t.Errorf("only %d/%d pushes had a bank-local sub-heap", local, total)
	}
}

func TestPrioQueueOverflowAndEmpty(t *testing.T) {
	q, _, _ := newPQ(t, 64, 64, 1)
	// Partition capacity 1 at slack 1.
	if _, err := q.Push(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Push(0, 6); err == nil {
		t.Error("overflow push succeeded")
	}
	if _, _, _, ok := q.PopMinPart(5); ok {
		t.Error("pop from empty partition succeeded")
	}
	if _, _, _, ok := q.PopMin(0); !ok {
		t.Error("PopMin missed the only entry")
	}
	if _, _, _, ok := q.PopMin(1); ok {
		t.Error("PopMin on empty queue succeeded")
	}
}

func TestPrioQueueSiftHopsLogarithmic(t *testing.T) {
	q, _, _ := newPQ(t, 1<<10, 1, 64)
	// Single partition: push decreasing priorities — worst-case sifts.
	maxHops := 0
	for i := 0; i < 1024; i++ {
		hops, err := q.Push(0, int32(1024-i))
		if err != nil {
			t.Fatal(err)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	if maxHops > 11 {
		t.Errorf("max sift hops %d for 1024 entries, want <= log2", maxHops)
	}
}

package dstruct

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
)

// Linked CSR (Fig 11) stores each vertex's out-edges in a chain of
// line-sized nodes instead of one contiguous array, giving the allocator
// the freedom to place each node near the vertices its edges point to.
// A 64B node holds an 8B next pointer and up to 14 4-byte edge targets
// (short nodes are padded with -1), exactly the layout §5.3 describes.
const (
	// CSRNodeBytes is one edge node's footprint (a cache line).
	CSRNodeBytes = 64
	// EdgesPerNode is the edge capacity of one node.
	EdgesPerNode = 14
	// WeightedEdgesPerNode halves capacity when each edge carries a
	// 4-byte weight alongside its target.
	WeightedEdgesPerNode = 7
)

// CSRNode is the Go-side mirror of one simulated edge node.
type CSRNode struct {
	Addr    memsim.Addr
	Edges   []int32 // targets (shared with the builder until mutated)
	Weights []int32 // parallel weights, nil when unweighted
	// owned marks nodes whose slices were copied out of the builder's
	// shared storage (set by the dynamic-update path before mutating).
	owned bool
}

// LinkedCSR is a built linked-CSR graph plus its Go-side traversal
// mirror.
type LinkedCSR struct {
	G *graph.Graph
	// Chains[u] lists vertex u's edge nodes in order.
	Chains [][]CSRNode
	// Heads[u] is the first node's address (0 for isolated vertices).
	Heads     []memsim.Addr
	weighted  bool
	nodeBytes int
}

// BuildLinkedCSR converts g into linked-CSR form, allocating each node
// with affinity to the property-array entries of the vertices its edges
// point to (prop is the array indirect accesses target, e.g. parents or
// ranks). Affinity addresses are sampled down to the API's cap. The cost
// matches §5.3: one O(|E|) scan.
func BuildLinkedCSR(alloc Alloc, g *graph.Graph, prop *core.ArrayInfo) (*LinkedCSR, error) {
	return BuildLinkedCSRSized(alloc, g, prop, CSRNodeBytes)
}

// BuildLinkedCSRSized is BuildLinkedCSR with an explicit node size — the
// design-space knob DESIGN.md's ablation studies sweep (64B..256B nodes
// trade pointer-chasing amortization against placement granularity).
func BuildLinkedCSRSized(alloc Alloc, g *graph.Graph, prop *core.ArrayInfo, nodeBytes int) (*LinkedCSR, error) {
	if nodeBytes < 16 || nodeBytes&(nodeBytes-1) != 0 {
		return nil, fmt.Errorf("dstruct: invalid linked-CSR node size %d", nodeBytes)
	}
	weighted := g.Weights != nil
	cap := (nodeBytes - 8) / 4
	if weighted {
		cap = (nodeBytes - 8) / 8
	}
	lc := &LinkedCSR{
		G:         g,
		Chains:    make([][]CSRNode, g.N),
		Heads:     make([]memsim.Addr, g.N),
		weighted:  weighted,
		nodeBytes: nodeBytes,
	}
	sp := alloc.Space()
	hints := make([]memsim.Addr, 0, core.MaxAffinityAddrs)
	for u := int32(0); u < g.N; u++ {
		lo, hi := g.Index[u], g.Index[u+1]
		var prevAddr memsim.Addr
		for at := lo; at < hi; at += int64(cap) {
			end := at + int64(cap)
			if end > hi {
				end = hi
			}
			edges := g.Edges[at:end]
			var weights []int32
			if weighted {
				weights = g.Weights[at:end]
			}

			// Sample up to MaxAffinityAddrs pointed-to property slots.
			hints = hints[:0]
			if alloc.Affinity && prop != nil {
				step := (len(edges) + core.MaxAffinityAddrs - 1) / core.MaxAffinityAddrs
				if step < 1 {
					step = 1
				}
				for i := 0; i < len(edges); i += step {
					hints = append(hints, prop.ElemAddr(int64(edges[i])))
				}
			}
			addr, err := alloc.Near(int64(nodeBytes), hints)
			if err != nil {
				return nil, fmt.Errorf("dstruct: linked CSR node for vertex %d: %w", u, err)
			}

			// Materialize the node in simulated memory: next pointer,
			// then edge words (target, or target+weight pairs).
			sp.WriteAddr(addr, 0)
			off := addr + 8
			for i, v := range edges {
				sp.WriteU32(off, uint32(v))
				off += 4
				if weighted {
					sp.WriteU32(off, uint32(weights[i]))
					off += 4
				}
				_ = i
			}
			for off < addr+memsim.Addr(nodeBytes) {
				sp.WriteU32(off, ^uint32(0)) // -1 padding
				off += 4
			}

			if prevAddr != 0 {
				sp.WriteAddr(prevAddr, addr)
			} else {
				lc.Heads[u] = addr
			}
			prevAddr = addr
			lc.Chains[u] = append(lc.Chains[u], CSRNode{Addr: addr, Edges: edges, Weights: weights})
		}
	}
	return lc, nil
}

// Weighted reports whether nodes carry edge weights.
func (lc *LinkedCSR) Weighted() bool { return lc.weighted }

// NodeBytes returns the per-node footprint.
func (lc *LinkedCSR) NodeBytes() int {
	if lc.nodeBytes == 0 {
		return CSRNodeBytes
	}
	return lc.nodeBytes
}

// NumNodes returns the total edge-node count.
func (lc *LinkedCSR) NumNodes() int64 {
	var n int64
	for _, c := range lc.Chains {
		n += int64(len(c))
	}
	return n
}

// VerifyAgainst checks the simulated-memory contents reproduce g's edge
// lists exactly (used by tests).
func (lc *LinkedCSR) VerifyAgainst(sp *memsim.Space) error {
	cap := (lc.NodeBytes() - 8) / 4
	stride := memsim.Addr(4)
	if lc.weighted {
		cap = (lc.NodeBytes() - 8) / 8
		stride = 8
	}
	for u := int32(0); u < lc.G.N; u++ {
		want := lc.G.OutEdges(u)
		got := make([]int32, 0, len(want))
		addr := lc.Heads[u]
		for addr != 0 {
			off := addr + 8
			for i := 0; i < cap; i++ {
				v := int32(sp.ReadU32(off))
				if v == -1 {
					break
				}
				got = append(got, v)
				off += stride
			}
			addr = sp.ReadAddr(addr)
		}
		if len(got) != len(want) {
			return fmt.Errorf("dstruct: vertex %d has %d edges in memory, want %d", u, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("dstruct: vertex %d edge %d is %d, want %d", u, i, got[i], want[i])
			}
		}
	}
	return nil
}

package dstruct

import (
	"math/rand"
	"sort"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
)

func buildDynamic(t *testing.T, aff bool) (Alloc, *LinkedCSR, *core.ArrayInfo, *graph.Graph) {
	t.Helper()
	g := graph.Kronecker(9, 6, 31)
	a := newAlloc(t, aff, core.DefaultPolicy())
	prop, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: int64(g.N), Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := BuildLinkedCSR(a, g, prop)
	if err != nil {
		t.Fatal(err)
	}
	return a, lc, prop, g
}

func TestInsertEdgeAppendsAndAllocates(t *testing.T) {
	for _, aff := range []bool{false, true} {
		a, lc, prop, g := buildDynamic(t, aff)
		u := g.MaxDegreeVertex()
		before := lc.DynamicDegree(u)
		nodesBefore := len(lc.Chains[u])
		// Fill past the tail's capacity to force a new node.
		for k := 0; k < EdgesPerNode+2; k++ {
			if err := lc.InsertEdge(a, prop, u, int32(k%int(g.N)), 0); err != nil {
				t.Fatal(err)
			}
		}
		if lc.DynamicDegree(u) != before+EdgesPerNode+2 {
			t.Fatalf("degree %d, want %d", lc.DynamicDegree(u), before+EdgesPerNode+2)
		}
		if len(lc.Chains[u]) <= nodesBefore {
			t.Error("no new node allocated despite overflow")
		}
		if _, err := lc.VerifyDynamic(a.Space(), u); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertIntoIsolatedVertex(t *testing.T) {
	a, lc, prop, g := buildDynamic(t, true)
	// Find (or fabricate) a vertex with no edges.
	var iso int32 = -1
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) == 0 {
			iso = v
			break
		}
	}
	if iso < 0 {
		t.Skip("no isolated vertex in this graph")
	}
	if err := lc.InsertEdge(a, prop, iso, 3, 0); err != nil {
		t.Fatal(err)
	}
	if lc.Heads[iso] == 0 {
		t.Fatal("head not set")
	}
	got, err := lc.VerifyDynamic(a.Space(), iso)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("edges %v", got)
	}
}

func TestDeleteEdgeCompactsAndUnlinks(t *testing.T) {
	a, lc, _, g := buildDynamic(t, true)
	u := g.MaxDegreeVertex()
	edges := append([]int32(nil), lc.DynamicEdges(u)...)
	// Delete every edge; the chain must vanish.
	for _, v := range edges {
		ok, err := lc.DeleteEdge(a, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("edge %d->%d not found", u, v)
		}
		if _, err := lc.VerifyDynamic(a.Space(), u); err != nil {
			t.Fatal(err)
		}
	}
	if lc.DynamicDegree(u) != 0 || lc.Heads[u] != 0 || len(lc.Chains[u]) != 0 {
		t.Errorf("vertex not fully emptied: deg=%d head=%x nodes=%d",
			lc.DynamicDegree(u), uint64(lc.Heads[u]), len(lc.Chains[u]))
	}
	// Deleting again reports absence.
	if ok, _ := lc.DeleteEdge(a, u, edges[0]); ok {
		t.Error("deleted a nonexistent edge")
	}
}

func TestDynamicChurnMatchesReference(t *testing.T) {
	a, lc, prop, g := buildDynamic(t, true)
	rng := rand.New(rand.NewSource(77))
	// Reference multiset per vertex.
	ref := make(map[int32][]int32)
	for u := int32(0); u < g.N; u++ {
		ref[u] = append([]int32(nil), g.OutEdges(u)...)
	}
	for step := 0; step < 2000; step++ {
		u := int32(rng.Intn(int(g.N)))
		if rng.Intn(2) == 0 || len(ref[u]) == 0 {
			v := int32(rng.Intn(int(g.N)))
			if err := lc.InsertEdge(a, prop, u, v, 0); err != nil {
				t.Fatal(err)
			}
			ref[u] = append(ref[u], v)
		} else {
			v := ref[u][rng.Intn(len(ref[u]))]
			ok, err := lc.DeleteEdge(a, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("edge %d->%d missing", u, v)
			}
			// Remove one instance from the reference.
			for i, e := range ref[u] {
				if e == v {
					ref[u] = append(ref[u][:i], ref[u][i+1:]...)
					break
				}
			}
		}
	}
	// Compare multisets and memory for a sample of vertices.
	for u := int32(0); u < g.N; u += 7 {
		got, err := lc.VerifyDynamic(a.Space(), u)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int32(nil), ref[u]...)
		sortInt32(got)
		sortInt32(want)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d edges, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d edge multiset differs", u)
			}
		}
	}
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func TestDynamicInsertKeepsAffinity(t *testing.T) {
	a, lc, prop, g := buildDynamic(t, true)
	mesh := a.RT.Mesh()
	// Insert many edges into empty-ish vertices and measure distance to
	// the pointed property.
	total, n := 0, 0
	for v := int32(0); v < g.N && n < 200; v += 3 {
		u := (v + 1) % g.N
		// New node allocations happen when tails are full; force fresh
		// nodes by inserting into low-degree vertices repeatedly.
		if err := lc.InsertEdge(a, prop, u, v, 0); err != nil {
			t.Fatal(err)
		}
		chain := lc.Chains[u]
		nodeBank := a.RT.BankOf(chain[len(chain)-1].Addr)
		total += mesh.Hops(nodeBank, a.RT.BankOf(prop.ElemAddr(int64(v))))
		n++
	}
	avg := float64(total) / float64(n)
	// Most inserts append to existing nodes (placed for their original
	// edges), so only a loose bound applies — but it must beat the ~5.25
	// random average comfortably.
	if avg > 4 {
		t.Errorf("avg insert distance %.2f hops — affinity lost", avg)
	}
}

func TestFreedNodeSpaceIsReused(t *testing.T) {
	a, lc, prop, g := buildDynamic(t, true)
	u := g.MaxDegreeVertex()
	// Empty u entirely, freeing its nodes.
	for _, v := range append([]int32(nil), lc.DynamicEdges(u)...) {
		if _, err := lc.DeleteEdge(a, u, v); err != nil {
			t.Fatal(err)
		}
	}
	allocs := a.RT.Stats.IrregularAllocs
	refills := a.RT.Stats.PoolRefills
	// Rebuilding the chain should come from the free lists, not new pool
	// expansions.
	for k := 0; k < 50; k++ {
		if err := lc.InsertEdge(a, prop, u, int32(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.RT.Stats.IrregularAllocs == allocs {
		t.Error("no new node allocations recorded")
	}
	if a.RT.Stats.PoolRefills != refills {
		t.Errorf("pool expanded (%d -> %d) despite freed chunks", refills, a.RT.Stats.PoolRefills)
	}
}

package dstruct

import (
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

// FuzzQueuePushSequences drives the global and spatial work queues with
// arbitrary push sequences and checks the invariants every graph workload
// leans on: pushes either land (preserving FIFO order and, for the
// spatial queue, partition ownership) or fail cleanly at capacity — never
// corrupt a neighboring slot or panic.
func FuzzQueuePushSequences(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		const nVerts = 64
		space := memsim.MustSpace(memsim.DefaultConfig())
		mesh := topo.MustMesh(8, 8, topo.RowMajor)
		rt := core.MustNew(space, mesh, core.DefaultPolicy(), 3)

		gq, err := NewGlobalQueue(rt, 32)
		if err != nil {
			t.Fatal(err)
		}
		vInfo, err := rt.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: nVerts, Partition: true})
		if err != nil {
			t.Fatal(err)
		}
		sq, err := NewSpatialQueue(rt, vInfo, 4, 1)
		if err != nil {
			t.Fatal(err)
		}

		var gWant []int32
		sWant := make(map[int64][]int32)
		for _, b := range data {
			v := int32(b) % nVerts
			if _, _, err := gq.Push(v); err == nil {
				gWant = append(gWant, v)
			} else if int64(len(gWant)) < 32 {
				t.Fatalf("global push failed below capacity: %v", err)
			}
			p := sq.PartOf(v)
			if _, _, err := sq.Push(v); err == nil {
				sWant[p] = append(sWant[p], v)
			}
		}

		if gq.Len() != int64(len(gWant)) {
			t.Fatalf("global len %d, pushed %d", gq.Len(), len(gWant))
		}
		for i, want := range gWant {
			if got := gq.Get(int64(i)); got != want {
				t.Fatalf("global slot %d = %d, want %d", i, got, want)
			}
		}

		var sTotal int64
		for p, want := range sWant {
			sTotal += int64(len(want))
			for i, w := range want {
				got := sq.Get(p, int64(i))
				if got != w {
					t.Fatalf("spatial part %d slot %d = %d, want %d", p, i, got, w)
				}
				if sq.PartOf(got) != p {
					t.Fatalf("value %d landed in partition %d but belongs to %d", got, p, sq.PartOf(got))
				}
			}
		}
		if sq.Len() != sTotal {
			t.Fatalf("spatial len %d, pushed %d", sq.Len(), sTotal)
		}
		lens := sq.Lens()
		for p := int64(0); p < sq.Parts(); p++ {
			if lens[p] != int64(len(sWant[p])) {
				t.Fatalf("partition %d len %d, pushed %d", p, lens[p], len(sWant[p]))
			}
		}
	})
}

package dstruct

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

// SpatialPriorityQueue is the §4.2 MultiQueues-style structure: one
// binary min-heap per partition, with each sub-heap's storage aligned to
// the vertex partition it serves, so pushes from a bank's computation
// stay local and heap rearrangement is local pointer-chasing the stream
// engines support. Entries are (priority, value) pairs; PopMin over all
// partitions relaxes global ordering exactly the way MultiQueues does.
type SpatialPriorityQueue struct {
	space   *memsim.Space
	parts   int64
	perPart int64
	numElem int64
	// data holds (priority int32, value int32) pairs, aligned to vInfo.
	data  *core.ArrayInfo
	sizes *core.ArrayInfo // one int64 heap size per partition
}

// NewSpatialPriorityQueue builds one sub-heap per partition of vInfo,
// each with capacity slack times its vertex share.
func NewSpatialPriorityQueue(rt *core.Runtime, vInfo *core.ArrayInfo, parts, slack int64) (*SpatialPriorityQueue, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("dstruct: invalid partition count %d", parts)
	}
	if slack < 1 {
		slack = 1
	}
	n := vInfo.NumElem
	vertsPerPart := (n + parts - 1) / parts
	perPart := vertsPerPart * slack
	data, err := rt.AllocAffine(core.AffineSpec{
		ElemSize: 8, NumElem: parts * perPart,
		AlignTo: vInfo.Base, AlignP: 1, AlignQ: int(slack),
	})
	if err != nil {
		return nil, err
	}
	sizes, err := rt.AllocAffine(core.AffineSpec{
		ElemSize: 8, NumElem: parts,
		AlignTo: vInfo.Base, AlignP: int(vertsPerPart), AlignQ: 1,
	})
	if err != nil {
		return nil, err
	}
	q := &SpatialPriorityQueue{
		space:   rt.Space(),
		parts:   parts,
		perPart: perPart,
		numElem: n,
		data:    data,
		sizes:   sizes,
	}
	q.Reset()
	return q, nil
}

// Reset empties every sub-heap.
func (q *SpatialPriorityQueue) Reset() {
	for p := int64(0); p < q.parts; p++ {
		q.space.WriteU64(q.sizes.ElemAddr(p), 0)
	}
}

// Parts returns the partition count.
func (q *SpatialPriorityQueue) Parts() int64 { return q.parts }

// PartOf returns the partition owning value v.
func (q *SpatialPriorityQueue) PartOf(v int32) int64 {
	p := int64(v) * q.parts / q.numElem
	if p >= q.parts {
		p = q.parts - 1
	}
	return p
}

func (q *SpatialPriorityQueue) slotAddr(p, i int64) memsim.Addr {
	return q.data.ElemAddr(p*q.perPart + i)
}

func (q *SpatialPriorityQueue) slot(p, i int64) (prio, value int32) {
	a := q.slotAddr(p, i)
	return int32(q.space.ReadU32(a)), int32(q.space.ReadU32(a + 4))
}

func (q *SpatialPriorityQueue) setSlot(p, i int64, prio, value int32) {
	a := q.slotAddr(p, i)
	q.space.WriteU32(a, uint32(prio))
	q.space.WriteU32(a+4, uint32(value))
}

func (q *SpatialPriorityQueue) size(p int64) int64 {
	return int64(q.space.ReadU64(q.sizes.ElemAddr(p)))
}

func (q *SpatialPriorityQueue) setSize(p, n int64) {
	q.space.WriteU64(q.sizes.ElemAddr(p), uint64(n))
}

// Len returns the total entry count across partitions.
func (q *SpatialPriorityQueue) Len() int64 {
	var total int64
	for p := int64(0); p < q.parts; p++ {
		total += q.size(p)
	}
	return total
}

// Push inserts (prio, v) into v's partition heap and returns the number
// of sift hops (heap levels touched) for timing replay — every touched
// slot is on the partition's own bank.
func (q *SpatialPriorityQueue) Push(v, prio int32) (siftHops int, err error) {
	p := q.PartOf(v)
	n := q.size(p)
	if n >= q.perPart {
		return 0, fmt.Errorf("dstruct: priority sub-queue %d overflow (%d)", p, q.perPart)
	}
	q.setSlot(p, n, prio, v)
	i := n
	for i > 0 {
		parent := (i - 1) / 2
		pp, pv := q.slot(p, parent)
		cp, cv := q.slot(p, i)
		if pp <= cp {
			break
		}
		q.setSlot(p, parent, cp, cv)
		q.setSlot(p, i, pp, pv)
		i = parent
		siftHops++
	}
	q.setSize(p, n+1)
	return siftHops, nil
}

// PopMinPart removes the minimum of partition p's heap, returning the
// entry and the sift hops. ok is false when the sub-heap is empty.
func (q *SpatialPriorityQueue) PopMinPart(p int64) (value, prio int32, siftHops int, ok bool) {
	n := q.size(p)
	if n == 0 {
		return 0, 0, 0, false
	}
	prio, value = q.slot(p, 0)
	lp, lv := q.slot(p, n-1)
	q.setSlot(p, 0, lp, lv)
	q.setSize(p, n-1)
	n--
	i := int64(0)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		mp, _ := q.slot(p, min)
		if l < n {
			if cp, _ := q.slot(p, l); cp < mp {
				min, mp = l, cp
			}
		}
		if r < n {
			if cp, _ := q.slot(p, r); cp < mp {
				min = r
			}
		}
		if min == i {
			break
		}
		ip, iv := q.slot(p, i)
		np, nv := q.slot(p, min)
		q.setSlot(p, i, np, nv)
		q.setSlot(p, min, ip, iv)
		i = min
		siftHops++
	}
	return value, prio, siftHops, true
}

// PopMin removes an entry with a near-minimal priority: it compares the
// heads of a deterministic pair of sub-heaps and pops the smaller — the
// MultiQueues relaxation, which avoids a global ordering bottleneck at a
// bounded rank error. probe selects the pair (callers pass a counter).
func (q *SpatialPriorityQueue) PopMin(probe int64) (value, prio int32, siftHops int, ok bool) {
	if q.parts == 1 {
		return q.PopMinPart(0)
	}
	a := probe % q.parts
	b := (probe*2654435761 + 1) % q.parts
	pa, pb := q.size(a), q.size(b)
	switch {
	case pa == 0 && pb == 0:
		// Fall back to a scan so emptiness is reliable.
		for p := int64(0); p < q.parts; p++ {
			if q.size(p) > 0 {
				return q.PopMinPart(p)
			}
		}
		return 0, 0, 0, false
	case pa == 0:
		return q.PopMinPart(b)
	case pb == 0:
		return q.PopMinPart(a)
	}
	ha, _ := q.slot(a, 0)
	hb, _ := q.slot(b, 0)
	if ha <= hb {
		return q.PopMinPart(a)
	}
	return q.PopMinPart(b)
}

// HeadAddr returns the address of partition p's heap root (the slot a
// computation at that bank touches first).
func (q *SpatialPriorityQueue) HeadAddr(p int64) memsim.Addr { return q.slotAddr(p, 0) }

// Info exposes the heap storage layout (for preloading).
func (q *SpatialPriorityQueue) Info() *core.ArrayInfo { return q.data }

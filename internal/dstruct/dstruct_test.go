package dstruct

import (
	"math/rand"
	"sort"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

func newAlloc(t *testing.T, affinity bool, pcfg core.PolicyConfig) Alloc {
	t.Helper()
	space := memsim.MustSpace(memsim.DefaultConfig())
	mesh := topo.MustMesh(8, 8, topo.RowMajor)
	rt := core.MustNew(space, mesh, pcfg, 3)
	return Alloc{RT: rt, Affinity: affinity}
}

func TestListAppendWalk(t *testing.T) {
	for _, aff := range []bool{false, true} {
		l := NewList(newAlloc(t, aff, core.DefaultPolicy()))
		for i := uint64(0); i < 100; i++ {
			if _, err := l.Append(i * 3); err != nil {
				t.Fatal(err)
			}
		}
		if l.Len() != 100 {
			t.Fatalf("len %d", l.Len())
		}
		want := uint64(0)
		l.Walk(func(_ memsim.Addr, key uint64) bool {
			if key != want*3 {
				t.Fatalf("key %d, want %d", key, want*3)
			}
			want++
			return true
		})
		if want != 100 {
			t.Fatalf("walked %d nodes", want)
		}
	}
}

func TestListAffinityColocatesWithMinHop(t *testing.T) {
	a := newAlloc(t, true, core.PolicyConfig{Policy: core.MinHop})
	l := NewList(a)
	var addrs []memsim.Addr
	for i := uint64(0); i < 64; i++ {
		addr, err := l.Append(i)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	b0 := a.RT.BankOf(addrs[0])
	for i, addr := range addrs {
		if a.RT.BankOf(addr) != b0 {
			t.Fatalf("node %d on bank %d, want %d", i, a.RT.BankOf(addr), b0)
		}
	}
}

func TestBSTInsertSearch(t *testing.T) {
	for _, aff := range []bool{false, true} {
		tr := NewBST(newAlloc(t, aff, core.DefaultPolicy()))
		rng := rand.New(rand.NewSource(5))
		keys := make([]uint64, 0, 500)
		seen := map[uint64]bool{}
		for len(keys) < 500 {
			k := rng.Uint64() % 100000
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		for _, k := range keys {
			if err := tr.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != 500 {
			t.Fatalf("len %d", tr.Len())
		}
		// Duplicate insert is a no-op.
		if err := tr.Insert(keys[0]); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 500 {
			t.Fatal("duplicate insert changed size")
		}
		var path []memsim.Addr
		for _, k := range keys {
			path, found := tr.SearchPath(k, path[:0])
			if !found {
				t.Fatalf("key %d not found", k)
			}
			if len(path) == 0 {
				t.Fatal("empty search path")
			}
		}
		if _, found := tr.SearchPath(1<<63, nil); found {
			t.Fatal("found a key that was never inserted")
		}
	}
}

func TestBSTInorderSorted(t *testing.T) {
	tr := NewBST(newAlloc(t, true, core.DefaultPolicy()))
	rng := rand.New(rand.NewSource(9))
	var keys []uint64
	for i := 0; i < 300; i++ {
		k := rng.Uint64()
		keys = append(keys, k)
		if err := tr.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	var inorder []uint64
	var walk func(addr memsim.Addr)
	walk = func(addr memsim.Addr) {
		if addr == 0 {
			return
		}
		k, l, r := tr.Node(addr)
		walk(l)
		inorder = append(inorder, k)
		walk(r)
	}
	walk(tr.Root())
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(inorder) != len(keys) {
		t.Fatalf("inorder %d nodes, want %d", len(inorder), len(keys))
	}
	for i := range keys {
		if inorder[i] != keys[i] {
			t.Fatalf("inorder[%d] = %d, want %d", i, inorder[i], keys[i])
		}
	}
}

func TestHashTableInsertProbe(t *testing.T) {
	for _, aff := range []bool{false, true} {
		a := newAlloc(t, aff, core.DefaultPolicy())
		h, err := NewHashTable(a, 1024)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 2000; k++ {
			if err := h.Insert(k, k*7); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 2000; k++ {
			_, _, v, ok := h.ProbePath(k, nil)
			if !ok || v != k*7 {
				t.Fatalf("probe %d: ok=%v v=%d", k, ok, v)
			}
		}
		if _, _, _, ok := h.ProbePath(1<<40, nil); ok {
			t.Fatal("found uninserted key")
		}
	}
}

func TestHashBucketsSpreadBanks(t *testing.T) {
	a := newAlloc(t, true, core.DefaultPolicy())
	h, err := NewHashTable(a, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	banks := map[int]bool{}
	for i := int64(0); i < h.Buckets(); i += 64 {
		banks[a.RT.BankOf(h.BucketAddr(i))] = true
	}
	if len(banks) < 32 {
		t.Errorf("buckets on only %d banks", len(banks))
	}
}

func TestGlobalQueue(t *testing.T) {
	a := newAlloc(t, false, core.DefaultPolicy())
	q, err := NewGlobalQueue(a.RT, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 1000; i++ {
		if _, _, err := q.Push(i * 2); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 1000 {
		t.Fatalf("len %d", q.Len())
	}
	if _, _, err := q.Push(0); err == nil {
		t.Fatal("overflow push succeeded")
	}
	for i := int64(0); i < 1000; i++ {
		if q.Get(i) != int32(i*2) {
			t.Fatalf("slot %d = %d", i, q.Get(i))
		}
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not empty the queue")
	}
}

func TestSpatialQueuePushLocality(t *testing.T) {
	a := newAlloc(t, true, core.DefaultPolicy())
	// Partitioned vertex array of 64k int32.
	v, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: 1 << 16, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewSpatialQueue(a.RT, v, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pushed := make(map[int32]bool)
	localTail, localSlot := 0, 0
	total := 2000
	for i := 0; i < total; i++ {
		val := int32(rng.Intn(1 << 16))
		tailAddr, slotAddr, err := q.Push(val)
		if err != nil {
			t.Fatal(err)
		}
		pushed[val] = true
		// The Fig 9 property: tail and slot colocate with the vertex.
		vb := a.RT.BankOf(v.ElemAddr(int64(val)))
		if a.RT.BankOf(tailAddr) == vb {
			localTail++
		}
		if a.RT.BankOf(slotAddr) == vb {
			localSlot++
		}
	}
	if localTail < total*9/10 {
		t.Errorf("only %d/%d pushes had a local tail", localTail, total)
	}
	if localSlot < total*9/10 {
		t.Errorf("only %d/%d pushes had a local slot", localSlot, total)
	}
	// Contents round-trip.
	if q.Len() != int64(total) {
		t.Fatalf("Len %d, want %d", q.Len(), total)
	}
	got := make(map[int32]bool)
	lens := q.Lens()
	for p := int64(0); p < q.Parts(); p++ {
		for i := int64(0); i < lens[p]; i++ {
			val := q.Get(p, i)
			got[val] = true
			if q.PartOf(val) != p {
				t.Fatalf("value %d in partition %d, want %d", val, p, q.PartOf(val))
			}
		}
	}
	for v := range pushed {
		if !got[v] {
			t.Fatalf("pushed value %d missing", v)
		}
	}
}

func TestSpatialQueueMismatchedPartitions(t *testing.T) {
	a := newAlloc(t, true, core.DefaultPolicy())
	v, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: 10000, Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	// P != B is supported (§4.2).
	q, err := NewSpatialQueue(a.RT, v, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 10000; i += 7 {
		if _, _, err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != int64((10000+6)/7) {
		t.Fatalf("Len %d", q.Len())
	}
}

func TestLinkedCSRRoundTrip(t *testing.T) {
	g := graph.Kronecker(9, 8, 21)
	for _, aff := range []bool{false, true} {
		a := newAlloc(t, aff, core.DefaultPolicy())
		prop, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: int64(g.N), Partition: true})
		if err != nil {
			t.Fatal(err)
		}
		lc, err := BuildLinkedCSR(a, g, prop)
		if err != nil {
			t.Fatal(err)
		}
		if err := lc.VerifyAgainst(a.Space()); err != nil {
			t.Fatal(err)
		}
		// Node count matches ceil(deg/14) summed.
		var want int64
		for u := int32(0); u < g.N; u++ {
			want += (g.Degree(u) + EdgesPerNode - 1) / EdgesPerNode
		}
		if lc.NumNodes() != want {
			t.Errorf("node count %d, want %d", lc.NumNodes(), want)
		}
	}
}

func TestLinkedCSRWeighted(t *testing.T) {
	g := graph.Kronecker(8, 6, 23)
	g.AddUniformWeights(1, 255, 23)
	a := newAlloc(t, true, core.DefaultPolicy())
	prop, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 8, NumElem: int64(g.N), Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := BuildLinkedCSR(a, g, prop)
	if err != nil {
		t.Fatal(err)
	}
	if !lc.Weighted() {
		t.Fatal("weighted graph built unweighted")
	}
	if err := lc.VerifyAgainst(a.Space()); err != nil {
		t.Fatal(err)
	}
	// Weights readable from memory: check one chain.
	u := g.MaxDegreeVertex()
	if len(lc.Chains[u]) > 0 {
		node := lc.Chains[u][0]
		w := int32(a.Space().ReadU32(node.Addr + 8 + 4))
		if w != node.Weights[0] {
			t.Errorf("weight in memory %d, mirror %d", w, node.Weights[0])
		}
	}
}

func TestLinkedCSRAffinityReducesDistance(t *testing.T) {
	g := graph.Kronecker(10, 10, 25)
	measure := func(aff bool) float64 {
		a := newAlloc(t, aff, core.PolicyConfig{Policy: core.Hybrid, H: 5})
		prop, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: int64(g.N), Partition: true})
		if err != nil {
			t.Fatal(err)
		}
		if !aff {
			// Mimic Near-L3: property array from the baseline allocator.
			base, err := a.RT.AllocBase(4 * int64(g.N))
			if err != nil {
				t.Fatal(err)
			}
			prop = &core.ArrayInfo{Base: base, ElemSize: 4, ElemStride: 4, NumElem: int64(g.N)}
		}
		lc, err := BuildLinkedCSR(a, g, prop)
		if err != nil {
			t.Fatal(err)
		}
		mesh := a.RT.Mesh()
		totHops, totEdges := 0, 0
		for u := int32(0); u < g.N; u++ {
			for _, node := range lc.Chains[u] {
				nb := a.RT.BankOf(node.Addr)
				for _, v := range node.Edges {
					totHops += mesh.Hops(nb, a.RT.BankOf(prop.ElemAddr(int64(v))))
					totEdges++
				}
			}
		}
		return float64(totHops) / float64(totEdges)
	}
	base := measure(false)
	opt := measure(true)
	if opt >= base*0.6 {
		t.Errorf("affinity layout avg indirect distance %.2f vs baseline %.2f — want >40%% reduction", opt, base)
	}
}

package dstruct

import (
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
)

// TestPrioQueueDrivesSSSP runs a priority-ordered SSSP over the spatial
// priority queue (the §4.2 use case: "Priority queues ... can also be
// implemented as one queue per bank") and checks it computes the same
// distances as the reference relaxation.
func TestPrioQueueDrivesSSSP(t *testing.T) {
	g := graph.Kronecker(10, 8, 3)
	g.AddUniformWeights(1, 255, 3)
	src := g.MaxDegreeVertex()
	ref := graph.SSSP(g, src)

	a := newAlloc(t, true, core.DefaultPolicy())
	v, err := a.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: int64(g.N), Partition: true})
	if err != nil {
		t.Fatal(err)
	}
	// Priorities are distances capped to int32; slack covers re-pushes.
	q, err := NewSpatialPriorityQueue(a.RT, v, 64, 8)
	if err != nil {
		t.Fatal(err)
	}

	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	dist[src] = 0
	if _, err := q.Push(src, 0); err != nil {
		t.Fatal(err)
	}
	pops := int64(0)
	for probe := int64(0); ; probe++ {
		u, prio, _, ok := q.PopMin(probe)
		if !ok {
			break
		}
		pops++
		if int64(prio) > dist[u] {
			continue // stale entry (lazy deletion)
		}
		for i := g.Index[u]; i < g.Index[u+1]; i++ {
			w := g.Edges[i]
			nd := dist[u] + int64(g.Weights[i])
			if nd < dist[w] {
				dist[w] = nd
				if _, err := q.Push(w, int32(nd)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for u := int32(0); u < g.N; u++ {
		if dist[u] != ref.Dist[u] {
			t.Fatalf("vertex %d: dist %d, want %d", u, dist[u], ref.Dist[u])
		}
	}
	// The relaxed pop order costs extra pops versus a strict PQ, but it
	// must stay within a small factor of the vertex count.
	if reached := countReached(ref.Dist); pops > 20*reached {
		t.Errorf("%d pops for %d reached vertices — relaxation too lossy", pops, reached)
	}
}

func countReached(dist []int64) int64 {
	var n int64
	for _, d := range dist {
		if d != graph.InfDist {
			n++
		}
	}
	return n
}

package dstruct

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

// GlobalQueue is the conventional shared work queue the Near-L3 graph
// workloads use: one tail counter (a single hot address) plus a storage
// array laid out by the baseline allocator.
type GlobalQueue struct {
	space *memsim.Space
	tail  memsim.Addr     // 8B counter
	data  *core.ArrayInfo // int32 slots
	cap   int64
}

// NewGlobalQueue builds a queue with cap int32 slots using the baseline
// allocator.
func NewGlobalQueue(rt *core.Runtime, cap int64) (*GlobalQueue, error) {
	tail, err := rt.AllocBase(8)
	if err != nil {
		return nil, err
	}
	base, err := rt.AllocBase(4 * cap)
	if err != nil {
		return nil, err
	}
	q := &GlobalQueue{
		space: rt.Space(),
		tail:  tail,
		data:  &core.ArrayInfo{Base: base, ElemSize: 4, ElemStride: 4, NumElem: cap},
		cap:   cap,
	}
	q.Reset()
	return q, nil
}

// Reset empties the queue.
func (q *GlobalQueue) Reset() { q.space.WriteU64(q.tail, 0) }

// Len returns the element count.
func (q *GlobalQueue) Len() int64 { return int64(q.space.ReadU64(q.tail)) }

// TailAddr returns the tail counter's address (the contended line).
func (q *GlobalQueue) TailAddr() memsim.Addr { return q.tail }

// SlotAddr returns the address of slot i.
func (q *GlobalQueue) SlotAddr(i int64) memsim.Addr { return q.data.ElemAddr(i) }

// Push appends v, returning the tail counter address and the written
// slot address for timing replay.
func (q *GlobalQueue) Push(v int32) (tailAddr, slotAddr memsim.Addr, err error) {
	idx := int64(q.space.ReadU64(q.tail))
	if idx >= q.cap {
		return 0, 0, fmt.Errorf("dstruct: global queue overflow (%d)", q.cap)
	}
	q.space.WriteU64(q.tail, uint64(idx+1))
	slotAddr = q.data.ElemAddr(idx)
	q.space.WriteU32(slotAddr, uint32(v))
	return q.tail, slotAddr, nil
}

// Get reads slot i.
func (q *GlobalQueue) Get(i int64) int32 { return int32(q.space.ReadU32(q.data.ElemAddr(i))) }

// SpatialQueue is the spatially distributed work queue of Fig 9: one
// sub-queue per partition of an aligned vertex array, with the sub-queue
// storage and tail counter colocated with the vertices they index, so a
// push lands on the bank that just updated the vertex.
type SpatialQueue struct {
	space    *memsim.Space
	parts    int64
	perPart  int64
	numElems int64
	data     *core.ArrayInfo // int32 slots, aligned to the vertex array
	tails    *core.ArrayInfo // int64 tails, one per partition
}

// NewSpatialQueue builds a queue aligned to the partitioned array vInfo
// (one sub-queue per partition; parts should normally equal the bank
// count — mismatch is supported per §4.2 but balances worse). slack
// scales each sub-queue's capacity beyond its partition's vertex count,
// for workloads that push a vertex more than once (sssp).
func NewSpatialQueue(rt *core.Runtime, vInfo *core.ArrayInfo, parts, slack int64) (*SpatialQueue, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("dstruct: invalid partition count %d", parts)
	}
	if slack < 1 {
		slack = 1
	}
	n := vInfo.NumElem
	vertsPerPart := (n + parts - 1) / parts
	perPart := vertsPerPart * slack
	// Q aligned to V so that slot j of partition p — Q[p*perPart+j] —
	// lies with partition p's vertices (Fig 9): Q[i] aligns V[i/slack].
	data, err := rt.AllocAffine(core.AffineSpec{
		ElemSize: 4, NumElem: parts * perPart,
		AlignTo: vInfo.Base, AlignP: 1, AlignQ: int(slack),
	})
	if err != nil {
		return nil, err
	}
	// T[parts] with T[p] aligned to V[p*N/parts].
	tails, err := rt.AllocAffine(core.AffineSpec{
		ElemSize: 8, NumElem: parts,
		AlignTo: vInfo.Base, AlignP: int(vertsPerPart), AlignQ: 1,
	})
	if err != nil {
		return nil, err
	}
	q := &SpatialQueue{
		space:    rt.Space(),
		parts:    parts,
		perPart:  perPart,
		numElems: n,
		data:     data,
		tails:    tails,
	}
	q.Reset()
	return q, nil
}

// Reset empties all sub-queues.
func (q *SpatialQueue) Reset() {
	for p := int64(0); p < q.parts; p++ {
		q.space.WriteU64(q.tails.ElemAddr(p), 0)
	}
}

// Parts returns the partition count.
func (q *SpatialQueue) Parts() int64 { return q.parts }

// PartOf returns the partition owning vertex v.
func (q *SpatialQueue) PartOf(v int32) int64 {
	p := int64(v) * q.parts / q.numElems
	if p >= q.parts {
		p = q.parts - 1
	}
	return p
}

// TailAddr returns partition p's tail counter address.
func (q *SpatialQueue) TailAddr(p int64) memsim.Addr { return q.tails.ElemAddr(p) }

// Push appends v to its partition's sub-queue, returning the tail and
// slot addresses for timing replay.
func (q *SpatialQueue) Push(v int32) (tailAddr, slotAddr memsim.Addr, err error) {
	p := q.PartOf(v)
	tailAddr = q.tails.ElemAddr(p)
	idx := int64(q.space.ReadU64(tailAddr))
	if idx >= q.perPart {
		return 0, 0, fmt.Errorf("dstruct: sub-queue %d overflow (%d)", p, q.perPart)
	}
	q.space.WriteU64(tailAddr, uint64(idx+1))
	slotAddr = q.data.ElemAddr(p*q.perPart + idx)
	q.space.WriteU32(slotAddr, uint32(v))
	return tailAddr, slotAddr, nil
}

// Lens returns the per-partition element counts.
func (q *SpatialQueue) Lens() []int64 {
	out := make([]int64, q.parts)
	for p := int64(0); p < q.parts; p++ {
		out[p] = int64(q.space.ReadU64(q.tails.ElemAddr(p)))
	}
	return out
}

// Len returns the total element count.
func (q *SpatialQueue) Len() int64 {
	var total int64
	for _, l := range q.Lens() {
		total += l
	}
	return total
}

// Get reads slot i of partition p.
func (q *SpatialQueue) Get(p, i int64) int32 {
	return int32(q.space.ReadU32(q.data.ElemAddr(p*q.perPart + i)))
}

// SlotAddr returns the address of slot i of partition p.
func (q *SpatialQueue) SlotAddr(p, i int64) memsim.Addr {
	return q.data.ElemAddr(p*q.perPart + i)
}

// Info exposes the queue's storage array layout (for preloading).
func (q *SpatialQueue) Info() *core.ArrayInfo { return q.data }

// TailsInfo exposes the tails array layout (for preloading).
func (q *SpatialQueue) TailsInfo() *core.ArrayInfo { return q.tails }

// Package dstruct implements the data structures the paper allocates with
// affinity — linked lists, binary search trees, chained hash tables — and
// the two co-designed structures of §4.2/§5.3: the spatially distributed
// queue and the Linked CSR graph format. Every structure lives in
// simulated memory (values are really stored and read back) and exposes
// node addresses so the timed workloads can replay traversals through the
// stream engines or cores.
package dstruct

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

// Alloc abstracts over the affinity allocator and the baseline allocator
// so each structure is written once and run under every configuration.
type Alloc struct {
	RT *core.Runtime
	// Affinity selects the affinity API; false uses the baseline
	// allocator and ignores affinity hints.
	Affinity bool
}

// Near allocates size bytes near the hint addresses (ignored without
// affinity).
func (a Alloc) Near(size int64, hints []memsim.Addr) (memsim.Addr, error) {
	if a.Affinity {
		return a.RT.AllocNear(size, hints)
	}
	return a.RT.AllocBase(size)
}

// Space returns the backing address space.
func (a Alloc) Space() *memsim.Space { return a.RT.Space() }

// ListNodeBytes is a list node's footprint: 8B key + 8B next.
const ListNodeBytes = 16

// List is a singly linked list of uint64 keys. With affinity, each node
// is allocated near its predecessor (the Fig 10 running example).
type List struct {
	alloc      Alloc
	head, tail memsim.Addr
	n          int
}

// NewList builds an empty list.
func NewList(alloc Alloc) *List { return &List{alloc: alloc} }

// Len returns the number of nodes.
func (l *List) Len() int { return l.n }

// Head returns the first node's address (0 when empty).
func (l *List) Head() memsim.Addr { return l.head }

// Append adds a key at the tail, allocated near the current tail.
func (l *List) Append(key uint64) (memsim.Addr, error) {
	var hints []memsim.Addr
	if l.tail != 0 {
		hints = []memsim.Addr{l.tail}
	}
	addr, err := l.alloc.Near(ListNodeBytes, hints)
	if err != nil {
		return 0, err
	}
	sp := l.alloc.Space()
	sp.WriteU64(addr, key)
	sp.WriteAddr(addr+8, 0)
	if l.tail != 0 {
		sp.WriteAddr(l.tail+8, addr)
	} else {
		l.head = addr
	}
	l.tail = addr
	l.n++
	return addr, nil
}

// Next reads a node's successor.
func (l *List) Next(addr memsim.Addr) memsim.Addr {
	return l.alloc.Space().ReadAddr(addr + 8)
}

// Key reads a node's key.
func (l *List) Key(addr memsim.Addr) uint64 {
	return l.alloc.Space().ReadU64(addr)
}

// Walk visits nodes head-to-tail until fn returns false.
func (l *List) Walk(fn func(addr memsim.Addr, key uint64) bool) {
	for addr := l.head; addr != 0; addr = l.Next(addr) {
		if !fn(addr, l.Key(addr)) {
			return
		}
	}
}

// BSTNodeBytes is a tree node's footprint: key + left + right.
const BSTNodeBytes = 24

// BST is an unbalanced binary search tree (the bin_tree workload inserts
// random keys without rebalancing, per §6).
type BST struct {
	alloc Alloc
	root  memsim.Addr
	n     int
}

// NewBST builds an empty tree.
func NewBST(alloc Alloc) *BST { return &BST{alloc: alloc} }

// Len returns the node count.
func (t *BST) Len() int { return t.n }

// Root returns the root address (0 when empty).
func (t *BST) Root() memsim.Addr { return t.root }

// Node reads a tree node.
func (t *BST) Node(addr memsim.Addr) (key uint64, left, right memsim.Addr) {
	sp := t.alloc.Space()
	return sp.ReadU64(addr), sp.ReadAddr(addr + 8), sp.ReadAddr(addr + 16)
}

// Insert adds a key (duplicates are dropped), allocating the new node
// near its parent.
func (t *BST) Insert(key uint64) error {
	sp := t.alloc.Space()
	if t.root == 0 {
		addr, err := t.alloc.Near(BSTNodeBytes, nil)
		if err != nil {
			return err
		}
		sp.WriteU64(addr, key)
		sp.WriteAddr(addr+8, 0)
		sp.WriteAddr(addr+16, 0)
		t.root = addr
		t.n++
		return nil
	}
	cur := t.root
	for {
		k, l, r := t.Node(cur)
		switch {
		case key == k:
			return nil
		case key < k:
			if l == 0 {
				addr, err := t.alloc.Near(BSTNodeBytes, []memsim.Addr{cur})
				if err != nil {
					return err
				}
				sp.WriteU64(addr, key)
				sp.WriteAddr(addr+8, 0)
				sp.WriteAddr(addr+16, 0)
				sp.WriteAddr(cur+8, addr)
				t.n++
				return nil
			}
			cur = l
		default:
			if r == 0 {
				addr, err := t.alloc.Near(BSTNodeBytes, []memsim.Addr{cur})
				if err != nil {
					return err
				}
				sp.WriteU64(addr, key)
				sp.WriteAddr(addr+8, 0)
				sp.WriteAddr(addr+16, 0)
				sp.WriteAddr(cur+16, addr)
				t.n++
				return nil
			}
			cur = r
		}
	}
}

// SearchPath returns the node addresses visited looking up key, and
// whether it was found — the trace the timed workload replays.
func (t *BST) SearchPath(key uint64, path []memsim.Addr) ([]memsim.Addr, bool) {
	cur := t.root
	for cur != 0 {
		path = append(path, cur)
		k, l, r := t.Node(cur)
		switch {
		case key == k:
			return path, true
		case key < k:
			cur = l
		default:
			cur = r
		}
	}
	return path, false
}

// HashNodeBytes is a chain node's footprint: key + value + next.
const HashNodeBytes = 24

// HashTable is a chained hash table. The bucket-head array is allocated
// with the affine API (partitioned across banks); chain nodes are
// allocated near their bucket head.
type HashTable struct {
	alloc   Alloc
	buckets *core.ArrayInfo // one Addr per bucket
	nb      int64
	n       int
}

// NewHashTable builds a table with nb buckets.
func NewHashTable(alloc Alloc, nb int64) (*HashTable, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("dstruct: invalid bucket count %d", nb)
	}
	spec := core.AffineSpec{ElemSize: 8, NumElem: nb, Partition: true}
	var buckets *core.ArrayInfo
	var err error
	if alloc.Affinity {
		buckets, err = alloc.RT.AllocAffine(spec)
	} else {
		var base memsim.Addr
		base, err = alloc.RT.AllocBase(8 * nb)
		buckets = &core.ArrayInfo{Base: base, ElemSize: 8, ElemStride: 8, NumElem: nb}
	}
	if err != nil {
		return nil, err
	}
	sp := alloc.Space()
	for i := int64(0); i < nb; i++ {
		sp.WriteAddr(buckets.ElemAddr(i), 0)
	}
	return &HashTable{alloc: alloc, buckets: buckets, nb: nb}, nil
}

// Hash is the table's (split-mix style) hash function, exported so
// workloads can compute bucket indexes consistently.
func Hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// Buckets returns the bucket count.
func (h *HashTable) Buckets() int64 { return h.nb }

// Len returns the number of inserted keys.
func (h *HashTable) Len() int { return h.n }

// BucketAddr returns the address of bucket i's head pointer.
func (h *HashTable) BucketAddr(i int64) memsim.Addr { return h.buckets.ElemAddr(i) }

// BucketOf returns key's bucket index.
func (h *HashTable) BucketOf(key uint64) int64 { return int64(Hash(key) % uint64(h.nb)) }

// Insert prepends (key, value) to its bucket's chain, allocating the node
// near the bucket head slot.
func (h *HashTable) Insert(key, value uint64) error {
	sp := h.alloc.Space()
	slot := h.BucketAddr(h.BucketOf(key))
	head := sp.ReadAddr(slot)
	addr, err := h.alloc.Near(HashNodeBytes, []memsim.Addr{slot})
	if err != nil {
		return err
	}
	sp.WriteU64(addr, key)
	sp.WriteU64(addr+8, value)
	sp.WriteAddr(addr+16, head)
	sp.WriteAddr(slot, addr)
	h.n++
	return nil
}

// ProbePath returns the bucket slot address, the chain node addresses
// visited probing for key, the value, and whether it was found.
func (h *HashTable) ProbePath(key uint64, path []memsim.Addr) (slot memsim.Addr, outPath []memsim.Addr, value uint64, ok bool) {
	sp := h.alloc.Space()
	slot = h.BucketAddr(h.BucketOf(key))
	for addr := sp.ReadAddr(slot); addr != 0; addr = sp.ReadAddr(addr + 16) {
		path = append(path, addr)
		if sp.ReadU64(addr) == key {
			return slot, path, sp.ReadU64(addr + 8), true
		}
	}
	return slot, path, 0, false
}

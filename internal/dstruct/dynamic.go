package dstruct

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

// This file implements the §8 extension: dynamic linked CSR. The paper
// leaves evolving graphs as future work but observes that pointer-based
// formats like linked CSR "can naturally benefit from the improved
// spatial locality from affinity alloc without extra preprocessing" —
// inserting an edge is appending to (or allocating near) the right
// chain, and deleting is an in-node compaction.
//
// After any mutation the Go-side mirror and the simulated memory are
// kept in lockstep; VerifyDynamic checks them against a reference edge
// multiset.

// edgeCap returns the node's edge capacity.
func (lc *LinkedCSR) edgeCap() int {
	if lc.weighted {
		return (lc.NodeBytes() - 8) / 8
	}
	return (lc.NodeBytes() - 8) / 4
}

// edgeStride returns bytes per edge slot.
func (lc *LinkedCSR) edgeStride() memsim.Addr {
	if lc.weighted {
		return 8
	}
	return 4
}

// writeEdgeSlot materializes edge k of the node at addr.
func (lc *LinkedCSR) writeEdgeSlot(sp *memsim.Space, addr memsim.Addr, k int, v, weight int32) {
	off := addr + 8 + memsim.Addr(k)*lc.edgeStride()
	sp.WriteU32(off, uint32(v))
	if lc.weighted {
		sp.WriteU32(off+4, uint32(weight))
	}
}

// clearEdgeSlot writes the -1 terminator into slot k.
func (lc *LinkedCSR) clearEdgeSlot(sp *memsim.Space, addr memsim.Addr, k int) {
	off := addr + 8 + memsim.Addr(k)*lc.edgeStride()
	sp.WriteU32(off, ^uint32(0))
}

// ownNode gives node its own edge storage (the builder shares slices
// with the original CSR arrays; mutation must not corrupt them).
func (n *CSRNode) ownNode(weighted bool, cap int) {
	if n.owned {
		return
	}
	edges := make([]int32, len(n.Edges), cap)
	copy(edges, n.Edges)
	n.Edges = edges
	if weighted {
		weights := make([]int32, len(n.Weights), cap)
		copy(weights, n.Weights)
		n.Weights = weights
	}
	n.owned = true
}

// InsertEdge adds edge u→v. If u's tail node has room the edge is
// appended in place; otherwise a fresh node is allocated with affinity
// to prop[v] (exactly the allocation the static builder performs) and
// linked at the tail. The alloc must be the one the structure was built
// with.
func (lc *LinkedCSR) InsertEdge(alloc Alloc, prop *core.ArrayInfo, u, v, weight int32) error {
	if u < 0 || u >= lc.G.N || v < 0 || v >= lc.G.N {
		return fmt.Errorf("dstruct: edge %d->%d out of range", u, v)
	}
	sp := alloc.Space()
	cap := lc.edgeCap()
	chain := lc.Chains[u]

	if len(chain) > 0 {
		tail := &lc.Chains[u][len(chain)-1]
		if len(tail.Edges) < cap {
			tail.ownNode(lc.weighted, cap)
			lc.writeEdgeSlot(sp, tail.Addr, len(tail.Edges), v, weight)
			tail.Edges = append(tail.Edges, v)
			if lc.weighted {
				tail.Weights = append(tail.Weights, weight)
			}
			return nil
		}
	}

	// Allocate a new tail node near the property entry its edge targets.
	var hints []memsim.Addr
	if alloc.Affinity && prop != nil {
		hints = []memsim.Addr{prop.ElemAddr(int64(v))}
	}
	addr, err := alloc.Near(int64(lc.NodeBytes()), hints)
	if err != nil {
		return err
	}
	sp.WriteAddr(addr, 0)
	lc.writeEdgeSlot(sp, addr, 0, v, weight)
	for k := 1; k < cap; k++ {
		lc.clearEdgeSlot(sp, addr, k)
	}
	node := CSRNode{Addr: addr, Edges: []int32{v}, owned: true}
	if lc.weighted {
		node.Weights = []int32{weight}
	}
	if len(chain) > 0 {
		sp.WriteAddr(lc.Chains[u][len(chain)-1].Addr, addr)
	} else {
		lc.Heads[u] = addr
	}
	lc.Chains[u] = append(lc.Chains[u], node)
	return nil
}

// DeleteEdge removes one u→v edge (the first found), compacting within
// its node. A node left empty is unlinked and freed back to the
// allocator, whose per-bank free lists make the space immediately
// reusable with the same affinity. It reports whether an edge was
// removed.
func (lc *LinkedCSR) DeleteEdge(alloc Alloc, u, v int32) (bool, error) {
	if u < 0 || u >= lc.G.N {
		return false, fmt.Errorf("dstruct: vertex %d out of range", u)
	}
	sp := alloc.Space()
	cap := lc.edgeCap()
	chain := lc.Chains[u]
	for ni := range chain {
		node := &lc.Chains[u][ni]
		for k, e := range node.Edges {
			if e != v {
				continue
			}
			node.ownNode(lc.weighted, cap)
			last := len(node.Edges) - 1
			// Swap-remove within the node, in memory and mirror.
			if k != last {
				w := int32(0)
				if lc.weighted {
					w = node.Weights[last]
					node.Weights[k] = w
				}
				node.Edges[k] = node.Edges[last]
				lc.writeEdgeSlot(sp, node.Addr, k, node.Edges[last], w)
			}
			lc.clearEdgeSlot(sp, node.Addr, last)
			node.Edges = node.Edges[:last]
			if lc.weighted {
				node.Weights = node.Weights[:last]
			}
			if len(node.Edges) == 0 {
				if err := lc.unlinkNode(alloc, u, ni); err != nil {
					return false, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

// unlinkNode removes chain node ni of vertex u and frees its storage.
func (lc *LinkedCSR) unlinkNode(alloc Alloc, u int32, ni int) error {
	sp := alloc.Space()
	chain := lc.Chains[u]
	node := chain[ni]
	nextAddr := memsim.Addr(0)
	if ni+1 < len(chain) {
		nextAddr = chain[ni+1].Addr
	}
	if ni == 0 {
		lc.Heads[u] = nextAddr
	} else {
		sp.WriteAddr(chain[ni-1].Addr, nextAddr)
	}
	lc.Chains[u] = append(chain[:ni], chain[ni+1:]...)
	if alloc.Affinity {
		return alloc.RT.Free(node.Addr)
	}
	// Baseline allocations are not individually reclaimable here; the
	// space is simply abandoned (as a bump-allocated heap would).
	return nil
}

// DynamicEdges returns vertex u's current edge list (mirror view; do not
// modify).
func (lc *LinkedCSR) DynamicEdges(u int32) []int32 {
	var out []int32
	for _, n := range lc.Chains[u] {
		out = append(out, n.Edges...)
	}
	return out
}

// DynamicDegree returns u's current degree.
func (lc *LinkedCSR) DynamicDegree(u int32) int {
	d := 0
	for _, n := range lc.Chains[u] {
		d += len(n.Edges)
	}
	return d
}

// VerifyDynamic checks mirror and simulated memory agree for vertex u
// and returns its in-memory edge list.
func (lc *LinkedCSR) VerifyDynamic(sp *memsim.Space, u int32) ([]int32, error) {
	cap := lc.edgeCap()
	stride := lc.edgeStride()
	var fromMem []int32
	addr := lc.Heads[u]
	for addr != 0 {
		off := addr + 8
		for i := 0; i < cap; i++ {
			v := int32(sp.ReadU32(off))
			if v == -1 {
				break
			}
			fromMem = append(fromMem, v)
			off += stride
		}
		addr = sp.ReadAddr(addr)
	}
	mirror := lc.DynamicEdges(u)
	if len(fromMem) != len(mirror) {
		return nil, fmt.Errorf("dstruct: vertex %d has %d edges in memory, %d in mirror", u, len(fromMem), len(mirror))
	}
	for i := range mirror {
		if fromMem[i] != mirror[i] {
			return nil, fmt.Errorf("dstruct: vertex %d edge %d: memory %d, mirror %d", u, i, fromMem[i], mirror[i])
		}
	}
	return fromMem, nil
}

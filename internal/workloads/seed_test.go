package workloads

import (
	"testing"

	"affinityalloc/internal/graph"
	"affinityalloc/internal/sys"
)

// TestSeedVariesWorkloadInputs: the pointer-chasing and dynamic-graph
// generators used to hardcode their RNG seeds, so `-seed N` never
// changed their inputs. Each must now be reproducible per seed yet
// differ across seeds.
func TestSeedVariesWorkloadInputs(t *testing.T) {
	runWith := func(t *testing.T, w Workload, seed int64) Result {
		t.Helper()
		cfg := sys.DefaultConfig()
		cfg.Seed = seed
		r, err := Run(cfg, w, sys.InCore)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, tc := range []struct {
		name string
		w    Workload
	}{
		{"link_list", LinkList{Lists: 16, Nodes: 32, Queries: 2, MissRate: 0.3}},
		{"hash_join", HashJoin{BuildRows: 1 << 10, ProbeRows: 1 << 11, Buckets: 1 << 8, HitRate: 0.25}},
		{"bin_tree", BinTree{Keys: 1 << 9, Lookups: 1 << 10}},
		{"dyn_graph", DynGraph{G: graph.Kronecker(8, 4, 42), Batches: 1, UpdatesPerBatch: 128}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a1 := runWith(t, tc.w, 1)
			a2 := runWith(t, tc.w, 1)
			b := runWith(t, tc.w, 2)
			if a1.Checksum != a2.Checksum {
				t.Errorf("seed 1 not reproducible: %x vs %x", a1.Checksum, a2.Checksum)
			}
			if a1.Metrics.Cycles != a2.Metrics.Cycles {
				t.Errorf("seed 1 cycles not reproducible: %d vs %d", a1.Metrics.Cycles, a2.Metrics.Cycles)
			}
			if a1.Checksum == b.Checksum {
				t.Errorf("seed 2 produced the same checksum %x as seed 1 — seed not plumbed", b.Checksum)
			}
		})
	}
}

package workloads

import (
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/sys"
)

// tinyWorkloads returns every benchmark at sizes that run in
// milliseconds.
func tinyWorkloads() []Workload {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	wg := graph.Kronecker(11, 8, 42)
	wg.AddUniformWeights(1, 255, 42)
	return []Workload{
		VecAdd{N: 1 << 15, ForceDelta: -1},
		Pathfinder{Cols: 16 * 1024, Steps: 2},
		NewHotspot(64, 512, 2),
		NewSrad(32, 512, 1),
		Hotspot3D{Rows: 16, Cols: 256, Layers: 4, Iters: 2},
		PageRank{G: g, GT: gt, Iters: 2, Best: true},
		PageRank{G: g, GT: gt, Iters: 2, Dir: graph.Push},
		PageRank{G: g, GT: gt, Iters: 2, Dir: graph.Pull},
		BFS{G: g, GT: gt, Src: -1},
		BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1},
		BFS{G: g, GT: gt, Policy: graph.PullOnly{}, Src: -1},
		SSSP{G: wg, Src: -1},
		LinkList{Lists: 60, Nodes: 64, Queries: 1},
		HashJoin{BuildRows: 4 << 10, ProbeRows: 8 << 10, Buckets: 1 << 10, HitRate: 0.125},
		BinTree{Keys: 4 << 10, Lookups: 8 << 10},
	}
}

// TestCrossModeChecksums is the core functional guarantee: every
// configuration — different layouts, different data structures, different
// execution engines — computes the identical result.
func TestCrossModeChecksums(t *testing.T) {
	for _, w := range tinyWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			var base Result
			for i, mode := range sys.Modes {
				res, err := Run(sys.DefaultConfig(), w, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if res.Metrics.Cycles == 0 {
					t.Errorf("%v: zero cycles", mode)
				}
				if i == 0 {
					base = res
				} else if res.Checksum != base.Checksum {
					t.Errorf("%v checksum %x != In-Core %x", mode, res.Checksum, base.Checksum)
				}
			}
		})
	}
}

// TestDeterminism: identical configuration and seed give bit-identical
// metrics.
func TestDeterminism(t *testing.T) {
	w := BFS{G: graph.Kronecker(11, 8, 42), GT: nil, Policy: graph.PushOnly{}, Src: -1}
	r1, err := Run(sys.DefaultConfig(), w, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sys.DefaultConfig(), w, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.Cycles != r2.Metrics.Cycles || r1.Metrics.FlitHops != r2.Metrics.FlitHops {
		t.Errorf("nondeterministic: %v/%v vs %v/%v",
			r1.Metrics.Cycles, r1.Metrics.FlitHops, r2.Metrics.Cycles, r2.Metrics.FlitHops)
	}
}

// TestAffinityImprovesOverOblivious asserts the headline direction: the
// affinity configuration beats the oblivious one on the workloads where
// the paper's effect is structural (aligned affine kernels, colocated
// pointer chasing, local graph pushes).
func TestAffinityImprovesOverOblivious(t *testing.T) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	ws := []Workload{
		VecAdd{N: 1 << 15, ForceDelta: -1},
		Pathfinder{Cols: 16 * 1024, Steps: 2},
		NewHotspot(64, 512, 2),
		BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1},
		LinkList{Lists: 60, Nodes: 64, Queries: 1},
		HashJoin{BuildRows: 4 << 10, ProbeRows: 8 << 10, Buckets: 1 << 10, HitRate: 0.125},
		BinTree{Keys: 4 << 10, Lookups: 8 << 10},
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			near, err := Run(sys.DefaultConfig(), w, sys.NearL3)
			if err != nil {
				t.Fatal(err)
			}
			aff, err := Run(sys.DefaultConfig(), w, sys.AffAlloc)
			if err != nil {
				t.Fatal(err)
			}
			if aff.Metrics.Cycles >= near.Metrics.Cycles {
				t.Errorf("Aff-Alloc %d cycles >= Near-L3 %d", aff.Metrics.Cycles, near.Metrics.Cycles)
			}
			if aff.Metrics.FlitHops >= near.Metrics.FlitHops {
				t.Errorf("Aff-Alloc traffic %d >= Near-L3 %d", aff.Metrics.FlitHops, near.Metrics.FlitHops)
			}
		})
	}
}

// TestVecAddAlignmentEliminatesDataTraffic: with perfect alignment the
// forwarding traffic disappears entirely (Fig 3c).
func TestVecAddAlignmentEliminatesDataTraffic(t *testing.T) {
	res, err := Run(sys.DefaultConfig(), VecAdd{N: 1 << 15, ForceDelta: -1}, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	d, _, _ := res.Metrics.DataHops()
	if d != 0 {
		t.Errorf("aligned vecadd still moved %d data flit-hops", d)
	}
}

// TestVecAddDeltaSweep: the forced-misalignment sweep behaves like Fig 4
// — aligned is fastest and every NSC point beats In-Core.
func TestVecAddDeltaSweep(t *testing.T) {
	cfg := sys.DefaultConfig()
	inCore, err := Run(cfg, VecAdd{N: 1 << 15, ForceDelta: -1}, sys.InCore)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := Run(cfg, VecAdd{N: 1 << 15, ForceDelta: 0}, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []int{4, 20, 36} {
		r, err := Run(cfg, VecAdd{N: 1 << 15, ForceDelta: delta}, sys.AffAlloc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.Cycles < aligned.Metrics.Cycles {
			t.Errorf("Δ%d (%d cycles) beat aligned (%d)", delta, r.Metrics.Cycles, aligned.Metrics.Cycles)
		}
		if r.Metrics.Cycles > inCore.Metrics.Cycles {
			t.Errorf("Δ%d (%d cycles) slower than In-Core (%d)", delta, r.Metrics.Cycles, inCore.Metrics.Cycles)
		}
	}
}

// TestBFSPushPullTradeoff: offloading shifts the push/pull trade-off
// toward pushing (§7.2) — the push:pull cost ratio shrinks from In-Core
// to the NSC configurations.
func TestBFSPushPullTradeoff(t *testing.T) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	ratio := func(mode sys.Mode) float64 {
		push, err := Run(sys.DefaultConfig(), BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1}, mode)
		if err != nil {
			t.Fatal(err)
		}
		pull, err := Run(sys.DefaultConfig(), BFS{G: g, GT: gt, Policy: graph.PullOnly{}, Src: -1}, mode)
		if err != nil {
			t.Fatal(err)
		}
		return float64(push.Metrics.Cycles) / float64(pull.Metrics.Cycles)
	}
	inCore := ratio(sys.InCore)
	aff := ratio(sys.AffAlloc)
	if aff >= inCore {
		t.Errorf("push:pull cost ratio In-Core %.2f vs Aff-Alloc %.2f — offloading should favor pushing", inCore, aff)
	}
}

// TestMinHopPathologyOnTree reproduces Fig 13's key negative result: pure
// affinity placement collapses on a tree because everything lands on the
// root's bank.
func TestMinHopPathologyOnTree(t *testing.T) {
	w := BinTree{Keys: 4 << 10, Lookups: 8 << 10}
	run := func(p core.PolicyConfig) Result {
		cfg := sys.DefaultConfig()
		cfg.Policy = p
		res, err := Run(cfg, w, sys.AffAlloc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	minHop := run(core.PolicyConfig{Policy: core.MinHop})
	hybrid := run(core.PolicyConfig{Policy: core.Hybrid, H: 5})
	if minHop.Metrics.Cycles < 2*hybrid.Metrics.Cycles {
		t.Errorf("Min-Hop (%d cycles) not pathological vs Hybrid-5 (%d)", minHop.Metrics.Cycles, hybrid.Metrics.Cycles)
	}
}

// TestSpatialQueueBeatsGlobal: the Fig-9 co-design pays off — a global
// queue under the same affinity layout costs more traffic.
func TestSpatialQueueBeatsGlobal(t *testing.T) {
	g := graph.Kronecker(11, 8, 42)
	gt := g.Transpose()
	spatial, err := Run(sys.DefaultConfig(), BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1}, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(sys.DefaultConfig(), BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1, ForceGlobalQueue: true}, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if spatial.Checksum != global.Checksum {
		t.Error("queue choice changed the BFS result")
	}
	if spatial.Metrics.FlitHops >= global.Metrics.FlitHops {
		t.Errorf("spatial queue traffic %d >= global %d", spatial.Metrics.FlitHops, global.Metrics.FlitHops)
	}
}

// TestEdgeOracleReducesIndirectTraffic: the Fig-6 oracle placements cut
// traffic monotonically-ish with finer chunks and the ideal bound is the
// lowest.
func TestEdgeOracleReducesIndirectTraffic(t *testing.T) {
	// The property array must span enough banks for placement to have
	// leverage; a tiny graph's 8kB level array touches only 8 banks.
	g := graph.Kronecker(13, 10, 42)
	run := func(oracle *EdgeOracle) Result {
		w := BFS{G: g, GT: nil, Policy: graph.PushOnly{}, Src: -1, Oracle: oracle}
		res, err := Run(sys.DefaultConfig(), w, sys.NearL3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	fine := run(&EdgeOracle{ChunkBytes: 64})
	ideal := run(&EdgeOracle{ChunkBytes: 0})
	if base.Checksum != fine.Checksum || base.Checksum != ideal.Checksum {
		t.Fatal("oracle changed the result")
	}
	if fine.Metrics.FlitHops >= base.Metrics.FlitHops {
		t.Errorf("64B oracle traffic %d >= base %d", fine.Metrics.FlitHops, base.Metrics.FlitHops)
	}
	if ideal.Metrics.FlitHops >= fine.Metrics.FlitHops {
		t.Errorf("ideal traffic %d >= 64B oracle %d", ideal.Metrics.FlitHops, fine.Metrics.FlitHops)
	}
}

// TestPointerWorkloadsLoadBalance: Hybrid spreads irregular allocations
// while keeping per-structure affinity.
func TestPointerWorkloadsLoadBalance(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig())
	w := LinkList{Lists: 60, Nodes: 64, Queries: 1}
	if _, err := w.Run(s, sys.AffAlloc); err != nil {
		t.Fatal(err)
	}
	loads := s.RT.LoadVector()
	nonzero := 0
	for _, l := range loads {
		if l > 0 {
			nonzero++
		}
	}
	if nonzero < 32 {
		t.Errorf("irregular allocations on only %d banks", nonzero)
	}
}

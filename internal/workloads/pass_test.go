package workloads

import (
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/sys"
)

// buildAligned allocates an affinity-aligned operand/output pair.
func buildAligned(t *testing.T, s *sys.System, n int64) (*core.ArrayInfo, *core.ArrayInfo) {
	t.Helper()
	a, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: n})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RT.AllocAffine(core.AffineSpec{ElemSize: 4, NumElem: n, AlignTo: a.Base})
	if err != nil {
		t.Fatal(err)
	}
	s.PreloadArray(a)
	s.PreloadArray(b)
	return a, b
}

func TestPassAlignedProducesNoDataTraffic(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig())
	a, b := buildAligned(t, s, 1<<14)
	p := pass{ops: []operand{{arr: a}}, out: b, n: 1 << 14, weight: 1}
	finish := p.runNSC(s, 0)
	if finish == 0 {
		t.Fatal("pass did not advance time")
	}
	d, _, _ := s.Collect(finish).DataHops()
	if d != 0 {
		t.Errorf("aligned pass moved %d data flit-hops", d)
	}
}

func TestPassBarriersCompose(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig())
	a, b := buildAligned(t, s, 1<<13)
	p := pass{ops: []operand{{arr: a}}, out: b, n: 1 << 13, weight: 1}
	t1 := p.runNSC(s, 0)
	t2 := p.runNSC(s, t1)
	if t2 <= t1 {
		t.Errorf("second pass finished at %d, not after barrier %d", t2, t1)
	}
}

func TestPassInCoreVsNSCSameChecksum(t *testing.T) {
	// The pass engine is timing-only; this asserts both paths complete
	// and produce sane metric structure on the same allocation pattern.
	for _, mode := range []sys.Mode{sys.InCore, sys.NearL3} {
		s := sys.MustNew(sys.DefaultConfig())
		base, err := s.RT.AllocBase(4 * (1 << 13))
		if err != nil {
			t.Fatal(err)
		}
		arr := &core.ArrayInfo{Base: base, ElemSize: 4, ElemStride: 4, NumElem: 1 << 13}
		out, err := s.RT.AllocBase(4 * (1 << 13))
		if err != nil {
			t.Fatal(err)
		}
		outArr := &core.ArrayInfo{Base: out, ElemSize: 4, ElemStride: 4, NumElem: 1 << 13}
		s.PreloadArray(arr)
		s.PreloadArray(outArr)
		p := pass{ops: []operand{{arr: arr}}, out: outArr, n: 1 << 13, weight: 1}
		if finish := p.run(s, mode, 0); finish == 0 {
			t.Errorf("%v pass did not run", mode)
		}
	}
}

func TestReduceTreeLatency(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig())
	done := reduceTree(s, 100)
	if done <= 100 {
		t.Error("reduction cost nothing")
	}
	// log2(64) = 6 levels; each a few hops: bounded well under 200.
	if done > 300 {
		t.Errorf("tree reduction took %d cycles", done-100)
	}
	// Control traffic only.
	m := s.Collect(done)
	d, c, _ := m.DataHops()
	if d != 0 || c == 0 {
		t.Errorf("reduction traffic d=%d c=%d", d, c)
	}
}

func TestCoreGroupsRotationCoversRange(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig())
	a, b := buildAligned(t, s, 1<<12)
	p := pass{ops: []operand{{arr: a}}, out: b, n: 1 << 12, weight: 1}
	covered := make([]bool, 1<<12)
	for c := 0; c < 64; c++ {
		for _, g := range p.coreGroups(c, 64) {
			for i := g[0]; i < g[1]; i++ {
				if covered[i] {
					t.Fatalf("element %d covered twice", i)
				}
				covered[i] = true
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("element %d never covered", i)
		}
	}
}

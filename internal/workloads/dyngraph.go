package workloads

import (
	"math/rand"

	"affinityalloc/internal/core"
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/dstruct"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// DynGraph exercises the §8 extension: an evolving graph held in dynamic
// linked CSR. Batches of edge insertions and deletions interleave with
// analytic queries (one push-style rank scatter per batch). All three
// configurations use the same pointer-based structure — the paper's
// point is that such structures need no preprocessing to benefit from
// affinity allocation — so the configurations differ only in where the
// allocator puts the nodes and property entries.
type DynGraph struct {
	G       *graph.Graph
	Batches int
	// UpdatesPerBatch is the number of edge mutations per batch
	// (half inserts, half deletes).
	UpdatesPerBatch int
}

// DefaultDynGraph returns a host-scaled instance.
func DefaultDynGraph() DynGraph {
	return DynGraph{G: graph.Kronecker(13, 10, 42), Batches: 4, UpdatesPerBatch: 4096}
}

// Name implements Workload.
func (w DynGraph) Name() string { return "dyn_graph" }

// Run implements Workload.
func (w DynGraph) Run(s *sys.System, mode sys.Mode) (Result, error) {
	g := w.G
	n := int64(g.N)

	// Property array (ranks), partitioned under Aff-Alloc.
	prop, err := s.Alloc(mode, core.AffineSpec{ElemSize: 8, NumElem: n, Partition: true})
	if err != nil {
		return Result{}, err
	}
	s.PreloadArray(prop)

	// The evolving structure: linked CSR in every configuration.
	alloc := dalloc(s, mode)
	lc, err := dstruct.BuildLinkedCSR(alloc, g, prop)
	if err != nil {
		return Result{}, err
	}
	preloadLinkedCSR(s, lc)

	rng := rand.New(rand.NewSource(workloadSeed(s, 23)))
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}

	nC := s.NumCores()
	cs := newChecksum()
	var finish engine.Time

	for batch := 0; batch < w.Batches; batch++ {
		finish, err = w.applyUpdates(s, mode, alloc, lc, prop, rng, finish)
		if err != nil {
			return Result{}, err
		}
		finish = w.queryPass(s, mode, lc, prop, ranks, finish)
		// Fold a structure fingerprint into the checksum.
		for u := int32(0); u < g.N; u += 97 {
			cs.addU64(uint64(lc.DynamicDegree(u)))
		}
		_ = nC
	}
	for i := int64(0); i < n; i += 101 {
		cs.addU64(uint64(float32bitsOf(ranks[i])))
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// applyUpdates performs one mutation batch, charging the traversal to
// the tail, the allocation writes, and (under NSC) the pointer chase to
// reach the mutation point.
func (w DynGraph) applyUpdates(s *sys.System, mode sys.Mode, alloc dstruct.Alloc, lc *dstruct.LinkedCSR,
	prop *core.ArrayInfo, rng *rand.Rand, start engine.Time) (engine.Time, error) {

	g := w.G
	nC := s.NumCores()
	finish := start

	type update struct {
		u, v   int32
		insert bool
	}
	updates := make([]update, w.UpdatesPerBatch)
	for i := range updates {
		u := int32(rng.Intn(int(g.N)))
		if i%2 == 0 || lc.DynamicDegree(u) == 0 {
			updates[i] = update{u: u, v: int32(rng.Intn(int(g.N))), insert: true}
		} else {
			edges := lc.DynamicEdges(u)
			updates[i] = update{u: u, v: edges[rng.Intn(len(edges))], insert: false}
		}
	}

	var cursor int
	var outerErr error
	if mode == sys.InCore {
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			if cursor >= len(updates) || outerErr != nil {
				return false
			}
			up := updates[cursor]
			cursor++
			cc := s.Cores[c]
			// Walk the chain to the mutation point.
			for _, node := range lc.Chains[up.u] {
				cc.Load(node.Addr, cpu.Dependent)
			}
			outerErr = w.applyOne(alloc, lc, prop, up.u, up.v, up.insert)
			cc.Store(prop.ElemAddr(int64(up.u)), cpu.Irregular)
			return cursor < len(updates)
		})
		return engine.MaxTime(finish, coreFinish(s.Cores)), outerErr
	}

	chains := make([]*stream.ChainStream, nC)
	for c := range chains {
		chains[c] = stream.NewChainStream(s.SE, c, passWindow)
	}
	interleaved(nC, func(c int) bool {
		if cursor >= len(updates) || outerErr != nil {
			return false
		}
		up := updates[cursor]
		cursor++
		ch := chains[c]
		ch.BeginChain(start)
		for _, node := range lc.Chains[up.u] {
			ch.VisitNode(node.Addr, lc.NodeBytes())
		}
		outerErr = w.applyOne(alloc, lc, prop, up.u, up.v, up.insert)
		// The mutation itself: one write at the mutated node's bank.
		done, _ := s.SE.RemoteOp(ch.Now(), ch.Bank(), prop.ElemAddr(int64(up.u)), true, false)
		ch.EndChain()
		if done > finish {
			finish = done
		}
		return cursor < len(updates)
	})
	return finish, outerErr
}

func (w DynGraph) applyOne(alloc dstruct.Alloc, lc *dstruct.LinkedCSR, prop *core.ArrayInfo, u, v int32, insert bool) error {
	if insert {
		return lc.InsertEdge(alloc, prop, u, v, 0)
	}
	_, err := lc.DeleteEdge(alloc, u, v)
	return err
}

// queryPass runs one push-style rank scatter over the current structure.
func (w DynGraph) queryPass(s *sys.System, mode sys.Mode, lc *dstruct.LinkedCSR, prop *core.ArrayInfo,
	ranks []float64, start engine.Time) engine.Time {

	g := w.G
	nC := s.NumCores()
	finish := start
	next := make([]float64, len(ranks))

	if mode == sys.InCore {
		var cursor int32
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			cc := s.Cores[c]
			for k := 0; k < chunkVerts; k++ {
				u := cursor
				if u >= g.N {
					return false
				}
				cursor++
				deg := lc.DynamicDegree(u)
				if deg == 0 {
					continue
				}
				contrib := ranks[u] / float64(deg)
				for _, node := range lc.Chains[u] {
					cc.Load(node.Addr, cpu.Dependent)
					for _, v := range node.Edges {
						cc.Atomic(prop.ElemAddr(int64(v)))
						next[v] += contrib
					}
				}
			}
			return cursor < g.N
		})
		finish = engine.MaxTime(finish, coreFinish(s.Cores))
	} else {
		type st struct {
			chain *stream.ChainStream
			ops   *stream.OpWindow
		}
		states := make([]*st, nC)
		for c := range states {
			states[c] = &st{chain: stream.NewChainStream(s.SE, c, passWindow), ops: stream.NewOpWindow(opWindow)}
		}
		var cursor int32
		interleaved(nC, func(c int) bool {
			state := states[c]
			for k := 0; k < chunkVerts; k++ {
				u := cursor
				if u >= g.N {
					return false
				}
				cursor++
				deg := lc.DynamicDegree(u)
				if deg == 0 {
					continue
				}
				contrib := ranks[u] / float64(deg)
				state.chain.BeginChain(start)
				for _, node := range lc.Chains[u] {
					tn := state.chain.VisitNode(node.Addr, lc.NodeBytes())
					for _, v := range node.Edges {
						done, _ := s.SE.RemoteOp(state.ops.Issue(tn), state.chain.Bank(), prop.ElemAddr(int64(v)), true, false)
						state.ops.Complete(done)
						if done > finish {
							finish = done
						}
						next[v] += contrib
					}
				}
				state.chain.EndChain()
			}
			return cursor < g.N
		})
	}
	for i := range ranks {
		ranks[i] = 0.15/float64(len(ranks)) + 0.85*next[i]
	}
	return finish
}

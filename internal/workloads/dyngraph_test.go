package workloads

import (
	"testing"

	"affinityalloc/internal/graph"
	"affinityalloc/internal/sys"
)

// TestDynGraphCrossMode: the §8 evolving-graph extension computes the
// same structure and ranks under every configuration, and affinity
// allocation still pays off with mutation in the loop.
func TestDynGraphCrossMode(t *testing.T) {
	w := DynGraph{G: graph.Kronecker(10, 8, 42), Batches: 2, UpdatesPerBatch: 1024}
	results := map[sys.Mode]Result{}
	var base Result
	for i, mode := range sys.Modes {
		res, err := Run(sys.DefaultConfig(), w, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if i == 0 {
			base = res
		} else if res.Checksum != base.Checksum {
			t.Errorf("%v evolved a different graph (checksum %x vs %x)", mode, res.Checksum, base.Checksum)
		}
		results[mode] = res
	}
	if results[sys.AffAlloc].Metrics.FlitHops >= results[sys.NearL3].Metrics.FlitHops {
		t.Errorf("dynamic Aff-Alloc traffic %d >= Near-L3 %d",
			results[sys.AffAlloc].Metrics.FlitHops, results[sys.NearL3].Metrics.FlitHops)
	}
	if results[sys.AffAlloc].Metrics.Cycles >= results[sys.NearL3].Metrics.Cycles {
		t.Errorf("dynamic Aff-Alloc %d cycles >= Near-L3 %d",
			results[sys.AffAlloc].Metrics.Cycles, results[sys.NearL3].Metrics.Cycles)
	}
}

package workloads

import (
	"reflect"
	"testing"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/realloc"
	"affinityalloc/internal/sys"
)

// reallocRun executes the skew workload on a system with the given fault
// spec and reconciler config and returns the system (for its reconciler
// log) and the result.
func reallocRun(t *testing.T, w Skew, spec faults.Spec, rcfg realloc.Config, shards int) (*sys.System, Result) {
	t.Helper()
	cfg := sys.DefaultConfig()
	cfg.Faults = spec
	cfg.Realloc = rcfg
	cfg.Shards = shards
	s, err := sys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Run(s, sys.AffAlloc)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

var skewRealloc = realloc.Config{Epoch: 2000}.WithDefaults()

// TestSkewConvergesWithoutPingPong is the convergence regression of the
// issue: on the two-phase hotspot workload the reconciler must migrate at
// least once, must respect the hysteresis pin (no granule moves again
// within Hysteresis epochs of its last move), must never bounce a granule
// straight back to the bank it just left, and must go quiet once the
// placement has spread — the final closed epoch plans nothing.
func TestSkewConvergesWithoutPingPong(t *testing.T) {
	// Long phases give the reconciler several epochs of steady state after
	// each phase change, so a converged placement has a quiet tail.
	w := DefaultSkew()
	w.OpsPerPhase = 12000
	s, res := reallocRun(t, w, faults.Spec{}, skewRealloc, 1)
	c := s.Realloc.Counters()
	if c.Migrations == 0 {
		t.Fatalf("two-phase hotspot triggered no migrations: %+v", c)
	}
	if c.Epochs < 3 {
		t.Fatalf("run too short to judge convergence: %d epochs", c.Epochs)
	}
	last := map[uint64]realloc.Applied{}
	for _, m := range s.Realloc.Log() {
		if prev, ok := last[uint64(m.Chunk)]; ok {
			if m.Epoch-prev.Epoch <= uint64(skewRealloc.Hysteresis) {
				t.Errorf("hysteresis violated: chunk %#x moved at epoch %d and again at %d (pin %d)",
					m.Chunk, prev.Epoch, m.Epoch, skewRealloc.Hysteresis)
			}
			if m.To == prev.From {
				t.Errorf("ping-pong: chunk %#x went %d->%d then back to %d",
					m.Chunk, prev.From, prev.To, m.To)
			}
		}
		last[uint64(m.Chunk)] = m
	}
	for _, m := range s.Realloc.Log() {
		if m.Epoch == c.Epochs {
			t.Errorf("placement did not converge: migration %+v in the final epoch %d", m, c.Epochs)
		}
	}

	// Migration is timing-only: the static run computes the same result.
	_, static := reallocRun(t, w, faults.Spec{}, realloc.Config{}, 1)
	if res.Checksum != static.Checksum {
		t.Fatalf("dynamic checksum %x != static %x", res.Checksum, static.Checksum)
	}
}

// TestKillRehomesStrandedChunks kills the hot bank mid-run and checks the
// reconciler notices through telemetry alone: every granule stranded on
// the dead bank is re-homed to an alive bank, nothing migrates back, and
// the re-homed machine beats the static one (which keeps paying the
// survivor line-spread remap on every access).
func TestKillRehomesStrandedChunks(t *testing.T) {
	spec := faults.Spec{Kills: []faults.BankKill{{Bank: 27, At: 3000}}}
	s, res := reallocRun(t, DefaultSkew(), spec, skewRealloc, 1)
	c := s.Realloc.Counters()
	if c.KillRehomes == 0 {
		t.Fatalf("bank kill produced no re-homes: %+v", c)
	}
	space := s.RT.Space()
	if space.BankAlive(27) {
		t.Fatal("bank 27 still alive after the armed kill")
	}
	for _, m := range s.Realloc.Log() {
		if m.Rehome && m.From != 27 {
			t.Errorf("re-home %+v does not leave the killed bank", m)
		}
		if m.To == 27 {
			t.Errorf("migration %+v targets the killed bank", m)
		}
		if m.Rehome && space.BankAlive(m.From) {
			t.Errorf("re-home %+v left an alive bank", m)
		}
	}

	_, static := reallocRun(t, DefaultSkew(), spec, realloc.Config{}, 1)
	if res.Checksum != static.Checksum {
		t.Fatalf("dynamic checksum %x != static %x", res.Checksum, static.Checksum)
	}
	if res.Metrics.Cycles >= static.Metrics.Cycles {
		t.Errorf("re-homing did not pay: dynamic %d cycles >= static %d", res.Metrics.Cycles, static.Metrics.Cycles)
	}
}

// TestReallocScheduleDeterministicAcrossShards asserts the hard
// determinism contract: the same seed and config produce the identical
// migration schedule — move for move, epoch for epoch — whether the event
// kernel runs single-shard or sharded.
func TestReallocScheduleDeterministicAcrossShards(t *testing.T) {
	for _, spec := range []faults.Spec{{}, {Kills: []faults.BankKill{{Bank: 27, At: 3000}}}} {
		s1, r1 := reallocRun(t, DefaultSkew(), spec, skewRealloc, 1)
		s4, r4 := reallocRun(t, DefaultSkew(), spec, skewRealloc, 4)
		if !reflect.DeepEqual(s1.Realloc.Log(), s4.Realloc.Log()) {
			t.Fatalf("faults=%v: migration schedule differs between shards=1 and shards=4:\n%+v\nvs\n%+v",
				spec, s1.Realloc.Log(), s4.Realloc.Log())
		}
		if s1.Realloc.Counters() != s4.Realloc.Counters() {
			t.Fatalf("faults=%v: counters differ: %+v vs %+v", spec, s1.Realloc.Counters(), s4.Realloc.Counters())
		}
		if r1.Metrics.Cycles != r4.Metrics.Cycles || r1.Checksum != r4.Checksum {
			t.Fatalf("faults=%v: results differ across shards: %d/%x vs %d/%x",
				spec, r1.Metrics.Cycles, r1.Checksum, r4.Metrics.Cycles, r4.Checksum)
		}
	}
}

package workloads

import (
	"math"

	"affinityalloc/internal/cpu"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// prDamping is the conventional PageRank damping factor.
const prDamping = 0.85

// PageRank is the pr workload of Table 3 in its push (atomic
// scatter-add) or pull (indirect gather) form. The functional result is
// bit-identical across configurations because edge processing follows
// the same deterministic order everywhere.
type PageRank struct {
	G     *graph.Graph
	GT    *graph.Graph // required for Pull
	Iters int
	Dir   graph.Direction
	// Best selects the paper's per-configuration choice (Fig 12 "pr"):
	// pull In-Core, push for the NSC configurations. It overrides Dir.
	Best bool
	// Oracle enables the Fig-6 chunked-placement study (CSR modes only).
	Oracle *EdgeOracle
}

// DefaultPageRank returns a host-scaled pr on a Kronecker graph
// (Table 3: 128k nodes / 4M edges at paper scale).
func DefaultPageRank(dir graph.Direction) PageRank {
	g := graph.Kronecker(15, 16, 42)
	return PageRank{G: g, GT: g.Transpose(), Iters: 3, Dir: dir}
}

// Name implements Workload.
func (w PageRank) Name() string {
	if w.Best {
		return "pr"
	}
	if w.Dir == graph.Push {
		return "pr_push"
	}
	return "pr_pull"
}

// Run implements Workload.
func (w PageRank) Run(s *sys.System, mode sys.Mode) (Result, error) {
	dir := w.Dir
	if w.Best {
		if mode == sys.InCore {
			dir = graph.Pull
		} else {
			dir = graph.Push
		}
	}
	gd, err := buildGraphData(s, mode, w.G, w.GT, graphSetup{
		needPull:          dir == graph.Pull,
		needProp2:         true,
		propElem:          8,
		prop2Elem:         8,
		oracle:            w.Oracle,
		oracleTargetProp2: dir == graph.Push,
	})
	if err != nil {
		return Result{}, err
	}

	n := int(w.G.N)
	scores := make([]float64, n)
	sums := make([]float64, n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}

	var finish engine.Time
	for it := 0; it < w.Iters; it++ {
		if dir == graph.Push {
			finish = w.pushIter(s, gd, mode, scores, sums, finish)
		} else {
			finish = w.pullIter(s, gd, mode, scores, sums, finish)
		}
		// Damped update pass: scores = base + d*sums; sums = 0.
		base := (1 - prDamping) / float64(n)
		for i := range scores {
			scores[i] = base + prDamping*sums[i]
			sums[i] = 0
		}
		p := pass{ops: []operand{{arr: gd.prop2}}, out: gd.prop, n: int64(n), weight: 2}
		finish = p.run(s, mode, finish)
	}

	cs := newChecksum()
	for i := 0; i < n; i += 97 {
		cs.addU64(uint64(float32bitsOf(scores[i])))
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

func float32bitsOf(v float64) uint32 {
	return math.Float32bits(float32(v))
}

// pushIter scatters each vertex's contribution to its out-neighbors with
// remote atomic adds.
func (w PageRank) pushIter(s *sys.System, gd *graphData, mode sys.Mode, scores, sums []float64, start engine.Time) engine.Time {
	g := w.G
	nC := s.NumCores()
	finish := start

	apply := func(u int32, v int32) {
		deg := g.Degree(u)
		sums[v] += scores[u] / float64(deg)
	}

	// Vertices are distributed dynamically (OpenMP dynamic scheduling):
	// hub vertices cluster at low ids in R-MAT graphs and would
	// otherwise pile onto one core.
	if mode == sys.InCore {
		var cursor int32
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			cc := s.Cores[c]
			for k := 0; k < chunkVerts; k++ {
				u := cursor
				if u >= g.N {
					return false
				}
				cursor++
				cc.Load(gd.idx.ElemAddr(int64(u)), cpu.Streaming)
				cc.Load(gd.prop.ElemAddr(int64(u)), cpu.Streaming)
				cc.Compute(2)
				for i := g.Index[u]; i < g.Index[u+1]; i++ {
					v := g.Edges[i]
					if i%int64(memsim.LineSize/gd.weightsPerEdge) == 0 || i == g.Index[u] {
						cc.Load(gd.edgeAddr(i), cpu.Streaming)
					}
					cc.Atomic(gd.prop2.ElemAddr(int64(v)))
					apply(u, v)
				}
			}
			return cursor < g.N
		})
		return coreFinish(s.Cores)
	}

	// NSC push.
	type st struct {
		u, hi  int32
		propS  *stream.AffineStream
		idxS   *stream.AffineStream // CSR index / linked heads
		edgeS  *stream.AffineStream // CSR edges
		chain  *stream.ChainStream  // linked CSR
		ops    *stream.OpWindow
		window []engine.Time
		wIdx   int
	}
	states := make([]*st, nC)
	for c := 0; c < nC; c++ {
		state := &st{window: make([]engine.Time, passWindow), ops: stream.NewOpWindow(opWindow)}
		state.propS = stream.NewAffineStream(s.SE, c, gd.prop.Base, gd.prop.ElemStride, 1, int64(g.N), false)
		state.propS.Start(start)
		if mode == sys.AffAlloc {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.heads.Base, gd.heads.ElemStride, 1, int64(g.N), false)
			state.chain = stream.NewChainStream(s.SE, c, passWindow)
		} else {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.idx.Base, gd.idx.ElemStride, 1, int64(g.N)+1, false)
			state.edgeS = stream.NewAffineStream(s.SE, c, gd.edges.Base, gd.edges.ElemStride, 1, g.NumEdges(), false)
		}
		state.idxS.Start(start)
		states[c] = state
	}
	var cursor int32
	interleaved(nC, func(c int) bool {
		state := states[c]
		for k := 0; k < chunkVerts; k++ {
			u := cursor
			if u >= g.N {
				return false
			}
			cursor++
			notBefore := engine.MaxTime(start, state.window[state.wIdx])
			_, tIdx := state.idxS.AddrReady(gd.headAddr(u), notBefore)
			_, tProp := state.propS.AddrReady(gd.prop.ElemAddr(int64(u)), notBefore)
			t := engine.MaxTime(tIdx, tProp)
			var last engine.Time = t
			if mode == sys.AffAlloc {
				state.chain.BeginChain(t)
				nodeB := gd.lcsr.NodeBytes()
				for _, node := range gd.lcsr.Chains[u] {
					tn := state.chain.VisitNode(node.Addr, nodeB)
					for _, v := range node.Edges {
						done, _ := s.SE.RemoteOp(state.ops.Issue(tn), state.chain.Bank(), gd.prop2.ElemAddr(int64(v)), true, false)
						state.ops.Complete(done)
						last = engine.MaxTime(last, done)
						apply(u, v)
					}
				}
				state.chain.EndChain()
			} else {
				for i := g.Index[u]; i < g.Index[u+1]; i++ {
					v := g.Edges[i]
					eb, te := state.edgeS.AddrReady(gd.edgeAddr(i), t)
					target := gd.prop2.ElemAddr(int64(v))
					done, _ := s.SE.RemoteOp(state.ops.Issue(te), gd.indirectFrom(s, eb, target), target, true, false)
					state.ops.Complete(done)
					last = engine.MaxTime(last, done)
					apply(u, v)
				}
			}
			state.window[state.wIdx] = last
			state.wIdx = (state.wIdx + 1) % len(state.window)
			if last > finish {
				finish = last
			}
		}
		return cursor < g.N
	})
	return finish
}

// pullIter gathers each vertex's in-neighbors' contributions with
// indirect reads and a local reduction.
func (w PageRank) pullIter(s *sys.System, gd *graphData, mode sys.Mode, scores, sums []float64, start engine.Time) engine.Time {
	g, gt := w.G, w.GT
	nC := s.NumCores()
	finish := start

	apply := func(v, u int32) {
		deg := g.Degree(u)
		if deg > 0 {
			sums[v] += scores[u] / float64(deg)
		}
	}

	if mode == sys.InCore {
		type st struct{ v, hi int32 }
		states := make([]*st, nC)
		for c := 0; c < nC; c++ {
			lo, hi := partition(int64(g.N), nC, c)
			states[c] = &st{v: int32(lo), hi: int32(hi)}
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			state := states[c]
			if state.v >= state.hi {
				return false
			}
			cc := s.Cores[c]
			for k := 0; k < chunkVerts && state.v < state.hi; k++ {
				v := state.v
				state.v++
				cc.Load(gd.idxT.ElemAddr(int64(v)), cpu.Streaming)
				for i := gt.Index[v]; i < gt.Index[v+1]; i++ {
					u := gt.Edges[i]
					if i%int64(memsim.LineSize/gd.weightsPerEdge) == 0 || i == gt.Index[v] {
						cc.Load(gd.edgeAddrT(i), cpu.Streaming)
					}
					cc.Load(gd.prop.ElemAddr(int64(u)), cpu.Irregular)
					cc.Compute(2)
					apply(v, u)
				}
				cc.Store(gd.prop2.ElemAddr(int64(v)), cpu.Streaming)
			}
			return state.v < state.hi
		})
		return coreFinish(s.Cores)
	}

	// NSC pull.
	type st struct {
		v, hi  int32
		idxS   *stream.AffineStream
		edgeS  *stream.AffineStream
		chain  *stream.ChainStream
		ops    *stream.OpWindow
		window []engine.Time
		wIdx   int
	}
	states := make([]*st, nC)
	for c := 0; c < nC; c++ {
		lo, hi := partition(int64(g.N), nC, c)
		state := &st{v: int32(lo), hi: int32(hi), window: make([]engine.Time, passWindow), ops: stream.NewOpWindow(opWindow)}
		if mode == sys.AffAlloc {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.headsT.ElemAddr(lo), gd.headsT.ElemStride, 1, hi-lo, false)
			state.chain = stream.NewChainStream(s.SE, c, passWindow)
		} else {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.idxT.ElemAddr(lo), gd.idxT.ElemStride, 1, hi-lo, false)
			state.edgeS = stream.NewAffineStream(s.SE, c, gd.edgesT.Base, gd.edgesT.ElemStride, 1, gt.NumEdges(), false)
		}
		state.idxS.Start(start)
		states[c] = state
	}
	interleaved(nC, func(c int) bool {
		state := states[c]
		if state.v >= state.hi {
			return false
		}
		for k := 0; k < chunkVerts && state.v < state.hi; k++ {
			v := state.v
			state.v++
			notBefore := engine.MaxTime(start, state.window[state.wIdx])
			_, t := state.idxS.AddrReady(gd.headAddrT(v), notBefore)
			vBank := s.Mem.BankOf(gd.prop2.ElemAddr(int64(v)))
			var ready engine.Time = t
			deg := 0
			gatherBank := vBank
			if mode == sys.AffAlloc {
				state.chain.BeginChain(t)
				nodeB := gd.lcsrT.NodeBytes()
				for _, node := range gd.lcsrT.Chains[v] {
					tn := state.chain.VisitNode(node.Addr, nodeB)
					gatherBank = state.chain.Bank()
					for _, u := range node.Edges {
						done, _ := s.SE.RemoteOp(state.ops.Issue(tn), gatherBank, gd.prop.ElemAddr(int64(u)), false, true)
						state.ops.Complete(done)
						ready = engine.MaxTime(ready, done)
						deg++
						apply(v, u)
					}
				}
				state.chain.EndChain()
			} else {
				for i := gt.Index[v]; i < gt.Index[v+1]; i++ {
					u := gt.Edges[i]
					eb, te := state.edgeS.AddrReady(gd.edgeAddrT(i), t)
					gatherBank = eb
					target := gd.prop.ElemAddr(int64(u))
					done, _ := s.SE.RemoteOp(state.ops.Issue(te), gd.indirectFrom(s, eb, target), target, false, true)
					state.ops.Complete(done)
					ready = engine.MaxTime(ready, done)
					deg++
					apply(v, u)
				}
			}
			if deg > 0 {
				compDone := s.SE.Compute(ready, gatherBank, deg)
				done, _ := s.SE.RemoteOp(compDone, gatherBank, gd.prop2.ElemAddr(int64(v)), true, false)
				ready = done
			}
			state.window[state.wIdx] = ready
			state.wIdx = (state.wIdx + 1) % len(state.window)
			if ready > finish {
				finish = ready
			}
		}
		return state.v < state.hi
	})
	return finish
}

package workloads

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/sys"
)

// allocAligned allocates base plus arrays aligned to it, per the mode:
// affinity specs under AffAlloc, baseline allocation otherwise.
func allocAligned(s *sys.System, mode sys.Mode, base core.AffineSpec, aligned ...core.AffineSpec) (*core.ArrayInfo, []*core.ArrayInfo, error) {
	bi, err := s.Alloc(mode, base)
	if err != nil {
		return nil, nil, err
	}
	s.PreloadArray(bi)
	out := make([]*core.ArrayInfo, len(aligned))
	for i, spec := range aligned {
		if mode == sys.AffAlloc {
			spec.AlignTo = bi.Base
		}
		out[i], err = s.Alloc(mode, spec)
		if err != nil {
			return nil, nil, err
		}
		s.PreloadArray(out[i])
	}
	return bi, out, nil
}

// VecAdd is C[i] = A[i] + B[i] over float32 — the running example of
// Figs 1, 3 and 4 and the quickstart workload.
type VecAdd struct {
	N int64
	// ForceDelta >= 0 forces C's start bank Delta banks after A/B's (the
	// Fig-4 layout sweep); it implies stream offloading with explicit
	// placement regardless of mode's usual allocator.
	ForceDelta int
}

// DefaultVecAdd returns the Fig-4 microbenchmark size.
func DefaultVecAdd() VecAdd { return VecAdd{N: 1 << 20, ForceDelta: -1} }

// Name implements Workload.
func (w VecAdd) Name() string { return "vecadd" }

// Run implements Workload.
func (w VecAdd) Run(s *sys.System, mode sys.Mode) (Result, error) {
	spec := core.AffineSpec{ElemSize: 4, NumElem: w.N}
	var a, b, c *core.ArrayInfo
	var err error
	switch {
	case w.ForceDelta >= 0:
		// Fig 4: A and B aligned at bank 0, C displaced by Delta.
		if a, err = s.RT.AllocAffineAtBank(spec, 0); err != nil {
			return Result{}, err
		}
		if b, err = s.RT.AllocAffineAtBank(spec, 0); err != nil {
			return Result{}, err
		}
		if c, err = s.RT.AllocAffineAtBank(spec, w.ForceDelta%s.Mesh.Banks()); err != nil {
			return Result{}, err
		}
		s.PreloadArray(a)
		s.PreloadArray(b)
		s.PreloadArray(c)
	default:
		var aligned []*core.ArrayInfo
		a, aligned, err = allocAligned(s, mode, spec, spec, spec)
		if err != nil {
			return Result{}, err
		}
		b, c = aligned[0], aligned[1]
	}

	// Functional result.
	av := make([]float32, w.N)
	bv := make([]float32, w.N)
	cv := make([]float32, w.N)
	for i := range av {
		av[i] = float32(i%1024) * 0.5
		bv[i] = float32(i%733) * 0.25
		cv[i] = av[i] + bv[i]
	}

	p := pass{
		ops:    []operand{{arr: a}, {arr: b}},
		out:    c,
		n:      w.N,
		weight: 1,
	}
	finish := p.run(s, mode, 0)

	cs := newChecksum()
	cs.addU64(uint64(w.N))
	for i := int64(0); i < w.N; i += 64 {
		cs.addF32(cv[i])
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// Pathfinder is Rodinia's pathfinder: a row-by-row dynamic program
// dst[i] = wall[t][i] + min(src[i-1], src[i], src[i+1]).
type Pathfinder struct {
	Cols  int64
	Steps int
}

// DefaultPathfinder returns a host-scaled instance (Table 3: 1.5M
// entries, 8 steps at paper scale).
func DefaultPathfinder() Pathfinder { return Pathfinder{Cols: 192 * 1024, Steps: 8} }

// PaperPathfinder returns the published size.
func PaperPathfinder() Pathfinder { return Pathfinder{Cols: 1536 * 1024, Steps: 8} }

// Name implements Workload.
func (w Pathfinder) Name() string { return "pathfinder" }

// Run implements Workload.
func (w Pathfinder) Run(s *sys.System, mode sys.Mode) (Result, error) {
	rowSpec := core.AffineSpec{ElemSize: 4, NumElem: w.Cols}
	wallSpec := core.AffineSpec{ElemSize: 4, NumElem: w.Cols * int64(w.Steps)}
	src, aligned, err := allocAligned(s, mode, rowSpec, rowSpec, wallSpec)
	if err != nil {
		return Result{}, err
	}
	dst, wall := aligned[0], aligned[1]

	// Functional DP on int-valued float32 costs (exact arithmetic).
	cur := make([]float32, w.Cols)
	nxt := make([]float32, w.Cols)
	wallv := make([]float32, w.Cols*int64(w.Steps))
	for i := range cur {
		cur[i] = float32((i * 7) % 10)
	}
	for i := range wallv {
		wallv[i] = float32((i*13 + 5) % 10)
	}

	var finish engine.Time
	for t := 0; t < w.Steps; t++ {
		for i := int64(0); i < w.Cols; i++ {
			m := cur[i]
			if i > 0 && cur[i-1] < m {
				m = cur[i-1]
			}
			if i+1 < w.Cols && cur[i+1] < m {
				m = cur[i+1]
			}
			nxt[i] = wallv[int64(t)*w.Cols+i] + m
		}
		cur, nxt = nxt, cur

		p := pass{
			ops: []operand{
				{arr: src, halo: true},
				{arr: wall, off: int64(t) * w.Cols},
			},
			out:    dst,
			n:      w.Cols,
			weight: 3,
		}
		finish = p.run(s, mode, finish)
		src, dst = dst, src
	}

	cs := newChecksum()
	for i := int64(0); i < w.Cols; i += 64 {
		cs.addF32(cur[i])
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// stencil2D factors the shared structure of hotspot and srad.
type stencil2D struct {
	rows, cols int64
	iters      int
}

func (w stencil2D) allocGrids(s *sys.System, mode sys.Mode, nAligned int) (*core.ArrayInfo, []*core.ArrayInfo, error) {
	n := w.rows * w.cols
	base := core.AffineSpec{ElemSize: 4, NumElem: n, AlignX: w.cols} // intra-array row affinity (Fig 8c)
	specs := make([]core.AffineSpec, nAligned)
	for i := range specs {
		specs[i] = core.AffineSpec{ElemSize: 4, NumElem: n}
	}
	return allocAligned(s, mode, base, specs...)
}

// Hotspot is Rodinia's hotspot: a 5-point 2D heat stencil plus a power
// term.
type Hotspot struct{ stencil2D }

// NewHotspot builds a hotspot instance with explicit dimensions.
func NewHotspot(rows, cols int64, iters int) Hotspot {
	return Hotspot{stencil2D{rows: rows, cols: cols, iters: iters}}
}

// DefaultHotspot returns a host-scaled instance (Table 3: 2k x 1k, 8
// iterations at paper scale).
func DefaultHotspot() Hotspot {
	return Hotspot{stencil2D{rows: 512, cols: 1024, iters: 8}}
}

// PaperHotspot returns the published size.
func PaperHotspot() Hotspot {
	return Hotspot{stencil2D{rows: 2048, cols: 1024, iters: 8}}
}

// Name implements Workload.
func (w Hotspot) Name() string { return "hotspot" }

// Run implements Workload.
func (w Hotspot) Run(s *sys.System, mode sys.Mode) (Result, error) {
	n := w.rows * w.cols
	temp, aligned, err := w.allocGrids(s, mode, 2)
	if err != nil {
		return Result{}, err
	}
	tempOut, power := aligned[0], aligned[1]

	tv := make([]float32, n)
	pv := make([]float32, n)
	ov := make([]float32, n)
	for i := range tv {
		tv[i] = 320 + float32(i%97)*0.1
		pv[i] = float32(i%13) * 0.01
	}

	var finish engine.Time
	tIn, tOut := temp, tempOut
	for it := 0; it < w.iters; it++ {
		for i := int64(0); i < n; i++ {
			up := clampIdx(i-w.cols, n)
			dn := clampIdx(i+w.cols, n)
			lf := clampIdx(i-1, n)
			rt := clampIdx(i+1, n)
			ov[i] = tv[i] + 0.05*(tv[up]+tv[dn]+tv[lf]+tv[rt]-4*tv[i]) + pv[i]
		}
		tv, ov = ov, tv

		p := pass{
			ops: []operand{
				{arr: tIn, halo: true},
				{arr: tIn, off: -w.cols},
				{arr: tIn, off: w.cols},
				{arr: power},
			},
			out:    tOut,
			n:      n,
			weight: 8,
		}
		finish = p.run(s, mode, finish)
		tIn, tOut = tOut, tIn
	}

	cs := newChecksum()
	for i := int64(0); i < n; i += 257 {
		cs.addF32(tv[i])
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// Srad is Rodinia's srad: per iteration, a statistics reduction, a
// diffusion-coefficient pass, and an update pass.
type Srad struct{ stencil2D }

// NewSrad builds an srad instance with explicit dimensions.
func NewSrad(rows, cols int64, iters int) Srad {
	return Srad{stencil2D{rows: rows, cols: cols, iters: iters}}
}

// DefaultSrad returns a host-scaled instance (Table 3: 1k x 2k, 8
// iterations at paper scale).
func DefaultSrad() Srad { return Srad{stencil2D{rows: 256, cols: 1024, iters: 8}} }

// PaperSrad returns the published size.
func PaperSrad() Srad { return Srad{stencil2D{rows: 1024, cols: 2048, iters: 8}} }

// Name implements Workload.
func (w Srad) Name() string { return "srad" }

// Run implements Workload.
func (w Srad) Run(s *sys.System, mode sys.Mode) (Result, error) {
	n := w.rows * w.cols
	img, aligned, err := w.allocGrids(s, mode, 2)
	if err != nil {
		return Result{}, err
	}
	coef, imgOut := aligned[0], aligned[1]

	iv := make([]float32, n)
	cv := make([]float32, n)
	ov := make([]float32, n)
	for i := range iv {
		iv[i] = 1 + float32(i%53)*0.02
	}

	var finish engine.Time
	for it := 0; it < w.iters; it++ {
		// Statistics reduction (mean over the region of interest).
		var sum float64
		for _, v := range iv {
			sum += float64(v)
		}
		q0 := float32(sum / float64(n))
		finish = reduceTree(s, finish)

		// Coefficient pass.
		for i := int64(0); i < n; i++ {
			up := clampIdx(i-w.cols, n)
			dn := clampIdx(i+w.cols, n)
			lf := clampIdx(i-1, n)
			rt := clampIdx(i+1, n)
			g := (iv[up] + iv[dn] + iv[lf] + iv[rt] - 4*iv[i]) / (iv[i] + q0)
			cv[i] = 1 / (1 + g*g)
		}
		p1 := pass{
			ops: []operand{
				{arr: img, halo: true},
				{arr: img, off: -w.cols},
				{arr: img, off: w.cols},
			},
			out:    coef,
			n:      n,
			weight: 20,
		}
		finish = p1.run(s, mode, finish)

		// Update pass.
		for i := int64(0); i < n; i++ {
			dn := clampIdx(i+w.cols, n)
			rt := clampIdx(i+1, n)
			div := cv[i]*2 + cv[dn] + cv[rt]
			ov[i] = iv[i] + 0.0625*div
		}
		iv, ov = ov, iv
		p2 := pass{
			ops: []operand{
				{arr: coef, halo: true},
				{arr: coef, off: w.cols},
				{arr: img},
			},
			out:    imgOut,
			n:      n,
			weight: 12,
		}
		finish = p2.run(s, mode, finish)
	}

	cs := newChecksum()
	for i := int64(0); i < n; i += 257 {
		cs.addF32(iv[i])
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// Hotspot3D is Rodinia's hotspot3D: a 7-point 3D stencil.
type Hotspot3D struct {
	Rows, Cols, Layers int64
	Iters              int
}

// DefaultHotspot3D returns a host-scaled instance (Table 3: 256 x 1k x 8,
// 8 iterations at paper scale).
func DefaultHotspot3D() Hotspot3D {
	return Hotspot3D{Rows: 128, Cols: 512, Layers: 8, Iters: 8}
}

// PaperHotspot3D returns the published size.
func PaperHotspot3D() Hotspot3D {
	return Hotspot3D{Rows: 256, Cols: 1024, Layers: 8, Iters: 8}
}

// Name implements Workload.
func (w Hotspot3D) Name() string { return "hotspot3D" }

// Run implements Workload.
func (w Hotspot3D) Run(s *sys.System, mode sys.Mode) (Result, error) {
	plane := w.Rows * w.Cols
	n := plane * w.Layers
	base := core.AffineSpec{ElemSize: 4, NumElem: n, AlignX: w.Cols}
	gridSpec := core.AffineSpec{ElemSize: 4, NumElem: n}
	temp, aligned, err := allocAligned(s, mode, base, gridSpec, gridSpec)
	if err != nil {
		return Result{}, err
	}
	tempOut, power := aligned[0], aligned[1]
	if temp == nil || tempOut == nil || power == nil {
		return Result{}, fmt.Errorf("hotspot3D: allocation failed")
	}

	tv := make([]float32, n)
	pv := make([]float32, n)
	ov := make([]float32, n)
	for i := range tv {
		tv[i] = 300 + float32(i%89)*0.2
		pv[i] = float32(i%7) * 0.02
	}

	var finish engine.Time
	tIn, tOut := temp, tempOut
	for it := 0; it < w.Iters; it++ {
		for i := int64(0); i < n; i++ {
			nb := [6]int64{
				clampIdx(i-1, n), clampIdx(i+1, n),
				clampIdx(i-w.Cols, n), clampIdx(i+w.Cols, n),
				clampIdx(i-plane, n), clampIdx(i+plane, n),
			}
			acc := -6 * tv[i]
			for _, j := range nb {
				acc += tv[j]
			}
			ov[i] = tv[i] + 0.03*acc + pv[i]
		}
		tv, ov = ov, tv

		p := pass{
			ops: []operand{
				{arr: tIn, halo: true},
				{arr: tIn, off: -w.Cols},
				{arr: tIn, off: w.Cols},
				{arr: tIn, off: -plane},
				{arr: tIn, off: plane},
				{arr: power},
			},
			out:    tOut,
			n:      n,
			weight: 10,
		}
		finish = p.run(s, mode, finish)
		tIn, tOut = tOut, tIn
	}

	cs := newChecksum()
	for i := int64(0); i < n; i += 509 {
		cs.addF32(tv[i])
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

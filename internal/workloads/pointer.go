package workloads

import (
	"math/rand"

	"affinityalloc/internal/cpu"
	"affinityalloc/internal/dstruct"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// chaseWindow bounds outstanding queries per core for the NSC
// pointer-chasing workloads.
const chaseWindow = 4

// dalloc builds the mode-appropriate dstruct allocator.
func dalloc(s *sys.System, mode sys.Mode) dstruct.Alloc {
	return dstruct.Alloc{RT: s.RT, Affinity: mode == sys.AffAlloc}
}

// preloadLines warms the lines containing each address.
func preloadLines(s *sys.System, addrs []memsim.Addr, bytes int64) {
	for _, a := range addrs {
		s.Mem.Preload(a, bytes)
	}
}

// LinkList is the link_list workload of Table 3: many long linked lists,
// each searched once for a key. Lists are built with interleaved
// appends — the realistic allocation order in which consecutive heap
// allocations belong to different lists.
type LinkList struct {
	Lists    int
	Nodes    int // nodes per list
	Queries  int // queries per list
	MissRate float64
}

// DefaultLinkList returns a host-scaled instance (Table 3: 1k lists, 512
// nodes/list, 1 query/list at paper scale).
func DefaultLinkList() LinkList { return LinkList{Lists: 250, Nodes: 256, Queries: 1} }

// PaperLinkList returns the published size.
func PaperLinkList() LinkList { return LinkList{Lists: 1000, Nodes: 512, Queries: 1} }

// Name implements Workload.
func (w LinkList) Name() string { return "link_list" }

// Run implements Workload.
func (w LinkList) Run(s *sys.System, mode sys.Mode) (Result, error) {
	alloc := dalloc(s, mode)
	rng := rand.New(rand.NewSource(workloadSeed(s, 11)))

	lists := make([]*dstruct.List, w.Lists)
	for i := range lists {
		lists[i] = dstruct.NewList(alloc)
	}
	// Interleaved append order: node j of every list before node j+1.
	addrs := make([]memsim.Addr, 0, w.Lists*w.Nodes)
	for j := 0; j < w.Nodes; j++ {
		for i := range lists {
			key := uint64(i)<<32 | uint64(j)
			a, err := lists[i].Append(key)
			if err != nil {
				return Result{}, err
			}
			addrs = append(addrs, a)
		}
	}
	preloadLines(s, addrs, dstruct.ListNodeBytes)

	// Queries: one target per list, at a random depth (or missing).
	type query struct {
		list   int
		target uint64
	}
	queries := make([]query, 0, w.Lists*w.Queries)
	for q := 0; q < w.Queries; q++ {
		for i := range lists {
			target := uint64(i)<<32 | uint64(rng.Intn(w.Nodes))
			if rng.Float64() < w.MissRate {
				target = ^uint64(0)
			}
			queries = append(queries, query{list: i, target: target})
		}
	}
	// Decorrelate query order from allocation order: which core queries
	// which list is arbitrary in a real run.
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })

	cs := newChecksum()
	var finish engine.Time
	nC := s.NumCores()

	if mode == sys.InCore {
		next := make([]int, nC)
		for c := range next {
			next[c] = c
		}
		interleaved(nC, func(c int) bool {
			qi := next[c]
			if qi >= len(queries) {
				return false
			}
			next[c] = qi + nC
			q := queries[qi]
			cc := s.Cores[c]
			found := uint64(0)
			for addr := lists[q.list].Head(); addr != 0; addr = lists[q.list].Next(addr) {
				cc.Load(addr, cpu.Dependent)
				cc.Compute(2)
				if lists[q.list].Key(addr) == q.target {
					found = 1
					break
				}
			}
			cs.addU64(found)
			return next[c] < len(queries)
		})
		finish = coreFinish(s.Cores)
		return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
	}

	// NSC: one pointer-chasing stream per query, issued from the
	// querying core, windowed per core.
	type coreState struct {
		next   int
		window []engine.Time
		wIdx   int
	}
	states := make([]*coreState, nC)
	for c := range states {
		states[c] = &coreState{next: c, window: make([]engine.Time, chaseWindow)}
	}
	interleaved(nC, func(c int) bool {
		st := states[c]
		if st.next >= len(queries) {
			return false
		}
		q := queries[st.next]
		st.next += nC
		start := st.window[st.wIdx]
		ch := stream.NewChaseStream(s.SE, c)
		ch.Start(start, lists[q.list].Head())
		found := uint64(0)
		for addr := lists[q.list].Head(); addr != 0; addr = lists[q.list].Next(addr) {
			ch.Visit(addr, dstruct.ListNodeBytes)
			if lists[q.list].Key(addr) == q.target {
				found = 1
				break
			}
		}
		done := ch.Terminate()
		cs.addU64(found)
		st.window[st.wIdx] = done
		st.wIdx = (st.wIdx + 1) % len(st.window)
		if done > finish {
			finish = done
		}
		return st.next < len(queries)
	})
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// HashJoin is the hash_join workload of Table 3: build a chained hash
// table on the build side, then probe it with the probe side's keys.
type HashJoin struct {
	BuildRows int64
	ProbeRows int64
	Buckets   int64
	HitRate   float64 // fraction of probes that find a match
}

// DefaultHashJoin returns a host-scaled instance (Table 3: 256k ⋈ 512k,
// hit rate 1/8, chains ≤ 8 at paper scale).
func DefaultHashJoin() HashJoin {
	return HashJoin{BuildRows: 32 << 10, ProbeRows: 64 << 10, Buckets: 8 << 10, HitRate: 1.0 / 8}
}

// PaperHashJoin returns the published size.
func PaperHashJoin() HashJoin {
	return HashJoin{BuildRows: 256 << 10, ProbeRows: 512 << 10, Buckets: 64 << 10, HitRate: 1.0 / 8}
}

// Name implements Workload.
func (w HashJoin) Name() string { return "hash_join" }

// Run implements Workload.
func (w HashJoin) Run(s *sys.System, mode sys.Mode) (Result, error) {
	alloc := dalloc(s, mode)
	rng := rand.New(rand.NewSource(workloadSeed(s, 13)))

	ht, err := dstruct.NewHashTable(alloc, w.Buckets)
	if err != nil {
		return Result{}, err
	}
	for k := int64(0); k < w.BuildRows; k++ {
		if err := ht.Insert(uint64(k)*2+1, uint64(k)); err != nil {
			return Result{}, err
		}
	}
	// Warm table into the LLC: bucket array + every chain node.
	s.Mem.Preload(ht.BucketAddr(0), 8*w.Buckets)
	var path []memsim.Addr
	for b := int64(0); b < w.Buckets; b++ {
		_, path, _, _ = ht.ProbePath(^uint64(0), path[:0])
	}
	for k := int64(0); k < w.BuildRows; k++ {
		slot, p, _, _ := ht.ProbePath(uint64(k)*2+1, nil)
		_ = slot
		preloadLines(s, p, dstruct.HashNodeBytes)
	}

	// Probe keys: HitRate of them exist (odd keys), the rest miss (even).
	probes := make([]uint64, w.ProbeRows)
	for i := range probes {
		if rng.Float64() < w.HitRate {
			probes[i] = uint64(rng.Int63n(w.BuildRows))*2 + 1
		} else {
			probes[i] = uint64(rng.Int63n(w.BuildRows*4)) * 2
		}
	}

	cs := newChecksum()
	var matches uint64
	var finish engine.Time
	nC := s.NumCores()

	if mode == sys.InCore {
		next := make([]int, nC)
		for c := range next {
			next[c] = c
		}
		interleaved(nC, func(c int) bool {
			pi := next[c]
			if pi >= len(probes) {
				return false
			}
			next[c] = pi + nC
			cc := s.Cores[c]
			key := probes[pi]
			slot, p, v, ok := ht.ProbePath(key, nil)
			cc.Load(slot, cpu.Irregular)
			for _, addr := range p {
				cc.Load(addr, cpu.Dependent)
				cc.Compute(2)
			}
			if ok {
				matches++
				cs.addU64(v)
			}
			return next[c] < len(probes)
		})
		finish = coreFinish(s.Cores)
	} else {
		type coreState struct {
			next   int
			window []engine.Time
			wIdx   int
		}
		states := make([]*coreState, nC)
		for c := range states {
			states[c] = &coreState{next: c, window: make([]engine.Time, chaseWindow)}
		}
		interleaved(nC, func(c int) bool {
			st := states[c]
			if st.next >= len(probes) {
				return false
			}
			key := probes[st.next]
			st.next += nC
			start := st.window[st.wIdx]
			slot, p, v, ok := ht.ProbePath(key, nil)
			// The probe is offloaded to the bucket's bank, then chases
			// the chain; the verdict returns to the core.
			ch := stream.NewChaseStream(s.SE, c)
			ch.Start(start, slot)
			ch.Visit(slot, 8) // bucket head pointer
			for _, addr := range p {
				ch.Visit(addr, dstruct.HashNodeBytes)
			}
			done := ch.Terminate()
			if ok {
				matches++
				cs.addU64(v)
			}
			st.window[st.wIdx] = done
			st.wIdx = (st.wIdx + 1) % len(st.window)
			if done > finish {
				finish = done
			}
			return st.next < len(probes)
		})
	}
	cs.addU64(matches)
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// BinTree is the bin_tree workload of Table 3: an unbalanced binary
// search tree built by random insertion, probed by uniform lookups.
type BinTree struct {
	Keys    int
	Lookups int
}

// DefaultBinTree returns a host-scaled instance (Table 3: 128k nodes,
// 512k lookups at paper scale).
func DefaultBinTree() BinTree { return BinTree{Keys: 32 << 10, Lookups: 64 << 10} }

// PaperBinTree returns the published size.
func PaperBinTree() BinTree { return BinTree{Keys: 128 << 10, Lookups: 512 << 10} }

// Name implements Workload.
func (w BinTree) Name() string { return "bin_tree" }

// Run implements Workload.
func (w BinTree) Run(s *sys.System, mode sys.Mode) (Result, error) {
	alloc := dalloc(s, mode)
	rng := rand.New(rand.NewSource(workloadSeed(s, 17)))

	tree := dstruct.NewBST(alloc)
	keys := make([]uint64, 0, w.Keys)
	for len(keys) < w.Keys {
		k := rng.Uint64() >> 16
		if err := tree.Insert(k); err != nil {
			return Result{}, err
		}
		keys = append(keys, k)
	}
	// Warm every node line.
	var warm func(addr memsim.Addr)
	warm = func(addr memsim.Addr) {
		if addr == 0 {
			return
		}
		s.Mem.Preload(addr, dstruct.BSTNodeBytes)
		_, l, r := tree.Node(addr)
		warm(l)
		warm(r)
	}
	warm(tree.Root())

	lookups := make([]uint64, w.Lookups)
	for i := range lookups {
		lookups[i] = keys[rng.Intn(len(keys))]
	}

	cs := newChecksum()
	var finish engine.Time
	nC := s.NumCores()
	paths := make([][]memsim.Addr, nC)

	if mode == sys.InCore {
		next := make([]int, nC)
		for c := range next {
			next[c] = c
		}
		interleaved(nC, func(c int) bool {
			li := next[c]
			if li >= len(lookups) {
				return false
			}
			next[c] = li + nC
			cc := s.Cores[c]
			path, found := tree.SearchPath(lookups[li], paths[c][:0])
			paths[c] = path
			for _, addr := range path {
				cc.Load(addr, cpu.Dependent)
				cc.Compute(3)
			}
			if !found {
				return true
			}
			cs.addU64(uint64(len(path)))
			return next[c] < len(lookups)
		})
		finish = coreFinish(s.Cores)
	} else {
		type coreState struct {
			next   int
			window []engine.Time
			wIdx   int
		}
		states := make([]*coreState, nC)
		for c := range states {
			states[c] = &coreState{next: c, window: make([]engine.Time, chaseWindow)}
		}
		interleaved(nC, func(c int) bool {
			st := states[c]
			if st.next >= len(lookups) {
				return false
			}
			key := lookups[st.next]
			st.next += nC
			start := st.window[st.wIdx]
			path, found := tree.SearchPath(key, paths[c][:0])
			paths[c] = path
			ch := stream.NewChaseStream(s.SE, c)
			ch.Start(start, tree.Root())
			for _, addr := range path {
				ch.Visit(addr, dstruct.BSTNodeBytes)
			}
			done := ch.Terminate()
			if found {
				cs.addU64(uint64(len(path)))
			}
			st.window[st.wIdx] = done
			st.wIdx = (st.wIdx + 1) % len(st.window)
			if done > finish {
				finish = done
			}
			return st.next < len(lookups)
		})
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

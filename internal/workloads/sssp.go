package workloads

import (
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/dstruct"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// SSSP is the sssp workload of Table 3: frontier-driven single-source
// shortest paths by edge relaxation (atomic min on the distance array,
// re-pushing improved vertices), on uniformly weighted edges.
type SSSP struct {
	G   *graph.Graph
	Src int32 // -1: highest-degree vertex
	// Oracle enables the Fig-6 chunked-placement study (CSR modes only).
	Oracle *EdgeOracle
}

// DefaultSSSP returns a host-scaled sssp on a weighted Kronecker graph.
func DefaultSSSP() SSSP {
	g := graph.Kronecker(15, 16, 42)
	g.AddUniformWeights(1, 255, 42)
	return SSSP{G: g, Src: -1}
}

// Name implements Workload.
func (w SSSP) Name() string { return "sssp" }

// Run implements Workload.
func (w SSSP) Run(s *sys.System, mode sys.Mode) (Result, error) {
	res, _, err := w.RunTraced(s, mode)
	return res, err
}

// RunTraced is Run plus per-round timings.
func (w SSSP) RunTraced(s *sys.System, mode sys.Mode) (Result, []IterTrace, error) {
	g := w.G
	gd, err := buildGraphData(s, mode, g, nil, graphSetup{
		needQueue: true,
		propElem:  4,
		oracle:    w.Oracle,
	})
	if err != nil {
		return Result{}, nil, err
	}

	src := w.Src
	if src < 0 {
		src = g.MaxDegreeVertex()
	}
	n := int64(g.N)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	dist[src] = 0
	inNext := make([]bool, n)

	var curG, nxtG *dstruct.GlobalQueue
	var curS, nxtS *dstruct.SpatialQueue
	if mode == sys.AffAlloc {
		curS = gd.sq
		nxtS, err = dstruct.NewSpatialQueue(s.RT, gd.prop, int64(s.NumCores()), 1)
		if err != nil {
			return Result{}, nil, err
		}
		s.PreloadArray(nxtS.Info())
		s.PreloadArray(nxtS.TailsInfo())
		if _, _, err := curS.Push(src); err != nil {
			return Result{}, nil, err
		}
	} else {
		curG = gd.gq
		nxtG, err = dstruct.NewGlobalQueue(s.RT, n+1)
		if err != nil {
			return Result{}, nil, err
		}
		s.Mem.Preload(nxtG.TailAddr(), 8)
		s.Mem.Preload(nxtG.SlotAddr(0), 4*(n+1))
		if _, _, err := curG.Push(src); err != nil {
			return Result{}, nil, err
		}
	}

	frontier := int64(1)
	var traces []IterTrace
	var finish engine.Time

	for round := 0; frontier > 0; round++ {
		roundStart := finish
		if mode == sys.AffAlloc {
			nxtS.Reset()
		} else {
			nxtG.Reset()
		}
		var active int64
		active, finish, err = w.relaxRound(s, gd, mode, dist, inNext, curG, nxtG, curS, nxtS, finish)
		if err != nil {
			return Result{}, nil, err
		}
		curG, nxtG = nxtG, curG
		curS, nxtS = nxtS, curS
		frontier = active
		traces = append(traces, IterTrace{
			Iter: round, Dir: graph.Push,
			Start: roundStart, End: finish, Active: active,
		})
	}

	cs := newChecksum()
	for v := int64(0); v < n; v++ {
		cs.addU64(uint64(dist[v]))
	}
	res := Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}
	return res, traces, nil
}

// relaxRound relaxes every out-edge of the current frontier.
func (w SSSP) relaxRound(s *sys.System, gd *graphData, mode sys.Mode, dist []int64, inNext []bool,
	curG, nxtG *dstruct.GlobalQueue, curS, nxtS *dstruct.SpatialQueue, start engine.Time) (int64, engine.Time, error) {

	g := w.G
	nC := s.NumCores()
	finish := start
	var active int64
	var pushed []int32

	src := flattenFrontier(mode == sys.AffAlloc, curG, curS)
	total := src.total
	push := func(v int32) (memsim.Addr, memsim.Addr, error) {
		if mode == sys.AffAlloc {
			return nxtS.Push(v)
		}
		return nxtG.Push(v)
	}

	// Dynamic scheduling: see BFS.pushIter.
	var cursor int64
	var outerErr error
	if mode == sys.InCore {
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			i := cursor
			if i >= total || outerErr != nil {
				return false
			}
			cursor++
			cc := s.Cores[c]
			u := src.get(i)
			cc.Load(src.addr(i), cpu.Streaming)
			cc.Load(gd.idx.ElemAddr(int64(u)), cpu.Irregular)
			du := dist[u]
			for k := g.Index[u]; k < g.Index[u+1]; k++ {
				v := g.Edges[k]
				if k%int64(memsim.LineSize/gd.weightsPerEdge) == 0 || k == g.Index[u] {
					cc.Load(gd.edgeAddr(k), cpu.Streaming)
				}
				cc.Atomic(gd.prop.ElemAddr(int64(v)))
				nd := du + int64(g.Weights[k])
				if nd < dist[v] {
					dist[v] = nd
					if !inNext[v] {
						inNext[v] = true
						active++
						pushed = append(pushed, v)
						cc.Atomic(nxtG.TailAddr())
						_, slotAddr, err := push(v)
						if err != nil {
							outerErr = err
							return false
						}
						cc.Store(slotAddr, cpu.Irregular)
					}
				}
			}
			return cursor < total
		})
		for _, v := range pushed {
			inNext[v] = false
		}
		return active, coreFinish(s.Cores), outerErr
	}

	// NSC relaxation.
	type st struct {
		i      int64
		qS     *stream.AffineStream
		idxS   *stream.AffineStream
		edgeS  *stream.AffineStream
		chain  *stream.ChainStream
		ops    *stream.OpWindow
		window []engine.Time
		wIdx   int
	}
	states := make([]*st, nC)
	for c := 0; c < nC; c++ {
		state := &st{window: make([]engine.Time, passWindow), ops: stream.NewOpWindow(opWindow)}
		if total > 0 {
			state.qS = stream.NewAffineStream(s.SE, c, src.addr(0), 4, 1, total, false)
			state.qS.Start(start)
		}
		if mode == sys.AffAlloc {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.heads.Base, gd.heads.ElemStride, 1, int64(g.N), false)
			state.chain = stream.NewChainStream(s.SE, c, passWindow)
		} else {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.idx.Base, gd.idx.ElemStride, 1, int64(g.N)+1, false)
			state.edgeS = stream.NewAffineStream(s.SE, c, gd.edges.Base, gd.edges.ElemStride, 1, g.NumEdges(), false)
		}
		states[c] = state
	}
	interleaved(nC, func(c int) bool {
		state := states[c]
		for k := 0; k < chunkVerts; k++ {
			i := cursor
			if i >= total || outerErr != nil {
				return false
			}
			cursor++
			notBefore := engine.MaxTime(start, state.window[state.wIdx])
			_, tq := state.qS.AddrReady(src.addr(i), notBefore)
			u := src.get(i)
			_, tIdx := state.idxS.AddrReady(gd.headAddr(u), tq)
			t := tIdx
			last := t
			du := dist[u]

			relax := func(v int32, weight int32, te engine.Time, eBank int) {
				target := gd.prop.ElemAddr(int64(v))
				done, vBank := s.SE.RemoteOp(state.ops.Issue(te), gd.indirectFrom(s, eBank, target), target, true, false)
				nd := du + int64(weight)
				if nd < dist[v] {
					dist[v] = nd
					if !inNext[v] {
						inNext[v] = true
						active++
						pushed = append(pushed, v)
						tailAddr, slotAddr, err := push(v)
						if err != nil {
							outerErr = err
							return
						}
						done = queuePushTiming(s, mode == sys.AffAlloc, done, vBank, tailAddr, slotAddr)
					}
				}
				state.ops.Complete(done)
				last = engine.MaxTime(last, done)
			}

			if mode == sys.AffAlloc {
				state.chain.BeginChain(t)
				nodeB := gd.lcsr.NodeBytes()
				for _, node := range gd.lcsr.Chains[u] {
					tn := state.chain.VisitNode(node.Addr, nodeB)
					for e, v := range node.Edges {
						relax(v, node.Weights[e], tn, state.chain.Bank())
						if outerErr != nil {
							return false
						}
					}
				}
				state.chain.EndChain()
			} else {
				for k := g.Index[u]; k < g.Index[u+1]; k++ {
					eb, te := state.edgeS.AddrReady(gd.edgeAddr(k), t)
					relax(g.Edges[k], g.Weights[k], te, eb)
					if outerErr != nil {
						return false
					}
				}
			}
			state.window[state.wIdx] = last
			state.wIdx = (state.wIdx + 1) % len(state.window)
			if last > finish {
				finish = last
			}
		}
		return cursor < total
	})
	for _, v := range pushed {
		inNext[v] = false
	}
	return active, finish, outerErr
}

package workloads

import (
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
)

// Skew is the synthetic two-phase hotspot workload behind the online
// re-allocation tests: 2×Chunks irregular chunks are deliberately piled
// onto one bank (the Fig-6 oracle API makes the pathology explicit),
// then phase 1 hammers the first half and phase 2 shifts the working
// set to the second half. A static allocator is stuck with the pile-up;
// the reconciler should spread the hot chunks, re-converge after the
// phase change, and then stop migrating. The access pattern is identical
// in every mode — modes differ only in the issue path (core loads
// in-core, stream-engine remote ops otherwise) — so checksums agree.
type Skew struct {
	Chunks      int   // chunks per phase (2×Chunks allocated)
	ChunkBytes  int64 // bytes per chunk (rounded up to a pool interleave)
	OpsPerPhase int
	HotBank     int
}

// DefaultSkew returns the regression-test sizing: enough ops per phase
// for several reconciliation epochs at the test cadence.
func DefaultSkew() Skew {
	return Skew{Chunks: 12, ChunkBytes: 1024, OpsPerPhase: 6000, HotBank: 27}
}

// Name implements Workload.
func (w Skew) Name() string { return "skew" }

// Run implements Workload.
func (w Skew) Run(s *sys.System, mode sys.Mode) (Result, error) {
	total := 2 * w.Chunks
	bases := make([]memsim.Addr, total)
	for i := range bases {
		addr, err := s.RT.AllocAtBank(w.ChunkBytes, w.HotBank)
		if err != nil {
			return Result{}, err
		}
		bases[i] = addr
		s.Mem.Preload(addr, w.ChunkBytes)
	}

	cs := newChecksum()
	var finish engine.Time
	for phase := 0; phase < 2; phase++ {
		lo := phase * w.Chunks
		finish = w.runPhase(s, mode, bases[lo:lo+w.Chunks], finish, cs)
	}
	return Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}, nil
}

// runPhase hammers the given chunks with OpsPerPhase dependent ops,
// round-robined over the chunks and striding lines within each, and
// returns the phase finish cycle.
func (w Skew) runPhase(s *sys.System, mode sys.Mode, chunks []memsim.Addr, start engine.Time, cs *checksum) engine.Time {
	nC := s.NumCores()
	lines := int(w.ChunkBytes) / memsim.LineSize
	addrOf := func(op int) (memsim.Addr, bool) {
		base := chunks[op%len(chunks)]
		off := memsim.Addr((op / len(chunks) % lines) * memsim.LineSize)
		return base + off, op%4 == 3
	}
	finish := start
	var cursor int

	if mode == sys.InCore {
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			if cursor >= w.OpsPerPhase {
				return false
			}
			va, write := addrOf(cursor)
			cursor++
			cs.addU64(uint64(va))
			cc := s.Cores[c]
			if write {
				cc.Store(va, cpu.Irregular)
			} else {
				cc.Load(va, cpu.Irregular)
			}
			return cursor < w.OpsPerPhase
		})
		return engine.MaxTime(finish, coreFinish(s.Cores))
	}

	now := make([]engine.Time, nC)
	for c := range now {
		now[c] = start
	}
	interleaved(nC, func(c int) bool {
		if cursor >= w.OpsPerPhase {
			return false
		}
		va, write := addrOf(cursor)
		cursor++
		cs.addU64(uint64(va))
		done, _ := s.SE.RemoteOp(now[c], c, va, write, true)
		now[c] = done
		if done > finish {
			finish = done
		}
		return cursor < w.OpsPerPhase
	})
	return finish
}

// Package workloads implements the ten Table-3 benchmarks (plus the Fig-4
// vector-add microbenchmark), each runnable under all three §6
// configurations: In-Core (OOO cores + prefetchers, nothing offloaded),
// Near-L3 (streams offloaded, affinity-oblivious layout, original data
// structures), and Aff-Alloc (streams offloaded, affinity allocation,
// co-designed data structures).
//
// Every workload both computes its real result (stored in / checked
// against simulated memory or reference algorithms — the Checksum field)
// and drives the timing model, so layout changes can never silently break
// correctness.
package workloads

import (
	"fmt"
	"hash/fnv"
	"math"

	"affinityalloc/internal/cpu"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
)

// Result is one run's outcome.
type Result struct {
	Name     string
	Mode     sys.Mode
	Metrics  sys.Metrics
	Checksum uint64
}

// Workload is one benchmark with fixed parameters.
type Workload interface {
	Name() string
	// Run allocates, initializes, executes and measures the workload on
	// a freshly built system.
	Run(s *sys.System, mode sys.Mode) (Result, error)
}

// Run builds a system from cfg and runs w under mode.
func Run(cfg sys.Config, w Workload, mode sys.Mode) (Result, error) {
	return RunTraced(cfg, w, mode, nil)
}

// RunTraced is Run with an optional trace recorder attached to the
// system's observer hooks before the workload executes (nil records
// nothing). Observation is outcome-only, so a recording run returns
// byte-identical Results to a direct run.
func RunTraced(cfg sys.Config, w Workload, mode sys.Mode, rec *trace.Recorder) (Result, error) {
	s, err := sys.New(cfg)
	if err != nil {
		return Result{}, err
	}
	rec.Begin(cfg, mode)
	rec.Attach(s)
	r, err := w.Run(s, mode)
	rec.Finish(uint64(r.Metrics.Cycles))
	return r, err
}

// checksum hashes a stream of words.
type checksum struct{ h uint64 }

func newChecksum() *checksum { return &checksum{h: 1469598103934665603} }

func (c *checksum) addU64(v uint64) {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	c.h = c.h*31 + h.Sum64()
}

func (c *checksum) addU32(v uint32)  { c.addU64(uint64(v)) }
func (c *checksum) addF32(v float32) { c.addU64(uint64(math.Float32bits(v))) }
func (c *checksum) sum() uint64      { return c.h }

// workloadSeed derives a workload-local RNG seed from the system's
// configured seed, so `-seed N` actually varies workload inputs while
// distinct workloads under one seed stay decorrelated (each passes its
// own salt). Seed 1 maps to the bare salt, preserving the historically
// committed seed-1 experiment numbers.
func workloadSeed(s *sys.System, salt int64) int64 {
	return (s.Cfg.Seed-1)*1000003 + salt
}

// coreFinish returns the drain time of the latest core.
func coreFinish(cores []*cpu.Core) engine.Time {
	var t engine.Time
	for _, c := range cores {
		if d := c.Drained(); d > t {
			t = d
		}
	}
	return t
}

// partition splits n items across k workers, returning worker w's
// half-open range.
func partition(n int64, k, w int) (lo, hi int64) {
	lo = n * int64(w) / int64(k)
	hi = n * int64(w+1) / int64(k)
	return lo, hi
}

// interleaved drives per-core work in round-robin chunks so concurrent
// cores contend for banks and links the way parallel execution would.
// next(core) processes one chunk for that core and reports whether the
// core has more work.
func interleaved(nCores int, next func(core int) bool) {
	live := make([]bool, nCores)
	remaining := nCores
	for i := range live {
		live[i] = true
	}
	for remaining > 0 {
		for c := 0; c < nCores; c++ {
			if live[c] && !next(c) {
				live[c] = false
				remaining--
			}
		}
	}
}

// chunkVerts is how many vertices a core advances per interleaved driver
// turn in the graph workloads.
const chunkVerts = 8

// opWindow bounds each core's outstanding indirect operations (the
// SEL3 per-stream request buffer; cf. Table 2's 12-stream SEcore).
const opWindow = 12

// errModeUnsupported flags an invalid mode value.
func errModeUnsupported(m sys.Mode) error {
	return fmt.Errorf("workloads: unsupported mode %v", m)
}

package workloads

import (
	"fmt"
	"sort"

	"affinityalloc/internal/core"
	"affinityalloc/internal/dstruct"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
)

// graphData is a graph materialized in simulated memory for one mode:
//
//   - In-Core / Near-L3: the original CSR (index + edge arrays) from the
//     baseline allocator, a global work queue, and property arrays laid
//     out obliviously;
//   - Aff-Alloc: a partitioned property array, the Linked CSR co-designed
//     format with each edge node allocated near the properties its edges
//     target (§5.3), per-vertex head pointers aligned to the partition,
//     and the spatially distributed queue (Fig 9).
type graphData struct {
	mode sys.Mode
	g    *graph.Graph
	gt   *graph.Graph

	// prop is the indirect-access target (levels, distances, ranks).
	prop *core.ArrayInfo
	// prop2 is a second elementwise property (e.g. PageRank sums).
	prop2 *core.ArrayInfo

	// Original CSR (In-Core / Near-L3).
	idx, edges     *core.ArrayInfo
	idxT, edgesT   *core.ArrayInfo
	weightsPerEdge int // bytes per edge for traffic accounting

	// Linked CSR (Aff-Alloc).
	lcsr, lcsrT *dstruct.LinkedCSR
	heads       *core.ArrayInfo // per-vertex chain head pointers
	headsT      *core.ArrayInfo // transpose chain head pointers

	// Work queues.
	gq *dstruct.GlobalQueue
	sq *dstruct.SpatialQueue

	// edgeMap / edgeMapT, when set, override the CSR edge-slot address
	// mapping — the Fig-6 chunked-placement study's hook.
	edgeMap  func(i int64) memsim.Addr
	edgeMapT func(i int64) memsim.Addr
	// idealInd eliminates indirect-request traffic entirely (Fig 6's
	// "Ind-Ideal"): every indirect operation issues from its target's
	// own bank.
	idealInd bool
}

// EdgeOracle configures the Fig-6 idealized chunked-CSR placement study:
// the edge array is broken into ChunkBytes chunks, each placed on the L3
// bank minimizing its indirect traffic subject to a 2% load-imbalance
// cap. ChunkBytes == 0 requests the "Ind-Ideal" upper bound, where
// indirect operations cost no request traffic at all.
type EdgeOracle struct {
	ChunkBytes int
}

// graphSetup describes what a graph workload needs materialized.
type graphSetup struct {
	needPull   bool // transpose structures
	needQueue  bool // frontier queue
	needProp2  bool // second property array
	propElem   int  // property element size in bytes
	prop2Elem  int
	queueSlack int64 // extra queue capacity factor (sssp re-pushes), >= 1
	oracle     *EdgeOracle
	// oracleTargetProp2 points the oracle's placement at prop2 (the
	// array push-PageRank's indirect ops actually target).
	oracleTargetProp2 bool
	// nodeBytes overrides the linked-CSR node size (ablation; 0 = 64B).
	nodeBytes int
}

func buildGraphData(s *sys.System, mode sys.Mode, g, gt *graph.Graph, setup graphSetup) (*graphData, error) {
	if setup.propElem == 0 {
		setup.propElem = 4
	}
	if setup.prop2Elem == 0 {
		setup.prop2Elem = setup.propElem
	}
	if setup.queueSlack < 1 {
		setup.queueSlack = 1
	}
	gd := &graphData{mode: mode, g: g, gt: gt}
	n := int64(g.N)

	// Property arrays: partitioned under Aff-Alloc so partition p lives
	// on bank p (Fig 9), oblivious otherwise.
	var err error
	gd.prop, err = s.Alloc(mode, core.AffineSpec{ElemSize: setup.propElem, NumElem: n, Partition: true})
	if err != nil {
		return nil, err
	}
	s.PreloadArray(gd.prop)
	if setup.needProp2 {
		spec := core.AffineSpec{ElemSize: setup.prop2Elem, NumElem: n}
		if mode == sys.AffAlloc {
			spec.AlignTo = gd.prop.Base
		}
		gd.prop2, err = s.Alloc(mode, spec)
		if err != nil {
			return nil, err
		}
		s.PreloadArray(gd.prop2)
	}

	if mode == sys.AffAlloc {
		nodeBytes := setup.nodeBytes
		if nodeBytes == 0 {
			nodeBytes = dstruct.CSRNodeBytes
		}
		alloc := dstruct.Alloc{RT: s.RT, Affinity: true}
		gd.lcsr, err = dstruct.BuildLinkedCSRSized(alloc, g, gd.prop, nodeBytes)
		if err != nil {
			return nil, err
		}
		preloadLinkedCSR(s, gd.lcsr)
		if setup.needPull {
			gd.lcsrT, err = dstruct.BuildLinkedCSRSized(alloc, gt, gd.prop, nodeBytes)
			if err != nil {
				return nil, err
			}
			preloadLinkedCSR(s, gd.lcsrT)
		}
		headSpec := core.AffineSpec{ElemSize: 8, NumElem: n, AlignTo: gd.prop.Base}
		gd.heads, err = s.RT.AllocAffine(headSpec)
		if err != nil {
			return nil, err
		}
		s.PreloadArray(gd.heads)
		if setup.needPull {
			gd.headsT, err = s.RT.AllocAffine(headSpec)
			if err != nil {
				return nil, err
			}
			s.PreloadArray(gd.headsT)
		}
		if setup.needQueue {
			gd.sq, err = dstruct.NewSpatialQueue(s.RT, gd.prop, int64(s.NumCores()), setup.queueSlack)
			if err != nil {
				return nil, err
			}
			s.PreloadArray(gd.sq.Info())
			s.PreloadArray(gd.sq.TailsInfo())
		}
		return gd, nil
	}

	// Conventional CSR.
	perEdge := 4
	if g.Weights != nil {
		perEdge = 8
	}
	gd.weightsPerEdge = perEdge
	gd.idx, err = s.Alloc(mode, core.AffineSpec{ElemSize: 8, NumElem: n + 1})
	if err != nil {
		return nil, err
	}
	gd.edges, err = s.Alloc(mode, core.AffineSpec{ElemSize: perEdge, NumElem: g.NumEdges()})
	if err != nil {
		return nil, err
	}
	s.PreloadArray(gd.idx)
	s.PreloadArray(gd.edges)
	if setup.needPull {
		gd.idxT, err = s.Alloc(mode, core.AffineSpec{ElemSize: 8, NumElem: n + 1})
		if err != nil {
			return nil, err
		}
		gd.edgesT, err = s.Alloc(mode, core.AffineSpec{ElemSize: perEdge, NumElem: gt.NumEdges()})
		if err != nil {
			return nil, err
		}
		s.PreloadArray(gd.idxT)
		s.PreloadArray(gd.edgesT)
	}
	if setup.needQueue {
		gd.gq, err = dstruct.NewGlobalQueue(s.RT, n*setup.queueSlack+1)
		if err != nil {
			return nil, err
		}
		s.Mem.Preload(gd.gq.TailAddr(), 8)
		s.Mem.Preload(gd.gq.SlotAddr(0), 4*(n*setup.queueSlack+1))
	}
	if setup.oracle != nil {
		target := gd.prop
		if setup.oracleTargetProp2 {
			target = gd.prop2
		}
		if setup.oracle.ChunkBytes == 0 {
			gd.idealInd = true
		} else {
			gd.edgeMap, err = placeChunkedEdges(s, g.Edges, target, setup.oracle.ChunkBytes, perEdge)
			if err != nil {
				return nil, err
			}
			if setup.needPull {
				gd.edgeMapT, err = placeChunkedEdges(s, gt.Edges, gd.prop, setup.oracle.ChunkBytes, perEdge)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return gd, nil
}

// placeChunkedEdges implements the Fig-6 oracle: break the edge array
// into fixed-size chunks and place each on the bank minimizing the total
// hop distance to the property entries its edges target, subject to a 2%%
// load-imbalance cap (chunks with the least traffic reduction spill to
// the least occupied bank, as the paper's footnote describes).
func placeChunkedEdges(s *sys.System, edges []int32, prop *core.ArrayInfo, chunkBytes, perEdge int) (func(i int64) memsim.Addr, error) {
	epc := int64(chunkBytes / perEdge)
	if epc < 1 {
		epc = 1
	}
	nEdges := int64(len(edges))
	nChunks := (nEdges + epc - 1) / epc
	nb := s.Mesh.Banks()

	best := make([]int, nChunks)
	benefit := make([]float64, nChunks)
	load := make([]int64, nb)
	hist := make([]int64, nb)
	for j := int64(0); j < nChunks; j++ {
		for b := range hist {
			hist[b] = 0
		}
		lo, hi := j*epc, (j+1)*epc
		if hi > nEdges {
			hi = nEdges
		}
		for i := lo; i < hi; i++ {
			hist[s.Mem.BankOf(prop.ElemAddr(int64(edges[i])))]++
		}
		bestBank, bestCost, sumCost := 0, int64(1)<<62, int64(0)
		for b := 0; b < nb; b++ {
			var cost int64
			for tb, cnt := range hist {
				if cnt > 0 {
					cost += cnt * int64(s.Mesh.Hops(b, tb))
				}
			}
			sumCost += cost
			if cost < bestCost {
				bestBank, bestCost = b, cost
			}
		}
		best[j] = bestBank
		benefit[j] = float64(sumCost)/float64(nb) - float64(bestCost)
		load[bestBank]++
	}

	// Enforce the 2% imbalance cap by spilling least-beneficial chunks.
	cap64 := int64(float64(nChunks)/float64(nb)*1.02) + 1
	order := make([]int64, nChunks)
	for j := range order {
		order[j] = int64(j)
	}
	sort.Slice(order, func(a, b int) bool { return benefit[order[a]] < benefit[order[b]] })
	for _, j := range order {
		b := best[j]
		if load[b] <= cap64 {
			continue
		}
		min := 0
		for cand := 1; cand < nb; cand++ {
			if load[cand] < load[min] {
				min = cand
			}
		}
		load[b]--
		load[min]++
		best[j] = min
	}

	// Materialize the placement through the allocator's oracle API.
	bases := make([]memsim.Addr, nChunks)
	for j := int64(0); j < nChunks; j++ {
		addr, err := s.RT.AllocAtBank(int64(chunkBytes), best[j])
		if err != nil {
			return nil, err
		}
		bases[j] = addr
		s.Mem.Preload(addr, int64(chunkBytes))
	}
	return func(i int64) memsim.Addr {
		j := i / epc
		return bases[j] + memsim.Addr((i%epc)*int64(perEdge))
	}, nil
}

func preloadLinkedCSR(s *sys.System, lc *dstruct.LinkedCSR) {
	for _, chain := range lc.Chains {
		for _, node := range chain {
			s.Mem.Preload(node.Addr, int64(lc.NodeBytes()))
		}
	}
}

// edgeAddr returns the simulated address of edge slot i in a CSR edge
// array (including its weight bytes).
func (gd *graphData) edgeAddr(i int64) memsim.Addr {
	if gd.edgeMap != nil {
		return gd.edgeMap(i)
	}
	return gd.edges.ElemAddr(i)
}

// edgeAddrT is edgeAddr for the transpose.
func (gd *graphData) edgeAddrT(i int64) memsim.Addr {
	if gd.edgeMapT != nil {
		return gd.edgeMapT(i)
	}
	return gd.edgesT.ElemAddr(i)
}

// indirectFrom returns the bank an indirect operation on target address
// va issues from: the edge stream's bank normally, the target's own bank
// under the Ind-Ideal oracle.
func (gd *graphData) indirectFrom(s *sys.System, eBank int, va memsim.Addr) int {
	if gd.idealInd {
		return s.Mem.BankOf(va)
	}
	return eBank
}

// headAddr returns the address holding vertex u's edge-list metadata:
// the linked-CSR head pointer under Aff-Alloc, the CSR index entry
// otherwise.
func (gd *graphData) headAddr(u int32) memsim.Addr {
	if gd.mode == sys.AffAlloc {
		return gd.heads.ElemAddr(int64(u))
	}
	return gd.idx.ElemAddr(int64(u))
}

// headAddrT is headAddr for the transpose structures.
func (gd *graphData) headAddrT(v int32) memsim.Addr {
	if gd.mode == sys.AffAlloc {
		return gd.headsT.ElemAddr(int64(v))
	}
	return gd.idxT.ElemAddr(int64(v))
}

// validateMode guards against double setup.
func (gd *graphData) validateMode(mode sys.Mode) error {
	if gd.mode != mode {
		return fmt.Errorf("workloads: graph data built for %v used under %v", gd.mode, mode)
	}
	return nil
}

package workloads

import (
	"affinityalloc/internal/core"
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// operand is one input of an elementwise pass: the element at loop index
// i reads arr[i+off] (clamped to the array). halo marks stencil operands
// that also consume their ±1 neighbors, which costs a small forward when
// a group straddles an interleave-chunk boundary.
type operand struct {
	arr  *core.ArrayInfo
	off  int64
	halo bool
}

// pass is one elementwise kernel out[i] = f(ops...[i+off]) for i in
// [0, n): the shape of every affine workload (Fig 2a and the Rodinia
// stencils). weight is compute operations per element.
type pass struct {
	ops    []operand
	out    *core.ArrayInfo
	n      int64
	weight int
}

func clampIdx(i, n int64) int64 {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// groupElems picks the pass's scheduling granularity: the elements of one
// output cache line.
func (p pass) groupElems() int64 {
	g := int64(memsim.LineSize / p.out.ElemStride)
	if g < 1 {
		g = 1
	}
	return g
}

// coreGroups builds core c's group list — the [g0, g1) element ranges it
// processes, in processing order. The order is the core's contiguous
// range rotated so different cores start at different offsets: offloaded
// streams (and prefetching cores) naturally slip out of lockstep and
// spread over the banks instead of camping on the same bank wavefront;
// the deterministic round-robin driver needs the stagger made explicit.
func (p pass) coreGroups(c, nC int) [][2]int64 {
	lo, hi := partition(p.n, nC, c)
	if lo >= hi {
		return nil
	}
	group := p.groupElems()
	var groups [][2]int64
	for g0 := lo; g0 < hi; {
		g1 := g0 + group - (g0 % group)
		if g1 > hi {
			g1 = hi
		}
		groups = append(groups, [2]int64{g0, g1})
		g0 = g1
	}
	rot := len(groups) * c / nC
	if rot == 0 {
		return groups
	}
	rotated := make([][2]int64, 0, len(groups))
	rotated = append(rotated, groups[rot:]...)
	rotated = append(rotated, groups[:rot]...)
	return rotated
}

// chunkGroups is how many output lines a core advances per interleaved
// driver turn.
const chunkGroups = 8

// debugPass, when non-nil, observes every group's scheduling (test aid).
var debugPass func(core, group, outBank int, notBefore, ready, compDone uint64)

// passWindow bounds in-flight groups per core (credit-based flow control
// between dependent streams, §2.2).
const passWindow = 32

// runNSC executes the pass with streams offloaded to the L3 banks,
// starting every core at cycle start, and returns the finish cycle.
func (p pass) runNSC(s *sys.System, start engine.Time) engine.Time {
	eng := s.SE
	mem := s.Mem
	nC := s.NumCores()

	type coreState struct {
		groups [][2]int64
		next   int
		in     []*stream.AffineStream
		out    *stream.AffineStream
		window []engine.Time
		wIdx   int
	}
	states := make([]*coreState, nC)
	for c := 0; c < nC; c++ {
		groups := p.coreGroups(c, nC)
		st := &coreState{groups: groups, window: make([]engine.Time, passWindow)}
		if len(groups) > 0 {
			for _, op := range p.ops {
				base := op.arr.ElemAddr(clampIdx(groups[0][0]+op.off, op.arr.NumElem))
				as := stream.NewAffineStream(eng, c, base, op.arr.ElemStride, 1, p.n, false)
				as.Start(start)
				st.in = append(st.in, as)
			}
			st.out = stream.NewAffineStream(eng, c, p.out.ElemAddr(groups[0][0]), p.out.ElemStride, 1, p.n, true)
			st.out.Start(start)
		}
		states[c] = st
	}

	finish := start
	interleaved(nC, func(c int) bool {
		st := states[c]
		if st.next >= len(st.groups) {
			return false
		}
		for g := 0; g < chunkGroups && st.next < len(st.groups); g++ {
			g0, g1 := st.groups[st.next][0], st.groups[st.next][1]
			st.next++
			elems := int(g1 - g0)
			outBank := mem.BankOf(p.out.ElemAddr(g0))
			notBefore := engine.MaxTime(start, st.window[st.wIdx])

			var ready engine.Time
			for k, op := range p.ops {
				var opReady engine.Time
				opBank := 0
				for i := g0; i < g1; i++ {
					idx := clampIdx(i+op.off, op.arr.NumElem)
					b, t := st.in[k].AddrReady(op.arr.ElemAddr(idx), notBefore)
					opBank = b
					if t > opReady {
						opReady = t
					}
				}
				if op.halo {
					// The +1 neighbor of the group's last element may
					// live in the next interleave chunk on another
					// bank; one small forward fetches it.
					nxt := clampIdx(g1+op.off, op.arr.NumElem)
					nb := mem.BankOf(op.arr.ElemAddr(nxt))
					if nb != opBank {
						opReady = eng.Forward(opReady, nb, opBank, 8)
					}
				}
				// Forward the operand's bytes to the computing bank.
				t := eng.Forward(opReady, opBank, outBank, elems*op.arr.ElemStride)
				if t > ready {
					ready = t
				}
			}
			compDone := eng.Compute(ready, outBank, elems*p.weight)
			if debugPass != nil {
				debugPass(c, st.next-1, outBank, uint64(notBefore), uint64(ready), uint64(compDone))
			}
			st.out.AddrReady(p.out.ElemAddr(g0), compDone)
			st.window[st.wIdx] = compDone
			st.wIdx = (st.wIdx + 1) % len(st.window)
		}
		if f := st.out.Finish(); f > finish {
			finish = f
		}
		return st.next < len(st.groups)
	})
	for _, st := range states {
		if st.out == nil {
			continue
		}
		if f := st.out.Finish(); f > finish {
			finish = f
		}
		for _, in := range st.in {
			if f := in.Finish(); f > finish {
				finish = f
			}
		}
	}
	return finish
}

// runInCore executes the pass on the OOO cores with prefetched streaming
// accesses, and returns the finish cycle.
func (p pass) runInCore(s *sys.System, start engine.Time) engine.Time {
	nC := s.NumCores()

	type coreState struct {
		groups   [][2]int64
		next     int
		curLines []memsim.Addr // last-touched line per operand
	}
	states := make([]*coreState, nC)
	for c := 0; c < nC; c++ {
		st := &coreState{groups: p.coreGroups(c, nC), curLines: make([]memsim.Addr, len(p.ops))}
		for k := range st.curLines {
			st.curLines[k] = ^memsim.Addr(0)
		}
		s.Cores[c].SetNow(start)
		states[c] = st
	}

	interleaved(nC, func(c int) bool {
		st := states[c]
		if st.next >= len(st.groups) {
			return false
		}
		cc := s.Cores[c]
		for g := 0; g < chunkGroups && st.next < len(st.groups); g++ {
			g0, g1 := st.groups[st.next][0], st.groups[st.next][1]
			st.next++
			elems := int(g1 - g0)
			for k, op := range p.ops {
				for i := g0; i < g1; i++ {
					addr := op.arr.ElemAddr(clampIdx(i+op.off, op.arr.NumElem))
					line := memsim.LineAddr(addr)
					if line != st.curLines[k] {
						st.curLines[k] = line
						cc.Load(line, cpu.Streaming)
					}
				}
			}
			cc.ComputeSIMD(elems * p.weight)
			cc.Store(p.out.ElemAddr(g0), cpu.Streaming)
		}
		return st.next < len(st.groups)
	})
	return coreFinish(s.Cores)
}

// run dispatches on mode.
func (p pass) run(s *sys.System, mode sys.Mode, start engine.Time) engine.Time {
	if mode == sys.InCore {
		return p.runInCore(s, start)
	}
	return p.runNSC(s, start)
}

// reduceTree models each core contributing a partial scalar (already
// computed by cycle start at its tile) combined by a hop-wise tree onto
// tile 0; it returns when the total is available there. Used by srad's
// per-iteration statistics and PageRank's convergence check.
func reduceTree(s *sys.System, start engine.Time) engine.Time {
	n := s.NumCores()
	t := start
	for stride := 1; stride < n; stride *= 2 {
		var levelDone engine.Time
		for c := 0; c+stride < n; c += 2 * stride {
			arrive := s.Net.Send(t, c+stride, c, noc.Control, 8)
			if arrive > levelDone {
				levelDone = arrive
			}
		}
		if levelDone > t {
			t = levelDone
		}
		t++ // the add at each receiver
	}
	return t
}

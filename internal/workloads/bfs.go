package workloads

import (
	"fmt"

	"affinityalloc/internal/cpu"
	"affinityalloc/internal/dstruct"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// IterTrace records one BFS/SSSP iteration's timing for Figs 17/18.
type IterTrace struct {
	Iter   int
	Dir    graph.Direction
	Start  engine.Time
	End    engine.Time
	Active int64
}

// BFS is the bfs workload of Table 3: level-synchronous breadth-first
// search with a per-iteration direction policy. The In-Core configuration
// uses GAP's switching heuristic; the NSC configurations use the paper's
// extended policy (§7.2) unless a fixed policy is forced.
type BFS struct {
	G  *graph.Graph
	GT *graph.Graph
	// Policy forces a direction policy for every mode (nil: per-mode
	// defaults as in §7.2).
	Policy graph.DirectionPolicy
	Src    int32 // -1: highest-degree vertex
	// Oracle enables the Fig-6 chunked-placement study (CSR modes only).
	Oracle *EdgeOracle
	// ForceGlobalQueue replaces the spatially distributed queue with the
	// conventional global queue under Aff-Alloc — the Fig-9 co-design
	// ablation.
	ForceGlobalQueue bool
	// LinkedNodeBytes overrides the linked-CSR node size (ablation;
	// 0 = the default 64B cache line).
	LinkedNodeBytes int
}

// DefaultBFS returns a host-scaled bfs on a Kronecker graph.
func DefaultBFS() BFS {
	g := graph.Kronecker(15, 16, 42)
	return BFS{G: g, GT: g.Transpose(), Src: -1}
}

// Name implements Workload.
func (w BFS) Name() string {
	if w.Policy == nil {
		return "bfs"
	}
	return "bfs_" + w.Policy.Name()
}

// policyFor returns the direction policy for a mode (§7.2).
func (w BFS) policyFor(mode sys.Mode) graph.DirectionPolicy {
	if w.Policy != nil {
		return w.Policy
	}
	if mode == sys.InCore {
		return graph.DefaultGAPPolicy()
	}
	return graph.DefaultPaperPolicy()
}

// Run implements Workload.
func (w BFS) Run(s *sys.System, mode sys.Mode) (Result, error) {
	res, _, err := w.RunTraced(s, mode)
	return res, err
}

// RunTraced is Run plus the per-iteration trace (Fig 18).
func (w BFS) RunTraced(s *sys.System, mode sys.Mode) (Result, []IterTrace, error) {
	g, gt := w.G, w.GT
	policy := w.policyFor(mode)
	needPull := true
	if _, pushOnly := policy.(graph.PushOnly); pushOnly {
		needPull = false
	}
	gd, err := buildGraphData(s, mode, g, gt, graphSetup{
		needPull:  needPull,
		needQueue: true,
		propElem:  4,
		oracle:    w.Oracle,
		nodeBytes: w.LinkedNodeBytes,
	})
	if err != nil {
		return Result{}, nil, err
	}

	src := w.Src
	if src < 0 {
		src = g.MaxDegreeVertex()
	}
	n := int64(g.N)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0

	// Frontier queues (double buffered). The pull direction produces the
	// next frontier by scanning, so queues only matter for push.
	useSpatial := mode == sys.AffAlloc && !w.ForceGlobalQueue
	var curG, nxtG *dstruct.GlobalQueue
	var curS, nxtS *dstruct.SpatialQueue
	if useSpatial {
		curS = gd.sq
		nxtS, err = dstruct.NewSpatialQueue(s.RT, gd.prop, int64(s.NumCores()), 1)
		if err != nil {
			return Result{}, nil, err
		}
		s.PreloadArray(nxtS.Info())
		s.PreloadArray(nxtS.TailsInfo())
		if _, _, err := curS.Push(src); err != nil {
			return Result{}, nil, err
		}
	} else {
		curG = gd.gq
		if curG == nil {
			// Aff-Alloc built a spatial queue by default; the ablation
			// wants global queues instead.
			curG, err = dstruct.NewGlobalQueue(s.RT, n+1)
			if err != nil {
				return Result{}, nil, err
			}
			s.Mem.Preload(curG.TailAddr(), 8)
			s.Mem.Preload(curG.SlotAddr(0), 4*(n+1))
		}
		nxtG, err = dstruct.NewGlobalQueue(s.RT, n+1)
		if err != nil {
			return Result{}, nil, err
		}
		s.Mem.Preload(nxtG.TailAddr(), 8)
		s.Mem.Preload(nxtG.SlotAddr(0), 4*(n+1))
		if _, _, err := curG.Push(src); err != nil {
			return Result{}, nil, err
		}
	}

	visited := int64(1)
	frontier := int64(1)
	scout := g.Degree(src)
	totalEdges := float64(g.NumEdges())
	dir := graph.Push
	var traces []IterTrace
	var finish engine.Time

	for depth := int32(1); frontier > 0; depth++ {
		st := graph.StepState{
			VisitedFrac: float64(visited) / float64(n),
			ScoutFrac:   float64(scout) / totalEdges,
			AwakeFrac:   float64(frontier) / float64(n),
		}
		prevDir := dir
		dir = policy.Decide(dir, st)
		iterStart := finish

		var active int64
		if dir == graph.Push {
			if prevDir == graph.Pull {
				// Rebuild the frontier queue by scanning levels.
				finish = w.rebuildQueue(s, gd, mode, useSpatial, level, depth-1, curG, curS, finish)
			}
			// The next-frontier queue must be empty before expansion.
			if useSpatial {
				nxtS.Reset()
			} else {
				nxtG.Reset()
			}
			active, finish = w.pushIter(s, gd, mode, useSpatial, level, depth, curG, nxtG, curS, nxtS, finish)
			curG, nxtG = nxtG, curG
			curS, nxtS = nxtS, curS
		} else {
			active, finish = w.pullIter(s, gd, mode, level, depth, finish)
		}

		// Recompute frontier statistics functionally.
		frontier = active
		visited += active
		scout = 0
		for v := int32(0); v < g.N; v++ {
			if level[v] == depth {
				scout += g.Degree(v)
			}
		}
		traces = append(traces, IterTrace{
			Iter: int(depth - 1), Dir: dir,
			Start: iterStart, End: finish, Active: active,
		})
	}

	cs := newChecksum()
	for v := int64(0); v < n; v++ {
		cs.addU32(uint32(level[v]))
	}
	// Record each iteration as a sim-time phase so the Chrome-trace
	// exporter can render the Fig-18 push/pull timeline.
	for _, tr := range traces {
		s.MarkPhase(fmt.Sprintf("bfs iter %d (%v)", tr.Iter, tr.Dir), "bfs", tr.Start, tr.End)
	}
	res := Result{Name: w.Name(), Mode: mode, Metrics: s.Collect(finish), Checksum: cs.sum()}
	return res, traces, nil
}

// queuePushTiming charges a successful update's frontier push, starting
// at the CAS completion time at the updated vertex's bank. spatial marks
// the spatially distributed queue, whose tail and slot are local to the
// vertex's bank.
func queuePushTiming(s *sys.System, spatial bool, done engine.Time, vBank int, tailAddr, slotAddr memsim.Addr) engine.Time {
	if spatial {
		// Spatial queue: tail and slot are on the vertex's bank.
		t, _ := s.SE.RemoteOp(done, vBank, tailAddr, true, false)
		t, _ = s.SE.RemoteOp(t, vBank, slotAddr, true, false)
		return t
	}
	// Global queue: predicated streams at the tail's bank, then the slot
	// write wherever the tail points (Fig 2c).
	t, tailBank := s.SE.RemoteOp(done, vBank, tailAddr, true, false)
	t, _ = s.SE.RemoteOp(t, tailBank, slotAddr, true, false)
	return t
}

// pushIter expands the current frontier top-down.
func (w BFS) pushIter(s *sys.System, gd *graphData, mode sys.Mode, useSpatial bool, level []int32, depth int32,
	curG, nxtG *dstruct.GlobalQueue, curS, nxtS *dstruct.SpatialQueue, start engine.Time) (int64, engine.Time) {

	g := w.G
	nC := s.NumCores()
	finish := start
	var active int64

	src := flattenFrontier(useSpatial, curG, curS)
	total := src.total

	push := func(v int32) (memsim.Addr, memsim.Addr, error) {
		if useSpatial {
			return nxtS.Push(v)
		}
		return nxtG.Push(v)
	}

	// Frontier items are distributed dynamically (OpenMP dynamic
	// scheduling): hub vertices cluster at low queue indexes, and a
	// static partition would leave one core holding most of the edges.
	var cursor int64

	if mode == sys.InCore {
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		var outerErr error
		interleaved(nC, func(c int) bool {
			cc := s.Cores[c]
			for k := 0; k < chunkVerts; k++ {
				i := cursor
				if i >= total || outerErr != nil {
					return false
				}
				cursor++
				u := src.get(i)
				cc.Load(src.addr(i), cpu.Streaming)
				cc.Load(gd.idx.ElemAddr(int64(u)), cpu.Irregular)
				for k := g.Index[u]; k < g.Index[u+1]; k++ {
					v := g.Edges[k]
					if k%int64(memsim.LineSize/gd.weightsPerEdge) == 0 || k == g.Index[u] {
						cc.Load(gd.edgeAddr(k), cpu.Streaming)
					}
					cc.Atomic(gd.prop.ElemAddr(int64(v)))
					if level[v] == -1 {
						level[v] = depth
						active++
						cc.Atomic(nxtG.TailAddr())
						_, slotAddr, err := push(v)
						if err != nil {
							outerErr = err
							return false
						}
						cc.Store(slotAddr, cpu.Irregular)
					}
				}
			}
			return cursor < total
		})
		if outerErr != nil {
			return 0, 0
		}
		return active, coreFinish(s.Cores)
	}

	// NSC push.
	type st struct {
		i      int64
		qS     *stream.AffineStream
		idxS   *stream.AffineStream
		edgeS  *stream.AffineStream
		chain  *stream.ChainStream
		ops    *stream.OpWindow
		window []engine.Time
		wIdx   int
	}
	states := make([]*st, nC)
	for c := 0; c < nC; c++ {
		state := &st{window: make([]engine.Time, passWindow), ops: stream.NewOpWindow(opWindow)}
		if total > 0 {
			state.qS = stream.NewAffineStream(s.SE, c, src.addr(0), 4, 1, total, false)
			state.qS.Start(start)
		}
		if mode == sys.AffAlloc {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.heads.Base, gd.heads.ElemStride, 1, int64(g.N), false)
			state.chain = stream.NewChainStream(s.SE, c, passWindow)
		} else {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.idx.Base, gd.idx.ElemStride, 1, int64(g.N)+1, false)
			state.edgeS = stream.NewAffineStream(s.SE, c, gd.edges.Base, gd.edges.ElemStride, 1, g.NumEdges(), false)
		}
		states[c] = state
	}
	var outerErr error
	interleaved(nC, func(c int) bool {
		state := states[c]
		for k := 0; k < chunkVerts; k++ {
			i := cursor
			if i >= total || outerErr != nil {
				return false
			}
			cursor++
			notBefore := engine.MaxTime(start, state.window[state.wIdx])
			_, tq := state.qS.AddrReady(src.addr(i), notBefore)
			u := src.get(i)
			// Indirect read of the index/head entry for u.
			_, tIdx := state.idxS.AddrReady(gd.headAddr(u), tq)
			t := tIdx
			last := t

			handleEdge := func(v int32, te engine.Time, eBank int) {
				target := gd.prop.ElemAddr(int64(v))
				done, vBank := s.SE.RemoteOp(state.ops.Issue(te), gd.indirectFrom(s, eBank, target), target, true, false)
				if level[v] == -1 {
					level[v] = depth
					active++
					tailAddr, slotAddr, err := push(v)
					if err != nil {
						outerErr = err
						return
					}
					done = queuePushTiming(s, useSpatial, done, vBank, tailAddr, slotAddr)
				}
				state.ops.Complete(done)
				last = engine.MaxTime(last, done)
			}

			if mode == sys.AffAlloc {
				state.chain.BeginChain(t)
				nodeB := gd.lcsr.NodeBytes()
				for _, node := range gd.lcsr.Chains[u] {
					tn := state.chain.VisitNode(node.Addr, nodeB)
					for _, v := range node.Edges {
						handleEdge(v, tn, state.chain.Bank())
						if outerErr != nil {
							return false
						}
					}
				}
				state.chain.EndChain()
			} else {
				for k := g.Index[u]; k < g.Index[u+1]; k++ {
					eb, te := state.edgeS.AddrReady(gd.edgeAddr(k), t)
					handleEdge(g.Edges[k], te, eb)
					if outerErr != nil {
						return false
					}
				}
			}
			state.window[state.wIdx] = last
			state.wIdx = (state.wIdx + 1) % len(state.window)
			if last > finish {
				finish = last
			}
		}
		return cursor < total
	})
	if outerErr != nil {
		return 0, 0
	}
	return active, finish
}

// frontierView flattens a frontier queue for dynamic scheduling.
type frontierView struct {
	total int64
	get   func(i int64) int32
	addr  func(i int64) memsim.Addr
}

// flattenFrontier builds a flat view over the mode's frontier queue. For
// the spatial queue, items of all partitions are concatenated in
// partition order.
func flattenFrontier(spatial bool, gq *dstruct.GlobalQueue, sq *dstruct.SpatialQueue) frontierView {
	if !spatial {
		total := gq.Len()
		return frontierView{
			total: total,
			get:   func(i int64) int32 { return gq.Get(i) },
			addr:  func(i int64) memsim.Addr { return gq.SlotAddr(i) },
		}
	}
	lens := sq.Lens()
	prefix := make([]int64, len(lens)+1)
	for p, l := range lens {
		prefix[p+1] = prefix[p] + l
	}
	locate := func(i int64) (int64, int64) {
		// Binary search the owning partition.
		lo, hi := 0, len(lens)
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo), i - prefix[lo]
	}
	return frontierView{
		total: prefix[len(lens)],
		get: func(i int64) int32 {
			p, j := locate(i)
			return sq.Get(p, j)
		},
		addr: func(i int64) memsim.Addr {
			p, j := locate(i)
			return sq.SlotAddr(p, j)
		},
	}
}

// pullIter expands the frontier bottom-up: every unvisited vertex scans
// its in-neighbors for a member of the current frontier.
func (w BFS) pullIter(s *sys.System, gd *graphData, mode sys.Mode, level []int32, depth int32, start engine.Time) (int64, engine.Time) {
	gt := w.GT
	nC := s.NumCores()
	finish := start
	var active int64

	if mode == sys.InCore {
		type st struct{ v, hi int32 }
		states := make([]*st, nC)
		for c := 0; c < nC; c++ {
			lo, hi := partition(int64(gt.N), nC, c)
			states[c] = &st{v: int32(lo), hi: int32(hi)}
			s.Cores[c].SetNow(start)
		}
		interleaved(nC, func(c int) bool {
			state := states[c]
			if state.v >= state.hi {
				return false
			}
			cc := s.Cores[c]
			for k := 0; k < chunkVerts && state.v < state.hi; k++ {
				v := state.v
				state.v++
				cc.Load(gd.prop.ElemAddr(int64(v)), cpu.Streaming)
				if level[v] != -1 {
					continue
				}
				cc.Load(gd.idxT.ElemAddr(int64(v)), cpu.Streaming)
				for i := gt.Index[v]; i < gt.Index[v+1]; i++ {
					u := gt.Edges[i]
					if i%int64(memsim.LineSize/gd.weightsPerEdge) == 0 || i == gt.Index[v] {
						cc.Load(gd.edgeAddrT(i), cpu.Streaming)
					}
					cc.Load(gd.prop.ElemAddr(int64(u)), cpu.Irregular)
					cc.Compute(1)
					if level[u] == depth-1 {
						level[v] = depth
						active++
						cc.Store(gd.prop.ElemAddr(int64(v)), cpu.Streaming)
						break
					}
				}
			}
			return state.v < state.hi
		})
		return active, coreFinish(s.Cores)
	}

	// NSC pull.
	type st struct {
		v, hi  int32
		propS  *stream.AffineStream
		idxS   *stream.AffineStream
		edgeS  *stream.AffineStream
		chain  *stream.ChainStream
		ops    *stream.OpWindow
		window []engine.Time
		wIdx   int
	}
	states := make([]*st, nC)
	for c := 0; c < nC; c++ {
		lo, hi := partition(int64(gt.N), nC, c)
		state := &st{v: int32(lo), hi: int32(hi), window: make([]engine.Time, passWindow), ops: stream.NewOpWindow(opWindow)}
		state.propS = stream.NewAffineStream(s.SE, c, gd.prop.ElemAddr(lo), gd.prop.ElemStride, 1, hi-lo, false)
		state.propS.Start(start)
		if mode == sys.AffAlloc {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.headsT.ElemAddr(lo), gd.headsT.ElemStride, 1, hi-lo, false)
			state.chain = stream.NewChainStream(s.SE, c, passWindow)
		} else {
			state.idxS = stream.NewAffineStream(s.SE, c, gd.idxT.ElemAddr(lo), gd.idxT.ElemStride, 1, hi-lo, false)
			state.edgeS = stream.NewAffineStream(s.SE, c, gd.edgesT.Base, gd.edgesT.ElemStride, 1, gt.NumEdges(), false)
		}
		state.idxS.Start(start)
		states[c] = state
	}
	interleaved(nC, func(c int) bool {
		state := states[c]
		if state.v >= state.hi {
			return false
		}
		for k := 0; k < chunkVerts && state.v < state.hi; k++ {
			v := state.v
			state.v++
			notBefore := engine.MaxTime(start, state.window[state.wIdx])
			_, tp := state.propS.AddrReady(gd.prop.ElemAddr(int64(v)), notBefore)
			if level[v] != -1 {
				continue
			}
			_, t := state.idxS.AddrReady(gd.headAddrT(v), tp)
			last := t
			scan := func(u int32, te engine.Time, eBank int) bool {
				target := gd.prop.ElemAddr(int64(u))
				done, _ := s.SE.RemoteOp(state.ops.Issue(te), gd.indirectFrom(s, eBank, target), target, false, true)
				state.ops.Complete(done)
				last = engine.MaxTime(last, done)
				if level[u] == depth-1 {
					level[v] = depth
					active++
					wdone, _ := s.SE.RemoteOp(done, eBank, gd.prop.ElemAddr(int64(v)), true, false)
					last = engine.MaxTime(last, wdone)
					return true
				}
				return false
			}
			if mode == sys.AffAlloc {
				state.chain.BeginChain(t)
				nodeB := gd.lcsrT.NodeBytes()
			scanChainsA:
				for _, node := range gd.lcsrT.Chains[v] {
					tn := state.chain.VisitNode(node.Addr, nodeB)
					for _, u := range node.Edges {
						if scan(u, tn, state.chain.Bank()) {
							break scanChainsA
						}
					}
				}
				state.chain.EndChain()
			} else {
			scanEdges:
				for i := gt.Index[v]; i < gt.Index[v+1]; i++ {
					eb, te := state.edgeS.AddrReady(gd.edgeAddrT(i), t)
					if scan(gt.Edges[i], te, eb) {
						break scanEdges
					}
				}
			}
			state.window[state.wIdx] = last
			state.wIdx = (state.wIdx + 1) % len(state.window)
			if last > finish {
				finish = last
			}
		}
		return state.v < state.hi
	})
	return active, finish
}

// rebuildQueue refills the push frontier queue after pull iterations by
// scanning the level array (what GAP's direction switch does too).
func (w BFS) rebuildQueue(s *sys.System, gd *graphData, mode sys.Mode, useSpatial bool, level []int32, frontierDepth int32,
	curG *dstruct.GlobalQueue, curS *dstruct.SpatialQueue, start engine.Time) engine.Time {

	if useSpatial {
		curS.Reset()
	} else {
		curG.Reset()
	}
	nC := s.NumCores()
	n := int64(w.G.N)
	finish := start

	if mode == sys.InCore {
		for c := 0; c < nC; c++ {
			s.Cores[c].SetNow(start)
		}
		for v := int32(0); int64(v) < n; v++ {
			c := int(int64(v) * int64(nC) / n)
			cc := s.Cores[c]
			if int64(v)%16 == 0 {
				cc.Load(gd.prop.ElemAddr(int64(v)), cpu.Streaming)
			}
			if level[v] == frontierDepth {
				cc.Atomic(curG.TailAddr())
				_, slotAddr, err := curG.Push(v)
				if err == nil {
					cc.Store(slotAddr, cpu.Irregular)
				}
			}
		}
		return coreFinish(s.Cores)
	}

	// NSC: an affine scan per core with pushes.
	for c := 0; c < nC; c++ {
		loV, hiV := partition(n, nC, c)
		ps := stream.NewAffineStream(s.SE, c, gd.prop.ElemAddr(loV), gd.prop.ElemStride, 1, hiV-loV, false)
		ps.Start(start)
		for v := loV; v < hiV; v++ {
			vb, t := ps.AddrReady(gd.prop.ElemAddr(v), start)
			if level[v] == frontierDepth {
				var tailAddr, slotAddr memsim.Addr
				var err error
				if useSpatial {
					tailAddr, slotAddr, err = curS.Push(int32(v))
				} else {
					tailAddr, slotAddr, err = curG.Push(int32(v))
				}
				if err == nil {
					done := queuePushTiming(s, useSpatial, t, vb, tailAddr, slotAddr)
					if done > finish {
						finish = done
					}
				}
			}
		}
		if f := ps.Finish(); f > finish {
			finish = f
		}
	}
	return finish
}

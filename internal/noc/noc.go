// Package noc models the on-chip mesh interconnect: X-Y wormhole routing
// over 32-byte links, per-link serialization and contention, and traffic
// accounting split into the paper's three message classes (Data, Control,
// Offload). Every figure's "NoC Hops" bars come from this package's
// counters.
package noc

import (
	"fmt"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/topo"
)

// Class categorizes a message for traffic accounting, matching the
// stacked-bar breakdown in Figs 4, 6, 12, 13 and 20.
type Class int

const (
	// Data carries operands or cache lines (element forwarding, line
	// fills, writebacks).
	Data Class = iota
	// Control carries requests, acknowledgements, indirect-access
	// requests, credits, and coherence traffic.
	Control
	// Offload carries stream configuration and stream migration state.
	Offload

	// NumClasses is the number of message classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Data:
		return "data"
	case Control:
		return "control"
	case Offload:
		return "offload"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes the network. Defaults mirror Table 2.
type Config struct {
	LinkBytes     int         // flit width (Table 2: 32B)
	PerHopCycles  engine.Time // router + link traversal per hop
	LocalCycles   engine.Time // latency of a same-tile "message"
	HeaderBytes   int         // per-message header added to payload
	ModelConflict bool        // model per-link serialization/contention
	// Faults, when set, degrades links: dead links force detour routes
	// and lossy links pay retransmits. A pointer keeps Config comparable
	// for the all-zero default check.
	Faults *faults.Injector
}

// DefaultConfig returns Table 2's NoC parameters.
func DefaultConfig() Config {
	return Config{
		LinkBytes:     32,
		PerHopCycles:  2, // 5-stage router pipelined + 1-cycle link, steady state
		LocalCycles:   1,
		HeaderBytes:   8,
		ModelConflict: true,
	}
}

// ClassStats aggregates traffic for one message class. The JSON tags are
// the stable snake_case metrics schema.
type ClassStats struct {
	Messages uint64 `json:"messages"`
	Flits    uint64 `json:"flits"`
	// FlitHops is flits × hops summed over messages — the traffic
	// measure behind the paper's "NoC Hops" bars.
	FlitHops uint64 `json:"flit_hops"`
}

// Network is the mesh interconnect model. It is not safe for concurrent
// use; the event kernel serializes all access.
type Network struct {
	mesh *topo.Mesh
	cfg  Config

	linkSrv   []*engine.Server // per-link flit schedule
	linkFlits []uint64         // flits ever pushed through each directed link

	classes    [NumClasses]ClassStats
	routeCache []topo.Link // scratch buffer reused across sends

	// clocks, when attached, turn per-hop link-flit accounting into
	// retirement events: each hop's flit count is applied by a ScheduleArg
	// event at the hop's departure cycle instead of inline (see
	// AttachClock). flitFn is the one bound handler built at attach time,
	// so scheduling allocates nothing. linkSim routes each link's
	// retirements to the kernel shard that owns the link's source tile, so
	// parallel shard drains never touch the same linkFlits entry.
	clocks  *engine.Coordinator
	linkSim []*engine.Sim
	flitFn  func(uint64)
}

// withDefaults fills unset fields. A fully zero Config selects
// DefaultConfig wholesale (the conventional "just give me Table 2"
// request); otherwise only the zero-valued numeric fields are
// defaulted individually, so a partially-specified config keeps its
// explicit settings — a custom PerHopCycles or ModelConflict=false is
// preserved rather than silently discarded.
func (cfg Config) withDefaults() Config {
	// The all-zero check ignores Faults: attaching an injector to an
	// otherwise-default config must not demote it to the field-by-field
	// path (which would lose ModelConflict's default of true).
	bare := cfg
	bare.Faults = nil
	if bare == (Config{}) {
		def := DefaultConfig()
		def.Faults = cfg.Faults
		return def
	}
	def := DefaultConfig()
	if cfg.LinkBytes <= 0 {
		cfg.LinkBytes = def.LinkBytes
	}
	if cfg.PerHopCycles <= 0 {
		cfg.PerHopCycles = def.PerHopCycles
	}
	if cfg.LocalCycles <= 0 {
		cfg.LocalCycles = def.LocalCycles
	}
	if cfg.HeaderBytes <= 0 {
		cfg.HeaderBytes = def.HeaderBytes
	}
	return cfg
}

// New builds a network over the given mesh. Zero-valued cfg fields take
// Table-2 defaults; see withDefaults.
func New(mesh *topo.Mesh, cfg Config) *Network {
	cfg = cfg.withDefaults()
	n := &Network{
		mesh:      mesh,
		cfg:       cfg,
		linkSrv:   make([]*engine.Server, mesh.NumLinks()),
		linkFlits: make([]uint64, mesh.NumLinks()),
	}
	for i := range n.linkSrv {
		n.linkSrv[i] = engine.NewServer(1, 8, 4096)
	}
	return n
}

// Mesh returns the underlying topology.
func (n *Network) Mesh() *topo.Mesh { return n.mesh }

// PerHopCycles reports the resolved router+link traversal latency — the
// minimum cost of any cross-tile hop, and therefore the conservative
// lookahead bound for kernel sharding: no message can cross a shard
// boundary in fewer cycles.
func (n *Network) PerHopCycles() engine.Time { return n.cfg.PerHopCycles }

// Per-hop retirement events pack (link index, flit units) into the
// ScheduleArg argument. Units occupy the low bits; messages are at most a
// few flits plus bounded retransmit extras, so 24 bits is generous.
const flitUnitBits = 24

// AttachClock defers per-hop link-flit accounting through the event
// kernel: every hop schedules one allocation-free retirement event at its
// departure cycle instead of bumping the counter inline. Retirements are
// commutative adds, so any reader that drains the clocks first (all
// accessors here do) observes exactly the inline totals — byte-identical
// reports — while the hot path sheds the counter's cache traffic onto the
// kernel's batched drain.
//
// tileShard assigns each mesh tile (indexed y*W+x) to a kernel shard;
// each link's retirements are scheduled on the shard owning the link's
// source tile, so the coordinator's parallel drain updates every
// linkFlits entry from exactly one goroutine. A nil tileShard puts
// everything on shard 0; passing a nil coordinator restores inline
// accounting.
func (n *Network) AttachClock(clocks *engine.Coordinator, tileShard []int) {
	n.clocks = clocks
	if clocks == nil {
		n.flitFn, n.linkSim = nil, nil
		return
	}
	n.flitFn = n.retireFlits // bind once; ScheduleArg then allocates nothing
	n.linkSim = make([]*engine.Sim, n.mesh.NumLinks())
	for idx := range n.linkSim {
		sh := 0
		if tileShard != nil {
			sh = tileShard[idx/4] // LinkIndex packs the source tile in idx/4
		}
		n.linkSim[idx] = clocks.Shard(sh)
	}
}

// retireFlits applies one hop's deferred flit count.
func (n *Network) retireFlits(arg uint64) {
	n.linkFlits[arg>>flitUnitBits] += arg & (1<<flitUnitBits - 1)
}

// accountFlits charges units flits to directed link idx at cycle at —
// deferred through the kernel when a clock is attached, inline otherwise.
func (n *Network) accountFlits(at engine.Time, idx, units int) {
	if n.clocks == nil {
		n.linkFlits[idx] += uint64(units)
		return
	}
	sim := n.linkSim[idx]
	if sim.Pending() >= engine.DrainPending || (sim.Pending() > 0 && !sim.InRing(at)) {
		// Bound the queue and keep the ring window tracking the flit
		// stream; adds commute so early retirement is invisible.
		// DrainAccounting (not Run) keeps the shard clock parked — a
		// mid-run flush must never fast-forward simulated time.
		sim.DrainAccounting()
	}
	if sim.Pending() == 0 {
		sim.Advance(at)
	}
	sim.ScheduleArg(at, n.flitFn, uint64(idx)<<flitUnitBits|uint64(units))
}

// drain retires pending accounting events before a counter read, leaving
// every shard clock where it was.
func (n *Network) drain() {
	if n.clocks != nil {
		n.clocks.DrainAccounting()
	}
}

// Flits returns the number of flits a message with the given payload
// occupies, including the header flit share.
func (n *Network) Flits(payloadBytes int) int {
	total := payloadBytes + n.cfg.HeaderBytes
	f := (total + n.cfg.LinkBytes - 1) / n.cfg.LinkBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Send models one message injected at cycle now, travelling from bank
// `from` to bank `to`, and returns its arrival cycle at the destination.
// Traffic counters are charged to the given class. Same-tile messages
// cost LocalCycles and no link traffic.
func (n *Network) Send(now engine.Time, from, to int, class Class, payloadBytes int) engine.Time {
	flits := n.Flits(payloadBytes)
	st := &n.classes[class]
	st.Messages++
	if from == to {
		return now + n.cfg.LocalCycles
	}
	hops := n.mesh.Hops(from, to)
	st.Flits += uint64(flits)

	// Fault path: dead links force detours off the X-Y route, lossy links
	// pay retransmits. Gated so clean configs (and faulted configs whose
	// spec leaves the links alone) keep the historical fast path exactly.
	inj := n.cfg.Faults
	degraded := inj != nil && inj.DegradedLinks()
	if degraded {
		var detoured bool
		n.routeCache, detoured = inj.Route(n.routeCache[:0], from, to)
		if detoured {
			inj.NoteDetour(now, len(n.routeCache)-hops)
			hops = len(n.routeCache)
		}
	} else if n.cfg.ModelConflict {
		n.routeCache = n.mesh.Route(n.routeCache[:0], from, to)
	}
	st.FlitHops += uint64(flits) * uint64(hops)

	if !n.cfg.ModelConflict {
		return now + engine.Time(hops)*n.cfg.PerHopCycles + engine.Time(flits-1)
	}

	arrive := now
	for _, l := range n.routeCache {
		idx := n.mesh.LinkIndex(l)
		units := flits
		var retryDelay engine.Time
		if degraded {
			extra, delay := inj.LinkRetransmits(arrive, idx, flits)
			units += extra
			retryDelay = delay
		}
		depart := n.linkSrv[idx].Reserve(arrive, units)
		n.accountFlits(depart, idx, units)
		arrive = depart + n.cfg.PerHopCycles + retryDelay
	}
	return arrive + engine.Time(flits-1)
}

// Latency estimates the uncontended latency of a message without sending
// it (no counters are charged).
func (n *Network) Latency(from, to int, payloadBytes int) engine.Time {
	if from == to {
		return n.cfg.LocalCycles
	}
	flits := n.Flits(payloadBytes)
	hops := n.mesh.Hops(from, to)
	return engine.Time(hops)*n.cfg.PerHopCycles + engine.Time(flits-1)
}

// Stats returns the per-class traffic counters.
func (n *Network) Stats() [NumClasses]ClassStats { return n.classes }

// TotalFlitHops sums flit-hops across all classes.
func (n *Network) TotalFlitHops() uint64 {
	var total uint64
	for _, c := range n.classes {
		total += c.FlitHops
	}
	return total
}

// Utilization returns the fraction of link-cycles carrying flits over an
// elapsed window — the "NoC Util." dots in Figs 12, 13 and 20.
func (n *Network) Utilization(elapsed engine.Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(n.TotalLinkFlits()) / (float64(n.mesh.NumLinks()) * float64(elapsed))
}

// TotalLinkFlits sums flits over every directed link — the numerator of
// Utilization. Zero when ModelConflict is off (no per-link accounting).
func (n *Network) TotalLinkFlits() uint64 {
	n.drain()
	var flits uint64
	for _, f := range n.linkFlits {
		flits += f
	}
	return flits
}

// LinkFlits returns a copy of the per-directed-link flit counts, indexed
// by topo.Mesh.LinkIndex — the per-link heatmap behind Fig 5. Each flit
// traversal of a link is one hop, so this is also the per-link flit·hop
// series. Only populated when ModelConflict is on (the default); the
// fast path skips route enumeration.
func (n *Network) LinkFlits() []uint64 {
	n.drain()
	out := make([]uint64, len(n.linkFlits))
	copy(out, n.linkFlits)
	return out
}

// PublishTelemetry publishes per-class traffic scalars and the per-link
// flit heatmap into the registry.
func (n *Network) PublishTelemetry(r *telemetry.Registry) {
	n.drain()
	for class, st := range n.classes {
		name := Class(class).String()
		r.Set("noc_"+name+"_messages", st.Messages)
		r.Set("noc_"+name+"_flits", st.Flits)
		r.Set("noc_"+name+"_flit_hops", st.FlitHops)
	}
	r.Set("noc_flit_hops", n.TotalFlitHops())
	r.Set("noc_links", uint64(n.mesh.NumLinks()))
	r.SetSeries("noc_link_flits", n.linkFlits)
}

// ResetStats clears traffic counters while keeping link schedules, so a
// measurement window can exclude warmup.
func (n *Network) ResetStats() {
	n.drain() // retire in-flight accounting so it cannot leak past the reset
	n.classes = [NumClasses]ClassStats{}
	for i := range n.linkFlits {
		n.linkFlits[i] = 0
	}
}

// MaxLinkFree reports the latest link schedule horizon — a debugging aid.
func (n *Network) MaxLinkFree() engine.Time {
	var t engine.Time
	for _, s := range n.linkSrv {
		t = engine.MaxTime(t, s.Horizon())
	}
	return t
}

package noc

import (
	"testing"

	"affinityalloc/internal/topo"
)

func newNet(t *testing.T) *Network {
	t.Helper()
	return New(topo.MustMesh(8, 8, topo.RowMajor), DefaultConfig())
}

func TestFlitsRounding(t *testing.T) {
	n := newNet(t)
	cases := []struct{ payload, want int }{
		{0, 1}, {8, 1}, {24, 1}, {25, 2}, {64, 3}, {56, 2},
	}
	for _, c := range cases {
		if got := n.Flits(c.payload); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestLocalMessageCostsNoTraffic(t *testing.T) {
	n := newNet(t)
	arrive := n.Send(100, 5, 5, Data, 64)
	if arrive != 101 {
		t.Errorf("local arrival %d, want 101", arrive)
	}
	if n.TotalFlitHops() != 0 {
		t.Errorf("local message produced %d flit-hops", n.TotalFlitHops())
	}
	if n.Stats()[Data].Messages != 1 {
		t.Error("local message not counted")
	}
}

func TestSendLatencyScalesWithDistance(t *testing.T) {
	n := newNet(t)
	near := n.Send(0, 0, 1, Data, 64)
	far := n.Send(0, 0, 63, Data, 64)
	if far <= near {
		t.Errorf("far arrival %d <= near arrival %d", far, near)
	}
	// 14 hops at 2 cycles + 2 tail flits = 30.
	if far != 30 {
		t.Errorf("corner-to-corner 64B arrival %d, want 30", far)
	}
}

func TestTrafficAccountingByClass(t *testing.T) {
	n := newNet(t)
	n.Send(0, 0, 7, Data, 64)    // 3 flits x 7 hops = 21
	n.Send(0, 0, 7, Control, 8)  // 1 flit x 7 hops = 7
	n.Send(0, 0, 7, Offload, 24) // 1 flit x 7 hops = 7
	st := n.Stats()
	if st[Data].FlitHops != 21 {
		t.Errorf("data flit-hops %d, want 21", st[Data].FlitHops)
	}
	if st[Control].FlitHops != 7 {
		t.Errorf("control flit-hops %d, want 7", st[Control].FlitHops)
	}
	if st[Offload].FlitHops != 7 {
		t.Errorf("offload flit-hops %d, want 7", st[Offload].FlitHops)
	}
	if n.TotalFlitHops() != 35 {
		t.Errorf("total %d, want 35", n.TotalFlitHops())
	}
}

func TestLinkContentionDelays(t *testing.T) {
	n := newNet(t)
	// Hammer one link with many messages at the same cycle.
	var last uint64
	for i := 0; i < 64; i++ {
		last = uint64(n.Send(0, 0, 1, Data, 64))
	}
	// 64 messages x 3 flits over a 1-flit/cycle link ≈ 192 cycles.
	if last < 150 {
		t.Errorf("64 contended sends finished at %d, want >= 150", last)
	}
	// An uncontended path is unaffected (backfilling).
	if clean := n.Send(0, 32, 33, Data, 64); clean > 10 {
		t.Errorf("uncontended send delayed to %d", clean)
	}
}

func TestUtilization(t *testing.T) {
	n := newNet(t)
	n.Send(0, 0, 1, Data, 64) // 3 flits on 1 link
	util := n.Utilization(100)
	want := 3.0 / (256.0 * 100.0)
	if util < want*0.99 || util > want*1.01 {
		t.Errorf("utilization %g, want %g", util, want)
	}
	n.ResetStats()
	if n.TotalFlitHops() != 0 || n.Utilization(100) != 0 {
		t.Error("ResetStats left counters")
	}
}

// TestZeroConfigSelectsDefaults: a fully zero Config still means "the
// Table-2 network".
func TestZeroConfigSelectsDefaults(t *testing.T) {
	n := New(topo.MustMesh(4, 4, topo.RowMajor), Config{})
	if n.cfg != DefaultConfig() {
		t.Errorf("zero config built %+v, want DefaultConfig", n.cfg)
	}
}

// TestPartialConfigKeepsCallerFields: New used to replace the entire
// config with DefaultConfig whenever LinkBytes was unset, silently
// discarding a caller's explicit PerHopCycles or ModelConflict=false.
// Now only the zero-valued fields are defaulted.
func TestPartialConfigKeepsCallerFields(t *testing.T) {
	n := New(topo.MustMesh(4, 4, topo.RowMajor), Config{PerHopCycles: 7, ModelConflict: false})
	if n.cfg.PerHopCycles != 7 {
		t.Errorf("PerHopCycles = %d, want caller's 7", n.cfg.PerHopCycles)
	}
	if n.cfg.ModelConflict {
		t.Error("explicit ModelConflict=false was discarded")
	}
	def := DefaultConfig()
	if n.cfg.LinkBytes != def.LinkBytes || n.cfg.LocalCycles != def.LocalCycles || n.cfg.HeaderBytes != def.HeaderBytes {
		t.Errorf("unset fields not defaulted: %+v", n.cfg)
	}
	// Behavior check: 64B payload = 3 flits, 1 hop, no conflict model:
	// 1 hop x 7 cycles + 2 tail flits = 9.
	if got := n.Send(0, 0, 1, Data, 64); got != 9 {
		t.Errorf("1-hop send arrived at %d, want 9", got)
	}
}

func TestLatencyEstimateChargesNothing(t *testing.T) {
	n := newNet(t)
	lat := n.Latency(0, 63, 64)
	if lat != 30 {
		t.Errorf("latency %d, want 30", lat)
	}
	if n.TotalFlitHops() != 0 {
		t.Error("Latency charged traffic")
	}
}

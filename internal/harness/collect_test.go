package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// runArtifacts regenerates fig4 with the given worker count, capturing
// the metrics document and trace alongside the figure stream.
func runArtifacts(t *testing.T, jobs int) (figs, metrics, trace string) {
	t.Helper()
	var figBuf, metBuf, trBuf bytes.Buffer
	arts := &Artifacts{MetricsOut: &metBuf, TraceOut: &trBuf, Experiment: "fig4", Scale: Tiny, Seed: 1}
	err := RunAll(Options{Scale: Tiny, Seed: 1, Jobs: jobs}, &figBuf,
		map[string]bool{"fig4": true}, nil, false, arts)
	if err != nil {
		t.Fatal(err)
	}
	return figBuf.String(), metBuf.String(), trBuf.String()
}

// TestMetricsDocByteIdenticalAcrossJobs is the acceptance property of
// the telemetry pipeline: the -metrics-out and -trace-out byte streams
// are identical between a serial and an 8-way parallel run.
func TestMetricsDocByteIdenticalAcrossJobs(t *testing.T) {
	figs1, met1, tr1 := runArtifacts(t, 1)
	figs8, met8, tr8 := runArtifacts(t, 8)
	if figs1 != figs8 {
		t.Error("figure stream differs between -j 1 and -j 8")
	}
	if met1 != met8 {
		t.Errorf("metrics document differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", met1, met8)
	}
	if tr1 != tr8 {
		t.Error("trace export differs between -j 1 and -j 8")
	}

	doc, err := telemetry.ParseDocument([]byte(met1))
	if err != nil {
		t.Fatalf("emitted document fails its own validation: %v", err)
	}
	if doc.Experiment != "fig4" || doc.Scale != "tiny" {
		t.Errorf("document header = %q/%q", doc.Experiment, doc.Scale)
	}
	for _, c := range doc.Cells {
		if !strings.HasPrefix(c.Label, "fig4/") {
			t.Errorf("cell label %q not prefixed with its experiment", c.Label)
		}
		if len(c.Series["l3_bank_accesses"]) == 0 {
			t.Errorf("cell %q has no per-bank breakdown", c.Label)
		}
		if len(c.Series["noc_link_flits"]) == 0 {
			t.Errorf("cell %q has no per-link breakdown", c.Label)
		}
	}
}

// TestCollectorOrderIndependentOfScheduling: slots are reserved in call
// order and filled by label, so Cells() order never depends on which
// worker finished first.
func TestCollectorOrderIndependentOfScheduling(t *testing.T) {
	build := func(jobs int) []CollectedCell {
		col := &Collector{}
		opt := Options{Scale: Tiny, Seed: 1, Jobs: jobs, Collect: col}
		cells := make([]cell, 8)
		for i := range cells {
			i := i
			cells[i] = cell{
				label: fmt.Sprintf("vecadd/Δ%d", i),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					cfg := baseConfig(opt, core.DefaultPolicy())
					return workloads.Run(cfg, workloads.VecAdd{N: 1 << 9, ForceDelta: i}, sys.AffAlloc)
				},
			}
		}
		if _, err := runCells(opt, cells); err != nil {
			t.Fatal(err)
		}
		return col.Cells()
	}
	serial := build(1)
	parallel := build(8)
	if len(serial) != 8 || len(parallel) != 8 {
		t.Fatalf("collected %d/%d cells, want 8", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Label != parallel[i].Label {
			t.Errorf("slot %d: %q (serial) vs %q (parallel)", i, serial[i].Label, parallel[i].Label)
		}
		if serial[i].Snap.Scalar("cycles") != parallel[i].Snap.Scalar("cycles") {
			t.Errorf("slot %d: snapshots differ across scheduling", i)
		}
	}
}

// TestCollectorSkipsFailedCells: a failing cell leaves no snapshot and
// is dropped from the collected set instead of emitting an empty cell.
func TestCollectorSkipsFailedCells(t *testing.T) {
	col := &Collector{}
	opt := Options{Jobs: 2, Collect: col}
	cells := []cell{
		{label: "ok", run: func(rec *trace.Recorder) (workloads.Result, error) {
			cfg := baseConfig(Options{Scale: Tiny, Seed: 1}, core.DefaultPolicy())
			return workloads.Run(cfg, workloads.VecAdd{N: 1 << 9, ForceDelta: 0}, sys.AffAlloc)
		}},
		{label: "bad", run: func(rec *trace.Recorder) (workloads.Result, error) {
			return workloads.Result{}, errors.New("boom")
		}},
	}
	if _, err := runCells(opt, cells); err == nil {
		t.Fatal("expected the failing cell's error")
	}
	got := col.Cells()
	if len(got) != 1 || got[0].Label != "ok" {
		t.Errorf("collected %+v, want only the ok cell", got)
	}
}

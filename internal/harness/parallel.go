package harness

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// cell is one independent simulation unit: a (workload × configuration)
// run that builds its own private sys.System. Cells never share mutable
// state — workload construction (graph generation, weight assignment)
// happens before the cells are launched — so any execution order yields
// the same Results and runCells can schedule them freely.
//
// The run body receives the cell's trace recorder — nil unless
// Options.Record is set — and is expected to attach it to the system it
// builds (workloads.RunTraced does). Each retry attempt gets a fresh
// recorder so a recorded scenario never mixes attempts, and a timed-out
// attempt's abandoned goroutine keeps writing only to its own orphaned
// recorder.
type cell struct {
	label string
	run   func(rec *trace.Recorder) (workloads.Result, error)
}

// jobs resolves the worker count: Options.Jobs when positive, else the
// runtime's GOMAXPROCS.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// ShareWorkers returns a copy of o whose cell execution draws on one
// shared pool of jobs() tokens. RunAll uses it so that concurrently
// running experiments together never execute more than -j cells at
// once. Figure functions must not nest forEach calls inside cell
// bodies: a cell holds a token while it runs, so a nested wait on the
// same pool could starve.
func (o Options) ShareWorkers() Options {
	o.limit = make(chan struct{}, o.jobs())
	return o
}

// forEach runs fn(i) for every i in [0,n) across up to jobs() concurrent
// workers and returns the lowest-index error. Every fn must touch only
// state owned by its index; the WaitGroup edge makes all writes visible
// to the caller afterwards. All indices run even if some fail, so the
// reported error is deterministic regardless of scheduling.
func (o Options) forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	j := o.jobs()
	if j > n {
		j = n
	}
	errs := make([]error, n)
	if j <= 1 && o.limit == nil {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(j)
		for w := 0; w < j; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					if o.limit != nil {
						o.limit <- struct{}{}
					}
					errs[i] = fn(i)
					if o.limit != nil {
						<-o.limit
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCells executes independent simulation cells across the option's
// worker budget and returns their results in input order, so output
// rendered from them is byte-identical to a serial run. Each cell's
// wall time and simulated cycle count are recorded in opt.Timing when
// set, and its telemetry snapshot lands in opt.Collect at a slot
// reserved before the cells launch — both outputs are deterministic for
// any worker count.
//
// Cells run guarded (see Options.runCell): a panicking, timed-out or
// erroring cell fails alone while the rest of the batch completes. When
// any cell fails the partial results are returned alongside a
// *CellFailures error listing every failure in input order; failed cells'
// result slots are zero-valued.
func runCells(opt Options, cells []cell) ([]workloads.Result, error) {
	out := make([]workloads.Result, len(cells))
	cellErrs := make([]error, len(cells))
	slot := opt.Collect.reserve(len(cells))
	tslot := opt.Record.Reserve(len(cells))
	_ = opt.forEach(len(cells), func(i int) error {
		start := time.Now()
		r, sc, err := opt.runCell(cells[i])
		if err != nil {
			cellErrs[i] = err
			return err
		}
		out[i] = r
		opt.Timing.observe(cells[i].label, time.Since(start), r.Metrics.Cycles)
		opt.Collect.put(slot+i, cells[i].label, r.Metrics.Detail)
		opt.Record.Put(tslot+i, sc)
		return nil
	})
	var fails []CellFailure
	for i, err := range cellErrs {
		if err != nil {
			fails = append(fails, CellFailure{Index: i, Label: cells[i].label, Err: err})
		}
	}
	if len(fails) > 0 {
		return out, &CellFailures{Cells: fails}
	}
	return out, nil
}

// CellTiming is one simulation cell's run accounting.
type CellTiming struct {
	Label     string
	Wall      time.Duration
	SimCycles engine.Time
}

// CyclesPerSec returns the cell's simulated-cycles-per-wall-second rate.
func (c CellTiming) CyclesPerSec() float64 {
	if c.Wall <= 0 {
		return 0
	}
	return float64(c.SimCycles) / c.Wall.Seconds()
}

// Timing accumulates per-cell run accounting across a harness run. It
// is safe for concurrent use; a nil *Timing discards observations.
type Timing struct {
	mu    sync.Mutex
	cells []CellTiming
}

func (t *Timing) observe(label string, wall time.Duration, cycles engine.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cells = append(t.cells, CellTiming{Label: label, Wall: wall, SimCycles: cycles})
	t.mu.Unlock()
}

// Cells returns a copy of the recorded cells, sorted by label so the
// report order does not depend on scheduling.
func (t *Timing) Cells() []CellTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]CellTiming(nil), t.cells...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Summary returns the cell count, summed per-cell wall time (the
// serial-equivalent duration), and summed simulated cycles.
func (t *Timing) Summary() (cells int, wall time.Duration, sim engine.Time) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.cells {
		wall += c.Wall
		sim += c.SimCycles
	}
	return len(t.cells), wall, sim
}

// Report writes one accounting line per cell.
func (t *Timing) Report(w io.Writer) {
	for _, c := range t.Cells() {
		fmt.Fprintf(w, "  %-36s wall %8.3fs  sim %12d cyc  %8.1f Mcyc/s\n",
			c.Label, c.Wall.Seconds(), uint64(c.SimCycles), c.CyclesPerSec()/1e6)
	}
}

// RunAll regenerates every experiment (or the subset in only) and
// writes the rendered figures to out in registry order — byte-identical
// to a serial run for any worker count, since each experiment renders
// into its own buffer. Experiments run concurrently, all drawing on one
// shared pool of opt.Jobs workers; with -j 1 they run strictly
// sequentially. A failed experiment renders a FAILED section and does
// not abort the others; the lowest-registry-order error is returned.
//
// When timingOut is non-nil a per-experiment accounting line is written
// there after the figures (and per-cell lines when perCell is set), so
// the figure stream itself stays deterministic.
//
// When arts requests machine-readable outputs, every experiment's cells
// are collected and written as one document after the figures, cells
// labeled "<experiment>/<workload>/<mode>" in registry-then-reservation
// order — like the figure stream, byte-identical for any worker count.
func RunAll(opt Options, out io.Writer, only map[string]bool, timingOut io.Writer, perCell bool, arts *Artifacts) error {
	var sel []Experiment
	for _, e := range Experiments() {
		if len(only) == 0 || only[e.ID] {
			sel = append(sel, e)
		}
	}
	opt = opt.ShareWorkers()

	type expRun struct {
		buf     bytes.Buffer
		timing  *Timing
		collect *Collector
		wall    time.Duration
		err     error
	}
	runs := make([]expRun, len(sel))
	serial := opt.jobs() == 1
	var wg sync.WaitGroup
	for i := range sel {
		i := i
		one := func() {
			r := &runs[i]
			r.timing = &Timing{}
			o := opt
			o.Timing = r.timing
			if arts.enabled() {
				r.collect = &Collector{}
				o.Collect = r.collect
			}
			start := time.Now()
			fig, err := sel[i].Run(o)
			r.wall = time.Since(start)
			if err != nil {
				r.err = fmt.Errorf("%s: %w", sel[i].ID, err)
				fmt.Fprintf(&r.buf, "### %s — FAILED: %v\n\n", sel[i].ID, err)
				return
			}
			fig.Render(&r.buf)
		}
		if serial {
			one()
		} else {
			wg.Add(1)
			go func() {
				defer wg.Done()
				one()
			}()
		}
	}
	wg.Wait()

	var firstErr error
	for i := range sel {
		if _, err := out.Write(runs[i].buf.Bytes()); err != nil {
			return err
		}
		if runs[i].err != nil && firstErr == nil {
			firstErr = runs[i].err
		}
	}
	if arts.enabled() {
		var cells []CollectedCell
		for i := range sel {
			for _, cc := range runs[i].collect.Cells() {
				cells = append(cells, CollectedCell{Label: sel[i].ID + "/" + cc.Label, Snap: cc.Snap})
			}
		}
		if err := arts.Write(cells); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if timingOut != nil {
		var totCells int
		var totWall, totCellWall time.Duration
		var totSim engine.Time
		for i := range sel {
			n, cellWall, sim := runs[i].timing.Summary()
			rate := 0.0
			if runs[i].wall > 0 {
				rate = float64(sim) / runs[i].wall.Seconds() / 1e6
			}
			fmt.Fprintf(timingOut, "%-7s %3d cells  wall %7.2fs  cellsum %7.2fs  sim %12d cyc  %8.1f Mcyc/s\n",
				sel[i].ID, n, runs[i].wall.Seconds(), cellWall.Seconds(), uint64(sim), rate)
			if perCell {
				runs[i].timing.Report(timingOut)
			}
			totCells += n
			totWall += runs[i].wall
			totCellWall += cellWall
			totSim += sim
		}
		fmt.Fprintf(timingOut, "total   %3d cells  cellsum %7.2fs  sim %12d cyc  (j=%d)\n",
			totCells, totCellWall.Seconds(), uint64(totSim), opt.jobs())
	}
	return firstErr
}

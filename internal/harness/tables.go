package harness

import (
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
)

// Table2 reports the simulated system's parameters, asserting the
// Table-2 values the DefaultConfig encodes.
func Table2(opt Options) (*Figure, error) {
	cfg := sys.DefaultConfig()
	tbl := stats.NewTable("Table 2: system and uarch parameters", "component", "parameter", "value")
	tbl.AddRow("System", "mesh", "8x8 tiles, X-Y routing")
	tbl.AddRow("NoC", "link", "32B flits, per-hop cycles 2")
	tbl.AddRow("L1 D$", "size/ways/lat", "32KB / 8 / 2cy (LRU)")
	tbl.AddRow("L2 $", "size/ways/lat", "256KB / 16 / 16cy (LRU)")
	tbl.AddRow("L3 $", "size/ways/lat", "1MB/bank x 64 / 16 / 20cy (BRRIP), static NUCA 1kB")
	tbl.AddRow("DRAM", "channels", "4 at mesh corners, 100cy + 20cy/line")
	tbl.AddRow("SEL3", "compute", "4cy init, 16-lane SIMD, 2 SMT threads/bank")
	tbl.AddRow("IOT", "capacity", cfg.Mem.IOTCapacity)
	tbl.AddRow("Heap", "layout", "randomized physical pages (affinity-oblivious)")
	tbl.AddRow("Policy", "default", cfg.Policy.Policy.String())
	return &Figure{ID: "t2", Title: "System and uarch parameters", Tables: []*stats.Table{tbl}}, nil
}

// Table3 reports the workload parameters at the chosen scale.
func Table3(opt Options) (*Figure, error) {
	tbl := stats.NewTable("Table 3: workload parameters at scale="+opt.Scale.String(),
		"benchmark", "layout", "parameters")
	type row struct{ name, layout, params string }
	g, _ := sharedGraph(opt)
	rows := []row{
		{"pathfinder", "Affine", "row DP"},
		{"hotspot", "Affine", "5-point 2D stencil"},
		{"srad", "Affine", "2-pass 2D stencil + reduce"},
		{"hotspot3D", "Affine", "7-point 3D stencil"},
		{"pr / bfs / sssp", "Linked CSR", ""},
		{"link_list / hash_join / bin_tree", "Ptr-Chasing", ""},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, r.layout, r.params)
	}
	tbl.AddRow("graph input", "Kronecker A/B/C=.57/.19/.19", "")
	tbl.AddRow("graph |V|", g.N, "")
	tbl.AddRow("graph |E|", g.NumEdges(), "")
	return &Figure{ID: "t3", Title: "Workload parameters", Tables: []*stats.Table{tbl}}, nil
}

package harness

import (
	"fmt"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// fig6Workloads builds the five Fig-6 kernels over prebuilt graphs with
// an oracle attached.
func fig6Workloads(opt Options, g, gt, wg *graph.Graph, oracle *workloads.EdgeOracle) []workloads.Workload {
	iters := prIters(opt)
	return []workloads.Workload{
		workloads.PageRank{G: g, GT: gt, Iters: iters, Dir: graph.Push, Oracle: oracle},
		workloads.BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1, Oracle: oracle},
		workloads.SSSP{G: wg, Src: -1, Oracle: oracle},
		workloads.PageRank{G: g, GT: gt, Iters: iters, Dir: graph.Pull, Oracle: oracle},
		workloads.BFS{G: g, GT: gt, Policy: graph.PullOnly{}, Src: -1, Oracle: oracle},
	}
}

// Fig6 regenerates the irregular-layout potential study: the CSR edge
// array broken into chunks of decreasing size, each placed by an oracle
// with minimal indirect traffic (≤2% imbalance), plus the no-indirect-
// traffic ideal. All runs use the Near-L3 configuration (the study
// motivates the co-designed format; it predates affinity alloc).
func Fig6(opt Options) (*Figure, error) {
	variants := []struct {
		name   string
		oracle *workloads.EdgeOracle
	}{
		{"Base", nil},
		{"Ind-4kB", &workloads.EdgeOracle{ChunkBytes: 4096}},
		{"Ind-1kB", &workloads.EdgeOracle{ChunkBytes: 1024}},
		{"Ind-256B", &workloads.EdgeOracle{ChunkBytes: 256}},
		{"Ind-64B", &workloads.EdgeOracle{ChunkBytes: 64}},
		{"Ind-Ideal", &workloads.EdgeOracle{ChunkBytes: 0}},
	}
	spd := stats.NewTable("Fig 6: speedup (normalized to Base = Near-L3)",
		"workload", "Base", "Ind-4kB", "Ind-1kB", "Ind-256B", "Ind-64B", "Ind-Ideal")
	trf := stats.NewTable("Fig 6: total NoC flit-hops (normalized to Base)",
		"workload", "Base", "Ind-4kB", "Ind-1kB", "Ind-256B", "Ind-64B", "Ind-Ideal")

	cfg := baseConfig(opt, core.DefaultPolicy())
	names := []string{"pr_push", "bfs_push", "sssp", "pr_pull", "bfs_pull"}
	g, gt := sharedGraph(opt)
	wgr := weightedSharedGraph(opt)
	byVariant := make([][]workloads.Workload, len(variants))
	for vi, v := range variants {
		byVariant[vi] = fig6Workloads(opt, g, gt, wgr, v.oracle)
	}

	cells := make([]cell, 0, len(names)*len(variants))
	for wi := range names {
		for vi, v := range variants {
			w := byVariant[vi][wi]
			cells = append(cells, cell{
				label: fmt.Sprintf("fig6 %s/%s", names[wi], v.name),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					return workloads.RunTraced(cfg, w, sys.NearL3, rec)
				},
			})
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}

	perVariant := make(map[string][]float64)
	for wi := range names {
		row := []interface{}{names[wi]}
		trow := []interface{}{names[wi]}
		base := rs[wi*len(variants)]
		for vi, v := range variants {
			r := rs[wi*len(variants)+vi]
			sp := speedup(r, base)
			row = append(row, sp)
			trow = append(trow, float64(r.Metrics.FlitHops)/float64(max(base.Metrics.FlitHops, 1)))
			perVariant[v.name] = append(perVariant[v.name], sp)
		}
		spd.AddRow(row...)
		trf.AddRow(trow...)
	}
	gm := []interface{}{"geomean"}
	for _, v := range variants {
		gm = append(gm, geomeanColumn(perVariant[v.name]))
	}
	spd.AddRow(gm...)
	return &Figure{
		ID:     "fig6",
		Title:  "Impact of Irregular Data Layout",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			"paper shape: finer chunks monotonically help (64B: ~60% traffic cut, ~2.14x); Ind-Ideal ~4.1x on pushes",
		},
	}, nil
}

// Fig14 regenerates the per-bank atomic-stream occupancy timelines of
// bfs_push under Rnd, Min-Hop, and Hybrid-5.
func Fig14(opt Options) (*Figure, error) {
	g, gt := sharedGraph(opt)
	w := workloads.BFS{G: g, GT: gt, Policy: graph.PushOnly{}, Src: -1}
	policies := []core.PolicyConfig{
		{Policy: core.Rnd},
		{Policy: core.MinHop},
		{Policy: core.Hybrid, H: 5},
	}
	tables := make([]*stats.Table, len(policies))
	err := opt.forEach(len(policies), func(pi int) error {
		p := policies[pi]
		name := p.Policy.String()
		if p.Policy == core.Hybrid {
			name = fmt.Sprintf("Hybrid-%d", int(p.H))
		}
		start := time.Now()
		s, err := sys.New(baseConfig(opt, p))
		if err != nil {
			return err
		}
		// First run to learn the duration, then rerun with ~16 buckets.
		probe, err := w.Run(sys.MustNew(baseConfig(opt, p)), sys.AffAlloc)
		if err != nil {
			return err
		}
		bucket := engine.Time(probe.Metrics.Cycles/16) + 1
		tl := stats.NewTimeline(s.Mesh.Banks(), bucket)
		s.SE.SetAtomicSampler(func(bank int, at engine.Time) { tl.Add(bank, at) })
		res, err := w.Run(s, sys.AffAlloc)
		if err != nil {
			return err
		}
		opt.Timing.observe("fig14 bfs_push/"+name, time.Since(start), probe.Metrics.Cycles+res.Metrics.Cycles)

		tbl := stats.NewTable(fmt.Sprintf("Fig 14: atomic ops per bank per window — %s (imbalance max/avg %.2f)", name, tl.Imbalance()),
			"t/T", "min", "p25", "avg", "p75", "max")
		for b := 0; b < tl.Buckets(); b++ {
			d := tl.Distribution(b)
			tbl.AddRow(fmt.Sprintf("%.2f", float64(b)/float64(tl.Buckets())), d.Min, d.P25, d.Avg, d.P75, d.Max)
		}
		tables[pi] = tbl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     "fig14",
		Title:  "Distribution of Atomic Stream in BFS-Push",
		Tables: tables,
		Notes: []string{
			"paper shape: Rnd has the highest occupancy; Hybrid-5's p25 line sits above Min-Hop's (better balance)",
		},
	}, nil
}

// Fig15 regenerates the affine input-size scaling study.
func Fig15(opt Options) (*Figure, error) {
	tbl := stats.NewTable("Fig 15: affine workloads vs input scale",
		"workload", "scale", "speedup.AffAlloc/NearL3", "l3miss.AffAlloc", "l3miss.NearL3")
	// The host-scaled 1x inputs are ~8x smaller than the paper's, so the
	// sweep extends to 16x to cross the 64MB LLC boundary the paper's 8x
	// reaches.
	cfg := baseConfig(opt, core.DefaultPolicy())
	type point struct {
		w    workloads.Workload
		mult int64
	}
	var points []point
	for _, mult := range []int64{1, 2, 4, 8, 16} {
		for _, w := range affineWorkloads(opt, mult) {
			points = append(points, point{w, mult})
		}
	}
	modes := []sys.Mode{sys.NearL3, sys.AffAlloc}
	cells := make([]cell, 0, len(points)*len(modes))
	for _, pt := range points {
		for _, mode := range modes {
			pt, mode := pt, mode
			cells = append(cells, cell{
				label: fmt.Sprintf("fig15 %s %dx/%v", pt.w.Name(), pt.mult, mode),
				run:   func(rec *trace.Recorder) (workloads.Result, error) { return workloads.RunTraced(cfg, pt.w, mode, rec) },
			})
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		near, aff := rs[2*i], rs[2*i+1]
		tbl.AddRow(pt.w.Name(), fmt.Sprintf("%dx", pt.mult), speedup(aff, near),
			aff.Metrics.L3MissRate(), near.Metrics.L3MissRate())
	}
	return &Figure{
		ID:     "fig15",
		Title:  "Speedup of Affine Layout on Large Inputs",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"paper shape: the benefit collapses once the working set exceeds the LLC (miss rate climbs with scale)",
		},
	}, nil
}

// Fig16 regenerates the graph-size scaling study.
func Fig16(opt Options) (*Figure, error) {
	baseScale, deg := 13, 12
	switch opt.Scale {
	case Tiny:
		baseScale, deg = 10, 8
	case Paper:
		baseScale, deg = 17, 32
	}
	tbl := stats.NewTable("Fig 16: graph workloads vs |V| (speedup over Near-L3)",
		"workload", "|V|", "Hybrid-5", "Min-Hops", "l3miss.Hybrid5", "l3miss.NearL3")
	const sizes = 4
	built := make([][]workloads.Workload, sizes)
	if err := opt.forEach(sizes, func(ds int) error {
		scale := baseScale + ds
		g := graph.Kronecker(scale, deg, 42+opt.Seed)
		gt := g.Transpose()
		wg := graph.Kronecker(scale, deg, 42+opt.Seed)
		wg.AddUniformWeights(1, 255, 42+opt.Seed)
		built[ds] = []workloads.Workload{
			workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Dir: graph.Push},
			workloads.BFS{G: g, GT: gt, Src: -1},
			workloads.SSSP{G: wg, Src: -1},
		}
		return nil
	}); err != nil {
		return nil, err
	}

	runs := []struct {
		name string
		pcfg core.PolicyConfig
		mode sys.Mode
	}{
		{"near", core.DefaultPolicy(), sys.NearL3},
		{"hybrid5", core.PolicyConfig{Policy: core.Hybrid, H: 5}, sys.AffAlloc},
		{"minhop", core.PolicyConfig{Policy: core.MinHop}, sys.AffAlloc},
	}
	var cells []cell
	for ds := 0; ds < sizes; ds++ {
		for _, w := range built[ds] {
			for _, r := range runs {
				w, r := w, r
				cells = append(cells, cell{
					label: fmt.Sprintf("fig16 2^%d %s/%s", baseScale+ds, w.Name(), r.name),
					run: func(rec *trace.Recorder) (workloads.Result, error) {
						return workloads.RunTraced(baseConfig(opt, r.pcfg), w, r.mode, rec)
					},
				})
			}
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for ds := 0; ds < sizes; ds++ {
		for _, w := range built[ds] {
			near, hy, mh := rs[i], rs[i+1], rs[i+2]
			i += len(runs)
			tbl.AddRow(w.Name(), fmt.Sprintf("2^%d", baseScale+ds), speedup(hy, near), speedup(mh, near),
				hy.Metrics.L3MissRate(), near.Metrics.L3MissRate())
		}
	}
	return &Figure{
		ID:     "fig16",
		Title:  "Speedup of Linked CSR on Large Graphs",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"paper shape: benefits shrink as the graph outgrows the LLC, but persist longer than the affine case (vertex reuse)",
		},
	}, nil
}

// Fig17 regenerates the BFS per-iteration characteristics.
func Fig17(opt Options) (*Figure, error) {
	g, gt := sharedGraph(opt)
	res := graph.BFS(g, gt, g.MaxDegreeVertex(), graph.PushOnly{})
	tbl := stats.NewTable("Fig 17: BFS iteration characteristics (fractions of |V| / |E|)",
		"iter", "visited", "active", "scout-edges")
	for _, it := range res.Iters {
		tbl.AddRow(it.Iter,
			float64(it.Visited)/float64(g.N),
			float64(it.Active)/float64(g.N),
			float64(it.ScoutEdges)/float64(g.NumEdges()))
	}
	return &Figure{
		ID:     "fig17",
		Title:  "BFS Iteration Characteristics",
		Tables: []*stats.Table{tbl},
		Notes:  []string{"paper shape: a small-world burst — active nodes and scout edges spike in the middle iterations"},
	}, nil
}

// Fig18 regenerates the push/pull/switch timelines under each
// configuration.
func Fig18(opt Options) (*Figure, error) {
	g, gt := sharedGraph(opt)
	policies := []graph.DirectionPolicy{graph.PullOnly{}, graph.PushOnly{}, nil} // nil = per-mode switch
	polName := func(p graph.DirectionPolicy, mode sys.Mode) string {
		if p == nil {
			if mode == sys.InCore {
				return "switch(gap)"
			}
			return "switch(ndc)"
		}
		return p.Name()
	}
	type timeline struct {
		cycles uint64
		line   string
	}
	rows := make([]timeline, len(sys.Modes)*len(policies))
	err := opt.forEach(len(rows), func(i int) error {
		mode := sys.Modes[i/len(policies)]
		p := policies[i%len(policies)]
		w := workloads.BFS{G: g, GT: gt, Policy: p, Src: -1}
		start := time.Now()
		s, err := sys.New(baseConfig(opt, core.DefaultPolicy()))
		if err != nil {
			return err
		}
		res, traces, err := w.RunTraced(s, mode)
		if err != nil {
			return err
		}
		opt.Timing.observe(fmt.Sprintf("fig18 %s/%v", polName(p, mode), mode), time.Since(start), res.Metrics.Cycles)
		total := float64(res.Metrics.Cycles)
		line := ""
		for _, tr := range traces {
			share := 100 * float64(tr.End-tr.Start) / total
			line += fmt.Sprintf("%d:%s(%.0f%%) ", tr.Iter, tr.Dir, share)
		}
		rows[i] = timeline{cycles: uint64(res.Metrics.Cycles), line: line}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for mi, mode := range sys.Modes {
		tbl := stats.NewTable(fmt.Sprintf("Fig 18: BFS iteration timeline — %v", mode),
			"policy", "total.cycles", "iter:dir(share%)")
		for pi, p := range policies {
			row := rows[mi*len(policies)+pi]
			tbl.AddRow(polName(p, mode), row.cycles, row.line)
		}
		tables = append(tables, tbl)
	}
	return &Figure{
		ID:     "fig18",
		Title:  "BFS Push vs Pull Timeline",
		Tables: tables,
		Notes: []string{
			"paper shape: In-Core pulls through the middle iterations; the NSC configurations push through more of the search",
		},
	}, nil
}

// Fig19 regenerates the average-degree sensitivity on power-law graphs
// with fixed |E|, normalized to the Rnd policy.
func Fig19(opt Options) (*Figure, error) {
	totalEdges := int64(1) << 19
	switch opt.Scale {
	case Tiny:
		totalEdges = 1 << 16
	case Paper:
		totalEdges = 1 << 22
	}
	tbl := stats.NewTable("Fig 19: speedup vs average degree (fixed |E|, normalized to Rnd)",
		"workload", "D", "Hybrid-5", "Min-Hops", "Near-L3")
	degrees := []int{4, 8, 16, 32, 64, 128}
	built := make([][]workloads.Workload, len(degrees))
	if err := opt.forEach(len(degrees), func(di int) error {
		d := degrees[di]
		n := int32(totalEdges / int64(d))
		g := graph.PowerLaw(n, d, 7+opt.Seed)
		gt := g.Transpose()
		wg := graph.PowerLaw(n, d, 7+opt.Seed)
		wg.AddUniformWeights(1, 255, 7+opt.Seed)
		built[di] = []workloads.Workload{
			workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Dir: graph.Push},
			workloads.BFS{G: g, GT: gt, Src: -1},
			workloads.SSSP{G: wg, Src: -1},
		}
		return nil
	}); err != nil {
		return nil, err
	}

	runs := []struct {
		name string
		pcfg core.PolicyConfig
		mode sys.Mode
	}{
		{"rnd", core.PolicyConfig{Policy: core.Rnd}, sys.AffAlloc},
		{"hybrid5", core.PolicyConfig{Policy: core.Hybrid, H: 5}, sys.AffAlloc},
		{"minhop", core.PolicyConfig{Policy: core.MinHop}, sys.AffAlloc},
		{"near", core.DefaultPolicy(), sys.NearL3},
	}
	var cells []cell
	for di, d := range degrees {
		for _, w := range built[di] {
			for _, r := range runs {
				w, r := w, r
				cells = append(cells, cell{
					label: fmt.Sprintf("fig19 D%d %s/%s", d, w.Name(), r.name),
					run: func(rec *trace.Recorder) (workloads.Result, error) {
						return workloads.RunTraced(baseConfig(opt, r.pcfg), w, r.mode, rec)
					},
				})
			}
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for di, d := range degrees {
		for _, w := range built[di] {
			rnd, hy, mh, near := rs[i], rs[i+1], rs[i+2], rs[i+3]
			i += len(runs)
			tbl.AddRow(w.Name(), d, speedup(hy, rnd), speedup(mh, rnd), speedup(near, rnd))
		}
	}
	return &Figure{
		ID:     "fig19",
		Title:  "Speedup vs Average Node Degree",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"paper shape: the affinity benefit grows with degree (sorted edge lists make high-degree chunks more placeable)",
		},
	}, nil
}

// table4Graphs builds the Table-4 social-network stand-ins (synthetic
// power-law graphs at the published |V|/|E| shapes, scaled by host
// budget; DESIGN.md documents the substitution).
func table4Graphs(opt Options) []struct {
	Name string
	G    *graph.Graph
} {
	div := int32(8)
	switch opt.Scale {
	case Tiny:
		div = 32
	case Paper:
		div = 1
	}
	twitch := graph.PowerLaw(168114/div, 81, 100+opt.Seed)
	gplus := graph.PowerLaw(107614/div, 127, 200+opt.Seed)
	return []struct {
		Name string
		G    *graph.Graph
	}{
		{"twitch-gamers*", twitch},
		{"gplus*", gplus},
	}
}

// Table4 reports the stand-in graphs' shapes.
func Table4(opt Options) (*Figure, error) {
	tbl := stats.NewTable("Table 4: real-world graph stand-ins (synthetic power-law, * = substituted)",
		"graph", "|V|", "|E|", "avg.degree", "max.degree")
	for _, e := range table4Graphs(opt) {
		tbl.AddRow(e.Name, e.G.N, e.G.NumEdges(), e.G.AvgDegree(), e.G.Degree(e.G.MaxDegreeVertex()))
	}
	return &Figure{ID: "t4", Title: "Real-world graph stand-ins", Tables: []*stats.Table{tbl}}, nil
}

// Fig20 regenerates the real-world-graph evaluation on the stand-ins.
func Fig20(opt Options) (*Figure, error) {
	spd := stats.NewTable("Fig 20: speedup on real-world stand-ins (normalized to Near-L3)",
		"graph", "workload", "Near-L3", "Min-Hops", "Hybrid-5")
	trf := stats.NewTable("Fig 20: total NoC flit-hops (normalized to Near-L3)",
		"graph", "workload", "Near-L3", "Min-Hops", "Hybrid-5")
	graphs := table4Graphs(opt)
	built := make([][]workloads.Workload, len(graphs))
	if err := opt.forEach(len(graphs), func(gi int) error {
		g := graphs[gi].G
		gt := g.Transpose()
		// A weighted view for sssp that shares structure with g.
		wg := &graph.Graph{N: g.N, Index: g.Index, Edges: g.Edges}
		wg.AddUniformWeights(1, 255, 300+opt.Seed)
		built[gi] = []workloads.Workload{
			workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Dir: graph.Push},
			workloads.BFS{G: g, GT: gt, Src: -1},
			workloads.SSSP{G: wg, Src: -1},
		}
		return nil
	}); err != nil {
		return nil, err
	}

	runs := []struct {
		name string
		pcfg core.PolicyConfig
		mode sys.Mode
	}{
		{"near", core.DefaultPolicy(), sys.NearL3},
		{"minhop", core.PolicyConfig{Policy: core.MinHop}, sys.AffAlloc},
		{"hybrid5", core.PolicyConfig{Policy: core.Hybrid, H: 5}, sys.AffAlloc},
	}
	var cells []cell
	for gi, ge := range graphs {
		for _, w := range built[gi] {
			for _, r := range runs {
				w, r := w, r
				cells = append(cells, cell{
					label: fmt.Sprintf("fig20 %s %s/%s", ge.Name, w.Name(), r.name),
					run: func(rec *trace.Recorder) (workloads.Result, error) {
						return workloads.RunTraced(baseConfig(opt, r.pcfg), w, r.mode, rec)
					},
				})
			}
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}

	var hySpeedups []float64
	i := 0
	for gi, ge := range graphs {
		for _, w := range built[gi] {
			near, mh, hy := rs[i], rs[i+1], rs[i+2]
			i += len(runs)
			spd.AddRow(ge.Name, w.Name(), 1.0, speedup(mh, near), speedup(hy, near))
			nt := float64(max(near.Metrics.FlitHops, 1))
			trf.AddRow(ge.Name, w.Name(), 1.0,
				float64(mh.Metrics.FlitHops)/nt, float64(hy.Metrics.FlitHops)/nt)
			hySpeedups = append(hySpeedups, speedup(hy, near))
		}
	}
	return &Figure{
		ID:     "fig20",
		Title:  "Performance on Real-World Graph Stand-ins",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			fmt.Sprintf("Hybrid-5 geomean speedup over Near-L3: %.2fx (paper: 2.0x)", geomeanColumn(hySpeedups)),
		},
	}, nil
}

package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// renderFig renders one experiment at tiny scale with the given worker
// count.
func renderFig(t *testing.T, id string, jobs int) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	fig, err := e.Run(Options{Scale: Tiny, Seed: 1, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	return buf.String()
}

// TestFig12ParallelByteIdentical: the acceptance property of the
// worker-pool runner — the rendered figure is byte-identical between a
// serial run and an 8-way parallel run.
func TestFig12ParallelByteIdentical(t *testing.T) {
	serial := renderFig(t, "fig12", 1)
	parallel := renderFig(t, "fig12", 8)
	if serial != parallel {
		t.Errorf("fig12 output differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", serial, parallel)
	}
}

// TestFig13ParallelByteIdentical covers the per-policy cell fan-out.
func TestFig13ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := renderFig(t, "fig13", 1)
	parallel := renderFig(t, "fig13", 8)
	if serial != parallel {
		t.Error("fig13 output differs between -j 1 and -j 8")
	}
}

// TestRunCellsDeterministicOrder runs real simulation cells concurrently
// (exercised under -race by CI) and checks results land in input order,
// matching a serial run exactly.
func TestRunCellsDeterministicOrder(t *testing.T) {
	build := func(jobs int) ([]workloads.Result, error) {
		opt := Options{Scale: Tiny, Seed: 1, Jobs: jobs}
		cells := make([]cell, 12)
		for i := range cells {
			i := i
			cells[i] = cell{
				label: fmt.Sprintf("vecadd/Δ%d", i),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					cfg := baseConfig(opt, core.DefaultPolicy())
					return workloads.Run(cfg, workloads.VecAdd{N: 1 << 10, ForceDelta: i}, sys.AffAlloc)
				},
			}
		}
		return runCells(opt, cells)
	}
	serial, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := build(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Checksum != parallel[i].Checksum ||
			serial[i].Metrics.Cycles != parallel[i].Metrics.Cycles ||
			serial[i].Metrics.FlitHops != parallel[i].Metrics.FlitHops {
			t.Errorf("cell %d differs: serial {cyc %d hops %d} parallel {cyc %d hops %d}",
				i, serial[i].Metrics.Cycles, serial[i].Metrics.FlitHops,
				parallel[i].Metrics.Cycles, parallel[i].Metrics.FlitHops)
		}
	}
}

// TestForEachBoundsConcurrency: no more than Jobs cells run at once, and
// a shared pool bounds cells across forEach calls.
func TestForEachBoundsConcurrency(t *testing.T) {
	const jobs, n = 3, 24
	var cur, peak int64
	opt := Options{Jobs: jobs}
	err := opt.forEach(n, func(i int) error {
		c := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > jobs {
		t.Errorf("observed %d concurrent cells, limit %d", peak, jobs)
	}
}

// TestRunCellsReportsLowestIndexError: every cell runs even when some
// fail, and the reported error is the lowest-index one regardless of
// scheduling.
func TestRunCellsReportsLowestIndexError(t *testing.T) {
	opt := Options{Jobs: 4}
	var ran int64
	cells := make([]cell, 8)
	for i := range cells {
		i := i
		cells[i] = cell{label: fmt.Sprintf("c%d", i), run: func(rec *trace.Recorder) (workloads.Result, error) {
			atomic.AddInt64(&ran, 1)
			if i == 2 || i == 6 {
				return workloads.Result{}, errors.New("boom")
			}
			return workloads.Result{Name: "ok"}, nil
		}}
	}
	_, err := runCells(opt, cells)
	if err == nil || !strings.Contains(err.Error(), "c2") {
		t.Errorf("error %v, want the lowest-index cell c2", err)
	}
	if ran != int64(len(cells)) {
		t.Errorf("%d cells ran, want all %d", ran, len(cells))
	}
}

// TestTimingRecordsCells: per-cell accounting is collected under
// parallel execution and reported deterministically.
func TestTimingRecordsCells(t *testing.T) {
	timing := &Timing{}
	opt := Options{Scale: Tiny, Seed: 1, Jobs: 4, Timing: timing}
	cells := make([]cell, 6)
	for i := range cells {
		i := i
		cells[i] = cell{label: fmt.Sprintf("cell%d", i), run: func(rec *trace.Recorder) (workloads.Result, error) {
			cfg := baseConfig(opt, core.DefaultPolicy())
			return workloads.Run(cfg, workloads.VecAdd{N: 1 << 9, ForceDelta: i}, sys.AffAlloc)
		}}
	}
	if _, err := runCells(opt, cells); err != nil {
		t.Fatal(err)
	}
	n, wall, sim := timing.Summary()
	if n != len(cells) || sim == 0 || wall <= 0 {
		t.Errorf("summary = %d cells, wall %v, sim %d; want %d cells with nonzero totals", n, wall, sim, len(cells))
	}
	recorded := timing.Cells()
	for i, c := range recorded {
		if want := fmt.Sprintf("cell%d", i); c.Label != want {
			t.Errorf("cells[%d].Label = %q, want %q (sorted)", i, c.Label, want)
		}
	}
	var buf bytes.Buffer
	timing.Report(&buf)
	if got := strings.Count(buf.String(), "Mcyc/s"); got != len(cells) {
		t.Errorf("report has %d lines, want %d", got, len(cells))
	}
}

// TestRunAllSubsetMatchesSerial: the combined multi-experiment stream is
// byte-identical for any worker count and ordered by registry.
func TestRunAllSubsetMatchesSerial(t *testing.T) {
	run := func(jobs int) string {
		var buf bytes.Buffer
		err := RunAll(Options{Scale: Tiny, Seed: 1, Jobs: jobs}, &buf,
			map[string]bool{"fig4": true, "t2": true}, nil, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Error("RunAll output differs between -j 1 and -j 4")
	}
	fig4 := strings.Index(serial, "### fig4")
	t2 := strings.Index(serial, "### t2")
	if fig4 < 0 || t2 < 0 || fig4 > t2 {
		t.Errorf("experiments out of registry order: fig4 at %d, t2 at %d", fig4, t2)
	}
}

package harness

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// okCell returns a cell that succeeds with a distinguishable checksum.
func okCell(label string, sum uint64) cell {
	return cell{label: label, run: func(rec *trace.Recorder) (workloads.Result, error) {
		return workloads.Result{Checksum: sum}, nil
	}}
}

// A panicking cell must become its own per-cell failure while every
// sibling still completes and keeps its slot in the result order.
func TestRunCellsPanicYieldsPartialResults(t *testing.T) {
	cells := []cell{
		okCell("c0", 10),
		{label: "c1", run: func(rec *trace.Recorder) (workloads.Result, error) { panic("simulated crash") }},
		okCell("c2", 20),
		okCell("c3", 30),
	}
	rs, err := runCells(Options{Jobs: 4}, cells)
	var fails *CellFailures
	if !errors.As(err, &fails) {
		t.Fatalf("err = %v, want *CellFailures", err)
	}
	if len(fails.Cells) != 1 || fails.Cells[0].Index != 1 || fails.Cells[0].Label != "c1" {
		t.Fatalf("failures %+v", fails.Cells)
	}
	if !strings.Contains(fails.Cells[0].Err.Error(), "cell panicked: simulated crash") {
		t.Fatalf("failure error %q", fails.Cells[0].Err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results", len(rs))
	}
	for i, want := range map[int]uint64{0: 10, 2: 20, 3: 30} {
		if rs[i].Checksum != want {
			t.Errorf("cell %d checksum %d, want %d", i, rs[i].Checksum, want)
		}
	}
	if rs[1] != (workloads.Result{}) {
		t.Errorf("failed slot holds %+v, want the zero value", rs[1])
	}
}

func TestRunCellsAggregatesFailuresInInputOrder(t *testing.T) {
	boom := func(label string) cell {
		return cell{label: label, run: func(rec *trace.Recorder) (workloads.Result, error) {
			return workloads.Result{}, fmt.Errorf("%s exploded", label)
		}}
	}
	_, err := runCells(Options{Jobs: 8}, []cell{
		okCell("c0", 1), boom("c1"), okCell("c2", 2), boom("c3"),
	})
	var fails *CellFailures
	if !errors.As(err, &fails) {
		t.Fatalf("err = %v", err)
	}
	if got := fails.Failed(); len(got) != 2 || got[0] != "c1" || got[1] != "c3" {
		t.Fatalf("failed labels %v", got)
	}
	if msg := err.Error(); !strings.HasPrefix(msg, "2 cells failed: c1: ") {
		t.Fatalf("aggregate message %q", msg)
	}
}

func TestCellTimeoutFailsTheCellOnly(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	cells := []cell{
		okCell("fast", 1),
		{label: "wedged", run: func(rec *trace.Recorder) (workloads.Result, error) {
			<-release // a simulation that never finishes on its own
			return workloads.Result{}, nil
		}},
	}
	rs, err := runCells(Options{Jobs: 2, CellTimeout: 50 * time.Millisecond}, cells)
	var fails *CellFailures
	if !errors.As(err, &fails) {
		t.Fatalf("err = %v", err)
	}
	if len(fails.Cells) != 1 || fails.Cells[0].Label != "wedged" {
		t.Fatalf("failures %+v", fails.Cells)
	}
	if !strings.Contains(fails.Cells[0].Err.Error(), "wall-clock timeout") {
		t.Fatalf("error %q", fails.Cells[0].Err)
	}
	if rs[0].Checksum != 1 {
		t.Fatal("sibling result lost")
	}
}

func TestTransientErrorsRetryUntilSuccess(t *testing.T) {
	attempts := 0
	c := cell{label: "flaky", run: func(rec *trace.Recorder) (workloads.Result, error) {
		attempts++
		if attempts < 3 {
			return workloads.Result{}, fmt.Errorf("spurious wobble: %w", ErrTransient)
		}
		return workloads.Result{Checksum: 7}, nil
	}}
	rs, err := runCells(Options{Jobs: 1, CellRetries: 3}, []cell{c})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || rs[0].Checksum != 7 {
		t.Fatalf("attempts=%d checksum=%d", attempts, rs[0].Checksum)
	}
}

func TestRetriesExhaustAndNonTransientNeverRetries(t *testing.T) {
	transient := 0
	hard := 0
	_, err := runCells(Options{Jobs: 1, CellRetries: 2}, []cell{
		{label: "always-transient", run: func(rec *trace.Recorder) (workloads.Result, error) {
			transient++
			return workloads.Result{}, fmt.Errorf("wobble %d: %w", transient, ErrTransient)
		}},
		{label: "hard", run: func(rec *trace.Recorder) (workloads.Result, error) {
			hard++
			return workloads.Result{}, errors.New("deterministic failure")
		}},
	})
	var fails *CellFailures
	if !errors.As(err, &fails) || len(fails.Cells) != 2 {
		t.Fatalf("err = %v", err)
	}
	if transient != 3 { // 1 attempt + 2 retries
		t.Fatalf("transient cell ran %d times, want 3", transient)
	}
	if hard != 1 {
		t.Fatalf("hard-failing cell ran %d times, want 1", hard)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatal("aggregate error should expose the transient cause to errors.Is")
	}
}

// A faulted experiment must render byte-identically for every worker
// count: the injector is per-System and all fault randomness is seeded.
func TestFaultedFigureByteIdenticalAcrossJobs(t *testing.T) {
	spec := faults.Spec{Seed: 1, NDeadBanks: 2, NDeadLinks: 2,
		DRAM: []faults.DRAMFault{{Chan: 0, LatencyX: 2}}}
	render := func(jobs int) string {
		fig, err := Fig4(Options{Scale: Tiny, Seed: 1, Jobs: jobs, Faults: spec})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		return buf.String()
	}
	j1 := render(1)
	j8 := render(8)
	if j1 != j8 {
		t.Fatalf("faulted fig4 differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
}

// TestFaultedDeferredAccountingByteIdenticalAcrossJobs stresses the
// deferred-retirement accounting path under a degraded machine: lossy
// links draw randomized retransmits (extra deferred flit events), a
// duty-cycled DRAM channel stretches completion cycles far into the
// kernel's spill window, and redirected SE work moves remote-op
// retirements across banks. Fig 14's atomic distribution reads the
// per-bank remote-op series, so any lost or reordered retirement shows up
// as a j1-vs-j8 byte diff.
func TestFaultedDeferredAccountingByteIdenticalAcrossJobs(t *testing.T) {
	spec := faults.Spec{Seed: 1, NDeadBanks: 2, NDeadLinks: 2,
		Links: []faults.LinkFault{{From: 0, To: 1, Drop: 0.05}},
		DRAM: []faults.DRAMFault{
			{Chan: 0, LatencyX: 2},
			{Chan: 1, LatencyX: 1, DutyOn: 40, DutyPeriod: 100},
		}}
	render := func(jobs int) string {
		fig, err := Fig14(Options{Scale: Tiny, Seed: 1, Jobs: jobs, Faults: spec})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		return buf.String()
	}
	j1 := render(1)
	j8 := render(8)
	if j1 != j8 {
		t.Fatalf("faulted fig14 differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
	}
}

package harness

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"testing"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/realloc"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

const goldenReallocPath = "testdata/golden_realloc_sweep.txt"

// TestGoldenReallocSweep pins the static-vs-dynamic table at tiny scale:
// two workloads (skew, bfs) on the clean and bank-kill machines. Any
// change to the reconciler's decisions — cadence, cost model, tie-breaks
// — or to the timing model shows up as a diff. To bless an intentional
// change:
//
//	go test ./internal/harness -run TestGoldenReallocSweep -update
func TestGoldenReallocSweep(t *testing.T) {
	fig, err := ReallocSweep(Options{Scale: Tiny, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	got := buf.Bytes()
	if *updateGolden {
		if err := os.WriteFile(goldenReallocPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenReallocPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenReallocPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("realloc sweep diverged from %s; if intentional, re-bless with -update.\nfirst divergence near: %s",
			goldenReallocPath, firstDiff(got, want))
	}
}

// TestReallocSweepByteIdenticalAcrossJobs renders the sweep serially and
// with maximum cell parallelism plus a sharded kernel; the migration
// schedule (and so every byte of the table) must not notice.
func TestReallocSweepByteIdenticalAcrossJobs(t *testing.T) {
	render := func(jobs, shards int) []byte {
		fig, err := ReallocSweep(Options{Scale: Tiny, Seed: 1, Jobs: jobs, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		return buf.Bytes()
	}
	base := render(1, 1)
	if par := render(8, 4); !bytes.Equal(base, par) {
		t.Errorf("sweep differs between -j 1 -shards 1 and -j 8 -shards 4:\n%s", firstDiff(base, par))
	}
}

// reallocProbe runs BFS-tiny under all three modes and serializes
// everything observable — per-mode cycles and checksums plus the full
// telemetry metrics document — into one byte stream.
func reallocProbe(t *testing.T, opt Options) []byte {
	t.Helper()
	opt.Collect = &Collector{}
	g, gt := sharedGraph(opt)
	ms, err := runModesAll(opt, []workloads.Workload{workloads.BFS{G: g, GT: gt, Src: -1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, mode := range sys.Modes {
		r := ms[0][mode]
		fmt.Fprintf(&buf, "%v cycles=%d checksum=%x\n", mode, uint64(r.Metrics.Cycles), r.Checksum)
	}
	arts := &Artifacts{MetricsOut: &buf, Experiment: "realloc-probe", Scale: opt.Scale, Seed: opt.Seed}
	if err := arts.Write(opt.Collect.Cells()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReallocOffIsByteIdentical is the issue's byte-identity control: a
// disabled reconciler AND an armed-but-threshold=inf reconciler (the loop
// runs, observes telemetry at every epoch, and never acts) must leave
// cycles, checksums, and the entire metrics document byte-identical to a
// reconciler-free build — serial or parallel, single-shard or sharded,
// clean machine or degraded.
func TestReallocOffIsByteIdentical(t *testing.T) {
	inf := realloc.Config{Epoch: 1500, Threshold: math.Inf(1)}.WithDefaults()
	for _, ft := range []struct {
		name string
		spec faults.Spec
	}{
		{"clean", faults.Spec{}},
		{"faulted", faults.Spec{Seed: 1, NDeadBanks: 1}},
	} {
		t.Run(ft.name, func(t *testing.T) {
			base := reallocProbe(t, Options{Scale: Tiny, Seed: 1, Jobs: 1, Shards: 1, Faults: ft.spec})
			for _, jobs := range []int{1, 8} {
				for _, shards := range []int{1, 4} {
					for _, rc := range []struct {
						name string
						cfg  realloc.Config
					}{{"off", realloc.Config{}}, {"threshold-inf", inf}} {
						got := reallocProbe(t, Options{
							Scale: Tiny, Seed: 1, Jobs: jobs, Shards: shards,
							Faults: ft.spec, Realloc: rc.cfg,
						})
						if !bytes.Equal(base, got) {
							t.Errorf("j=%d shards=%d realloc=%s: output differs from the reconciler-free baseline:\n%s",
								jobs, shards, rc.name, firstDiff(base, got))
						}
					}
				}
			}
		})
	}
}

package harness

import (
	"errors"
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/realloc"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// reallocKillAt returns the sweep's mid-run bank-kill cycle for a scale,
// chosen to land inside every sweep workload's run (BFS at tiny finishes
// around 6k cycles, skew around 12k; default-scale BFS around 33k).
func reallocKillAt(s Scale) uint64 {
	switch s {
	case Tiny:
		return 3000
	case Paper:
		return 50000
	}
	return 12000
}

// reallocSweepConfig returns the dynamic variant's reconciler config: the
// -realloc flag value when one was given, otherwise a per-scale default
// cadence (several epochs per run) with the package's cost/benefit knobs.
func reallocSweepConfig(opt Options) realloc.Config {
	if opt.Realloc.Enabled() {
		return opt.Realloc
	}
	epoch := uint64(6000)
	switch opt.Scale {
	case Tiny:
		epoch = 2000
	case Paper:
		epoch = 20000
	}
	return realloc.Config{Epoch: epoch}.WithDefaults()
}

// sweepSkew sizes the two-phase hotspot workload for a scale.
func sweepSkew(s Scale) workloads.Skew {
	w := workloads.DefaultSkew()
	switch s {
	case Default:
		w.Chunks, w.OpsPerPhase = 16, 18000
	case Paper:
		w.Chunks, w.OpsPerPhase = 24, 60000
	}
	return w
}

// ReallocSweep renders the static-vs-dynamic placement table behind
// `afftables -realloc-sweep`: each workload runs under Aff-Alloc with the
// reconciler off (static) and on (dynamic), on the clean machine and
// under a mid-run bank kill. The question it answers is whether closing
// the telemetry → placement loop pays: dynamic should recover a
// measurable fraction of a kill's damage by re-homing stranded-hot
// granules, while on the clean machine it must not distort a placement
// that is already good (migration traffic is modeled, not free).
//
// Like FaultsSweep, it is not in the Experiments registry (the default
// paper-shaped output stays byte-identical) and tolerates per-cell
// failures: failed cells render as FAILED(<reason>) and the error is
// returned so callers exit non-zero. Checksums are cross-checked between
// the static and dynamic runs of each cell pair — migration must never
// change results, only their timing.
func ReallocSweep(opt Options) (*Figure, error) {
	g, gt := sharedGraph(opt)
	ws := []workloads.Workload{
		sweepSkew(opt.Scale),
		workloads.BFS{G: g, GT: gt, Src: -1},
	}

	killAt := reallocKillAt(opt.Scale)
	type scenario struct {
		name string
		spec faults.Spec
	}
	scens := []scenario{
		{"clean", faults.Spec{}},
		{fmt.Sprintf("kill-bank=27@%d", killAt),
			faults.Spec{Kills: []faults.BankKill{{Bank: 27, At: killAt}}}},
	}
	rcfg := reallocSweepConfig(opt)
	variants := []realloc.Config{{}, rcfg} // static, dynamic

	cells := make([]cell, 0, len(ws)*len(scens)*len(variants))
	for _, w := range ws {
		for _, sc := range scens {
			for vi, rv := range variants {
				w, sc, rv := w, sc, rv
				vname := "static"
				if vi == 1 {
					vname = "dynamic"
				}
				o := opt
				o.Faults = sc.spec
				o.Realloc = rv
				cells = append(cells, cell{
					label: fmt.Sprintf("%s/%s/%s", w.Name(), sc.name, vname),
					run: func(rec *trace.Recorder) (workloads.Result, error) {
						return workloads.RunTraced(baseConfig(o, core.DefaultPolicy()), w, sys.AffAlloc, rec)
					},
				})
			}
		}
	}
	rs, err := runCells(opt, cells)
	var fails *CellFailures
	if err != nil && !errors.As(err, &fails) {
		return nil, err
	}
	failed := make(map[int]error)
	if fails != nil {
		for _, f := range fails.Cells {
			failed[f.Index] = f.Err
		}
	}
	at := func(wi, si, vi int) (workloads.Result, error) {
		idx := (wi*len(scens)+si)*len(variants) + vi
		if err, ok := failed[idx]; ok {
			return workloads.Result{}, err
		}
		return rs[idx], nil
	}

	tbl := stats.NewTable("Online re-allocation: static vs dynamic placement (Aff-Alloc)",
		"workload", "scenario", "cycles.static", "cycles.dynamic", "dyn/static", "migrations", "rehomes", "moved.KB")
	scalar := func(r workloads.Result, key string) uint64 {
		return r.Metrics.Detail.Scalar(key)
	}
	for wi, w := range ws {
		for si, sc := range scens {
			row := []interface{}{w.Name(), sc.name}
			st, serr := at(wi, si, 0)
			dy, derr := at(wi, si, 1)
			if serr == nil && derr == nil && st.Checksum != dy.Checksum {
				// Migration changed the computation — a simulator bug, not a
				// degraded-cell condition the sweep should tolerate.
				return nil, fmt.Errorf("realloc sweep: %s/%s: dynamic checksum %x != static %x (migration must be timing-only)",
					w.Name(), sc.name, dy.Checksum, st.Checksum)
			}
			if serr != nil {
				row = append(row, "FAILED("+shortReason(serr)+")")
			} else {
				row = append(row, uint64(st.Metrics.Cycles))
			}
			if derr != nil {
				row = append(row, "FAILED("+shortReason(derr)+")", "n/a", "n/a", "n/a", "n/a")
			} else {
				row = append(row, uint64(dy.Metrics.Cycles))
				if serr == nil && st.Metrics.Cycles > 0 {
					row = append(row, float64(dy.Metrics.Cycles)/float64(st.Metrics.Cycles))
				} else {
					row = append(row, "n/a")
				}
				row = append(row,
					scalar(dy, "realloc_migrations"),
					scalar(dy, "realloc_kill_rehomes"),
					float64(scalar(dy, "realloc_moved_bytes"))/1024)
			}
			tbl.AddRow(row...)
		}
	}

	fig := &Figure{
		ID:     "realloc",
		Title:  "Static vs dynamic placement on clean and bank-kill machines",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			fmt.Sprintf("dynamic: reconciler %s; static: same machine, reconciler off", rcfg),
			"dyn/static < 1 means the telemetry-driven migrations paid for their modeled NoC+port traffic",
			"both variants suffer the same mid-run kill; checksums are cross-checked (migration is timing-only)",
		},
	}
	if fails != nil {
		return fig, fails
	}
	return fig, nil
}

package harness

import (
	"bytes"
	"fmt"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// fig4TraceAndReport runs the Fig-4 experiment with recording on and
// returns (JSONL trace bytes, rendered figure bytes).
func fig4TraceAndReport(t *testing.T, jobs, shards int, fspec string) ([]byte, []byte) {
	t.Helper()
	opt := Options{Scale: Tiny, Seed: 1, Jobs: jobs, Shards: shards}
	if fspec != "" {
		f, err := faults.Parse(fspec)
		if err != nil {
			t.Fatal(err)
		}
		opt.Faults = f
	}
	col := trace.NewCollector()
	opt.Record = col
	fig, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	return trace.EncodeJSONL(col.Trace()), buf.Bytes()
}

// The record→replay differential gate, as a table across the axes the
// ISSUE pins: worker count (j1/j8), kernel shards (1/4), and machine
// health (clean/faulted). For every combination the recorded trace and
// the rendered figure must be byte-identical to the j=1 run (recording
// is slot-ordered and observation-only), and replaying every recorded
// scenario with zero options must reproduce the recorded placements
// byte-for-byte.
func TestRecordReplayGate(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, fspec := range []string{"", "dead-banks=2"} {
			name := fmt.Sprintf("shards=%d/faults=%s", shards, fspec)
			t.Run(name, func(t *testing.T) {
				tr1, rep1 := fig4TraceAndReport(t, 1, shards, fspec)
				tr8, rep8 := fig4TraceAndReport(t, 8, shards, fspec)
				if !bytes.Equal(tr1, tr8) {
					t.Error("recorded trace differs between -j1 and -j8")
				}
				if !bytes.Equal(rep1, rep8) {
					t.Error("figure differs between -j1 and -j8")
				}
				if len(tr1) == 0 {
					t.Fatal("empty recorded trace")
				}
				decoded, err := trace.ParseJSONL(tr1)
				if err != nil {
					t.Fatal(err)
				}
				if len(decoded.Scenarios) == 0 {
					t.Fatal("no scenarios recorded")
				}
				for _, sc := range decoded.Scenarios {
					res, err := trace.Replay(sc, trace.Options{})
					if err != nil {
						t.Fatalf("replay %s: %v", sc.Label, err)
					}
					got, want := res.PlacementDump(), trace.RecordedDump(sc)
					if !bytes.Equal(got, want) {
						t.Errorf("%s: replay diverged from recording:\n--- replay\n%s--- recorded\n%s",
							sc.Label, got, want)
					}
				}
			})
		}
	}
}

// Recording must not perturb results: the same experiment with and
// without a Record collector renders byte-identical figures.
func TestRecordingDoesNotPerturbFigures(t *testing.T) {
	opt := Options{Scale: Tiny, Seed: 1, Jobs: 4}
	fig, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	fig.Render(&plain)
	_, recorded := fig4TraceAndReport(t, 4, 1, "")
	if !bytes.Equal(plain.Bytes(), recorded) {
		t.Error("recording changed the rendered figure")
	}
}

// A retried cell's scenario must reflect only the successful attempt,
// and failed cells leave no scenario behind.
func TestRecordSkipsFailedAttempts(t *testing.T) {
	col := trace.NewCollector()
	opt := Options{Jobs: 2, CellRetries: 2, Record: col}
	attempts := 0
	cells := []cell{
		{label: "flaky", run: func(rec *trace.Recorder) (workloads.Result, error) {
			attempts++
			rec.Begin(baseConfig(opt, core.DefaultPolicy()), 0)
			if attempts < 2 {
				return workloads.Result{}, fmt.Errorf("wobble: %w", ErrTransient)
			}
			return workloads.Result{Checksum: 1}, nil
		}},
		{label: "dead", run: func(rec *trace.Recorder) (workloads.Result, error) {
			return workloads.Result{}, fmt.Errorf("hard failure")
		}},
	}
	_, err := runCells(opt, cells)
	if err == nil {
		t.Fatal("expected the dead cell's failure")
	}
	tr := col.Trace()
	if len(tr.Scenarios) != 1 {
		t.Fatalf("collected %d scenarios, want 1 (flaky's successful attempt only)", len(tr.Scenarios))
	}
	if tr.Scenarios[0].Label != "flaky" {
		t.Errorf("collected %q, want flaky", tr.Scenarios[0].Label)
	}
}

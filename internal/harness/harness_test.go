package harness

import (
	"bytes"
	"testing"
)

// TestAllExperimentsTiny runs every registered experiment at tiny scale,
// checking they complete and render.
func TestAllExperimentsTiny(t *testing.T) {
	opt := Options{Scale: Tiny, Seed: 1}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			fig, err := e.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			fig.Render(&buf)
			if buf.Len() == 0 {
				t.Error("empty render")
			}
			if len(fig.Tables) == 0 {
				t.Error("no tables")
			}
		})
	}
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"tiny", Tiny, true}, {"default", Default, true}, {"", Default, true},
		{"paper", Paper, true}, {"huge", 0, false},
	} {
		got, err := ParseScale(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScale(%q) accepted", c.in)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig12"); !ok {
		t.Error("fig12 missing")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("fig99 found")
	}
}

// TestWorkloadSetsPerScale checks each scale builds a complete workload
// set with unique names.
func TestWorkloadSetsPerScale(t *testing.T) {
	for _, scale := range []Scale{Tiny, Default, Paper} {
		ws := AllWorkloads(Options{Scale: scale, Seed: 1})
		if len(ws) != 10 {
			t.Errorf("%v: %d workloads, want 10", scale, len(ws))
		}
		seen := map[string]bool{}
		for _, w := range ws {
			if seen[w.Name()] {
				t.Errorf("%v: duplicate workload %s", scale, w.Name())
			}
			seen[w.Name()] = true
		}
	}
}

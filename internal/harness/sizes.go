package harness

import (
	"affinityalloc/internal/graph"
	"affinityalloc/internal/workloads"
)

// affineWorkloads returns the four Rodinia affine workloads at the given
// scale, with an input-size multiplier (Fig 15 sweeps it; 1 otherwise).
func affineWorkloads(opt Options, mult int64) []workloads.Workload {
	switch opt.Scale {
	case Tiny:
		return []workloads.Workload{
			workloads.Pathfinder{Cols: 32 * 1024 * mult, Steps: 2},
			workloads.NewHotspot(64*mult, 1024, 2),
			workloads.NewSrad(32*mult, 1024, 1),
			workloads.Hotspot3D{Rows: 32 * mult, Cols: 256, Layers: 8, Iters: 2},
		}
	case Paper:
		return []workloads.Workload{
			workloads.Pathfinder{Cols: 1536 * 1024 * mult, Steps: 8},
			workloads.NewHotspot(2048*mult, 1024, 8),
			workloads.NewSrad(1024*mult, 2048, 8),
			workloads.Hotspot3D{Rows: 256 * mult, Cols: 1024, Layers: 8, Iters: 8},
		}
	default:
		return []workloads.Workload{
			workloads.Pathfinder{Cols: 192 * 1024 * mult, Steps: 4},
			workloads.NewHotspot(512*mult, 1024, 4),
			workloads.NewSrad(256*mult, 1024, 4),
			workloads.Hotspot3D{Rows: 128 * mult, Cols: 512, Layers: 8, Iters: 4},
		}
	}
}

// pointerWorkloads returns the three pointer-chasing workloads.
func pointerWorkloads(opt Options) []workloads.Workload {
	switch opt.Scale {
	case Tiny:
		return []workloads.Workload{
			workloads.LinkList{Lists: 120, Nodes: 128, Queries: 1},
			workloads.HashJoin{BuildRows: 8 << 10, ProbeRows: 16 << 10, Buckets: 2 << 10, HitRate: 1.0 / 8},
			workloads.BinTree{Keys: 8 << 10, Lookups: 16 << 10},
		}
	case Paper:
		return []workloads.Workload{
			workloads.PaperLinkList(),
			workloads.PaperHashJoin(),
			workloads.PaperBinTree(),
		}
	default:
		return []workloads.Workload{
			workloads.DefaultLinkList(),
			workloads.DefaultHashJoin(),
			workloads.DefaultBinTree(),
		}
	}
}

// prIters returns the PageRank iteration count per scale.
func prIters(opt Options) int {
	switch opt.Scale {
	case Tiny:
		return 2
	case Paper:
		return 8
	default:
		return 3
	}
}

// graphWorkloads returns the evaluation's graph workloads on the shared
// Kronecker graph: pr (best per mode), bfs (switching), sssp.
func graphWorkloads(opt Options) []workloads.Workload {
	g, gt := sharedGraph(opt)
	wg := weightedSharedGraph(opt)
	return []workloads.Workload{
		workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Best: true},
		workloads.BFS{G: g, GT: gt, Src: -1},
		workloads.SSSP{G: wg, Src: -1},
	}
}

// irregularWorkloads returns the Fig-13 policy-sensitivity set.
func irregularWorkloads(opt Options) []workloads.Workload {
	g, gt := sharedGraph(opt)
	wg := weightedSharedGraph(opt)
	ws := []workloads.Workload{
		workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Dir: graph.Push},
		workloads.PageRank{G: g, GT: gt, Iters: prIters(opt), Dir: graph.Pull},
		workloads.BFS{G: g, GT: gt, Src: -1},
		workloads.SSSP{G: wg, Src: -1},
	}
	return append(ws, pointerWorkloads(opt)...)
}

// AllWorkloads returns Fig 12's ten benchmarks at the given scale.
func AllWorkloads(opt Options) []workloads.Workload {
	return allWorkloads(opt)
}

// allWorkloads returns Fig 12's ten benchmarks.
func allWorkloads(opt Options) []workloads.Workload {
	ws := affineWorkloads(opt, 1)
	ws = append(ws, graphWorkloads(opt)...)
	ws = append(ws, pointerWorkloads(opt)...)
	return ws
}

// Package harness regenerates every table and figure of the paper's
// evaluation (§7): it assembles workloads at a chosen scale, runs them
// across configurations, normalizes exactly as the paper does, and
// renders paper-shaped text tables. DESIGN.md's experiment index maps
// each figure to its function here.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/graph"
	"affinityalloc/internal/realloc"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Tiny runs in seconds; for tests and CI.
	Tiny Scale = iota
	// Default is the host-scaled sizing (minutes for the full suite).
	Default
	// Paper is the published Table-3/Table-4 sizing.
	Paper
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Default:
		return "default"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a flag value.
func ParseScale(v string) (Scale, error) {
	switch v {
	case "tiny":
		return Tiny, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("harness: unknown scale %q (tiny|default|paper)", v)
}

// Options parameterizes a harness run.
type Options struct {
	Scale Scale
	Seed  int64
	// Jobs is the number of simulation cells run concurrently; <= 0
	// selects runtime.GOMAXPROCS(0). Figure output is byte-identical for
	// every value: cells are independent and results are collected in
	// serial order before rendering.
	Jobs int
	// Timing, when non-nil, records per-cell wall time and simulated
	// cycles (see CellTiming).
	Timing *Timing
	// Collect, when non-nil, records each cell's telemetry snapshot in
	// deterministic harness order (see Collector).
	Collect *Collector
	// Record, when non-nil, captures each cell's allocation events and
	// access summaries as an afftrace/v1 scenario (see trace.Collector).
	// Like Collect, slots are reserved before cells launch, so the
	// resulting trace is byte-identical for every Jobs value. Recording
	// is pure observation: it never changes cell results.
	Record *trace.Collector

	// Shards partitions each cell's event kernel across that many mesh
	// rectangles (see sys.Config.Shards). Reports and artifacts are
	// byte-identical for every value — retirement accounting is
	// commutative and shard-owned — so it is purely a throughput knob;
	// <= 1 keeps the single-shard kernel.
	Shards int

	// Faults, when non-empty, degrades every cell's simulated machine
	// (dead banks/links, throttled DRAM; see faults.Spec). Results stay
	// deterministic for any Jobs value: each cell's system owns its own
	// injector.
	Faults faults.Spec
	// Realloc, when enabled, arms every cell's online reconciler (see
	// realloc.Config). Deterministic like Faults: each cell's system
	// owns its own reconciler, and the migration schedule depends only
	// on seed and config — never on Jobs or Shards.
	Realloc realloc.Config
	// CellTimeout bounds one cell's wall-clock run; an overrunning cell
	// fails with a timeout error while its siblings keep running (0: no
	// timeout).
	CellTimeout time.Duration
	// CellRetries re-runs a cell whose error is marked ErrTransient up to
	// this many extra times before reporting it failed.
	CellRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt (0: retry immediately).
	RetryBackoff time.Duration

	// limit, when set, is a shared pool bounding concurrent cells across
	// experiments (see ShareWorkers).
	limit chan struct{}
}

// DefaultOptions returns the default sizing.
func DefaultOptions() Options { return Options{Scale: Default, Seed: 1} }

// Validate rejects option values every simulation cell would fail with
// (an impossible shard count, an out-of-range fault spec), so CLIs can
// report one named error up front instead of one failure per cell.
func (o Options) Validate() error {
	return baseConfig(o, core.DefaultPolicy()).Validate()
}

// Figure is one regenerated artifact.
type Figure struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Render writes the figure to w.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title)
	for _, t := range f.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Figure, error)
}

// Experiments lists every regenerable artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig4", "Impact of Affine Data Layout on Vec Add", Fig4},
		{"fig6", "Impact of Irregular Data Layout (chunked-CSR oracle)", Fig6},
		{"t2", "System and uarch parameters", Table2},
		{"t3", "Workload parameters", Table3},
		{"fig12", "Overall Performance and Traffic Reduction", Fig12},
		{"fig13", "Sensitivity on Irregular Layout Policies", Fig13},
		{"fig14", "Distribution of Atomic Stream in BFS-Push", Fig14},
		{"fig15", "Speedup of Affine Layout on Large Inputs", Fig15},
		{"fig16", "Speedup of Linked CSR on Large Graphs", Fig16},
		{"fig17", "BFS Iteration Characteristics", Fig17},
		{"fig18", "BFS Push vs Pull Timeline", Fig18},
		{"fig19", "Speedup vs Average Node Degree", Fig19},
		{"t4", "Real-world graph stand-ins", Table4},
		{"fig20", "Performance on Real-World Graph Stand-ins", Fig20},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// baseConfig is the Table-2 system with a given irregular policy (and the
// option's fault spec, when one is set).
func baseConfig(opt Options, pcfg core.PolicyConfig) sys.Config {
	cfg := sys.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.Policy = pcfg
	cfg.Faults = opt.Faults
	cfg.Shards = opt.Shards
	cfg.Realloc = opt.Realloc
	return cfg
}

// runModes runs a workload under the three configurations, one parallel
// cell per mode.
func runModes(opt Options, w workloads.Workload) (map[sys.Mode]workloads.Result, error) {
	ms, err := runModesAll(opt, []workloads.Workload{w})
	if err != nil {
		return nil, err
	}
	return ms[0], nil
}

// runModesAll runs every (workload × mode) pair as one flat batch of
// parallel cells and returns the per-workload mode maps in input order.
func runModesAll(opt Options, ws []workloads.Workload) ([]map[sys.Mode]workloads.Result, error) {
	cells := make([]cell, 0, len(ws)*len(sys.Modes))
	for _, w := range ws {
		for _, mode := range sys.Modes {
			w, mode := w, mode
			cells = append(cells, cell{
				label: fmt.Sprintf("%s/%v", w.Name(), mode),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					return workloads.RunTraced(baseConfig(opt, core.DefaultPolicy()), w, mode, rec)
				},
			})
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	out := make([]map[sys.Mode]workloads.Result, len(ws))
	for wi, w := range ws {
		m := make(map[sys.Mode]workloads.Result, len(sys.Modes))
		for mi, mode := range sys.Modes {
			m[mode] = rs[wi*len(sys.Modes)+mi]
		}
		// Functional cross-check: every configuration computed the same
		// result.
		base := m[sys.InCore].Checksum
		for _, mode := range sys.Modes {
			if m[mode].Checksum != base {
				return nil, fmt.Errorf("%s: %v checksum %x != In-Core %x", w.Name(), mode, m[mode].Checksum, base)
			}
		}
		out[wi] = m
	}
	return out, nil
}

// speedup returns base cycles / new cycles.
func speedup(newM, baseM workloads.Result) float64 {
	if newM.Metrics.Cycles == 0 {
		return 0
	}
	return float64(baseM.Metrics.Cycles) / float64(newM.Metrics.Cycles)
}

// energyEff returns the energy-efficiency ratio of new over base (equal
// work assumed).
func energyEff(newM, baseM workloads.Result) float64 {
	if newM.Metrics.EnergyTotal() == 0 {
		return 0
	}
	return baseM.Metrics.EnergyTotal() / newM.Metrics.EnergyTotal()
}

// trafficCols returns a run's data/control/offload flit-hops normalized
// to a baseline run's total.
func trafficCols(r workloads.Result, base workloads.Result) (d, c, o float64) {
	total := float64(base.Metrics.FlitHops)
	if total == 0 {
		return 0, 0, 0
	}
	dd, cc, oo := r.Metrics.DataHops()
	return float64(dd) / total, float64(cc) / total, float64(oo) / total
}

// geomeanColumn computes the geometric mean of a column extractor over
// rows.
func geomeanColumn(vals []float64) float64 { return stats.Geomean(vals) }

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sharedGraph builds the evaluation's main Kronecker graph at the given
// scale (Table 3: 128k nodes, 4M edges at paper scale).
func sharedGraph(opt Options) (*graph.Graph, *graph.Graph) {
	scale, deg := 14, 12
	switch opt.Scale {
	case Tiny:
		scale, deg = 11, 8
	case Paper:
		scale, deg = 17, 32
	}
	g := graph.Kronecker(scale, deg, 42+opt.Seed)
	return g, g.Transpose()
}

// weightedSharedGraph adds Table 3's uniform [1,255] weights.
func weightedSharedGraph(opt Options) *graph.Graph {
	g, _ := sharedGraph(opt)
	g.AddUniformWeights(1, 255, 42+opt.Seed)
	return g
}

package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden_test.go's committed reports")

const goldenTinyPath = "testdata/golden_tiny_report.txt"

// goldenExperiments is the subset of the report the golden test pins: the
// layout microbenchmarks, both parameter tables, and the atomic
// distribution — together they exercise affine and irregular placement,
// remote ops, and the table renderer, while staying seconds-fast. The
// heavyweight overall figures are covered (structurally, not by bytes) by
// TestAllExperimentsTiny and the parallel byte-identity tests.
var goldenExperiments = map[string]bool{
	"fig4": true, "fig6": true, "t2": true, "t3": true, "fig14": true,
}

// TestGoldenTinyReport regenerates a slice of the tiny-scale report and
// byte-compares it against the committed golden file. Any change to
// simulation behavior — timing model, placement policy, counter
// accounting, rendering — shows up here as a diff. To bless an
// intentional change:
//
//	go test ./internal/harness -run TestGoldenTinyReport -update
func TestGoldenTinyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(Options{Scale: Tiny, Seed: 1, Jobs: 4}, &buf, goldenExperiments, nil, false, nil); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTinyPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTinyPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenTinyPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTinyPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("tiny report diverged from %s (len got %d, want %d); "+
			"if the change is intentional, re-bless with -update.\nfirst divergence near: %s",
			goldenTinyPath, len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hi := i + 60
	window := func(s []byte) string {
		h := hi
		if h > len(s) {
			h = len(s)
		}
		if lo >= h {
			return ""
		}
		return string(s[lo:h])
	}
	return "got ..." + window(a) + "... want ..." + window(b) + "..."
}

package harness

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// colocationPolicies is the policy axis of the interference table.
var colocationPolicies = []string{"rnd", "minhop", "hybrid5"}

// colocationWorkloads picks three cheap, structurally diverse tenants:
// an affine stencil, a streamed vector kernel, and a pointer chaser.
func colocationWorkloads(opt Options) []workloads.Workload {
	switch opt.Scale {
	case Tiny:
		return []workloads.Workload{
			workloads.VecAdd{N: 1 << 12, ForceDelta: -1},
			workloads.Pathfinder{Cols: 8 * 1024, Steps: 2},
			workloads.LinkList{Lists: 48, Nodes: 64, Queries: 1},
		}
	case Paper:
		return []workloads.Workload{
			workloads.VecAdd{N: 1 << 18, ForceDelta: -1},
			workloads.Pathfinder{Cols: 512 * 1024, Steps: 4},
			workloads.PaperLinkList(),
		}
	default:
		return []workloads.Workload{
			workloads.VecAdd{N: 1 << 15, ForceDelta: -1},
			workloads.Pathfinder{Cols: 64 * 1024, Steps: 3},
			workloads.DefaultLinkList(),
		}
	}
}

// noiseSpec sizes the synthetic noisy-neighbor tenant per scale.
func noiseSpec(opt Options) trace.NoiseSpec {
	sp := trace.NoiseSpec{Seed: opt.Seed, Bursts: 4}
	if opt.Scale == Tiny {
		sp.Bytes = 256 << 10
	}
	return sp
}

// Colocation builds the CODA-style interference table: record each
// tenant workload solo (Aff-Alloc), compose workload pairs into
// multi-tenant scenarios with a deterministic seeded interleaving, then
// replay solo and colocated under each irregular policy and report the
// colocated-vs-solo slowdown per tenant. Everything downstream of the
// recording runs on the trace engine, so the table is byte-identical
// for every -j and shard count.
func Colocation(opt Options) (*Figure, error) {
	ws := colocationWorkloads(opt)

	// Phase 1: record each tenant solo.
	ropt := opt
	rec := trace.NewCollector()
	ropt.Record = rec
	cells := make([]cell, len(ws))
	for i, w := range ws {
		w := w
		cells[i] = cell{
			label: w.Name(),
			run: func(r *trace.Recorder) (workloads.Result, error) {
				return workloads.RunTraced(baseConfig(opt, core.DefaultPolicy()), w, sys.AffAlloc, r)
			},
		}
	}
	if _, err := runCells(ropt, cells); err != nil {
		return nil, err
	}
	scs := rec.Trace().Scenarios
	if len(scs) != len(ws) {
		return nil, fmt.Errorf("colocation: recorded %d of %d tenants", len(scs), len(ws))
	}
	noise := trace.NoisyNeighbor(noiseSpec(opt))
	tenants := append(append([]*trace.Scenario(nil), scs...), noise)

	// Phase 2: compose the pair scenarios.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {2, 3}}
	composed := make([]*trace.Scenario, len(pairs))
	for pi, p := range pairs {
		c, err := trace.Compose(
			[]*trace.Scenario{tenants[p[0]], tenants[p[1]]},
			trace.ComposeOptions{Seed: opt.Seed*1000003 + int64(pi)},
		)
		if err != nil {
			return nil, err
		}
		composed[pi] = c
	}

	// Phase 3: replay solos and pairs under every policy, in parallel.
	type task struct {
		sc     *trace.Scenario
		policy string
	}
	var tasks []task
	for _, sc := range tenants {
		for _, p := range colocationPolicies {
			tasks = append(tasks, task{sc, p})
		}
	}
	for _, sc := range composed {
		for _, p := range colocationPolicies {
			tasks = append(tasks, task{sc, p})
		}
	}
	results := make([]*trace.Result, len(tasks))
	if err := opt.forEach(len(tasks), func(i int) error {
		r, err := trace.Replay(tasks[i].sc, trace.Options{Policy: tasks[i].policy, Shards: opt.Shards})
		if err != nil {
			return fmt.Errorf("colocation: replay %s under %s: %w", tasks[i].sc.Label, tasks[i].policy, err)
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}

	// Index solo cycles by (tenant label, policy).
	solo := map[string]map[string]float64{}
	ti := 0
	for _, sc := range tenants {
		solo[sc.Label] = map[string]float64{}
		for _, p := range colocationPolicies {
			solo[sc.Label][p] = float64(results[ti].Tenants[0].Cycles)
			ti++
		}
	}

	headers := append([]string{"pair"}, colocationPolicies...)
	tbl := stats.NewTable(
		fmt.Sprintf("colocated slowdown vs solo (A/B per tenant) at scale=%v", opt.Scale),
		headers...)
	for pi := range pairs {
		c := composed[pi]
		row := []interface{}{c.Label}
		for _, p := range colocationPolicies {
			r := results[ti]
			ti++
			if len(r.Tenants) != 2 {
				return nil, fmt.Errorf("colocation: %s replayed %d tenants", c.Label, len(r.Tenants))
			}
			sa := slowdown(float64(r.Tenants[0].Cycles), solo[c.TenantLabel(0)][p])
			sb := slowdown(float64(r.Tenants[1].Cycles), solo[c.TenantLabel(1)][p])
			row = append(row, fmt.Sprintf("%.2f/%.2f", sa, sb))
		}
		tbl.AddRow(row...)
	}
	return &Figure{
		ID:     "colocation",
		Title:  "Multi-Tenant Colocation Interference (trace-composed)",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"each cell is tenantA/tenantB colocated-cycles over solo-cycles under that irregular policy",
			"tenants recorded solo under Aff-Alloc, composed with a seeded interleave, and replayed on the trace engine",
			"near-1.00 workload pairs mean bank-interleaved placements kept the tenants isolated; the noise tenant concentrates load on rotating hot banks",
		},
	}, nil
}

// slowdown guards the ratio against a zero solo baseline.
func slowdown(colo, solo float64) float64 {
	if solo <= 0 {
		return 0
	}
	return colo / solo
}

package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"affinityalloc/internal/backoff"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// ErrTransient marks a cell failure worth retrying: wrap (or join) it into
// an error returned from a cell to opt into the Options.CellRetries
// retry-with-backoff path. Panics and timeouts are never treated as
// transient — a crashed or wedged simulation will crash or wedge again.
var ErrTransient = errors.New("transient failure")

// CellFailure is one failed cell of a batch: its input index, harness
// label, and final error (after any retries).
type CellFailure struct {
	Index int
	Label string
	Err   error
}

// CellFailures aggregates every failed cell of a batch, in input order.
// runCells returns it alongside the partial results, so callers that can
// tolerate holes (the fault sweep, RunAll's report) keep the successful
// cells while callers that need the full batch just propagate the error.
type CellFailures struct {
	Cells []CellFailure
}

// failureListCap bounds how many per-cell messages Error renders.
const failureListCap = 8

func (e *CellFailures) Error() string {
	var b strings.Builder
	if len(e.Cells) > 1 {
		fmt.Fprintf(&b, "%d cells failed: ", len(e.Cells))
	}
	for i, c := range e.Cells {
		if i == failureListCap {
			fmt.Fprintf(&b, "; +%d more", len(e.Cells)-i)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %v", c.Label, c.Err)
	}
	return b.String()
}

// Unwrap exposes the per-cell errors to errors.Is/As.
func (e *CellFailures) Unwrap() []error {
	errs := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		errs[i] = c.Err
	}
	return errs
}

// Failed returns the failed cells' labels in input order.
func (e *CellFailures) Failed() []string {
	out := make([]string, len(e.Cells))
	for i, c := range e.Cells {
		out[i] = c.Label
	}
	return out
}

// maxRetryBackoff caps the doubling retry backoff; the saturation (and
// the overflow-proofing it provides at large CellRetries) lives in the
// shared internal/backoff package, which the affinityd client retry
// loop uses too.
const maxRetryBackoff = backoff.DefaultCap

// runCell executes one cell under the option's resilience policy: panics
// inside the simulation become this cell's error (sibling cells keep
// running), CellTimeout bounds the wall-clock run, and failures marked
// ErrTransient retry up to CellRetries times with doubling backoff
// (capped at maxRetryBackoff). When Options.Record is set, the returned
// scenario is the successful attempt's recording (nil on failure or
// when recording is off); each attempt records into a fresh recorder so
// an abandoned timed-out goroutine can never corrupt a kept scenario.
func (o Options) runCell(c cell) (workloads.Result, *trace.Scenario, error) {
	var r workloads.Result
	var err error
	for attempt := 0; ; attempt++ {
		rec := o.Record.NewRecorder(c.label)
		r, err = o.runCellOnce(c, rec)
		if err == nil {
			return r, rec.Scenario(), nil
		}
		if attempt >= o.CellRetries || !errors.Is(err, ErrTransient) {
			return r, nil, err
		}
		if d := backoff.Delay(o.RetryBackoff, maxRetryBackoff, attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// runCellOnce is one guarded attempt: the cell body runs behind a panic
// shield and, when CellTimeout is set, under a wall-clock deadline. A
// timed-out cell's goroutine is abandoned (simulations have no
// cancellation points); its result is discarded when it eventually
// finishes.
func (o Options) runCellOnce(c cell, rec *trace.Recorder) (workloads.Result, error) {
	if o.CellTimeout <= 0 {
		return c.runRecovered(rec)
	}
	type outcome struct {
		r   workloads.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := c.runRecovered(rec)
		ch <- outcome{r, err}
	}()
	timer := time.NewTimer(o.CellTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.r, out.err
	case <-timer.C:
		return workloads.Result{}, fmt.Errorf("cell exceeded the %v wall-clock timeout", o.CellTimeout)
	}
}

// runRecovered runs the cell body converting panics — typed data-plane
// access failures (memsim.AccessError) and programmer-error invariants
// alike — into errors, so one crashing simulation cannot take down the
// whole harness process.
func (c cell) runRecovered(tr *trace.Recorder) (r workloads.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				err = fmt.Errorf("cell panicked: %w", e)
			} else {
				err = fmt.Errorf("cell panicked: %v", rec)
			}
		}
	}()
	return c.run(tr)
}

package harness

import (
	"errors"
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// FaultsSweep renders the degraded-substrate table behind `afftables
// -faults-sweep`: BFS under the three allocation modes across increasing
// dead-bank and dead-link counts, each cell's cycles normalized to the
// same mode on the clean machine (so every column reads as a slowdown).
// The question it answers is the paper's taming argument under damage:
// does affinity allocation keep its advantage when placement must
// re-evaluate against a degraded bank map and routes must detour dead
// links?
//
// The sweep is deliberately not in the Experiments registry — the default
// paper-shaped output stays byte-identical — and it tolerates per-cell
// failures: a failed cell renders as FAILED(<reason>) while the rest of
// the table fills in, and the error is still returned so callers exit
// non-zero.
func FaultsSweep(opt Options) (*Figure, error) {
	g, gt := sharedGraph(opt)
	w := workloads.BFS{G: g, GT: gt, Src: -1}

	type level struct {
		name string
		spec faults.Spec
	}
	levels := []level{{"clean", faults.Spec{}}}
	for _, nb := range []int{1, 2, 4} {
		levels = append(levels, level{
			fmt.Sprintf("dead-banks=%d", nb),
			faults.Spec{Seed: opt.Seed, NDeadBanks: nb},
		})
	}
	for _, nl := range []int{2, 4, 8} {
		levels = append(levels, level{
			fmt.Sprintf("dead-links=%d", nl),
			faults.Spec{Seed: opt.Seed, NDeadLinks: nl},
		})
	}
	levels = append(levels, level{
		"dead-banks=2,dead-links=4",
		faults.Spec{Seed: opt.Seed, NDeadBanks: 2, NDeadLinks: 4},
	})

	cells := make([]cell, 0, len(levels)*len(sys.Modes))
	for _, lv := range levels {
		for _, mode := range sys.Modes {
			lv, mode := lv, mode
			o := opt
			o.Faults = lv.spec
			cells = append(cells, cell{
				label: fmt.Sprintf("bfs/%s/%v", lv.name, mode),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					return workloads.RunTraced(baseConfig(o, core.DefaultPolicy()), w, mode, rec)
				},
			})
		}
	}
	rs, err := runCells(opt, cells)
	var fails *CellFailures
	if err != nil && !errors.As(err, &fails) {
		return nil, err
	}
	failed := make(map[int]error)
	if fails != nil {
		for _, f := range fails.Cells {
			failed[f.Index] = f.Err
		}
	}

	headers := []string{"faults"}
	for _, mode := range sys.Modes {
		headers = append(headers, "slowdown."+mode.String())
	}
	headers = append(headers, "hops.Aff-Alloc")
	tbl := stats.NewTable("Faults sweep: BFS slowdown vs the clean machine, per allocation mode", headers...)

	at := func(li, mi int) (workloads.Result, error) {
		idx := li*len(sys.Modes) + mi
		if err, ok := failed[idx]; ok {
			return workloads.Result{}, err
		}
		return rs[idx], nil
	}
	cleanAffHops := 0.0
	if r, err := at(0, len(sys.Modes)-1); err == nil {
		cleanAffHops = float64(r.Metrics.FlitHops)
	}
	for li, lv := range levels {
		row := []interface{}{lv.name}
		for mi := range sys.Modes {
			r, err := at(li, mi)
			if err != nil {
				row = append(row, "FAILED("+shortReason(err)+")")
				continue
			}
			clean, cerr := at(0, mi)
			if cerr != nil || clean.Metrics.Cycles == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, float64(r.Metrics.Cycles)/float64(clean.Metrics.Cycles))
		}
		if r, err := at(li, len(sys.Modes)-1); err == nil && cleanAffHops > 0 {
			row = append(row, float64(r.Metrics.FlitHops)/cleanAffHops)
		} else {
			row = append(row, "n/a")
		}
		tbl.AddRow(row...)
	}

	fig := &Figure{
		ID:     "faults",
		Title:  "Allocation modes on a degraded substrate (dead banks / dead links)",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"slowdown: cycles / same mode on the clean machine; hops: Aff-Alloc flit-hops vs clean Aff-Alloc",
			"auto-picked victims are drawn from seed=" + fmt.Sprint(opt.Seed) + "; the mesh always stays connected",
		},
	}
	if fails != nil {
		return fig, fails
	}
	return fig, nil
}

// shortReason compresses a cell error into a table-cell-sized tag.
func shortReason(err error) string {
	s := err.Error()
	const maxLen = 48
	if len(s) > maxLen {
		s = s[:maxLen-3] + "..."
	}
	return s
}

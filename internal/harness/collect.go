package harness

import (
	"fmt"
	"io"
	"sync"

	"affinityalloc/internal/telemetry"
)

// CollectedCell is one simulation cell's telemetry: the harness label it
// ran under and the full per-tile snapshot its system published.
type CollectedCell struct {
	Label string
	Snap  *telemetry.Snapshot
}

// Collector accumulates per-cell telemetry snapshots across a harness
// run. Unlike Timing, order matters here — the exported metrics document
// must be byte-identical for every -j — so runCells reserves a
// contiguous block of slots up front (runCells calls within one
// experiment are serial, making the reservation order deterministic) and
// each worker fills its own slot regardless of scheduling. A nil
// *Collector discards observations.
type Collector struct {
	mu    sync.Mutex
	cells []CollectedCell
}

// reserve claims n consecutive slots and returns the first index.
func (c *Collector) reserve(n int) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := len(c.cells)
	c.cells = append(c.cells, make([]CollectedCell, n)...)
	return base
}

// put fills a reserved slot.
func (c *Collector) put(i int, label string, snap *telemetry.Snapshot) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.cells[i] = CollectedCell{Label: label, Snap: snap}
	c.mu.Unlock()
}

// Cells returns the collected cells in reservation order. Slots whose
// cell failed (and so never published a snapshot) are skipped.
func (c *Collector) Cells() []CollectedCell {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CollectedCell, 0, len(c.cells))
	for _, cc := range c.cells {
		if cc.Snap != nil {
			out = append(out, cc)
		}
	}
	return out
}

// Artifacts requests machine-readable outputs from a harness run: the
// snake_case metrics document and/or a Chrome trace_event timeline.
type Artifacts struct {
	// MetricsOut, when non-nil, receives the telemetry metrics document
	// (schema telemetry.SchemaVersion) as indented JSON.
	MetricsOut io.Writer
	// TraceOut, when non-nil, receives a Chrome trace_event JSON
	// timeline; each cell becomes one track (tid), each recorded
	// sim-time phase one complete ("X") event.
	TraceOut io.Writer
	// Experiment, Scale and Seed fill the document header.
	Experiment string
	Scale      Scale
	Seed       int64
}

// enabled reports whether any artifact output was requested.
func (a *Artifacts) enabled() bool {
	return a != nil && (a.MetricsOut != nil || a.TraceOut != nil)
}

// Write emits the requested artifacts from collected cells. Cells must
// already be in their deterministic harness order; the byte streams then
// depend only on their contents.
func (a *Artifacts) Write(cells []CollectedCell) error {
	if !a.enabled() {
		return nil
	}
	if a.MetricsOut != nil {
		doc := &telemetry.Document{
			SchemaVersion: telemetry.SchemaVersion,
			Experiment:    a.Experiment,
			Scale:         a.Scale.String(),
			Seed:          a.Seed,
		}
		for _, c := range cells {
			doc.AddCell(c.Label, c.Snap)
		}
		if err := doc.WriteJSON(a.MetricsOut); err != nil {
			return fmt.Errorf("harness: writing metrics document: %w", err)
		}
	}
	if a.TraceOut != nil {
		var spans []telemetry.Span
		var instants []telemetry.Instant
		threads := make([]string, len(cells))
		for tid, c := range cells {
			threads[tid] = c.Label
			for _, sp := range c.Snap.Spans {
				sp.TID = tid
				spans = append(spans, sp)
			}
			for _, in := range c.Snap.Instants {
				in.TID = tid
				instants = append(instants, in)
			}
		}
		meta := map[string]string{
			"experiment": a.Experiment,
			"scale":      a.Scale.String(),
			"seed":       fmt.Sprintf("%d", a.Seed),
		}
		if err := telemetry.WriteTrace(a.TraceOut, spans, instants, threads, meta); err != nil {
			return fmt.Errorf("harness: writing trace: %w", err)
		}
	}
	return nil
}

package harness

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// fig4N returns the vecadd size per scale.
func fig4N(opt Options) int64 {
	switch opt.Scale {
	case Tiny:
		return 1 << 16
	case Paper:
		return 1 << 21
	default:
		return 1 << 18
	}
}

// Fig4 regenerates the Δ-bank layout sweep on vector add: near-data
// computing under deliberately misaligned layouts, versus In-Core and a
// random page layout.
func Fig4(opt Options) (*Figure, error) {
	n := fig4N(opt)
	tbl := stats.NewTable("Fig 4: vecadd layout sweep (normalized to In-Core)",
		"layout", "speedup", "hops.data", "hops.control", "hops.offload", "hops.total")

	cfg := baseConfig(opt, core.DefaultPolicy())
	type variant struct {
		name string
		w    workloads.VecAdd
		mode sys.Mode
	}
	variants := []variant{{"In-Core", workloads.VecAdd{N: n, ForceDelta: -1}, sys.InCore}}
	for delta := 0; delta <= 64; delta += 4 {
		variants = append(variants,
			variant{fmt.Sprintf("Δ Bank %d", delta), workloads.VecAdd{N: n, ForceDelta: delta}, sys.AffAlloc})
	}
	variants = append(variants, variant{"Random", workloads.VecAdd{N: n, ForceDelta: -1}, sys.NearL3})

	cells := make([]cell, len(variants))
	for i, v := range variants {
		v := v
		cells[i] = cell{
			label: "vecadd/" + v.name,
			run:   func(rec *trace.Recorder) (workloads.Result, error) { return workloads.RunTraced(cfg, v.w, v.mode, rec) },
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}
	inCore := rs[0]
	for i, v := range variants {
		d, c, o := trafficCols(rs[i], inCore)
		tbl.AddRow(v.name, speedup(rs[i], inCore), d, c, o, d+c+o)
	}

	return &Figure{
		ID:     "fig4",
		Title:  "Impact of Affine Data Layout on Vec Add",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"paper shape: NSC always above In-Core; best at Δ0, worst near the bisection (Δ~32); Random ≈ 42% of aligned",
		},
	}, nil
}

// Fig12 regenerates the headline evaluation: all ten workloads under the
// three configurations.
func Fig12(opt Options) (*Figure, error) {
	spd := stats.NewTable("Fig 12: speedup and energy efficiency (normalized to Near-L3)",
		"workload", "spdup.InCore", "spdup.NearL3", "spdup.AffAlloc", "eff.InCore", "eff.NearL3", "eff.AffAlloc")
	trf := stats.NewTable("Fig 12: NoC traffic (flit-hops normalized to In-Core) and utilization",
		"workload", "cfg", "data", "control", "offload", "total", "util")

	ws := allWorkloads(opt)
	modeRes, err := runModesAll(opt, ws)
	if err != nil {
		return nil, err
	}

	var spIn, spAff, efIn, efAff, trAff []float64
	for wi, w := range ws {
		res := modeRes[wi]
		base := res[sys.NearL3]
		spd.AddRow(w.Name(),
			speedup(res[sys.InCore], base), 1.0, speedup(res[sys.AffAlloc], base),
			energyEff(res[sys.InCore], base), 1.0, energyEff(res[sys.AffAlloc], base))
		spIn = append(spIn, speedup(base, res[sys.InCore]))
		spAff = append(spAff, speedup(res[sys.AffAlloc], base))
		efIn = append(efIn, energyEff(base, res[sys.InCore]))
		efAff = append(efAff, energyEff(res[sys.AffAlloc], base))

		for _, mode := range sys.Modes {
			d, c, o := trafficCols(res[mode], res[sys.InCore])
			trf.AddRow(w.Name(), mode.String(), d, c, o, d+c+o, res[mode].Metrics.NoCUtil())
			if mode == sys.AffAlloc {
				trAff = append(trAff, d+c+o)
			}
		}
	}
	spd.AddRow("geomean",
		1/geomeanColumn(spIn), 1.0, geomeanColumn(spAff),
		1/geomeanColumn(efIn), 1.0, geomeanColumn(efAff))

	affOverIn := geomeanColumn(spAff) * geomeanColumn(spIn)
	effOverIn := geomeanColumn(efAff) * geomeanColumn(efIn)
	var trSum float64
	for _, v := range trAff {
		trSum += v
	}
	return &Figure{
		ID:     "fig12",
		Title:  "Overall Performance and Traffic Reduction",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			fmt.Sprintf("Aff-Alloc over Near-L3: %.2fx speedup, %.2fx energy eff (paper: 2.26x / 1.76x)",
				geomeanColumn(spAff), geomeanColumn(efAff)),
			fmt.Sprintf("Aff-Alloc over In-Core: %.2fx speedup, %.2fx energy eff (paper: 7.53x / 4.69x)",
				affOverIn, effOverIn),
			fmt.Sprintf("Aff-Alloc mean traffic vs In-Core: %.0f%% reduction (paper: 87%%)",
				100*(1-trSum/float64(len(trAff)))),
		},
	}, nil
}

// Fig13 regenerates the irregular bank-selection policy sensitivity:
// Rnd / Lnr / Min-Hop / Hybrid-{1,3,5,7}, normalized to Rnd.
func Fig13(opt Options) (*Figure, error) {
	policies := []core.PolicyConfig{
		{Policy: core.Rnd},
		{Policy: core.Lnr},
		{Policy: core.MinHop},
		{Policy: core.Hybrid, H: 1},
		{Policy: core.Hybrid, H: 3},
		{Policy: core.Hybrid, H: 5},
		{Policy: core.Hybrid, H: 7},
	}
	name := func(p core.PolicyConfig) string {
		if p.Policy == core.Hybrid {
			return fmt.Sprintf("Hybrid-%d", int(p.H))
		}
		return p.Policy.String()
	}

	spd := stats.NewTable("Fig 13: speedup by bank-selection policy (normalized to Rnd)",
		"workload", "Rnd", "Lnr", "Min-Hop", "Hybrid-1", "Hybrid-3", "Hybrid-5", "Hybrid-7")
	trf := stats.NewTable("Fig 13: total NoC flit-hops by policy (normalized to Rnd)",
		"workload", "Rnd", "Lnr", "Min-Hop", "Hybrid-1", "Hybrid-3", "Hybrid-5", "Hybrid-7")

	ws := irregularWorkloads(opt)
	cells := make([]cell, 0, len(ws)*len(policies))
	for _, w := range ws {
		for _, p := range policies {
			w, p := w, p
			cells = append(cells, cell{
				label: fmt.Sprintf("%s/%s", w.Name(), name(p)),
				run: func(rec *trace.Recorder) (workloads.Result, error) {
					return workloads.RunTraced(baseConfig(opt, p), w, sys.AffAlloc, rec)
				},
			})
		}
	}
	rs, err := runCells(opt, cells)
	if err != nil {
		return nil, err
	}

	perPolicy := make(map[string][]float64)
	for wi, w := range ws {
		row := []interface{}{w.Name()}
		trow := []interface{}{w.Name()}
		base := rs[wi*len(policies)]
		for pi, p := range policies {
			r := rs[wi*len(policies)+pi]
			sp := speedup(r, base)
			row = append(row, sp)
			trow = append(trow, float64(r.Metrics.FlitHops)/float64(max(base.Metrics.FlitHops, 1)))
			perPolicy[name(p)] = append(perPolicy[name(p)], sp)
		}
		spd.AddRow(row...)
		trf.AddRow(trow...)
	}
	gm := []interface{}{"geomean"}
	for _, p := range policies {
		gm = append(gm, geomeanColumn(perPolicy[name(p)]))
	}
	spd.AddRow(gm...)

	return &Figure{
		ID:     "fig13",
		Title:  "Sensitivity on Irregular Layout Policies",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			"paper shape: Min-Hop wins on most but collapses on bin_tree (whole tree on one bank); Hybrid-5 is the robust default",
		},
	}, nil
}

package harness

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/stats"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

// fig4N returns the vecadd size per scale.
func fig4N(opt Options) int64 {
	switch opt.Scale {
	case Tiny:
		return 1 << 16
	case Paper:
		return 1 << 21
	default:
		return 1 << 18
	}
}

// Fig4 regenerates the Δ-bank layout sweep on vector add: near-data
// computing under deliberately misaligned layouts, versus In-Core and a
// random page layout.
func Fig4(opt Options) (*Figure, error) {
	n := fig4N(opt)
	tbl := stats.NewTable("Fig 4: vecadd layout sweep (normalized to In-Core)",
		"layout", "speedup", "hops.data", "hops.control", "hops.offload", "hops.total")

	cfg := baseConfig(opt, core.DefaultPolicy())
	inCore, err := workloads.Run(cfg, workloads.VecAdd{N: n, ForceDelta: -1}, sys.InCore)
	if err != nil {
		return nil, err
	}
	addRow := func(name string, r workloads.Result) {
		d, c, o := trafficCols(r, inCore)
		tbl.AddRow(name, speedup(r, inCore), d, c, o, d+c+o)
	}
	addRow("In-Core", inCore)

	for delta := 0; delta <= 64; delta += 4 {
		r, err := workloads.Run(cfg, workloads.VecAdd{N: n, ForceDelta: delta}, sys.AffAlloc)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("Δ Bank %d", delta), r)
	}
	random, err := workloads.Run(cfg, workloads.VecAdd{N: n, ForceDelta: -1}, sys.NearL3)
	if err != nil {
		return nil, err
	}
	addRow("Random", random)

	return &Figure{
		ID:     "fig4",
		Title:  "Impact of Affine Data Layout on Vec Add",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"paper shape: NSC always above In-Core; best at Δ0, worst near the bisection (Δ~32); Random ≈ 42% of aligned",
		},
	}, nil
}

// Fig12 regenerates the headline evaluation: all ten workloads under the
// three configurations.
func Fig12(opt Options) (*Figure, error) {
	spd := stats.NewTable("Fig 12: speedup and energy efficiency (normalized to Near-L3)",
		"workload", "spdup.InCore", "spdup.NearL3", "spdup.AffAlloc", "eff.InCore", "eff.NearL3", "eff.AffAlloc")
	trf := stats.NewTable("Fig 12: NoC traffic (flit-hops normalized to In-Core) and utilization",
		"workload", "cfg", "data", "control", "offload", "total", "util")

	var spIn, spAff, efIn, efAff, trAff []float64
	for _, w := range allWorkloads(opt) {
		res, err := runModes(opt, w)
		if err != nil {
			return nil, err
		}
		base := res[sys.NearL3]
		spd.AddRow(w.Name(),
			speedup(res[sys.InCore], base), 1.0, speedup(res[sys.AffAlloc], base),
			energyEff(res[sys.InCore], base), 1.0, energyEff(res[sys.AffAlloc], base))
		spIn = append(spIn, speedup(base, res[sys.InCore]))
		spAff = append(spAff, speedup(res[sys.AffAlloc], base))
		efIn = append(efIn, energyEff(base, res[sys.InCore]))
		efAff = append(efAff, energyEff(res[sys.AffAlloc], base))

		for _, mode := range sys.Modes {
			d, c, o := trafficCols(res[mode], res[sys.InCore])
			trf.AddRow(w.Name(), mode.String(), d, c, o, d+c+o, res[mode].Metrics.NoCUtil)
			if mode == sys.AffAlloc {
				trAff = append(trAff, d+c+o)
			}
		}
	}
	spd.AddRow("geomean",
		1/geomeanColumn(spIn), 1.0, geomeanColumn(spAff),
		1/geomeanColumn(efIn), 1.0, geomeanColumn(efAff))

	affOverIn := geomeanColumn(spAff) * geomeanColumn(spIn)
	effOverIn := geomeanColumn(efAff) * geomeanColumn(efIn)
	var trSum float64
	for _, v := range trAff {
		trSum += v
	}
	return &Figure{
		ID:     "fig12",
		Title:  "Overall Performance and Traffic Reduction",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			fmt.Sprintf("Aff-Alloc over Near-L3: %.2fx speedup, %.2fx energy eff (paper: 2.26x / 1.76x)",
				geomeanColumn(spAff), geomeanColumn(efAff)),
			fmt.Sprintf("Aff-Alloc over In-Core: %.2fx speedup, %.2fx energy eff (paper: 7.53x / 4.69x)",
				affOverIn, effOverIn),
			fmt.Sprintf("Aff-Alloc mean traffic vs In-Core: %.0f%% reduction (paper: 87%%)",
				100*(1-trSum/float64(len(trAff)))),
		},
	}, nil
}

// Fig13 regenerates the irregular bank-selection policy sensitivity:
// Rnd / Lnr / Min-Hop / Hybrid-{1,3,5,7}, normalized to Rnd.
func Fig13(opt Options) (*Figure, error) {
	policies := []core.PolicyConfig{
		{Policy: core.Rnd},
		{Policy: core.Lnr},
		{Policy: core.MinHop},
		{Policy: core.Hybrid, H: 1},
		{Policy: core.Hybrid, H: 3},
		{Policy: core.Hybrid, H: 5},
		{Policy: core.Hybrid, H: 7},
	}
	name := func(p core.PolicyConfig) string {
		if p.Policy == core.Hybrid {
			return fmt.Sprintf("Hybrid-%d", int(p.H))
		}
		return p.Policy.String()
	}

	spd := stats.NewTable("Fig 13: speedup by bank-selection policy (normalized to Rnd)",
		"workload", "Rnd", "Lnr", "Min-Hop", "Hybrid-1", "Hybrid-3", "Hybrid-5", "Hybrid-7")
	trf := stats.NewTable("Fig 13: total NoC flit-hops by policy (normalized to Rnd)",
		"workload", "Rnd", "Lnr", "Min-Hop", "Hybrid-1", "Hybrid-3", "Hybrid-5", "Hybrid-7")

	perPolicy := make(map[string][]float64)
	for _, w := range irregularWorkloads(opt) {
		var cells []interface{}
		var tcells []interface{}
		cells = append(cells, w.Name())
		tcells = append(tcells, w.Name())
		var base workloads.Result
		for i, p := range policies {
			r, err := workloads.Run(baseConfig(opt, p), w, sys.AffAlloc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name(), name(p), err)
			}
			if i == 0 {
				base = r
			}
			sp := speedup(r, base)
			cells = append(cells, sp)
			tcells = append(tcells, float64(r.Metrics.FlitHops)/float64(maxU64(base.Metrics.FlitHops, 1)))
			perPolicy[name(p)] = append(perPolicy[name(p)], sp)
		}
		spd.AddRow(cells...)
		trf.AddRow(tcells...)
	}
	gm := []interface{}{"geomean"}
	for _, p := range policies {
		gm = append(gm, geomeanColumn(perPolicy[name(p)]))
	}
	spd.AddRow(gm...)

	return &Figure{
		ID:     "fig13",
		Title:  "Sensitivity on Irregular Layout Policies",
		Tables: []*stats.Table{spd, trf},
		Notes: []string{
			"paper shape: Min-Hop wins on most but collapses on bin_tree (whole tree on one bank); Hybrid-5 is the robust default",
		},
	}, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

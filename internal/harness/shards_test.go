package harness

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"affinityalloc/internal/backoff"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// TestShardedHarnessByteIdentical pins the acceptance gate for kernel
// sharding end to end: the rendered figure, the metrics document, and
// the Chrome trace must be byte-identical between -shards=1 and
// -shards=2/4, at -j1 and -j8, on clean and faulted machines. Sharding
// only moves commutative retirement adds onto shard-owned kernels, so
// any diff means an event ran on the wrong shard or a drain raced.
func TestShardedHarnessByteIdentical(t *testing.T) {
	render := func(shards, jobs int, spec faults.Spec) (fig, metrics, trace string) {
		var collect Collector
		opt := Options{Scale: Tiny, Seed: 1, Jobs: jobs, Shards: shards,
			Faults: spec, Collect: &collect}
		f, err := Fig4(opt)
		if err != nil {
			t.Fatal(err)
		}
		var figBuf bytes.Buffer
		f.Render(&figBuf)
		var metricsBuf, traceBuf bytes.Buffer
		arts := &Artifacts{MetricsOut: &metricsBuf, TraceOut: &traceBuf,
			Experiment: "fig4", Scale: Tiny, Seed: 1}
		if err := arts.Write(collect.Cells()); err != nil {
			t.Fatal(err)
		}
		return figBuf.String(), metricsBuf.String(), traceBuf.String()
	}

	specs := map[string]faults.Spec{
		"clean":   {},
		"faulted": {Seed: 1, NDeadBanks: 1, NDeadLinks: 1, DRAM: []faults.DRAMFault{{Chan: 0, LatencyX: 2}}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			baseFig, baseMetrics, baseTrace := render(1, 1, spec)
			for _, tc := range []struct{ shards, jobs int }{
				{2, 1}, {4, 1}, {2, 8}, {4, 8},
			} {
				fig, metrics, trace := render(tc.shards, tc.jobs, spec)
				if fig != baseFig {
					t.Errorf("shards=%d j=%d: figure diverges from single-shard j1", tc.shards, tc.jobs)
				}
				if metrics != baseMetrics {
					t.Errorf("shards=%d j=%d: metrics document diverges from single-shard j1", tc.shards, tc.jobs)
				}
				if trace != baseTrace {
					t.Errorf("shards=%d j=%d: trace diverges from single-shard j1", tc.shards, tc.jobs)
				}
			}
		})
	}
}

// TestRetryBackoffClamped pins the overflow fix in the retry path:
// RetryBackoff << attempt used to overflow time.Duration at large
// CellRetries (1s of base backoff goes negative at attempt 34); the
// delay must instead saturate at maxRetryBackoff for every attempt.
// The schedule itself lives in internal/backoff (shared with the
// affinityd client); this pins the harness's use of it — same cap, same
// doubling — so the retry loop's contract cannot drift silently.
func TestRetryBackoffClamped(t *testing.T) {
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 5, 0}, // no backoff configured
		{time.Millisecond, 0, time.Millisecond},
		{time.Millisecond, 3, 8 * time.Millisecond}, // doubling intact below the cap
		{time.Second, 4, 16 * time.Second},
		{time.Second, 5, maxRetryBackoff},   // first clamped step (32s > 30s)
		{time.Second, 34, maxRetryBackoff},  // would be negative unclamped
		{time.Second, 200, maxRetryBackoff}, // shift count past the word width
		{time.Minute, 0, maxRetryBackoff},   // base already above the cap
	}
	for _, tc := range cases {
		if got := backoff.Delay(tc.base, maxRetryBackoff, tc.attempt); got != tc.want {
			t.Errorf("backoff.Delay(%v, %v, %d) = %v, want %v", tc.base, maxRetryBackoff, tc.attempt, got, tc.want)
		}
		if got := backoff.Delay(tc.base, maxRetryBackoff, tc.attempt); got < 0 || got > maxRetryBackoff {
			t.Errorf("backoff.Delay(%v, %v, %d) = %v out of [0, %v]", tc.base, maxRetryBackoff, tc.attempt, got, maxRetryBackoff)
		}
	}
}

// TestAbandonedTimedOutCellCannotMutateSharedState pins the containment
// contract for timed-out cells: runCellOnce abandons the goroutine of a
// cell that exceeds CellTimeout, and when that goroutine eventually
// completes it must not be able to publish its result anywhere — not
// the result slice, not Timing, not the Collector — nor wedge or panic
// on its result send. The test wedges a cell past its timeout, lets the
// batch finish, then releases the zombie and checks every shared
// surface still shows only the timeout outcome. Run under -race this
// also proves the late completion doesn't race the harness teardown.
func TestAbandonedTimedOutCellCannotMutateSharedState(t *testing.T) {
	release := make(chan struct{})
	zombieDone := make(chan struct{})
	var timing Timing
	var collect Collector
	opt := Options{Jobs: 2, CellTimeout: 30 * time.Millisecond,
		Timing: &timing, Collect: &collect}
	cells := []cell{
		{label: "fast", run: func(rec *trace.Recorder) (workloads.Result, error) {
			return workloads.Result{Checksum: 1,
				Metrics: sys.Metrics{Cycles: 7, Detail: &telemetry.Snapshot{}}}, nil
		}},
		{label: "wedged", run: func(rec *trace.Recorder) (workloads.Result, error) {
			<-release // held past the timeout, completes only when released
			defer close(zombieDone)
			return workloads.Result{Checksum: 0xbad,
				Metrics: sys.Metrics{Cycles: 999, Detail: &telemetry.Snapshot{}}}, nil
		}},
	}

	rs, err := runCells(opt, cells)
	var fails *CellFailures
	if !errors.As(err, &fails) || len(fails.Cells) != 1 || fails.Cells[0].Label != "wedged" {
		t.Fatalf("err = %v, want exactly the wedged cell's timeout", err)
	}

	// The batch is over; now let the abandoned goroutine run to completion
	// and attempt its (dead-lettered) result send.
	close(release)
	<-zombieDone
	// The zombie's wrapping goroutine still has to deliver its outcome to
	// the (now dead-lettered, buffered) channel; give it a moment so a
	// blocking or panicking send would surface here under -race.
	time.Sleep(20 * time.Millisecond)

	if rs[1] != (workloads.Result{}) {
		t.Errorf("timed-out slot holds %+v after zombie completion, want the zero value", rs[1])
	}
	if rs[0].Checksum != 1 {
		t.Errorf("sibling result corrupted: %+v", rs[0])
	}
	for _, ct := range timing.Cells() {
		if ct.Label == "wedged" {
			t.Errorf("zombie published timing %+v after abandonment", ct)
		}
	}
	for _, cc := range collect.Cells() {
		if cc.Label == "wedged" {
			t.Errorf("zombie published telemetry %+v after abandonment", cc)
		}
	}
	if got := len(collect.Cells()); got != 1 {
		t.Errorf("collector holds %d cells, want 1 (the fast sibling)", got)
	}
}

package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const goldenColocationPath = "testdata/golden_colocation.txt"

// TestGoldenColocation byte-compares the trace-composed colocation
// interference table against its committed golden file. The table is
// end-to-end over the trace subsystem — record, compose, replay under
// three policies — so any drift in recording, composition ordering, or
// replay semantics lands here. To bless an intentional change:
//
//	go test ./internal/harness -run TestGoldenColocation -update
func TestGoldenColocation(t *testing.T) {
	fig, err := Colocation(Options{Scale: Tiny, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	got := buf.Bytes()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenColocationPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenColocationPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenColocationPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenColocationPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("colocation table diverged from %s (len got %d, want %d); "+
			"if the change is intentional, re-bless with -update.\nfirst divergence near: %s",
			goldenColocationPath, len(got), len(want), firstDiff(got, want))
	}
}

// The colocation table must be byte-identical across worker counts —
// the composition seeds and replay order are fixed, only scheduling
// varies.
func TestColocationParallelIdentity(t *testing.T) {
	render := func(jobs int) []byte {
		fig, err := Colocation(Options{Scale: Tiny, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fig.Render(&buf)
		return buf.Bytes()
	}
	j1, j8 := render(1), render(8)
	if !bytes.Equal(j1, j8) {
		t.Errorf("colocation table differs between -j1 and -j8:\nfirst divergence near: %s", firstDiff(j1, j8))
	}
}

package sys

import (
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MeshW != 8 || cfg.MeshH != 8 {
		t.Errorf("mesh %dx%d, want 8x8", cfg.MeshW, cfg.MeshH)
	}
	if cfg.Mem.DefaultInterleave != 1024 {
		t.Errorf("NUCA interleave %d, want 1024", cfg.Mem.DefaultInterleave)
	}
	if cfg.Mem.IOTCapacity != 16 {
		t.Errorf("IOT capacity %d, want 16", cfg.Mem.IOTCapacity)
	}
	if cfg.MemSys.BankSizeBytes != 1<<20 || cfg.MemSys.BankWays != 16 {
		t.Errorf("L3 bank %d/%d, want 1MB/16-way", cfg.MemSys.BankSizeBytes, cfg.MemSys.BankWays)
	}
	if cfg.MemSys.L3HitLatency != 20 {
		t.Errorf("L3 latency %d, want 20", cfg.MemSys.L3HitLatency)
	}
	if cfg.Core.L1SizeBytes != 32<<10 || cfg.Core.L2SizeBytes != 256<<10 {
		t.Error("private cache sizes off Table 2")
	}
	if cfg.Stream.ComputeInit != 4 {
		t.Errorf("compute init %d, want 4", cfg.Stream.ComputeInit)
	}
	if cfg.Policy.Policy != core.Hybrid || cfg.Policy.H != 5 {
		t.Errorf("default policy %v-%v, want Hybrid-5", cfg.Policy.Policy, cfg.Policy.H)
	}
	if cfg.Mem.HeapLayout != memsim.HeapRandom {
		t.Error("baseline heap should be affinity-oblivious (random pages)")
	}
}

func TestSystemAssembly(t *testing.T) {
	s := MustNew(DefaultConfig())
	if s.NumCores() != 64 {
		t.Errorf("cores %d", s.NumCores())
	}
	if s.Mem.Banks() != 64 {
		t.Errorf("banks %d", s.Mem.Banks())
	}
	if s.RT.Mesh() != s.Mesh {
		t.Error("runtime sees a different mesh")
	}
}

func TestAllocPerMode(t *testing.T) {
	spec := core.AffineSpec{ElemSize: 4, NumElem: 1 << 12, Partition: true}
	aff := MustNew(DefaultConfig())
	ai, err := aff.Alloc(AffAlloc, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Interleave == 0 {
		t.Error("AffAlloc Alloc ignored the affinity spec")
	}
	base := MustNew(DefaultConfig())
	bi, err := base.Alloc(NearL3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Interleave != 0 {
		t.Error("NearL3 Alloc used the affinity allocator")
	}
}

func TestCollectMetrics(t *testing.T) {
	s := MustNew(DefaultConfig())
	spec := core.AffineSpec{ElemSize: 4, NumElem: 1 << 12}
	a, err := s.Alloc(AffAlloc, spec)
	if err != nil {
		t.Fatal(err)
	}
	s.PreloadArray(a)
	done, _ := s.Mem.Access(0, a.Base, false)
	m := s.Collect(done)
	if m.Cycles != done {
		t.Errorf("cycles %d, want %d", m.Cycles, done)
	}
	if m.L3Accesses != 1 || m.L3MissRate() != 0 {
		t.Errorf("L3 stats %d/%f", m.L3Accesses, m.L3MissRate())
	}
	if m.EnergyTotal() <= 0 {
		t.Error("no energy estimated")
	}
	if m.Detail == nil {
		t.Fatal("Collect attached no telemetry snapshot")
	}
	if got := m.Detail.Scalar("l3_bank_accesses_total"); got != m.L3Accesses {
		t.Errorf("snapshot l3_bank_accesses_total %d, want %d", got, m.L3Accesses)
	}
	if banks := m.Detail.SeriesOf("l3_bank_accesses"); len(banks) != 64 {
		t.Errorf("per-bank access series has %d entries, want 64", len(banks))
	}
}

func TestModeStrings(t *testing.T) {
	if InCore.String() != "In-Core" || NearL3.String() != "Near-L3" || AffAlloc.String() != "Aff-Alloc" {
		t.Error("mode names changed")
	}
	if len(Modes) != 3 {
		t.Error("Modes list wrong")
	}
}

package sys

import (
	"fmt"

	"affinityalloc/internal/topo"
)

// shardGrid factors a shard count into a kx×ky grid of mesh rectangles,
// preferring the squarest split (ky is the largest divisor of k at most
// √k). It errors when the mesh does not divide evenly — uneven shards
// would make ownership depend on rounding and wreck run-to-run identity
// across shard counts.
func shardGrid(k, meshW, meshH int) (kx, ky int, err error) {
	if k < 1 {
		return 0, 0, fmt.Errorf("sys: shard count %d: must be at least 1", k)
	}
	ky = 1
	for d := 2; d*d <= k; d++ {
		if k%d == 0 {
			ky = d
		}
	}
	// ky is the largest divisor <= sqrt(k) (1 when k is prime).
	kx = k / ky
	if meshW%kx != 0 || meshH%ky != 0 {
		return 0, 0, fmt.Errorf("sys: %d shards factor to a %dx%d grid, which does not evenly split a %dx%d mesh",
			k, kx, ky, meshW, meshH)
	}
	return kx, ky, nil
}

// shardMap assigns every mesh tile and bank to one of k kernel shards by
// cutting the mesh into a kx×ky grid of equal rectangles (mesh quadrants
// when k is 4). tileShard is indexed by y*W+x — the NoC's link-source
// tile index — and bankShard by bank number, which differs from the tile
// index under non-row-major numberings: a bank's events belong to the
// shard that owns its tile's silicon, wherever its number landed.
func shardMap(mesh *topo.Mesh, k int) (tileShard, bankShard []int, err error) {
	kx, ky, err := shardGrid(k, mesh.Width(), mesh.Height())
	if err != nil {
		return nil, nil, err
	}
	w, h := mesh.Width(), mesh.Height()
	tileShard = make([]int, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tileShard[y*w+x] = (y*ky/h)*kx + x*kx/w
		}
	}
	bankShard = make([]int, mesh.Banks())
	for b := range bankShard {
		c := mesh.CoordOf(b)
		bankShard[b] = tileShard[c.Y*w+c.X]
	}
	return tileShard, bankShard, nil
}

package sys

import (
	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
)

// This file is the service-parity surface of System: everything a
// placement server (internal/affinityd) needs to answer wire requests is
// reachable through System itself — Alloc for affine specs (mode-aware),
// AllocNear for the irregular API, Free for the single release entry
// point, BankOf/OpenPool for placement introspection — so the wire API
// and the library API cannot drift apart.

// AllocNear allocates size bytes close to the given affinity addresses —
// the irregular-layout API of Fig 10 — through the affinity runtime.
// Unlike Alloc it has no mode axis: the baselines have no notion of
// placement hints, so irregular requests always go to the runtime.
func (s *System) AllocNear(size int64, affinity []memsim.Addr) (memsim.Addr, error) {
	return s.RT.AllocNear(size, affinity)
}

// Free releases memory allocated by Alloc (in AffAlloc mode) or
// AllocNear — the single free_aff entry point of §5.1.
func (s *System) Free(addr memsim.Addr) error {
	return s.RT.Free(addr)
}

// BankOf returns the L3 bank holding an allocated address.
func (s *System) BankOf(addr memsim.Addr) int {
	return s.RT.BankOf(addr)
}

// OpenPool ensures the interleave pool exists (see core.Runtime.OpenPool).
func (s *System) OpenPool(interleave int) (*memsim.Pool, error) {
	return s.RT.OpenPool(interleave)
}

// ArrayOf returns the layout record for an affine array's base address.
func (s *System) ArrayOf(base memsim.Addr) (*core.ArrayInfo, bool) {
	return s.RT.ArrayOf(base)
}

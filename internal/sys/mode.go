package sys

import (
	"fmt"
	"strings"
)

// Mode selects the execution configuration of §6.
type Mode int

const (
	// InCore runs everything on the OOO cores with prefetchers; nothing
	// is offloaded.
	InCore Mode = iota
	// NearL3 offloads streams to the L3 stream engines but is oblivious
	// to data affinity (baseline allocator, original data structures).
	NearL3
	// AffAlloc is NearL3 plus affinity allocation and the co-designed
	// data structures.
	AffAlloc
)

func (m Mode) String() string {
	switch m {
	case InCore:
		return "In-Core"
	case NearL3:
		return "Near-L3"
	case AffAlloc:
		return "Aff-Alloc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists the three configurations in presentation order.
var Modes = []Mode{InCore, NearL3, AffAlloc}

// ParseMode converts a mode name back to a Mode, round-tripping with
// String: ParseMode(m.String()) == m for every mode. Matching is
// case-insensitive and ignores '-'/'_' separators, so CLI spellings like
// "incore", "near_l3" and "Aff-Alloc" all parse.
func ParseMode(v string) (Mode, error) {
	key := strings.NewReplacer("-", "", "_", "", " ", "").Replace(strings.ToLower(v))
	switch key {
	case "incore":
		return InCore, nil
	case "nearl3":
		return NearL3, nil
	case "affalloc":
		return AffAlloc, nil
	}
	return 0, fmt.Errorf("sys: unknown mode %q (want In-Core, Near-L3 or Aff-Alloc)", v)
}

// MarshalText serializes the mode as its canonical name, so modes
// survive a JSON round trip.
func (m Mode) MarshalText() ([]byte, error) {
	if m < InCore || m > AffAlloc {
		return nil, fmt.Errorf("sys: cannot marshal invalid mode %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText parses a mode name (see ParseMode).
func (m *Mode) UnmarshalText(b []byte) error {
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

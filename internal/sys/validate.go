package sys

import (
	"fmt"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/topo"
)

// Validate checks a configuration before assembly and returns an
// actionable error for the first problem found. Zero-valued NoC and
// stream sub-configs are legal (they select Table-2 defaults at build
// time), so only explicitly wrong values are rejected here; sub-config
// fields that must be positive for assembly to succeed (mesh dims, cache
// geometries) are checked with messages naming the field.
func (c Config) Validate() error {
	if c.MeshW <= 0 || c.MeshH <= 0 {
		return fmt.Errorf("sys: invalid mesh %dx%d: MeshW and MeshH must both be positive (Table 2 uses 8x8)", c.MeshW, c.MeshH)
	}
	if c.Numbering == topo.Quadrant && (c.MeshW != c.MeshH || c.MeshW&(c.MeshW-1) != 0) {
		return fmt.Errorf("sys: quadrant numbering needs a power-of-two square mesh, got %dx%d (use RowMajor or resize)", c.MeshW, c.MeshH)
	}
	if c.MemSys.BankSizeBytes <= 0 {
		return fmt.Errorf("sys: L3 bank size %d bytes: must be positive (Table 2 uses 1MB per bank)", c.MemSys.BankSizeBytes)
	}
	if c.MemSys.BankWays <= 0 {
		return fmt.Errorf("sys: L3 bank associativity %d: must be positive (Table 2 uses 16 ways)", c.MemSys.BankWays)
	}
	if c.MemSys.BankSizeBytes%(c.MemSys.BankWays*memsim.LineSize) != 0 {
		return fmt.Errorf("sys: L3 bank size %d is not divisible by ways*linesize (%d*%d)",
			c.MemSys.BankSizeBytes, c.MemSys.BankWays, memsim.LineSize)
	}
	if sets := c.MemSys.BankSizeBytes / (c.MemSys.BankWays * memsim.LineSize); sets&(sets-1) != 0 {
		return fmt.Errorf("sys: L3 bank geometry %dB/%d-way yields %d sets: must be a power of two", c.MemSys.BankSizeBytes, c.MemSys.BankWays, sets)
	}
	for _, pc := range []struct {
		name       string
		size, ways int
	}{
		{"L1", c.Core.L1SizeBytes, c.Core.L1Ways},
		{"L2", c.Core.L2SizeBytes, c.Core.L2Ways},
	} {
		if pc.size <= 0 || pc.ways <= 0 {
			return fmt.Errorf("sys: %s cache %dB/%d-way: size and ways must be positive (start from cpu.DefaultConfig)", pc.name, pc.size, pc.ways)
		}
		if pc.size%(pc.ways*memsim.LineSize) != 0 {
			return fmt.Errorf("sys: %s cache size %d is not divisible by ways*linesize (%d*%d)", pc.name, pc.size, pc.ways, memsim.LineSize)
		}
	}
	if c.Policy.Policy < core.Rnd || c.Policy.Policy > core.Hybrid {
		return fmt.Errorf("sys: unknown bank-selection policy %v (want Rnd, Lnr, MinHop or Hybrid)", c.Policy.Policy)
	}
	if c.Policy.H < 0 {
		return fmt.Errorf("sys: policy weight H=%g: the Eq.-4 load-balance weight cannot be negative (the paper's default is 5)", c.Policy.H)
	}
	if c.NoC.LinkBytes < 0 || c.NoC.HeaderBytes < 0 {
		return fmt.Errorf("sys: NoC link/header bytes %d/%d cannot be negative (zero selects Table-2 defaults)", c.NoC.LinkBytes, c.NoC.HeaderBytes)
	}
	if c.Stream.SIMDLanes < 0 || c.Stream.SMTThreads < 0 {
		return fmt.Errorf("sys: stream SIMDLanes/SMTThreads %d/%d cannot be negative (zero selects Table-2 defaults)", c.Stream.SIMDLanes, c.Stream.SMTThreads)
	}
	if c.Mem.DefaultInterleave <= 0 {
		return fmt.Errorf("sys: NUCA interleave %d bytes: must be positive (Table 2 uses 1024)", c.Mem.DefaultInterleave)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sys: shard count %d cannot be negative (zero selects the single-shard kernel)", c.Shards)
	}
	if c.Shards > 1 {
		if _, _, err := shardGrid(c.Shards, c.MeshW, c.MeshH); err != nil {
			return err
		}
	}
	if !c.Faults.Empty() {
		// Channel count is unknown until the mesh is built (it depends on
		// controller placement); passing 0 skips the upper-bound check
		// here, and faults.New re-validates against the real geometry.
		if err := c.Faults.Check(c.MeshW*c.MeshH, 0); err != nil {
			return fmt.Errorf("sys: %v", err)
		}
	}
	if err := c.Realloc.Validate(); err != nil {
		return fmt.Errorf("sys: %v", err)
	}
	return nil
}

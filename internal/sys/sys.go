// Package sys assembles the full simulated system of Table 2 — mesh,
// address space, NoC, banked L3 + DRAM, cores, stream engines, and the
// affinity-allocation runtime — and collects the metrics the evaluation
// reports (cycles, per-class NoC traffic, L3 miss rate, energy).
package sys

import (
	"affinityalloc/internal/cache"
	"affinityalloc/internal/core"
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/energy"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/realloc"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/topo"
)

// Config parameterizes a system build.
type Config struct {
	MeshW, MeshH int
	Numbering    topo.Numbering
	Mem          memsim.Config
	NoC          noc.Config
	MemSys       cache.MemSysConfig
	Core         cpu.Config
	Stream       stream.Config
	Policy       core.PolicyConfig
	Energy       energy.Params
	Seed         int64
	// Faults degrades the machine before assembly: dead L3 banks (their
	// sets remap to survivors, which the allocation layer observes), dead
	// or lossy NoC links, and throttled DRAM channels. The zero value
	// injects nothing and leaves every fast path untouched.
	Faults faults.Spec
	// Realloc enables the online reconciler: every Realloc.Epoch
	// sim-cycles it closes an epoch at a drain barrier, plans hot-chunk
	// migrations from EWMA-smoothed bank occupancy, and applies them as
	// modeled NoC traffic plus address-space overrides. The zero value
	// disables it and leaves every fast path untouched.
	Realloc realloc.Config
	// InlineAccounting disables the event-kernel deferred-retirement
	// accounting path and keeps every counter update inline — a debugging
	// knob for bisecting deferred-vs-inline divergence (there should be
	// none; see TestDeferredAccountingMatchesInline).
	InlineAccounting bool
	// Shards partitions the event kernel: the mesh is cut into that many
	// equal rectangles (quadrants at 4) and each component's retirement
	// events run on the kernel shard owning its tile, drained in parallel
	// under conservative-PDES rules (lookahead = the NoC per-hop latency).
	// Counter updates are commutative adds over shard-owned state, so
	// reports stay byte-identical at every shard count. Zero or 1 keeps
	// the single-shard kernel.
	Shards int
}

// DefaultConfig mirrors Table 2: an 8x8 mesh of cores with 64 L3 banks.
// The conventional heap uses randomized physical page placement — the
// affinity-oblivious layout a long-running OS gives malloc'd data, and
// what the Near-L3 and In-Core baselines run on.
func DefaultConfig() Config {
	mem := memsim.DefaultConfig()
	mem.HeapLayout = memsim.HeapRandom
	return Config{
		MeshW:     8,
		MeshH:     8,
		Numbering: topo.RowMajor,
		Mem:       mem,
		NoC:       noc.DefaultConfig(),
		MemSys:    cache.DefaultMemSysConfig(),
		Core:      cpu.DefaultConfig(),
		Stream:    stream.DefaultConfig(),
		Policy:    core.DefaultPolicy(),
		Energy:    energy.DefaultParams(),
		Seed:      1,
	}
}

// System is one assembled machine instance. Build a fresh System per
// workload run; state (caches, link schedules) is intentionally carried
// within a run and discarded across runs.
type System struct {
	Cfg   Config
	Mesh  *topo.Mesh
	Space *memsim.Space
	Net   *noc.Network
	Mem   *cache.MemSystem
	Coh   *cpu.Coherence
	Cores []*cpu.Core
	SE    *stream.Engine
	RT    *core.Runtime
	// Clocks is the (possibly sharded) system event kernel. The NoC,
	// memory system, and stream engines schedule their counter
	// retirements on the shard owning the touched tile (unless
	// Config.InlineAccounting is set); Telemetry drains every shard —
	// without advancing any clock — before a counter is read, so reports
	// are byte-identical either way and at every shard count.
	Clocks *engine.Coordinator
	// Faults is the resolved fault injector; nil on a clean machine.
	Faults *faults.Injector
	// Realloc is the online reconciler; nil unless Config.Realloc is
	// enabled.
	Realloc *realloc.Reconciler

	// spans are the sim-time phases recorded via MarkPhase.
	spans []telemetry.Span
}

// New builds a system. The configuration is validated first, so
// assembly errors carry actionable messages (see Config.Validate).
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := topo.NewMesh(cfg.MeshW, cfg.MeshH, cfg.Numbering)
	if err != nil {
		return nil, err
	}
	// Resolve the fault spec against the real geometry before anything is
	// assembled, so every component below builds against the degraded
	// machine: the space remaps dead banks, the NoC routes around dead
	// links, the memory system throttles faulted DRAM channels.
	var inj *faults.Injector
	if !cfg.Faults.Empty() {
		inj, err = faults.New(cfg.Faults, mesh, len(mesh.MemControllers()))
		if err != nil {
			return nil, err
		}
		cfg.Mem.DeadBanks = inj.DeadBankList()
		cfg.NoC.Faults = inj
		cfg.MemSys.Faults = inj
	}
	cfg.Mem.Banks = mesh.Banks()
	cfg.Mem.Seed = cfg.Seed
	space, err := memsim.NewSpace(cfg.Mem)
	if err != nil {
		return nil, err
	}
	net := noc.New(mesh, cfg.NoC)
	mem, err := cache.NewMemSystem(space, net, cfg.MemSys)
	if err != nil {
		return nil, err
	}
	coh := cpu.NewCoherence()
	cores := make([]*cpu.Core, mesh.Banks())
	for i := range cores {
		c, err := cpu.NewCore(i, mem, coh, cfg.Core)
		if err != nil {
			return nil, err
		}
		cores[i] = c
	}
	se := stream.NewEngine(mem, cfg.Stream)
	if inj != nil && len(inj.DeadBankList()) > 0 {
		// Dead banks host no SEL3 work: point each at its nearest
		// survivor so nominal placements keep running.
		redirect := make([]int, mesh.Banks())
		for b := range redirect {
			redirect[b] = inj.NearestAlive(b)
		}
		se.SetBankRedirect(redirect)
	}
	rt, err := core.New(space, mesh, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	tileShard, bankShard, err := shardMap(mesh, shards)
	if err != nil {
		return nil, err
	}
	// Lookahead is the minimum cost of any cross-shard message: one NoC
	// hop. Shard cuts run along tile boundaries, so nothing can cross in
	// fewer cycles.
	clocks := engine.NewCoordinator(shards, net.PerHopCycles(), cfg.Seed)
	if !cfg.InlineAccounting {
		net.AttachClock(clocks, tileShard)
		mem.AttachClock(clocks, bankShard)
		se.AttachClock(clocks, bankShard)
	}
	var rec *realloc.Reconciler
	if cfg.Realloc.Enabled() {
		rec = realloc.NewReconciler(cfg.Realloc, space, mesh, mem, rt)
		mem.SetAccessHook(rec.OnAccess)
	}
	if inj != nil && len(inj.BankKills()) > 0 {
		// Arm the mid-run kills. When one fires the space has already
		// remapped the bank; the injector's bookkeeping and the stream
		// engine's dead-bank redirect catch up here. The reconciler needs
		// no notification — its next epoch observes the dead bank and
		// re-homes stranded granules.
		mem.SetBankKills(inj.BankKills(), func(at engine.Time, b int) {
			inj.NoteBankKill(at, b)
			redirect := make([]int, mesh.Banks())
			for i := range redirect {
				redirect[i] = inj.NearestAlive(i)
			}
			se.SetBankRedirect(redirect)
		})
	}
	return &System{
		Cfg:     cfg,
		Mesh:    mesh,
		Space:   space,
		Net:     net,
		Mem:     mem,
		Coh:     coh,
		Cores:   cores,
		SE:      se,
		RT:      rt,
		Clocks:  clocks,
		Faults:  inj,
		Realloc: rec,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCores returns the core count (== banks).
func (s *System) NumCores() int { return len(s.Cores) }

// Alloc allocates per the mode: affinity-aware specs in AffAlloc, the
// baseline allocator otherwise. It lets workload code state its affinity
// intent once and run under every configuration.
func (s *System) Alloc(mode Mode, spec core.AffineSpec) (*core.ArrayInfo, error) {
	if mode == AffAlloc {
		return s.RT.AllocAffine(spec)
	}
	base, err := s.RT.AllocBase(int64(spec.ElemSize) * spec.NumElem)
	if err != nil {
		return nil, err
	}
	return &core.ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: spec.ElemSize,
		NumElem:    spec.NumElem,
	}, nil
}

// PreloadArray warms an affine array into the L3 (see cache.Preload).
func (s *System) PreloadArray(a *core.ArrayInfo) {
	s.Mem.Preload(a.Base, a.Bytes())
}

// MarkPhase records a named sim-time phase (e.g. one BFS iteration) for
// the Chrome-trace exporter. Phases are carried through Collect into
// Metrics.Detail.Spans.
func (s *System) MarkPhase(name, cat string, start, end engine.Time) {
	if end < start {
		start, end = end, start
	}
	s.spans = append(s.spans, telemetry.Span{
		Name: name, Cat: cat, Start: uint64(start), Dur: uint64(end - start),
	})
}

// Metrics is what one run reports. Every stored field is a raw count —
// derived values (miss rates, utilization, energy totals) are methods —
// and the JSON tags are the stable snake_case metrics schema.
type Metrics struct {
	Cycles   engine.Time                    `json:"cycles"`
	Traffic  [noc.NumClasses]noc.ClassStats `json:"traffic_by_class"`
	FlitHops uint64                         `json:"noc_flit_hops"`
	// LinkFlits counts flits through directed links (the utilization
	// numerator); Links is the directed-link count (its denominator).
	LinkFlits    uint64           `json:"noc_link_flits"`
	Links        int              `json:"noc_links"`
	L3Accesses   uint64           `json:"l3_accesses"`
	L3Misses     uint64           `json:"l3_misses"`
	DRAMAccesses uint64           `json:"dram_accesses"`
	Energy       energy.Breakdown `json:"energy"`
	// Detail is the full per-tile telemetry snapshot (per-link flits,
	// per-bank L3 balance, per-core activity, DRAM channel queues).
	Detail *telemetry.Snapshot `json:"detail,omitempty"`
}

// L3MissRate returns misses/accesses, or 0 before any access.
func (m Metrics) L3MissRate() float64 {
	if m.L3Accesses == 0 {
		return 0
	}
	return float64(m.L3Misses) / float64(m.L3Accesses)
}

// NoCUtil returns the fraction of link-cycles carrying flits over the
// run — the "NoC Util." dots in Figs 12, 13 and 20.
func (m Metrics) NoCUtil() float64 {
	if m.Cycles == 0 || m.Links == 0 {
		return 0
	}
	return float64(m.LinkFlits) / (float64(m.Links) * float64(m.Cycles))
}

// EnergyTotal sums the energy breakdown.
func (m Metrics) EnergyTotal() float64 { return m.Energy.Total() }

// Telemetry builds the run's full telemetry snapshot at the finish
// cycle: every component publishes its counters and per-tile series into
// a fresh registry, and recorded phases become trace spans.
func (s *System) Telemetry(finish engine.Time) *telemetry.Snapshot {
	// Retire all deferred accounting before any counter is read. The
	// drain leaves every shard clock untouched: a telemetry snapshot is
	// an observation, not a simulated action, and must not move time.
	s.Clocks.DrainAccounting()
	r := telemetry.NewRegistry()
	r.Set("cycles", uint64(finish))
	s.Net.PublishTelemetry(r)
	s.Mem.PublishTelemetry(r)
	s.SE.PublishTelemetry(r)
	cpu.PublishCores(r, s.Cores, finish)
	if s.Faults != nil {
		// Fault counters exist only on degraded machines, keeping clean
		// runs' metrics documents byte-identical to fault-free builds.
		s.Faults.PublishTelemetry(r)
		r.Set("fault_bank_remapped_accesses", s.Space.RemappedAccesses)
	}
	if s.Realloc != nil {
		// Same gating pattern: the realloc_* keys appear only when a
		// migration (or a cost/benefit rejection) actually happened, so
		// an armed-but-idle reconciler publishes nothing.
		s.Realloc.PublishTelemetry(r)
	}
	for _, sp := range s.spans {
		r.AddSpan(sp)
	}
	return r.Snapshot()
}

// Collect gathers metrics at a run's finish cycle. It is built on the
// telemetry registry: the components publish raw counters, and Metrics
// reads its aggregates back out of the snapshot it keeps in Detail.
func (s *System) Collect(finish engine.Time) Metrics {
	snap := s.Telemetry(finish)
	m := Metrics{
		Cycles:       finish,
		Traffic:      s.Net.Stats(),
		FlitHops:     snap.Scalar("noc_flit_hops"),
		LinkFlits:    snap.Scalar("noc_link_flits_total"),
		Links:        int(snap.Scalar("noc_links")),
		L3Accesses:   snap.Scalar("l3_bank_accesses_total"),
		L3Misses:     snap.Scalar("l3_bank_misses_total"),
		DRAMAccesses: snap.Scalar("dram_chan_reads_total") + snap.Scalar("dram_chan_writes_total"),
		Detail:       snap,
	}
	counts := energy.Counts{
		CoreActiveCycles: snap.Scalar("core_active_cycles_total"),
		ALUOps:           snap.Scalar("core_alu_ops_total"),
		SIMDOps:          snap.Scalar("core_simd_ops_total"),
		L1Accesses:       snap.Scalar("core_l1_accesses_total"),
		L2Accesses:       snap.Scalar("core_l2_accesses_total"),
		L3Accesses:       m.L3Accesses,
		DRAMAccesses:     m.DRAMAccesses,
		NoCFlitHops:      m.FlitHops,
		SEL3Ops: snap.Scalar("se_elements_computed") +
			snap.Scalar("se_remote_ops") + snap.Scalar("se_migrations"),
		ElapsedCycles: uint64(finish),
		Routers:       s.Mesh.Banks(),
		Banks:         s.Mesh.Banks(),
	}
	m.Energy = energy.Estimate(counts, s.Cfg.Energy)
	return m
}

// DataHops returns the per-class flit-hop counts as a convenience triple
// (data, control, offload).
func (m Metrics) DataHops() (data, control, offload uint64) {
	return m.Traffic[noc.Data].FlitHops, m.Traffic[noc.Control].FlitHops, m.Traffic[noc.Offload].FlitHops
}

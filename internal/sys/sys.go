// Package sys assembles the full simulated system of Table 2 — mesh,
// address space, NoC, banked L3 + DRAM, cores, stream engines, and the
// affinity-allocation runtime — and collects the metrics the evaluation
// reports (cycles, per-class NoC traffic, L3 miss rate, energy).
package sys

import (
	"fmt"

	"affinityalloc/internal/cache"
	"affinityalloc/internal/core"
	"affinityalloc/internal/cpu"
	"affinityalloc/internal/energy"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/noc"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/topo"
)

// Mode selects the execution configuration of §6.
type Mode int

const (
	// InCore runs everything on the OOO cores with prefetchers; nothing
	// is offloaded.
	InCore Mode = iota
	// NearL3 offloads streams to the L3 stream engines but is oblivious
	// to data affinity (baseline allocator, original data structures).
	NearL3
	// AffAlloc is NearL3 plus affinity allocation and the co-designed
	// data structures.
	AffAlloc
)

func (m Mode) String() string {
	switch m {
	case InCore:
		return "In-Core"
	case NearL3:
		return "Near-L3"
	case AffAlloc:
		return "Aff-Alloc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists the three configurations in presentation order.
var Modes = []Mode{InCore, NearL3, AffAlloc}

// Config parameterizes a system build.
type Config struct {
	MeshW, MeshH int
	Numbering    topo.Numbering
	Mem          memsim.Config
	NoC          noc.Config
	MemSys       cache.MemSysConfig
	Core         cpu.Config
	Stream       stream.Config
	Policy       core.PolicyConfig
	Energy       energy.Params
	Seed         int64
}

// DefaultConfig mirrors Table 2: an 8x8 mesh of cores with 64 L3 banks.
// The conventional heap uses randomized physical page placement — the
// affinity-oblivious layout a long-running OS gives malloc'd data, and
// what the Near-L3 and In-Core baselines run on.
func DefaultConfig() Config {
	mem := memsim.DefaultConfig()
	mem.HeapLayout = memsim.HeapRandom
	return Config{
		MeshW:     8,
		MeshH:     8,
		Numbering: topo.RowMajor,
		Mem:       mem,
		NoC:       noc.DefaultConfig(),
		MemSys:    cache.DefaultMemSysConfig(),
		Core:      cpu.DefaultConfig(),
		Stream:    stream.DefaultConfig(),
		Policy:    core.DefaultPolicy(),
		Energy:    energy.DefaultParams(),
		Seed:      1,
	}
}

// System is one assembled machine instance. Build a fresh System per
// workload run; state (caches, link schedules) is intentionally carried
// within a run and discarded across runs.
type System struct {
	Cfg   Config
	Mesh  *topo.Mesh
	Space *memsim.Space
	Net   *noc.Network
	Mem   *cache.MemSystem
	Coh   *cpu.Coherence
	Cores []*cpu.Core
	SE    *stream.Engine
	RT    *core.Runtime
}

// New builds a system.
func New(cfg Config) (*System, error) {
	mesh, err := topo.NewMesh(cfg.MeshW, cfg.MeshH, cfg.Numbering)
	if err != nil {
		return nil, err
	}
	cfg.Mem.Banks = mesh.Banks()
	cfg.Mem.Seed = cfg.Seed
	space, err := memsim.NewSpace(cfg.Mem)
	if err != nil {
		return nil, err
	}
	net := noc.New(mesh, cfg.NoC)
	mem, err := cache.NewMemSystem(space, net, cfg.MemSys)
	if err != nil {
		return nil, err
	}
	coh := cpu.NewCoherence()
	cores := make([]*cpu.Core, mesh.Banks())
	for i := range cores {
		c, err := cpu.NewCore(i, mem, coh, cfg.Core)
		if err != nil {
			return nil, err
		}
		cores[i] = c
	}
	se := stream.NewEngine(mem, cfg.Stream)
	rt, err := core.New(space, mesh, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &System{
		Cfg:   cfg,
		Mesh:  mesh,
		Space: space,
		Net:   net,
		Mem:   mem,
		Coh:   coh,
		Cores: cores,
		SE:    se,
		RT:    rt,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCores returns the core count (== banks).
func (s *System) NumCores() int { return len(s.Cores) }

// Alloc allocates per the mode: affinity-aware specs in AffAlloc, the
// baseline allocator otherwise. It lets workload code state its affinity
// intent once and run under every configuration.
func (s *System) Alloc(mode Mode, spec core.AffineSpec) (*core.ArrayInfo, error) {
	if mode == AffAlloc {
		return s.RT.AllocAffine(spec)
	}
	base, err := s.RT.AllocBase(int64(spec.ElemSize) * spec.NumElem)
	if err != nil {
		return nil, err
	}
	return &core.ArrayInfo{
		Base:       base,
		ElemSize:   spec.ElemSize,
		ElemStride: spec.ElemSize,
		NumElem:    spec.NumElem,
	}, nil
}

// PreloadArray warms an affine array into the L3 (see cache.Preload).
func (s *System) PreloadArray(a *core.ArrayInfo) {
	s.Mem.Preload(a.Base, a.Bytes())
}

// Metrics is what one run reports.
type Metrics struct {
	Cycles       engine.Time
	Traffic      [noc.NumClasses]noc.ClassStats
	FlitHops     uint64
	NoCUtil      float64
	L3Accesses   uint64
	L3Misses     uint64
	L3MissRate   float64
	DRAMAccesses uint64
	Energy       energy.Breakdown
	EnergyTotal  float64
	Checksum     uint64
}

// Collect gathers metrics at a run's finish cycle.
func (s *System) Collect(finish engine.Time) Metrics {
	var m Metrics
	m.Cycles = finish
	m.Traffic = s.Net.Stats()
	m.FlitHops = s.Net.TotalFlitHops()
	m.NoCUtil = s.Net.Utilization(finish)
	acc, _, miss := s.Mem.TotalL3Stats()
	m.L3Accesses, m.L3Misses = acc, miss
	if acc > 0 {
		m.L3MissRate = float64(miss) / float64(acc)
	}
	m.DRAMAccesses = s.Mem.DRAMReads + s.Mem.DRAMWrites

	var counts energy.Counts
	for _, c := range s.Cores {
		active := c.Drained()
		if active > finish {
			active = finish
		}
		if c.Loads+c.Stores+c.Atomics+c.ALUOps+c.SIMDOps > 0 {
			counts.CoreActiveCycles += uint64(active)
		}
		counts.ALUOps += c.ALUOps
		counts.SIMDOps += c.SIMDOps
		counts.L1Accesses += c.L1().Accesses
		counts.L2Accesses += c.L2().Accesses
	}
	counts.L3Accesses = acc
	counts.DRAMAccesses = m.DRAMAccesses
	counts.NoCFlitHops = m.FlitHops
	counts.SEL3Ops = s.SE.ElementsComputed + s.SE.RemoteOps + s.SE.Migrations
	counts.ElapsedCycles = uint64(finish)
	counts.Routers = s.Mesh.Banks()
	counts.Banks = s.Mesh.Banks()
	m.Energy = energy.Estimate(counts, s.Cfg.Energy)
	m.EnergyTotal = m.Energy.Total()
	return m
}

// DataHops returns the per-class flit-hop counts as a convenience triple
// (data, control, offload).
func (m Metrics) DataHops() (data, control, offload uint64) {
	return m.Traffic[noc.Data].FlitHops, m.Traffic[noc.Control].FlitHops, m.Traffic[noc.Offload].FlitHops
}

package sys_test

import (
	"encoding/json"
	"testing"

	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

// TestDeferredAccountingMatchesInline pins the deferred-retirement
// contract: running a workload with counter updates scheduled through the
// event kernel (the default) must produce a metrics document
// byte-identical to running it with Config.InlineAccounting set. The
// deferred path only reorders commutative adds and drains them before any
// read, so a divergence here means a retirement event was lost, double
// applied, or mis-packed.
func TestDeferredAccountingMatchesInline(t *testing.T) {
	// One affine workload (NoC link flits + bank/DRAM completions) and one
	// pointer workload (SE remote ops + migrations) cover every converted
	// accounting site.
	cases := []struct {
		name string
		w    workloads.Workload
		mode sys.Mode
	}{
		{"vecadd-affalloc", workloads.VecAdd{N: 1 << 14, ForceDelta: -1}, sys.AffAlloc},
		{"linklist-nearl3", workloads.LinkList{Lists: 16, Nodes: 64, Queries: 1}, sys.NearL3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(inline bool) []byte {
				cfg := sys.DefaultConfig()
				cfg.InlineAccounting = inline
				res, err := workloads.Run(cfg, tc.w, tc.mode)
				if err != nil {
					t.Fatal(err)
				}
				doc, err := json.Marshal(res.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				return doc
			}
			deferred, inline := run(false), run(true)
			if string(deferred) != string(inline) {
				t.Errorf("deferred and inline accounting diverge:\ndeferred: %.400s\ninline:   %.400s", deferred, inline)
			}
		})
	}
}

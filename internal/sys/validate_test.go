package sys

import (
	"strings"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/topo"
)

// TestConfigValidate drives every rejection branch with a broken copy of
// the default config and checks the message names the offending field —
// the errors exist to be actionable, not just non-nil.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"zero mesh width", func(c *Config) { c.MeshW = 0 }, "mesh"},
		{"negative mesh height", func(c *Config) { c.MeshH = -4 }, "mesh"},
		{"quadrant non-square", func(c *Config) { c.Numbering = topo.Quadrant; c.MeshW = 8; c.MeshH = 4 }, "quadrant"},
		{"quadrant non-pow2", func(c *Config) { c.Numbering = topo.Quadrant; c.MeshW = 6; c.MeshH = 6 }, "quadrant"},
		{"zero L3 bank size", func(c *Config) { c.MemSys.BankSizeBytes = 0 }, "bank size"},
		{"zero L3 ways", func(c *Config) { c.MemSys.BankWays = 0 }, "associativity"},
		{"L3 size not divisible", func(c *Config) { c.MemSys.BankSizeBytes = 1<<20 + 64 }, "divisible"},
		{"L3 sets not pow2", func(c *Config) { c.MemSys.BankSizeBytes = 3 << 19 }, "power of two"},
		{"zero L1 size", func(c *Config) { c.Core.L1SizeBytes = 0 }, "L1"},
		{"L2 size not divisible", func(c *Config) { c.Core.L2SizeBytes = 100 }, "L2"},
		{"bad policy", func(c *Config) { c.Policy.Policy = core.Policy(99) }, "policy"},
		{"negative H", func(c *Config) { c.Policy.H = -1 }, "H="},
		{"negative link bytes", func(c *Config) { c.NoC.LinkBytes = -1 }, "NoC"},
		{"negative SIMD lanes", func(c *Config) { c.Stream.SIMDLanes = -2 }, "stream"},
		{"zero interleave", func(c *Config) { c.Mem.DefaultInterleave = 0 }, "interleave"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a broken config", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.wantSub)) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
		if _, nerr := New(cfg); nerr == nil {
			t.Errorf("%s: New accepted what Validate rejects", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	for in, want := range map[string]Mode{
		"incore": InCore, "IN_CORE": InCore, "near-l3": NearL3,
		"NearL3": NearL3, "affalloc": AffAlloc, "Aff Alloc": AffAlloc,
	} {
		if got, err := ParseMode(in); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("warp-drive"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestModeTextMarshal(t *testing.T) {
	for _, m := range Modes {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := back.UnmarshalText(b); err != nil || back != m {
			t.Errorf("text round trip of %v gave %v, %v", m, back, err)
		}
	}
	if _, err := Mode(42).MarshalText(); err == nil {
		t.Error("MarshalText accepted an invalid mode")
	}
}

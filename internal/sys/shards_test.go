package sys_test

import (
	"encoding/json"
	"testing"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/workloads"
)

// TestShardedAccountingMatchesSingle pins the kernel-sharding contract:
// running a workload with retirements routed across 2 or 4 kernel shards
// (drained in parallel) must produce a metrics document byte-identical
// to the single-shard kernel — and to inline accounting, by transitivity
// with TestDeferredAccountingMatchesInline. Shard ownership partitions
// every per-tile counter and the shared scalars go through per-shard
// delta slots, so a divergence here means an event ran on the wrong
// shard or two shards raced on one counter.
func TestShardedAccountingMatchesSingle(t *testing.T) {
	cases := []struct {
		name string
		w    workloads.Workload
		mode sys.Mode
	}{
		// Affine (NoC flits + bank/DRAM completions) and pointer (SE
		// remote ops + migrations) coverage, as in the deferred test.
		{"vecadd-affalloc", workloads.VecAdd{N: 1 << 14, ForceDelta: -1}, sys.AffAlloc},
		{"linklist-nearl3", workloads.LinkList{Lists: 16, Nodes: 64, Queries: 1}, sys.NearL3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int) []byte {
				cfg := sys.DefaultConfig()
				cfg.Shards = shards
				res, err := workloads.Run(cfg, tc.w, tc.mode)
				if err != nil {
					t.Fatal(err)
				}
				doc, err := json.Marshal(res.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				return doc
			}
			want := run(1)
			for _, k := range []int{2, 4} {
				if got := run(k); string(got) != string(want) {
					t.Errorf("shards=%d diverges from single-shard kernel:\n%d shards: %.400s\n1 shard:   %.400s", k, k, got, want)
				}
			}
		})
	}
}

// TestShardedFaultedMatchesSingle repeats the identity check on a
// degraded machine: dead banks redirect SEL3 work, dead links force
// detours, and a throttled DRAM channel stretches queue cycles — all
// paths whose accounting must still land on the owning shard.
func TestShardedFaultedMatchesSingle(t *testing.T) {
	run := func(shards int) []byte {
		cfg := sys.DefaultConfig()
		cfg.Shards = shards
		cfg.Faults.NDeadBanks = 2
		cfg.Faults.NDeadLinks = 3
		cfg.Faults.DRAM = []faults.DRAMFault{{Chan: 1, LatencyX: 2}}
		cfg.Faults.Seed = 11
		res, err := workloads.Run(cfg, workloads.VecAdd{N: 1 << 13, ForceDelta: -1}, sys.AffAlloc)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	want := run(1)
	for _, k := range []int{2, 4} {
		if got := run(k); string(got) != string(want) {
			t.Errorf("faulted shards=%d diverges from single-shard kernel:\n%d shards: %.400s\n1 shard:   %.400s", k, k, got, want)
		}
	}
}

// TestShardConfigValidation pins the shard-count validation: counts that
// cannot cut the mesh into equal rectangles are rejected with an
// actionable error, legal counts build.
func TestShardConfigValidation(t *testing.T) {
	for _, k := range []int{0, 1, 2, 4, 8, 16, 64} {
		cfg := sys.DefaultConfig() // 8x8 mesh
		cfg.Shards = k
		if err := cfg.Validate(); err != nil {
			t.Errorf("Shards=%d on 8x8 mesh rejected: %v", k, err)
		}
	}
	for _, k := range []int{-1, 3, 5, 7} {
		cfg := sys.DefaultConfig()
		cfg.Shards = k
		if err := cfg.Validate(); err == nil {
			t.Errorf("Shards=%d on 8x8 mesh accepted, want error", k)
		}
	}
}

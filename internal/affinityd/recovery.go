package affinityd

// Recovery restores journaled machines after a restart, in two phases
// so failure is loud and unavailability is observable:
//
//  1. PrepareRecovery — synchronous, before the listener opens. Every
//     journal in Options.JournalDir is read and verified end to end
//     (header, CRC per record, consecutive sequence numbers, snapshot
//     well-formedness). Corruption fails startup here with a typed
//     *JournalError: the daemon refuses to come up and serve a machine
//     whose history is wrong. Machines that verify are rebuilt from
//     their register record and installed in replaying mode — they
//     exist (GET answers, requests get 503 + Retry-After, never 404)
//     but serve nothing yet, and /readyz reports not-ready.
//
//  2. Replay — typically after the listener opens, so /healthz and
//     /readyz answer during a long replay. Each machine's record
//     stream is re-executed through the same placement entry points
//     serving uses; determinism makes the result byte-identical to the
//     pre-crash state. When replay passes a snapshot's sequence number
//     the reconstructed state must hash to the snapshot's state sum.
//     Torn journal tails are truncated, journals reopen for appending,
//     and each machine flips to serving as its own replay completes.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"affinityalloc/internal/sys"
)

// RecoveryStats summarizes what recovery did.
type RecoveryStats struct {
	// Machines recovered (journals found and verified).
	Machines int
	// Records replayed across all machines (excluding register records).
	Records int
	// TornTails truncated — journals whose final append was cut short.
	TornTails int
	// Snapshots verified against replayed state.
	Snapshots int
}

func (st RecoveryStats) String() string {
	return fmt.Sprintf("%d machine(s), %d record(s) replayed, %d torn tail(s) truncated, %d snapshot(s) verified",
		st.Machines, st.Records, st.TornTails, st.Snapshots)
}

// Recovery is the handle between the two phases.
type Recovery struct {
	s       *Server
	pending []*pendingMachine
	stats   RecoveryStats
}

// pendingMachine is one verified-but-not-yet-replayed machine.
type pendingMachine struct {
	m    *machine
	log  *journalLog
	snap *Snapshot
}

// PrepareRecovery runs phase one. On success the returned Recovery
// holds every journaled machine, installed in replaying mode; call
// Replay to reconstruct their state. With no journal directory (or an
// empty one) it returns an empty Recovery and Replay is a no-op.
func (s *Server) PrepareRecovery() (*Recovery, error) {
	r := &Recovery{s: s}
	if s.opts.JournalDir == "" {
		return r, nil
	}
	paths, err := filepath.Glob(filepath.Join(s.opts.JournalDir, "*"+journalExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var maxID uint64
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), journalExt)
		lg, err := readJournal(path)
		if err != nil {
			return nil, err
		}
		if lg.machineID != id {
			return nil, &JournalError{Path: path, Line: 1,
				Reason: fmt.Sprintf("header names machine %q but the file is %s%s", lg.machineID, id, journalExt)}
		}
		snapPath := snapshotPath(s.opts.JournalDir, id)
		snap, err := readSnapshot(snapPath)
		if err != nil {
			return nil, err
		}
		lastSeq := lg.records[len(lg.records)-1].Seq
		if snap != nil {
			if snap.MachineID != id {
				return nil, &JournalError{Path: snapPath,
					Reason: fmt.Sprintf("snapshot names machine %q, want %q", snap.MachineID, id)}
			}
			if snap.Seq > lastSeq {
				return nil, &JournalError{Path: snapPath,
					Reason: fmt.Sprintf("snapshot is at seq %d but the journal ends at %d", snap.Seq, lastSeq)}
			}
		}

		// The register record carries the spec the tenant actually got
		// (fleet defaults already merged at original registration), so
		// it is rebuilt verbatim — today's -seed/-policy flags don't
		// rewrite history.
		spec := *lg.records[0].Spec
		cfg, err := buildConfig(spec)
		if err != nil {
			return nil, &JournalError{Path: path, Line: 2,
				Reason: fmt.Sprintf("register record does not build: %v", err)}
		}
		system, err := sys.New(cfg)
		if err != nil {
			return nil, &JournalError{Path: path, Line: 2,
				Reason: fmt.Sprintf("register record does not build: %v", err)}
		}
		m := newMachine(id, spec, cfg, system, machineOpts{
			queueDepth: s.opts.QueueDepth,
			snapPath:   snapPath,
			snapEvery:  s.opts.SnapshotEvery,
			latency:    &s.placements,
			batches:    &s.batches,
			replaying:  true,
		})
		if err := s.install(m); err != nil {
			return nil, err
		}
		s.replayingN.Add(1)
		r.pending = append(r.pending, &pendingMachine{m: m, log: lg, snap: snap})
		if n, err := strconv.ParseUint(strings.TrimPrefix(id, "m"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	// New registrations must not collide with recovered machine IDs.
	for {
		cur := s.nextID.Load()
		if cur >= maxID || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}
	r.stats.Machines = len(r.pending)
	return r, nil
}

// Replay runs phase two: re-executes every verified journal, checks
// snapshots against the reconstructed state, truncates torn tails,
// reopens journals for appending, and flips each machine to serving.
// On error the offending machine stays in replaying mode (still 503,
// never wrong answers) and the error says why.
func (r *Recovery) Replay() (RecoveryStats, error) {
	for _, p := range r.pending {
		if err := r.replayOne(p); err != nil {
			return r.stats, err
		}
		r.s.replayingN.Add(-1)
		r.s.recoveredMach.Add(1)
	}
	return r.stats, nil
}

func (r *Recovery) replayOne(p *pendingMachine) error {
	m, lg := p.m, p.log
	for i := range lg.records {
		rec := &lg.records[i]
		if rec.Kind == recRegister {
			if rec.Seq != 1 {
				return &JournalError{Path: lg.path,
					Reason: fmt.Sprintf("register record at seq %d, want 1", rec.Seq)}
			}
			continue
		}
		m.applyRecord(rec)
		r.stats.Records++
		r.s.replayedRecords.Add(1)
		if p.snap != nil && rec.Seq == p.snap.Seq {
			if err := verifySnapshot(p.snap, m); err != nil {
				return err
			}
			r.stats.Snapshots++
		}
	}
	if lg.torn {
		r.stats.TornTails++
	}

	lastSeq := lg.records[len(lg.records)-1].Seq
	tornSize := int64(-1)
	if lg.torn {
		tornSize = lg.tornSize
	}
	j, err := reopenJournal(lg.path, lastSeq, tornSize, r.s.opts.SyncWrites)
	if err != nil {
		return err
	}
	m.journal = j
	m.journalSeq.Store(lastSeq)
	// Records replayed past the last snapshot count toward the next one.
	if p.snap != nil {
		m.sinceSnap = int(lastSeq - p.snap.Seq)
	} else {
		m.sinceSnap = int(lastSeq)
	}
	m.finishReplay()
	return nil
}

// verifySnapshot cross-checks a snapshot against the state replay
// reconstructed at the snapshot's sequence number.
func verifySnapshot(snap *Snapshot, m *machine) error {
	if got := stateSum(m.handles); got != snap.StateSum {
		return &JournalError{Path: m.snapPath, Reason: fmt.Sprintf(
			"state sum mismatch at seq %d: replay %s, snapshot %s — journal and snapshot disagree about history",
			snap.Seq, got, snap.StateSum)}
	}
	if got := m.allocs.Load(); got != snap.Allocs {
		return &JournalError{Path: m.snapPath, Reason: fmt.Sprintf(
			"alloc count mismatch at seq %d: replay %d, snapshot %d", snap.Seq, got, snap.Allocs)}
	}
	if got := len(m.handles); got != snap.LiveHandles {
		return &JournalError{Path: m.snapPath, Reason: fmt.Sprintf(
			"live handle count mismatch at seq %d: replay %d, snapshot %d", snap.Seq, got, snap.LiveHandles)}
	}
	return nil
}

// Recover runs both phases back to back: verify, replay, serve. The
// convenience form for tests and callers without a listener to open in
// between.
func (s *Server) Recover() (RecoveryStats, error) {
	r, err := s.PrepareRecovery()
	if err != nil {
		return RecoveryStats{}, err
	}
	return r.Replay()
}

// RemoveJournalDir deletes every journal and snapshot under dir,
// leaving other files alone. Operators use it (via -journal-reset) to
// deliberately discard placement history.
func RemoveJournalDir(dir string) error {
	for _, ext := range []string{journalExt, snapshotExt} {
		paths, err := filepath.Glob(filepath.Join(dir, "*"+ext))
		if err != nil {
			return err
		}
		for _, p := range paths {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Package affinityd promotes the affinity allocator from an in-process
// library to a long-running placement service: a versioned HTTP/JSON
// wire API (affinityd/v1) to register simulated machine topologies, open
// interleave pools, and submit batched allocation requests carrying
// affinity hint graphs, answered with simulated base addresses and bank
// placements.
//
// The server core is built for serving, not simulating: machine lookup
// on the hot placement path is a lock-free atomic load of a
// copy-on-write registry, per-machine placement state is owned by a
// single worker goroutine that admits requests in batches, and pool
// bookkeeping is sharded one lock domain per interleave pool. Placements
// themselves are produced by the exact same sys.System entry points the
// library exposes, so an identical request stream yields byte-identical
// placements through the wire API and through direct library calls (the
// differential gate in server_test.go pins this).
package affinityd

// APIVersion identifies the wire API. Every response carries it; bump
// only on incompatible changes (field additions are compatible).
const APIVersion = "affinityd/v1"

// Request kinds (AllocRequest.Kind).
const (
	// KindAffine is an affine-array allocation (core.AffineSpec).
	KindAffine = "affine"
	// KindNear is an irregular allocation near affinity addresses
	// (core.Runtime.AllocNear).
	KindNear = "near"
)

// MachineSpec is the sys.Config subset a tenant registers: the mesh
// geometry, the placement seed and policy, and an optional fault spec
// degrading the machine (the -faults grammar of faults.Parse). Zero
// values take the server defaults (Table 2 geometry, the server's
// -seed/-policy/-faults flags).
type MachineSpec struct {
	MeshW  int    `json:"mesh_w,omitempty"`
	MeshH  int    `json:"mesh_h,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Policy string `json:"policy,omitempty"` // rnd|lnr|minhop|hybrid<H> (core.ParsePolicy)
	Faults string `json:"faults,omitempty"` // faults.Parse grammar, e.g. "dead-banks=2"
}

// RegisterRequest opens a machine: POST /v1/machines.
type RegisterRequest struct {
	Machine MachineSpec `json:"machine"`
}

// RegisterResponse describes the machine the server assembled.
type RegisterResponse struct {
	Version   string `json:"version"`
	MachineID string `json:"machine_id"`
	MeshW     int    `json:"mesh_w"`
	MeshH     int    `json:"mesh_h"`
	Banks     int    `json:"banks"`
	// DeadBanks lists banks disabled by the fault spec; placements avoid
	// them exactly as the library allocator does on a degraded machine.
	DeadBanks []int `json:"dead_banks,omitempty"`
}

// OpenPoolRequest pre-opens an interleave pool:
// POST /v1/machines/{id}/pools.
type OpenPoolRequest struct {
	Interleave int `json:"interleave"`
}

// PoolInfo reports one interleave pool's identity and serving counters.
type PoolInfo struct {
	Interleave int    `json:"interleave"`
	Start      uint64 `json:"start"` // virtual base of the pool's span
	Allocs     uint64 `json:"allocs"`
	Frees      uint64 `json:"frees"`
	Bytes      uint64 `json:"bytes"` // bytes placed into the pool, cumulative
}

// OpenPoolResponse acknowledges an opened pool.
type OpenPoolResponse struct {
	Version   string   `json:"version"`
	MachineID string   `json:"machine_id"`
	Pool      PoolInfo `json:"pool"`
}

// ElemRef names one element of a previously placed affine array — an
// edge of the affinity hint graph. Ref is the AllocRequest.ID that
// produced the array (this batch or any earlier one on the machine).
type ElemRef struct {
	Ref  string `json:"ref"`
	Elem int64  `json:"elem"`
}

// AllocRequest is one allocation in a batch. Affinity edges (AlignTo,
// Affinity) reference earlier requests by ID, so a batch carries a whole
// affinity hint graph; requests execute in order and may reference IDs
// placed earlier in the same batch.
type AllocRequest struct {
	// ID names the allocation for later AlignTo/Affinity edges and for
	// freeing. It must be unique among the machine's live allocations.
	ID string `json:"id"`
	// Kind selects affine (default) or near.
	Kind string `json:"kind,omitempty"`
	// Mode is the execution configuration (sys.ParseMode spelling:
	// In-Core, Near-L3, Aff-Alloc). Only Aff-Alloc placements carry
	// affinity; the baselines use the conventional heap. Default Aff-Alloc.
	Mode string `json:"mode,omitempty"`

	// Affine fields (KindAffine).
	ElemSize  int    `json:"elem_size,omitempty"`
	NumElem   int64  `json:"num_elem,omitempty"`
	AlignTo   string `json:"align_to,omitempty"` // ID of the array to align with
	AlignP    int    `json:"align_p,omitempty"`
	AlignQ    int    `json:"align_q,omitempty"`
	AlignX    int64  `json:"align_x,omitempty"`
	Partition bool   `json:"partition,omitempty"`

	// Near fields (KindNear).
	Size     int64     `json:"size,omitempty"`
	Affinity []ElemRef `json:"affinity,omitempty"`

	// BankProbe lists element indices whose banks the placement should
	// report (clamped to the array), so clients can verify affinity
	// without a query round-trip per element.
	BankProbe []int64 `json:"bank_probe,omitempty"`
}

// BatchAllocRequest submits allocations: POST /v1/machines/{id}/alloc.
type BatchAllocRequest struct {
	// BatchID is the optional idempotency key. A retried batch carrying
	// the ID of a batch the machine already committed returns the
	// original placements (Replayed set) instead of allocating again —
	// which is what makes client retries safe across server crashes.
	BatchID  string         `json:"batch_id,omitempty"`
	Requests []AllocRequest `json:"requests"`
}

// Placement is the layout the runtime chose for one request. A
// per-request failure sets Error and leaves the rest zero; the batch
// keeps executing.
type Placement struct {
	ID         string `json:"id"`
	Base       uint64 `json:"base"`
	ElemSize   int    `json:"elem_size"`
	ElemStride int    `json:"elem_stride"`
	NumElem    int64  `json:"num_elem"`
	// Interleave is the pool interleaving in bytes; 0 means the request
	// was served by the baseline allocator (fallback or non-AffAlloc
	// mode) with no placement control.
	Interleave int  `json:"interleave"`
	PageMapped bool `json:"page_mapped,omitempty"`
	StartBank  int  `json:"start_bank"`
	// Banks are the L3 banks of the elements named by BankProbe, in
	// request order.
	Banks []int  `json:"banks,omitempty"`
	Error string `json:"error,omitempty"`
}

// BatchAllocResponse returns one placement per request, in order.
type BatchAllocResponse struct {
	Version    string      `json:"version"`
	MachineID  string      `json:"machine_id"`
	Placements []Placement `json:"placements"`
	// Replayed marks a response served from the idempotency cache: the
	// batch was already committed and these are its original placements.
	Replayed bool `json:"replayed,omitempty"`
}

// FreeRequest releases allocations by ID: POST /v1/machines/{id}/free.
type FreeRequest struct {
	// BatchID is the optional idempotency key, as in BatchAllocRequest.
	BatchID string   `json:"batch_id,omitempty"`
	IDs     []string `json:"ids"`
}

// FreeResult reports one free outcome.
type FreeResult struct {
	ID    string `json:"id"`
	Error string `json:"error,omitempty"`
}

// FreeResponse returns one result per ID, in order.
type FreeResponse struct {
	Version   string       `json:"version"`
	MachineID string       `json:"machine_id"`
	Results   []FreeResult `json:"results"`
	// Replayed marks a response served from the idempotency cache.
	Replayed bool `json:"replayed,omitempty"`
}

// MachineInfoResponse is GET /v1/machines/{id}: identity plus serving
// counters and the open pools sorted by interleave.
type MachineInfoResponse struct {
	Version     string      `json:"version"`
	MachineID   string      `json:"machine_id"`
	Machine     MachineSpec `json:"machine"`
	Banks       int         `json:"banks"`
	LiveHandles int         `json:"live_handles"`
	Allocs      uint64      `json:"allocs"`
	Frees       uint64      `json:"frees"`
	AllocErrors uint64      `json:"alloc_errors"`
	Pools       []PoolInfo  `json:"pools,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

package affinityd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"affinityalloc/internal/telemetry"
)

// Client speaks the affinityd/v1 wire API. It is safe for concurrent
// use; each method is one HTTP round trip.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server base URL (e.g.
// "http://127.0.0.1:7077").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

// Register opens a machine.
func (c *Client) Register(spec MachineSpec) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.do("POST", "/v1/machines", RegisterRequest{Machine: spec}, &resp)
	return resp, err
}

// Deregister tears a machine down.
func (c *Client) Deregister(machineID string) error {
	return c.do("DELETE", "/v1/machines/"+machineID, nil, nil)
}

// MachineInfo fetches a machine's serving state.
func (c *Client) MachineInfo(machineID string) (MachineInfoResponse, error) {
	var resp MachineInfoResponse
	err := c.do("GET", "/v1/machines/"+machineID, nil, &resp)
	return resp, err
}

// OpenPool pre-opens an interleave pool.
func (c *Client) OpenPool(machineID string, interleave int) (OpenPoolResponse, error) {
	var resp OpenPoolResponse
	err := c.do("POST", "/v1/machines/"+machineID+"/pools", OpenPoolRequest{Interleave: interleave}, &resp)
	return resp, err
}

// Alloc submits a batch of allocation requests.
func (c *Client) Alloc(machineID string, reqs []AllocRequest) (BatchAllocResponse, error) {
	var resp BatchAllocResponse
	err := c.do("POST", "/v1/machines/"+machineID+"/alloc", BatchAllocRequest{Requests: reqs}, &resp)
	return resp, err
}

// Free releases allocations by ID.
func (c *Client) Free(machineID string, ids []string) (FreeResponse, error) {
	var resp FreeResponse
	err := c.do("POST", "/v1/machines/"+machineID+"/free", FreeRequest{IDs: ids}, &resp)
	return resp, err
}

// Metrics fetches and validates the server's metrics document.
func (c *Client) Metrics() (*telemetry.Document, error) {
	req, err := http.NewRequest("GET", c.base+"/metricsz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("affinityd: GET /metricsz: %s", resp.Status)
	}
	return telemetry.ParseDocument(data)
}

// Healthy reports whether the server answers /healthz.
func (c *Client) Healthy() bool {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("affinityd: %s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("affinityd: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

package affinityd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"affinityalloc/internal/backoff"
	"affinityalloc/internal/telemetry"
)

// DefaultRequestTimeout bounds a request when the caller's context
// carries no deadline of its own.
const DefaultRequestTimeout = 30 * time.Second

// defaultMaxRetries bounds the retry loop per call.
const defaultMaxRetries = 8

// APIError is a non-2xx wire reply, preserving the status and the
// server's Retry-After hint so the retry loop can honor both.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("affinityd: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("affinityd: HTTP %d", e.Status)
}

// Client speaks the affinityd/v1 wire API. Every method takes a
// context carrying the caller's deadline; there is no client-wide
// timeout — each request is bounded by its own context (or
// DefaultRequestTimeout when the context has none), and the remaining
// budget is propagated to the server so it can drop work nobody is
// waiting for.
//
// Idempotent calls (reads, pool opens, alloc/free batches carrying a
// batch ID) are retried on transport errors and 503s with saturating
// exponential backoff and jitter, honoring Retry-After. Batch IDs make
// the retries safe: a batch the server already committed returns its
// original placements instead of allocating twice. Register is never
// retried — it is the one call without an idempotency key.
//
// The Client is safe for concurrent use once configured.
type Client struct {
	base string
	hc   *http.Client

	// Timeout bounds each request when the caller's context has no
	// deadline. Zero means DefaultRequestTimeout.
	Timeout time.Duration
	// Retry is the backoff schedule between retryable failures.
	Retry backoff.Policy
	// MaxRetries bounds retries per call; negative disables retrying.
	MaxRetries int

	retries atomic.Uint64
}

// NewClient returns a client for a server base URL (e.g.
// "http://127.0.0.1:7077") with the default timeout and retry policy.
func NewClient(base string) *Client {
	return &Client{
		base: base,
		// No http.Client.Timeout: deadlines are per-request, from ctx.
		hc:         &http.Client{},
		Timeout:    DefaultRequestTimeout,
		Retry:      backoff.Policy{Base: 25 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5},
		MaxRetries: defaultMaxRetries,
	}
}

// Retries returns how many retry attempts this client has made — the
// chaos harness's measure of how much turbulence the stream absorbed.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Register opens a machine. Not retried: registration has no
// idempotency key, and retrying a reply that was lost in transit would
// open a second machine.
func (c *Client) Register(ctx context.Context, spec MachineSpec) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.do(ctx, "POST", "/v1/machines", RegisterRequest{Machine: spec}, &resp, false)
	return resp, err
}

// Deregister tears a machine down. Not retried (a lost reply would
// surface as 404 on retry, masking the success).
func (c *Client) Deregister(ctx context.Context, machineID string) error {
	return c.do(ctx, "DELETE", "/v1/machines/"+machineID, nil, nil, false)
}

// MachineInfo fetches a machine's serving state.
func (c *Client) MachineInfo(ctx context.Context, machineID string) (MachineInfoResponse, error) {
	var resp MachineInfoResponse
	err := c.do(ctx, "GET", "/v1/machines/"+machineID, nil, &resp, true)
	return resp, err
}

// OpenPool pre-opens an interleave pool (naturally idempotent: opening
// an open pool is a no-op server-side).
func (c *Client) OpenPool(ctx context.Context, machineID string, interleave int) (OpenPoolResponse, error) {
	var resp OpenPoolResponse
	err := c.do(ctx, "POST", "/v1/machines/"+machineID+"/pools", OpenPoolRequest{Interleave: interleave}, &resp, true)
	return resp, err
}

// Alloc submits a batch of allocation requests. A non-empty batchID is
// the idempotency key that makes retrying safe; with an empty one the
// call is not retried.
func (c *Client) Alloc(ctx context.Context, machineID, batchID string, reqs []AllocRequest) (BatchAllocResponse, error) {
	var resp BatchAllocResponse
	err := c.do(ctx, "POST", "/v1/machines/"+machineID+"/alloc",
		BatchAllocRequest{BatchID: batchID, Requests: reqs}, &resp, batchID != "")
	return resp, err
}

// Free releases allocations by ID, under the same idempotency contract
// as Alloc.
func (c *Client) Free(ctx context.Context, machineID, batchID string, ids []string) (FreeResponse, error) {
	var resp FreeResponse
	err := c.do(ctx, "POST", "/v1/machines/"+machineID+"/free",
		FreeRequest{BatchID: batchID, IDs: ids}, &resp, batchID != "")
	return resp, err
}

// Metrics fetches and validates the server's metrics document.
func (c *Client) Metrics(ctx context.Context) (*telemetry.Document, error) {
	var raw json.RawMessage
	if err := c.do(ctx, "GET", "/metricsz", nil, &raw, true); err != nil {
		return nil, err
	}
	return telemetry.ParseDocument(raw)
}

// Healthy reports liveness: the server process answers /healthz.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.probe(ctx, "/healthz")
}

// Ready reports readiness: the server answers /readyz 200, meaning it
// is neither replaying journals nor draining. A daemon can be Healthy
// but not Ready.
func (c *Client) Ready(ctx context.Context) bool {
	return c.probe(ctx, "/readyz")
}

func (c *Client) probe(ctx context.Context, path string) bool {
	err := c.once(ctx, "GET", path, nil, nil)
	return err == nil
}

// do is the retry loop around one logical call. Only idempotent calls
// retry, only on retryable failures (transport errors, 503), and the
// delay is the larger of the backoff schedule and the server's
// Retry-After hint.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	maxRetries := c.MaxRetries
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		if !idempotent || attempt >= maxRetries || !retryable(err) {
			return err
		}
		delay := c.Retry.Delay(attempt)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		c.retries.Add(1)
		if backoff.Sleep(ctx, delay) != nil {
			return err // deadline beat the backoff; report the real failure
		}
	}
}

// retryable classifies a failure. Context expiry is the caller's
// deadline — never retried. An APIError retries only on 503 (shed,
// replaying, restarting: all explicitly "come back later"). Anything
// else non-wire is a transport error (connection refused mid-restart,
// EOF from a killed daemon) and retries.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable
	}
	return true
}

// once is a single HTTP round trip: bound the context, propagate the
// deadline budget, classify the reply.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) error {
	if _, has := ctx.Deadline(); !has {
		timeout := c.Timeout
		if timeout <= 0 {
			timeout = DefaultRequestTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if deadline, ok := ctx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The transport wraps context errors; unwrap so the caller (and
		// the retry classifier) sees the deadline, not a URL error.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode}
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			ae.Msg = e.Error
		}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return fmt.Errorf("%s %s: %w", method, path, ae)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

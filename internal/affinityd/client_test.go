package affinityd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry is a test retry policy with no meaningful sleep.
var fastRetry = func(c *Client) *Client {
	c.Retry.Base = time.Millisecond
	c.Retry.Cap = 2 * time.Millisecond
	return c
}

// TestClientRetriesIdempotentOn503 pins the retry loop: a 503 on an
// idempotent call (an alloc carrying a batch ID) is retried until it
// succeeds; the same 503 on an alloc without a batch ID is not.
func TestClientRetriesIdempotentOn503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "shed"})
			return
		}
		writeJSON(w, http.StatusOK, BatchAllocResponse{Version: APIVersion})
	}))
	defer ts.Close()

	client := fastRetry(NewClient(ts.URL))
	if _, err := client.Alloc(bg, "m000001", "batch-1", []AllocRequest{{ID: "a"}}); err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two 503s then success)", got)
	}
	if got := client.Retries(); got != 2 {
		t.Errorf("client counted %d retries, want 2", got)
	}

	// No batch ID = not idempotent = the 503 surfaces immediately.
	calls.Store(0)
	var ae *APIError
	if _, err := client.Alloc(bg, "m000001", "", []AllocRequest{{ID: "a"}}); !errors.As(err, &ae) || ae.Status != 503 {
		t.Fatalf("got %v, want the raw 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-idempotent alloc was sent %d times, want 1", got)
	}
}

// TestClientRegisterNeverRetried pins that Register — the one call
// without an idempotency key — is not retried even on a retryable
// status: a lost reply must not open a second machine.
func TestClientRegisterNeverRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "not now"})
	}))
	defer ts.Close()

	client := fastRetry(NewClient(ts.URL))
	if _, err := client.Register(bg, MachineSpec{}); err == nil {
		t.Fatal("register against a 503 server succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("register was sent %d times, want exactly 1", got)
	}
}

// TestClientParsesRetryAfter pins that the server's Retry-After hint
// survives into the typed error the retry loop (and callers) see.
func TestClientParsesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "3")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "replaying"})
	}))
	defer ts.Close()

	client := NewClient(ts.URL)
	client.MaxRetries = -1
	var ae *APIError
	if _, err := client.MachineInfo(bg, "m000001"); !errors.As(err, &ae) {
		t.Fatalf("got %v, want *APIError", err)
	}
	if ae.Status != 503 || ae.RetryAfter != 3*time.Second {
		t.Errorf("APIError = %+v, want status 503, RetryAfter 3s", ae)
	}
}

// TestClientPropagatesDeadline pins deadline propagation: the remaining
// context budget rides the wire as a millisecond header, and with no
// caller deadline the client's default applies — never an unbounded
// request.
func TestClientPropagatesDeadline(t *testing.T) {
	var gotMs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get(deadlineHeader), 10, 64)
		gotMs.Store(ms)
		writeJSON(w, http.StatusOK, MachineInfoResponse{Version: APIVersion})
	}))
	defer ts.Close()
	client := NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(bg, 500*time.Millisecond)
	defer cancel()
	if _, err := client.MachineInfo(ctx, "m000001"); err != nil {
		t.Fatal(err)
	}
	if ms := gotMs.Load(); ms <= 0 || ms > 500 {
		t.Errorf("propagated %dms, want (0, 500]", ms)
	}

	// No caller deadline: the client default bounds the request.
	if _, err := client.MachineInfo(bg, "m000001"); err != nil {
		t.Fatal(err)
	}
	if ms := gotMs.Load(); ms <= 0 || ms > DefaultRequestTimeout.Milliseconds() {
		t.Errorf("default deadline propagated %dms, want (0, %d]", ms, DefaultRequestTimeout.Milliseconds())
	}
}

// TestClientRetriesTransportErrors pins failover across a dead daemon:
// connection-level failures retry (bounded by MaxRetries) instead of
// surfacing the first refused connection.
func TestClientRetriesTransportErrors(t *testing.T) {
	// A listener that was closed: every connection is refused.
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close()

	client := fastRetry(NewClient(ts.URL))
	client.MaxRetries = 2
	if _, err := client.MachineInfo(bg, "m000001"); err == nil {
		t.Fatal("request against a dead server succeeded")
	}
	if got := client.Retries(); got != 2 {
		t.Errorf("client made %d retries, want 2", got)
	}
}

// TestClientDeadlineBeatsRetry pins that an expired caller context ends
// the retry loop with the context error, not an endless backoff.
func TestClientDeadlineBeatsRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "shed"})
	}))
	defer ts.Close()

	client := NewClient(ts.URL)
	client.Retry.Base = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(bg, 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.MachineInfo(ctx, "m000001")
	if err == nil {
		t.Fatal("call against a permanently shedding server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ran %v past the 60ms deadline", elapsed)
	}
}

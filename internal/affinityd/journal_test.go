package affinityd

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestJournalRoundTrip pins the framing: records appended through the
// write side read back identically through the read side, in order,
// with consecutive sequence numbers.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := createJournal(dir, "m000001", false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Kind: recRegister, Spec: &MachineSpec{Seed: 7, Policy: "hybrid5"}},
		{Kind: recPool, Interleave: 64},
		{Kind: recAlloc, Batch: "b1", Allocs: []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}},
		{Kind: recFree, Batch: "b2", Frees: []string{"a"}},
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	lg, err := readJournal(journalPath(dir, "m000001"))
	if err != nil {
		t.Fatal(err)
	}
	if lg.torn {
		t.Error("clean journal reported torn")
	}
	if lg.machineID != "m000001" {
		t.Errorf("machine ID %q, want m000001", lg.machineID)
	}
	if len(lg.records) != len(recs) {
		t.Fatalf("read %d records, want %d", len(lg.records), len(recs))
	}
	for i, got := range lg.records {
		if got.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d, want %d", i, got.Seq, i+1)
		}
		if got.Kind != recs[i].Kind || got.Batch != recs[i].Batch {
			t.Errorf("record %d = %+v, want kind %q batch %q", i, got, recs[i].Kind, recs[i].Batch)
		}
	}
	if lg.records[2].Allocs[0].ID != "a" {
		t.Errorf("alloc payload lost: %+v", lg.records[2])
	}
}

// TestJournalTornTailTruncates pins the kill -9 contract: a final line
// cut short mid-write (no newline, or a complete-looking line whose CRC
// fails) is a torn tail — truncated and reported, never an error — and
// reopening resumes appending on the record boundary.
func TestJournalTornTailTruncates(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"no_newline", `deadbeef {"seq":3,"kind":"pool","interl`},
		{"bad_crc_last_line", `deadbeef {"seq":3,"kind":"pool","interleave":64}` + "\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := createJournal(dir, "m000001", false)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.append(&Record{Kind: recRegister, Spec: &MachineSpec{Seed: 1}}); err != nil {
				t.Fatal(err)
			}
			if err := j.append(&Record{Kind: recPool, Interleave: 64}); err != nil {
				t.Fatal(err)
			}
			j.close()
			path := journalPath(dir, "m000001")
			clean, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(clean, tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}

			lg, err := readJournal(path)
			if err != nil {
				t.Fatalf("torn tail must not fail the read: %v", err)
			}
			if !lg.torn {
				t.Fatal("torn tail not reported")
			}
			if len(lg.records) != 2 {
				t.Fatalf("read %d records, want the 2 committed ones", len(lg.records))
			}
			if lg.tornSize != int64(len(clean)) {
				t.Errorf("tornSize %d, want %d (the clean prefix)", lg.tornSize, len(clean))
			}

			// Reopen truncates and appending resumes at seq 3.
			j2, err := reopenJournal(path, 2, lg.tornSize, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.append(&Record{Kind: recPool, Interleave: 128}); err != nil {
				t.Fatal(err)
			}
			j2.close()
			lg2, err := readJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if lg2.torn || len(lg2.records) != 3 || lg2.records[2].Seq != 3 {
				t.Errorf("after reopen: torn=%v records=%d", lg2.torn, len(lg2.records))
			}
		})
	}
}

// TestJournalCorruptionFailsLoudly pins the loud-failure contract: a
// malformed record anywhere before the tail is corruption, reported as
// a typed *JournalError naming the file and line — never silently
// skipped.
func TestJournalCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	j, err := createJournal(dir, "m000001", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Record{
		{Kind: recRegister, Spec: &MachineSpec{Seed: 1}},
		{Kind: recPool, Interleave: 64},
		{Kind: recPool, Interleave: 128},
	} {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	path := journalPath(dir, "m000001")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the middle record's payload.
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[2])
	mid[len(mid)/2] ^= 0x01
	lines[2] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = readJournal(path)
	var jerr *JournalError
	if !errors.As(err, &jerr) {
		t.Fatalf("corrupt middle record returned %v, want a *JournalError", err)
	}
	if jerr.Path != path || jerr.Line != 3 {
		t.Errorf("error names %s:%d, want %s:3", jerr.Path, jerr.Line, path)
	}

	// Sequence gaps are corruption too: drop the middle record entirely.
	if err := os.WriteFile(path, []byte(lines[0]+lines[1]+lines[3]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJournal(path); !errors.As(err, &jerr) {
		t.Fatalf("sequence gap returned %v, want a *JournalError", err)
	}
}

// TestSnapshotRoundTrip pins snapshot atomicity plumbing: write, read
// back, and the missing-file case is (nil, nil).
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := snapshotPath(dir, "m000001")
	if snap, err := readSnapshot(path); snap != nil || err != nil {
		t.Fatalf("missing snapshot = (%v, %v), want (nil, nil)", snap, err)
	}
	want := &Snapshot{MachineID: "m000001", Seq: 42, Allocs: 30, Frees: 5,
		LiveHandles: 25, Batches: 10, StateSum: "00deadbeef000000"}
	if err := writeSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("snapshot round trip changed the value: %+v vs %+v", got, want)
	}

	// A malformed snapshot is loud, like a malformed journal.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var jerr *JournalError
	if _, err := readSnapshot(path); !errors.As(err, &jerr) {
		t.Errorf("malformed snapshot returned %v, want a *JournalError", err)
	}
}

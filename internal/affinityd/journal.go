package affinityd

// The write-ahead journal is what makes affinityd crash-safe: every
// state-changing operation a machine commits — its registration, pool
// opens, allocation batches, free batches — is appended to a
// per-machine journal file *before* it executes. Placements are a
// deterministic function of the machine spec and the ordered operation
// stream (the service-vs-library differential gate pins exactly this),
// so replaying the journal against a freshly built machine reconstructs
// byte-identical placement state: the same bases, banks, pool free
// lists, RNG state, counters, and idempotency dedup cache.
//
// Record framing is one line per record:
//
//	<crc32-ieee hex8> <canonical JSON>\n
//
// appended with a single unbuffered write syscall, so a kill -9 loses
// at most the record being written, never a committed one. A torn tail
// (final line without its newline, or a final line whose CRC/JSON no
// longer checks out — the signature of a write cut short) is truncated
// on recovery and reported; any malformed record *before* the tail is
// corruption, and recovery fails loudly with a typed *JournalError
// rather than silently serving a machine whose history is wrong.
//
// Snapshots (<machine>.snap, written atomically via rename every
// Options.SnapshotEvery records) are consistency checkpoints, not
// replay truncation: allocator state is history-dependent (seeded RNG,
// pool free lists), so byte-identical reconstruction requires replaying
// the full record stream. What a snapshot buys is a cross-check — at
// the snapshot's sequence number the replayed state must hash to the
// snapshot's state sum, or recovery fails loudly — plus a cheap summary
// an operator can read without replaying anything.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// journalMagic is the first line of every journal file, carrying the
// format version and the machine ID the file belongs to.
const journalMagic = "affinityd-journal/v1"

// Journal file suffixes under the journal directory.
const (
	journalExt  = ".waj"
	snapshotExt = ".snap"
)

// Journal record kinds, in the order a machine's life emits them.
const (
	recRegister = "register"
	recPool     = "pool"
	recAlloc    = "alloc"
	recFree     = "free"
)

// Record is one committed operation in a machine's write-ahead journal.
// Exactly one kind-specific payload is set.
type Record struct {
	// Seq numbers records 1..N consecutively within one journal; replay
	// refuses gaps and reordering.
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// Batch is the idempotency key of an alloc/free batch; replay
	// rebuilds the dedup cache from it so a client retry that lands
	// after a crash+restart still gets the original placements.
	Batch string `json:"batch,omitempty"`

	Spec       *MachineSpec   `json:"spec,omitempty"`       // recRegister
	Interleave int            `json:"interleave,omitempty"` // recPool
	Allocs     []AllocRequest `json:"allocs,omitempty"`     // recAlloc
	Frees      []string       `json:"frees,omitempty"`      // recFree
}

// JournalError reports a journal or snapshot that cannot be recovered
// from: a malformed record before the tail, a sequence gap, a header
// mismatch, or a snapshot whose state sum disagrees with replay. It is
// deliberately loud — serving a machine whose history is corrupt would
// corrupt placements silently.
type JournalError struct {
	Path   string
	Line   int // 1-based line in the file; 0 when not line-specific
	Reason string
}

func (e *JournalError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("affinityd: journal %s:%d: %s", e.Path, e.Line, e.Reason)
	}
	return fmt.Sprintf("affinityd: journal %s: %s", e.Path, e.Reason)
}

// journal is the append side, owned by the machine worker goroutine
// (or, during replay, by the recovery goroutine) — never shared.
type journal struct {
	path string
	f    *os.File
	seq  uint64
	sync bool // fsync after every append (power-loss durability)
}

// journalPath/snapshotPath name a machine's files under dir.
func journalPath(dir, machineID string) string {
	return filepath.Join(dir, machineID+journalExt)
}

func snapshotPath(dir, machineID string) string {
	return filepath.Join(dir, machineID+snapshotExt)
}

// createJournal starts a fresh journal for machineID, writing the
// header line. It fails if the file already exists — machine IDs are
// never reused, so an existing file means a registry/journal mismatch.
func createJournal(dir, machineID string, sync bool) (*journal, error) {
	path := journalPath(dir, machineID)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("affinityd: create journal: %w", err)
	}
	j := &journal{path: path, f: f, sync: sync}
	if _, err := f.WriteString(journalMagic + " " + machineID + "\n"); err != nil {
		f.Close()
		return nil, fmt.Errorf("affinityd: write journal header: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// reopenJournal opens an existing journal for appending after replay
// verified it, truncating a torn tail to tornSize first so the next
// append starts on a record boundary.
func reopenJournal(path string, lastSeq uint64, tornSize int64, sync bool) (*journal, error) {
	if tornSize >= 0 {
		if err := os.Truncate(path, tornSize); err != nil {
			return nil, fmt.Errorf("affinityd: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("affinityd: reopen journal: %w", err)
	}
	return &journal{path: path, f: f, seq: lastSeq, sync: sync}, nil
}

// append commits one record: assigns the next sequence number,
// marshals, and writes the framed line in a single syscall. The record
// is committed once append returns — the caller executes it only after.
func (j *journal) append(rec *Record) error {
	rec.Seq = j.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("affinityd: marshal journal record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("affinityd: append journal record: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("affinityd: sync journal: %w", err)
		}
	}
	j.seq = rec.Seq
	return nil
}

func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// journalLog is the read side: the verified contents of one journal
// file, ready to replay.
type journalLog struct {
	path      string
	machineID string
	records   []Record
	// tornSize is the byte offset the file must be truncated to before
	// appending resumes; -1 when the file ends cleanly.
	tornSize int64
	torn     bool
}

// readJournal parses and verifies a journal file. A torn tail is
// tolerated and reported via the returned log; everything else that is
// wrong fails with a typed *JournalError.
func readJournal(path string) (*journalLog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("affinityd: read journal: %w", err)
	}
	lg := &journalLog{path: path, tornSize: -1}

	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, &JournalError{Path: path, Line: 1, Reason: "missing header line"}
	}
	header := string(data[:nl])
	magic, machineID, ok := strings.Cut(header, " ")
	if !ok || magic != journalMagic || machineID == "" {
		return nil, &JournalError{Path: path, Line: 1,
			Reason: fmt.Sprintf("bad header %q (want %q <machine-id>)", header, journalMagic)}
	}
	lg.machineID = machineID

	offset := int64(nl + 1)
	rest := data[nl+1:]
	lineNo := 1
	for len(rest) > 0 {
		lineNo++
		end := bytes.IndexByte(rest, '\n')
		if end < 0 {
			// No terminating newline: the write was cut short. This can
			// only legally be the final record — and here it is, by
			// construction of the scan.
			lg.torn = true
			lg.tornSize = offset
			break
		}
		line := rest[:end]
		rec, perr := parseRecord(line)
		if perr != nil {
			if len(rest) == end+1 {
				// Complete-looking final line that fails its CRC or JSON:
				// still the signature of an interrupted append (the frame
				// bytes landed, the payload didn't). Truncate it away.
				lg.torn = true
				lg.tornSize = offset
				break
			}
			return nil, &JournalError{Path: path, Line: lineNo, Reason: perr.Error()}
		}
		if want := uint64(len(lg.records) + 1); rec.Seq != want {
			return nil, &JournalError{Path: path, Line: lineNo,
				Reason: fmt.Sprintf("sequence gap: record %d, want %d", rec.Seq, want)}
		}
		lg.records = append(lg.records, rec)
		offset += int64(end + 1)
		rest = rest[end+1:]
	}
	if len(lg.records) == 0 || lg.records[0].Kind != recRegister || lg.records[0].Spec == nil {
		return nil, &JournalError{Path: path, Line: 2,
			Reason: "journal does not begin with a register record"}
	}
	return lg, nil
}

// parseRecord decodes one framed line: crc32 hex, space, JSON payload.
func parseRecord(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("short or unframed record (%d bytes)", len(line))
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, fmt.Errorf("bad crc field %q", line[:8])
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return rec, fmt.Errorf("crc mismatch: computed %08x, recorded %08x", got, want)
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return rec, fmt.Errorf("record does not parse: %v", err)
	}
	switch rec.Kind {
	case recRegister, recPool, recAlloc, recFree:
	default:
		return rec, fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return rec, nil
}

// Snapshot is the periodic consistency checkpoint beside a journal: the
// serving counters and a hash of the live placement state at one
// sequence number. Replay verifies StateSum when it passes Seq; a
// mismatch means journal and snapshot disagree about history and
// recovery fails loudly.
type Snapshot struct {
	MachineID   string `json:"machine_id"`
	Seq         uint64 `json:"seq"`
	Allocs      uint64 `json:"allocs"`
	Frees       uint64 `json:"frees"`
	AllocErrors uint64 `json:"alloc_errors"`
	LiveHandles int    `json:"live_handles"`
	Batches     int    `json:"batches"` // committed idempotency keys
	StateSum    string `json:"state_sum"`
}

// stateSum hashes the live placement state — sorted (id, base, bytes)
// triples — into the checksum snapshots carry. FNV-64a is plenty: this
// guards against divergent replay, not adversaries.
func stateSum(handles map[string]*handle) string {
	ids := make([]string, 0, len(handles))
	for id := range handles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := fnv.New64a()
	for _, id := range ids {
		hd := handles[id]
		fmt.Fprintf(h, "%s=%x:%x\n", id, uint64(hd.base), hd.bytes)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeSnapshot writes snap atomically (temp file + rename), so a crash
// mid-snapshot leaves the previous snapshot intact, never a torn one.
func writeSnapshot(path string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("affinityd: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("affinityd: publish snapshot: %w", err)
	}
	return nil
}

// readSnapshot loads a snapshot; a missing file is (nil, nil) — having
// no snapshot yet is normal, a malformed one is not.
func readSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap Snapshot
	dec := json.NewDecoder(bufio.NewReader(f))
	if err := dec.Decode(&snap); err != nil {
		return nil, &JournalError{Path: path, Reason: fmt.Sprintf("snapshot does not parse: %v", err)}
	}
	if snap.Seq == 0 || snap.MachineID == "" || snap.StateSum == "" {
		return nil, &JournalError{Path: path, Reason: "snapshot missing seq, machine_id, or state_sum"}
	}
	return &snap, nil
}

package affinityd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
)

// Options parameterizes a Server.
type Options struct {
	// Defaults fills zero fields of every registered MachineSpec: the
	// server's -seed/-policy/-faults flags become the fleet defaults a
	// tenant inherits unless its registration overrides them.
	Defaults MachineSpec
}

// Server is the affinityd placement service: an http.Handler serving
// the affinityd/v1 wire API over a registry of tenant machines.
//
// The hot placement path takes no server-wide lock: machine lookup is
// an atomic load of a copy-on-write registry snapshot, and everything
// per-machine funnels into that machine's worker (see machine). The
// registration path — rare — serializes on regMu to republish the
// snapshot.
type Server struct {
	defaults MachineSpec
	start    time.Time

	regMu    sync.Mutex
	machines atomic.Pointer[map[string]*machine]
	nextID   atomic.Uint64
	closed   atomic.Bool

	mux *http.ServeMux

	// Serving counters, all lock-free.
	requests   atomic.Uint64
	errs       atomic.Uint64
	batches    atomic.Uint64
	placements telemetry.Hist // per-placement decision latency, ns
	wire       telemetry.Hist // per-request wire service latency, ns
}

// NewServer builds a server. Close releases its machines.
func NewServer(opts Options) *Server {
	s := &Server{defaults: opts.Defaults, start: time.Now()}
	empty := map[string]*machine{}
	s.machines.Store(&empty)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("POST /v1/machines", s.handleRegister)
	s.mux.HandleFunc("GET /v1/machines/{id}", s.handleMachineInfo)
	s.mux.HandleFunc("DELETE /v1/machines/{id}", s.handleDeregister)
	s.mux.HandleFunc("POST /v1/machines/{id}/pools", s.handleOpenPool)
	s.mux.HandleFunc("POST /v1/machines/{id}/alloc", s.handleAlloc)
	s.mux.HandleFunc("POST /v1/machines/{id}/free", s.handleFree)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
	s.wire.Observe(uint64(time.Since(start)))
}

// Close stops every machine worker. In-flight requests racing Close get
// a machine-closed error; call it after the HTTP server has drained.
func (s *Server) Close() {
	s.closed.Store(true)
	s.regMu.Lock()
	snap := *s.machines.Load()
	empty := map[string]*machine{}
	s.machines.Store(&empty)
	s.regMu.Unlock()
	for _, m := range snap {
		m.stop()
	}
}

// Requests returns the total wire requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// lookup resolves a machine lock-free.
func (s *Server) lookup(id string) *machine {
	return (*s.machines.Load())[id]
}

// buildConfig resolves a MachineSpec (with server defaults applied)
// into a validated sys.Config.
func buildConfig(spec MachineSpec) (sys.Config, error) {
	cfg := sys.DefaultConfig()
	if spec.MeshW > 0 {
		cfg.MeshW = spec.MeshW
	}
	if spec.MeshH > 0 {
		cfg.MeshH = spec.MeshH
	}
	cfg.Seed = spec.Seed
	pcfg, err := core.ParsePolicy(spec.Policy)
	if err != nil {
		return sys.Config{}, err
	}
	cfg.Policy = pcfg
	fspec, err := faults.Parse(spec.Faults)
	if err != nil {
		return sys.Config{}, err
	}
	cfg.Faults = fspec
	return cfg, nil
}

// merge fills zero fields of spec from the server defaults.
func (s *Server) merge(spec MachineSpec) MachineSpec {
	if spec.MeshW == 0 {
		spec.MeshW = s.defaults.MeshW
	}
	if spec.MeshH == 0 {
		spec.MeshH = s.defaults.MeshH
	}
	if spec.Seed == 0 {
		spec.Seed = s.defaults.Seed
	}
	if spec.Policy == "" {
		spec.Policy = s.defaults.Policy
	}
	if spec.Faults == "" {
		spec.Faults = s.defaults.Faults
	}
	return spec
}

// Register assembles and registers a machine, returning its wire
// description. It is the programmatic form of POST /v1/machines.
func (s *Server) Register(spec MachineSpec) (RegisterResponse, error) {
	spec = s.merge(spec)
	cfg, err := buildConfig(spec)
	if err != nil {
		return RegisterResponse{}, err
	}
	system, err := sys.New(cfg)
	if err != nil {
		return RegisterResponse{}, err
	}
	id := fmt.Sprintf("m%06d", s.nextID.Add(1))
	m := newMachine(id, spec, cfg, system, &s.placements, &s.batches)

	s.regMu.Lock()
	if s.closed.Load() {
		s.regMu.Unlock()
		m.stop()
		return RegisterResponse{}, errMachineClosed
	}
	old := *s.machines.Load()
	next := make(map[string]*machine, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = m
	s.machines.Store(&next)
	s.regMu.Unlock()

	resp := RegisterResponse{
		Version:   APIVersion,
		MachineID: id,
		MeshW:     cfg.MeshW,
		MeshH:     cfg.MeshH,
		Banks:     system.Mesh.Banks(),
	}
	if system.Faults != nil {
		resp.DeadBanks = system.Faults.DeadBankList()
	}
	return resp, nil
}

// deregister removes and stops a machine; reports whether it existed.
func (s *Server) deregister(id string) bool {
	s.regMu.Lock()
	old := *s.machines.Load()
	m, ok := old[id]
	if ok {
		next := make(map[string]*machine, len(old)-1)
		for k, v := range old {
			if k != id {
				next[k] = v
			}
		}
		s.machines.Store(&next)
	}
	s.regMu.Unlock()
	if ok {
		m.stop()
	}
	return ok
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": APIVersion})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, err := s.Register(req.Machine)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMachineInfo(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.infoResponse())
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.deregister(id) {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"version": APIVersion, "machine_id": id, "status": "deleted"})
}

func (s *Server) handleOpenPool(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req OpenPoolRequest
	if !s.decode(w, r, &req) {
		return
	}
	res, err := s.run(m, &job{openPool: req.Interleave})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	if res.err != nil {
		s.fail(w, http.StatusBadRequest, res.err)
		return
	}
	writeJSON(w, http.StatusOK, OpenPoolResponse{Version: APIVersion, MachineID: m.id, Pool: res.pool})
}

func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req BatchAllocRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	res, err := s.run(m, &job{allocs: req.Requests})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchAllocResponse{Version: APIVersion, MachineID: m.id, Placements: res.placements})
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req FreeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty free batch"))
		return
	}
	res, err := s.run(m, &job{frees: req.IDs})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FreeResponse{Version: APIVersion, MachineID: m.id, Results: res.freed})
}

// run submits a job and waits for its single reply.
func (s *Server) run(m *machine, j *job) (jobResult, error) {
	j.out = make(chan jobResult, 1)
	if err := m.submit(j); err != nil {
		return jobResult{}, err
	}
	res := <-j.out
	if res.err != nil && errors.Is(res.err, errMachineClosed) {
		return jobResult{}, res.err
	}
	return res, nil
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	doc := s.MetricsDocument()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = doc.WriteJSON(w)
}

// MetricsDocument exports the serving telemetry as the repository's
// standard schema-validated metrics Document: one "affinityd" cell with
// the server-wide counters and latency histograms, then one cell per
// machine, sorted by ID. The "cycles" scalar — a simulated-time concept
// the document schema requires — carries wall-clock nanoseconds of
// uptime here, the service's notion of elapsed time.
func (s *Server) MetricsDocument() *telemetry.Document {
	doc := &telemetry.Document{
		SchemaVersion: telemetry.SchemaVersion,
		Experiment:    "affinityd",
		Scale:         "service",
		Seed:          s.defaults.Seed,
	}
	snap := *s.machines.Load()

	r := telemetry.NewRegistry()
	r.Set("cycles", uint64(time.Since(s.start)))
	r.Set("requests", s.requests.Load())
	r.Set("request_errors", s.errs.Load())
	r.Set("batches_admitted", s.batches.Load())
	r.Set("machines", uint64(len(snap)))
	s.placements.Publish(r, "placement_latency_ns")
	s.wire.Publish(r, "request_latency_ns")
	doc.AddCell("affinityd", r.Snapshot())

	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := snap[id]
		r := telemetry.NewRegistry()
		r.Set("cycles", uint64(time.Since(m.created)))
		r.Set("allocs", m.allocs.Load())
		r.Set("frees", m.frees.Load())
		r.Set("alloc_errors", m.allocErrs.Load())
		r.Set("live_handles", uint64(m.handleCount.Load()))
		if pools := m.pools.infos(); len(pools) > 0 {
			interleaves := make([]uint64, len(pools))
			allocs := make([]uint64, len(pools))
			bytes := make([]uint64, len(pools))
			for i, p := range pools {
				interleaves[i] = uint64(p.Interleave)
				allocs[i] = p.Allocs
				bytes[i] = p.Bytes
			}
			r.SetSeries("pool_interleaves", interleaves)
			r.SetSeries("pool_allocs", allocs)
			r.SetSeries("pool_bytes", bytes)
		}
		doc.AddCell("machine/"+id, r.Snapshot())
	}
	return doc
}

// decode parses a JSON body, failing the request on error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// failSubmit maps submission errors: a closed machine is 503 (the
// tenant raced a teardown), anything else a plain 400.
func (s *Server) failSubmit(w http.ResponseWriter, err error) {
	if errors.Is(err, errMachineClosed) {
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	}
	s.fail(w, http.StatusBadRequest, err)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errs.Add(1)
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package affinityd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
)

// deadlineHeader carries the client's per-request deadline budget in
// whole milliseconds. The server enforces it server-side: the handler
// context expires with it, and the worker drops still-queued jobs whose
// deadline already passed instead of computing answers nobody awaits.
const deadlineHeader = "Affinityd-Timeout-Ms"

// retryAfterSeconds is the Retry-After hint on shed and not-ready 503s.
const retryAfterSeconds = 1

// Options parameterizes a Server.
type Options struct {
	// Defaults fills zero fields of every registered MachineSpec: the
	// server's -seed/-policy/-faults flags become the fleet defaults a
	// tenant inherits unless its registration overrides them.
	Defaults MachineSpec

	// JournalDir enables the per-machine write-ahead journal: every
	// committed batch is appended under this directory before it
	// executes, and Recover rebuilds byte-identical placement state
	// from it after a crash. Empty = in-memory only.
	JournalDir string
	// SnapshotEvery writes a consistency checkpoint beside each journal
	// every N committed records (default 256; negative disables).
	SnapshotEvery int
	// SyncWrites fsyncs every journal append. A kill -9 never loses
	// committed records even without it (appends are unbuffered single
	// writes); fsync is for surviving power loss at a latency cost.
	SyncWrites bool
	// QueueDepth bounds each machine's admission queue (default 256).
	// A full queue sheds with 503 + Retry-After instead of queueing
	// unboundedly.
	QueueDepth int
}

// defaultSnapshotEvery is the snapshot cadence when Options leaves
// SnapshotEvery zero.
const defaultSnapshotEvery = 256

// Server is the affinityd placement service: an http.Handler serving
// the affinityd/v1 wire API over a registry of tenant machines.
//
// The hot placement path takes no server-wide lock: machine lookup is
// an atomic load of a copy-on-write registry snapshot, and everything
// per-machine funnels into that machine's worker (see machine). The
// registration path — rare — serializes on regMu to republish the
// snapshot.
type Server struct {
	defaults MachineSpec
	opts     Options
	start    time.Time

	regMu    sync.Mutex
	machines atomic.Pointer[map[string]*machine]
	nextID   atomic.Uint64
	closed   atomic.Bool
	// draining marks a server between "stop sending me traffic"
	// (/readyz flips not-ready) and actual teardown, so load balancers
	// and retrying clients move on while in-flight requests finish.
	draining atomic.Bool
	// replayingN counts machines still replaying their journals;
	// /readyz reports not-ready until it reaches zero.
	replayingN atomic.Int64

	mux *http.ServeMux

	// Serving counters, all lock-free.
	requests        atomic.Uint64
	errs            atomic.Uint64
	batches         atomic.Uint64
	recoveredMach   atomic.Uint64
	replayedRecords atomic.Uint64
	placements      telemetry.Hist // per-placement decision latency, ns
	wire            telemetry.Hist // per-request wire service latency, ns
}

// NewServer builds a server. Close releases its machines. If
// opts.JournalDir is set, call Recover (or PrepareRecovery + Replay)
// before serving traffic to restore journaled machines.
func NewServer(opts Options) *Server {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	s := &Server{defaults: opts.Defaults, opts: opts, start: time.Now()}
	empty := map[string]*machine{}
	s.machines.Store(&empty)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("POST /v1/machines", s.handleRegister)
	s.mux.HandleFunc("GET /v1/machines/{id}", s.handleMachineInfo)
	s.mux.HandleFunc("DELETE /v1/machines/{id}", s.handleDeregister)
	s.mux.HandleFunc("POST /v1/machines/{id}/pools", s.handleOpenPool)
	s.mux.HandleFunc("POST /v1/machines/{id}/alloc", s.handleAlloc)
	s.mux.HandleFunc("POST /v1/machines/{id}/free", s.handleFree)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
	s.wire.Observe(uint64(time.Since(start)))
}

// Drain flips /readyz to not-ready without tearing anything down, so
// traffic moves elsewhere while in-flight requests finish. Call it when
// shutdown begins, before the HTTP server's graceful drain.
func (s *Server) Drain() {
	s.draining.Store(true)
}

// Close stops every machine worker. In-flight requests racing Close get
// a machine-closed error; call it after the HTTP server has drained.
func (s *Server) Close() {
	s.closed.Store(true)
	s.draining.Store(true)
	s.regMu.Lock()
	snap := *s.machines.Load()
	empty := map[string]*machine{}
	s.machines.Store(&empty)
	s.regMu.Unlock()
	for _, m := range snap {
		m.stop()
	}
}

// Requests returns the total wire requests served.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// lookup resolves a machine lock-free.
func (s *Server) lookup(id string) *machine {
	return (*s.machines.Load())[id]
}

// buildConfig resolves a MachineSpec (with server defaults applied)
// into a validated sys.Config.
func buildConfig(spec MachineSpec) (sys.Config, error) {
	cfg := sys.DefaultConfig()
	if spec.MeshW > 0 {
		cfg.MeshW = spec.MeshW
	}
	if spec.MeshH > 0 {
		cfg.MeshH = spec.MeshH
	}
	cfg.Seed = spec.Seed
	pcfg, err := core.ParsePolicy(spec.Policy)
	if err != nil {
		return sys.Config{}, err
	}
	cfg.Policy = pcfg
	fspec, err := faults.Parse(spec.Faults)
	if err != nil {
		return sys.Config{}, err
	}
	cfg.Faults = fspec
	return cfg, nil
}

// merge fills zero fields of spec from the server defaults.
func (s *Server) merge(spec MachineSpec) MachineSpec {
	if spec.MeshW == 0 {
		spec.MeshW = s.defaults.MeshW
	}
	if spec.MeshH == 0 {
		spec.MeshH = s.defaults.MeshH
	}
	if spec.Seed == 0 {
		spec.Seed = s.defaults.Seed
	}
	if spec.Policy == "" {
		spec.Policy = s.defaults.Policy
	}
	if spec.Faults == "" {
		spec.Faults = s.defaults.Faults
	}
	return spec
}

// machineOpts assembles the wiring a new machine shares with the server.
func (s *Server) machineOpts(id string, j *journal) machineOpts {
	o := machineOpts{
		queueDepth: s.opts.QueueDepth,
		journal:    j,
		snapEvery:  s.opts.SnapshotEvery,
		latency:    &s.placements,
		batches:    &s.batches,
	}
	if j != nil {
		o.snapPath = snapshotPath(s.opts.JournalDir, id)
	}
	return o
}

// Register assembles and registers a machine, returning its wire
// description. It is the programmatic form of POST /v1/machines.
func (s *Server) Register(spec MachineSpec) (RegisterResponse, error) {
	spec = s.merge(spec)
	cfg, err := buildConfig(spec)
	if err != nil {
		return RegisterResponse{}, err
	}
	system, err := sys.New(cfg)
	if err != nil {
		return RegisterResponse{}, err
	}
	id := fmt.Sprintf("m%06d", s.nextID.Add(1))

	var j *journal
	if s.opts.JournalDir != "" {
		// The journal records the *merged* spec: replay must rebuild
		// the machine a tenant actually got, not what a future restart's
		// fleet defaults would hand out.
		if j, err = createJournal(s.opts.JournalDir, id, s.opts.SyncWrites); err != nil {
			return RegisterResponse{}, err
		}
		if err := j.append(&Record{Kind: recRegister, Spec: &spec}); err != nil {
			j.close()
			return RegisterResponse{}, err
		}
	}
	m := newMachine(id, spec, cfg, system, s.machineOpts(id, j))

	if err := s.install(m); err != nil {
		m.stop()
		return RegisterResponse{}, err
	}

	resp := RegisterResponse{
		Version:   APIVersion,
		MachineID: id,
		MeshW:     cfg.MeshW,
		MeshH:     cfg.MeshH,
		Banks:     system.Mesh.Banks(),
	}
	if system.Faults != nil {
		resp.DeadBanks = system.Faults.DeadBankList()
	}
	return resp, nil
}

// install publishes a machine into the copy-on-write registry.
func (s *Server) install(m *machine) error {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.closed.Load() {
		return errMachineClosed
	}
	old := *s.machines.Load()
	next := make(map[string]*machine, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[m.id] = m
	s.machines.Store(&next)
	return nil
}

// deregister removes and stops a machine; reports whether it existed.
// A journaled machine's files are removed with it — deregistration is
// the tenant saying this placement history is over.
func (s *Server) deregister(id string) bool {
	s.regMu.Lock()
	old := *s.machines.Load()
	m, ok := old[id]
	if ok {
		next := make(map[string]*machine, len(old)-1)
		for k, v := range old {
			if k != id {
				next[k] = v
			}
		}
		s.machines.Store(&next)
	}
	s.regMu.Unlock()
	if ok {
		m.stop()
		if s.opts.JournalDir != "" {
			os.Remove(journalPath(s.opts.JournalDir, id))
			os.Remove(snapshotPath(s.opts.JournalDir, id))
		}
	}
	return ok
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": APIVersion})
}

// handleReadyz is readiness, distinct from liveness: a healthy daemon
// mid-replay or mid-drain answers /healthz 200 (don't restart me) and
// /readyz 503 (don't send me traffic yet / anymore).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if reason, ready := s.readiness(); !ready {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "not-ready", "reason": reason, "version": APIVersion,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "version": APIVersion})
}

// readiness reports whether the server should receive traffic.
func (s *Server) readiness() (reason string, ready bool) {
	if s.closed.Load() {
		return "closed", false
	}
	if s.draining.Load() {
		return "draining", false
	}
	if n := s.replayingN.Load(); n > 0 {
		return fmt.Sprintf("replaying %d machine journal(s)", n), false
	}
	return "", true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, err := s.Register(req.Machine)
	if err != nil {
		if errors.Is(err, errMachineClosed) {
			s.fail(w, http.StatusServiceUnavailable, err)
			return
		}
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMachineInfo(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.infoResponse())
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.deregister(id) {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"version": APIVersion, "machine_id": id, "status": "deleted"})
}

func (s *Server) handleOpenPool(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req OpenPoolRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := s.run(ctx, m, &job{openPool: req.Interleave})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	if res.err != nil {
		s.fail(w, http.StatusBadRequest, res.err)
		return
	}
	writeJSON(w, http.StatusOK, OpenPoolResponse{Version: APIVersion, MachineID: m.id, Pool: res.pool})
}

func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req BatchAllocRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := s.run(ctx, m, &job{allocs: req.Requests, batch: req.BatchID})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	if res.err != nil {
		s.fail(w, http.StatusConflict, res.err)
		return
	}
	writeJSON(w, http.StatusOK, BatchAllocResponse{
		Version: APIVersion, MachineID: m.id,
		Placements: res.placements, Replayed: res.replayed,
	})
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	m := s.lookup(r.PathValue("id"))
	if m == nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("unknown machine %q", r.PathValue("id")))
		return
	}
	var req FreeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty free batch"))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := s.run(ctx, m, &job{frees: req.IDs, batch: req.BatchID})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	if res.err != nil {
		s.fail(w, http.StatusConflict, res.err)
		return
	}
	writeJSON(w, http.StatusOK, FreeResponse{
		Version: APIVersion, MachineID: m.id,
		Results: res.freed, Replayed: res.replayed,
	})
}

// requestContext derives the handler context: the connection context,
// bounded further by the client's propagated deadline budget when the
// request carries one.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if v := r.Header.Get(deadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		}
	}
	return context.WithCancel(ctx)
}

// run submits a job and waits for its reply or the request deadline,
// whichever comes first. The worker's reply channel is buffered, so an
// abandoned job cannot wedge the worker; if the job was already
// journaled it will still execute (committed is committed) and a retry
// with the same batch ID collects the original result.
func (s *Server) run(ctx context.Context, m *machine, j *job) (jobResult, error) {
	j.ctx = ctx
	j.out = make(chan jobResult, 1)
	if err := m.submit(j); err != nil {
		return jobResult{}, err
	}
	select {
	case res := <-j.out:
		if res.err != nil {
			switch {
			case errors.Is(res.err, errMachineClosed),
				errors.Is(res.err, context.DeadlineExceeded),
				errors.Is(res.err, context.Canceled):
				return jobResult{}, res.err
			}
		}
		return res, nil
	case <-ctx.Done():
		return jobResult{}, ctx.Err()
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	doc := s.MetricsDocument()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = doc.WriteJSON(w)
}

// MetricsDocument exports the serving telemetry as the repository's
// standard schema-validated metrics Document: one "affinityd" cell with
// the server-wide counters and latency histograms, then one cell per
// machine, sorted by ID. The "cycles" scalar — a simulated-time concept
// the document schema requires — carries wall-clock nanoseconds of
// uptime here, the service's notion of elapsed time.
func (s *Server) MetricsDocument() *telemetry.Document {
	doc := &telemetry.Document{
		SchemaVersion: telemetry.SchemaVersion,
		Experiment:    "affinityd",
		Scale:         "service",
		Seed:          s.defaults.Seed,
	}
	snap := *s.machines.Load()

	var sheds, drops, dedups, snaps uint64
	for _, m := range snap {
		sheds += m.sheds.Load()
		drops += m.deadlineDrops.Load()
		dedups += m.dedupHits.Load()
		snaps += m.snapshots.Load()
	}

	r := telemetry.NewRegistry()
	r.Set("cycles", uint64(time.Since(s.start)))
	r.Set("requests", s.requests.Load())
	r.Set("request_errors", s.errs.Load())
	r.Set("batches_admitted", s.batches.Load())
	r.Set("machines", uint64(len(snap)))
	r.Set("sheds", sheds)
	r.Set("deadline_drops", drops)
	r.Set("batch_dedup_hits", dedups)
	r.Set("snapshots", snaps)
	r.Set("machines_recovered", s.recoveredMach.Load())
	r.Set("replayed_records", s.replayedRecords.Load())
	if _, ready := s.readiness(); ready {
		r.Set("ready", 1)
	} else {
		r.Set("ready", 0)
	}
	s.placements.Publish(r, "placement_latency_ns")
	s.wire.Publish(r, "request_latency_ns")
	doc.AddCell("affinityd", r.Snapshot())

	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := snap[id]
		r := telemetry.NewRegistry()
		r.Set("cycles", uint64(time.Since(m.created)))
		r.Set("allocs", m.allocs.Load())
		r.Set("frees", m.frees.Load())
		r.Set("alloc_errors", m.allocErrs.Load())
		r.Set("live_handles", uint64(m.handleCount.Load()))
		r.Set("sheds", m.sheds.Load())
		r.Set("deadline_drops", m.deadlineDrops.Load())
		r.Set("batch_dedup_hits", m.dedupHits.Load())
		if m.journal != nil || m.journalSeq.Load() > 0 {
			r.Set("journal_seq", m.journalSeq.Load())
			r.Set("snapshots", m.snapshots.Load())
		}
		if pools := m.pools.infos(); len(pools) > 0 {
			interleaves := make([]uint64, len(pools))
			allocs := make([]uint64, len(pools))
			bytes := make([]uint64, len(pools))
			for i, p := range pools {
				interleaves[i] = uint64(p.Interleave)
				allocs[i] = p.Allocs
				bytes[i] = p.Bytes
			}
			r.SetSeries("pool_interleaves", interleaves)
			r.SetSeries("pool_allocs", allocs)
			r.SetSeries("pool_bytes", bytes)
		}
		doc.AddCell("machine/"+id, r.Snapshot())
	}
	return doc
}

// decode parses a JSON body, failing the request on error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// failSubmit maps admission and execution-path errors onto the wire:
// shed and mid-replay are retryable 503s carrying Retry-After, a closed
// machine is a plain 503 (the tenant raced a teardown), an expired
// deadline is 504, anything else a plain 400.
func (s *Server) failSubmit(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errOverloaded), errors.Is(err, errReplaying):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errMachineClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.errs.Add(1)
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package affinityd

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// newJournaledServer builds a server journaling into dir, wired through
// httptest like newTestServer.
func newJournaledServer(t *testing.T, dir string, opts Options) (*Server, *Client, func()) {
	t.Helper()
	opts.JournalDir = dir
	srv := NewServer(opts)
	ts := httptest.NewServer(srv)
	stop := func() {
		ts.Close()
		srv.Close()
	}
	return srv, NewClient(ts.URL), stop
}

// drive pushes rounds of one seeded stream at a machine and returns
// every placement, in order.
func drive(t *testing.T, client *Client, machineID string, gen *StreamGen, rounds, perRound int) []Placement {
	t.Helper()
	var out []Placement
	for r := 0; r < rounds; r++ {
		st := gen.NextStep(perRound)
		resp, err := client.Alloc(bg, machineID, st.AllocBatch, st.Allocs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, resp.Placements...)
		if len(st.Frees) > 0 {
			if _, err := client.Free(bg, machineID, st.FreeBatch, st.Frees); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// TestCrashRecoveryDifferential is the durability tentpole gate: a
// journaled server is abandoned mid-stream with no shutdown of any kind
// (the in-process stand-in for kill -9 — nothing is flushed, closed, or
// drained), a fresh server recovers from the same journal directory,
// the stream continues, and every placement must be byte-identical to
// an uninterrupted run of the same seeded stream.
func TestCrashRecoveryDifferential(t *testing.T) {
	const seed, rounds, perRound, crashAt = 7, 24, 16, 11

	// The uninterrupted oracle.
	_, oracleClient := newTestServer(t)
	oreg, err := oracleClient.Register(bg, MachineSpec{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	oracle := drive(t, oracleClient, oreg.MachineID, NewStreamGen(seed, 0), rounds, perRound)

	// The crashed run: journal on, snapshots every few records so replay
	// crosses several checkpoints.
	dir := t.TempDir()
	srv1, client1, _ := newJournaledServer(t, dir, Options{SnapshotEvery: 5})
	reg, err := client1.Register(bg, MachineSpec{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewStreamGen(seed, 0)
	got := drive(t, client1, reg.MachineID, gen, crashAt, perRound)
	// Crash: the server object and its workers are simply abandoned.
	// Journal appends happened before each execution, so everything the
	// client saw is on disk. (The HTTP listener is left up too; it just
	// stops receiving requests, like a partitioned dead process.)
	_ = srv1

	// Restart on the same journal directory.
	srv2, client2, stop2 := newJournaledServer(t, dir, Options{SnapshotEvery: 5})
	stats, err := srv2.Recover()
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer stop2()
	if stats.Machines != 1 || stats.Records == 0 {
		t.Fatalf("recovery stats %+v, want 1 machine and replayed records", stats)
	}
	if stats.Snapshots == 0 {
		t.Fatalf("recovery stats %+v: replay never verified a snapshot", stats)
	}

	// The machine survives the crash under the same ID, and the stream
	// continues where it left off.
	info, err := client2.MachineInfo(bg, reg.MachineID)
	if err != nil {
		t.Fatalf("machine lost across crash: %v", err)
	}
	if info.Allocs == 0 {
		t.Fatal("recovered machine has empty counters")
	}
	got = append(got, drive(t, client2, reg.MachineID, gen, rounds-crashAt, perRound)...)

	wire, _ := json.Marshal(got)
	want, _ := json.Marshal(oracle)
	if !bytes.Equal(wire, want) {
		for i := range got {
			a, _ := json.Marshal(got[i])
			b, _ := json.Marshal(oracle[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("first divergence at placement %d:\n crashed run: %s\n oracle:      %s", i, a, b)
			}
		}
		t.Fatalf("placement streams differ in length: %d vs %d", len(got), len(oracle))
	}

	// New registrations must not collide with the recovered machine ID.
	reg2, err := client2.Register(bg, MachineSpec{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if reg2.MachineID == reg.MachineID {
		t.Fatalf("recovered server reissued machine ID %s", reg2.MachineID)
	}
}

// TestRecoverySpecPinning pins that replay rebuilds the machine from
// the journaled (merged) spec, not from the restarted server's fleet
// defaults: a machine registered under seed 7 defaults must place
// identically even when the recovering server's defaults changed.
func TestRecoverySpecPinning(t *testing.T) {
	const rounds, perRound = 6, 8
	dir := t.TempDir()
	_, client1, _ := newJournaledServer(t, dir, Options{Defaults: MachineSpec{Seed: 7}})
	reg, err := client1.Register(bg, MachineSpec{}) // inherits seed 7
	if err != nil {
		t.Fatal(err)
	}
	gen := NewStreamGen(7, 0)
	before := drive(t, client1, reg.MachineID, gen, rounds, perRound)

	// Restart with different defaults; history must win.
	srv2, client2, stop2 := newJournaledServer(t, dir, Options{Defaults: MachineSpec{Seed: 12345, Policy: "rnd"}})
	if _, err := srv2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer stop2()
	info, err := client2.MachineInfo(bg, reg.MachineID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Machine.Seed != 7 {
		t.Fatalf("recovered machine has seed %d, want the journaled 7", info.Machine.Seed)
	}
	if int(info.Allocs) != countOK(before) {
		t.Fatalf("recovered allocs %d, want %d", info.Allocs, countOK(before))
	}
}

func countOK(ps []Placement) int {
	n := 0
	for _, p := range ps {
		if p.Error == "" {
			n++
		}
	}
	return n
}

// TestReplayingMachineAnswers503 pins the not-ready surface: between
// PrepareRecovery and Replay a machine exists but serves nothing —
// requests get a retryable 503 with Retry-After (never 404), and
// /readyz reports not-ready while /healthz stays 200.
func TestReplayingMachineAnswers503(t *testing.T) {
	dir := t.TempDir()
	_, client1, _ := newJournaledServer(t, dir, Options{})
	reg, err := client1.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Alloc(bg, reg.MachineID, "b1", []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(Options{JournalDir: dir})
	ts := httptest.NewServer(srv2)
	defer ts.Close()
	defer srv2.Close()
	rec, err := srv2.PrepareRecovery()
	if err != nil {
		t.Fatal(err)
	}

	// Mid-replay: healthy but not ready.
	client2 := NewClient(ts.URL)
	client2.MaxRetries = -1 // observe the raw 503s, no retry
	if !client2.Healthy(bg) {
		t.Error("mid-replay server not healthy — /healthz is liveness, it must answer")
	}
	if client2.Ready(bg) {
		t.Error("mid-replay server claims ready")
	}

	body := `{"batch_id":"b2","requests":[{"id":"x","elem_size":4,"num_elem":64}]}`
	resp, err := http.Post(ts.URL+"/v1/machines/"+reg.MachineID+"/alloc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-replay alloc got %d, want 503 (a replaying machine must not 404)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("mid-replay 503 carries no Retry-After")
	}

	// The typed error surfaces through the client too.
	var ae *APIError
	if _, err := client2.Alloc(bg, reg.MachineID, "b2", []AllocRequest{{ID: "x", ElemSize: 4, NumElem: 64}}); !errors.As(err, &ae) || ae.Status != 503 || ae.RetryAfter <= 0 {
		t.Errorf("client saw %v, want *APIError with status 503 and Retry-After", err)
	}

	if _, err := rec.Replay(); err != nil {
		t.Fatal(err)
	}
	if !client2.Ready(bg) {
		t.Error("server not ready after replay completed")
	}
	if _, err := client2.Alloc(bg, reg.MachineID, "b2", []AllocRequest{{ID: "x", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Errorf("alloc after replay: %v", err)
	}
}

// TestDuplicateBatchReturnsOriginal pins the idempotency contract: a
// batch ID the machine already committed returns the original
// placements (marked replayed) instead of re-executing — within one
// server lifetime and across a crash+recovery.
func TestDuplicateBatchReturnsOriginal(t *testing.T) {
	dir := t.TempDir()
	_, client, _ := newJournaledServer(t, dir, Options{})
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 1 << 12, BankProbe: []int64{0, 7}}}
	first, err := client.Alloc(bg, reg.MachineID, "batch-1", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed {
		t.Error("first submission marked replayed")
	}

	// Same batch ID again — the id "a" is live now, so re-execution
	// would fail; the dedup cache must answer instead.
	dup, err := client.Alloc(bg, reg.MachineID, "batch-1", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Replayed {
		t.Error("duplicate not marked replayed")
	}
	a, _ := json.Marshal(first.Placements)
	b, _ := json.Marshal(dup.Placements)
	if !bytes.Equal(a, b) {
		t.Fatalf("duplicate returned different placements:\n first %s\n dup   %s", a, b)
	}

	// Across a crash: the dedup cache is rebuilt from the journal.
	srv2, client2, stop2 := newJournaledServer(t, dir, Options{})
	if _, err := srv2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer stop2()
	dup2, err := client2.Alloc(bg, reg.MachineID, "batch-1", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.Replayed {
		t.Error("post-recovery duplicate not marked replayed")
	}
	c, _ := json.Marshal(dup2.Placements)
	if !bytes.Equal(a, c) {
		t.Fatalf("post-recovery duplicate differs:\n first %s\n dup   %s", a, c)
	}

	// Free batches carry the same contract.
	f1, err := client2.Free(bg, reg.MachineID, "free-1", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := client2.Free(bg, reg.MachineID, "free-1", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Replayed {
		t.Error("duplicate free not marked replayed")
	}
	fa, _ := json.Marshal(f1.Results)
	fb, _ := json.Marshal(f2.Results)
	if !bytes.Equal(fa, fb) {
		t.Fatalf("duplicate free diverged: %s vs %s", fa, fb)
	}
}

// TestMalformedJournalRefusesStartup pins loud recovery failure end to
// end: corruption before the tail makes PrepareRecovery fail with a
// typed *JournalError, so the daemon refuses to start rather than
// serving a machine with a wrong history.
func TestMalformedJournalRefusesStartup(t *testing.T) {
	dir := t.TempDir()
	_, client, _ := newJournaledServer(t, dir, Options{})
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{{ID: string(rune('a' + i)), ElemSize: 4, NumElem: 64}}); err != nil {
			t.Fatal(err)
		}
	}
	path := journalPath(dir, reg.MachineID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[2])
	mid[len(mid)/2] ^= 0x01
	lines[2] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(Options{JournalDir: dir})
	defer srv2.Close()
	var jerr *JournalError
	if _, err := srv2.PrepareRecovery(); !errors.As(err, &jerr) {
		t.Fatalf("corrupt journal recovered with %v, want a *JournalError", err)
	}
	if jerr.Path != path {
		t.Errorf("error names %s, want %s", jerr.Path, path)
	}
}

// TestSnapshotMismatchFailsReplay pins the checkpoint cross-check: a
// snapshot whose state sum disagrees with replayed history fails Replay
// loudly instead of serving a machine whose past is ambiguous.
func TestSnapshotMismatchFailsReplay(t *testing.T) {
	dir := t.TempDir()
	_, client, _ := newJournaledServer(t, dir, Options{SnapshotEvery: 2})
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{{ID: string(rune('a' + i)), ElemSize: 4, NumElem: 64}}); err != nil {
			t.Fatal(err)
		}
	}
	spath := snapshotPath(dir, reg.MachineID)
	snap, err := readSnapshot(spath)
	if err != nil || snap == nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	snap.StateSum = "ffffffffffffffff"
	if err := writeSnapshot(spath, snap); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(Options{JournalDir: dir})
	defer srv2.Close()
	var jerr *JournalError
	if _, err := srv2.Recover(); !errors.As(err, &jerr) {
		t.Fatalf("state-sum mismatch recovered with %v, want a *JournalError", err)
	}
	if !strings.Contains(jerr.Reason, "state sum") {
		t.Errorf("error reason %q does not name the state sum", jerr.Reason)
	}
}

// TestDrainFlipsReadyz pins the drain surface: Drain makes /readyz
// answer 503 while /healthz stays 200 and traffic still completes.
func TestDrainFlipsReadyz(t *testing.T) {
	srv, client := newTestServer(t)
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !client.Ready(bg) {
		t.Fatal("fresh server not ready")
	}
	srv.Drain()
	if client.Ready(bg) {
		t.Error("draining server claims ready")
	}
	if !client.Healthy(bg) {
		t.Error("draining server must stay healthy (liveness)")
	}
	// In-flight work still completes during drain.
	if _, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Errorf("alloc during drain: %v", err)
	}
}

// TestRecoveredJournalKeepsAppending pins that the reopened journal is
// live: operations after recovery journal onto the same file and a
// second recovery replays them too.
func TestRecoveredJournalKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	_, client1, _ := newJournaledServer(t, dir, Options{})
	reg, err := client1.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Alloc(bg, reg.MachineID, "b1", []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Fatal(err)
	}

	srv2, client2, _ := newJournaledServer(t, dir, Options{})
	if _, err := srv2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := client2.Alloc(bg, reg.MachineID, "b2", []AllocRequest{{ID: "b", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Fatal(err)
	}
	// Give the worker a beat to journal the batch before the "crash".
	deadline := time.Now().Add(2 * time.Second)
	for {
		lg, err := readJournal(journalPath(dir, reg.MachineID))
		if err == nil && len(lg.records) >= 3 && !lg.torn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never reached 3 records: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv3, client3, stop3 := newJournaledServer(t, dir, Options{})
	if _, err := srv3.Recover(); err != nil {
		t.Fatal(err)
	}
	defer stop3()
	info, err := client3.MachineInfo(bg, reg.MachineID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Allocs != 2 || info.LiveHandles != 2 {
		t.Errorf("after two recoveries: allocs=%d live=%d, want 2/2", info.Allocs, info.LiveHandles)
	}
}

package affinityd

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWireRoundTrip pins that every wire type survives a JSON
// marshal/unmarshal unchanged — the compatibility contract of
// affinityd/v1.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		v    any
	}{
		{"register_request", &RegisterRequest{Machine: MachineSpec{
			MeshW: 4, MeshH: 4, Seed: 42, Policy: "hybrid5", Faults: "dead-banks=2",
		}}},
		{"register_response", &RegisterResponse{
			Version: APIVersion, MachineID: "m000001", MeshW: 8, MeshH: 8, Banks: 64, DeadBanks: []int{3, 17},
		}},
		{"open_pool", &OpenPoolResponse{
			Version: APIVersion, MachineID: "m000001",
			Pool: PoolInfo{Interleave: 64, Start: 1 << 40, Allocs: 9, Frees: 2, Bytes: 1 << 20},
		}},
		{"alloc_affine", &BatchAllocRequest{Requests: []AllocRequest{{
			ID: "a", ElemSize: 4, NumElem: 1 << 12, BankProbe: []int64{0, 100},
		}, {
			ID: "b", ElemSize: 8, NumElem: 1 << 12, AlignTo: "a", AlignP: 1, AlignQ: 2, AlignX: 256, Partition: true,
		}}}},
		{"alloc_near", &BatchAllocRequest{Requests: []AllocRequest{{
			ID: "n", Kind: KindNear, Size: 64,
			Affinity: []ElemRef{{Ref: "a", Elem: 500}, {Ref: "b", Elem: 7}},
		}}}},
		{"alloc_baseline", &BatchAllocRequest{Requests: []AllocRequest{{
			ID: "h", Mode: "In-Core", ElemSize: 4, NumElem: 1024,
		}}}},
		{"placements", &BatchAllocResponse{
			Version: APIVersion, MachineID: "m000001",
			Placements: []Placement{
				{ID: "a", Base: 1 << 40, ElemSize: 4, ElemStride: 4, NumElem: 1 << 12, Interleave: 64, StartBank: 5, Banks: []int{5, 9}},
				{ID: "bad", Error: "id \"bad\" is already a live allocation"},
			},
		}},
		{"free", &FreeResponse{
			Version: APIVersion, MachineID: "m000001",
			Results: []FreeResult{{ID: "a"}, {ID: "x", Error: "id \"x\" is not a live allocation"}},
		}},
		{"machine_info", &MachineInfoResponse{
			Version: APIVersion, MachineID: "m000001",
			Machine: MachineSpec{Seed: 42}, Banks: 64, LiveHandles: 3,
			Allocs: 10, Frees: 7, AllocErrors: 1,
			Pools: []PoolInfo{{Interleave: 64, Start: 1 << 40, Allocs: 10, Frees: 7, Bytes: 4096}},
		}},
		{"error", &ErrorResponse{Error: "unknown machine \"m999999\""}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data, err := json.Marshal(c.v)
			if err != nil {
				t.Fatal(err)
			}
			got := reflect.New(reflect.TypeOf(c.v).Elem()).Interface()
			if err := json.Unmarshal(data, got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(c.v, got) {
				t.Errorf("round trip changed the value:\n sent %+v\n got  %+v", c.v, got)
			}
		})
	}
}

// TestWireFieldNamesAreSnakeCase pins the JSON naming convention for
// every exported field of every wire type.
func TestWireFieldNamesAreSnakeCase(t *testing.T) {
	for _, typ := range wireTypes() {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if name == "" {
				t.Errorf("%s.%s has no json tag", typ.Name(), f.Name)
				continue
			}
			if strings.ToLower(name) != name {
				t.Errorf("%s.%s json name %q is not snake_case", typ.Name(), f.Name, name)
			}
		}
	}
}

// TestSchemaGolden renders the whole affinityd/v1 wire surface — every
// type, field, JSON name and Go type — and compares it against the
// committed schema document. A diff means the wire API changed: if the
// change is compatible (field additions), re-bless with -update; if it
// renames or removes fields, bump APIVersion instead.
func TestSchemaGolden(t *testing.T) {
	got := describeSchema()
	path := filepath.Join("testdata", "schema_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden schema)", err)
	}
	if got != string(want) {
		t.Errorf("wire schema drifted from %s.\nIf the change is intentional and compatible, re-bless with -update; otherwise bump APIVersion.\ngot:\n%s", path, got)
	}
}

// wireTypes lists every affinityd/v1 wire struct in a fixed order.
func wireTypes() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf(MachineSpec{}),
		reflect.TypeOf(RegisterRequest{}),
		reflect.TypeOf(RegisterResponse{}),
		reflect.TypeOf(OpenPoolRequest{}),
		reflect.TypeOf(PoolInfo{}),
		reflect.TypeOf(OpenPoolResponse{}),
		reflect.TypeOf(ElemRef{}),
		reflect.TypeOf(AllocRequest{}),
		reflect.TypeOf(BatchAllocRequest{}),
		reflect.TypeOf(Placement{}),
		reflect.TypeOf(BatchAllocResponse{}),
		reflect.TypeOf(FreeRequest{}),
		reflect.TypeOf(FreeResult{}),
		reflect.TypeOf(FreeResponse{}),
		reflect.TypeOf(MachineInfoResponse{}),
		reflect.TypeOf(ErrorResponse{}),
	}
}

func describeSchema() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s wire schema\n", APIVersion)
	fmt.Fprintf(&b, "# Generated by TestSchemaGolden (go test ./internal/affinityd -run TestSchemaGolden -update).\n")
	fmt.Fprintf(&b, "# Field additions are compatible; renames and removals require an APIVersion bump.\n")
	fmt.Fprintf(&b, "\nkinds: %s, %s\n", KindAffine, KindNear)
	routes := []string{
		"GET /healthz",
		"GET /readyz",
		"GET /metricsz",
		"POST /v1/machines",
		"GET /v1/machines/{id}",
		"DELETE /v1/machines/{id}",
		"POST /v1/machines/{id}/pools",
		"POST /v1/machines/{id}/alloc",
		"POST /v1/machines/{id}/free",
	}
	sort.Strings(routes)
	b.WriteString("\nroutes:\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	for _, typ := range wireTypes() {
		fmt.Fprintf(&b, "\n%s:\n", typ.Name())
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			name, rest, _ := strings.Cut(f.Tag.Get("json"), ",")
			opt := ""
			if strings.Contains(rest, "omitempty") {
				opt = " (omitempty)"
			}
			fmt.Fprintf(&b, "  %-14s %s%s\n", name, f.Type.String(), opt)
		}
	}
	return b.String()
}

package affinityd

import (
	"fmt"
	"math/rand"

	"affinityalloc/internal/sys"
)

// StreamGen produces one tenant's deterministic mixed alloc/free
// request stream: seeded, so the same (seed, stream) pair always yields
// the identical request sequence — the property the service-vs-library
// differential gate and the concurrent-clients determinism test build
// on, and what makes affload runs reproducible.
//
// The mix is placement-heavy with a live working set: mostly affine
// allocations (half of them carrying AlignTo edges into live arrays,
// some partitioned, some under baseline modes), a slice of irregular
// near-allocations with affinity edges, and frees that churn pool free
// lists.
type StreamGen struct {
	stream int
	rng    *rand.Rand
	next   int
	step   int

	// live affine AffAlloc handles, eligible as edge targets and frees.
	live []liveArray
}

type liveArray struct {
	id      string
	numElem int64
}

// NewStreamGen builds the generator for one stream of a seeded run.
func NewStreamGen(seed int64, stream int) *StreamGen {
	return &StreamGen{
		stream: stream,
		rng:    rand.New(rand.NewSource(seed<<16 ^ int64(stream)*0x9e3779b9)),
	}
}

// Step is one generated round: an allocation batch to POST to /alloc
// followed by IDs to POST to /free. AllocBatch and FreeBatch are the
// deterministic idempotency keys for the two wire calls: derived from
// (stream, step), so a retried or replayed step carries the same key
// and the server's dedup cache makes the retry exactly-once.
type Step struct {
	Allocs     []AllocRequest
	Frees      []string
	AllocBatch string
	FreeBatch  string
}

// NextStep generates the next round with n allocation requests.
func (g *StreamGen) NextStep(n int) Step {
	st := Step{
		AllocBatch: fmt.Sprintf("s%d-a%d", g.stream, g.step),
		FreeBatch:  fmt.Sprintf("s%d-f%d", g.stream, g.step),
	}
	g.step++
	for i := 0; i < n; i++ {
		st.Allocs = append(st.Allocs, g.nextAlloc())
	}
	// Free up to n/4 live handles, keeping a floor of live arrays so
	// affinity edges stay plentiful.
	for i := 0; i < n/4 && len(g.live) > 8; i++ {
		victim := g.rng.Intn(len(g.live))
		st.Frees = append(st.Frees, g.live[victim].id)
		g.live[victim] = g.live[len(g.live)-1]
		g.live = g.live[:len(g.live)-1]
	}
	return st
}

func (g *StreamGen) nextAlloc() AllocRequest {
	id := fmt.Sprintf("s%d-r%d", g.stream, g.next)
	g.next++
	p := g.rng.Float64()
	switch {
	case p < 0.10 && len(g.live) > 0:
		// Irregular allocation near up to 4 elements of live arrays.
		req := AllocRequest{
			ID:   id,
			Kind: KindNear,
			Size: int64(64 << g.rng.Intn(6)), // 64B..2KB
		}
		for k := g.rng.Intn(4) + 1; k > 0; k-- {
			t := g.live[g.rng.Intn(len(g.live))]
			req.Affinity = append(req.Affinity, ElemRef{Ref: t.id, Elem: g.rng.Int63n(t.numElem)})
		}
		return req
	case p < 0.15:
		// Baseline-mode allocation: placement-oblivious heap, never an
		// edge target.
		mode := sys.NearL3
		if g.rng.Intn(2) == 0 {
			mode = sys.InCore
		}
		return AllocRequest{
			ID:       id,
			Mode:     mode.String(),
			ElemSize: 4 << g.rng.Intn(2),
			NumElem:  int64(1024 << g.rng.Intn(4)),
		}
	}
	req := AllocRequest{
		ID:       id,
		ElemSize: 4 << g.rng.Intn(2), // 4 or 8
		NumElem:  int64(1024 << g.rng.Intn(6)),
		BankProbe: []int64{
			0, g.rng.Int63n(1024), 1 << 20, // clamped to the array
		},
	}
	switch q := g.rng.Float64(); {
	case q < 0.40 && len(g.live) > 0:
		// Inter-array affinity edge, occasionally with a P/Q index ratio.
		t := g.live[g.rng.Intn(len(g.live))]
		req.AlignTo = t.id
		if g.rng.Intn(4) == 0 {
			req.AlignP, req.AlignQ = 1, 2
		}
		if g.rng.Intn(4) == 0 {
			req.AlignX = g.rng.Int63n(t.numElem)
		}
	case q < 0.50:
		// Intra-array affinity (stencil-style rows).
		req.AlignX = int64(256 << g.rng.Intn(3))
	case q < 0.60:
		req.Partition = true
	}
	g.live = append(g.live, liveArray{id: id, numElem: req.NumElem})
	return req
}

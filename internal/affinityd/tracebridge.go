package affinityd

import (
	"errors"
	"fmt"

	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
)

// ErrNotWireExpressible marks scenarios that cannot be lowered to the
// wire API at all — forced-bank allocations (affine_bank/near_bank)
// bypass the policy in ways no wire request can ask for. Callers can
// errors.Is on it to skip such scenarios instead of failing.
var ErrNotWireExpressible = errors.New("not wire-expressible")

// This file bridges the wire API and the afftrace/v1 trace format in
// both directions:
//
//   - ScenarioFromStream lowers a StreamGen tenant stream into a trace
//     scenario, so the seeded wire workloads affload drives are also
//     record/replay/compose citizens.
//   - StepsFromScenario lifts a single-tenant scenario back into wire
//     batches, so a recorded trace can be replayed against a live
//     affinityd (affload -trace) and its wire placements compared with
//     the local trace.Replay — the wire≡library differential extended
//     to replayed streams.
//
// Both directions use the same event↔request lowering, so they are
// inverses over the wire-convertible event subset (affine/near/base
// allocations, frees, pool opens). Forced-bank ops have no wire
// counterpart and make StepsFromScenario fail.

// TraceStep is one wire round lowered from a trace scenario: pools to
// open first, then the allocation batch, then the frees — each batch
// carrying its deterministic idempotency key.
type TraceStep struct {
	Pools []int
	Step
}

// wireID names allocation ordinal n (1-based) on the wire.
func wireID(n int64) string { return fmt.Sprintf("a%d", n) }

// ScenarioFromStream lowers one StreamGen tenant stream — the identical
// seeded request sequence affload sends — into a single-tenant trace
// scenario. Wire request IDs become 1-based allocation ordinals;
// baseline-mode requests carry their mode on the event. The spec fills
// the scenario's machine header (zero fields mean server defaults).
func ScenarioFromStream(spec MachineSpec, seed int64, stream, ops, batch int) (*trace.Scenario, error) {
	if ops < 1 || batch < 1 {
		return nil, fmt.Errorf("affinityd: want ops/batch >= 1, got %d/%d", ops, batch)
	}
	cfg := sys.DefaultConfig()
	sc := &trace.Scenario{
		Label:  fmt.Sprintf("stream-%d", stream),
		Mode:   sys.AffAlloc.String(),
		MeshW:  cfg.MeshW,
		MeshH:  cfg.MeshH,
		Seed:   spec.Seed,
		Policy: spec.Policy,
		Faults: spec.Faults,
	}
	if spec.MeshW > 0 {
		sc.MeshW = spec.MeshW
	}
	if spec.MeshH > 0 {
		sc.MeshH = spec.MeshH
	}
	ids := map[string]int64{} // wire ID -> allocation ordinal
	gen := NewStreamGen(seed, stream)
	for sent := 0; sent < ops; {
		n := batch
		if rem := ops - sent; n > rem {
			n = rem
		}
		step := gen.NextStep(n)
		sent += n
		for i := range step.Allocs {
			e, err := eventFromRequest(&step.Allocs[i], ids)
			if err != nil {
				return nil, err
			}
			ids[step.Allocs[i].ID] = int64(len(ids)) + 1
			sc.Events = append(sc.Events, e)
		}
		for _, id := range step.Frees {
			ref, ok := ids[id]
			if !ok {
				return nil, fmt.Errorf("affinityd: stream frees unknown id %q", id)
			}
			sc.Events = append(sc.Events, trace.Event{Kind: trace.KindFree, Ref: ref})
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// eventFromRequest lowers one wire allocation request to a trace event.
func eventFromRequest(req *AllocRequest, ids map[string]int64) (trace.Event, error) {
	switch req.Kind {
	case "", KindAffine:
		e := trace.Event{
			Kind: trace.KindAlloc, Op: trace.OpAffine, Mode: req.Mode,
			ElemSize: req.ElemSize, NumElem: req.NumElem,
			AlignP: req.AlignP, AlignQ: req.AlignQ, AlignX: req.AlignX,
			Part: req.Partition,
		}
		if req.AlignTo != "" {
			ref, ok := ids[req.AlignTo]
			if !ok {
				return e, fmt.Errorf("affinityd: request %q aligns to unknown id %q", req.ID, req.AlignTo)
			}
			e.AlignRef = ref
		}
		return e, nil
	case KindNear:
		e := trace.Event{Kind: trace.KindAlloc, Op: trace.OpNear, Mode: req.Mode, Size: req.Size}
		for _, r := range req.Affinity {
			ref, ok := ids[r.Ref]
			if !ok {
				return e, fmt.Errorf("affinityd: request %q references unknown id %q", req.ID, r.Ref)
			}
			e.Affinity = append(e.Affinity, trace.Ref{Ref: ref, Elem: r.Elem})
		}
		return e, nil
	default:
		return trace.Event{}, fmt.Errorf("affinityd: request %q has unknown kind %q", req.ID, req.Kind)
	}
}

// StepsFromScenario lifts a single-tenant scenario's allocator events
// into wire rounds of at most batch allocations each, with frees and
// pool opens sequenced between batches exactly as they appear in the
// event stream. Allocation IDs are the trace ordinals, so affinity
// edges translate directly. Access/stream/preload summaries have no
// wire counterpart and are skipped; forced-bank allocations
// (affine_bank/near_bank) cannot be expressed on the wire and fail.
//
// Edges into allocations whose recorded outcome was a failure are
// dropped, mirroring replay's resolution rule — on the wire such a
// reference would reject the whole request rather than degrade it.
func StepsFromScenario(sc *trace.Scenario, batch int) ([]TraceStep, error) {
	if sc.NumTenants() > 1 {
		return nil, fmt.Errorf("affinityd: scenario %q is multi-tenant; replay tenants separately", sc.Label)
	}
	if batch < 1 {
		batch = 16
	}
	defMode, err := scenarioMode(sc)
	if err != nil {
		return nil, err
	}
	var steps []TraceStep
	cur := TraceStep{}
	seq := 0
	flush := func() {
		if len(cur.Pools) == 0 && len(cur.Allocs) == 0 && len(cur.Frees) == 0 {
			return
		}
		cur.AllocBatch = fmt.Sprintf("tr-a%d", seq)
		cur.FreeBatch = fmt.Sprintf("tr-f%d", seq)
		seq++
		steps = append(steps, cur)
		cur = TraceStep{}
	}
	var ord int64
	failed := map[int64]bool{}
	for i := range sc.Events {
		e := &sc.Events[i]
		switch e.Kind {
		case trace.KindOpenPool:
			// A pool open must keep its position relative to allocations:
			// pool spans are assigned at creation, so reordering would
			// shift every later placement.
			flush()
			cur.Pools = append(cur.Pools, e.Interleave)
		case trace.KindAlloc:
			// Frees already queued must land before this allocation.
			if len(cur.Frees) > 0 {
				flush()
			}
			ord++
			if e.Err != "" {
				failed[ord] = true
			}
			req, err := requestFromEvent(e, defMode, ord, failed)
			if err != nil {
				return nil, fmt.Errorf("affinityd: scenario %q: %w", sc.Label, err)
			}
			cur.Allocs = append(cur.Allocs, req)
			if len(cur.Allocs) >= batch {
				flush()
			}
		case trace.KindFree:
			if e.Ref <= 0 || failed[e.Ref] {
				continue // raw-address or failed-alloc free: nothing live on the wire
			}
			cur.Frees = append(cur.Frees, wireID(e.Ref))
		}
	}
	flush()
	return steps, nil
}

// scenarioMode resolves the scenario-level default mode, as Replay does
// with zero options.
func scenarioMode(sc *trace.Scenario) (sys.Mode, error) {
	if sc.Mode == "" {
		return sys.AffAlloc, nil
	}
	return sys.ParseMode(sc.Mode)
}

// effectiveMode is the mode one allocation event ran under: the event's
// own mode when set, the scenario default otherwise (replayAlloc's
// resolution rule).
func effectiveMode(e *trace.Event, def sys.Mode) sys.Mode {
	if e.Mode != "" {
		if m, err := sys.ParseMode(e.Mode); err == nil {
			return m
		}
	}
	return def
}

// requestFromEvent lifts one allocation event to a wire request whose
// server-side allocator call sequence matches the replay engine's:
//
//   - affine under any mode → affine request carrying that mode
//     (placeAffine and replayAlloc share the sys.Alloc entry point);
//   - near under Aff-Alloc → near request with the wire-expressible
//     affinity edges (both sides call sys.AllocNear);
//   - near under a baseline mode, and base allocations → a baseline-mode
//     affine request with ElemSize 1, which executes exactly
//     RT.AllocBase(size), the call replayAlloc makes for both.
func requestFromEvent(e *trace.Event, defMode sys.Mode, ord int64, failed map[int64]bool) (AllocRequest, error) {
	emode := effectiveMode(e, defMode)
	req := AllocRequest{ID: wireID(ord)}
	if emode != sys.AffAlloc {
		req.Mode = emode.String()
	}
	baseline := func(size int64) AllocRequest {
		req.ElemSize = 1
		req.NumElem = size
		if req.Mode == "" {
			// The event ran on the baseline allocator even though the
			// scenario mode is Aff-Alloc; any non-default mode routes the
			// wire request to the same RT.AllocBase call.
			req.Mode = sys.NearL3.String()
		}
		return req
	}
	switch e.Op {
	case trace.OpAffine:
		req.ElemSize = e.ElemSize
		req.NumElem = e.NumElem
		req.AlignP, req.AlignQ, req.AlignX = e.AlignP, e.AlignQ, e.AlignX
		req.Partition = e.Part
		if e.AlignRef > 0 && !failed[e.AlignRef] {
			req.AlignTo = wireID(e.AlignRef)
		}
		return req, nil
	case trace.OpNear:
		if emode != sys.AffAlloc {
			return baseline(e.Size), nil
		}
		req.Kind = KindNear
		req.Size = e.Size
		for _, r := range e.Affinity {
			if r.Ref <= 0 || r.Elem < 0 || failed[r.Ref] {
				continue // raw or byte-offset edges are not wire-expressible
			}
			req.Affinity = append(req.Affinity, ElemRef{Ref: wireID(r.Ref), Elem: r.Elem})
		}
		return req, nil
	case trace.OpBase:
		return baseline(e.Size), nil
	default:
		return req, fmt.Errorf("allocation %d: op %q: %w", ord, e.Op, ErrNotWireExpressible)
	}
}

// DiffReplay compares the wire placements a trace-driven run produced
// against the local replay of the same scenario, allocation by
// allocation, and describes every divergence. wire maps wire request IDs
// (wireID ordinals) to the placements the daemon returned.
//
// Error-ness, base address and interleave must always agree — they pin
// the allocator trajectory. Stride, start bank and page mapping are
// additionally compared for Aff-Alloc affine placements, where both
// sides report the runtime's layout record; for baseline and near
// placements the wire response carries derived values (BankOf remaps,
// chunk geometry) that the replay result intentionally leaves unset.
func DiffReplay(sc *trace.Scenario, res *trace.Result, wire map[string]Placement) ([]string, error) {
	defMode, err := scenarioMode(sc)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]trace.Placement, len(res.Placements))
	for _, p := range res.Placements {
		byID[p.ID] = p
	}
	var diffs []string
	var ord int64
	for i := range sc.Events {
		e := &sc.Events[i]
		if e.Kind != trace.KindAlloc {
			continue
		}
		ord++
		id := wireID(ord)
		rep, ok := byID[ord]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: replay produced no placement", id))
			continue
		}
		w, ok := wire[id]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: daemon returned no placement", id))
			continue
		}
		if (w.Error != "") != (rep.Err != "") {
			diffs = append(diffs, fmt.Sprintf("%s: wire error %q vs replay error %q", id, w.Error, rep.Err))
			continue
		}
		if w.Error != "" {
			continue
		}
		if w.Base != rep.Base || w.Interleave != rep.Interleave {
			diffs = append(diffs, fmt.Sprintf("%s: wire base=%#x il=%d vs replay base=%#x il=%d",
				id, w.Base, w.Interleave, rep.Base, rep.Interleave))
			continue
		}
		if e.Op == trace.OpAffine && effectiveMode(e, defMode) == sys.AffAlloc &&
			(w.ElemStride != rep.Stride || w.StartBank != rep.StartBank || w.PageMapped != rep.PageMapped) {
			diffs = append(diffs, fmt.Sprintf("%s: wire stride=%d bank=%d mapped=%v vs replay stride=%d bank=%d mapped=%v",
				id, w.ElemStride, w.StartBank, w.PageMapped, rep.Stride, rep.StartBank, rep.PageMapped))
		}
	}
	return diffs, nil
}

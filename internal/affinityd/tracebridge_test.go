package affinityd

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// TestStreamGenDeterminism pins the property every differential in this
// package builds on: the same (seed, stream) pair always generates the
// identical request sequence, and distinct pairs diverge.
func TestStreamGenDeterminism(t *testing.T) {
	cases := []struct {
		seed   int64
		stream int
		batch  int
	}{
		{seed: 1, stream: 0, batch: 16},
		{seed: 1, stream: 3, batch: 16},
		{seed: 42, stream: 0, batch: 7},
		{seed: 42, stream: 7, batch: 1},
	}
	collect := func(seed int64, stream, ops, batch int) []Step {
		gen := NewStreamGen(seed, stream)
		var steps []Step
		for sent := 0; sent < ops; {
			n := batch
			if rem := ops - sent; n > rem {
				n = rem
			}
			steps = append(steps, gen.NextStep(n))
			sent += n
		}
		return steps
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed%d_stream%d_batch%d", tc.seed, tc.stream, tc.batch), func(t *testing.T) {
			a := collect(tc.seed, tc.stream, 96, tc.batch)
			b := collect(tc.seed, tc.stream, 96, tc.batch)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same (seed, stream) produced different op streams")
			}
		})
	}
	if reflect.DeepEqual(collect(1, 0, 64, 16), collect(2, 0, 64, 16)) {
		t.Fatal("different seeds produced the identical op stream")
	}
	if reflect.DeepEqual(collect(1, 0, 64, 16), collect(1, 1, 64, 16)) {
		t.Fatal("different streams produced the identical op stream")
	}
}

// TestScenarioFromStreamRoundTrip lowers a stream to a trace scenario,
// round-trips it through both trace encodings, and checks that the
// re-lifted wire steps are identical — record/replay does not perturb
// the op stream.
func TestScenarioFromStreamRoundTrip(t *testing.T) {
	sc, err := ScenarioFromStream(MachineSpec{Seed: 7}, 7, 2, 96, 16)
	if err != nil {
		t.Fatal(err)
	}
	if n := sc.AllocCount(0); n != 96 {
		t.Fatalf("scenario has %d allocations, want 96", n)
	}
	steps, err := StepsFromScenario(sc, 16)
	if err != nil {
		t.Fatal(err)
	}

	for _, enc := range []struct {
		name   string
		encode func(*trace.Trace) []byte
	}{
		{"binary", trace.Encode},
		{"jsonl", trace.EncodeJSONL},
	} {
		t.Run(enc.name, func(t *testing.T) {
			blob := enc.encode(&trace.Trace{Scenarios: []*trace.Scenario{sc}})
			tr, err := trace.DecodeAny(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Scenarios) != 1 {
				t.Fatalf("decoded %d scenarios, want 1", len(tr.Scenarios))
			}
			again, err := StepsFromScenario(tr.Scenarios[0], 16)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(steps, again) {
				t.Fatal("wire steps changed across the encode/decode round trip")
			}
		})
	}
}

// TestStepsFromScenarioRejects covers the lowering's hard edges:
// multi-tenant compositions and forced-bank ops have no wire form.
func TestStepsFromScenarioRejects(t *testing.T) {
	a, err := ScenarioFromStream(MachineSpec{}, 1, 0, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScenarioFromStream(MachineSpec{}, 1, 1, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := trace.Compose([]*trace.Scenario{a, b}, trace.ComposeOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StepsFromScenario(multi, 16); err == nil {
		t.Fatal("multi-tenant scenario lowered without error")
	}

	forced := &trace.Scenario{
		Label: "forced", Mode: sys.AffAlloc.String(),
		Events: []trace.Event{
			{Kind: trace.KindAlloc, Op: trace.OpAffineBank, ElemSize: 4, NumElem: 64, Bank: 3},
		},
	}
	if _, err := StepsFromScenario(forced, 16); err == nil {
		t.Fatal("forced-bank op lowered without error")
	}
}

// driveBridgeSteps pushes lowered trace steps at a registered machine
// and returns the wire placements keyed by request ID (the test-side
// twin of affload -trace's driver).
func driveBridgeSteps(t *testing.T, client *Client, machineID string, steps []TraceStep) map[string]Placement {
	t.Helper()
	wire := make(map[string]Placement)
	for _, stp := range steps {
		for _, il := range stp.Pools {
			if _, err := client.OpenPool(bg, machineID, il); err != nil {
				t.Fatal(err)
			}
		}
		if len(stp.Allocs) > 0 {
			resp, err := client.Alloc(bg, machineID, stp.AllocBatch, stp.Allocs)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range resp.Placements {
				wire[p.ID] = p
			}
		}
		if len(stp.Frees) > 0 {
			if _, err := client.Free(bg, machineID, stp.FreeBatch, stp.Frees); err != nil {
				t.Fatal(err)
			}
		}
	}
	return wire
}

// requireTraceMatch drives sc against a fresh wire machine and requires
// the daemon's placements to match the local replay exactly.
func requireTraceMatch(t *testing.T, client *Client, sc *trace.Scenario) {
	t.Helper()
	steps, err := StepsFromScenario(sc, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := client.Register(bg, MachineSpec{
		MeshW: sc.MeshW, MeshH: sc.MeshH, Seed: sc.Seed,
		Policy: sc.Policy, Faults: sc.Faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Deregister(bg, reg.MachineID)
	wire := driveBridgeSteps(t, client, reg.MachineID, steps)

	res, err := trace.Replay(sc, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := DiffReplay(sc, res, wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("%s: %s", sc.Label, d)
	}
	if len(wire) == 0 {
		t.Fatal("no placement made it to the wire")
	}
}

// TestTraceDrivenWireMatchesReplay is the trace-driven wire≡library
// differential: a seeded tenant stream lowered to a scenario and driven
// through a live server must place byte-identically to the local replay
// engine — including the near, baseline-mode and AlignTo edge cases the
// generator mixes in, and under a degraded machine.
func TestTraceDrivenWireMatchesReplay(t *testing.T) {
	_, client := newTestServer(t)
	for _, tc := range []struct {
		name   string
		spec   MachineSpec
		stream int
	}{
		{name: "default", spec: MachineSpec{Seed: 7}, stream: 0},
		{name: "policy_rnd", spec: MachineSpec{Seed: 11, Policy: "rnd"}, stream: 1},
		{name: "faulted", spec: MachineSpec{Seed: 3, Faults: "dead-banks=2"}, stream: 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ScenarioFromStream(tc.spec, tc.spec.Seed, tc.stream, 128, 16)
			if err != nil {
				t.Fatal(err)
			}
			requireTraceMatch(t, client, sc)
		})
	}
}

// TestRecordedWorkloadWireMatchesReplay closes the loop with a real
// recorded workload: a trace recorded from the simulator (what affsim
// -record writes) replays against a live daemon placement-identically.
func TestRecordedWorkloadWireMatchesReplay(t *testing.T) {
	cfg := sys.DefaultConfig()
	cfg.Seed = 5
	rec := trace.NewRecorder("vecadd")
	if _, err := workloads.RunTraced(cfg, workloads.VecAdd{N: 1 << 12, ForceDelta: -1}, sys.AffAlloc, rec); err != nil {
		t.Fatal(err)
	}
	sc := rec.Scenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t)
	requireTraceMatch(t, client, sc)
}

// TestDiffReplayFlagsDivergence makes sure the differential is not
// vacuous: a perturbed wire placement must be reported.
func TestDiffReplayFlagsDivergence(t *testing.T) {
	sc, err := ScenarioFromStream(MachineSpec{Seed: 7}, 7, 0, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Replay(sc, trace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire := make(map[string]Placement, len(res.Placements))
	for _, p := range res.Placements {
		wp := Placement{
			ID: fmt.Sprintf("a%d", p.ID), Base: p.Base, Interleave: p.Interleave,
			ElemStride: p.Stride, StartBank: p.StartBank, PageMapped: p.PageMapped,
			Error: p.Err,
		}
		wire[wp.ID] = wp
	}
	diffs, err := DiffReplay(sc, res, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("faithful wire copy reported diffs: %v", diffs)
	}

	mut := wire["a1"]
	mut.Base ^= 0x40
	wire["a1"] = mut
	diffs, err = DiffReplay(sc, res, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !bytes.Contains([]byte(diffs[0]), []byte("a1")) {
		t.Fatalf("perturbed base not reported exactly once: %v", diffs)
	}
}

package affinityd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
)

// bg is the default request context tests drive client calls with.
var bg = context.Background()

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, NewClient(ts.URL)
}

// TestServerEndToEnd walks the whole wire API once: register, open a
// pool, place an affinity graph in one batch, read it back, free it,
// deregister.
func TestServerEndToEnd(t *testing.T) {
	srv, client := newTestServer(t)

	if !client.Healthy(bg) {
		t.Fatal("server not healthy")
	}
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Version != APIVersion || reg.Banks == 0 || reg.MachineID == "" {
		t.Fatalf("bad register response: %+v", reg)
	}

	pool, err := client.OpenPool(bg, reg.MachineID, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Pool.Interleave != 64 || pool.Pool.Start == 0 {
		t.Fatalf("bad pool: %+v", pool.Pool)
	}

	// One batch carrying an affinity hint graph: b and c align to a, n
	// near an element of a — edges reference IDs placed earlier in the
	// same batch.
	probes := []int64{0, 100, 4095}
	resp, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{
		{ID: "a", ElemSize: 4, NumElem: 1 << 12, BankProbe: probes},
		{ID: "b", ElemSize: 4, NumElem: 1 << 12, AlignTo: "a", BankProbe: probes},
		{ID: "c", ElemSize: 8, NumElem: 1 << 12, AlignTo: "a", BankProbe: probes},
		{ID: "n", Kind: KindNear, Size: 64, Affinity: []ElemRef{{Ref: "a", Elem: 500}}},
		{ID: "h", Mode: "In-Core", ElemSize: 4, NumElem: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placements) != 5 {
		t.Fatalf("got %d placements, want 5", len(resp.Placements))
	}
	byID := map[string]Placement{}
	for _, p := range resp.Placements {
		if p.Error != "" {
			t.Fatalf("placement %s failed: %s", p.ID, p.Error)
		}
		byID[p.ID] = p
	}
	// The Fig-8 contract over the wire: aligned arrays report the same
	// probe banks, and the double-width array doubles its interleaving.
	for i := range probes {
		if byID["a"].Banks[i] != byID["b"].Banks[i] || byID["a"].Banks[i] != byID["c"].Banks[i] {
			t.Errorf("probe %d not colocated: a=%v b=%v c=%v", i, byID["a"].Banks, byID["b"].Banks, byID["c"].Banks)
		}
	}
	if byID["c"].Interleave != 2*byID["a"].Interleave {
		t.Errorf("c interleave %d, want double a's %d", byID["c"].Interleave, byID["a"].Interleave)
	}
	if byID["h"].Interleave != 0 {
		t.Errorf("baseline placement reports interleave %d, want 0", byID["h"].Interleave)
	}

	info, err := client.MachineInfo(bg, reg.MachineID)
	if err != nil {
		t.Fatal(err)
	}
	if info.LiveHandles != 5 || info.Allocs != 5 {
		t.Errorf("info = %+v, want 5 live handles / 5 allocs", info)
	}

	free, err := client.Free(bg, reg.MachineID, "", []string{"n", "h", "c", "b", "a", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range free.Results {
		if (r.Error != "") != (r.ID == "ghost") {
			t.Errorf("free %s: error %q", r.ID, r.Error)
		}
	}

	doc, err := client.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Errorf("metrics document invalid: %v", err)
	}
	if srv.Requests() == 0 {
		t.Error("request counter never moved")
	}

	if err := client.Deregister(bg, reg.MachineID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.MachineInfo(bg, reg.MachineID); err == nil {
		t.Error("deregistered machine still answers")
	}
}

// TestServerRejectsBadRequests pins the error surface: unknown
// machines, unknown fields (wire compatibility is explicit, not
// accidental), bad kinds, dead edges, empty batches.
func TestServerRejectsBadRequests(t *testing.T) {
	_, client := newTestServer(t)
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Alloc(bg, "m999999", "", []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 8}}); err == nil {
		t.Error("alloc on unknown machine succeeded")
	}
	if _, err := client.Alloc(bg, reg.MachineID, "", nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := client.Register(bg, MachineSpec{Policy: "nonsense"}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := client.Register(bg, MachineSpec{Faults: "nonsense"}); err == nil {
		t.Error("bad fault spec accepted")
	}
	if _, err := client.OpenPool(bg, reg.MachineID, -64); err == nil {
		t.Error("negative interleave accepted")
	}

	// Per-request failures don't fail the batch.
	resp, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{
		{ID: "ok", ElemSize: 4, NumElem: 8},
		{ID: "", ElemSize: 4, NumElem: 8},
		{ID: "ok", ElemSize: 4, NumElem: 8}, // duplicate live ID
		{ID: "k", Kind: "wat"},
		{ID: "e", ElemSize: 4, NumElem: 8, AlignTo: "ghost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := []bool{false, true, true, true, true}
	for i, p := range resp.Placements {
		if (p.Error != "") != wantErr[i] {
			t.Errorf("placement %d: error %q, want error=%v", i, p.Error, wantErr[i])
		}
	}

	// Unknown fields are rejected — compatibility is versioned, not silent.
	ts := httptest.NewServer(NewServer(Options{}))
	defer ts.Close()
	body := `{"machine": {"seed": 1, "wat": true}}`
	hresp, err := http.Post(ts.URL+"/v1/machines", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field got %d, want 400", hresp.StatusCode)
	}
}

// directExec replays a request stream straight against sys.System — an
// independent reimplementation of the placement semantics with no
// affinityd serving machinery, used as the differential oracle.
type directExec struct {
	s        *sys.System
	infos    map[string]*core.ArrayInfo
	bases    map[string]memsim.Addr
	baseline map[string]bool
}

func newDirectExec(t *testing.T, spec MachineSpec) *directExec {
	t.Helper()
	cfg, err := buildConfig(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &directExec{
		s:        s,
		infos:    map[string]*core.ArrayInfo{},
		bases:    map[string]memsim.Addr{},
		baseline: map[string]bool{},
	}
}

func (d *directExec) alloc(req AllocRequest) Placement {
	fail := func(err error) Placement { return Placement{ID: req.ID, Error: err.Error()} }
	if req.Kind == KindNear {
		var addrs []memsim.Addr
		for _, ref := range req.Affinity {
			info := d.infos[ref.Ref]
			if info == nil {
				return fail(fmt.Errorf("affinity ref %q is not a live allocation", ref.Ref))
			}
			addrs = append(addrs, info.ElemAddr(clampElem(ref.Elem, info.NumElem)))
		}
		base, err := d.s.AllocNear(req.Size, addrs)
		if err != nil {
			return fail(err)
		}
		chunk, _ := d.s.RT.ChunkOf(base)
		d.bases[req.ID] = base
		p := Placement{
			ID: req.ID, Base: uint64(base), ElemSize: int(req.Size),
			ElemStride: chunk, NumElem: 1, Interleave: chunk,
			StartBank: d.s.BankOf(base),
		}
		for range req.BankProbe {
			p.Banks = append(p.Banks, p.StartBank)
		}
		return p
	}
	mode := sys.AffAlloc
	if req.Mode != "" {
		var err error
		if mode, err = sys.ParseMode(req.Mode); err != nil {
			return fail(err)
		}
	}
	spec := core.AffineSpec{
		ElemSize: req.ElemSize, NumElem: req.NumElem,
		AlignP: req.AlignP, AlignQ: req.AlignQ, AlignX: req.AlignX,
		Partition: req.Partition,
	}
	if req.AlignTo != "" {
		target := d.infos[req.AlignTo]
		if target == nil {
			return fail(fmt.Errorf("align_to %q is not a live allocation", req.AlignTo))
		}
		spec.AlignTo = target.Base
	}
	info, err := d.s.Alloc(mode, spec)
	if err != nil {
		return fail(err)
	}
	d.bases[req.ID] = info.Base
	if mode == sys.AffAlloc {
		d.infos[req.ID] = info
	} else {
		d.baseline[req.ID] = true
	}
	p := Placement{
		ID: req.ID, Base: uint64(info.Base), ElemSize: info.ElemSize,
		ElemStride: info.ElemStride, NumElem: info.NumElem,
		Interleave: info.Interleave, PageMapped: info.PageMapped,
		StartBank: info.StartBank,
	}
	if mode != sys.AffAlloc {
		p.StartBank = d.s.BankOf(info.Base)
	}
	for _, i := range req.BankProbe {
		p.Banks = append(p.Banks, d.s.BankOf(info.ElemAddr(clampElem(i, info.NumElem))))
	}
	return p
}

func (d *directExec) free(id string) {
	base, ok := d.bases[id]
	if !ok {
		return
	}
	if !d.baseline[id] {
		_ = d.s.Free(base)
	}
	delete(d.bases, id)
	delete(d.infos, id)
	delete(d.baseline, id)
}

// TestDifferentialServiceVsLibrary is the tentpole gate: an identical
// seeded request stream yields byte-identical placements via the wire
// API and via direct sys.System calls.
func TestDifferentialServiceVsLibrary(t *testing.T) {
	const seed, rounds, perRound = 7, 24, 16
	spec := MachineSpec{Seed: seed}

	_, client := newTestServer(t)
	reg, err := client.Register(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	var viaWire []Placement
	gen := NewStreamGen(seed, 0)
	steps := make([]Step, rounds)
	for r := range steps {
		steps[r] = gen.NextStep(perRound)
		resp, err := client.Alloc(bg, reg.MachineID, "", steps[r].Allocs)
		if err != nil {
			t.Fatal(err)
		}
		viaWire = append(viaWire, resp.Placements...)
		if len(steps[r].Frees) > 0 {
			if _, err := client.Free(bg, reg.MachineID, "", steps[r].Frees); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Replay the identical stream through the library.
	d := newDirectExec(t, spec)
	var viaLib []Placement
	for _, st := range steps {
		for _, req := range st.Allocs {
			viaLib = append(viaLib, d.alloc(req))
		}
		for _, id := range st.Frees {
			d.free(id)
		}
	}

	wire, err := json.MarshalIndent(viaWire, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := json.MarshalIndent(viaLib, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, lib) {
		for i := range viaWire {
			if i < len(viaLib) && fmt.Sprintf("%+v", viaWire[i]) != fmt.Sprintf("%+v", viaLib[i]) {
				t.Logf("first divergence at placement %d:\n wire %+v\n lib  %+v", i, viaWire[i], viaLib[i])
				break
			}
		}
		t.Fatalf("placements differ between wire API and direct library calls (%d wire, %d lib)", len(viaWire), len(viaLib))
	}
	if len(viaWire) != rounds*perRound {
		t.Fatalf("got %d placements, want %d", len(viaWire), rounds*perRound)
	}
}

// TestConcurrentClientsDeterminism runs several tenant streams
// concurrently against one server and checks every stream's placements
// are byte-identical to a sequential replay on a fresh server —
// concurrency must not leak into placement decisions. Run under -race
// this also exercises the lock-free registry and the worker handoff.
func TestConcurrentClientsDeterminism(t *testing.T) {
	const seed, streams, rounds, perRound = 11, 4, 8, 8

	runStream := func(client *Client, stream int) ([]byte, error) {
		reg, err := client.Register(bg, MachineSpec{Seed: seed + int64(stream)})
		if err != nil {
			return nil, err
		}
		gen := NewStreamGen(seed, stream)
		var got []Placement
		for r := 0; r < rounds; r++ {
			st := gen.NextStep(perRound)
			resp, err := client.Alloc(bg, reg.MachineID, "", st.Allocs)
			if err != nil {
				return nil, err
			}
			got = append(got, resp.Placements...)
			if len(st.Frees) > 0 {
				if _, err := client.Free(bg, reg.MachineID, "", st.Frees); err != nil {
					return nil, err
				}
			}
		}
		return json.Marshal(got)
	}

	_, concClient := newTestServer(t)
	concurrent := make([][]byte, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i], errs[i] = runStream(concClient, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}

	_, seqClient := newTestServer(t)
	for i := 0; i < streams; i++ {
		sequential, err := runStream(seqClient, i)
		if err != nil {
			t.Fatalf("sequential stream %d: %v", i, err)
		}
		if !bytes.Equal(concurrent[i], sequential) {
			t.Errorf("stream %d placements differ between concurrent and sequential serving", i)
		}
	}
}

// TestServerCloseDrains pins teardown: a closed server answers
// submissions with 503, and Close returns only after workers stopped.
func TestServerCloseDrains(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)

	reg, err := client.Register(bg, MachineSpec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := client.Alloc(bg, reg.MachineID, "", []AllocRequest{{ID: "b", ElemSize: 4, NumElem: 64}}); err == nil {
		t.Error("alloc after Close succeeded")
	}
	if _, err := client.Register(bg, MachineSpec{Seed: 3}); err == nil {
		t.Error("register after Close succeeded")
	}
}

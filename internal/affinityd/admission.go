package affinityd

// Admission control is what keeps an overloaded or restarting affinityd
// degrading gracefully instead of falling over: every machine owns a
// bounded job queue, a full queue sheds immediately (the wire answers
// 503 + Retry-After and the client retry loop backs off), a machine
// mid-replay refuses work with the same retryable shape, and jobs whose
// request deadline already expired are dropped by the worker instead of
// burning placement time on an answer nobody is waiting for.

import "context"

// defaultQueueDepth bounds a machine's admission queue when Options
// leaves QueueDepth zero. With ≤32-job admission rounds this is several
// rounds of headroom; past it the machine is genuinely behind and
// shedding beats queueing.
const defaultQueueDepth = 256

// job is one admitted unit of work: an allocation batch, a free batch,
// or a pool-open. Exactly one jobResult is delivered per job.
type job struct {
	allocs   []AllocRequest
	frees    []string
	openPool int
	// batch is the idempotency key of an alloc/free batch ("" = none):
	// a duplicate returns the committed result instead of re-executing.
	batch string
	// ctx carries the request deadline; the worker drops jobs whose
	// deadline expired before execution (but never after the journal
	// append — an appended record is committed and always executes).
	ctx context.Context
	// block is a test hook: a non-nil channel holds the worker inside
	// exec until it is closed, so tests can fill the admission queue.
	// entered, if also non-nil, is closed by the worker on entry — the
	// only reliable signal that the admission drain loop is done and
	// later submissions really queue behind the wedged worker.
	block   chan struct{}
	entered chan struct{}
	out     chan jobResult
}

type jobResult struct {
	placements []Placement
	freed      []FreeResult
	pool       PoolInfo
	// replayed marks a response served from the idempotency dedup cache
	// rather than fresh execution.
	replayed bool
	err      error
}

// admitMax bounds how many queued jobs one admission round coalesces.
const defaultAdmitMax = 32

// submit hands a job to the worker. The reply arrives on j.out exactly
// once, whether the job executed or the machine closed underneath it.
// A machine mid-replay refuses with errReplaying; a full queue sheds
// with errOverloaded — both retryable, both mapped to 503 on the wire.
func (m *machine) submit(j *job) error {
	m.inflight.Add(1)
	defer m.inflight.Done()
	if m.closing.Load() {
		return errMachineClosed
	}
	if m.replaying.Load() {
		return errReplaying
	}
	select {
	case m.jobs <- j:
		return nil
	case <-m.quit:
		return errMachineClosed
	default:
		// The queue is full: shed now. The bounded queue is the whole
		// point — an overloaded machine answers "come back later" in
		// microseconds instead of letting latency grow without bound.
		m.sheds.Add(1)
		return errOverloaded
	}
}

// serve is the worker loop: one goroutine owns the machine's placement
// state, admitting queued jobs in batches so concurrent tenant streams
// amortize the queue handoff, and executing them in admission order —
// which is what keeps a seeded request stream deterministic.
func (m *machine) serve() {
	defer close(m.done)
	for {
		var first *job
		select {
		case first = <-m.jobs:
		case <-m.quit:
			m.drainAndFail()
			return
		}
		batch := []*job{first}
		for len(batch) < defaultAdmitMax {
			select {
			case j := <-m.jobs:
				batch = append(batch, j)
			default:
				goto admitted
			}
		}
	admitted:
		m.batches.Add(1)
		for _, j := range batch {
			j.out <- m.exec(j)
		}
	}
}

// drainAndFail answers every job still queued at teardown. inflight
// waits for submitters that already passed the closing check; after it
// returns, nothing else can enter the channel.
func (m *machine) drainAndFail() {
	m.inflight.Wait()
	for {
		select {
		case j := <-m.jobs:
			j.out <- jobResult{err: errMachineClosed}
		default:
			return
		}
	}
}

package affinityd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/telemetry"
)

// errMachineClosed is returned for submissions racing a machine
// teardown (DELETE or server shutdown).
var errMachineClosed = errors.New("affinityd: machine closed")

// errReplaying is returned for submissions against a machine still
// replaying its journal after a restart: the placement state is not yet
// reconstructed, so serving would answer from the wrong history. The
// wire maps it to 503 + Retry-After, never 404 — the machine exists.
var errReplaying = errors.New("affinityd: machine is replaying its journal")

// errOverloaded is returned when a machine's bounded admission queue is
// full: the server sheds the request (503 + Retry-After) instead of
// queueing unboundedly. The client retry loop backs off and resubmits.
var errOverloaded = errors.New("affinityd: admission queue full")

// poolDomain is the serving-side bookkeeping of one interleave pool.
// Each pool is its own lock domain: an allocation touches only the
// domain of the pool its placement landed in, so traffic across pools
// never contends, and metric scrapes lock one pool at a time.
type poolDomain struct {
	interleave int
	start      uint64

	mu     sync.Mutex
	allocs uint64
	frees  uint64
	bytes  uint64
}

func (d *poolDomain) recordAlloc(bytes int64) {
	d.mu.Lock()
	d.allocs++
	d.bytes += uint64(bytes)
	d.mu.Unlock()
}

func (d *poolDomain) recordFree() {
	d.mu.Lock()
	d.frees++
	d.mu.Unlock()
}

func (d *poolDomain) info() PoolInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PoolInfo{
		Interleave: d.interleave,
		Start:      d.start,
		Allocs:     d.allocs,
		Frees:      d.frees,
		Bytes:      d.bytes,
	}
}

// poolTable maps interleave -> domain. Lookup of an existing domain
// takes only the table's read lock (shared, uncontended after warmup);
// the write lock is taken once per pool lifetime, at creation.
type poolTable struct {
	mu      sync.RWMutex
	domains map[int]*poolDomain
}

func (t *poolTable) domain(interleave int, start uint64) *poolDomain {
	t.mu.RLock()
	d := t.domains[interleave]
	t.mu.RUnlock()
	if d != nil {
		return d
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.domains == nil {
		t.domains = make(map[int]*poolDomain)
	}
	if d = t.domains[interleave]; d == nil {
		d = &poolDomain{interleave: interleave, start: start}
		t.domains[interleave] = d
	}
	return d
}

// infos snapshots every domain, sorted by interleave for deterministic
// rendering.
func (t *poolTable) infos() []PoolInfo {
	t.mu.RLock()
	domains := make([]*poolDomain, 0, len(t.domains))
	for _, d := range t.domains {
		domains = append(domains, d)
	}
	t.mu.RUnlock()
	sort.Slice(domains, func(i, j int) bool { return domains[i].interleave < domains[j].interleave })
	out := make([]PoolInfo, len(domains))
	for i, d := range domains {
		out[i] = d.info()
	}
	return out
}

// handle is one live allocation. Handles are owned by the machine's
// worker goroutine; nothing else reads or writes them.
type handle struct {
	base memsim.Addr
	// info is the layout record for affine AffAlloc placements; nil for
	// near chunks and baseline-heap allocations.
	info *core.ArrayInfo
	// chunk is the placement-unit size for near allocations; 0 otherwise.
	chunk int
	// baseline marks non-AffAlloc (conventional heap) allocations, which
	// cannot be freed through the runtime or used as affinity targets.
	baseline bool
	bytes    int64
}

// machine is one registered tenant machine: a full simulated system
// plus the serving state around it. Placement state (the sys.System,
// the handle table, the batch dedup cache, and the journal append side)
// is owned by a single goroutine — the worker once serving, the
// recovery goroutine during replay — while reads that the wire API
// serves concurrently (pool stats, counters) live in the sharded
// poolTable and atomics.
type machine struct {
	id      string
	spec    MachineSpec
	cfg     sys.Config
	sys     *sys.System
	created time.Time

	jobs    chan *job
	quit    chan struct{}
	done    chan struct{}
	closing atomic.Bool
	// replaying marks a machine whose journal is still being replayed
	// after a restart; submissions get errReplaying until it clears.
	replaying atomic.Bool
	// started records whether the worker goroutine is running (false
	// while replaying), so stop knows whether to wait for it.
	started atomic.Bool
	// inflight tracks submitters between the closing check and the
	// channel send, so teardown can drain every admitted job.
	inflight sync.WaitGroup

	// handles is worker-owned: IDs of live allocations.
	handles map[string]*handle

	// Idempotency dedup, worker-owned. seen is the complete set of
	// committed batch IDs (rebuilt from the journal on recovery);
	// results keeps the batchResultCap most recent batch outcomes so a
	// retried batch returns its original placements byte-identically.
	seen    map[string]struct{}
	results map[string]jobResult
	order   []string

	// journal is the machine's write-ahead append side; nil when the
	// server runs without -journal. Owned by whichever goroutine owns
	// the placement state. journalSeq mirrors journal.seq for lock-free
	// metric scrapes.
	journal    *journal
	journalSeq atomic.Uint64
	snapPath   string
	snapEvery  int
	sinceSnap  int
	snapshots  atomic.Uint64

	pools         poolTable
	allocs        atomic.Uint64
	frees         atomic.Uint64
	allocErrs     atomic.Uint64
	handleCount   atomic.Int64
	sheds         atomic.Uint64
	deadlineDrops atomic.Uint64
	dedupHits     atomic.Uint64

	// latency is the server-wide placement-latency histogram (shared
	// across machines; the worker observes one sample per placement).
	latency *telemetry.Hist
	batches *atomic.Uint64 // admitted batches, server-wide
}

// batchResultCap bounds the cached batch results per machine: the
// idempotency *window*. Batch IDs beyond it are still recognized as
// committed (never re-executed), but their cached response has aged
// out, so a very late retry gets a named error instead of placements.
const batchResultCap = 4096

// machineOpts carries the server-side wiring a machine is built with.
type machineOpts struct {
	queueDepth int
	journal    *journal // nil = journaling off
	snapPath   string
	snapEvery  int
	latency    *telemetry.Hist
	batches    *atomic.Uint64
	// replaying builds the machine in replay mode: the worker is not
	// started and submissions 503 until finishReplay.
	replaying bool
}

func newMachine(id string, spec MachineSpec, cfg sys.Config, s *sys.System, o machineOpts) *machine {
	if o.queueDepth <= 0 {
		o.queueDepth = defaultQueueDepth
	}
	m := &machine{
		id:        id,
		spec:      spec,
		cfg:       cfg,
		sys:       s,
		created:   time.Now(),
		jobs:      make(chan *job, o.queueDepth),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		handles:   make(map[string]*handle),
		seen:      make(map[string]struct{}),
		results:   make(map[string]jobResult),
		journal:   o.journal,
		snapPath:  o.snapPath,
		snapEvery: o.snapEvery,
		latency:   o.latency,
		batches:   o.batches,
	}
	if m.journal != nil {
		m.journalSeq.Store(m.journal.seq)
	}
	if o.replaying {
		m.replaying.Store(true)
		return m
	}
	m.startWorker()
	return m
}

// startWorker begins serving; placement-state ownership passes to the
// worker goroutine.
func (m *machine) startWorker() {
	m.started.Store(true)
	go m.serve()
}

// finishReplay flips a recovered machine into serving: replay has
// reconstructed the placement state, the journal is reopened for
// appends, and the worker takes ownership.
func (m *machine) finishReplay() {
	m.replaying.Store(false)
	m.startWorker()
}

// stop tears the machine down: new submissions fail, queued jobs are
// answered with errMachineClosed, the worker exits, and the journal is
// closed.
func (m *machine) stop() {
	if m.closing.CompareAndSwap(false, true) {
		close(m.quit)
	}
	if m.started.Load() {
		<-m.done
	}
	_ = m.journal.close()
}

// exec runs one job against the owned placement state: deadline check,
// idempotency dedup, write-ahead journal append, then execution. The
// append happens strictly before execution — a journaled record is a
// committed operation, and replay re-executes exactly the committed
// prefix. Conversely a job dropped before its append (expired deadline,
// journal write failure) has provably not executed, so the client may
// retry it freely.
func (m *machine) exec(j *job) jobResult {
	if j.block != nil {
		if j.entered != nil {
			close(j.entered)
		}
		<-j.block // test hook: hold the worker to fill the queue
	}
	if j.ctx != nil {
		if err := j.ctx.Err(); err != nil {
			m.deadlineDrops.Add(1)
			return jobResult{err: err}
		}
	}
	if j.batch != "" {
		if res, ok := m.committed(j.batch); ok {
			return res
		}
	}
	if m.journal != nil {
		if rec := recordForJob(j); rec != nil {
			if err := m.journal.append(rec); err != nil {
				return jobResult{err: err}
			}
			m.journalSeq.Store(m.journal.seq)
		}
	}
	res := m.apply(j)
	if j.batch != "" {
		m.remember(j.batch, res)
	}
	m.maybeSnapshot()
	return res
}

// committed answers a duplicate batch ID from the dedup cache. The
// operation is never re-executed; a retry whose result has aged out of
// the window gets a named error instead of double-allocating.
func (m *machine) committed(batch string) (jobResult, bool) {
	if _, ok := m.seen[batch]; !ok {
		return jobResult{}, false
	}
	m.dedupHits.Add(1)
	res, ok := m.results[batch]
	if !ok {
		return jobResult{err: fmt.Errorf(
			"affinityd: batch %q already committed, but its result aged out of the %d-batch idempotency window",
			batch, batchResultCap)}, true
	}
	res.replayed = true
	return res, true
}

// remember caches a committed batch's outcome, evicting the oldest
// cached result past batchResultCap. seen is never evicted: committed
// IDs stay recognized for the machine's lifetime.
func (m *machine) remember(batch string, res jobResult) {
	if _, dup := m.seen[batch]; dup {
		return
	}
	m.seen[batch] = struct{}{}
	m.results[batch] = res
	m.order = append(m.order, batch)
	if len(m.order) > batchResultCap {
		evict := m.order[0]
		m.order = m.order[1:]
		delete(m.results, evict)
	}
}

// recordForJob builds the journal record for a state-changing job; nil
// for jobs that need no durability.
func recordForJob(j *job) *Record {
	switch {
	case j.openPool != 0:
		return &Record{Kind: recPool, Interleave: j.openPool}
	case len(j.frees) > 0:
		return &Record{Kind: recFree, Batch: j.batch, Frees: j.frees}
	case len(j.allocs) > 0:
		return &Record{Kind: recAlloc, Batch: j.batch, Allocs: j.allocs}
	}
	return nil
}

// applyRecord replays one committed record during recovery: the same
// execution path as serving (apply + remember), minus re-journaling.
// Operation-level failures are not recovery failures — a journaled
// batch that failed deterministically fails identically on replay,
// which is exactly the reconstruction we want.
func (m *machine) applyRecord(rec *Record) {
	var j *job
	switch rec.Kind {
	case recRegister:
		return // consumed when the machine was rebuilt
	case recPool:
		j = &job{openPool: rec.Interleave}
	case recAlloc:
		j = &job{allocs: rec.Allocs, batch: rec.Batch}
	case recFree:
		j = &job{frees: rec.Frees, batch: rec.Batch}
	default:
		return // readJournal rejects unknown kinds before replay
	}
	res := m.apply(j)
	if j.batch != "" {
		m.remember(j.batch, res)
	}
}

// maybeSnapshot writes the periodic consistency checkpoint after every
// snapEvery committed records.
func (m *machine) maybeSnapshot() {
	if m.journal == nil || m.snapEvery <= 0 {
		return
	}
	m.sinceSnap++
	if m.sinceSnap < m.snapEvery {
		return
	}
	m.sinceSnap = 0
	snap := &Snapshot{
		MachineID:   m.id,
		Seq:         m.journal.seq,
		Allocs:      m.allocs.Load(),
		Frees:       m.frees.Load(),
		AllocErrors: m.allocErrs.Load(),
		LiveHandles: len(m.handles),
		Batches:     len(m.seen),
		StateSum:    stateSum(m.handles),
	}
	if writeSnapshot(m.snapPath, snap) == nil {
		m.snapshots.Add(1)
	}
}

// apply executes one job body against the owned placement state.
func (m *machine) apply(j *job) jobResult {
	if j.openPool != 0 {
		pool, err := m.execOpenPool(j.openPool)
		return jobResult{pool: pool, err: err}
	}
	if len(j.frees) > 0 {
		return jobResult{freed: m.execFrees(j.frees)}
	}
	placements := make([]Placement, len(j.allocs))
	for i := range j.allocs {
		start := time.Now()
		placements[i] = m.execAlloc(&j.allocs[i])
		m.latency.Observe(uint64(time.Since(start)))
	}
	return jobResult{placements: placements}
}

// execAlloc places one request. Failures are per-request: the placement
// carries the error and the batch keeps going.
func (m *machine) execAlloc(req *AllocRequest) Placement {
	p, err := m.place(req)
	if err != nil {
		m.allocErrs.Add(1)
		return Placement{ID: req.ID, Error: err.Error()}
	}
	m.allocs.Add(1)
	m.handleCount.Add(1)
	return p
}

func (m *machine) place(req *AllocRequest) (Placement, error) {
	if req.ID == "" {
		return Placement{}, fmt.Errorf("allocation has no id")
	}
	if _, live := m.handles[req.ID]; live {
		return Placement{}, fmt.Errorf("id %q is already a live allocation", req.ID)
	}
	switch req.Kind {
	case "", KindAffine:
		return m.placeAffine(req)
	case KindNear:
		return m.placeNear(req)
	default:
		return Placement{}, fmt.Errorf("unknown kind %q (want %q or %q)", req.Kind, KindAffine, KindNear)
	}
}

// placeAffine serves an affine request through the same mode-aware
// sys.System.Alloc entry point library callers use.
func (m *machine) placeAffine(req *AllocRequest) (Placement, error) {
	mode := sys.AffAlloc
	if req.Mode != "" {
		var err error
		if mode, err = sys.ParseMode(req.Mode); err != nil {
			return Placement{}, err
		}
	}
	spec := core.AffineSpec{
		ElemSize:  req.ElemSize,
		NumElem:   req.NumElem,
		AlignP:    req.AlignP,
		AlignQ:    req.AlignQ,
		AlignX:    req.AlignX,
		Partition: req.Partition,
	}
	if req.AlignTo != "" {
		target, ok := m.handles[req.AlignTo]
		if !ok {
			return Placement{}, fmt.Errorf("align_to %q is not a live allocation", req.AlignTo)
		}
		if target.info == nil {
			return Placement{}, fmt.Errorf("align_to %q is not an affine placement", req.AlignTo)
		}
		spec.AlignTo = target.base
	}
	info, err := m.sys.Alloc(mode, spec)
	if err != nil {
		return Placement{}, err
	}
	h := &handle{base: info.Base, bytes: info.Bytes()}
	if mode == sys.AffAlloc {
		h.info = info
	} else {
		h.baseline = true
	}
	m.handles[req.ID] = h
	m.poolFor(info.Interleave).recordAlloc(h.bytes)
	p := Placement{
		ID:         req.ID,
		Base:       uint64(info.Base),
		ElemSize:   info.ElemSize,
		ElemStride: info.ElemStride,
		NumElem:    info.NumElem,
		Interleave: info.Interleave,
		PageMapped: info.PageMapped,
		StartBank:  info.StartBank,
	}
	if mode != sys.AffAlloc {
		// Baseline placements have no runtime-chosen start bank; report
		// the bank the heap happened to land on, like the library would
		// observe through BankOf.
		p.StartBank = m.sys.BankOf(info.Base)
	}
	for _, i := range req.BankProbe {
		p.Banks = append(p.Banks, m.sys.BankOf(info.ElemAddr(clampElem(i, info.NumElem))))
	}
	return p, nil
}

// placeNear serves an irregular request, resolving affinity edges to
// element addresses of earlier placements.
func (m *machine) placeNear(req *AllocRequest) (Placement, error) {
	if len(req.Affinity) > core.MaxAffinityAddrs {
		return Placement{}, fmt.Errorf("%d affinity edges exceeds the %d cap", len(req.Affinity), core.MaxAffinityAddrs)
	}
	addrs := make([]memsim.Addr, 0, len(req.Affinity))
	for _, ref := range req.Affinity {
		target, ok := m.handles[ref.Ref]
		if !ok {
			return Placement{}, fmt.Errorf("affinity ref %q is not a live allocation", ref.Ref)
		}
		if target.info == nil {
			return Placement{}, fmt.Errorf("affinity ref %q is not an affine placement", ref.Ref)
		}
		addrs = append(addrs, target.info.ElemAddr(clampElem(ref.Elem, target.info.NumElem)))
	}
	base, err := m.sys.AllocNear(req.Size, addrs)
	if err != nil {
		return Placement{}, err
	}
	chunk, _ := m.sys.RT.ChunkOf(base)
	bank := m.sys.BankOf(base)
	m.handles[req.ID] = &handle{base: base, chunk: chunk, bytes: int64(chunk)}
	m.poolFor(chunk).recordAlloc(int64(chunk))
	p := Placement{
		ID:         req.ID,
		Base:       uint64(base),
		ElemSize:   int(req.Size),
		ElemStride: chunk,
		NumElem:    1,
		Interleave: chunk,
		StartBank:  bank,
	}
	for range req.BankProbe {
		p.Banks = append(p.Banks, bank) // a chunk lives wholly on one bank
	}
	return p, nil
}

// execFrees releases handles by ID through the single Free entry point.
func (m *machine) execFrees(ids []string) []FreeResult {
	out := make([]FreeResult, len(ids))
	for i, id := range ids {
		out[i] = FreeResult{ID: id}
		h, ok := m.handles[id]
		if !ok {
			out[i].Error = fmt.Sprintf("id %q is not a live allocation", id)
			continue
		}
		if h.baseline {
			// Baseline-heap allocations are not runtime-managed; dropping
			// the handle is the whole release.
			delete(m.handles, id)
			m.frees.Add(1)
			m.handleCount.Add(-1)
			continue
		}
		if err := m.sys.Free(h.base); err != nil {
			out[i].Error = err.Error()
			continue
		}
		delete(m.handles, id)
		m.frees.Add(1)
		m.handleCount.Add(-1)
		interleave := h.chunk
		if h.info != nil {
			interleave = h.info.Interleave
		}
		m.poolFor(interleave).recordFree()
	}
	return out
}

// poolFor resolves the lock domain of an interleaving. Interleave 0 —
// baseline-heap placements with no pool — shares one "no pool" domain.
func (m *machine) poolFor(interleave int) *poolDomain {
	var start uint64
	if interleave > 0 {
		if p, err := m.sys.OpenPool(interleave); err == nil {
			start = uint64(p.Start)
		}
	}
	return m.pools.domain(interleave, start)
}

// execOpenPool pre-opens an interleave pool. It runs on the worker, so
// pool creation serializes with placement.
func (m *machine) execOpenPool(interleave int) (PoolInfo, error) {
	if interleave <= 0 {
		return PoolInfo{}, fmt.Errorf("interleave must be positive, got %d", interleave)
	}
	p, err := m.sys.OpenPool(interleave)
	if err != nil {
		return PoolInfo{}, err
	}
	return m.pools.domain(interleave, uint64(p.Start)).info(), nil
}

// info builds the GET machine view from the concurrent-safe state.
func (m *machine) infoResponse() MachineInfoResponse {
	return MachineInfoResponse{
		Version:     APIVersion,
		MachineID:   m.id,
		Machine:     m.spec,
		Banks:       m.sys.Mesh.Banks(),
		LiveHandles: int(m.handleCount.Load()),
		Allocs:      m.allocs.Load(),
		Frees:       m.frees.Load(),
		AllocErrors: m.allocErrs.Load(),
		Pools:       m.pools.infos(),
	}
}

func clampElem(i, n int64) int64 {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

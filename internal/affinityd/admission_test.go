package affinityd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// blockWorker wedges a machine's worker inside exec and returns the
// release channel. It waits for the worker's entered handshake — only
// once the worker is inside exec is its admission drain loop done, so
// jobs submitted after this really queue behind the wedged worker.
func blockWorker(t *testing.T, m *machine) (release chan struct{}, out chan jobResult) {
	t.Helper()
	release = make(chan struct{})
	entered := make(chan struct{})
	blocker := &job{openPool: 64, block: release, entered: entered,
		ctx: context.Background(), out: make(chan jobResult, 1)}
	if err := m.submit(blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	return release, blocker.out
}

// TestOverloadShedsWithRetryAfter pins graceful degradation: a full
// admission queue sheds immediately — errOverloaded at the machine,
// 503 + Retry-After on the wire, a typed retryable error at the client
// — and the shed is counted in the metrics document.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	srv := NewServer(Options{QueueDepth: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := NewClient(ts.URL)
	client.MaxRetries = -1
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.lookup(reg.MachineID)

	release, blockerOut := blockWorker(t, m)
	// Fill the (depth 2) queue behind the wedged worker.
	fillers := make([]*job, 2)
	for i := range fillers {
		fillers[i] = &job{openPool: 64, ctx: bg, out: make(chan jobResult, 1)}
		if err := m.submit(fillers[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The machine sheds now.
	overflow := &job{openPool: 64, ctx: bg, out: make(chan jobResult, 1)}
	if err := m.submit(overflow); !errors.Is(err, errOverloaded) {
		t.Fatalf("submit on a full queue returned %v, want errOverloaded", err)
	}

	// The wire maps the shed to 503 + Retry-After.
	body := `{"requests":[{"id":"x","elem_size":4,"num_elem":64}]}`
	resp, err := http.Post(ts.URL+"/v1/machines/"+reg.MachineID+"/alloc", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 carries no Retry-After")
	}

	// And the client sees the typed, retryable shape.
	var ae *APIError
	if _, err := client.Alloc(bg, reg.MachineID, "b", []AllocRequest{{ID: "y", ElemSize: 4, NumElem: 64}}); !errors.As(err, &ae) || ae.Status != 503 || ae.RetryAfter <= 0 {
		t.Errorf("client saw %v, want *APIError{503, Retry-After > 0}", err)
	}

	close(release)
	<-blockerOut
	for _, f := range fillers {
		<-f.out
	}

	if got := m.sheds.Load(); got < 2 {
		t.Errorf("sheds counter = %d, want >= 2", got)
	}
	doc := srv.MetricsDocument()
	if err := doc.Validate(); err != nil {
		t.Fatalf("metrics document invalid: %v", err)
	}
	for _, c := range doc.Cells {
		if c.Label == "affinityd" && c.Scalars["sheds"] < 2 {
			t.Errorf("metrics sheds = %d, want >= 2", c.Scalars["sheds"])
		}
	}
}

// TestServerEnforcesDeadline pins server-side deadline enforcement: a
// request whose propagated budget expires while queued behind a wedged
// worker answers 504, and the worker drops the dead job (counted as a
// deadline drop) instead of executing it.
func TestServerEnforcesDeadline(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	client := NewClient(ts.URL)
	reg, err := client.Register(bg, MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.lookup(reg.MachineID)
	release, blockerOut := blockWorker(t, m)

	req, err := http.NewRequest("POST", ts.URL+"/v1/machines/"+reg.MachineID+"/alloc",
		strings.NewReader(`{"requests":[{"id":"x","elem_size":4,"num_elem":64}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request got %d, want 504", resp.StatusCode)
	}

	close(release)
	<-blockerOut

	// The dead job was queued; the worker must drop it un-executed.
	deadline := time.Now().Add(2 * time.Second)
	for m.deadlineDrops.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline drop never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.allocs.Load(); got != 0 {
		t.Errorf("expired job executed anyway: %d allocs", got)
	}
}

// TestDedupResultEviction pins the idempotency window boundary: a batch
// ID evicted from the result cache is still recognized as committed —
// the retry gets a named error, never a second execution.
func TestDedupResultEviction(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	resp, err := srv.Register(MachineSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := srv.lookup(resp.MachineID)

	// Simulate an old committed batch aging out of the window: its ID is
	// in seen but its result is gone. (The worker is idle; the channel
	// send below publishes this write to it.)
	m.seen["ancient"] = struct{}{}

	res, err := srv.run(bg, m, &job{batch: "ancient", allocs: []AllocRequest{{ID: "a", ElemSize: 4, NumElem: 64}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.err == nil || !strings.Contains(res.err.Error(), "idempotency window") {
		t.Fatalf("evicted duplicate returned %v, want the named idempotency-window error", res.err)
	}
	if m.allocs.Load() != 0 {
		t.Errorf("evicted duplicate re-executed: %d allocs", m.allocs.Load())
	}
	if m.dedupHits.Load() != 1 {
		t.Errorf("dedup hit not counted")
	}
}

package graph

// This file holds functional (un-timed) reference implementations of the
// evaluation's graph algorithms. The simulated workloads replay the same
// traversals with timing attached; tests check both agree.

// Direction is a BFS traversal direction.
type Direction int

const (
	// Push propagates from the frontier to out-neighbors (top-down).
	Push Direction = iota
	// Pull has unvisited vertices query in-neighbors (bottom-up).
	Pull
)

func (d Direction) String() string {
	if d == Push {
		return "push"
	}
	return "pull"
}

// IterStats captures one BFS iteration's characteristics (Fig 17).
type IterStats struct {
	Iter       int
	Dir        Direction
	Active     int64 // vertices visited during this iteration
	Visited    int64 // cumulative visited after this iteration
	ScoutEdges int64 // out-edges of this iteration's active vertices
}

// StepState feeds a direction policy before each iteration.
type StepState struct {
	VisitedFrac float64 // visited vertices / N, before the iteration
	ScoutFrac   float64 // frontier out-edges / total edges
	AwakeFrac   float64 // frontier vertices / N
}

// DirectionPolicy decides each BFS iteration's direction.
type DirectionPolicy interface {
	Decide(cur Direction, st StepState) Direction
	Name() string
}

// PushOnly always pushes.
type PushOnly struct{}

// Decide implements DirectionPolicy.
func (PushOnly) Decide(Direction, StepState) Direction { return Push }

// Name implements DirectionPolicy.
func (PushOnly) Name() string { return "push" }

// PullOnly always pulls.
type PullOnly struct{}

// Decide implements DirectionPolicy.
func (PullOnly) Decide(Direction, StepState) Direction { return Pull }

// Name implements DirectionPolicy.
func (PullOnly) Name() string { return "pull" }

// GAPPolicy is the direction-optimizing heuristic of Beamer et al. [12]
// as shipped in the GAP suite: switch to pull when the frontier's scout
// edges exceed |E|/Alpha, back to push when the frontier shrinks below
// N/Beta.
type GAPPolicy struct {
	Alpha, Beta float64
}

// DefaultGAPPolicy returns GAP's alpha=15, beta=18.
func DefaultGAPPolicy() GAPPolicy { return GAPPolicy{Alpha: 15, Beta: 18} }

// Decide implements DirectionPolicy.
func (p GAPPolicy) Decide(cur Direction, st StepState) Direction {
	switch cur {
	case Push:
		if st.ScoutFrac > 1/p.Alpha {
			return Pull
		}
	case Pull:
		if st.AwakeFrac < 1/p.Beta {
			return Push
		}
	}
	return cur
}

// Name implements DirectionPolicy.
func (p GAPPolicy) Name() string { return "gap-switch" }

// PaperPolicy is the extended switching policy of §7.2, which accounts
// for cheap in-place NDC atomics by requiring both a large visited
// fraction (many failed CASes expected) and a large scout-edge fraction
// before abandoning push:
//
//	Push → Pull: Visited > 40% and Scout > 6%.
//	Pull → Push: Awake < 25%.
type PaperPolicy struct {
	VisitedThresh, ScoutThresh, AwakeThresh float64
}

// DefaultPaperPolicy returns the published thresholds.
func DefaultPaperPolicy() PaperPolicy {
	return PaperPolicy{VisitedThresh: 0.40, ScoutThresh: 0.06, AwakeThresh: 0.25}
}

// Decide implements DirectionPolicy.
func (p PaperPolicy) Decide(cur Direction, st StepState) Direction {
	switch cur {
	case Push:
		if st.VisitedFrac > p.VisitedThresh && st.ScoutFrac > p.ScoutThresh {
			return Pull
		}
	case Pull:
		if st.AwakeFrac < p.AwakeThresh {
			return Push
		}
	}
	return cur
}

// Name implements DirectionPolicy.
func (p PaperPolicy) Name() string { return "ndc-switch" }

// BFSResult holds a traversal's outcome. Parent assignment can differ
// between directions (any in-frontier neighbor is a valid parent), but
// Level — the iteration a vertex was first reached — is
// direction-independent and is what cross-configuration checksums use.
type BFSResult struct {
	Parent []int32 // -1 for unreached; src's parent is src
	Level  []int32 // -1 for unreached; src is 0
	Iters  []IterStats
}

// BFS runs a level-synchronous BFS from src under the given direction
// policy. gT must be g's transpose when the policy can choose Pull (pass
// nil for PushOnly).
func BFS(g, gT *Graph, src int32, policy DirectionPolicy) BFSResult {
	parent := make([]int32, g.N)
	level := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
		level[i] = -1
	}
	parent[src] = src
	level[src] = 0
	frontier := []int32{src}
	visited := int64(1)
	totalEdges := float64(len(g.Edges))
	dir := Push
	var iters []IterStats

	for iter := 0; len(frontier) > 0; iter++ {
		var scout int64
		for _, u := range frontier {
			scout += g.Degree(u)
		}
		st := StepState{
			VisitedFrac: float64(visited) / float64(g.N),
			ScoutFrac:   float64(scout) / max(totalEdges, 1),
			AwakeFrac:   float64(len(frontier)) / float64(g.N),
		}
		dir = policy.Decide(dir, st)

		var next []int32
		if dir == Push {
			for _, u := range frontier {
				for _, v := range g.OutEdges(u) {
					if parent[v] == -1 {
						parent[v] = u
						next = append(next, v)
					}
				}
			}
		} else {
			inFrontier := make([]bool, g.N)
			for _, u := range frontier {
				inFrontier[u] = true
			}
			for v := int32(0); v < g.N; v++ {
				if parent[v] != -1 {
					continue
				}
				for _, u := range gT.OutEdges(v) {
					if inFrontier[u] {
						parent[v] = u
						next = append(next, v)
						break
					}
				}
			}
		}
		for _, v := range next {
			level[v] = int32(iter) + 1
		}
		visited += int64(len(next))
		iters = append(iters, IterStats{
			Iter:       iter,
			Dir:        dir,
			Active:     int64(len(next)),
			Visited:    visited,
			ScoutEdges: scout,
		})
		frontier = next
	}
	return BFSResult{Parent: parent, Level: level, Iters: iters}
}

// PageRank runs `iters` synchronous PageRank iterations and returns the
// scores. Push and pull orderings produce identical results; this is the
// shared reference.
func PageRank(g *Graph, iters int, damping float64) []float64 {
	n := int(g.N)
	scores := make([]float64, n)
	next := make([]float64, n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); u < g.N; u++ {
			deg := g.Degree(u)
			if deg == 0 {
				continue
			}
			contrib := scores[u] / float64(deg)
			for _, v := range g.OutEdges(u) {
				next[v] += contrib
			}
		}
		for i := range next {
			next[i] = base + damping*next[i]
		}
		scores, next = next, scores
	}
	return scores
}

// SSSPResult holds shortest-path distances and per-round frontier sizes.
type SSSPResult struct {
	Dist   []int64 // -1 (as math.MaxInt64 sentinel replaced) for unreachable
	Rounds []int64 // frontier size per relaxation round
}

// InfDist marks unreachable vertices.
const InfDist = int64(1) << 62

// SSSP runs frontier-based Bellman-Ford (the relaxation pattern the
// simulated sssp workload replays) from src using g.Weights.
func SSSP(g *Graph, src int32) SSSPResult {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	frontier := []int32{src}
	inNext := make([]bool, g.N)
	var rounds []int64
	for len(frontier) > 0 {
		rounds = append(rounds, int64(len(frontier)))
		var next []int32
		for _, u := range frontier {
			du := dist[u]
			for i := g.Index[u]; i < g.Index[u+1]; i++ {
				v := g.Edges[i]
				nd := du + int64(g.Weights[i])
				if nd < dist[v] {
					dist[v] = nd
					if !inNext[v] {
						inNext[v] = true
						next = append(next, v)
					}
				}
			}
		}
		for _, v := range next {
			inNext[v] = false
		}
		frontier = next
	}
	return SSSPResult{Dist: dist, Rounds: rounds}
}

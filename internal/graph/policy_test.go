package graph

import "testing"

func TestGAPPolicyTransitions(t *testing.T) {
	p := DefaultGAPPolicy()
	// Push holds while scout edges are few.
	if d := p.Decide(Push, StepState{ScoutFrac: 0.01}); d != Push {
		t.Error("GAP switched to pull too eagerly")
	}
	// Switch to pull when scout > |E|/alpha.
	if d := p.Decide(Push, StepState{ScoutFrac: 0.10}); d != Pull {
		t.Error("GAP did not switch to pull at high scout fraction")
	}
	// Pull holds while the frontier is large.
	if d := p.Decide(Pull, StepState{AwakeFrac: 0.5}); d != Pull {
		t.Error("GAP abandoned pull with a large frontier")
	}
	// Back to push when the frontier shrinks below N/beta.
	if d := p.Decide(Pull, StepState{AwakeFrac: 0.01}); d != Push {
		t.Error("GAP did not return to push")
	}
}

func TestPaperPolicyNeedsBothConditions(t *testing.T) {
	p := DefaultPaperPolicy()
	// High scout alone is NOT enough (cheap NDC atomics keep pushing).
	if d := p.Decide(Push, StepState{VisitedFrac: 0.1, ScoutFrac: 0.5}); d != Push {
		t.Error("paper policy pulled without the visited condition")
	}
	// High visited alone is not enough either.
	if d := p.Decide(Push, StepState{VisitedFrac: 0.9, ScoutFrac: 0.01}); d != Push {
		t.Error("paper policy pulled without the scout condition")
	}
	// Both conditions: pull.
	if d := p.Decide(Push, StepState{VisitedFrac: 0.5, ScoutFrac: 0.1}); d != Pull {
		t.Error("paper policy did not pull when both thresholds crossed")
	}
	// Pull -> push on a small awake fraction.
	if d := p.Decide(Pull, StepState{AwakeFrac: 0.1}); d != Push {
		t.Error("paper policy did not return to push")
	}
	if d := p.Decide(Pull, StepState{AwakeFrac: 0.5}); d != Pull {
		t.Error("paper policy left pull with a large frontier")
	}
}

func TestFixedPolicies(t *testing.T) {
	if (PushOnly{}).Decide(Pull, StepState{}) != Push {
		t.Error("PushOnly not push")
	}
	if (PullOnly{}).Decide(Push, StepState{}) != Pull {
		t.Error("PullOnly not pull")
	}
	if (PushOnly{}).Name() != "push" || (PullOnly{}).Name() != "pull" {
		t.Error("policy names changed")
	}
}

func TestBFSEmptyAndSingletonGraphs(t *testing.T) {
	// A graph with a single vertex and no edges.
	g := &Graph{N: 1, Index: []int64{0, 0}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res := BFS(g, g.Transpose(), 0, PushOnly{})
	if res.Level[0] != 0 {
		t.Error("source not at level 0")
	}
	if len(res.Iters) != 1 || res.Iters[0].Active != 0 {
		t.Errorf("unexpected iterations %+v", res.Iters)
	}
}

func TestDegreeAndAvg(t *testing.T) {
	g := &Graph{N: 3, Index: []int64{0, 2, 2, 3}, Edges: []int32{1, 2, 0}}
	if g.Degree(0) != 2 || g.Degree(1) != 0 || g.Degree(2) != 1 {
		t.Error("degrees wrong")
	}
	if g.AvgDegree() != 1 {
		t.Errorf("avg degree %f", g.AvgDegree())
	}
	if g.MaxDegreeVertex() != 0 {
		t.Error("max-degree vertex wrong")
	}
}

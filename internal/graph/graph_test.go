package graph

import (
	"testing"
	"testing/quick"
)

func TestKroneckerStructure(t *testing.T) {
	g := Kronecker(10, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Errorf("N = %d, want 1024", g.N)
	}
	// Dedup removes some edges; at least half should remain.
	if g.NumEdges() < 4*1024/2 {
		t.Errorf("only %d edges generated", g.NumEdges())
	}
	// R-MAT graphs are skewed: max degree far above the average.
	maxDeg := g.Degree(g.MaxDegreeVertex())
	if float64(maxDeg) < 4*g.AvgDegree() {
		t.Errorf("max degree %d vs avg %.1f — not skewed", maxDeg, g.AvgDegree())
	}
	// Deterministic per seed.
	g2 := Kronecker(10, 8, 1)
	if g2.NumEdges() != g.NumEdges() || g2.Edges[0] != g.Edges[0] {
		t.Error("Kronecker not reproducible for fixed seed")
	}
}

func TestEdgesSortedBySource(t *testing.T) {
	g := Kronecker(9, 6, 3)
	for u := int32(0); u < g.N; u++ {
		edges := g.OutEdges(u)
		for i := 1; i < len(edges); i++ {
			if edges[i] <= edges[i-1] {
				t.Fatalf("vertex %d edges not strictly sorted at %d", u, i)
			}
		}
	}
}

func TestPowerLawDegreeTarget(t *testing.T) {
	for _, d := range []int{4, 16, 64} {
		g := PowerLaw(1<<12, d, 7)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Dedup trims duplicates; the heavier the skew the more it trims.
		if g.AvgDegree() < float64(d)/4 || g.AvgDegree() > float64(d) {
			t.Errorf("avg degree %.1f for target %d", g.AvgDegree(), d)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := Kronecker(9, 8, 5)
	g.AddUniformWeights(1, 255, 5)
	tt := g.Transpose().Transpose()
	if tt.N != g.N || len(tt.Edges) != len(g.Edges) {
		t.Fatal("transpose changed size")
	}
	for u := int32(0); u < g.N; u++ {
		a, b := g.OutEdges(u), tt.OutEdges(u)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed: %d vs %d", u, len(a), len(b))
		}
	}
	// Weight multiset preserved.
	sum := func(w []int32) int64 {
		var s int64
		for _, x := range w {
			s += int64(x)
		}
		return s
	}
	if sum(g.Weights) != sum(tt.Weights) {
		t.Error("transpose lost weights")
	}
}

func TestTransposeEdgeCorrespondence(t *testing.T) {
	g := Kronecker(8, 6, 9)
	gt := g.Transpose()
	// Every edge u->v in g appears as v->u in gt.
	count := func(gr *Graph, s, d int32) int {
		c := 0
		for _, v := range gr.OutEdges(s) {
			if v == d {
				c++
			}
		}
		return c
	}
	for u := int32(0); u < g.N; u += 17 {
		for _, v := range g.OutEdges(u) {
			if count(gt, v, u) == 0 {
				t.Fatalf("edge %d->%d missing from transpose", u, v)
			}
		}
	}
}

func TestBFSDirectionsAgreeOnLevels(t *testing.T) {
	g := Kronecker(10, 8, 2)
	gt := g.Transpose()
	src := g.MaxDegreeVertex()
	push := BFS(g, nil, src, PushOnly{})
	pull := BFS(g, gt, src, PullOnly{})
	gap := BFS(g, gt, src, DefaultGAPPolicy())
	paper := BFS(g, gt, src, DefaultPaperPolicy())
	for v := int32(0); v < g.N; v++ {
		if push.Level[v] != pull.Level[v] || push.Level[v] != gap.Level[v] || push.Level[v] != paper.Level[v] {
			t.Fatalf("vertex %d levels differ: push %d pull %d gap %d paper %d",
				v, push.Level[v], pull.Level[v], gap.Level[v], paper.Level[v])
		}
	}
	// Parents must be valid: parent is reached one level earlier.
	for v := int32(0); v < g.N; v++ {
		if p := push.Parent[v]; p >= 0 && v != src {
			if push.Level[p] != push.Level[v]-1 {
				t.Fatalf("vertex %d at level %d has parent %d at level %d", v, push.Level[v], p, push.Level[p])
			}
		}
	}
}

func TestBFSIterStatsConsistent(t *testing.T) {
	g := Kronecker(10, 8, 4)
	src := g.MaxDegreeVertex()
	res := BFS(g, nil, src, PushOnly{})
	visited := int64(1)
	for _, it := range res.Iters {
		visited += it.Active
		if it.Visited != visited {
			t.Fatalf("iter %d: Visited %d, want %d", it.Iter, it.Visited, visited)
		}
	}
	reached := int64(0)
	for _, l := range res.Level {
		if l >= 0 {
			reached++
		}
	}
	if reached != visited {
		t.Errorf("levels count %d but iter stats say %d", reached, visited)
	}
}

func TestPaperPolicyUsesMorePushThanGAP(t *testing.T) {
	g := Kronecker(12, 10, 6)
	gt := g.Transpose()
	src := g.MaxDegreeVertex()
	gap := BFS(g, gt, src, DefaultGAPPolicy())
	paper := BFS(g, gt, src, DefaultPaperPolicy())
	pushIters := func(res BFSResult) int {
		n := 0
		for _, it := range res.Iters {
			if it.Dir == Push {
				n++
			}
		}
		return n
	}
	if pushIters(paper) < pushIters(gap) {
		t.Errorf("paper policy pushed %d iters, GAP %d — NDC policy should push at least as much",
			pushIters(paper), pushIters(gap))
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := Kronecker(9, 8, 8)
	scores := PageRank(g, 8, 0.85)
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	// Dangling-vertex mass leaks in this formulation (as in GAP's basic
	// kernel); the sum stays in (0.5, 1].
	if sum <= 0.5 || sum > 1.0001 {
		t.Errorf("score sum %.4f out of range", sum)
	}
}

func TestSSSPMatchesTriangleInequality(t *testing.T) {
	g := Kronecker(9, 8, 11)
	g.AddUniformWeights(1, 255, 11)
	src := g.MaxDegreeVertex()
	res := SSSP(g, src)
	if res.Dist[src] != 0 {
		t.Fatalf("dist[src] = %d", res.Dist[src])
	}
	// Relaxed: for every edge (u,v), dist[v] <= dist[u] + w.
	for u := int32(0); u < g.N; u++ {
		if res.Dist[u] == InfDist {
			continue
		}
		for i := g.Index[u]; i < g.Index[u+1]; i++ {
			v := g.Edges[i]
			if res.Dist[v] > res.Dist[u]+int64(g.Weights[i]) {
				t.Fatalf("edge %d->%d not relaxed: %d > %d+%d", u, v, res.Dist[v], res.Dist[u], g.Weights[i])
			}
		}
	}
}

func TestSSSPAgreesWithBFSOnUnitWeights(t *testing.T) {
	g := Kronecker(9, 8, 13)
	g.Weights = make([]int32, len(g.Edges))
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	src := g.MaxDegreeVertex()
	d := SSSP(g, src)
	b := BFS(g, nil, src, PushOnly{})
	for v := int32(0); v < g.N; v++ {
		switch {
		case b.Level[v] == -1 && d.Dist[v] != InfDist:
			t.Fatalf("vertex %d unreachable by BFS but dist %d", v, d.Dist[v])
		case b.Level[v] >= 0 && d.Dist[v] != int64(b.Level[v]):
			t.Fatalf("vertex %d: dist %d, BFS level %d", v, d.Dist[v], b.Level[v])
		}
	}
}

func TestFromEdgeListProperty(t *testing.T) {
	// Property: every generated graph validates and has monotone index.
	prop := func(seed int64) bool {
		g := PowerLaw(256, 4, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Package graph provides the graph substrate of the evaluation: CSR
// storage, the Kronecker (R-MAT) and power-law generators behind Table 3,
// Table 4 and Fig 19, transposition for pull-direction algorithms, and
// reference (functional) implementations of BFS, PageRank, and SSSP used
// to validate the simulated runs.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in compressed sparse row form. Index has N+1
// entries; the out-edges of u are Edges[Index[u]:Index[u+1]]. Weights is
// parallel to Edges when non-nil.
type Graph struct {
	N       int32
	Index   []int64
	Edges   []int32
	Weights []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int64 { return int64(len(g.Edges)) }

// Degree returns vertex u's out-degree.
func (g *Graph) Degree(u int32) int64 { return g.Index[u+1] - g.Index[u] }

// OutEdges returns u's out-edge slice (do not modify).
func (g *Graph) OutEdges(u int32) []int32 {
	return g.Edges[g.Index[u]:g.Index[u+1]]
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.N)
}

// fromEdgeList builds a CSR from (src, dst) pairs, sorting edges by
// source (the "common practice" §7.2 relies on) and deduplicating.
func fromEdgeList(n int32, srcs, dsts []int32) *Graph {
	type pair struct{ s, d int32 }
	pairs := make([]pair, len(srcs))
	for i := range srcs {
		pairs[i] = pair{srcs[i], dsts[i]}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].s != pairs[j].s {
			return pairs[i].s < pairs[j].s
		}
		return pairs[i].d < pairs[j].d
	})
	g := &Graph{N: n, Index: make([]int64, n+1)}
	g.Edges = make([]int32, 0, len(pairs))
	var prev pair = pair{-1, -1}
	for _, p := range pairs {
		if p == prev {
			continue // dedup
		}
		prev = p
		g.Edges = append(g.Edges, p.d)
		g.Index[p.s+1]++
	}
	for i := int32(0); i < n; i++ {
		g.Index[i+1] += g.Index[i]
	}
	return g
}

// Kronecker generates an R-MAT graph with 2^scale vertices and about
// avgDeg edges per vertex, using the GAP/Graph500 partition
// A/B/C = 0.57/0.19/0.19 from Table 3. Self-loops are kept (as in GAP's
// generator); duplicate edges are removed.
func Kronecker(scale int, avgDeg int, seed int64) *Graph {
	n := int32(1) << scale
	m := int64(avgDeg) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	for e := int64(0); e < m; e++ {
		var src, dst int32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		srcs[e], dsts[e] = src, dst
	}
	return fromEdgeList(n, srcs, dsts)
}

// PowerLaw generates a graph with n vertices and n*avgDeg distinct edges
// whose endpoint popularity follows a Zipf-like power law — the
// degree-sweep generator of Fig 19 and the stand-in for the Table-4
// social graphs. Edges are drawn until the distinct-edge target is met,
// so the requested average degree is hit exactly (up to saturation).
func PowerLaw(n int32, avgDeg int, seed int64) *Graph {
	m := int64(avgDeg) * int64(n)
	if maxM := int64(n) * int64(n) / 2; m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 8, uint64(n-1))
	perm := rng.Perm(int(n)) // decorrelate popularity from vertex id
	seen := make(map[int64]struct{}, m)
	srcs := make([]int32, 0, m)
	dsts := make([]int32, 0, m)
	for attempts := int64(0); int64(len(srcs)) < m && attempts < 40*m; attempts++ {
		s := int32(perm[zipf.Uint64()])
		d := int32(perm[zipf.Uint64()])
		key := int64(s)<<32 | int64(d)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		srcs = append(srcs, s)
		dsts = append(dsts, d)
	}
	return fromEdgeList(n, srcs, dsts)
}

// AddUniformWeights attaches uniformly random edge weights in [lo, hi]
// (Table 3: [1, 255] for sssp).
func (g *Graph) AddUniformWeights(lo, hi int32, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	g.Weights = make([]int32, len(g.Edges))
	for i := range g.Weights {
		g.Weights[i] = lo + rng.Int31n(hi-lo+1)
	}
}

// Transpose returns the reversed graph (for pull-direction algorithms).
// Weights follow their edges.
func (g *Graph) Transpose() *Graph {
	t := &Graph{N: g.N, Index: make([]int64, g.N+1)}
	for _, v := range g.Edges {
		t.Index[v+1]++
	}
	for i := int32(0); i < g.N; i++ {
		t.Index[i+1] += t.Index[i]
	}
	t.Edges = make([]int32, len(g.Edges))
	if g.Weights != nil {
		t.Weights = make([]int32, len(g.Edges))
	}
	next := make([]int64, g.N)
	copy(next, t.Index[:g.N])
	for u := int32(0); u < g.N; u++ {
		for i := g.Index[u]; i < g.Index[u+1]; i++ {
			v := g.Edges[i]
			t.Edges[next[v]] = u
			if g.Weights != nil {
				t.Weights[next[v]] = g.Weights[i]
			}
			next[v]++
		}
	}
	return t
}

// MaxDegreeVertex returns the vertex with the highest out-degree — the
// conventional BFS source for power-law graphs (guarantees a large
// reachable component).
func (g *Graph) MaxDegreeVertex() int32 {
	best, bestDeg := int32(0), int64(-1)
	for u := int32(0); u < g.N; u++ {
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// Validate checks CSR structural invariants.
func (g *Graph) Validate() error {
	if len(g.Index) != int(g.N)+1 {
		return fmt.Errorf("graph: index has %d entries for %d vertices", len(g.Index), g.N)
	}
	if g.Index[0] != 0 || g.Index[g.N] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: index bounds [%d,%d] vs %d edges", g.Index[0], g.Index[g.N], len(g.Edges))
	}
	for u := int32(0); u < g.N; u++ {
		if g.Index[u] > g.Index[u+1] {
			return fmt.Errorf("graph: index not monotone at %d", u)
		}
	}
	for _, v := range g.Edges {
		if v < 0 || v >= g.N {
			return fmt.Errorf("graph: edge target %d out of range", v)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Edges))
	}
	return nil
}

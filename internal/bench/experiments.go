package bench

import (
	"regexp"
	"testing"
	"time"

	"affinityalloc/internal/engine"
	"affinityalloc/internal/harness"
)

// ExperimentEntries wraps every paper experiment as a benchmark entry.
// Each iteration regenerates the experiment end to end at the given
// sizing on one worker (Jobs=1, so ns/op is not scheduler noise), and the
// per-cell timing accounting is folded into a sim-cycles/sec metric.
func ExperimentEntries(scale harness.Scale, seed int64) []Entry {
	exps := harness.Experiments()
	out := make([]Entry, 0, len(exps))
	for _, e := range exps {
		e := e
		out = append(out, Entry{
			Name: "experiment/" + e.ID,
			F: func(b *testing.B) {
				var totSim engine.Time
				var totWall time.Duration
				for i := 0; i < b.N; i++ {
					tm := &harness.Timing{}
					fig, err := e.Run(harness.Options{Scale: scale, Seed: seed, Jobs: 1, Timing: tm})
					if err != nil {
						b.Fatal(err)
					}
					if len(fig.Tables) == 0 {
						b.Fatal("experiment produced no tables")
					}
					_, wall, sim := tm.Summary()
					totSim += sim
					totWall += wall
				}
				if totWall > 0 {
					b.ReportMetric(float64(totSim)/totWall.Seconds(), "simcycles/s")
				}
			},
		})
	}
	return out
}

// Entries assembles the runnable set: kernel microbenchmarks plus (unless
// kernelOnly) the experiment suite, filtered by the optional name regexp.
func Entries(scale harness.Scale, seed int64, kernelOnly bool, filter *regexp.Regexp) []Entry {
	all := KernelEntries()
	if !kernelOnly {
		all = append(all, ExperimentEntries(scale, seed)...)
	}
	if filter == nil {
		return all
	}
	out := all[:0]
	for _, e := range all {
		if filter.MatchString(e.Name) {
			out = append(out, e)
		}
	}
	return out
}

package bench

import (
	"sync/atomic"
	"testing"

	"affinityalloc/internal/engine"
)

// pdesLookahead is the conservative window width the sharded benchmarks
// run with — the same order as the simulator's per-hop NoC latency, so
// the window/compute ratio matches what a sharded system sees.
const pdesLookahead = 8

// pdesDepth is the total event population: the same steady-state depth
// as the churn benchmarks, dealt round-robin across shards so total
// queue work is comparable between shard counts.
const pdesDepth = churnDepth

// pdesChurn is the sharded conservative-PDES benchmark: a population of
// self-perpetuating events hops between shards through Coordinator.Send,
// so each of the b.N operations is one schedule+fire pair including its
// share of window synchronization (admit, min-pending scan, barrier).
// shards=1 measures the degenerate single-kernel path; higher counts
// measure how much synchronization overhead the windowed protocol adds
// and, on multi-core hosts, how much of it parallel window execution
// buys back. The remaining counter is atomic because shard windows
// execute on separate goroutines.
func pdesChurn(b *testing.B, shards int) {
	c := engine.NewCoordinator(shards, pdesLookahead, 1)
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	hops := make([]func(uint64), shards)
	for i := range hops {
		i := i
		hops[i] = func(x uint64) {
			if remaining.Add(-1) < 0 {
				return
			}
			x = x*6364136223846793005 + 1442695040888963407
			dst := int((x >> 33) % uint64(shards))
			at := c.Shard(i).Now() + pdesLookahead + engine.Time(x>>40)&7
			if dst == i {
				c.Shard(i).ScheduleArg(at, hops[i], x)
			} else {
				c.Send(i, dst, at, hops[dst], x)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for j := 0; j < pdesDepth; j++ {
		sh := j % shards
		c.Shard(sh).ScheduleArg(engine.Time(1+j/shards), hops[sh], uint64(j)*0x9e3779b97f4a7c15)
	}
	c.Run()
}

// ShardPDES1 benchmarks the Coordinator's degenerate single-shard path —
// the overhead floor every sharded run is compared against.
func ShardPDES1(b *testing.B) { pdesChurn(b, 1) }

// ShardPDES2 benchmarks two-way sharded execution.
func ShardPDES2(b *testing.B) { pdesChurn(b, 2) }

// ShardPDES4 benchmarks four-way sharded execution (mesh quadrants).
func ShardPDES4(b *testing.B) { pdesChurn(b, 4) }

// Package bench is the benchmark runner behind `cmd/affbench` and the
// BENCH_*.json baselines: it defines the event-kernel microbenchmarks,
// wraps the paper-experiment suite as benchmark entries, runs entries via
// testing.Benchmark, and reads/writes/validates/diffs the schema'd
// baseline documents.
package bench

import (
	"testing"

	"affinityalloc/internal/engine"
)

// kernelQueue is the surface shared by the ladder queue (engine.Sim) and
// the container/heap reference (engine.RefQueue) so the same benchmark
// bodies measure both.
type kernelQueue interface {
	After(engine.Time, func())
	ScheduleArg(engine.Time, func(uint64), uint64)
	At(engine.Time, func())
	Run() engine.Time
	Now() engine.Time
}

// churnDepth is the steady-state queue depth the churn benchmarks hold:
// deep enough that ordering work dominates, shallow enough to model the
// per-component event populations the simulator actually carries.
const churnDepth = 512

// churn is the event-churn benchmark: the queue holds churnDepth
// self-rescheduling events, so each of the b.N operations is one
// steady-state schedule+fire pair. horizonMask bounds the pseudorandom
// reschedule distance — small masks keep events in the near-future ring,
// large masks force the far-future spill path.
func churn(b *testing.B, q kernelQueue, horizonMask engine.Time) {
	remaining := b.N
	x := uint64(0x9e3779b97f4a7c15)
	var self func()
	self = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		x = x*6364136223846793005 + 1442695040888963407
		q.After((engine.Time(x>>33)&horizonMask)+1, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < churnDepth; i++ {
		self()
	}
	q.Run()
}

// churnArg is churn on the ScheduleArg fast path: one stored callback,
// state packed into the uint64 argument, no closures at all.
func churnArg(b *testing.B, q kernelQueue, horizonMask engine.Time) {
	remaining := b.N
	var self func(uint64)
	self = func(x uint64) {
		if remaining <= 0 {
			return
		}
		remaining--
		x = x*6364136223846793005 + 1442695040888963407
		q.ScheduleArg(q.Now()+(engine.Time(x>>33)&horizonMask)+1, self, x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < churnDepth; i++ {
		self(uint64(i) * 0x9e3779b97f4a7c15)
	}
	q.Run()
}

// sameCycleBurst measures same-cycle FIFO throughput: bursts of events at
// the current cycle, drained in scheduling order.
func sameCycleBurst(b *testing.B, q kernelQueue) {
	fn := func() {}
	const burst = 64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += burst {
		at := q.Now() + 1
		for i := 0; i < burst; i++ {
			q.At(at, fn)
		}
		q.Run()
	}
}

// Near-future masks stay inside the ladder's ring window; spill masks
// overflow it on most reschedules.
const (
	nearMask  = 127
	spillMask = 8191
)

// ChurnLadder measures steady-state event churn on the ladder queue.
func ChurnLadder(b *testing.B) { churn(b, engine.New(1), nearMask) }

// ChurnHeap is the same churn on the retained container/heap reference —
// the pre-ladder kernel, and the baseline the ≥25% ns/op improvement gate
// compares against.
func ChurnHeap(b *testing.B) { churn(b, &engine.RefQueue{}, nearMask) }

// ChurnSpillLadder stresses the far-future spill path of the ladder.
func ChurnSpillLadder(b *testing.B) { churn(b, engine.New(1), spillMask) }

// ChurnSpillHeap is the far-future churn on the heap reference.
func ChurnSpillHeap(b *testing.B) { churn(b, &engine.RefQueue{}, spillMask) }

// ScheduleArgLadder measures the allocation-free ScheduleArg fast path.
func ScheduleArgLadder(b *testing.B) { churnArg(b, engine.New(1), nearMask) }

// ScheduleArgHeap is the ScheduleArg churn on the heap reference.
func ScheduleArgHeap(b *testing.B) { churnArg(b, &engine.RefQueue{}, nearMask) }

// SameCycleLadder measures same-cycle FIFO bursts on the ladder.
func SameCycleLadder(b *testing.B) { sameCycleBurst(b, engine.New(1)) }

// KernelEntries lists the event-kernel microbenchmarks in report order.
// The churn/ladder-vs-heap pair is the regression gate for the kernel
// rewrite; the spill pair guards the overflow path.
func KernelEntries() []Entry {
	return []Entry{
		{Name: "kernel/churn/ladder", F: ChurnLadder},
		{Name: "kernel/churn/heap", F: ChurnHeap},
		{Name: "kernel/churn-spill/ladder", F: ChurnSpillLadder},
		{Name: "kernel/churn-spill/heap", F: ChurnSpillHeap},
		{Name: "kernel/schedule-arg/ladder", F: ScheduleArgLadder},
		{Name: "kernel/schedule-arg/heap", F: ScheduleArgHeap},
		{Name: "kernel/same-cycle/ladder", F: SameCycleLadder},
	}
}

// Package bench is the benchmark runner behind `cmd/affbench` and the
// BENCH_*.json baselines: it defines the event-kernel microbenchmarks,
// wraps the paper-experiment suite as benchmark entries, runs entries via
// testing.Benchmark, and reads/writes/validates/diffs the schema'd
// baseline documents.
package bench

import (
	"testing"

	"affinityalloc/internal/engine"
)

// kernelQueue is the surface shared by the ladder queue (engine.Sim) and
// the container/heap reference (engine.RefQueue) so the same benchmark
// bodies measure both.
type kernelQueue interface {
	After(engine.Time, func())
	ScheduleArg(engine.Time, func(uint64), uint64)
	At(engine.Time, func())
	Run() engine.Time
	Now() engine.Time
}

// churnDepth is the steady-state queue depth the churn benchmarks hold:
// deep enough that ordering work dominates, shallow enough to model the
// per-component event populations the simulator actually carries.
const churnDepth = 512

// sparseDepth is the population the sparse churn benchmarks hold: so few
// events that the ring is mostly empty slots, making the cost of finding
// the next occupied cycle — not the scheduling itself — the measured
// operation.
const sparseDepth = 4

// churn is the event-churn benchmark: the queue holds depth
// self-rescheduling events, so each of the b.N operations is one
// steady-state schedule+fire pair. horizonMask bounds the pseudorandom
// reschedule distance — small masks keep events in the near-future ring,
// large masks force the far-future spill path. A depth far below the mask
// leaves the ring sparse, which is what exercises the queue's
// next-occupied-slot scan.
func churn(b *testing.B, q kernelQueue, horizonMask engine.Time, depth int) {
	remaining := b.N
	x := uint64(0x9e3779b97f4a7c15)
	var self func()
	self = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		x = x*6364136223846793005 + 1442695040888963407
		q.After((engine.Time(x>>33)&horizonMask)+1, self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < depth; i++ {
		self()
	}
	q.Run()
}

// churnArg is churn on the ScheduleArg fast path: one stored callback,
// state packed into the uint64 argument, no closures at all.
func churnArg(b *testing.B, q kernelQueue, horizonMask engine.Time) {
	remaining := b.N
	var self func(uint64)
	self = func(x uint64) {
		if remaining <= 0 {
			return
		}
		remaining--
		x = x*6364136223846793005 + 1442695040888963407
		q.ScheduleArg(q.Now()+(engine.Time(x>>33)&horizonMask)+1, self, x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < churnDepth; i++ {
		self(uint64(i) * 0x9e3779b97f4a7c15)
	}
	q.Run()
}

// sameCycleBurst measures same-cycle FIFO throughput: bursts of events at
// the current cycle, drained in scheduling order.
func sameCycleBurst(b *testing.B, q kernelQueue) {
	fn := func() {}
	const burst = 64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += burst {
		at := q.Now() + 1
		for i := 0; i < burst; i++ {
			q.At(at, fn)
		}
		q.Run()
	}
}

// Near-future masks stay inside the ladder's ring window; spill masks
// overflow it on most reschedules.
const (
	nearMask  = 127
	spillMask = 8191
)

// ChurnLadder measures steady-state event churn on the ladder queue.
func ChurnLadder(b *testing.B) { churn(b, engine.New(1), nearMask, churnDepth) }

// ChurnHeap is the same churn on the retained container/heap reference —
// the pre-ladder kernel, and the baseline the ≥25% ns/op improvement gate
// compares against.
func ChurnHeap(b *testing.B) { churn(b, &engine.RefQueue{}, nearMask, churnDepth) }

// ChurnSpillLadder stresses the far-future spill path of the ladder.
func ChurnSpillLadder(b *testing.B) { churn(b, engine.New(1), spillMask, churnDepth) }

// ChurnSpillHeap is the far-future churn on the heap reference.
func ChurnSpillHeap(b *testing.B) { churn(b, &engine.RefQueue{}, spillMask, churnDepth) }

// ChurnSparseLadder measures sparse-ring churn on the ladder: a handful
// of events spread over the full ring window, so nearly every pop must
// skip a long run of empty cycles. This is the workload the occupancy
// bitmap exists for — the pre-bitmap kernel probed every empty slot one
// by one, and this entry is its regression gate.
func ChurnSparseLadder(b *testing.B) { churn(b, engine.New(1), nearMask, sparseDepth) }

// ChurnSparseHeap is the sparse churn on the heap reference, whose cost
// is depth-dependent and so indifferent to sparsity.
func ChurnSparseHeap(b *testing.B) { churn(b, &engine.RefQueue{}, nearMask, sparseDepth) }

// ScheduleArgLadder measures the allocation-free ScheduleArg fast path.
func ScheduleArgLadder(b *testing.B) { churnArg(b, engine.New(1), nearMask) }

// ScheduleArgHeap is the ScheduleArg churn on the heap reference.
func ScheduleArgHeap(b *testing.B) { churnArg(b, &engine.RefQueue{}, nearMask) }

// SameCycleLadder measures same-cycle FIFO bursts on the ladder.
func SameCycleLadder(b *testing.B) { sameCycleBurst(b, engine.New(1)) }

// KernelEntries lists the event-kernel microbenchmarks in report order.
// The churn/ladder-vs-heap pair is the regression gate for the kernel
// rewrite; the spill pair guards the overflow path; the sparse pair
// guards the occupancy-bitmap next-event scan; the shard-pdes trio
// tracks the windowed conservative-synchronization overhead at each
// shard count.
func KernelEntries() []Entry {
	return []Entry{
		{Name: "kernel/churn/ladder", F: ChurnLadder},
		{Name: "kernel/churn/heap", F: ChurnHeap},
		{Name: "kernel/churn-spill/ladder", F: ChurnSpillLadder},
		{Name: "kernel/churn-spill/heap", F: ChurnSpillHeap},
		{Name: "kernel/churn-sparse/ladder", F: ChurnSparseLadder},
		{Name: "kernel/churn-sparse/heap", F: ChurnSparseHeap},
		{Name: "kernel/schedule-arg/ladder", F: ScheduleArgLadder},
		{Name: "kernel/schedule-arg/heap", F: ScheduleArgHeap},
		{Name: "kernel/same-cycle/ladder", F: SameCycleLadder},
		{Name: "kernel/shard-pdes/1", F: ShardPDES1},
		{Name: "kernel/shard-pdes/2", F: ShardPDES2},
		{Name: "kernel/shard-pdes/4", F: ShardPDES4},
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"affinityalloc/internal/harness"
)

// Schema is the BENCH_*.json document version. Bump on any incompatible
// field change; Validate rejects unknown versions so a stale comparison
// tool fails loudly instead of misreading a baseline.
const Schema = "affbench/v1"

// Entry is one runnable benchmark.
type Entry struct {
	Name string
	F    func(*testing.B)
}

// Benchmark is one measured result inside a Document. Field names are the
// stable snake_case schema of the committed BENCH_*.json baselines.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SimCyclesPerSec is simulated cycles retired per wall second —
	// populated for experiment benchmarks, zero for kernel ones.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// Document is one benchmark baseline file.
type Document struct {
	Schema string `json:"schema"`
	// Scale and Seed record the harness sizing the experiment benchmarks
	// ran at, so a diff of mismatched baselines is rejected up front.
	Scale      string      `json:"scale"`
	Seed       int64       `json:"seed"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Validate schema-checks a document: version, sizing, and per-benchmark
// field sanity (unique names, positive timings, non-negative counters).
func (d *Document) Validate() error {
	if d.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", d.Schema, Schema)
	}
	if _, err := harness.ParseScale(d.Scale); err != nil {
		return fmt.Errorf("bench: bad scale: %v", err)
	}
	if len(d.Benchmarks) == 0 {
		return fmt.Errorf("bench: no benchmarks")
	}
	seen := make(map[string]bool, len(d.Benchmarks))
	for i, b := range d.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("bench: benchmark %d has no name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("bench: duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations <= 0 {
			return fmt.Errorf("bench: %s: iterations %d, want > 0", b.Name, b.Iterations)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("bench: %s: ns_per_op %g, want > 0", b.Name, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 || b.SimCyclesPerSec < 0 {
			return fmt.Errorf("bench: %s: negative counter", b.Name)
		}
	}
	return nil
}

// Parse decodes and validates a baseline document.
func Parse(data []byte) (*Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode renders the document as committed-baseline JSON (stable
// indentation, trailing newline).
func (d *Document) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Run executes the entries in order and collects their results. Each
// entry runs under testing.Benchmark, honoring the process's
// -test.benchtime setting (cmd/affbench wires its -benchtime flag
// through). progress, when non-nil, receives one line per finished entry.
func Run(entries []Entry, progress func(string)) []Benchmark {
	out := make([]Benchmark, 0, len(entries))
	for _, e := range entries {
		r := testing.Benchmark(e.F)
		b := Benchmark{
			Name:        e.Name,
			Iterations:  int64(r.N),
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if v, ok := r.Extra["simcycles/s"]; ok {
			b.SimCyclesPerSec = v
		}
		if progress != nil {
			progress(fmt.Sprintf("%-28s %12.1f ns/op %8d allocs/op", e.Name, b.NsPerOp, b.AllocsPerOp))
		}
		out = append(out, b)
	}
	return out
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name        string
	Old, New    *Benchmark // nil when the benchmark appears on one side only
	Ratio       float64    // new/old ns_per_op; 0 when either side is missing
	NsRegressed bool
	AllocsGrew  bool
}

// Compare diffs two baselines. A benchmark regresses when its ns/op grew
// by more than threshold (e.g. 0.25 = 25%) or its allocs/op increased at
// all — allocation counts are exact, so any growth is a real change.
// Sizing mismatches are an error: the numbers would not be comparable.
func Compare(old, new *Document, threshold float64) ([]Delta, error) {
	if old.Scale != new.Scale || old.Seed != new.Seed {
		return nil, fmt.Errorf("bench: baselines not comparable: old scale=%s seed=%d, new scale=%s seed=%d",
			old.Scale, old.Seed, new.Scale, new.Seed)
	}
	byName := func(d *Document) map[string]*Benchmark {
		m := make(map[string]*Benchmark, len(d.Benchmarks))
		for i := range d.Benchmarks {
			m[d.Benchmarks[i].Name] = &d.Benchmarks[i]
		}
		return m
	}
	om, nm := byName(old), byName(new)
	names := make([]string, 0, len(om)+len(nm))
	for n := range om {
		names = append(names, n)
	}
	for n := range nm {
		if _, ok := om[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []Delta
	for _, n := range names {
		d := Delta{Name: n, Old: om[n], New: nm[n]}
		if d.Old != nil && d.New != nil {
			d.Ratio = d.New.NsPerOp / d.Old.NsPerOp
			d.NsRegressed = d.Ratio > 1+threshold
			d.AllocsGrew = d.New.AllocsPerOp > d.Old.AllocsPerOp
		}
		out = append(out, d)
	}
	return out, nil
}

// RenderCompare writes the comparison as a table and returns the number
// of regressions flagged.
func RenderCompare(deltas []Delta, threshold float64) (string, int) {
	var b strings.Builder
	regressions := 0
	fmt.Fprintf(&b, "%-34s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "verdict")
	for _, d := range deltas {
		switch {
		case d.Old == nil:
			fmt.Fprintf(&b, "%-34s %14s %14.1f %8s  new (no baseline)\n", d.Name, "-", d.New.NsPerOp, "-")
		case d.New == nil:
			fmt.Fprintf(&b, "%-34s %14.1f %14s %8s  removed\n", d.Name, d.Old.NsPerOp, "-", "-")
		default:
			verdict := "ok"
			if d.NsRegressed {
				verdict = fmt.Sprintf("REGRESSION (>%g%% slower)", threshold*100)
				regressions++
			}
			if d.AllocsGrew {
				verdict += fmt.Sprintf(" ALLOCS %d -> %d", d.Old.AllocsPerOp, d.New.AllocsPerOp)
				if !d.NsRegressed {
					regressions++
				}
			}
			fmt.Fprintf(&b, "%-34s %14.1f %14.1f %7.2fx  %s\n", d.Name, d.Old.NsPerOp, d.New.NsPerOp, d.Ratio, verdict)
		}
	}
	return b.String(), regressions
}

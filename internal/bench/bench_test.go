package bench

import (
	"strings"
	"testing"
)

func doc(names ...string) *Document {
	d := &Document{Schema: Schema, Scale: "tiny", Seed: 1, Benchtime: "1x"}
	for i, n := range names {
		d.Benchmarks = append(d.Benchmarks, Benchmark{
			Name: n, Iterations: 1, NsPerOp: float64(100 * (i + 1)), AllocsPerOp: int64(i),
		})
	}
	return d
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Document)
		want string
	}{
		{"wrong-schema", func(d *Document) { d.Schema = "affbench/v0" }, "schema"},
		{"bad-scale", func(d *Document) { d.Scale = "huge" }, "scale"},
		{"empty", func(d *Document) { d.Benchmarks = nil }, "no benchmarks"},
		{"dup-name", func(d *Document) { d.Benchmarks[1].Name = d.Benchmarks[0].Name }, "duplicate"},
		{"zero-iters", func(d *Document) { d.Benchmarks[0].Iterations = 0 }, "iterations"},
		{"zero-ns", func(d *Document) { d.Benchmarks[0].NsPerOp = 0 }, "ns_per_op"},
		{"negative-allocs", func(d *Document) { d.Benchmarks[0].AllocsPerOp = -1 }, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := doc("a", "b")
			tc.mut(d)
			err := d.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	d := doc("kernel/churn/ladder", "experiment/fig4")
	d.Benchmarks[1].SimCyclesPerSec = 1e6
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks[1].SimCyclesPerSec != 1e6 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if data[len(data)-1] != '\n' {
		t.Error("Encode should end with a newline")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := doc("steady", "slower", "allocs", "gone")
	cur := doc("steady", "slower", "allocs", "added")
	cur.Benchmarks[1].NsPerOp = old.Benchmarks[1].NsPerOp * 1.5 // > 25% slower
	cur.Benchmarks[2].AllocsPerOp++                             // any alloc growth regresses

	deltas, err := Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["steady"]; d.NsRegressed || d.AllocsGrew {
		t.Error("unchanged benchmark flagged")
	}
	if !byName["slower"].NsRegressed {
		t.Error("50% slowdown not flagged at 25% threshold")
	}
	if !byName["allocs"].AllocsGrew {
		t.Error("alloc growth not flagged")
	}
	if d := byName["gone"]; d.Old == nil || d.New != nil {
		t.Error("removed benchmark not reported as removed")
	}
	if d := byName["added"]; d.Old != nil || d.New == nil {
		t.Error("new benchmark not reported as baseline-less")
	}
	table, regressions := RenderCompare(deltas, 0.25)
	if regressions != 2 {
		t.Errorf("regressions = %d, want 2\n%s", regressions, table)
	}
	if !strings.Contains(table, "REGRESSION") || !strings.Contains(table, "ALLOCS 2 -> 3") {
		t.Errorf("table missing verdicts:\n%s", table)
	}
}

func TestCompareRejectsMismatchedSizing(t *testing.T) {
	old, cur := doc("a"), doc("a")
	cur.Seed = 2
	if _, err := Compare(old, cur, 0.25); err == nil {
		t.Error("seed mismatch not rejected")
	}
	cur = doc("a")
	cur.Scale = "default"
	if _, err := Compare(old, cur, 0.25); err == nil {
		t.Error("scale mismatch not rejected")
	}
}

// TestKernelEntriesRunnable smoke-runs every kernel microbenchmark for
// one iteration through the same path cmd/affbench uses.
func TestKernelEntriesRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each kernel benchmark at full benchtime")
	}
	entries := KernelEntries()
	if len(entries) != 12 {
		t.Fatalf("KernelEntries() = %d entries, want 12", len(entries))
	}
	results := Run(entries, nil)
	for _, r := range results {
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: empty result %+v", r.Name, r)
		}
	}
}

// Package cliconf is the single definition of the flags shared by the
// repository's binaries (affsim, afftables, affinityd, affload):
// -scale, -seed, -j, -shards, -policy, -faults, -realloc, -metrics-out,
// -trace-out, -pprof, -timing, -record and -replay. Each binary registers the subset it
// serves, so names, defaults and help text cannot drift between CLIs,
// and resolves them into validated harness.Options / core.PolicyConfig
// / faults.Spec values through one code path.
package cliconf

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"affinityalloc/internal/core"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/harness"
	"affinityalloc/internal/realloc"
)

// Flags selects which canonical flags to register.
type Flags uint

const (
	// FlagScale registers -scale (tiny|default|paper).
	FlagScale Flags = 1 << iota
	// FlagSeed registers -seed.
	FlagSeed
	// FlagJobs registers -j.
	FlagJobs
	// FlagShards registers -shards.
	FlagShards
	// FlagPolicy registers -policy.
	FlagPolicy
	// FlagFaults registers -faults.
	FlagFaults
	// FlagMetricsOut registers -metrics-out.
	FlagMetricsOut
	// FlagTraceOut registers -trace-out.
	FlagTraceOut
	// FlagPprof registers -pprof.
	FlagPprof
	// FlagTiming registers -timing.
	FlagTiming
	// FlagRecord registers -record (afftrace/v1 scenario recording).
	FlagRecord
	// FlagReplay registers -replay (afftrace/v1 scenario replay).
	FlagReplay
	// FlagRealloc registers -realloc (online re-allocation; see
	// realloc.Parse). Not part of HarnessFlags so binaries opt in
	// explicitly — affinityd, for instance, serves placement only.
	FlagRealloc

	// HarnessFlags is the experiment-harness set.
	HarnessFlags = FlagScale | FlagSeed | FlagJobs | FlagShards | FlagFaults | FlagTiming
	// ArtifactFlags is the artifact/profiling set.
	ArtifactFlags = FlagMetricsOut | FlagTraceOut | FlagPprof
)

// Config holds the parsed flag values. Fields for unregistered flags
// keep their defaults.
type Config struct {
	Scale      string
	Seed       int64
	Jobs       int
	Shards     int
	PolicyStr  string
	FaultsStr  string
	MetricsOut string
	TraceOut   string
	PprofOut   string
	Timing     bool
	RecordOut  string
	ReplayIn   string
	ReallocStr string
}

// Register installs the selected flags on fs (use flag.CommandLine in
// main) and returns the value holder to read after fs.Parse.
func Register(fs *flag.FlagSet, which Flags) *Config {
	c := &Config{Scale: "default", Seed: 1, Shards: 1, PolicyStr: "hybrid5"}
	if which&FlagScale != 0 {
		fs.StringVar(&c.Scale, "scale", c.Scale, "experiment scale: tiny|default|paper")
	}
	if which&FlagSeed != 0 {
		fs.Int64Var(&c.Seed, "seed", c.Seed, "simulation seed")
	}
	if which&FlagJobs != 0 {
		fs.IntVar(&c.Jobs, "j", 0, "concurrent simulation cells (default GOMAXPROCS)")
	}
	if which&FlagShards != 0 {
		fs.IntVar(&c.Shards, "shards", 1, "event-kernel shards per cell (mesh rectangles; output is byte-identical for every value)")
	}
	if which&FlagPolicy != 0 {
		fs.StringVar(&c.PolicyStr, "policy", c.PolicyStr, "bank policy: rnd|lnr|minhop|hybrid<H> (e.g. hybrid5)")
	}
	if which&FlagFaults != 0 {
		fs.StringVar(&c.FaultsStr, "faults", "", "degrade the machine, e.g. dead-banks=2,dead-link=3>4,drop-link=0>1:0.05,dram-slow=0:2 (see faults.Parse)")
	}
	if which&FlagMetricsOut != 0 {
		fs.StringVar(&c.MetricsOut, "metrics-out", "", "write per-cell telemetry as a metrics JSON document")
	}
	if which&FlagTraceOut != 0 {
		fs.StringVar(&c.TraceOut, "trace-out", "", "write sim-time phases as a Chrome trace_event JSON timeline")
	}
	if which&FlagPprof != 0 {
		fs.StringVar(&c.PprofOut, "pprof", "", "write a CPU profile of the process")
	}
	if which&FlagTiming != 0 {
		fs.BoolVar(&c.Timing, "timing", false, "report per-cell wall time and sim-cycles/s on stderr")
	}
	if which&FlagRecord != 0 {
		fs.StringVar(&c.RecordOut, "record", "", "record an afftrace/v1 scenario trace of every simulation cell to this file (.jsonl for text, anything else binary)")
	}
	if which&FlagReplay != 0 {
		fs.StringVar(&c.ReplayIn, "replay", "", "replay a recorded afftrace/v1 trace instead of simulating, verifying placements against the recording")
	}
	if which&FlagRealloc != 0 {
		fs.StringVar(&c.ReallocStr, "realloc", "", "enable the online reconciler, e.g. epoch=2000,threshold=0.25,budget=4,hysteresis=3,payback=8 (see realloc.Parse)")
	}
	return c
}

// Faults parses the -faults value.
func (c *Config) Faults() (faults.Spec, error) {
	return faults.Parse(c.FaultsStr)
}

// Realloc parses the -realloc value (a zero Config — disabled — when
// the flag was empty or unregistered).
func (c *Config) Realloc() (realloc.Config, error) {
	return realloc.Parse(c.ReallocStr)
}

// Policy parses the -policy value.
func (c *Config) Policy() (core.PolicyConfig, error) {
	return core.ParsePolicy(c.PolicyStr)
}

// Options resolves the harness options from the registered flags and
// validates them, so every binary reports one named error up front
// instead of one failure per simulation cell.
func (c *Config) Options() (harness.Options, error) {
	scale, err := harness.ParseScale(c.Scale)
	if err != nil {
		return harness.Options{}, err
	}
	spec, err := c.Faults()
	if err != nil {
		return harness.Options{}, err
	}
	rcfg, err := c.Realloc()
	if err != nil {
		return harness.Options{}, err
	}
	opt := harness.Options{Scale: scale, Seed: c.Seed, Jobs: c.Jobs, Shards: c.Shards, Faults: spec, Realloc: rcfg}
	if err := opt.Validate(); err != nil {
		return harness.Options{}, err
	}
	return opt, nil
}

// StartProfile starts the -pprof CPU profile when requested. The
// returned stop function is safe to call unconditionally (and more than
// once); it flushes and closes the profile.
func (c *Config) StartProfile() (func(), error) {
	if c.PprofOut == "" {
		return func() {}, nil
	}
	f, err := os.Create(c.PprofOut)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// Artifacts builds the harness artifact request from -metrics-out and
// -trace-out; the returned closer flushes both files. A nil *Artifacts
// (no flag set) is valid to pass straight to the harness.
func (c *Config) Artifacts(experiment string, scale harness.Scale) (*harness.Artifacts, func(), error) {
	if c.MetricsOut == "" && c.TraceOut == "" {
		return nil, func() {}, nil
	}
	arts := &harness.Artifacts{Experiment: experiment, Scale: scale, Seed: c.Seed}
	var files []*os.File
	closeAll := func() {
		for _, f := range files {
			f.Close()
		}
	}
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("cliconf: %w", err)
		}
		files = append(files, f)
		return f, nil
	}
	if c.MetricsOut != "" {
		f, err := open(c.MetricsOut)
		if err != nil {
			return nil, nil, err
		}
		arts.MetricsOut = f
	}
	if c.TraceOut != "" {
		f, err := open(c.TraceOut)
		if err != nil {
			return nil, nil, err
		}
		arts.TraceOut = f
	}
	return arts, closeAll, nil
}

package backoff

import (
	"context"
	"testing"
	"time"
)

// TestDelaySaturates pins the overflow-proof doubling schedule,
// including the cases that used to live beside the harness retry loop:
// base<<attempt would overflow time.Duration at large attempts (1s goes
// negative at attempt 34) and Go shift counts past the word width.
func TestDelaySaturates(t *testing.T) {
	const cap = 30 * time.Second
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 5, 0},            // no backoff configured
		{-time.Second, 3, 0}, // negative base disables waiting
		{time.Millisecond, 0, time.Millisecond},
		{time.Millisecond, 3, 8 * time.Millisecond}, // doubling intact below the cap
		{time.Second, 4, 16 * time.Second},
		{time.Second, 5, cap},          // first clamped step (32s > 30s)
		{time.Second, 34, cap},         // would be negative unclamped
		{time.Second, 200, cap},        // shift count past the word width
		{time.Minute, 0, cap},          // base already above the cap
		{time.Second, -3, time.Second}, // negative attempt counts as 0
	}
	for _, tc := range cases {
		if got := Delay(tc.base, cap, tc.attempt); got != tc.want {
			t.Errorf("Delay(%v, %v, %d) = %v, want %v", tc.base, cap, tc.attempt, got, tc.want)
		}
		if got := Delay(tc.base, cap, tc.attempt); got < 0 || got > cap {
			t.Errorf("Delay(%v, %v, %d) = %v out of [0, %v]", tc.base, cap, tc.attempt, got, cap)
		}
	}
}

// TestDelayDefaultCap pins that a non-positive cap falls back to
// DefaultCap rather than disabling saturation.
func TestDelayDefaultCap(t *testing.T) {
	if got := Delay(time.Second, 0, 200); got != DefaultCap {
		t.Errorf("Delay with zero cap at attempt 200 = %v, want DefaultCap %v", got, DefaultCap)
	}
	if got := Delay(time.Second, -1, 40); got != DefaultCap {
		t.Errorf("Delay with negative cap at attempt 40 = %v, want DefaultCap %v", got, DefaultCap)
	}
}

// TestPolicyJitterBounds pins the jitter window: a delay d with jitter
// j is drawn from [d*(1-j), d], so the cap is still the hard bound.
func TestPolicyJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	for attempt := 0; attempt < 12; attempt++ {
		full := Delay(p.Base, p.Cap, attempt)
		lo := full - time.Duration(0.5*float64(full))
		for _, u := range []float64{0, 0.25, 0.5, 0.999999} {
			got := p.delayAt(attempt, u)
			if got < lo || got > full {
				t.Errorf("delayAt(attempt=%d, u=%v) = %v outside [%v, %v]", attempt, u, got, lo, full)
			}
		}
		if got := p.delayAt(attempt, 0); got != full {
			t.Errorf("delayAt(attempt=%d, u=0) = %v, want the full delay %v", attempt, got, full)
		}
	}
	// Jitter > 1 clamps to 1 (delays may reach 0, never negative).
	wild := Policy{Base: time.Millisecond, Jitter: 4}
	for _, u := range []float64{0, 0.5, 0.999999} {
		if got := wild.delayAt(0, u); got < 0 || got > time.Millisecond {
			t.Errorf("jitter>1 delayAt(0, %v) = %v out of [0, 1ms]", u, got)
		}
	}
	// Zero jitter is exactly the deterministic schedule.
	flat := Policy{Base: time.Millisecond, Cap: time.Second}
	for attempt := 0; attempt < 8; attempt++ {
		if got, want := flat.Delay(attempt), Delay(time.Millisecond, time.Second, attempt); got != want {
			t.Errorf("jitterless Policy.Delay(%d) = %v, want %v", attempt, got, want)
		}
	}
}

// TestSleepHonorsContext pins that a caller's deadline cuts the backoff
// short instead of sleeping through it.
func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Minute); err != context.Canceled {
		t.Errorf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Sleep on canceled ctx took %v", elapsed)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v, want nil", err)
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Errorf("Sleep(1ms) = %v, want nil", err)
	}
}

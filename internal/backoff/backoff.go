// Package backoff is the repository's single definition of retry
// delays: exponential doubling from a base, saturating at a cap so the
// shift can never overflow time.Duration into a negative (instantly
// returning) or absurdly long sleep, with optional proportional jitter
// for callers that retry against a shared service and must not
// synchronize their retries into waves.
//
// The experiment harness (internal/harness) uses the deterministic
// Delay form; the affinityd client retry loop uses a jittered Policy.
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// DefaultCap is the saturation bound used when a Policy leaves Cap
// zero. Beyond ~30s a retry loop is effectively wedged anyway.
const DefaultCap = 30 * time.Second

// Delay returns the backoff before retry attempt (0-based): base
// doubling per attempt, saturating at cap. The saturation test divides
// instead of multiplying — base<<attempt may overflow, cap>>attempt
// cannot (Go shifts past the width yield 0, so huge attempts saturate
// too). A non-positive base disables waiting; a non-positive cap takes
// DefaultCap; a negative attempt counts as 0.
func Delay(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	if attempt < 0 {
		attempt = 0
	}
	if base > cap>>uint(attempt) {
		return cap
	}
	return base << uint(attempt)
}

// Policy is a reusable retry-delay schedule. The zero value waits not
// at all (Base 0); a Policy with only Base set doubles up to
// DefaultCap with no jitter.
type Policy struct {
	// Base is the delay before the first retry; <= 0 disables waiting.
	Base time.Duration
	// Cap saturates the doubling; <= 0 means DefaultCap.
	Cap time.Duration
	// Jitter in [0, 1] is the fraction of each delay that is randomized
	// away: the wait is drawn uniformly from [d*(1-Jitter), d], so the
	// cap still bounds every sleep.
	Jitter float64
}

// Delay returns the (possibly jittered) backoff before retry attempt
// (0-based).
func (p Policy) Delay(attempt int) time.Duration {
	return p.delayAt(attempt, rand.Float64())
}

// delayAt is Delay with the jitter draw u (in [0, 1)) made explicit —
// the deterministic core the table tests pin.
func (p Policy) delayAt(attempt int, u float64) time.Duration {
	d := Delay(p.Base, p.Cap, attempt)
	if d == 0 || p.Jitter <= 0 {
		return d
	}
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	return d - time.Duration(u*j*float64(d))
}

// Sleep waits for d or until ctx is done, whichever comes first,
// returning ctx.Err() when interrupted — the ctx-aware sleep a retry
// loop needs so a caller's deadline cuts the backoff short.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

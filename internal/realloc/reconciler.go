package realloc

import (
	"affinityalloc/internal/cache"
	"affinityalloc/internal/core"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/telemetry"
	"affinityalloc/internal/topo"
)

// Counters are the realloc_* telemetry scalars.
type Counters struct {
	// Migrations counts applied balance migrations.
	Migrations uint64
	// KillRehomes counts emergency re-homes off dead banks.
	KillRehomes uint64
	// MovedBytes totals the migrated payload.
	MovedBytes uint64
	// MigrationCycles totals the modeled cycles from each migration's
	// start to its last line's landing.
	MigrationCycles uint64
	// Rejected counts planned candidates reverted by the cost/benefit
	// test.
	Rejected uint64
	// Epochs counts closed reconciliation epochs.
	Epochs uint64
}

// Applied is one applied migration, recorded for the convergence and
// no-ping-pong regression tests.
type Applied struct {
	Epoch  uint64 // 1-based epoch that planned the move
	Chunk  memsim.Addr
	From   int
	To     int
	Rehome bool
}

// granule is one tracked placement granule.
type granule struct {
	start memsim.Addr
	size  int
	bank  int     // home at the last epoch close
	count uint64  // accesses in the open epoch
	heat  float64 // EWMA accesses per epoch
	cool  int     // hysteresis epochs remaining
}

// Reconciler watches the access stream through MemSystem's access hook,
// closes an epoch every Config.Epoch sim-cycles, and applies the pure
// Plan's migrations: address-space overrides plus honestly modeled
// migration traffic. All state updates happen on the workload
// goroutine (the hook runs inline with each access), and the only
// counter reads are drain-barrier observations (BankBusyCycles), so the
// schedule is byte-identical at any -j and any -shards.
type Reconciler struct {
	cfg   Config
	space *memsim.Space
	mesh  *topo.Mesh
	mem   *cache.MemSystem
	rt    *core.Runtime

	granules map[memsim.Addr]*granule
	order    []memsim.Addr // first-touch order; the only iteration order

	bankHeat []float64
	lastBusy []uint64

	nextEpoch engine.Time
	inEpoch   bool

	lineCost float64
	hopCost  float64

	counters Counters
	log      []Applied
}

// NewReconciler builds a reconciler for one assembled machine. rt may
// be nil (no placement-policy load vector to maintain).
func NewReconciler(cfg Config, space *memsim.Space, mesh *topo.Mesh, mem *cache.MemSystem, rt *core.Runtime) *Reconciler {
	cfg = cfg.WithDefaults()
	lineCost, hopCost := mem.MigrationCostModel()
	return &Reconciler{
		cfg:       cfg,
		space:     space,
		mesh:      mesh,
		mem:       mem,
		rt:        rt,
		granules:  make(map[memsim.Addr]*granule),
		bankHeat:  make([]float64, mesh.Banks()),
		lastBusy:  make([]uint64, mesh.Banks()),
		nextEpoch: engine.Time(cfg.Epoch),
		lineCost:  lineCost,
		hopCost:   hopCost,
	}
}

// OnAccess is the MemSystem access hook. Epochs close lazily: the first
// access at or past the boundary closes every elapsed epoch before
// being counted, so the reconciler needs no clock of its own and the
// schedule is a pure function of the access stream.
func (r *Reconciler) OnAccess(now engine.Time, va memsim.Addr) {
	if now >= r.nextEpoch && !r.inEpoch {
		r.inEpoch = true
		for now >= r.nextEpoch {
			r.closeEpoch(r.nextEpoch)
			r.nextEpoch += engine.Time(r.cfg.Epoch)
		}
		r.inEpoch = false
	}
	start, size := r.space.Granule(va)
	g := r.granules[start]
	if g == nil {
		g = &granule{start: start, size: size, bank: -1}
		r.granules[start] = g
		r.order = append(r.order, start)
	}
	g.count++
}

// closeEpoch folds the open epoch into the EWMAs, plans, and applies.
// It runs at a drain barrier: BankBusyCycles retires every pending
// accounting event without moving any shard clock, so the decision
// observes exactly the inline totals and perturbs nothing.
func (r *Reconciler) closeEpoch(boundary engine.Time) {
	r.counters.Epochs++
	busy := r.mem.BankBusyCycles()
	for b := range r.bankHeat {
		delta := float64(busy[b] - r.lastBusy[b])
		r.lastBusy[b] = busy[b]
		r.bankHeat[b] = r.cfg.Alpha*delta + (1-r.cfg.Alpha)*r.bankHeat[b]
	}
	for _, start := range r.order {
		g := r.granules[start]
		g.heat = r.cfg.Alpha*float64(g.count) + (1-r.cfg.Alpha)*g.heat
		g.count = 0
		if g.cool > 0 {
			g.cool--
		}
		if b, err := r.space.HomeBank(g.start); err == nil {
			g.bank = b
		}
	}

	moves, stats := PlanVerbose(r.snapshot())
	r.counters.Rejected += uint64(stats.Rejected)
	for _, mv := range moves {
		r.apply(boundary, mv)
	}
}

// snapshot assembles the pure planner's input from current state.
func (r *Reconciler) snapshot() Snapshot {
	s := Snapshot{
		Banks:           make([]BankState, r.mesh.Banks()),
		Chunks:          make([]ChunkState, 0, len(r.order)),
		Threshold:       r.cfg.Threshold,
		Budget:          r.cfg.Budget,
		Payback:         r.cfg.Payback,
		Gain:            r.cfg.Gain,
		CyclesPerAccess: 1,
		LineCost:        r.lineCost,
		HopCost:         r.hopCost,
	}
	for b := range s.Banks {
		c := r.mesh.CoordOf(b)
		s.Banks[b] = BankState{Heat: r.bankHeat[b], Alive: r.space.BankAlive(b), X: c.X, Y: c.Y}
	}
	for _, start := range r.order {
		g := r.granules[start]
		if g.bank < 0 {
			continue
		}
		s.Chunks = append(s.Chunks, ChunkState{
			ID:    uint64(g.start),
			Bank:  g.bank,
			Heat:  g.heat,
			Lines: (g.size + memsim.LineSize - 1) / memsim.LineSize,
			Cool:  g.cool,
		})
	}
	return s
}

// apply executes one planned move: flip the address-space override,
// model the line traffic, pin the granule, and keep the Eq. 4 load
// vector consistent.
func (r *Reconciler) apply(boundary engine.Time, mv Move) {
	g := r.granules[memsim.Addr(mv.Chunk)]
	if g == nil {
		return
	}
	if err := r.space.SetHomeOverride(g.start, mv.To); err != nil {
		return
	}
	done := r.mem.MigrateLines(boundary, mv.From, mv.To, g.start, int64(g.size))
	if r.rt != nil {
		r.rt.NoteMigration(mv.From, mv.To)
	}
	g.bank = mv.To
	g.cool = r.cfg.Hysteresis
	if mv.Rehome {
		r.counters.KillRehomes++
	} else {
		r.counters.Migrations++
	}
	r.counters.MovedBytes += uint64(g.size)
	r.counters.MigrationCycles += uint64(done - boundary)
	r.log = append(r.log, Applied{Epoch: r.counters.Epochs, Chunk: g.start, From: mv.From, To: mv.To, Rehome: mv.Rehome})
}

// Counters returns the accumulated realloc counters.
func (r *Reconciler) Counters() Counters { return r.counters }

// Log returns the applied-migration log (shared slice; read-only).
func (r *Reconciler) Log() []Applied { return r.log }

// PublishTelemetry publishes the realloc_* scalars. Like the fault
// counters, the keys appear only when something actually happened —
// an armed-but-idle reconciler (threshold=inf, or a workload that
// never trips it) leaves the metrics document byte-identical to a
// realloc-free run.
func (r *Reconciler) PublishTelemetry(reg *telemetry.Registry) {
	c := r.counters
	if c.Migrations == 0 && c.KillRehomes == 0 && c.Rejected == 0 {
		return
	}
	reg.Set("realloc_migrations", c.Migrations)
	reg.Set("realloc_kill_rehomes", c.KillRehomes)
	reg.Set("realloc_moved_bytes", c.MovedBytes)
	reg.Set("realloc_migration_cycles", c.MigrationCycles)
	reg.Set("realloc_rejected", c.Rejected)
	reg.Set("realloc_migrated_accesses", r.space.MigratedAccesses)
}

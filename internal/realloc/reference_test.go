package realloc

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// referencePlan is the differential oracle: a deliberately naive
// re-implementation of the decision procedure documented on Plan, built
// from sorted candidate lists instead of single-pass scans. Any
// divergence between the two is a bug in one of them.
func referencePlan(s Snapshot) []Move {
	nb := len(s.Banks)
	if nb == 0 || math.IsInf(s.Threshold, 1) || math.IsNaN(s.Threshold) {
		return nil
	}
	anyAlive := false
	for _, b := range s.Banks {
		anyAlive = anyAlive || b.Alive
	}
	if !anyAlive {
		return nil
	}
	w := make([]float64, nb)
	for b := range s.Banks {
		w[b] = refSan(s.Banks[b].Heat)
	}
	cpa := refSan(s.CyclesPerAccess)
	gain := refSan(s.Gain)
	lineCost := refSan(s.LineCost)
	hopCost := refSan(s.HopCost)
	payback := s.Payback
	if payback < 1 {
		payback = 1
	}
	refHops := func(a, b int) int {
		dx, dy := s.Banks[a].X-s.Banks[b].X, s.Banks[a].Y-s.Banks[b].Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}

	var moves []Move
	tried := make([]bool, len(s.Chunks))

	// Phase 1: every chunk on a dead in-range bank re-homes, in chunk
	// order, to the alive bank minimizing (hops, projected heat, index).
	for i, c := range s.Chunks {
		if c.Bank < 0 || c.Bank >= nb || s.Banks[c.Bank].Alive {
			continue
		}
		var cands []int
		for t := 0; t < nb; t++ {
			if s.Banks[t].Alive {
				cands = append(cands, t)
			}
		}
		sort.Slice(cands, func(x, y int) bool {
			a, b := cands[x], cands[y]
			if ha, hb := refHops(c.Bank, a), refHops(c.Bank, b); ha != hb {
				return ha < hb
			}
			if w[a] != w[b] {
				return w[a] < w[b]
			}
			return a < b
		})
		best := cands[0]
		moves = append(moves, Move{Chunk: c.ID, From: c.Bank, To: best, Rehome: true})
		w[best] += refSan(c.Heat) * cpa
		tried[i] = true
	}

	// Phase 2: Budget rounds; each admits at most one move off the
	// hottest alive bank. Tried candidates are never reconsidered.
	for n := 0; n < s.Budget; n++ {
		var alive []int
		for b := range s.Banks {
			if s.Banks[b].Alive {
				alive = append(alive, b)
			}
		}
		sum, max, hot := 0.0, math.Inf(-1), -1
		for _, b := range alive {
			sum += w[b]
			if w[b] > max {
				max, hot = w[b], b
			}
		}
		mean := sum / float64(len(alive))
		if mean <= 0 || max/mean-1 < s.Threshold {
			break
		}
		admitted := false
		for {
			var cs []int
			for i, c := range s.Chunks {
				if !tried[i] && c.Bank == hot && c.Cool <= 0 && refSan(c.Heat) > 0 {
					cs = append(cs, i)
				}
			}
			sort.Slice(cs, func(x, y int) bool {
				if hx, hy := refSan(s.Chunks[cs[x]].Heat), refSan(s.Chunks[cs[y]].Heat); hx != hy {
					return hx > hy
				}
				return cs[x] < cs[y]
			})
			if len(cs) == 0 {
				break
			}
			ci := cs[0]
			c := s.Chunks[ci]
			var ts []int
			for t := range s.Banks {
				if t != hot && s.Banks[t].Alive {
					ts = append(ts, t)
				}
			}
			sort.Slice(ts, func(x, y int) bool {
				a, b := ts[x], ts[y]
				if w[a] != w[b] {
					return w[a] < w[b]
				}
				if ha, hb := refHops(hot, a), refHops(hot, b); ha != hb {
					return ha < hb
				}
				return a < b
			})
			if len(ts) == 0 {
				break
			}
			t := ts[0]
			ch := refSan(c.Heat) * cpa
			if w[t]+ch >= w[hot] {
				tried[ci] = true
				continue
			}
			cost := float64(c.Lines) * (lineCost + float64(refHops(hot, t))*hopCost)
			if refSan(c.Heat)*gain*float64(payback) < cost {
				tried[ci] = true
				continue
			}
			moves = append(moves, Move{Chunk: c.ID, From: hot, To: t})
			w[hot] -= ch
			w[t] += ch
			tried[ci] = true
			admitted = true
			break
		}
		if !admitted {
			break
		}
	}
	return moves
}

func refSan(x float64) float64 {
	if !(x > 0) {
		return 0
	}
	return x
}

// randomSnapshot draws an adversarial snapshot: occasional dead banks,
// out-of-range chunk homes, NaN/negative heats, inf thresholds.
func randomSnapshot(rng *rand.Rand) Snapshot {
	nb := 1 + rng.Intn(16)
	wdt := 1 + rng.Intn(4)
	banks := make([]BankState, nb)
	for b := range banks {
		banks[b] = BankState{
			Heat:  badFloat(rng, 2000),
			Alive: rng.Intn(5) != 0,
			X:     b % wdt,
			Y:     b / wdt,
		}
	}
	chunks := make([]ChunkState, rng.Intn(32))
	for i := range chunks {
		bank := rng.Intn(nb)
		if rng.Intn(16) == 0 {
			bank = nb + rng.Intn(3) // out of range
		}
		if rng.Intn(16) == 0 {
			bank = -1
		}
		chunks[i] = ChunkState{
			ID:    uint64(0x1000 * (i + 1)),
			Bank:  bank,
			Heat:  badFloat(rng, 500),
			Lines: rng.Intn(80) - 4,
			Cool:  rng.Intn(4) - 1,
		}
	}
	thr := rng.Float64() * 2
	switch rng.Intn(8) {
	case 0:
		thr = math.Inf(1)
	case 1:
		thr = math.NaN()
	case 2:
		thr = 0
	}
	return Snapshot{
		Banks:           banks,
		Chunks:          chunks,
		Threshold:       thr,
		Budget:          rng.Intn(7),
		Payback:         rng.Intn(12) - 1,
		Gain:            badFloat(rng, 8),
		CyclesPerAccess: badFloat(rng, 4),
		LineCost:        badFloat(rng, 30),
		HopCost:         badFloat(rng, 5),
	}
}

func badFloat(rng *rand.Rand, scale float64) float64 {
	switch rng.Intn(12) {
	case 0:
		return math.NaN()
	case 1:
		return -rng.Float64() * scale
	}
	return rng.Float64() * scale
}

// TestPlanMatchesReference is the oracle differential of the issue: the
// production planner and the naive reference must agree move-for-move on
// a few hundred seeded adversarial snapshots.
func TestPlanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 250; i++ {
		s := randomSnapshot(rng)
		got, want := Plan(s), referencePlan(s)
		if !movesEqual(got, want) {
			t.Fatalf("snapshot %d: Plan() = %+v, reference = %+v\nsnapshot: %+v", i, got, want, s)
		}
		checkInvariants(t, s, got)
	}
}

func movesEqual(a, b []Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkInvariants asserts structural properties any legal plan must have,
// independent of the reference.
func checkInvariants(t *testing.T, s Snapshot, moves []Move) {
	t.Helper()
	nb := len(s.Banks)
	seen := map[uint64]bool{}
	balance := 0
	for _, m := range moves {
		if seen[m.Chunk] {
			t.Fatalf("chunk %#x moves twice in one plan: %+v", m.Chunk, moves)
		}
		seen[m.Chunk] = true
		if m.To < 0 || m.To >= nb || !s.Banks[m.To].Alive {
			t.Fatalf("move %+v targets a dead or out-of-range bank", m)
		}
		if m.From == m.To {
			t.Fatalf("move %+v is a no-op", m)
		}
		if m.Rehome {
			if m.From >= 0 && m.From < nb && s.Banks[m.From].Alive {
				t.Fatalf("re-home %+v leaves an alive bank", m)
			}
		} else {
			balance++
			if m.From < 0 || m.From >= nb || !s.Banks[m.From].Alive {
				t.Fatalf("balance move %+v leaves a dead bank without Rehome", m)
			}
		}
	}
	if balance > s.Budget {
		t.Fatalf("%d balance moves exceed budget %d", balance, s.Budget)
	}
	if math.IsInf(s.Threshold, 1) || math.IsNaN(s.Threshold) {
		if len(moves) != 0 {
			t.Fatalf("observation mode (threshold=%v) planned %+v", s.Threshold, moves)
		}
	}
}

// FuzzReallocPlan drives the same differential from fuzzed bytes: the
// corpus seeds cover the structured generator's space, and the engine is
// free to mutate its way to snapshots the generator never draws.
func FuzzReallocPlan(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 42, 1234} {
		f.Add(seed, uint8(8))
	}
	f.Fuzz(func(t *testing.T, seed int64, rounds uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(rounds%16) + 1
		for i := 0; i < n; i++ {
			s := randomSnapshot(rng)
			got, want := Plan(s), referencePlan(s)
			if !movesEqual(got, want) {
				t.Fatalf("Plan() = %+v, reference = %+v\nsnapshot: %+v", got, want, s)
			}
			checkInvariants(t, s, got)
			// Plan must be a pure function: same snapshot, same plan.
			if again := Plan(s); !reflect.DeepEqual(got, again) {
				t.Fatalf("Plan is not deterministic: %+v then %+v", got, again)
			}
		}
	})
}

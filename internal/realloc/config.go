// Package realloc closes the telemetry → placement loop: a
// reconciliation pass that watches the machine's per-bank occupancy at a
// configurable cadence (an epoch of N sim-cycles), smooths it with an
// EWMA, and migrates hot irregular granules between L3 banks mid-run.
// The paper's allocator decides placement exactly once, at allocation
// time; this package asks how much of a hotspot, phase change, or
// mid-run bank death a migrating allocator can recover.
//
// Everything here is deterministic by construction: the epoch decision
// function is the pure Plan (tie-breaks fully specified, no RNG, no
// map iteration), epochs close at access-stream boundaries driven by
// the single workload goroutine, and drains never move shard clocks —
// so the migration schedule is identical at any -j and any -shards.
package realloc

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Config parameterizes the reconciler. The zero value disables it; a
// non-zero Epoch enables it. Parse fills unset knobs with the defaults
// below, so `-realloc epoch=20000` is a complete configuration.
type Config struct {
	// Epoch is the reconciliation cadence in sim-cycles; 0 disables the
	// reconciler entirely (no hook installed, fast paths untouched).
	Epoch uint64
	// Threshold is the imbalance trigger: the EWMA-smoothed
	// max/mean - 1 over alive banks' busy cycles must reach it before
	// any balance migration is planned. +Inf arms the reconciler
	// without ever firing it (the byte-identity control).
	Threshold float64
	// Budget caps balance migrations per epoch. Emergency re-homes off
	// a dead bank are not budgeted — stranded data moves regardless.
	Budget int
	// Hysteresis pins a migrated granule for this many epochs,
	// preventing ping-pong.
	Hysteresis int
	// Payback is the horizon, in epochs, over which a migration's
	// projected per-epoch saving must cover its modeled cost.
	Payback int
	// Alpha is the EWMA smoothing factor for bank and granule heat,
	// in (0, 1]: heat = alpha*epoch + (1-alpha)*heat.
	Alpha float64
	// Gain is the projected cycles saved per access when a granule
	// moves off the hottest bank — the benefit side of the
	// cost/benefit test.
	Gain float64
}

// Default knob values, applied by Parse for clauses left unset.
const (
	DefaultThreshold  = 0.25
	DefaultBudget     = 4
	DefaultHysteresis = 3
	DefaultPayback    = 8
	DefaultAlpha      = 0.5
	DefaultGain       = 2.0
)

// Enabled reports whether the reconciler runs.
func (c Config) Enabled() bool { return c.Epoch > 0 }

// WithDefaults returns c with every unset secondary knob at its default.
func (c Config) WithDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Payback == 0 {
		c.Payback = DefaultPayback
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Gain == 0 {
		c.Gain = DefaultGain
	}
	return c
}

// Validate checks an enabled config; the zero (disabled) value is valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Threshold < 0 || math.IsNaN(c.Threshold) {
		return fmt.Errorf("realloc: threshold %g must be >= 0 (or inf)", c.Threshold)
	}
	if c.Budget < 0 {
		return fmt.Errorf("realloc: budget %d must be >= 0", c.Budget)
	}
	if c.Hysteresis < 0 {
		return fmt.Errorf("realloc: hysteresis %d must be >= 0", c.Hysteresis)
	}
	if c.Payback < 1 {
		return fmt.Errorf("realloc: payback %d must be >= 1", c.Payback)
	}
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("realloc: alpha %g outside (0,1]", c.Alpha)
	}
	if c.Gain < 0 || math.IsNaN(c.Gain) {
		return fmt.Errorf("realloc: gain %g must be >= 0", c.Gain)
	}
	return nil
}

// Parse reads the -realloc flag grammar: comma-separated clauses
//
//	epoch=N        reconciliation cadence in sim-cycles (required to enable)
//	threshold=X    imbalance trigger (max/mean - 1); "inf" never fires
//	budget=N       balance migrations per epoch
//	hysteresis=N   epochs a migrated granule stays pinned
//	payback=N      epochs a migration must pay for itself within
//	alpha=X        EWMA smoothing factor in (0,1]
//	gain=X         projected cycles saved per access moved off a hot bank
//
// An empty string (or "off", String's disabled rendering) parses to the
// disabled zero Config. Unset clauses —
// and, matching the repo's zero-selects-default convention for
// sub-configs, clauses explicitly set to zero — take the Default*
// values; use threshold=inf for a reconciler that observes but never
// migrates.
func Parse(v string) (Config, error) {
	v = strings.TrimSpace(v)
	if v == "" || v == "off" {
		return Config{}, nil
	}
	var c Config
	for _, clause := range strings.Split(v, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Config{}, fmt.Errorf("realloc: clause %q is not key=value", clause)
		}
		switch key {
		case "epoch":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return Config{}, fmt.Errorf("realloc: epoch %q: want a positive cycle count", val)
			}
			c.Epoch = n
		case "threshold":
			if val == "inf" {
				c.Threshold = math.Inf(1)
				break
			}
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: threshold %q: %v", val, err)
			}
			c.Threshold = x
		case "budget":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: budget %q: %v", val, err)
			}
			c.Budget = n
		case "hysteresis":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: hysteresis %q: %v", val, err)
			}
			c.Hysteresis = n
		case "payback":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: payback %q: %v", val, err)
			}
			c.Payback = n
		case "alpha":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: alpha %q: %v", val, err)
			}
			c.Alpha = x
		case "gain":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("realloc: gain %q: %v", val, err)
			}
			c.Gain = x
		default:
			return Config{}, fmt.Errorf("realloc: unknown clause %q", key)
		}
	}
	if c.Epoch == 0 {
		return Config{}, fmt.Errorf("realloc: missing epoch=N (required to enable)")
	}
	c = c.WithDefaults()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// String renders the config back in the flag grammar (fixed clause
// order); "off" for the disabled zero value. String is a fixed point of
// Parse: Parse(c.String()) reproduces c for any valid enabled config.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	c = c.WithDefaults()
	th := strconv.FormatFloat(c.Threshold, 'g', -1, 64)
	if math.IsInf(c.Threshold, 1) {
		th = "inf"
	}
	return fmt.Sprintf("epoch=%d,threshold=%s,budget=%d,hysteresis=%d,payback=%d,alpha=%s,gain=%s",
		c.Epoch, th, c.Budget, c.Hysteresis, c.Payback,
		strconv.FormatFloat(c.Alpha, 'g', -1, 64), strconv.FormatFloat(c.Gain, 'g', -1, 64))
}

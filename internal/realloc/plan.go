package realloc

import "math"

// BankState is one bank's view in a planning snapshot.
type BankState struct {
	// Heat is the EWMA-smoothed busy cycles per epoch.
	Heat float64
	// Alive is false once the bank is dead or killed.
	Alive bool
	// X, Y are the bank's mesh coordinates (for hop distances).
	X, Y int
}

// ChunkState is one migratable granule's view in a planning snapshot.
type ChunkState struct {
	// ID is the granule's base virtual address — its stable identity
	// across epochs.
	ID uint64
	// Bank is the granule's current home.
	Bank int
	// Heat is the EWMA-smoothed accesses per epoch.
	Heat float64
	// Lines is the granule's size in cache lines (migration cost).
	Lines int
	// Cool is the remaining hysteresis pin, in epochs; a granule with
	// Cool > 0 is not eligible for balance migration (emergency
	// re-homes off a dead bank ignore it).
	Cool int
}

// Snapshot is everything one epoch decision sees. Plan is a pure
// function of it.
type Snapshot struct {
	Banks  []BankState
	Chunks []ChunkState

	// Threshold is the imbalance trigger (max/mean - 1 over alive
	// banks); +Inf plans nothing at all (pure observation mode).
	Threshold float64
	// Budget caps balance moves (emergency re-homes are unbudgeted).
	Budget int
	// Payback is the horizon, in epochs, a move must pay for itself in.
	Payback int
	// Gain is the projected cycles saved per access moved off the
	// hottest bank.
	Gain float64
	// CyclesPerAccess converts chunk heat (accesses/epoch) into bank
	// heat (busy cycles/epoch) when projecting a move's effect.
	CyclesPerAccess float64
	// LineCost and HopCost are the modeled migration cost: moving a
	// chunk costs Lines * (LineCost + hops(from,to) * HopCost) cycles.
	LineCost, HopCost float64
}

// Move is one planned migration.
type Move struct {
	// Chunk is the ChunkState.ID of the migrating granule.
	Chunk uint64
	// From, To are the source and destination banks.
	From, To int
	// Rehome marks an emergency move off a dead bank (bypasses
	// threshold, budget, hysteresis and the cost/benefit test).
	Rehome bool
}

// Stats reports planning byproducts Plan's move list doesn't carry.
type Stats struct {
	// Rejected counts candidate moves whose projected saving failed to
	// cover the modeled migration cost within the payback horizon.
	Rejected int
}

// Plan is the epoch decision function: given a snapshot it returns the
// migrations to apply, deterministically. The decision procedure, which
// reference_test.go re-implements naively as the differential oracle:
//
//  0. Observation mode: a +Inf (or NaN) Threshold plans nothing at all —
//     not even emergency re-homes. This is the differential-test contract:
//     threshold=inf runs the whole reconciliation loop (telemetry reads,
//     EWMA updates, epoch accounting) while guaranteeing the simulated
//     machine is byte-identical to a reconciler-free run, clean or faulted.
//  1. Emergency re-homes: every chunk whose home bank is dead moves to
//     the alive bank minimizing (hops from the dead home, projected
//     heat, index) — closest first, preserving as much of the original
//     placement's affinity intent as possible. No threshold, budget,
//     hysteresis or cost test applies: stranded data always moves.
//  2. Balance moves, up to Budget: while the alive banks' projected
//     imbalance max/mean - 1 is at least Threshold, take the hottest
//     alive bank (ties: lowest index) and try its eligible chunks —
//     unpinned, unmoved, heat > 0 — hottest first (ties: lowest
//     index). A candidate's target is the alive bank minimizing
//     (projected heat, hops, index), excluding the source. The move
//     must strictly improve (target heat + chunk's cycles < source
//     heat) and its projected saving Heat*Gain*Payback must reach the
//     modeled cost Lines*(LineCost + hops*HopCost); cost-rejected
//     candidates are counted in Stats. A candidate once tried —
//     admitted or skipped — is not reconsidered within the plan. The
//     first admitted candidate updates the projected heats and
//     planning continues; a bank with no admissible candidate ends
//     the phase.
//
// Projected heats evolve as moves are admitted, so one epoch never
// plans two moves that are only jointly attractive. No chunk moves
// twice in one plan. Malformed inputs (out-of-range banks, NaN or
// negative heats) are sanitized, never panicked on.
func Plan(s Snapshot) []Move {
	moves, _ := PlanVerbose(s)
	return moves
}

// PlanVerbose is Plan plus planning statistics.
func PlanVerbose(s Snapshot) ([]Move, Stats) {
	var st Stats
	nb := len(s.Banks)
	if nb == 0 || math.IsInf(s.Threshold, 1) || math.IsNaN(s.Threshold) {
		return nil, st
	}
	w := make([]float64, nb) // projected heat
	anyAlive := false
	for b, bs := range s.Banks {
		w[b] = sanitize(bs.Heat)
		anyAlive = anyAlive || bs.Alive
	}
	if !anyAlive {
		return nil, st
	}
	cpa := sanitize(s.CyclesPerAccess)
	gain := sanitize(s.Gain)
	lineCost := sanitize(s.LineCost)
	hopCost := sanitize(s.HopCost)
	payback := s.Payback
	if payback < 1 {
		payback = 1
	}

	var moves []Move
	moved := make([]bool, len(s.Chunks))

	// Phase 1: emergency re-homes, in chunk index order.
	for i, c := range s.Chunks {
		if c.Bank < 0 || c.Bank >= nb || s.Banks[c.Bank].Alive {
			continue
		}
		ch := sanitize(c.Heat) * cpa
		best, ok := -1, false
		for t := 0; t < nb; t++ {
			if !s.Banks[t].Alive {
				continue
			}
			if !ok || rehomeBetter(s, w, c.Bank, t, best) {
				best, ok = t, true
			}
		}
		moves = append(moves, Move{Chunk: c.ID, From: c.Bank, To: best, Rehome: true})
		w[best] += ch
		moved[i] = true
	}

	// Phase 2: budgeted balance moves.
	for n := 0; n < s.Budget; n++ {
		mean, max, hot := aliveStats(s, w)
		if mean <= 0 || max/mean-1 < s.Threshold {
			break
		}
		admitted := false
		for {
			ci := hottestEligible(s, w, moved, hot)
			if ci < 0 {
				break
			}
			c := s.Chunks[ci]
			ch := sanitize(c.Heat) * cpa
			t := balanceTarget(s, w, hot)
			if t < 0 {
				break
			}
			if w[t]+ch >= w[hot] {
				// Not strictly improving: no smaller chunk will do
				// better against the same coolest target either, but
				// the spec tries them — a lighter chunk can fit where
				// a heavy one cannot.
				moved[ci] = true // ineligible for this epoch's planning
				continue
			}
			cost := float64(c.Lines) * (lineCost + float64(hops(s, hot, t))*hopCost)
			saving := sanitize(c.Heat) * gain * float64(payback)
			if saving < cost {
				st.Rejected++
				moved[ci] = true // ineligible for this epoch's planning
				continue
			}
			moves = append(moves, Move{Chunk: c.ID, From: hot, To: t})
			w[hot] -= ch
			w[t] += ch
			moved[ci] = true
			admitted = true
			break
		}
		if !admitted {
			break
		}
	}
	return moves, st
}

// sanitize clamps NaN and negatives to 0.
func sanitize(x float64) float64 {
	if !(x > 0) {
		return 0
	}
	return x
}

// hops is the Manhattan distance between two banks' mesh coordinates.
func hops(s Snapshot, a, b int) int {
	dx := s.Banks[a].X - s.Banks[b].X
	dy := s.Banks[a].Y - s.Banks[b].Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// rehomeBetter reports whether alive bank t beats the incumbent as the
// re-home target for a chunk stranded on dead bank from: minimize
// (hops, projected heat, index).
func rehomeBetter(s Snapshot, w []float64, from, t, incumbent int) bool {
	ht, hi := hops(s, from, t), hops(s, from, incumbent)
	if ht != hi {
		return ht < hi
	}
	if w[t] != w[incumbent] {
		return w[t] < w[incumbent]
	}
	return t < incumbent
}

// aliveStats returns the mean and max projected heat over alive banks
// and the hottest alive bank (ties: lowest index).
func aliveStats(s Snapshot, w []float64) (mean, max float64, hot int) {
	n := 0
	hot = -1
	var sum float64
	for b := range s.Banks {
		if !s.Banks[b].Alive {
			continue
		}
		sum += w[b]
		n++
		if hot < 0 || w[b] > max {
			max, hot = w[b], b
		}
	}
	if n == 0 {
		return 0, 0, -1
	}
	return sum / float64(n), max, hot
}

// hottestEligible returns the index of the hottest eligible chunk homed
// on bank `hot` (unpinned, unmoved, heat > 0; ties: lowest index), or
// -1 when none remains.
func hottestEligible(s Snapshot, w []float64, moved []bool, hot int) int {
	best := -1
	var bestHeat float64
	for i, c := range s.Chunks {
		if moved[i] || c.Bank != hot || c.Cool > 0 {
			continue
		}
		h := sanitize(c.Heat)
		if h <= 0 {
			continue
		}
		if best < 0 || h > bestHeat {
			best, bestHeat = i, h
		}
	}
	return best
}

// balanceTarget returns the alive bank minimizing (projected heat,
// hops from the source, index), excluding the source, or -1 when the
// source is the only alive bank.
func balanceTarget(s Snapshot, w []float64, from int) int {
	best := -1
	for t := range s.Banks {
		if t == from || !s.Banks[t].Alive {
			continue
		}
		if best < 0 {
			best = t
			continue
		}
		if w[t] != w[best] {
			if w[t] < w[best] {
				best = t
			}
			continue
		}
		ht, hb := hops(s, from, t), hops(s, from, best)
		if ht != hb {
			if ht < hb {
				best = t
			}
			continue
		}
		// Indexes ascend in the scan, so the incumbent wins ties.
	}
	return best
}

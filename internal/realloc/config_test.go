package realloc

import (
	"math"
	"strings"
	"testing"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"off",
		"epoch=2000",
		"epoch=2000,threshold=0.5",
		"epoch=100,threshold=inf",
		"epoch=100,payback=1,alpha=1",
		"epoch=5000,threshold=0.25,budget=4,hysteresis=3,payback=8,alpha=0.5,gain=2",
	}
	for _, in := range cases {
		c, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		s := c.String()
		c2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", in, s, err)
		}
		if s2 := c2.String(); s2 != s {
			t.Fatalf("String is not a fixed point: %q -> %q -> %q", in, s, s2)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"threshold=0.5",       // enabled knob without epoch
		"epoch=0",             // zero epoch is "off" spelled wrong
		"epoch=x",             // not a number
		"epoch=100,alpha=1.5", // EWMA weight out of (0,1]
		"epoch=100,alpha=-1",
		"epoch=100,threshold=-1",
		"epoch=100,payback=-2",
		"epoch=100,budget=-1",
		"epoch=100,bogus=3",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{Epoch: 100}.WithDefaults()
	if c.Threshold != DefaultThreshold || c.Budget != DefaultBudget ||
		c.Hysteresis != DefaultHysteresis || c.Payback != DefaultPayback ||
		c.Alpha != DefaultAlpha || c.Gain != DefaultGain {
		t.Fatalf("WithDefaults left zero knobs: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	var off Config
	if off.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if err := off.Validate(); err != nil {
		t.Fatalf("disabled config must validate: %v", err)
	}
}

func TestThresholdInfString(t *testing.T) {
	c, err := Parse("epoch=100,threshold=inf")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c.Threshold, 1) {
		t.Fatalf("threshold=inf parsed to %v", c.Threshold)
	}
	if s := c.String(); !strings.Contains(s, "threshold=inf") {
		t.Fatalf("String() = %q: +Inf must render as inf, not a float", s)
	}
}

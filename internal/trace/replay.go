package trace

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"affinityalloc/internal/core"
	"affinityalloc/internal/engine"
	"affinityalloc/internal/faults"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/stream"
	"affinityalloc/internal/sys"
)

// DefaultWindow is the per-tenant outstanding-access window replay
// issues access summaries through — the same depth the indirect-stream
// workloads use.
const DefaultWindow = 12

// Options adjusts how a scenario is replayed. The zero value replays
// exactly as recorded — the replay-differential configuration.
type Options struct {
	// Mode overrides the execution mode (sys.Mode spelling). Replaying
	// an Aff-Alloc-recorded scenario under In-Core/Near-L3 remaps
	// affinity-aware allocations onto the baseline allocator, exactly as
	// System.Alloc and the co-designed structures would have.
	Mode string
	// Shards overrides the kernel shard count (> 0); placement and
	// figures are byte-identical at every shard count, so this is a
	// pure throughput knob.
	Shards int
	// Faults overrides the fault spec: "" keeps the recorded spec,
	// "none" replays on a clean machine, anything else is parsed.
	Faults string
	// Policy overrides the irregular bank policy (core.ParsePolicy
	// spelling); "" keeps the recorded policy.
	Policy string
	// Window bounds outstanding replayed accesses per tenant
	// (DefaultWindow when 0).
	Window int
}

// Placement is one allocation outcome, recorded or replayed — the unit
// the byte-identity gate compares.
type Placement struct {
	Tenant     int
	ID         int64
	Op         string
	Base       uint64
	Interleave int
	Stride     int
	StartBank  int
	PageMapped bool
	Err        string
}

// TenantResult is one tenant's replay outcome.
type TenantResult struct {
	Label     string
	Allocs    int // successful allocations
	AllocErrs int
	Frees     int
	Accesses  uint64
	Cycles    engine.Time // completion time of the tenant's last access
}

// Result is a completed replay.
type Result struct {
	Scenario   *Scenario
	Mode       sys.Mode
	System     *sys.System
	Placements []Placement
	Tenants    []TenantResult
	Cycles     engine.Time
	Metrics    sys.Metrics
}

// handle is one replayed allocation's resolution state.
type handle struct {
	base  memsim.Addr
	info  *core.ArrayInfo // non-nil only for affine placements
	bytes int64
	op    string
	// viaRT marks allocations that went through the affinity runtime
	// and therefore must be released through it; baseline allocations
	// are dropped silently on free, mirroring the placement service.
	viaRT bool
	err   bool
}

// tenantState is one tenant's replay clock.
type tenantState struct {
	handles  map[int64]*handle
	nextID   int64
	clock    engine.Time
	horizon  engine.Time
	ops      *stream.OpWindow
	accesses uint64
}

// Replay re-drives a scenario through a freshly built system: every
// allocation event re-executes the public allocator entry point it was
// recorded from (with symbolic affinity edges resolved against the
// replayed bases), frees release through the runtime, and access/stream
// summaries re-issue timed traffic through the memory system and NoC
// under a bounded per-tenant window. With zero Options the allocator
// walks the identical state trajectory as the recording run, so
// placements are byte-identical — the standing replay differential.
func Replay(sc *Scenario, opt Options) (*Result, error) {
	cfg, err := sc.Config()
	if err != nil {
		return nil, err
	}
	if opt.Shards > 0 {
		cfg.Shards = opt.Shards
	}
	switch opt.Faults {
	case "":
	case "none":
		cfg.Faults = faults.Spec{}
	default:
		f, ferr := faults.Parse(opt.Faults)
		if ferr != nil {
			return nil, ferr
		}
		cfg.Faults = f
	}
	if opt.Policy != "" {
		p, perr := core.ParsePolicy(opt.Policy)
		if perr != nil {
			return nil, perr
		}
		cfg.Policy = p
	}
	mode := sys.AffAlloc
	if sc.Mode != "" {
		if mode, err = sys.ParseMode(sc.Mode); err != nil {
			return nil, err
		}
	}
	if opt.Mode != "" {
		if mode, err = sys.ParseMode(opt.Mode); err != nil {
			return nil, err
		}
	}
	s, err := sys.New(cfg)
	if err != nil {
		return nil, err
	}

	window := opt.Window
	if window <= 0 {
		window = DefaultWindow
	}
	res := &Result{Scenario: sc, Mode: mode, System: s}
	tenants := make(map[int]*tenantState)
	tn := func(t int) *tenantState {
		ts := tenants[t]
		if ts == nil {
			ts = &tenantState{handles: make(map[int64]*handle), ops: stream.NewOpWindow(window)}
			tenants[t] = ts
		}
		return ts
	}

	for ei := range sc.Events {
		e := &sc.Events[ei]
		ts := tn(e.Tenant)
		switch e.Kind {
		case KindOpenPool:
			// Pool opens are advisory (allocation creates pools on
			// demand); an unsupported interleave recorded under another
			// config just no-ops.
			_, _ = s.OpenPool(e.Interleave)
		case KindAlloc:
			res.Placements = append(res.Placements, replayAlloc(s, mode, ts, e))
		case KindFree:
			replayFree(s, ts, e)
		case KindAccess:
			replayAccess(s, ts, e)
		case KindPreload:
			replayPreload(s, ts, e)
		case KindStream:
			replayStream(s, ts, e)
		}
	}

	var finish engine.Time
	tenantIDs := make([]int, 0, len(tenants))
	for t := range tenants {
		tenantIDs = append(tenantIDs, t)
	}
	// Tenant results in tenant order for deterministic rendering.
	for t := 0; len(tenantIDs) > 0 && t <= maxTenant(tenantIDs); t++ {
		ts, ok := tenants[t]
		if !ok {
			continue
		}
		tr := TenantResult{Label: sc.TenantLabel(t), Accesses: ts.accesses, Cycles: ts.horizon}
		for _, h := range ts.handles {
			if h.err {
				tr.AllocErrs++
			}
		}
		tr.Allocs = int(ts.nextID) - tr.AllocErrs
		tr.Frees = tenantFrees(sc, t)
		res.Tenants = append(res.Tenants, tr)
		finish = engine.MaxTime(finish, ts.horizon)
		finish = engine.MaxTime(finish, ts.clock)
	}
	res.Cycles = finish
	res.Metrics = s.Collect(finish)
	return res, nil
}

func maxTenant(ids []int) int {
	m := 0
	for _, id := range ids {
		if id > m {
			m = id
		}
	}
	return m
}

func tenantFrees(sc *Scenario, tenant int) int {
	n := 0
	for i := range sc.Events {
		if sc.Events[i].Tenant == tenant && sc.Events[i].Kind == KindFree && sc.Events[i].Ref > 0 {
			n++
		}
	}
	return n
}

// resolveRef turns a symbolic affinity edge back into an address on the
// replayed system; ok is false when the edge cannot be resolved to a
// mapped address (the hint is then dropped, never panicking the space).
func resolveRef(s *sys.System, ts *tenantState, r Ref) (memsim.Addr, bool) {
	var addr memsim.Addr
	if r.Ref > 0 {
		h := ts.handles[r.Ref]
		if h == nil || h.err {
			return 0, false
		}
		if h.info != nil && r.Elem >= 0 && r.Elem < h.info.NumElem {
			addr = h.info.ElemAddr(r.Elem)
		} else {
			addr = h.base + memsim.Addr(r.Off)
		}
	} else {
		addr = memsim.Addr(r.Raw)
	}
	if _, err := s.Space.Bank(addr); err != nil {
		return 0, false
	}
	return addr, true
}

// replayAlloc re-executes one allocation event under the replay mode,
// returning its placement. The entry-point mapping mirrors what the
// workload/service layer would have called: affinity-aware ops go to
// the runtime under Aff-Alloc and to the baseline allocator otherwise.
func replayAlloc(s *sys.System, mode sys.Mode, ts *tenantState, e *Event) Placement {
	emode := mode
	if e.Mode != "" {
		if m, err := sys.ParseMode(e.Mode); err == nil {
			emode = m
		}
	}
	ts.nextID++
	h := &handle{op: e.Op}
	p := Placement{Tenant: e.Tenant, ID: ts.nextID, Op: e.Op, StartBank: -1}

	fail := func(err error) Placement {
		h.err = true
		p.Err = err.Error()
		ts.handles[ts.nextID] = h
		return p
	}
	affine := func(info *core.ArrayInfo, err error) Placement {
		if err != nil {
			return fail(err)
		}
		h.base, h.info, h.bytes = info.Base, info, info.Bytes()
		h.viaRT = emode == sys.AffAlloc
		p.Base = uint64(info.Base)
		p.Interleave = info.Interleave
		p.Stride = info.ElemStride
		p.StartBank = info.StartBank
		p.PageMapped = info.PageMapped
		ts.handles[ts.nextID] = h
		return p
	}
	chunkAlloc := func(addr memsim.Addr, err error) Placement {
		if err != nil {
			return fail(err)
		}
		chunk, _ := s.RT.ChunkOf(addr)
		h.base, h.bytes, h.viaRT = addr, int64(chunk), true
		p.Base = uint64(addr)
		p.Interleave = chunk
		ts.handles[ts.nextID] = h
		return p
	}
	baseAlloc := func(size int64) Placement {
		addr, err := s.RT.AllocBase(size)
		if err != nil {
			return fail(err)
		}
		h.base, h.bytes = addr, size
		p.Base = uint64(addr)
		ts.handles[ts.nextID] = h
		return p
	}

	switch e.Op {
	case OpAffine:
		spec := core.AffineSpec{
			ElemSize: e.ElemSize, NumElem: e.NumElem,
			AlignP: e.AlignP, AlignQ: e.AlignQ, AlignX: e.AlignX,
			Partition: e.Part,
		}
		if e.AlignRef > 0 {
			if t := ts.handles[e.AlignRef]; t != nil && !t.err {
				spec.AlignTo = t.base
			}
		} else if e.AlignRaw != 0 {
			spec.AlignTo = memsim.Addr(e.AlignRaw)
		}
		return affine(s.Alloc(emode, spec))
	case OpAffineBank:
		spec := core.AffineSpec{
			ElemSize: e.ElemSize, NumElem: e.NumElem,
			AlignP: e.AlignP, AlignQ: e.AlignQ, AlignX: e.AlignX,
			Partition: e.Part,
		}
		if emode != sys.AffAlloc {
			return affine(s.Alloc(emode, spec))
		}
		return affine(s.RT.AllocAffineAtBank(spec, e.Bank))
	case OpNear:
		if emode != sys.AffAlloc {
			return baseAlloc(e.Size)
		}
		var aff []memsim.Addr
		for _, r := range e.Affinity {
			if a, ok := resolveRef(s, ts, r); ok {
				aff = append(aff, a)
			}
		}
		return chunkAlloc(s.AllocNear(e.Size, aff))
	case OpNearBank:
		if emode != sys.AffAlloc {
			return baseAlloc(e.Size)
		}
		return chunkAlloc(s.RT.AllocAtBank(e.Size, e.Bank))
	default: // OpBase
		return baseAlloc(e.Size)
	}
}

// replayFree releases one recorded free: runtime allocations through
// System.Free, baseline ones by dropping the handle (the placement
// service's semantics — the baseline allocator was never called to
// free, and calling it would be a state change the recording never
// made). Raw-address frees replay verbatim to reproduce the recorded
// failure.
func replayFree(s *sys.System, ts *tenantState, e *Event) {
	if e.Ref > 0 {
		h := ts.handles[e.Ref]
		if h == nil || h.err {
			return
		}
		if h.viaRT {
			_ = s.Free(h.base)
		}
		return
	}
	_ = s.Free(memsim.Addr(e.Raw))
}

// replayAccess re-issues one access summary as timed memory traffic:
// each touched chunk's accesses sweep its lines round-robin, reads
// before writes, issued through the tenant's outstanding-op window.
func replayAccess(s *sys.System, ts *tenantState, e *Event) {
	gran := e.Gran
	if gran < memsim.LineSize {
		gran = memsim.LineSize
	}
	var base memsim.Addr
	var extent int64
	if e.Ref > 0 {
		h := ts.handles[e.Ref]
		if h == nil || h.err {
			return
		}
		base, extent = h.base, h.bytes
	}
	for _, t := range e.Touches {
		var start memsim.Addr
		nLines := gran / memsim.LineSize
		if e.Ref > 0 {
			start = base + memsim.Addr(t.Chunk*gran)
			if extent > 0 {
				if rem := extent - t.Chunk*gran; rem < gran {
					nLines = (rem + memsim.LineSize - 1) / memsim.LineSize
				}
			}
		} else {
			// Wild access: the chunk is an absolute line index.
			start = memsim.Addr(t.Chunk * memsim.LineSize)
			nLines = 1
		}
		if nLines < 1 {
			nLines = 1
		}
		if _, err := s.Space.Bank(start); err != nil {
			// Unmapped on the replayed machine (e.g. a composed tenant's
			// raw address): skip rather than fault the space.
			continue
		}
		total := int64(t.Reads) + int64(t.Writes)
		for k := int64(0); k < total; k++ {
			va := start + memsim.Addr(k%nLines)*memsim.LineSize
			at := ts.ops.Issue(ts.clock)
			done, _ := s.Mem.Access(at, va, k >= int64(t.Reads))
			ts.ops.Complete(done)
			ts.clock = at + 1
			ts.horizon = engine.MaxTime(ts.horizon, done)
			ts.accesses++
		}
	}
}

// replayPreload re-warms the L3 with one recorded preload.
func replayPreload(s *sys.System, ts *tenantState, e *Event) {
	var va memsim.Addr
	if e.Ref > 0 {
		h := ts.handles[e.Ref]
		if h == nil || h.err {
			return
		}
		va = h.base + memsim.Addr(e.Off)
	} else {
		va = memsim.Addr(e.Raw)
	}
	if _, err := s.Space.Bank(va); err != nil {
		return
	}
	s.Mem.Preload(va, e.Size)
}

// replayStream re-issues aggregated stream-configuration and migration
// traffic onto the NoC at the tenant's current clock.
func replayStream(s *sys.System, ts *tenantState, e *Event) {
	nb := s.Mesh.Banks()
	for _, f := range e.Offloads {
		if f.From < 0 || f.From >= nb || f.To < 0 || f.To >= nb {
			continue
		}
		for i := uint32(0); i < f.N; i++ {
			done := s.SE.Offload(ts.clock, f.From, f.To)
			ts.horizon = engine.MaxTime(ts.horizon, done)
		}
	}
	for _, f := range e.Migs {
		if f.From < 0 || f.From >= nb || f.To < 0 || f.To >= nb {
			continue
		}
		for i := uint32(0); i < f.N; i++ {
			s.SE.MigrateOverlapped(ts.clock, f.From, f.To)
		}
	}
}

// --- placement dumps (the byte-identity gate) ---

// appendPlacement renders one placement canonically.
func appendPlacement(b *bytes.Buffer, p Placement) {
	fmt.Fprintf(b, "t%d a%d %s", p.Tenant, p.ID, p.Op)
	if p.Err != "" {
		fmt.Fprintf(b, " err=%q\n", p.Err)
		return
	}
	fmt.Fprintf(b, " base=%#x il=%d stride=%d", p.Base, p.Interleave, p.Stride)
	if p.Op == OpAffine || p.Op == OpAffineBank {
		fmt.Fprintf(b, " bank=%d pm=%v", p.StartBank, p.PageMapped)
	}
	b.WriteByte('\n')
}

// PlacementDump renders the replayed placements canonically, one line
// per allocation event.
func (r *Result) PlacementDump() []byte {
	var b bytes.Buffer
	for _, p := range r.Placements {
		appendPlacement(&b, p)
	}
	return b.Bytes()
}

// RecordedPlacements reconstructs the placement list a recording run
// observed, from the outcome fields stored in the scenario's events —
// the "expected" side of the record→replay identity gate.
func RecordedPlacements(sc *Scenario) []Placement {
	var out []Placement
	next := map[int]int64{}
	for i := range sc.Events {
		e := &sc.Events[i]
		if e.Kind != KindAlloc {
			continue
		}
		next[e.Tenant]++
		p := Placement{
			Tenant: e.Tenant, ID: next[e.Tenant], Op: e.Op,
			Base: e.Base, Interleave: e.ResIl, Stride: e.Stride,
			StartBank: e.StartBank, PageMapped: e.PageMapped, Err: e.Err,
		}
		out = append(out, p)
	}
	return out
}

// RecordedDump renders RecordedPlacements canonically; byte-equal to
// Result.PlacementDump when replay walked the recorded trajectory.
func RecordedDump(sc *Scenario) []byte {
	var b bytes.Buffer
	for _, p := range RecordedPlacements(sc) {
		appendPlacement(&b, p)
	}
	return b.Bytes()
}

// Digest returns a short FNV-1a digest of a placement dump, for
// rendering in replay reports.
func Digest(dump []byte) string {
	h := fnv.New64a()
	h.Write(dump)
	return fmt.Sprintf("%016x", h.Sum64())
}

package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// JSONL encoding: one JSON object per line. The first line is the
// format marker, a scenario-header line opens each scenario, and every
// following event line belongs to it until the next header or EOF:
//
//	{"format":"afftrace/v1"}
//	{"scenario":{"label":"vecadd","mode":"Aff-Alloc",...}}
//	{"ev":"alloc","op":"affine","elem_size":8,...}
//	{"ev":"access","ref":1,"gran":4096,"touches":[...]}
//
// The JSONL form is the diffable/golden one; Encode/Decode is the
// compact framed-binary one. EncodeJSONL and ParseJSONL round-trip.

// jsonlHeader is the first line of every JSONL trace.
type jsonlHeader struct {
	Format string `json:"format"`
}

// jsonlScenario wraps a scenario-header line.
type jsonlScenario struct {
	Scenario *Scenario `json:"scenario"`
}

// EncodeJSONL serializes a trace to JSONL.
func EncodeJSONL(t *Trace) []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(jsonlHeader{Format: Version})
	for _, sc := range t.Scenarios {
		_ = enc.Encode(jsonlScenario{Scenario: sc})
		for i := range sc.Events {
			_ = enc.Encode(&sc.Events[i])
		}
	}
	return b.Bytes()
}

// ParseJSONL parses the JSONL form, validating the result so corrupt
// input errors instead of poisoning a replay.
func ParseJSONL(data []byte) (*Trace, error) {
	t := &Trace{}
	var cur *Scenario
	sawHeader := false
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !sawHeader {
			var h jsonlHeader
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", ln+1, err)
			}
			if h.Format != Version {
				return nil, fmt.Errorf("trace: line %d: format %q, want %q", ln+1, h.Format, Version)
			}
			sawHeader = true
			continue
		}
		switch {
		case strings.HasPrefix(line, `{"scenario"`):
			var s jsonlScenario
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", ln+1, err)
			}
			if s.Scenario == nil {
				return nil, fmt.Errorf("trace: line %d: null scenario", ln+1)
			}
			t.Scenarios = append(t.Scenarios, s.Scenario)
			cur = s.Scenario
		default:
			if cur == nil {
				return nil, fmt.Errorf("trace: line %d: event before any scenario", ln+1)
			}
			var e Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", ln+1, err)
			}
			cur.Events = append(cur.Events, e)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: empty input (no %s header line)", Version)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeAny auto-detects the encoding (binary magic vs JSONL) and
// parses accordingly.
func DecodeAny(data []byte) (*Trace, error) {
	if bytes.HasPrefix(data, binMagic) {
		return Decode(data)
	}
	return ParseJSONL(data)
}

// ReadFile loads a trace file in either encoding.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := DecodeAny(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// WriteFile writes a trace: JSONL when the path ends in .jsonl or
// .json, framed binary otherwise.
func WriteFile(path string, t *Trace) error {
	var data []byte
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		data = EncodeJSONL(t)
	} else {
		data = Encode(t)
	}
	return os.WriteFile(path, data, 0o644)
}

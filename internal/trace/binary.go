package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary encoding: an 8-byte magic, then one frame per record. Each
// frame is
//
//	uvarint(len(payload)) | payload | crc32(payload) LE
//
// and the payload's first byte is the frame type (scenario header or
// event) followed by type-specific fields in fixed order — uvarints for
// non-negative integers, zigzag varints where a field can go negative,
// length-prefixed strings. The format is append-only streamable: a
// scenario owns every event frame until the next scenario frame or EOF.

// binMagic identifies afftrace/v1 binary files.
var binMagic = []byte("AFFTRC1\n")

const (
	frameScenario = 1
	frameEvent    = 2

	// maxFrame bounds one frame's payload; decoders reject bigger
	// frames before allocating.
	maxFrame = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// kind/op <-> byte tables for the binary encoding.
var kindToByte = map[string]byte{
	KindOpenPool: 1, KindAlloc: 2, KindFree: 3,
	KindAccess: 4, KindPreload: 5, KindStream: 6,
}
var byteToKind = map[byte]string{
	1: KindOpenPool, 2: KindAlloc, 3: KindFree,
	4: KindAccess, 5: KindPreload, 6: KindStream,
}
var opToByte = map[string]byte{
	OpAffine: 1, OpAffineBank: 2, OpNear: 3, OpNearBank: 4, OpBase: 5,
}
var byteToOp = map[byte]string{
	1: OpAffine, 2: OpAffineBank, 3: OpNear, 4: OpNearBank, 5: OpBase,
}

// binWriter accumulates one frame payload.
type binWriter struct{ buf []byte }

func (w *binWriter) u(v uint64)   { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *binWriter) i(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *binWriter) b(v bool)     { w.buf = append(w.buf, boolByte(v)) }
func (w *binWriter) byte1(v byte) { w.buf = append(w.buf, v) }
func (w *binWriter) str(s string) { w.u(uint64(len(s))); w.buf = append(w.buf, s...) }

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// binReader consumes one frame payload; every read error poisons it.
type binReader struct {
	buf []byte
	err error
}

func (r *binReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("trace: %s", msg)
	}
}

func (r *binReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *binReader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *binReader) b() bool { return r.byte1() != 0 }

func (r *binReader) byte1() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.fail("truncated byte")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *binReader) str() string {
	n := r.u()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail("truncated string")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// count reads a list length and rejects counts that cannot fit in the
// remaining payload (each element takes >= perElem bytes), so a fuzzed
// length cannot force a huge allocation.
func (r *binReader) count(perElem int) int {
	n := r.u()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)/perElem)+1 || n > math.MaxInt32 {
		r.fail("list count exceeds payload")
		return 0
	}
	return int(n)
}

// intOr converts with a range check (decoders must not let a fuzzed
// 64-bit value wrap an int field).
func (r *binReader) intv() int {
	v := r.u()
	if v > math.MaxInt32 {
		r.fail("int field out of range")
		return 0
	}
	return int(v)
}

// Encode serializes a trace to the framed binary form.
func Encode(t *Trace) []byte {
	out := append([]byte(nil), binMagic...)
	frame := func(payload []byte) {
		out = binary.AppendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	}
	for _, sc := range t.Scenarios {
		var w binWriter
		w.byte1(frameScenario)
		w.str(sc.Label)
		w.str(sc.Mode)
		w.u(uint64(sc.MeshW))
		w.u(uint64(sc.MeshH))
		w.i(sc.Seed)
		w.str(sc.Policy)
		w.str(sc.Faults)
		w.u(uint64(sc.Shards))
		w.u(uint64(len(sc.Tenants)))
		for _, t := range sc.Tenants {
			w.str(t)
		}
		w.u(sc.Cycles)
		frame(w.buf)
		for i := range sc.Events {
			frame(encodeEvent(&sc.Events[i]))
		}
	}
	return out
}

func encodeEvent(e *Event) []byte {
	var w binWriter
	w.byte1(frameEvent)
	w.byte1(kindToByte[e.Kind])
	w.u(uint64(e.Tenant))
	switch e.Kind {
	case KindOpenPool:
		w.u(uint64(e.Interleave))
	case KindAlloc:
		w.byte1(opToByte[e.Op])
		w.str(e.Mode)
		w.u(uint64(e.ElemSize))
		w.u(uint64(e.NumElem))
		w.u(uint64(e.AlignRef))
		w.u(e.AlignRaw)
		w.u(uint64(e.AlignP))
		w.u(uint64(e.AlignQ))
		w.i(e.AlignX)
		w.b(e.Part)
		w.u(uint64(e.Size))
		w.u(uint64(e.Bank))
		w.u(uint64(len(e.Affinity)))
		for _, ref := range e.Affinity {
			w.u(uint64(ref.Ref))
			w.i(ref.Elem)
			w.i(ref.Off)
			w.u(ref.Raw)
		}
		w.u(e.Base)
		w.u(uint64(e.ResIl))
		w.u(uint64(e.Stride))
		w.u(uint64(e.StartBank))
		w.b(e.PageMapped)
		w.str(e.Err)
	case KindFree:
		w.u(uint64(e.Ref))
		w.u(e.Raw)
	case KindAccess:
		w.u(uint64(e.Ref))
		w.u(uint64(e.Gran))
		w.u(uint64(len(e.Touches)))
		for _, t := range e.Touches {
			w.u(uint64(t.Chunk))
			w.u(uint64(t.Reads))
			w.u(uint64(t.Writes))
		}
	case KindPreload:
		w.u(uint64(e.Ref))
		w.u(uint64(e.Off))
		w.u(uint64(e.Size))
	case KindStream:
		for _, fs := range [][]Flow{e.Offloads, e.Migs} {
			w.u(uint64(len(fs)))
			for _, f := range fs {
				w.u(uint64(f.From))
				w.u(uint64(f.To))
				w.u(uint64(f.N))
			}
		}
	}
	return w.buf
}

// Decode parses the framed binary form, validating structure so a
// corrupt or adversarial input returns an error instead of panicking.
func Decode(data []byte) (*Trace, error) {
	if !bytes.HasPrefix(data, binMagic) {
		return nil, fmt.Errorf("trace: not an %s binary trace (bad magic)", Version)
	}
	data = data[len(binMagic):]
	t := &Trace{}
	var cur *Scenario
	for len(data) > 0 {
		n, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, fmt.Errorf("trace: truncated frame length")
		}
		if n > maxFrame {
			return nil, fmt.Errorf("trace: frame of %d bytes exceeds cap", n)
		}
		rest := data[sz:]
		if uint64(len(rest)) < n+4 {
			return nil, fmt.Errorf("trace: truncated frame")
		}
		payload := rest[:n]
		sum := binary.LittleEndian.Uint32(rest[n : n+4])
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("trace: frame CRC mismatch")
		}
		data = rest[n+4:]

		r := &binReader{buf: payload}
		switch ft := r.byte1(); ft {
		case frameScenario:
			sc := &Scenario{}
			sc.Label = r.str()
			sc.Mode = r.str()
			sc.MeshW = r.intv()
			sc.MeshH = r.intv()
			sc.Seed = r.i()
			sc.Policy = r.str()
			sc.Faults = r.str()
			sc.Shards = r.intv()
			nt := r.count(1)
			for i := 0; i < nt && r.err == nil; i++ {
				sc.Tenants = append(sc.Tenants, r.str())
			}
			sc.Cycles = r.u()
			if r.err != nil {
				return nil, r.err
			}
			t.Scenarios = append(t.Scenarios, sc)
			cur = sc
		case frameEvent:
			if cur == nil {
				return nil, fmt.Errorf("trace: event frame before any scenario")
			}
			e, err := decodeEvent(r)
			if err != nil {
				return nil, err
			}
			cur.Events = append(cur.Events, e)
		default:
			return nil, fmt.Errorf("trace: unknown frame type %d", ft)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func decodeEvent(r *binReader) (Event, error) {
	var e Event
	kb := r.byte1()
	kind, ok := byteToKind[kb]
	if !ok {
		return e, fmt.Errorf("trace: unknown event kind byte %d", kb)
	}
	e.Kind = kind
	e.Tenant = r.intv()
	switch kind {
	case KindOpenPool:
		e.Interleave = r.intv()
	case KindAlloc:
		ob := r.byte1()
		op, ok := byteToOp[ob]
		if !ok && r.err == nil {
			return e, fmt.Errorf("trace: unknown alloc op byte %d", ob)
		}
		e.Op = op
		e.Mode = r.str()
		e.ElemSize = r.intv()
		e.NumElem = int64(r.u())
		e.AlignRef = int64(r.u())
		e.AlignRaw = r.u()
		e.AlignP = r.intv()
		e.AlignQ = r.intv()
		e.AlignX = r.i()
		e.Part = r.b()
		e.Size = int64(r.u())
		e.Bank = r.intv()
		na := r.count(4)
		for i := 0; i < na && r.err == nil; i++ {
			e.Affinity = append(e.Affinity, Ref{
				Ref: int64(r.u()), Elem: r.i(), Off: r.i(), Raw: r.u(),
			})
		}
		e.Base = r.u()
		e.ResIl = r.intv()
		e.Stride = r.intv()
		e.StartBank = r.intv()
		e.PageMapped = r.b()
		e.Err = r.str()
	case KindFree:
		e.Ref = int64(r.u())
		e.Raw = r.u()
	case KindAccess:
		e.Ref = int64(r.u())
		e.Gran = int64(r.u())
		nt := r.count(3)
		for i := 0; i < nt && r.err == nil; i++ {
			e.Touches = append(e.Touches, Touch{
				Chunk: int64(r.u()), Reads: uint32(r.u()), Writes: uint32(r.u()),
			})
		}
	case KindPreload:
		e.Ref = int64(r.u())
		e.Off = int64(r.u())
		e.Size = int64(r.u())
	case KindStream:
		for li := 0; li < 2; li++ {
			nf := r.count(3)
			for i := 0; i < nf && r.err == nil; i++ {
				f := Flow{From: r.intv(), To: r.intv(), N: uint32(r.u())}
				if li == 0 {
					e.Offloads = append(e.Offloads, f)
				} else {
					e.Migs = append(e.Migs, f)
				}
			}
		}
	}
	if r.err != nil {
		return e, r.err
	}
	if len(r.buf) != 0 {
		return e, fmt.Errorf("trace: %d trailing bytes in event frame", len(r.buf))
	}
	return e, nil
}

package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

var updateExample = flag.Bool("update", false, "regenerate the committed example trace")

// recordTiny records one tiny workload run under the given mode and
// returns its scenario.
func recordTiny(t *testing.T, w workloads.Workload, mode sys.Mode, seed int64) *trace.Scenario {
	t.Helper()
	cfg := sys.DefaultConfig()
	cfg.Seed = seed
	rec := trace.NewRecorder(w.Name())
	if _, err := workloads.RunTraced(cfg, w, mode, rec); err != nil {
		t.Fatalf("record %s: %v", w.Name(), err)
	}
	sc := rec.Scenario()
	if len(sc.Events) == 0 {
		t.Fatalf("record %s: empty scenario", w.Name())
	}
	return sc
}

func tinyVecAdd() workloads.Workload { return workloads.VecAdd{N: 1 << 10, ForceDelta: -1} }
func tinyHashJoin() workloads.Workload {
	return workloads.HashJoin{BuildRows: 1 << 9, ProbeRows: 1 << 10, Buckets: 1 << 7, HitRate: 0.25}
}

// Both encodings must round-trip a real recorded trace bit-exactly.
func TestEncodingRoundTrip(t *testing.T) {
	tr := &trace.Trace{Scenarios: []*trace.Scenario{
		recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1),
		recordTiny(t, tinyHashJoin(), sys.AffAlloc, 1),
	}}

	bin := trace.Encode(tr)
	got, err := trace.Decode(bin)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(trace.Encode(got), bin) {
		t.Error("binary round trip is not bit-stable")
	}

	jl := trace.EncodeJSONL(tr)
	got2, err := trace.ParseJSONL(jl)
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if !bytes.Equal(trace.EncodeJSONL(got2), jl) {
		t.Error("JSONL round trip is not bit-stable")
	}

	// Cross-encoding: binary-decoded and JSONL-decoded traces agree.
	if !bytes.Equal(trace.EncodeJSONL(got), jl) {
		t.Error("binary and JSONL decode to different traces")
	}

	// DecodeAny detects both.
	if _, err := trace.DecodeAny(bin); err != nil {
		t.Errorf("DecodeAny(binary): %v", err)
	}
	if _, err := trace.DecodeAny(jl); err != nil {
		t.Errorf("DecodeAny(jsonl): %v", err)
	}
}

// A flipped payload byte must be caught by the frame CRC.
func TestBinaryDetectsCorruption(t *testing.T) {
	tr := &trace.Trace{Scenarios: []*trace.Scenario{recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)}}
	bin := trace.Encode(tr)
	for _, i := range []int{len(bin) / 2, len(bin) - 5} {
		bad := append([]byte(nil), bin...)
		bad[i] ^= 0x40
		if _, err := trace.Decode(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	if _, err := trace.Decode(bin[:len(bin)-3]); err == nil {
		t.Error("truncated trace went undetected")
	}
}

// WriteFile/ReadFile choose the encoding by extension and round-trip.
func TestFileRoundTrip(t *testing.T) {
	tr := &trace.Trace{Scenarios: []*trace.Scenario{recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)}}
	dir := t.TempDir()
	for _, name := range []string{"t.afftrace", "t.jsonl"} {
		p := filepath.Join(dir, name)
		if err := trace.WriteFile(p, tr); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := trace.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if !bytes.Equal(trace.EncodeJSONL(got), trace.EncodeJSONL(tr)) {
			t.Errorf("%s did not round-trip", name)
		}
	}
}

// The committed example trace must stay parseable and replayable — the
// format-stability gate for afftrace/v1. Regenerate with
//
//	go test ./internal/trace -run TestCommittedExampleTrace -update
func TestCommittedExampleTrace(t *testing.T) {
	const examplePath = "testdata/example_vecadd.jsonl"
	if *updateExample {
		tr := &trace.Trace{Scenarios: []*trace.Scenario{recordTiny(t, tinyVecAdd(), sys.AffAlloc, 1)}}
		if err := os.MkdirAll(filepath.Dir(examplePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteFile(examplePath, tr); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", examplePath)
	}
	tr, err := trace.ReadFile(examplePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Scenarios) == 0 {
		t.Fatal("example trace has no scenarios")
	}
	for _, sc := range tr.Scenarios {
		res, err := trace.Replay(sc, trace.Options{})
		if err != nil {
			t.Fatalf("replay %s: %v", sc.Label, err)
		}
		if got, want := res.PlacementDump(), trace.RecordedDump(sc); !bytes.Equal(got, want) {
			t.Errorf("replay of committed %s diverged from its recorded placements:\ngot:\n%s\nwant:\n%s",
				sc.Label, got, want)
		}
	}
}

// Recording must be pure observation: a recorded run's result is
// byte-identical to a direct run of the same configuration.
func TestRecordingIsPureObservation(t *testing.T) {
	cfg := sys.DefaultConfig()
	cfg.Seed = 1
	for _, mode := range sys.Modes {
		w := tinyVecAdd()
		direct, err := workloads.Run(cfg, w, mode)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(w.Name())
		traced, err := workloads.RunTraced(cfg, w, mode, rec)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Checksum != traced.Checksum || direct.Metrics.Cycles != traced.Metrics.Cycles {
			t.Errorf("%v: recording perturbed the run: cycles %d vs %d, checksum %x vs %x",
				mode, direct.Metrics.Cycles, traced.Metrics.Cycles, direct.Checksum, traced.Checksum)
		}
	}
}

package trace

import (
	"sort"
	"sync"

	"affinityalloc/internal/core"
	"affinityalloc/internal/memsim"
	"affinityalloc/internal/sys"
)

// FlushEvery bounds how many accesses aggregate into one access-summary
// epoch before the recorder flushes them as events — coarse temporal
// ordering without per-access event volume.
const FlushEvery = 8192

// minGran is the smallest chunk granularity of an access summary.
const minGran = memsim.LineSize

// touchesPerAlloc is the target number of chunks per allocation in an
// access summary; granularity = footprint/touchesPerAlloc, line-clamped.
const touchesPerAlloc = 64

// Recorder turns observer callbacks from a live system into one
// Scenario. It implements core.Observer, cache.AccessObserver and
// stream.IssueObserver; Attach installs it on all three hooks. The
// recorder only aggregates into private state — it never calls back
// into the system — so a recording run is byte-identical to a direct
// run. It is single-goroutine, like the system it observes.
type Recorder struct {
	sc    *Scenario
	space *memsim.Space

	nextID int64
	// live is the sorted interval index of live recorded allocations,
	// resolving raw hint/access addresses to symbolic (ID, offset) refs.
	live []liveAlloc

	// Pending access aggregation, flushed on FlushEvery accesses and
	// before any allocator event (so summaries stay ordered relative to
	// the allocations they touch).
	pend      map[int64]*allocAgg
	wild      map[int64]*rw // keyed by absolute line index
	nAccesses int

	// Pending stream-issue aggregation, flushed with accesses.
	offloads map[[2]int]uint32
	migs     map[[2]int]uint32
}

type liveAlloc struct {
	start, end memsim.Addr
	id         int64
	info       *core.ArrayInfo // nil for chunk/base allocations
}

type rw struct{ reads, writes uint32 }

type allocAgg struct {
	gran    int64
	touches map[int64]*rw
}

// NewRecorder builds a recorder for one scenario.
func NewRecorder(label string) *Recorder {
	return &Recorder{
		sc:       &Scenario{Label: label},
		pend:     make(map[int64]*allocAgg),
		wild:     make(map[int64]*rw),
		offloads: make(map[[2]int]uint32),
		migs:     make(map[[2]int]uint32),
	}
}

// Begin stamps the scenario header from the configuration and mode the
// run is about to execute under. Call before Attach.
func (r *Recorder) Begin(cfg sys.Config, mode sys.Mode) {
	if r == nil {
		return
	}
	r.sc.Mode = mode.String()
	r.sc.MeshW, r.sc.MeshH = cfg.MeshW, cfg.MeshH
	r.sc.Seed = cfg.Seed
	r.sc.Policy = cfg.Policy.String()
	if !cfg.Faults.Empty() {
		r.sc.Faults = cfg.Faults.String()
	}
	r.sc.Shards = cfg.Shards
}

// Attach installs the recorder on the system's three observer hooks:
// the allocator, the memory system, and the stream engine.
func (r *Recorder) Attach(s *sys.System) {
	if r == nil {
		return
	}
	r.space = s.Space
	s.RT.SetObserver(r)
	s.Mem.SetObserver(r)
	s.SE.SetIssueObserver(r)
}

// Finish flushes pending aggregation and stamps the run's finish time.
func (r *Recorder) Finish(cycles uint64) {
	if r == nil {
		return
	}
	r.flush()
	r.sc.Cycles = cycles
}

// Scenario returns the recorded scenario (nil receiver: nil).
func (r *Recorder) Scenario() *Scenario {
	if r == nil {
		return nil
	}
	return r.sc
}

// --- symbolic address resolution ---

// insertLive registers a live allocation interval.
func (r *Recorder) insertLive(start memsim.Addr, bytes int64, id int64, info *core.ArrayInfo) {
	if bytes <= 0 {
		bytes = memsim.LineSize
	}
	la := liveAlloc{start: start, end: start + memsim.Addr(bytes), id: id, info: info}
	i := sort.Search(len(r.live), func(i int) bool { return r.live[i].start >= start })
	r.live = append(r.live, liveAlloc{})
	copy(r.live[i+1:], r.live[i:])
	r.live[i] = la
}

// lookupLive resolves an address to the live allocation containing it.
func (r *Recorder) lookupLive(addr memsim.Addr) (liveAlloc, bool) {
	i := sort.Search(len(r.live), func(i int) bool { return r.live[i].start > addr })
	if i == 0 {
		return liveAlloc{}, false
	}
	la := r.live[i-1]
	if addr >= la.end {
		return liveAlloc{}, false
	}
	return la, true
}

// removeLive drops the allocation starting exactly at addr, returning
// its ID.
func (r *Recorder) removeLive(addr memsim.Addr) (int64, bool) {
	i := sort.Search(len(r.live), func(i int) bool { return r.live[i].start >= addr })
	if i >= len(r.live) || r.live[i].start != addr {
		return 0, false
	}
	id := r.live[i].id
	r.live = append(r.live[:i], r.live[i+1:]...)
	return id, true
}

// symRef converts a raw affinity-hint address into a symbolic Ref.
func (r *Recorder) symRef(addr memsim.Addr) Ref {
	la, ok := r.lookupLive(addr)
	if !ok {
		return Ref{Elem: -1, Raw: uint64(addr)}
	}
	off := int64(addr - la.start)
	ref := Ref{Ref: la.id, Elem: -1, Off: off}
	if la.info != nil && la.info.ElemStride > 0 && off%int64(la.info.ElemStride) == 0 {
		if e := off / int64(la.info.ElemStride); e < la.info.NumElem {
			ref.Elem = e
		}
	}
	return ref
}

// --- core.Observer ---

// ObserveOpenPool implements core.Observer.
func (r *Recorder) ObserveOpenPool(interleave int) {
	r.flush()
	r.sc.Events = append(r.sc.Events, Event{Kind: KindOpenPool, Interleave: interleave})
}

// ObserveAffine implements core.Observer.
func (r *Recorder) ObserveAffine(spec core.AffineSpec, forcedBank int, info *core.ArrayInfo, err error) {
	r.flush()
	e := Event{
		Kind: KindAlloc, Op: OpAffine,
		ElemSize: spec.ElemSize, NumElem: spec.NumElem,
		AlignP: spec.AlignP, AlignQ: spec.AlignQ, AlignX: spec.AlignX,
		Part: spec.Partition,
	}
	if forcedBank >= 0 {
		e.Op = OpAffineBank
		e.Bank = forcedBank
	}
	if spec.AlignTo != 0 {
		if la, ok := r.lookupLive(spec.AlignTo); ok && la.start == spec.AlignTo {
			e.AlignRef = la.id
		} else {
			e.AlignRaw = uint64(spec.AlignTo)
		}
	}
	r.nextID++
	if err != nil {
		e.Err = err.Error()
	} else {
		e.Base = uint64(info.Base)
		e.ResIl = info.Interleave
		e.Stride = info.ElemStride
		e.StartBank = info.StartBank
		e.PageMapped = info.PageMapped
		r.insertLive(info.Base, info.Bytes(), r.nextID, info)
	}
	r.sc.Events = append(r.sc.Events, e)
}

// ObserveNear implements core.Observer.
func (r *Recorder) ObserveNear(size int64, affinity []memsim.Addr, forcedBank int, addr memsim.Addr, chunk int, err error) {
	r.flush()
	e := Event{Kind: KindAlloc, Op: OpNear, Size: size}
	if forcedBank >= 0 {
		e.Op = OpNearBank
		e.Bank = forcedBank
	}
	for _, a := range affinity {
		e.Affinity = append(e.Affinity, r.symRef(a))
	}
	r.nextID++
	if err != nil {
		e.Err = err.Error()
	} else {
		e.Base = uint64(addr)
		e.ResIl = chunk
		r.insertLive(addr, int64(chunk), r.nextID, nil)
	}
	r.sc.Events = append(r.sc.Events, e)
}

// ObserveBase implements core.Observer.
func (r *Recorder) ObserveBase(size int64, addr memsim.Addr, err error) {
	r.flush()
	e := Event{Kind: KindAlloc, Op: OpBase, Size: size}
	r.nextID++
	if err != nil {
		e.Err = err.Error()
	} else {
		e.Base = uint64(addr)
		r.insertLive(addr, size, r.nextID, nil)
	}
	r.sc.Events = append(r.sc.Events, e)
}

// ObserveFree implements core.Observer.
func (r *Recorder) ObserveFree(addr memsim.Addr, err error) {
	r.flush()
	e := Event{Kind: KindFree}
	// A free that failed (err != nil) never matched a live allocation, so
	// it records as a raw-address free and replays the same failure.
	_ = err
	if id, ok := r.removeLive(addr); ok {
		e.Ref = id
	} else {
		e.Raw = uint64(addr)
	}
	r.sc.Events = append(r.sc.Events, e)
}

// --- cache.AccessObserver ---

// ObserveAccess implements cache.AccessObserver: aggregate the access
// into its owner's chunk-touch map.
func (r *Recorder) ObserveAccess(va memsim.Addr, write bool) {
	la, ok := r.lookupLive(va)
	if !ok {
		line := int64(memsim.Line(va))
		c := r.wild[line]
		if c == nil {
			c = &rw{}
			r.wild[line] = c
		}
		c.bump(write)
	} else {
		agg := r.pend[la.id]
		if agg == nil {
			agg = &allocAgg{gran: granFor(int64(la.end - la.start)), touches: make(map[int64]*rw)}
			r.pend[la.id] = agg
		}
		chunk := int64(va-la.start) / agg.gran
		c := agg.touches[chunk]
		if c == nil {
			c = &rw{}
			agg.touches[chunk] = c
		}
		c.bump(write)
	}
	r.nAccesses++
	if r.nAccesses >= FlushEvery {
		r.flush()
	}
}

func (c *rw) bump(write bool) {
	if write {
		c.writes++
	} else {
		c.reads++
	}
}

// ObservePreload implements cache.AccessObserver.
func (r *Recorder) ObservePreload(va memsim.Addr, bytes int64) {
	r.flush()
	e := Event{Kind: KindPreload, Size: bytes}
	if la, ok := r.lookupLive(va); ok {
		e.Ref = la.id
		e.Off = int64(va - la.start)
	} else {
		e.Raw = uint64(va)
	}
	r.sc.Events = append(r.sc.Events, e)
}

// granFor picks the access-summary chunk granularity for a footprint.
func granFor(bytes int64) int64 {
	g := bytes / touchesPerAlloc
	if g < minGran {
		return minGran
	}
	// Round to a power of two so chunk indexes are stable.
	p := int64(minGran)
	for p < g {
		p <<= 1
	}
	return p
}

// --- stream.IssueObserver ---

// ObserveOffload implements stream.IssueObserver.
func (r *Recorder) ObserveOffload(coreTile, firstBank int) {
	r.offloads[[2]int{coreTile, firstBank}]++
}

// ObserveMigrate implements stream.IssueObserver.
func (r *Recorder) ObserveMigrate(from, to int) {
	r.migs[[2]int{from, to}]++
}

// --- epoch flush ---

// flush drains pending access and stream aggregation into events, in
// canonical (sorted) order so recording is deterministic.
func (r *Recorder) flush() {
	if len(r.pend) > 0 || len(r.wild) > 0 {
		ids := make([]int64, 0, len(r.pend))
		for id := range r.pend {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			agg := r.pend[id]
			e := Event{Kind: KindAccess, Ref: id, Gran: agg.gran}
			for chunk, c := range agg.touches {
				e.Touches = append(e.Touches, Touch{Chunk: chunk, Reads: c.reads, Writes: c.writes})
			}
			sortTouches(e.Touches)
			r.sc.Events = append(r.sc.Events, e)
		}
		if len(r.wild) > 0 {
			e := Event{Kind: KindAccess, Gran: memsim.LineSize}
			for line, c := range r.wild {
				e.Touches = append(e.Touches, Touch{Chunk: line, Reads: c.reads, Writes: c.writes})
			}
			sortTouches(e.Touches)
			r.sc.Events = append(r.sc.Events, e)
		}
		r.pend = make(map[int64]*allocAgg)
		r.wild = make(map[int64]*rw)
	}
	r.nAccesses = 0
	if len(r.offloads) > 0 || len(r.migs) > 0 {
		e := Event{Kind: KindStream}
		for k, n := range r.offloads {
			e.Offloads = append(e.Offloads, Flow{From: k[0], To: k[1], N: n})
		}
		for k, n := range r.migs {
			e.Migs = append(e.Migs, Flow{From: k[0], To: k[1], N: n})
		}
		sortFlows(e.Offloads)
		sortFlows(e.Migs)
		r.sc.Events = append(r.sc.Events, e)
		r.offloads = make(map[[2]int]uint32)
		r.migs = make(map[[2]int]uint32)
	}
}

// --- slot-ordered collection across parallel harness cells ---

// Collector accumulates recorded scenarios across a harness run in
// reservation order, mirroring the telemetry Collector: slots are
// reserved serially before cells launch, each worker fills its own
// slot, and Trace returns non-nil scenarios in slot order — so the
// written trace is byte-identical for every -j. A nil *Collector
// records nothing (Recorder returns nil).
type Collector struct {
	mu    sync.Mutex
	slots []*Scenario
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reserve claims n consecutive slots and returns the first index.
func (c *Collector) Reserve(n int) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := len(c.slots)
	c.slots = append(c.slots, make([]*Scenario, n)...)
	return base
}

// NewRecorder builds a recorder for one cell attempt, or nil when the
// collector itself is nil (recording off).
func (c *Collector) NewRecorder(label string) *Recorder {
	if c == nil {
		return nil
	}
	return NewRecorder(label)
}

// Put fills a reserved slot with a completed recorder's scenario.
func (c *Collector) Put(slot int, sc *Scenario) {
	if c == nil || sc == nil {
		return
	}
	c.mu.Lock()
	c.slots[slot] = sc
	c.mu.Unlock()
}

// Trace returns the collected scenarios in reservation order, skipping
// slots whose cell failed.
func (c *Collector) Trace() *Trace {
	if c == nil {
		return &Trace{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Trace{}
	for _, sc := range c.slots {
		if sc != nil {
			t.Scenarios = append(t.Scenarios, sc)
		}
	}
	return t
}

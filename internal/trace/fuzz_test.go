package trace_test

import (
	"bytes"
	"testing"

	"affinityalloc/internal/trace"
)

// fuzzSeed builds a small hand-made trace exercising every event kind,
// so the fuzzers start from structurally interesting corpora without
// paying for a simulation per worker process.
func fuzzSeed() *trace.Trace {
	sc := trace.NoisyNeighbor(trace.NoiseSpec{Seed: 1, Bytes: 1 << 16, Bursts: 1, Flows: 4})
	sc.Events = append(sc.Events,
		trace.Event{Kind: trace.KindOpenPool, Interleave: 256},
		trace.Event{Kind: trace.KindAlloc, Op: trace.OpAffine, ElemSize: 4, NumElem: 64,
			Base: 0x1000, ResIl: 4096, Stride: 4, StartBank: 3, PageMapped: true},
		trace.Event{Kind: trace.KindAlloc, Op: trace.OpNear, Size: 512,
			Affinity: []trace.Ref{{Ref: 2, Elem: 7}, {Elem: -1, Raw: 0xdead}}},
		trace.Event{Kind: trace.KindPreload, Ref: 2, Off: 64, Size: 128},
		trace.Event{Kind: trace.KindFree, Ref: 3},
		trace.Event{Kind: trace.KindAlloc, Op: trace.OpAffineBank, ElemSize: 8, NumElem: 16,
			Bank: 5, Err: "simulated failure"},
	)
	return &trace.Trace{Scenarios: []*trace.Scenario{sc}}
}

// FuzzTraceDecode hammers the framed-binary decoder: arbitrary bytes
// must never panic or over-allocate, and anything accepted must be
// valid and re-encode/decode to the same trace (canonical form is a
// fixed point).
func FuzzTraceDecode(f *testing.F) {
	seed := trace.Encode(fuzzSeed())
	f.Add(seed)
	f.Add(seed[:len(seed)-6])
	f.Add([]byte("AFFTRC1\n"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(data)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", verr)
		}
		re := trace.Encode(tr)
		tr2, err := trace.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !bytes.Equal(trace.Encode(tr2), re) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}

// FuzzTraceParseJSONL does the same for the JSONL parser.
func FuzzTraceParseJSONL(f *testing.F) {
	seed := trace.EncodeJSONL(fuzzSeed())
	f.Add(seed)
	f.Add([]byte(`{"format":"afftrace/v1"}`))
	f.Add([]byte(`{"format":"afftrace/v1"}` + "\n" + `{"scenario":{"label":"x","mode":"Aff-Alloc","mesh_w":8,"mesh_h":8,"seed":1}}`))
	f.Add([]byte(`{"format":"afftrace/v9"}`))
	f.Add([]byte("{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ParseJSONL(data)
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ParseJSONL accepted an invalid trace: %v", verr)
		}
		re := trace.EncodeJSONL(tr)
		tr2, err := trace.ParseJSONL(re)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if !bytes.Equal(trace.EncodeJSONL(tr2), re) {
			t.Fatal("JSONL re-encoding is not a fixed point")
		}
	})
}

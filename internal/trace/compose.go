package trace

import (
	"fmt"
	"math/rand"
	"strings"
)

// ComposeOptions shapes a multi-tenant composition.
type ComposeOptions struct {
	// Label names the composed scenario ("+"-joined input labels when
	// empty).
	Label string
	// Seed drives the deterministic interleaving of tenant event
	// streams; the same inputs and seed always compose byte-identically.
	Seed int64
	// Churn appends this many extra lifetime cycles per tenant: at the
	// end of every cycle but the last, each tenant frees its surviving
	// allocations, then re-runs its event sequence — multi-tenant
	// allocate/free churn against a warm allocator.
	Churn int
}

// Compose interleaves single-tenant scenarios into one multi-tenant
// colocation scenario. Per-tenant event order is preserved (symbolic
// refs require it); the cross-tenant interleaving is a seeded weighted
// shuffle, so tenants contend for the allocator and the memory system
// the way concurrently running workloads would. The machine header
// (mesh, seed, policy, faults, mode) is taken from the first input;
// inputs recorded under other configurations are replayed under the
// first tenant's machine.
func Compose(scs []*Scenario, opt ComposeOptions) (*Scenario, error) {
	if len(scs) == 0 {
		return nil, fmt.Errorf("trace: nothing to compose")
	}
	labels := make([]string, len(scs))
	for i, sc := range scs {
		if sc.NumTenants() > 1 {
			return nil, fmt.Errorf("trace: %q is already multi-tenant; compose single-tenant scenarios", sc.Label)
		}
		labels[i] = sc.Label
	}
	out := &Scenario{
		Label:   opt.Label,
		Mode:    scs[0].Mode,
		MeshW:   scs[0].MeshW,
		MeshH:   scs[0].MeshH,
		Seed:    scs[0].Seed,
		Policy:  scs[0].Policy,
		Faults:  scs[0].Faults,
		Shards:  scs[0].Shards,
		Tenants: labels,
	}
	if out.Label == "" {
		out.Label = strings.Join(labels, "+")
	}

	queues := make([][]Event, len(scs))
	for t, sc := range scs {
		queues[t] = churned(sc, t, opt.Churn)
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	rem := 0
	for _, q := range queues {
		rem += len(q)
	}
	for rem > 0 {
		// Draw the next event from a tenant picked with probability
		// proportional to its remaining stream — a uniformly random
		// linear extension of the per-tenant orders.
		k := int(rng.Int63n(int64(rem)))
		for t := range queues {
			if k >= len(queues[t]) {
				k -= len(queues[t])
				continue
			}
			out.Events = append(out.Events, queues[t][0])
			queues[t] = queues[t][1:]
			break
		}
		rem--
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// churned expands one tenant's event stream to 1+churn lifetime cycles,
// tagging every event with the tenant index and offsetting symbolic
// refs into each cycle's ID range. Every cycle except the last ends
// with frees of the cycle's surviving successful allocations, so the
// next cycle reallocates against a fragmented heap.
func churned(sc *Scenario, tenant, churn int) []Event {
	perCycle := sc.AllocCount(0)
	survivors := surviving(sc)
	var out []Event
	for c := int64(0); c <= int64(churn); c++ {
		off := c * perCycle
		for i := range sc.Events {
			e := sc.Events[i] // copy; Touches/Affinity slices stay shared (read-only)
			e.Tenant = tenant
			if e.Ref > 0 {
				e.Ref += off
			}
			if e.AlignRef > 0 {
				e.AlignRef += off
			}
			if off > 0 && len(e.Affinity) > 0 {
				refs := make([]Ref, len(e.Affinity))
				copy(refs, e.Affinity)
				for j := range refs {
					if refs[j].Ref > 0 {
						refs[j].Ref += off
					}
				}
				e.Affinity = refs
			}
			out = append(out, e)
		}
		if c < int64(churn) {
			for _, id := range survivors {
				out = append(out, Event{Kind: KindFree, Tenant: tenant, Ref: id + off})
			}
		}
	}
	return out
}

// surviving lists the scenario's successful allocation IDs still live at
// its end (in allocation order): the set a churn cycle must release.
func surviving(sc *Scenario) []int64 {
	var id int64
	live := map[int64]bool{}
	for i := range sc.Events {
		e := &sc.Events[i]
		switch e.Kind {
		case KindAlloc:
			id++
			if e.Err == "" {
				live[id] = true
			}
		case KindFree:
			if e.Ref > 0 {
				delete(live, e.Ref)
			}
		}
	}
	out := make([]int64, 0, len(live))
	for i := int64(1); i <= id; i++ {
		if live[i] {
			out = append(out, i)
		}
	}
	return out
}

// NoiseSpec parameterizes a synthetic noisy-neighbor tenant.
type NoiseSpec struct {
	Label string // "noise" when empty
	// Bytes is the noise buffer footprint (1 MiB when 0).
	Bytes int64
	// Bursts is how many access/stream epochs the tenant issues (8 when
	// 0); each sweeps the whole buffer.
	Bursts int
	// Reads and Writes are per-chunk access counts per burst (4/4 when
	// both 0).
	Reads, Writes uint32
	// Hot is the extra per-burst access count (split evenly between
	// reads and writes) hammered onto one rotating hot chunk — the
	// concentrated component that actually saturates a bank port and
	// its DRAM channel (4096 when 0, negative disables).
	Hot int
	// Flows is the number of offload config flows per burst (16 when 0),
	// scattered across the mesh by Seed.
	Flows int
	// MeshW, MeshH bound the flow endpoints (8×8 when 0).
	MeshW, MeshH int
	Seed         int64
}

// NoisyNeighbor synthesizes a portable single-tenant scenario that
// hammers one streamed buffer and sprays stream-engine traffic across
// the mesh — the interference generator for colocation scenarios. It
// references only its own allocation, so it composes safely onto any
// machine.
func NoisyNeighbor(sp NoiseSpec) *Scenario {
	if sp.Label == "" {
		sp.Label = "noise"
	}
	if sp.Bytes <= 0 {
		sp.Bytes = 1 << 20
	}
	if sp.Bursts <= 0 {
		sp.Bursts = 8
	}
	if sp.Reads == 0 && sp.Writes == 0 {
		sp.Reads, sp.Writes = 4, 4
	}
	if sp.Hot == 0 {
		sp.Hot = 4096
	}
	if sp.Flows <= 0 {
		sp.Flows = 16
	}
	w, h := sp.MeshW, sp.MeshH
	if w <= 0 {
		w = 8
	}
	if h <= 0 {
		h = 8
	}
	nb := w * h
	rng := rand.New(rand.NewSource(sp.Seed))

	sc := &Scenario{Label: sp.Label, Seed: 1}
	sc.Events = append(sc.Events, Event{Kind: KindAlloc, Op: OpBase, Size: sp.Bytes})
	gran := granFor(sp.Bytes)
	nChunks := (sp.Bytes + gran - 1) / gran
	for b := 0; b < sp.Bursts; b++ {
		acc := Event{Kind: KindAccess, Ref: 1, Gran: gran}
		for c := int64(0); c < nChunks; c++ {
			acc.Touches = append(acc.Touches, Touch{Chunk: c, Reads: sp.Reads, Writes: sp.Writes})
		}
		if sp.Hot > 0 {
			h := &acc.Touches[int64(b)%nChunks]
			h.Reads += uint32(sp.Hot / 2)
			h.Writes += uint32(sp.Hot - sp.Hot/2)
		}
		sc.Events = append(sc.Events, acc)
		st := Event{Kind: KindStream}
		for i := 0; i < sp.Flows; i++ {
			st.Offloads = append(st.Offloads, Flow{From: rng.Intn(nb), To: rng.Intn(nb), N: 1 + uint32(rng.Intn(3))})
		}
		sortFlows(st.Offloads)
		st.Offloads = mergeFlows(st.Offloads)
		sc.Events = append(sc.Events, st)
	}
	return sc
}

// mergeFlows collapses duplicate (from,to) edges of a sorted flow list.
func mergeFlows(fs []Flow) []Flow {
	out := fs[:0]
	for _, f := range fs {
		if n := len(out); n > 0 && out[n-1].From == f.From && out[n-1].To == f.To {
			out[n-1].N += f.N
			continue
		}
		out = append(out, f)
	}
	return out
}

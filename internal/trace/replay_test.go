package trace_test

import (
	"bytes"
	"fmt"
	"testing"

	"affinityalloc/internal/faults"
	"affinityalloc/internal/sys"
	"affinityalloc/internal/trace"
	"affinityalloc/internal/workloads"
)

// recordUnder records one workload under a full configuration.
func recordUnder(t *testing.T, w workloads.Workload, mode sys.Mode, seed int64, faultSpec string, shards int) *trace.Scenario {
	t.Helper()
	cfg := sys.DefaultConfig()
	cfg.Seed = seed
	cfg.Shards = shards
	if faultSpec != "" {
		f, err := faults.Parse(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = f
	}
	rec := trace.NewRecorder(w.Name())
	if _, err := workloads.RunTraced(cfg, w, mode, rec); err != nil {
		t.Fatalf("record %s: %v", w.Name(), err)
	}
	return rec.Scenario()
}

// Record→replay placement identity: replaying a recorded scenario with
// zero options must re-drive the allocator through the identical state
// trajectory, yielding byte-identical placements — across workload
// shapes (affine, irregular, pointer), fault specs, and shard counts.
func TestReplayPlacementIdentity(t *testing.T) {
	workloadSet := []workloads.Workload{
		tinyVecAdd(),
		tinyHashJoin(),
		workloads.LinkList{Lists: 16, Nodes: 32, Queries: 1},
	}
	cases := []struct {
		faults string
		shards int
	}{
		{"", 1},
		{"", 4},
		{"dead-banks=2", 1},
		{"dead-banks=2", 4},
	}
	for _, w := range workloadSet {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/faults=%s/shards=%d", w.Name(), c.faults, c.shards), func(t *testing.T) {
				sc := recordUnder(t, w, sys.AffAlloc, 1, c.faults, c.shards)
				res, err := trace.Replay(sc, trace.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, want := res.PlacementDump(), trace.RecordedDump(sc)
				if !bytes.Equal(got, want) {
					t.Errorf("placements diverged:\n--- replay\n%s--- recorded\n%s", got, want)
				}
			})
		}
	}
}

// A round trip through both encodings must not perturb replay.
func TestReplayAfterEncodeRoundTrip(t *testing.T) {
	sc := recordUnder(t, tinyHashJoin(), sys.AffAlloc, 1, "", 1)
	want := trace.RecordedDump(sc)
	tr := &trace.Trace{Scenarios: []*trace.Scenario{sc}}
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"binary", trace.Encode(tr)},
		{"jsonl", trace.EncodeJSONL(tr)},
	} {
		got, err := trace.DecodeAny(enc.data)
		if err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		res, err := trace.Replay(got.Scenarios[0], trace.Options{})
		if err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if !bytes.Equal(res.PlacementDump(), want) {
			t.Errorf("%s: decoded scenario replays differently", enc.name)
		}
	}
}

// Replay must accept mode/policy/faults/shard overrides and still
// produce a deterministic result (same overrides → same placements).
func TestReplayOverridesAreDeterministic(t *testing.T) {
	sc := recordUnder(t, tinyHashJoin(), sys.AffAlloc, 1, "", 1)
	opts := []trace.Options{
		{Mode: "In-Core"},
		{Mode: "Near-L3"},
		{Policy: "minhop"},
		{Policy: "rnd"},
		{Faults: "dead-banks=1"},
		{Shards: 4},
	}
	for _, opt := range opts {
		a, err := trace.Replay(sc, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		b, err := trace.Replay(sc, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if !bytes.Equal(a.PlacementDump(), b.PlacementDump()) {
			t.Errorf("%+v: replay is not deterministic", opt)
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%+v: cycles differ: %d vs %d", opt, a.Cycles, b.Cycles)
		}
	}
}

// Shards must stay a pure throughput knob on the replay path too:
// placements and cycle counts are byte-identical at every shard count.
func TestReplayShardInvariance(t *testing.T) {
	sc := recordUnder(t, tinyVecAdd(), sys.AffAlloc, 1, "", 1)
	base, err := trace.Replay(sc, trace.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		r, err := trace.Replay(sc, trace.Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.PlacementDump(), base.PlacementDump()) {
			t.Errorf("shards=%d: placements diverged from shards=1", shards)
		}
		if r.Cycles != base.Cycles {
			t.Errorf("shards=%d: cycles %d != %d", shards, r.Cycles, base.Cycles)
		}
	}
}
